// Capability audit: reproduce Table 1 of the paper by running the
// Sect. 4 detection suite — chunking, bundling, compression,
// deduplication, delta encoding — against all five services.
//
// Every verdict is derived from the packet trace alone: the detectors
// cannot see inside the clients, exactly like the paper's testing
// application.
//
//	go run ./examples/capability-audit
package main

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/core"
)

func main() {
	fmt.Println("Running the Sect. 4 capability checks for all services...")
	fmt.Println()

	caps := map[string]core.Capabilities{}
	var order []string
	for _, p := range client.Profiles() {
		fmt.Printf("  checking %s...\n", p.Name)
		caps[p.Service] = core.DetectCapabilities(p, 42)
		order = append(order, p.Service)
	}

	fmt.Println()
	fmt.Println("Table 1: capabilities implemented in each service")
	fmt.Println()
	fmt.Print(core.Table1(caps, order))
	fmt.Println()
	fmt.Println("Note: the paper's summary — Dropbox has the most sophisticated")
	fmt.Println("client; Wuala, Google Drive and SkyDrive implement some")
	fmt.Println("capabilities; Cloud Drive implements none of them.")
}
