// Two devices: the other half of synchronization. Device A uploads a
// file; device B — same account, same campus network — is notified
// and downloads it. The experiment measures where end-to-end latency
// comes from for each service: upload, notification wait (push vs.
// poll cadence, Fig. 1's intervals), and download.
//
//	go run ./examples/two-devices
package main

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	batch := workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}
	fmt.Printf("propagating %s from device A to device B\n\n", batch)
	fmt.Printf("%-14s%10s%12s%12s%12s\n", "service", "upload", "notify", "download", "total")
	for _, p := range client.Profiles() {
		r := core.RunPropagation(p, batch, 7)
		fmt.Printf("%-14s%10.1f%12.1f%12.1f%12.1f\n",
			p.Name,
			r.Upload.Seconds(), r.Notify.Seconds(),
			r.Download.Seconds(), r.Total.Seconds())
	}
	fmt.Println("\n(seconds; notify is push-like for Dropbox's long-poll channel,")
	fmt.Println("one poll interval in the worst case for everyone else — the same")
	fmt.Println("cadences behind Fig. 1's background traffic)")
}
