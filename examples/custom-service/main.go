// Custom service: the paper closes by inviting the community "to
// extend the number of tested services". This example defines a sixth
// service from scratch — "EuroSync", a hypothetical EU-hosted provider
// that combines Wuala's placement with Dropbox-style bundling but no
// other capability — and benchmarks it against Dropbox on the paper's
// multi-file workload.
//
//	go run ./examples/custom-service
package main

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/compressor"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/httpsim"
	"repro/internal/workload"
)

// euroSyncSpec places two data centers in Europe (Amsterdam and
// Frankfurt), both serving storage and control.
func euroSyncSpec() cloud.Spec {
	return cloud.Spec{
		Service:          "eurosync",
		LoginServerCount: 2,
		Sites: []cloud.Site{
			{
				Name: "amsterdam", City: "Amsterdam",
				Coord: geo.Coord{Lat: 52.31, Lon: 4.76},
				Roles: []cloud.Role{cloud.Control, cloud.Storage}, Servers: 4,
				Owner: "EuroSync B.V.", Netname: "EUROSYNC", Prefix: "185.40",
				RateBps: 40e6, ProcDelay: 20 * time.Millisecond, PTRHint: true,
			},
			{
				Name: "frankfurt", City: "Frankfurt",
				Coord: geo.Coord{Lat: 50.03, Lon: 8.57},
				Roles: []cloud.Role{cloud.Control, cloud.Storage}, Servers: 4,
				Owner: "EuroSync B.V.", Netname: "EUROSYNC", Prefix: "185.41",
				RateBps: 40e6, ProcDelay: 20 * time.Millisecond, PTRHint: true,
			},
		},
	}
}

// euroSyncProfile: bundling and fixed 4 MB chunks, nothing else.
func euroSyncProfile() client.Profile {
	return client.Profile{
		Name: "EuroSync", Service: "eurosync",
		ChunkMode: client.FixedChunks, ChunkSize: 4 << 20,
		Bundling:           true,
		Compression:        compressor.None,
		Strategy:           client.PersistentBundled,
		ChunkCommit:        true,
		ControlRPCsPerSync: 3,
		ControlReqBytes:    800, ControlRespBytes: 600,
		DetectBase: 1200 * time.Millisecond, DetectPerFile: 10 * time.Millisecond,
		AggregationWait:       800 * time.Millisecond,
		PerFileClientOverhead: 10 * time.Millisecond,
		PollInterval:          time.Minute,
		PollUpBytes:           100, PollDownBytes: 100,
		LoginReqBytes: 700, LoginRespBytes: 11_000,
		HTTP: httpsim.DefaultProfile,
	}
}

func main() {
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	fmt.Printf("workload: %s binary files\n\n", batch)

	run := func(name string, m core.Metrics) {
		fmt.Printf("%-10s startup %-8s completion %-8s overhead %.2fx conns %d\n",
			name,
			core.FormatDuration(m.Startup),
			core.FormatDuration(m.Completion),
			m.Overhead, m.Connections)
	}

	// The custom service goes through the identical harness.
	tb := core.NewTestbedFor(euroSyncProfile(), euroSyncSpec(), 1, core.DefaultJitter)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	run("EuroSync", core.MeasureWindow(tb, t0, batch.Total()))

	run("Dropbox", core.RunSync(client.Dropbox(), batch, 1, core.DefaultJitter))

	fmt.Println("\nEuroSync combines EU placement (short RTT) with bundling, so it")
	fmt.Println("beats Dropbox on completion even without compression or dedup —")
	fmt.Println("the paper's Sect. 6 takeaway about data-center placement plus")
	fmt.Println("protocol design, demonstrated on a service that does not exist.")
}
