// Datacenter map: reproduce the Fig. 2 discovery — enumerate Google
// Drive's edge network by resolving its client-facing DNS name from
// >2,000 open resolvers world-wide, then geolocate every entry point
// with the hybrid methodology (reverse-DNS airport codes, shortest
// RTT to vantage points, traceroute).
//
//	go run ./examples/datacenter-map
package main

import (
	"fmt"
	"sort"

	"repro/internal/client"
	"repro/internal/core"
)

func main() {
	fmt.Println("Discovering Google Drive's edge network (Fig. 2)...")
	d := core.Discover(client.GoogleDrive(), 42)

	fmt.Printf("\nDNS names observed in client traffic: %v\n", d.Names)
	fmt.Printf("entry points found by resolver fan-out: %d\n", d.EdgeCount())
	fmt.Printf("geolocated: %.0f%%, across %d countries\n\n",
		100*d.LocatedFraction(), len(d.Countries))

	// A coarse text map: bucket located edges by 15-degree cells.
	const latCells, lonCells = 12, 24
	var grid [latCells][lonCells]int
	for _, s := range d.Servers {
		if !s.Location.Located() {
			continue
		}
		r := int((90 - s.Location.Coord.Lat) / 15)
		c := int((s.Location.Coord.Lon + 180) / 15)
		if r >= 0 && r < latCells && c >= 0 && c < lonCells {
			grid[r][c]++
		}
	}
	fmt.Println("edge density (15-degree cells, '.' none, digits = count, '+' >9):")
	for r := 0; r < latCells; r++ {
		for c := 0; c < lonCells; c++ {
			switch n := grid[r][c]; {
			case n == 0:
				fmt.Print(".")
			case n > 9:
				fmt.Print("+")
			default:
				fmt.Print(n)
			}
		}
		fmt.Println()
	}

	type cityCount struct {
		city string
		n    int
	}
	var cities []cityCount
	for c, n := range d.Cities {
		cities = append(cities, cityCount{c, n})
	}
	sort.Slice(cities, func(i, j int) bool {
		if cities[i].n != cities[j].n {
			return cities[i].n > cities[j].n
		}
		return cities[i].city < cities[j].city
	})
	fmt.Println("\ntop edge locations:")
	for i, c := range cities {
		if i == 12 {
			break
		}
		fmt.Printf("  %-16s %d\n", c.city, c.n)
	}
}
