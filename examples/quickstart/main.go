// Quickstart: benchmark one personal cloud storage service with the
// paper's methodology in ~20 lines.
//
// It builds a testbed for Dropbox, uploads the paper's 100x10 kB
// workload, and prints the three Sect. 5 metrics — synchronization
// start-up, completion time, protocol overhead — all derived from the
// packet trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	profile := client.Dropbox()
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}

	fmt.Printf("benchmarking %s with %s (binary files)\n\n", profile.Name, batch)
	m := core.RunSync(profile, batch, 1 /* seed */, core.DefaultJitter)

	fmt.Printf("synchronization start-up: %s\n", core.FormatDuration(m.Startup))
	fmt.Printf("upload completion:        %s\n", core.FormatDuration(m.Completion))
	fmt.Printf("total traffic:            %.1f kB for %.1f kB of content\n",
		float64(m.TotalTraffic)/1000, float64(batch.Total())/1000)
	fmt.Printf("protocol overhead:        %.2fx\n", m.Overhead)
	fmt.Printf("connections opened:       %d\n", m.Connections)
	fmt.Printf("goodput:                  %.2f Mb/s\n", m.GoodputBps/1e6)
}
