// Package repro is a from-scratch Go reproduction of "Benchmarking
// Personal Cloud Storage" (Drago, Bocchi, Mellia, Slatman, Pras —
// ACM IMC 2013): the methodology and tool for studying personal cloud
// storage services, applied to emulated reconstructions of Dropbox,
// SkyDrive, Wuala, Google Drive and Amazon Cloud Drive.
//
// The benchmark framework lives in internal/core; the service
// reconstructions in internal/client and internal/cloud; the network,
// DNS and measurement substrates in internal/{netem,tcpsim,httpsim,
// dnssim,trace,geo,whois,sim}; and the real data-plane algorithms in
// internal/{chunker,dedup,deltaenc,compressor,cryptobox,workload}.
// See DESIGN.md for the system inventory and the per-experiment index,
// and EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
package repro
