// Package repro is a from-scratch Go reproduction of "Benchmarking
// Personal Cloud Storage" (Drago, Bocchi, Mellia, Slatman, Pras —
// ACM IMC 2013): the methodology and tool for studying personal cloud
// storage services, applied to emulated reconstructions of Dropbox,
// SkyDrive, Wuala, Google Drive and Amazon Cloud Drive.
//
// The benchmark framework lives in internal/core; the service
// reconstructions in internal/client and internal/cloud; the network,
// DNS and measurement substrates in internal/{netem,tcpsim,httpsim,
// dnssim,trace,geo,whois,sim}; and the real data-plane algorithms in
// internal/{chunker,dedup,deltaenc,compressor,cryptobox,workload}.
// See DESIGN.md for the system inventory and the per-experiment index,
// and EXPERIMENTS.md for paper-vs-measured results.
//
// # Measurement engine
//
// Every published number is derived from the packet trace, so trace
// analysis and campaign repetition are the hot paths of the whole
// tool. They are organised as follows:
//
//   - internal/tcpsim is a closed-form transport engine: on loss-free
//     paths slow start is evaluated as the geometric cwnd schedule it
//     is (O(log n) per-round records) and the rate-limited steady
//     state collapses into a single trace.Span record plus one
//     duration formula — one Sink.Record call where the seed engine
//     paid O(bytes/BDP) of them. Lossy paths are analytic too: the
//     next loss position is inverse-transform sampled from the
//     geometric run-length distribution (one RNG draw per loss event,
//     not one per round), loss-free runs between losses advance
//     through the same closed-form schedule, and each recovery epoch
//     (window halving, fast-retransmit record) is evaluated exactly
//     as the per-round loop would — a lossy transfer costs O(losses),
//     not O(rounds). Dialer.ForceEventLoop keeps that loop as the
//     reference engine: bit-identical under injected loss positions,
//     distributionally equivalent under RNG-driven loss (both pinned
//     by internal/tcpsim's equivalence suites and timed by the
//     benchsnap transport micros).
//   - internal/trace.Sink is the recording boundary the transport
//     simulator writes against, with two implementations. Capture
//     records packets append-only; stragglers from connections
//     simulating on independent timelines land in a reorder buffer
//     that is merged back — stably — on first read, so recording is
//     O(1) and analyzers always see a time-sorted trace. Streamer
//     folds each packet into the per-flow accumulators of every
//     pre-registered window and discards it, so a repetition's trace
//     memory is O(flows) instead of O(packets).
//   - trace.Span records carry their slicing parameters (slice size,
//     spacing, count), so both sinks fold them in O(1) when a span
//     falls inside one window and expand them deterministically only
//     at window boundaries (Packet.Clip) — byte- and time-identical
//     to the per-round records they stand for. Per-packet analyzers
//     (Bursts, UploadPauses, throughput/cumulative timelines) walk
//     Capture.ExpandedPackets, the materialized per-round view; the
//     CSV trace format (v2) round-trips spans intact, and
//     cmd/tracedump reports stored records vs expanded packets.
//   - Capture.Window returns a zero-copy, binary-searched view of a
//     time slice (half-open [from, to)), sharing the backing store;
//     only windows that actually cut through a span copy and clip.
//   - Capture.Analyze computes every scalar metric of Sect. 5 — byte
//     accounting in both directions, payload bracket, SYN timeline,
//     connection count — in one scan per flow selection. The
//     per-metric methods (TotalWireBytes, FirstPayloadTime, ...) are
//     thin wrappers over it. StreamWindow.Analyze answers the same
//     question from the streamed accumulators, bit-identically
//     (pinned by the randomized equivalence test in internal/trace).
//   - core.MeasureWindow reads all Sect. 5 metrics off two Analyze
//     passes (all flows, storage flows) of one window, in either
//     trace mode. The campaign cells (RunSync, RunSyncFrom,
//     RunSYNCount, the Fig. 4/5 sweeps) stream; consumers that
//     genuinely re-window after the fact or walk individual packets —
//     RunIdle's cumulative timeline, AnalyzeProtocols' activity
//     clustering, the Sect. 4 capability detectors, RunPropagation,
//     RunRecovery, cmd/tracedump — keep a buffered Capture.
//   - internal/sim runs two randomness engines behind one RNG API.
//     The default engine is PCG (RXS-M-XS-64) seeded through
//     SplitMix64: RNG.Fork is O(1) — two mixing rounds build a child's
//     whole state — and RNG.Fill generates eight bytes per step, so
//     file materialisation is memory-bandwidth bound. The legacy
//     math/rand engine (one 607-word lagged-Fibonacci init per Fork,
//     ~50% of a Cloud Drive campaign repetition before the switch)
//     survives behind sim.NewLegacyRNG as the reference engine for the
//     structural-equivalence tests, mirroring Dialer.ForceEventLoop.
//   - internal/workload generates files as content descriptors: a
//     folder file is the lazy recipe (Kind, Seed, Size), not bytes.
//     The planner (internal/client) materialises at the chunk boundary
//     and only when a capability genuinely needs bytes — CDC chunking,
//     dedup hashing, delta signatures, encryption, or a compression
//     cache miss — into pooled buffers released at the end of each
//     plan. A no-capability client (Cloud Drive) plans entire uploads
//     from descriptors alone: zero content bytes ever exist. The
//     benchsnap content micro tracks both engines per repetition.
//   - internal/compressor memoises size-only DEFLATE twice over:
//     descriptor-backed chunks key the cache by content identity
//     (generator, seed, size, chunk window) — no hashing, and on
//     repeats no generation — while ad-hoc bytes fall back to the
//     SHA-256 hash cache (still ~10x cheaper than the level-6 flate it
//     skips). Sizes stay exact either way, so campaigns that re-plan
//     identical content — repeated engine timings, the
//     parallel-vs-sequential identity checks, the Fig. 6 matrix whose
//     per-(workload, repetition) contents are shared across services —
//     stop paying for recompression.
//   - core.RunN is the parallel experiment scheduler: a generic
//     bounded-pool fan-out over arbitrary index spaces. Every
//     campaign-of-campaigns loop rides on it — RunCampaign over
//     repetitions, Fig6ForService/Fig6Matrix over service x workload x
//     repetition, Fig4DeltaSeries/Fig5CompressionSeries over sweep
//     sizes, LocationStudy over service x vantage, and
//     DetectCapabilities(/All) over the five Sect. 4 detectors per
//     service — so one knob (core.CampaignWorkers, default one worker
//     per CPU; cmd/cloudbench and cmd/capcheck -parallel) governs the
//     whole experiment matrix from a single shared worker budget.
//     Nested fan-outs draw from the same budget, so pools never
//     oversubscribe the machine; when the budget is spent, inner
//     cells simply run inline on their caller's worker.
//
// # Adaptive sampling
//
// The paper fixes every benchmark at 24 repetitions. core's adaptive
// engine (RunCampaignAdaptive, Fig6MatrixAdaptive, LossSweepAdaptive,
// LocationStudyAdaptive, DetectCapabilitiesAdaptive,
// RunFullCampaignAdaptive) instead runs each cell until the answer is
// tight: repetitions proceed in fixed-size batches (core.StopRule —
// an opening batch of MinReps, then AdaptiveBatch at a time, capped
// at MaxReps), each batch folds into an incremental Welford
// accumulator (stats.Accumulator, O(batch) per check, mean
// bit-identical to the batch formulas), and the cell stops once the
// relative CI95 half-width of the headline metrics (completion,
// goodput) is at or below the target. Confidence intervals use
// Student-t critical values (stats.TQuantile95 — exact table to
// df 30, Cornish–Fisher beyond), so small samples are not
// overconfident. Batch boundaries are constants of the rule, never
// derived from the worker count, and the tracker folds repetitions in
// index order — the reps executed AND the resulting Summary are a
// pure function of (seed, rule), bit-identical at any -parallel
// setting. Fixed-rep campaigns remain the reference path.
//
// Two variance-reduction levers (core.VarianceReduction) hit the
// target with fewer repetitions. Antithetic pairing gives rep 2k+1
// its twin's seed on a complemented PCG stream (sim.NewAntitheticRNG)
// and computes the stopping statistic over pair means; the mirroring
// must survive the consumers, so RNG.Jitter reflects the accepted
// uniform deviate (complemented raw words do not survive Int63n's
// modulo) and RNG.Perm returns the reversed twin permutation (the
// antithetic construction for discrete choices — a k-prefix consumer
// like DNS server rotation sees the complementary end of the pool).
// On the golden Cloud Drive cell that pairing is what turns the
// far-server connection count — the variance driver — negatively
// correlated across twins, reaching the fixed-24-rep precision in 16
// repetitions (the benchsnap adaptive micro pins it). CRN gives every
// service a common repetition seed stream in the multi-service
// sweeps, so cross-service deltas are paired comparisons. Summaries
// record RepsUsed and AchievedRelHW, adaptive campaign files record
// the rule (precision, max_reps), and cmd/comparebench annotates each
// delta with whether it fits inside the union of the two runs'
// achieved confidence intervals.
//
// # Fleet engine
//
// core.RunFleet scales the per-client methodology to a service
// population: N simulated users (10⁵–10⁶) share one cloud backend for
// a whole service day, so population composition changes server-side
// bytes — the paper's Sect. 4.3 deduplication phenomenon studied at
// fleet scale. A user is never materialised: it is an index, and its
// whole day — session instants from a per-class arrival process
// (internal/workload's Poisson, bursty Gamma and diurnal
// Lewis–Shedler thinning), per-session file mixes, and the content
// address of every chunk — is derived on demand from
// fleetSeed(base, user, session). Files stay lazy descriptors and a
// chunk's address is a pure function of its descriptor tuple, so a
// million-user day allocates O(active users), not O(users x files).
// Users are partitioned over a fixed stripe count (independent of the
// worker budget) and each stripe advances its users in virtual time
// through an event heap.
//
// The backend is dedup.Store, sharded by content-hash prefix with one
// plain mutex per shard — a single global lock under a concurrent
// fleet serialises every chunk lookup, and every hot-path store
// operation writes, so reader/writer bookkeeping buys nothing.
// Counters are per-shard atomics read without any lock; chunk entries
// live in pointer-free slab arenas addressed by index, so the garbage
// collector never scans the store's bulk state, and each entry folds
// the chunk's size together with its earliest claim, so one map access
// serves both.
//
// Cross-user dedup under parallelism runs as a one-pass claim/resolve
// protocol. The claim pass generates the day once: each session claims
// its chunks with its (virtual instant, user) pair — batched per
// (session, shard) group so a batch pays one lock acquisition
// (dedup.Store.ClaimBatch) — and the store keeps the earliest claim
// per chunk, a pure function of offered load whatever the execution
// interleaving. While claiming, each stripe records its session stream
// (users, instants, chunk hash/size runs, and each chunk's claimed
// store ref) into flat append-only arenas. The resolve pass replays
// those arenas instead of re-deriving the day — RNG forks, arrival
// draws and chunk hashing run once — and resolves each chunk's winner
// through its recorded ref (dedup.ChunkRef.WonBy), a direct entry read
// with no second map probe and no lock. Past a configurable memory
// budget a stripe drops its log and regenerates from seeds instead —
// a pure perf fallback, bit-identical by construction. Catalog files'
// sizes and chunk addresses are pure functions of class config and
// rank, precomputed into per-class tables so popular-file references
// cost no hashing at all.
//
// cmd/fleetbench reports the service-side load curves (bytes/s,
// concurrent connections, dedup ratio vs population size) and takes
// -cpuprofile/-memprofile for engine work; the benchsnap fleet micro
// pins users/sec/core, allocated bytes per session, and a store
// hammer curve over goroutine and shard counts; and
// scripts/fleetsmoke.sh byte-compares fleetbench reports across
// worker counts and store shard counts in CI.
//
// Determinism contract: every experiment cell derives all randomness
// from its own index (seed, testbed, RNG — see campaignSeed) and
// writes only its own result slot, so results are bit-identical to
// the sequential engine at any worker count and under any scheduling;
// -parallel only changes wall-clock time. The parallel-vs-sequential
// equivalence tests in internal/core/scheduler_test.go pin this for
// every lifted layer.
//
// The golden-equivalence tests in internal/trace, internal/chunker
// and internal/core pin the engine against the original
// scan-per-metric implementation. Pinned ("golden") values live in
// testdata/*.json via internal/goldenfile; a sanctioned refresh — an
// engine change that legitimately alters simulated behaviour, like
// the PCG content pipeline — regenerates them all with
// scripts/regen-golden.sh and declares the new perf baseline in a
// committed BASELINE_RESET marker, which scripts/trendcheck.sh then
// verifies corresponds to real drift (silent baseline rewrites fail
// CI either way). scripts/bench.sh snapshots engine performance
// (BENCH_<sha>.json, diffable with cmd/comparebench).
//
// The determinism contract is also machine-enforced: cmd/simlint
// (scripts/lint.sh, or go vet -vettool) runs four custom analyzers —
// walltime (no wall-clock reads in simulation packages),
// rngdiscipline (all randomness from seeded sim.RNG streams; no
// shared stream captured by scheduler cells), mapiter (no map
// iteration order reaching traces, driver output or float
// accumulation) and goldendiscipline (no hardcoded golden pins
// outside internal/goldenfile) — over every package in CI. Audited
// exceptions carry in-source `//simlint:allow <check>` directives;
// internal/analysis/README.md documents each invariant.
//
// The benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
package repro
