// Command simlint machine-enforces the simulation engine's
// determinism contract. It bundles the four analyzers from
// internal/analysis — walltime, rngdiscipline, mapiter and
// goldendiscipline — behind the standard `go vet -vettool` protocol.
//
// Usage:
//
//	go build -o bin/simlint ./cmd/simlint
//	go vet -vettool=bin/simlint ./...     # toolchain-driven
//	bin/simlint ./...                     # standalone (re-execs go vet)
//	scripts/lint.sh                       # the one-command entry point
//
// Findings print as file:line:col diagnostics tagged with the check
// name; audited exceptions are annotated in-source with
// `//simlint:allow <check>`. See internal/analysis/README.md for the
// invariants each check enforces.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/goldendiscipline"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/rngdiscipline"
	"repro/internal/analysis/walltime"
)

func main() {
	analysis.Main(
		walltime.Analyzer,
		rngdiscipline.Analyzer,
		mapiter.Analyzer,
		goldendiscipline.Analyzer,
	)
}
