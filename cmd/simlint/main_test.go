package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoIsClean builds the vettool and runs it over the whole
// module: the codebase must satisfy its own determinism contract,
// with every exception carrying an in-source //simlint:allow audit.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the module")
	}
	bin := filepath.Join(t.TempDir(), "simlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building simlint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = filepath.Join("..", "..")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("simlint found violations: %v\n%s", err, out)
	}
}
