// Command fleetbench simulates a fleet of users — up to a million —
// sharing one cloud backend for a service day and reports the
// service-side load curves: bytes per second and concurrent
// connections per bucket, plus the cross-user dedup ratio. With
// -populations it sweeps the same day over several fleet sizes (each
// against a fresh backend) to show how dedup scales with population,
// the service-scale form of the paper's Sect. 4.3 observation.
//
// Usage:
//
//	fleetbench [-users N] [-seed N] [-day D] [-bucket D] [-shards N]
//	           [-parallel N] [-populations N,N,...] [-out FILE]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// Typical runs:
//
//	fleetbench -users 100000                      # one service day, JSON to stdout
//	fleetbench -users 1000000 -bucket 5m          # million-user day, coarser curve
//	fleetbench -populations 1000,10000,100000     # dedup ratio vs fleet size
//	fleetbench -users 50000 -cpuprofile cpu.pprof # profile the engine hot path
//
// The JSON report contains only simulated quantities, so two runs with
// the same flags are byte-identical whatever -parallel says — the CI
// fleet smoke (scripts/fleetsmoke.sh) pins exactly that by comparing
// -parallel 1 against -parallel 8 outputs, and likewise -shards 1
// against -shards 64. Wall-clock timing goes to stderr, where it
// cannot perturb the comparison.
//
// -cpuprofile and -memprofile write standard runtime/pprof profiles
// (inspect with go tool pprof); the heap profile is taken at exit
// after a GC, so it reflects retention, not transient churn.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dedup"
)

// report is the deterministic part of a fleetbench run: the fleet
// day's outcome and, when requested, the population sweep. No
// wall-clock quantity may appear here.
type report struct {
	Users  int           `json:"users"`
	Seed   int64         `json:"seed"`
	Day    time.Duration `json:"day_ns"`
	Bucket time.Duration `json:"bucket_ns"`
	Shards int           `json:"shards"`

	Fleet       core.FleetResult            `json:"fleet"`
	Populations []core.FleetPopulationPoint `json:"populations,omitempty"`
}

func main() {
	var (
		users       = flag.Int("users", 10_000, "fleet size")
		seed        = flag.Int64("seed", 42, "base random seed")
		day         = flag.Duration("day", 24*time.Hour, "simulated horizon")
		bucket      = flag.Duration("bucket", time.Minute, "load-curve resolution")
		shards      = flag.Int("shards", dedup.DefaultShards, "backend store shards")
		parallel    = flag.Int("parallel", 0, "worker cap (0 = shared budget, 1 = sequential)")
		populations = flag.String("populations", "", "comma-separated fleet sizes to sweep (fresh backend each)")
		out         = flag.String("out", "", "output path (default stdout)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile  = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := core.FleetConfig{
		Users:  *users,
		Seed:   *seed,
		Day:    *day,
		Bucket: *bucket,
		Store:  dedup.NewStoreShardedSized(*shards, core.FleetChunkHint(*users, *day)),
	}
	rep := report{
		Users:  *users,
		Seed:   *seed,
		Day:    *day,
		Bucket: *bucket,
		Shards: cfg.Store.Shards(),
	}

	start := time.Now()
	rep.Fleet = core.RunFleet(cfg, *parallel)
	wall := time.Since(start)
	fmt.Fprintf(os.Stderr, "fleet: %v\n", rep.Fleet)
	fmt.Fprintf(os.Stderr, "wall: %v (%.0f users/s on %d procs)\n",
		wall.Round(time.Millisecond), float64(*users)/wall.Seconds(), runtime.GOMAXPROCS(0))

	if *populations != "" {
		sizes, err := parsePopulations(*populations)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sweepCfg := cfg
		sweepCfg.Store = nil // the sweep allocates a fresh backend per size
		start = time.Now()
		rep.Populations = core.FleetPopulationSweep(sweepCfg, sizes, *parallel)
		fmt.Fprintf(os.Stderr, "sweep %v: %v\n", sizes, time.Since(start).Round(time.Millisecond))
		for _, p := range rep.Populations {
			fmt.Fprintf(os.Stderr, "  users=%-8d dedup=%.3f stored=%dB\n", p.Users, p.DedupRatio, p.StoredBytes)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parsePopulations(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("fleetbench: bad population %q", p)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
