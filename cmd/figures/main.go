// Command figures regenerates every figure and table dataset in the
// paper in one run, printing plottable CSV/text blocks. It is the
// one-stop reproduction entry point used to fill EXPERIMENTS.md.
//
// Usage:
//
//	figures [-fig 1|2|3|4|5|6|table1|all] [-reps N] [-seed N] [-parallel N] [-precision P]
//
// -precision switches fig 6 to the adaptive sampling engine (see
// cloudbench): cells repeat until the answer is tight instead of a
// fixed -reps budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
)

// figures delegates to cloudbench so the two stay consistent; it
// exists because the paper's artifacts are indexed by figure number.
func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate (1..6, table1, all)")
		reps      = flag.Int("reps", 8, "repetitions for fig 6 (paper uses 24)")
		seed      = flag.Int64("seed", 42, "base seed")
		parallel  = flag.Int("parallel", 0, "concurrent experiment cells (passed through to cloudbench)")
		precision = flag.Float64("precision", 0, "adaptive precision target for fig 6 (passed through to cloudbench; 0 = fixed -reps)")
	)
	flag.Parse()

	experiments := map[string]string{
		"1": "fig1", "2": "discover", "3": "fig3",
		"4": "fig4", "5": "fig5", "6": "fig6",
		"table1": "table1", "all": "all",
	}
	exp, ok := experiments[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}

	self, err := os.Executable()
	if err != nil {
		self = ""
	}
	// Prefer a sibling cloudbench binary; fall back to `go run`.
	args := []string{
		"-experiment", exp,
		"-reps", fmt.Sprint(*reps),
		"-seed", fmt.Sprint(*seed),
		"-parallel", fmt.Sprint(*parallel),
	}
	if *precision > 0 {
		args = append(args, "-precision", fmt.Sprint(*precision))
	}
	var cmd *exec.Cmd
	if sibling := siblingCloudbench(self); sibling != "" {
		cmd = exec.Command(sibling, args...)
	} else {
		cmd = exec.Command("go", append([]string{"run", "repro/cmd/cloudbench"}, args...)...)
	}
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func siblingCloudbench(self string) string {
	if self == "" {
		return ""
	}
	for i := len(self) - 1; i >= 0; i-- {
		if self[i] == '/' || self[i] == '\\' {
			candidate := self[:i+1] + "cloudbench"
			if _, err := os.Stat(candidate); err == nil {
				return candidate
			}
			return ""
		}
	}
	return ""
}
