// Command dcmap runs the architecture-discovery pipeline (Sect. 2.1):
// it drives each client, collects the DNS names it contacts, resolves
// them through >2,000 world-wide open resolvers, identifies owners via
// whois, and geolocates every front-end with the hybrid methodology.
// For Google Drive this reproduces the Fig. 2 edge-node map.
//
// Usage:
//
//	dcmap [-service NAME|all] [-seed N] [-servers]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/client"
	"repro/internal/core"
)

func main() {
	var (
		service = flag.String("service", "all", "service to map, or all")
		seed    = flag.Int64("seed", 42, "random seed")
		servers = flag.Bool("servers", false, "dump every discovered front-end")
	)
	flag.Parse()

	var profiles []client.Profile
	if *service == "all" {
		profiles = client.Profiles()
	} else {
		p, ok := client.ProfileFor(*service)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown service %q\n", *service)
			os.Exit(2)
		}
		profiles = []client.Profile{p}
	}

	for _, p := range profiles {
		d := core.Discover(p, *seed)
		fmt.Print(core.DiscoveryReport(d))
		if *servers {
			fmt.Println("  front-ends (ip, dns, reverse-dns, owner, method, location):")
			for _, s := range d.Servers {
				fmt.Printf("    %-16s %-28s %-34s %-22s %-12s %s %s\n",
					s.IP, s.DNSName, s.ReverseDNS, s.Owner,
					s.Location.Method, s.Location.City, s.Location.Coord)
			}
		}
		fmt.Println()
	}
}
