// Command benchsnap measures the measurement engine itself and writes
// a BENCH_<commit>.json snapshot: a regular campaign (the Fig. 6
// benchmarks, so cmd/comparebench can diff snapshots across commits
// or vantages) extended with engine microbenchmarks — the 24-rep
// campaign wall-clock through the parallel and sequential engines,
// the full campaign-of-campaigns matrix (every service x workload x
// repetition flattened onto the shared scheduler pool, with a
// bit-identity check against the sequential engine), an adaptive
// sampling micro (the fixed 24-rep Cloud Drive campaign vs the
// antithetic sequential design stopped at the same achieved
// precision: repetitions spent, wall-clock, half-widths), the
// MeasureWindow path against the seed copy-and-rescan baseline, a
// memory micro (B/op, allocs/op via testing.Benchmark) of one large
// multi-MB repetition through the streaming engine vs a buffered
// trace, and a transport micro (ns and Sink.Record calls for a 16 MB
// loss-free transfer) of the closed-form engine vs the per-round
// event loop. scripts/bench.sh wraps it.
//
// Usage:
//
//	benchsnap [-out BENCH.json] [-reps N] [-seed N] [-commit SHA] [-skip-fig6]
//
// The snapshot stays a valid comparebench campaign file: unknown
// fields are ignored by its reader, so
//
//	comparebench -a BENCH_aaaa.json -b BENCH_bbbb.json
//
// reports simulated-metric regressions between two commits, while the
// micro section tracks how fast the engine produced them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dedup"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// campaignMicro is one service's engine timing on the acceptance
// workload (24 repetitions of 100x10 kB).
type campaignMicro struct {
	Service          string  `json:"service"`
	ParallelNs       int64   `json:"parallel_ns"`
	SequentialNs     int64   `json:"sequential_ns"`
	ParallelSpeedupX float64 `json:"parallel_speedup_x"`
}

type measureMicro struct {
	OnePassNs int64   `json:"one_pass_ns"`
	SeedNs    int64   `json:"seed_ns"`
	SpeedupX  float64 `json:"speedup_x"`
}

// matrixMicro times the campaign-of-campaigns scheduler on the full
// Fig. 6 experiment matrix (every service x workload x repetition
// flattened onto one shared pool) against the forced-sequential
// engine, and records that both produced bit-identical results.
type matrixMicro struct {
	Workload     string  `json:"workload"`
	Cells        int     `json:"cells"`
	ParallelNs   int64   `json:"parallel_ns"`
	SequentialNs int64   `json:"sequential_ns"`
	SpeedupX     float64 `json:"parallel_speedup_x"`
	Identical    bool    `json:"identical"`
}

// memoryMicro is the allocation profile of one large (multi-MB)
// campaign repetition in each trace mode, via testing.Benchmark: the
// streaming engine folds packets at record time (O(flows) trace
// memory), the buffered engine retains the whole packet trace
// (O(packets)). SavedBytesPerOp is the per-repetition allocation the
// streaming pipeline removes; a future regression shows up here as
// the two columns converging.
type memoryMicro struct {
	Workload string `json:"workload"`
	// PacketsPerRep is the per-round packet count of one repetition;
	// RecordsPerRep is how many records the capture actually stores
	// once steady-state transfers collapse into span records.
	PacketsPerRep        int   `json:"packets_per_rep"`
	RecordsPerRep        int   `json:"records_per_rep"`
	FlowsPerRep          int   `json:"flows_per_rep"`
	StreamingBytesPerOp  int64 `json:"streaming_b_per_op"`
	StreamingAllocsPerOp int64 `json:"streaming_allocs_per_op"`
	BufferedBytesPerOp   int64 `json:"buffered_b_per_op"`
	BufferedAllocsPerOp  int64 `json:"buffered_allocs_per_op"`
	SavedBytesPerOp      int64 `json:"saved_b_per_op"`
}

// transportMicro times one large loss-free transfer through the
// closed-form transport engine against the per-round event loop it
// replaced (Dialer.ForceEventLoop), and counts the Sink.Record calls
// each needed — the O(bytes/BDP) -> O(1) collapse of the steady-state
// phase, straight off the engines. The engines are record-for-record
// equivalent (internal/tcpsim's equivalence tests pin it); only the
// cost of producing the records differs.
type transportMicro struct {
	Workload         string  `json:"workload"`
	AnalyticNs       int64   `json:"analytic_ns"`
	EventLoopNs      int64   `json:"event_loop_ns"`
	SpeedupX         float64 `json:"speedup_x"`
	AnalyticRecords  int64   `json:"analytic_records"`
	EventLoopRecords int64   `json:"event_loop_records"`
	RecordReductionX float64 `json:"record_reduction_x"`
}

// contentMicro times the content-generation floor on both engines:
// Fork (per-file child seeding) plus full materialisation through the
// descriptor pipeline into pooled buffers, for one repetition's worth
// of files. The legacy engine pays a 607-word lagged-Fibonacci init
// per Fork and a per-call math/rand byte loop; the PCG engine seeds
// with two SplitMix64 rounds and fills eight bytes per generator step.
type contentMicro struct {
	Workload     string  `json:"workload"`
	LegacyNs     int64   `json:"legacy_ns"`
	PCGNs        int64   `json:"pcg_ns"`
	SpeedupX     float64 `json:"speedup_x"`
	LegacyBPerOp int64   `json:"legacy_b_per_op"`
	PCGBPerOp    int64   `json:"pcg_b_per_op"`
}

// transportLossyMicro times one large lossy transfer through the
// analytic engine (geometric next-loss sampling, clean runs emitted
// as spans) against the per-round event loop: engine ns, Sink.Record
// calls and RNG draws per transfer. The path is a 2 Mb/s uplink (the
// WhatIfMobileUplink rate), where slices are small and the per-round
// engine pays one draw per ~2 segments — the regime the ROADMAP's
// episode schedules and loss matrices live in.
type transportLossyMicro struct {
	Workload         string  `json:"workload"`
	LossRate         float64 `json:"loss_rate"`
	AnalyticNs       int64   `json:"analytic_ns"`
	EventLoopNs      int64   `json:"event_loop_ns"`
	SpeedupX         float64 `json:"speedup_x"`
	AnalyticRecords  int64   `json:"analytic_records"`
	EventLoopRecords int64   `json:"event_loop_records"`
	RecordReductionX float64 `json:"record_reduction_x"`
	AnalyticDraws    int64   `json:"analytic_rng_draws"`
	EventLoopDraws   int64   `json:"event_loop_rng_draws"`
	DrawReductionX   float64 `json:"draw_reduction_x"`
}

// adaptiveMicro pins the adaptive sampling engine's headline claim:
// at the precision the fixed 24-rep Cloud Drive campaign achieves,
// the antithetic sequential design stops with fewer repetitions and
// less wall-clock. TargetRelHW is the fixed run's achieved relative
// CI95 half-width — the bar the adaptive run must clear — and both
// runs are deterministic, so RepsSaved is a pinned number, not a
// sample.
type adaptiveMicro struct {
	Workload      string  `json:"workload"`
	FixedReps     int     `json:"fixed_reps"`
	FixedNs       int64   `json:"fixed_ns"`
	FixedRelHW    float64 `json:"fixed_rel_hw"`
	TargetRelHW   float64 `json:"target_rel_hw"`
	AdaptiveReps  int     `json:"adaptive_reps"`
	AdaptiveNs    int64   `json:"adaptive_ns"`
	AdaptiveRelHW float64 `json:"adaptive_rel_hw"`
	RepsSaved     int     `json:"reps_saved"`
	SpeedupX      float64 `json:"speedup_x"`
	TargetMet     bool    `json:"target_met"`
}

// fleetMicro pins the fleet engine's throughput and the sharded
// store's gain over a single global lock: one fleet day timed end to
// end (users/sec/core is the headline), the dedup-vs-population curve
// off FleetPopulationSweep, a bit-identity check of the sequential
// engine against the shared worker budget, and a concurrent PutHashed
// hammer on a 64-shard store vs the single-lock layout.
type fleetMicro struct {
	Workload        string  `json:"workload"`
	Users           int     `json:"users"`
	WallNs          int64   `json:"wall_ns"`
	UsersPerSecCore float64 `json:"users_per_sec_core"`
	DedupRatio      float64 `json:"dedup_ratio"`
	Identical       bool    `json:"identical"`

	// Allocation footprint of the hot path: heap bytes and mallocs
	// per simulated session over one sequential day, store and log
	// setup included (the same quantity the core allocation-ceiling
	// test gates).
	BPerSession      float64 `json:"b_per_session"`
	AllocsPerSession float64 `json:"allocs_per_session"`

	Populations []core.FleetPopulationPoint `json:"populations"`

	StoreHammer          string  `json:"store_hammer"`
	ShardedPutsPerSec    float64 `json:"sharded_puts_per_sec"`
	SingleLockPutsPerSec float64 `json:"single_lock_puts_per_sec"`
	ShardSpeedupX        float64 `json:"shard_speedup_x"`

	// HammerCurve is the full contention sweep behind the headline
	// pair: the same PutHashed mix at every (goroutines, shards)
	// combination, so a scaling regression shows where it starts, not
	// just at the endpoint.
	HammerCurve []hammerPoint `json:"hammer_curve"`
}

// hammerPoint is one cell of the store hammer sweep.
type hammerPoint struct {
	Goroutines int     `json:"goroutines"`
	Shards     int     `json:"shards"`
	PutsPerSec float64 `json:"puts_per_sec"`
}

type micro struct {
	GoMaxProcs       int                 `json:"go_max_procs"`
	CampaignWorkload string              `json:"campaign_workload"`
	Campaign         []campaignMicro     `json:"campaign"`
	Adaptive         adaptiveMicro       `json:"adaptive"`
	Matrix           matrixMicro         `json:"matrix"`
	MeasureWindow    measureMicro        `json:"measure_window"`
	Memory           memoryMicro         `json:"memory"`
	Transport        transportMicro      `json:"transport"`
	TransportLossy   transportLossyMicro `json:"transport_lossy"`
	Content          []contentMicro      `json:"content"`
	Fleet            fleetMicro          `json:"fleet"`
}

// snapshot is a core.Campaign plus the engine micro section; the
// embedded fields keep it readable by core.ReadCampaign.
type snapshot struct {
	core.Campaign
	Commit string `json:"commit,omitempty"`
	Micro  micro  `json:"micro"`
}

func main() {
	var (
		out      = flag.String("out", "", "output path (default stdout)")
		reps     = flag.Int("reps", 4, "repetitions per Fig. 6 workload in the embedded campaign")
		seed     = flag.Int64("seed", 42, "base random seed")
		commit   = flag.String("commit", "", "commit id recorded in the snapshot")
		skipFig6 = flag.Bool("skip-fig6", false, "skip the embedded Fig. 6 campaign (micro section only)")
	)
	flag.Parse()

	snap := snapshot{Commit: *commit}
	snap.Micro.GoMaxProcs = runtime.GOMAXPROCS(0)
	snap.Micro.CampaignWorkload = "24 reps x (100 x 10 kB)"

	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	for _, svc := range []string{"clouddrive", "dropbox"} {
		p, _ := client.ProfileFor(svc)
		par := minWall(3, func() { core.RunCampaignParallel(p, batch, 24, *seed, 0) })
		seq := minWall(3, func() { core.RunCampaignParallel(p, batch, 24, *seed, 1) })
		snap.Micro.Campaign = append(snap.Micro.Campaign, campaignMicro{
			Service:          svc,
			ParallelNs:       par.Nanoseconds(),
			SequentialNs:     seq.Nanoseconds(),
			ParallelSpeedupX: ratio(seq, par),
		})
	}

	snap.Micro.Adaptive = adaptiveMicroBench(*seed)

	// Campaign-of-campaigns matrix: all services, four workloads,
	// 4 repetitions each, flattened onto the shared scheduler pool vs
	// the forced-sequential engine.
	const matrixReps = 4
	profiles := client.Profiles()
	var parRes, seqRes []core.Fig6Result
	parWall := minWall(2, func() { parRes = core.Fig6Matrix(profiles, matrixReps, *seed) })
	core.CampaignWorkers = 1
	seqWall := minWall(2, func() { seqRes = core.Fig6Matrix(profiles, matrixReps, *seed) })
	core.CampaignWorkers = 0
	snap.Micro.Matrix = matrixMicro{
		Workload:     fmt.Sprintf("%d services x 4 workloads x %d reps", len(profiles), matrixReps),
		Cells:        len(profiles) * 4 * matrixReps,
		ParallelNs:   parWall.Nanoseconds(),
		SequentialNs: seqWall.Nanoseconds(),
		SpeedupX:     ratio(seqWall, parWall),
		Identical:    reflect.DeepEqual(parRes, seqRes),
	}

	tb, t0, total := syncedTestbed(client.CloudDrive(), *seed)
	onePass := minWall(5, func() {
		for i := 0; i < 200; i++ {
			core.MeasureWindow(tb, t0, total)
		}
	})
	seedStyle := minWall(5, func() {
		for i := 0; i < 200; i++ {
			seedMeasureWindow(tb, t0, total)
		}
	})
	snap.Micro.MeasureWindow = measureMicro{
		OnePassNs: onePass.Nanoseconds() / 200,
		SeedNs:    seedStyle.Nanoseconds() / 200,
		SpeedupX:  ratio(seedStyle, onePass),
	}

	snap.Micro.Memory = memoryMicroBench(*seed)
	snap.Micro.Fleet = fleetMicroBench(*seed)
	snap.Micro.Transport = transportMicroBench()
	snap.Micro.TransportLossy = transportLossyMicroBench()
	snap.Micro.Content = []contentMicro{
		contentMicroBench("100 x 10 kB", 100, 10_000),
		contentMicroBench("4 x 4 MB", 4, 4<<20),
	}

	if !*skipFig6 {
		v, _ := core.VantageByName("twente")
		snap.Campaign = core.RunFullCampaign(v, *reps, *seed)
	} else {
		snap.Campaign = core.Campaign{
			Tool: core.ToolVersion, Vantage: "twente", Seed: *seed, Reps: *reps,
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// adaptiveMicroBench runs the fixed-24 Cloud Drive campaign, takes
// its achieved precision as the target, and times the antithetic
// adaptive engine getting there.
func adaptiveMicroBench(seed int64) adaptiveMicro {
	p := client.CloudDrive()
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}

	var fixed core.Summary
	fixedWall := minWall(3, func() { fixed = core.RunCampaign(p, batch, 24, seed) })

	rule := core.StopRule{TargetRelHW: fixed.AchievedRelHW, MinReps: 8, MaxReps: 96}
	vr := core.VarianceReduction{Antithetic: true}
	var adaptive core.Summary
	adaptiveWall := minWall(3, func() { adaptive = core.RunCampaignAdaptive(p, batch, rule, vr, seed) })

	return adaptiveMicro{
		Workload:      "clouddrive, 100 x 10 kB, fixed 24 reps vs antithetic adaptive at equal precision",
		FixedReps:     fixed.RepsUsed,
		FixedNs:       fixedWall.Nanoseconds(),
		FixedRelHW:    fixed.AchievedRelHW,
		TargetRelHW:   rule.TargetRelHW,
		AdaptiveReps:  adaptive.RepsUsed,
		AdaptiveNs:    adaptiveWall.Nanoseconds(),
		AdaptiveRelHW: adaptive.AchievedRelHW,
		RepsSaved:     fixed.RepsUsed - adaptive.RepsUsed,
		SpeedupX:      ratio(fixedWall, adaptiveWall),
		TargetMet:     adaptive.AchievedRelHW <= rule.TargetRelHW,
	}
}

// memoryMicroBench measures B/op and allocs/op of one large multi-MB
// campaign repetition through the streaming engine (core.RunSync) and
// through an identical repetition on a buffered trace. Cloud Drive
// carries no compression capability, so the numbers isolate the
// engine — content generation, transport simulation and the trace
// layer — rather than DEFLATE.
func memoryMicroBench(seed int64) memoryMicro {
	p := client.CloudDrive()
	batch := workload.Batch{Count: 4, Size: 4 << 20, Kind: workload.Binary}

	bufferedRep := func() *core.Testbed {
		tb := core.NewTestbed(p, seed, core.DefaultJitter)
		start := tb.Settle()
		t0 := tb.Clock.Now()
		batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
		res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
		tb.Clock.AdvanceTo(res.Done)
		core.MeasureWindow(tb, t0, batch.Total())
		return tb
	}

	stream := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.RunSync(p, batch, seed, core.DefaultJitter)
		}
	})
	var tb *core.Testbed // trace shape for context, from the last iteration
	buffered := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tb = bufferedRep()
		}
	})

	return memoryMicro{
		Workload:             fmt.Sprintf("%d x %d MB", batch.Count, batch.Size>>20),
		PacketsPerRep:        tb.Cap.ExpandedLen(),
		RecordsPerRep:        tb.Cap.Len(),
		FlowsPerRep:          tb.Cap.NumFlows(),
		StreamingBytesPerOp:  stream.AllocedBytesPerOp(),
		StreamingAllocsPerOp: stream.AllocsPerOp(),
		BufferedBytesPerOp:   buffered.AllocedBytesPerOp(),
		BufferedAllocsPerOp:  buffered.AllocsPerOp(),
		SavedBytesPerOp:      buffered.AllocedBytesPerOp() - stream.AllocedBytesPerOp(),
	}
}

// contentMicroBench measures one repetition's content generation —
// count files of size bytes, each Fork-seeded and materialised through
// the descriptor pipeline into pooled buffers — on the legacy and PCG
// engines. This was ~50% of a Cloud Drive campaign repetition before
// the descriptor pipeline; the micro tracks that the floor stays gone.
func contentMicroBench(label string, count int, size int64) contentMicro {
	run := func(newRNG func(int64) *sim.RNG) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rng := newRNG(42)
				for j := 0; j < count; j++ {
					d := workload.Describe(rng.Fork(int64(j)), workload.Binary, size)
					buf := d.AppendTo(workload.GetBuffer(size))
					workload.PutBuffer(buf)
				}
			}
		})
	}
	pcg := run(sim.NewRNG)
	legacy := run(sim.NewLegacyRNG)
	m := contentMicro{
		Workload:     label,
		LegacyNs:     legacy.NsPerOp(),
		PCGNs:        pcg.NsPerOp(),
		LegacyBPerOp: legacy.AllocedBytesPerOp(),
		PCGBPerOp:    pcg.AllocedBytesPerOp(),
	}
	if pcg.NsPerOp() > 0 {
		m.SpeedupX = float64(legacy.NsPerOp()) / float64(pcg.NsPerOp())
	}
	return m
}

// fleetMicroBench times one 10k-user service day through the fleet
// engine, sweeps the dedup ratio over population sizes, checks the
// parallel day is bit-identical to the sequential one, and hammers
// PutHashed from GOMAXPROCS×2 goroutines against the 64-shard and
// single-lock store layouts.
func fleetMicroBench(seed int64) fleetMicro {
	const users = 10_000
	cfg := func() core.FleetConfig { return core.FleetConfig{Users: users, Seed: seed} }

	var res core.FleetResult
	wall := minWall(2, func() { res = core.RunFleet(cfg(), 0) })

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	seqRes := core.RunFleet(cfg(), 1)
	runtime.ReadMemStats(&after)

	m := fleetMicro{
		Workload:   "10k users x 1 service day, default class mix",
		Users:      users,
		WallNs:     wall.Nanoseconds(),
		DedupRatio: res.DedupRatio,
		Identical:  reflect.DeepEqual(res, seqRes),
		Populations: core.FleetPopulationSweep(
			core.FleetConfig{Seed: seed}, []int{1000, 4000, 16000}, 0),
	}
	if secs := wall.Seconds(); secs > 0 {
		m.UsersPerSecCore = float64(users) / secs / float64(runtime.GOMAXPROCS(0))
	}
	if s := seqRes.Sessions; s > 0 {
		m.BPerSession = float64(after.TotalAlloc-before.TotalAlloc) / float64(s)
		m.AllocsPerSession = float64(after.Mallocs-before.Mallocs) / float64(s)
	}

	// Store hammer: the same concurrent PutHashed mix swept over
	// goroutine counts and lock layouts. 70% of ops hit a small
	// contended hash set, the rest are per-goroutine unique — the
	// fleet's popular-catalog access shape.
	const (
		opsPerG = 200_000
		hotSet  = 512
	)
	hammer := func(goroutines, shards int) float64 {
		hot := make([]dedup.Hash, hotSet)
		rng := sim.NewRNG(seed)
		for i := range hot {
			rng.Fill(hot[i][:])
		}
		s := dedup.NewStoreShardedSized(shards, hotSet+goroutines*256)
		// Settle the heap first: the hammer follows allocation-heavy
		// micros in the same process, and a GC cycle landing inside
		// one layout's timing but not the other's would skew the
		// speedup ratio.
		runtime.GC()
		wall := minWall(3, func() {
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					cold := make([]dedup.Hash, 256)
					rng := sim.NewRNG(seed + int64(g) + 1)
					for i := range cold {
						rng.Fill(cold[i][:])
					}
					for i := 0; i < opsPerG; i++ {
						if i%10 < 7 {
							s.PutHashed(hot[(i*13+g)%hotSet], 100)
						} else {
							s.PutHashed(cold[i%len(cold)], 10)
						}
					}
				}(g)
			}
			wg.Wait()
		})
		return float64(goroutines*opsPerG) / wall.Seconds()
	}
	for _, goroutines := range []int{1, 2, 4, 8} {
		for _, shards := range []int{1, 16, 64} {
			m.HammerCurve = append(m.HammerCurve, hammerPoint{
				Goroutines: goroutines,
				Shards:     shards,
				PutsPerSec: hammer(goroutines, shards),
			})
		}
	}
	// Headline pair: the 8-goroutine endpoint of the curve, kept as
	// flat fields so dashboards and trend tooling read one number.
	m.StoreHammer = fmt.Sprintf("{1,2,4,8} goroutines x %dk PutHashed x {1,16,64} shards, 70%% on %d hot hashes",
		opsPerG/1000, hotSet)
	for _, p := range m.HammerCurve {
		if p.Goroutines == 8 && p.Shards == 64 {
			m.ShardedPutsPerSec = p.PutsPerSec
		}
		if p.Goroutines == 8 && p.Shards == 1 {
			m.SingleLockPutsPerSec = p.PutsPerSec
		}
	}
	if m.SingleLockPutsPerSec > 0 {
		m.ShardSpeedupX = m.ShardedPutsPerSec / m.SingleLockPutsPerSec
	}
	return m
}

// countingSink counts Sink.Record calls and discards the records: it
// isolates the engine's own cost from any trace retention.
type countingSink struct {
	flows   int
	records int64
}

func (s *countingSink) OpenFlow(trace.FlowKey, string, time.Time) trace.FlowID {
	s.flows++
	return trace.FlowID(s.flows - 1)
}
func (s *countingSink) Record(trace.Packet) { s.records++ }

// transportMicroBench measures a 16 MB loss-free upstream transfer on
// a 30 Mb/s mid-RTT path (a Wuala-Zurich-like data center) through
// the closed-form engine and through the per-round event loop: ns per
// transfer and Sink.Record calls per transfer.
func transportMicroBench() transportMicro {
	const payload = 16 << 20
	// Topology built once: the timed region is dial + transfer, i.e.
	// the transport engine itself.
	n := netem.New(sim.NewClock(), sim.NewRNG(1))
	clientHost := n.AddHost(&netem.Host{Name: "client.sim", Addr: "10.0.0.1",
		Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
	server := n.AddHost(&netem.Host{Name: "server.sim", Addr: "203.0.113.1",
		Coord: geo.Coord{Lat: 47.38, Lon: 8.54}, RateBps: 30e6})
	run := func(force bool) (time.Duration, int64) {
		var sink countingSink
		var rec int64
		wall := minWall(7, func() {
			d := tcpsim.NewDialer(n, &sink, clientHost)
			d.ForceEventLoop = force
			before := sink.records
			c := d.Dial(server, "storage.sim", sim.Epoch, tcpsim.DefaultTLS)
			c.Send(payload)
			rec = sink.records - before
		})
		return wall, rec
	}
	analyticWall, analyticRec := run(false)
	eventWall, eventRec := run(true)
	m := transportMicro{
		Workload:         "16 MB upstream, 30 Mb/s, loss-free",
		AnalyticNs:       analyticWall.Nanoseconds(),
		EventLoopNs:      eventWall.Nanoseconds(),
		SpeedupX:         ratio(eventWall, analyticWall),
		AnalyticRecords:  analyticRec,
		EventLoopRecords: eventRec,
	}
	if analyticRec > 0 {
		m.RecordReductionX = float64(eventRec) / float64(analyticRec)
	}
	return m
}

// transportLossyMicroBench measures a 16 MB upstream transfer at 2%
// segment loss on a 2 Mb/s mobile-uplink path through the analytic
// engine and through the per-round event loop. The topology (and its
// RNG seed) is rebuilt per run so both engines sample the loss
// process from the same stream; record and draw counts come from the
// final timed run of each engine.
func transportLossyMicroBench() transportLossyMicro {
	const (
		payload  = 16 << 20
		lossRate = 0.02
	)
	run := func(force bool) (time.Duration, int64, int64) {
		var records, draws int64
		wall := minWall(7, func() {
			n := netem.New(sim.NewClock(), sim.NewRNG(1))
			n.LossRate = lossRate
			clientHost := n.AddHost(&netem.Host{Name: "client.sim", Addr: "10.0.0.1",
				Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
			server := n.AddHost(&netem.Host{Name: "server.sim", Addr: "203.0.113.1",
				Coord: geo.Coord{Lat: 47.38, Lon: 8.54}, RateBps: 2e6})
			var sink countingSink
			d := tcpsim.NewDialer(n, &sink, clientHost)
			d.ForceEventLoop = force
			c := d.Dial(server, "storage.sim", sim.Epoch, tcpsim.DefaultTLS)
			c.Send(payload)
			records = sink.records
			draws = d.LossDraws()
		})
		return wall, records, draws
	}
	analyticWall, analyticRec, analyticDraws := run(false)
	eventWall, eventRec, eventDraws := run(true)
	m := transportLossyMicro{
		Workload:         "16 MB upstream, 2 Mb/s, 2% loss",
		LossRate:         lossRate,
		AnalyticNs:       analyticWall.Nanoseconds(),
		EventLoopNs:      eventWall.Nanoseconds(),
		SpeedupX:         ratio(eventWall, analyticWall),
		AnalyticRecords:  analyticRec,
		EventLoopRecords: eventRec,
		AnalyticDraws:    analyticDraws,
		EventLoopDraws:   eventDraws,
	}
	if analyticRec > 0 {
		m.RecordReductionX = float64(eventRec) / float64(analyticRec)
	}
	if analyticDraws > 0 {
		m.DrawReductionX = float64(eventDraws) / float64(analyticDraws)
	}
	return m
}

// minWall returns the fastest of n wall-clock timings of fn.
func minWall(n int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// syncedTestbed simulates one full 100x10 kB upload and returns the
// testbed ready for measurement.
func syncedTestbed(p client.Profile, seed int64) (*core.Testbed, time.Time, int64) {
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	tb := core.NewTestbed(p, seed, core.DefaultJitter)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	return tb, t0, batch.Total()
}

// seedMeasureWindow replicates the seed measurement path scan for
// scan — a copying window, then one independent full pass (each with
// its own flow-set materialisation) per metric — so every snapshot
// re-measures the engine against the same baseline on the same
// hardware. internal/core's TestSeedMeasureWindowReference pins an
// identical reference against the production MeasureWindow.
func seedMeasureWindow(tb *core.Testbed, t0 time.Time, contentBytes int64) core.Metrics {
	var packets []trace.Packet
	for _, p := range tb.Cap.ExpandedPackets() {
		if !p.Time.Before(t0) && p.Time.Before(trace.FarFuture) {
			packets = append(packets, p)
		}
	}
	flows := tb.Cap.Flows()
	set := func(f trace.FlowFilter) []bool {
		s := make([]bool, len(flows))
		for i, fl := range flows {
			s[i] = f == nil || f(fl)
		}
		return s
	}
	storage := tb.StorageFilter(t0)

	var m core.Metrics
	var first, last time.Time
	var ok1 bool
	for s, i := set(storage), 0; i < len(packets); i++ {
		if p := packets[i]; s[p.Flow] && p.HasPayload() {
			first = p.Time
			ok1 = true
			break
		}
	}
	for s, i := set(storage), len(packets)-1; i >= 0; i-- {
		if p := packets[i]; s[p.Flow] && p.HasPayload() {
			last = p.Time
			break
		}
	}
	if ok1 {
		m.Startup = first.Sub(t0)
		m.Completion = last.Sub(first)
	}
	for s, i := set(trace.AllFlows), 0; i < len(packets); i++ {
		if p := packets[i]; s[p.Flow] {
			m.TotalTraffic += p.Wire + p.AckWire
		}
	}
	for s, i := set(storage), 0; i < len(packets); i++ {
		p := packets[i]
		if !s[p.Flow] {
			continue
		}
		if p.Dir == trace.Upstream {
			m.StorageUp += p.Wire
		} else {
			m.StorageUp += p.AckWire
		}
	}
	if contentBytes > 0 {
		m.Overhead = float64(m.TotalTraffic) / float64(contentBytes)
	}
	for s, i := set(trace.AllFlows), 0; i < len(packets); i++ {
		p := packets[i]
		if s[p.Flow] && p.Flags.SYN && !p.Flags.ACK && p.Dir == trace.Upstream {
			m.Connections++
		}
	}
	if m.Completion > 0 && contentBytes > 0 {
		m.GoodputBps = float64(contentBytes*8) / m.Completion.Seconds()
	}
	return m
}
