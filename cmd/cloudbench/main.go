// Command cloudbench runs the complete benchmarking campaign of
// "Benchmarking Personal Cloud Storage" (IMC'13): capability checks,
// performance benchmarks, idle-traffic measurement and architecture
// discovery, for one service or all five.
//
// Usage:
//
//	cloudbench [-service NAME|all] [-experiment NAME|all] [-reps N] [-seed N] [-parallel N]
//	cloudbench -loss RATES [-service NAME|all] [-reps N] [-seed N] [-parallel N]
//
// Experiments: table1, fig1, fig3, fig4, fig5, fig6, discover, all.
//
// -loss switches to the loss-sweep mode: a comma-separated list of
// segment-loss rates (e.g. "0.005,0.02,0.08") crossed with the
// selected services, each cell a summarized set of lossy upload
// repetitions through the analytic lossy transport engine.
//
// -precision switches the repeated experiments (fig6, locations, the
// loss sweep) to the adaptive sampling engine: each cell runs until
// the relative CI95 half-width of its headline metrics is at most the
// target (e.g. 0.05 for ±5%), bounded by -min-reps/-max-reps, instead
// of burning a fixed -reps budget. -antithetic pairs repetitions on
// mirrored random streams and -crn gives every service a common
// random-number stream — both shrink the variance so the target is
// hit with fewer repetitions. Adaptive runs stay bit-identical at any
// -parallel setting, including the number of repetitions executed.
//
// -parallel sets the fan-out of the whole experiment matrix: every
// independent cell — benchmark repetitions, Fig. 4/5 sweep sizes,
// capability detectors, (service, workload, vantage) combinations —
// runs concurrently on its own isolated testbed, drawing from one
// shared worker budget (0 = one worker per CPU, 1 = the classic
// sequential engine; nested fan-outs never oversubscribe). Every cell
// derives all randomness from its own index, so results are
// bit-identical at any worker count; -parallel only changes
// wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/workload"
)

func main() {
	var (
		service    = flag.String("service", "all", "service to benchmark (dropbox, skydrive, wuala, googledrive, clouddrive, all)")
		experiment = flag.String("experiment", "all", "experiment to run (table1, fig1, fig3, fig4, fig5, fig6, discover, protocols, bundling, recovery, propagation, locations, whatif, all)")
		reps       = flag.Int("reps", core.DefaultReps, "repetitions per benchmark (the paper uses 24)")
		seed       = flag.Int64("seed", 42, "base random seed")
		doPlot     = flag.Bool("plot", false, "render ASCII charts for figs 1, 3 and 6")
		parallel   = flag.Int("parallel", 0, "concurrent experiment cells across the whole matrix (0 = one per CPU, 1 = sequential; results are identical at any setting)")
		loss       = flag.String("loss", "", "comma-separated segment-loss rates (e.g. 0.005,0.02,0.08): run the loss-sweep mode instead of -experiment")
		precision  = flag.Float64("precision", 0, "adaptive sampling: stop each repeated cell once the relative CI95 half-width is at most this (e.g. 0.05); 0 = fixed -reps")
		minReps    = flag.Int("min-reps", core.DefaultMinReps, "adaptive sampling: smallest sample a cell may stop at")
		maxReps    = flag.Int("max-reps", core.DefaultMaxReps, "adaptive sampling: hard repetition cap per cell")
		antithetic = flag.Bool("antithetic", false, "adaptive sampling: pair repetitions on mirrored random streams (variance reduction)")
		crn        = flag.Bool("crn", false, "adaptive sampling: common random numbers across services (pairs cross-service comparisons)")
	)
	flag.Parse()
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "-parallel must be >= 0 (got %d)\n", *parallel)
		os.Exit(2)
	}
	core.CampaignWorkers = *parallel
	if *precision < 0 || *precision >= 1 {
		if *precision != 0 {
			fmt.Fprintf(os.Stderr, "-precision must be in (0, 1) (got %g)\n", *precision)
			os.Exit(2)
		}
	}
	rule := core.StopRule{TargetRelHW: *precision, MinReps: *minReps, MaxReps: *maxReps}
	vr := core.VarianceReduction{Antithetic: *antithetic, CRN: *crn}
	adaptive := *precision > 0

	profiles, err := selectProfiles(*service)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *loss != "" {
		rates, err := parseLossRates(*loss)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if adaptive {
			lossSweepAdaptive(profiles, rates, rule, vr, *seed)
		} else {
			lossSweep(profiles, rates, *reps, *seed)
		}
		return
	}
	run := func(name string) bool { return *experiment == "all" || *experiment == name }

	any := false
	if run("table1") {
		any = true
		table1(profiles, *seed)
	}
	if run("fig1") {
		any = true
		fig1(profiles, *seed, *doPlot)
	}
	if run("fig3") {
		any = true
		fig3(*seed, *doPlot)
	}
	if run("fig4") {
		any = true
		fig4(profiles, *seed)
	}
	if run("fig5") {
		any = true
		fig5(profiles, *seed)
	}
	if run("fig6") {
		any = true
		if adaptive {
			fig6Adaptive(profiles, rule, vr, *seed, *doPlot)
		} else {
			fig6(profiles, *reps, *seed, *doPlot)
		}
	}
	if run("discover") {
		any = true
		discover(profiles, *seed)
	}
	if run("protocols") {
		any = true
		protocols(profiles, *seed)
	}
	if run("bundling") {
		any = true
		bundling(profiles, *seed)
	}
	if run("recovery") {
		any = true
		recovery(*seed)
	}
	if run("propagation") {
		any = true
		propagation(profiles, *seed)
	}
	if run("locations") {
		any = true
		if adaptive {
			locationsAdaptive(rule, vr, *seed)
		} else {
			locations(*seed)
		}
	}
	if run("whatif") {
		any = true
		whatif(*seed)
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func selectProfiles(service string) ([]client.Profile, error) {
	if service == "all" {
		return client.Profiles(), nil
	}
	p, ok := client.ProfileFor(service)
	if !ok {
		return nil, fmt.Errorf("unknown service %q (valid: %s, all)",
			service, strings.Join(cloud.ServiceNames, ", "))
	}
	return []client.Profile{p}, nil
}

func table1(profiles []client.Profile, seed int64) {
	fmt.Println("== Table 1: capabilities per service (detected from traffic) ==")
	caps := core.DetectCapabilitiesAll(profiles, seed)
	var order []string
	for _, p := range profiles {
		order = append(order, p.Service)
	}
	fmt.Print(core.Table1(caps, order))
	fmt.Println()
}

func fig1(profiles []client.Profile, seed int64, doPlot bool) {
	fmt.Println("== Fig 1: background traffic while idle (16 min) ==")
	results := core.RunN(len(profiles), 0, func(i int) core.IdleResult {
		return core.RunIdle(profiles[i], seed)
	})
	fmt.Print(core.Fig1Report(results))
	if doPlot {
		var series []plot.Series
		for _, r := range results {
			s := plot.Series{Label: r.Service}
			for _, pt := range sampleTimeline(r) {
				s.X = append(s.X, pt.t/60)
				s.Y = append(s.Y, pt.kb)
			}
			series = append(series, s)
		}
		fmt.Println()
		fmt.Print(plot.Lines(series, plot.Options{
			Title:  "Fig 1: cumulative control traffic while idle",
			XLabel: "minutes", YLabel: "kB",
		}))
	}
	fmt.Println("\ncumulative timeline (CSV: service,t_seconds,kbytes)")
	for _, r := range results {
		for _, pt := range sampleTimeline(r) {
			fmt.Printf("%s,%.0f,%.1f\n", r.Service, pt.t, pt.kb)
		}
	}
	fmt.Println()
}

type tlPoint struct {
	t  float64
	kb float64
}

// sampleTimeline thins a cumulative timeline to one point per minute
// so the CSV stays plottable by eye.
func sampleTimeline(r core.IdleResult) []tlPoint {
	if len(r.Timeline) == 0 {
		return nil
	}
	t0 := r.Timeline[0].Time
	var out []tlPoint
	nextMark := 0.0
	for _, pt := range r.Timeline {
		sec := pt.Time.Sub(t0).Seconds()
		if sec >= nextMark {
			out = append(out, tlPoint{t: sec, kb: float64(pt.Bytes) / 1000})
			nextMark = sec + 60
		}
	}
	return out
}

func fig3(seed int64, doPlot bool) {
	fmt.Println("== Fig 3: cumulative TCP SYNs while uploading 100 x 10 kB ==")
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	var series []plot.Series
	for _, svc := range []string{"clouddrive", "googledrive"} {
		p, _ := client.ProfileFor(svc)
		s := core.RunSYNCount(p, batch, seed)
		fmt.Printf("%s: %d connections, upload completed in %s\n",
			svc, len(s.Times), core.FormatDuration(s.Duration))
		if doPlot {
			ps := plot.Series{Label: svc}
			for i, t := range s.Times {
				ps.X = append(ps.X, t.Seconds())
				ps.Y = append(ps.Y, float64(i+1))
			}
			series = append(series, ps)
			continue
		}
		fmt.Print(core.SYNSeriesCSV(s))
	}
	if doPlot {
		fmt.Println()
		fmt.Print(plot.Lines(series, plot.Options{
			Title: "Fig 3: cumulative TCP SYNs", XLabel: "seconds", YLabel: "SYNs",
		}))
	}
	fmt.Println()
}

func fig4(profiles []client.Profile, seed int64) {
	fmt.Println("== Fig 4: delta encoding tests (upload after modifying a file) ==")
	for _, mod := range []core.ModKind{core.ModAppend, core.ModRandom} {
		fmt.Printf("-- %s, +100 kB (CSV: series,file_bytes,upload_bytes)\n", mod)
		series := core.RunN(len(profiles), 0, func(i int) []core.VolumePoint {
			return core.Fig4DeltaSeries(profiles[i], mod, core.Fig4Sizes(mod), 100<<10, seed)
		})
		for i, pts := range series {
			fmt.Print(core.VolumeSeriesCSV(profiles[i].Service+"-"+mod.String(), pts))
		}
	}
	fmt.Println()
}

func fig5(profiles []client.Profile, seed int64) {
	fmt.Println("== Fig 5: bytes uploaded during the compression test ==")
	for _, kind := range []workload.Kind{workload.Text, workload.Binary, workload.FakeJPEG} {
		fmt.Printf("-- %s files (CSV: series,file_bytes,upload_bytes)\n", kind)
		series := core.RunN(len(profiles), 0, func(i int) []core.VolumePoint {
			return core.Fig5CompressionSeries(profiles[i], kind, core.Fig5Sizes(), seed)
		})
		for i, pts := range series {
			fmt.Print(core.VolumeSeriesCSV(profiles[i].Service+"-"+kind.String(), pts))
		}
	}
	fmt.Println()
}

func fig6(profiles []client.Profile, reps int, seed int64, doPlot bool) {
	fmt.Printf("== Fig 6: benchmarks, %d repetitions per workload ==\n", reps)
	results := core.Fig6Matrix(profiles, reps, seed)
	fmt.Print(core.Fig6Report(results))
	if doPlot && len(results) > 0 {
		var labels []string
		for _, r := range results {
			labels = append(labels, r.Service)
		}
		var groups []plot.BarGroup
		for wi, w := range results[0].Workloads {
			g := plot.BarGroup{Label: w.String()}
			for _, r := range results {
				g.Values = append(g.Values, r.Summaries[wi].MeanCompletion.Seconds())
			}
			groups = append(groups, g)
		}
		fmt.Println()
		fmt.Print(plot.Bars(groups, labels, plot.Options{
			Title: "Fig 6(b): completion time (s)", Width: 48, LogY: true,
		}))
	}
	fmt.Println()
}

// fig6Adaptive is fig6 under a stopping rule: same tables, plus the
// sampling matrix showing where the repetition budget went.
func fig6Adaptive(profiles []client.Profile, rule core.StopRule, vr core.VarianceReduction, seed int64, doPlot bool) {
	fmt.Printf("== Fig 6: benchmarks, adaptive to ±%.1f%% (max %d reps) ==\n",
		rule.TargetRelHW*100, rule.MaxReps)
	results := core.Fig6MatrixAdaptive(profiles, rule, vr, seed)
	fmt.Print(core.Fig6Report(results))
	fmt.Print(core.PrecisionReport(results))
	if doPlot && len(results) > 0 {
		var labels []string
		for _, r := range results {
			labels = append(labels, r.Service)
		}
		var groups []plot.BarGroup
		for wi, w := range results[0].Workloads {
			g := plot.BarGroup{Label: w.String()}
			for _, r := range results {
				g.Values = append(g.Values, r.Summaries[wi].MeanCompletion.Seconds())
			}
			groups = append(groups, g)
		}
		fmt.Println()
		fmt.Print(plot.Bars(groups, labels, plot.Options{
			Title: "Fig 6(b): completion time (s)", Width: 48, LogY: true,
		}))
	}
	fmt.Println()
}

func locationsAdaptive(rule core.StopRule, vr core.VarianceReduction, seed int64) {
	fmt.Printf("== Location study: 1x1MB completion, adaptive to ±%.1f%% ==\n", rule.TargetRelHW*100)
	var vantages []core.Vantage
	for _, name := range []string{"twente", "SEA", "IAD", "SIN", "SYD"} {
		v, ok := core.VantageByName(name)
		if !ok {
			continue
		}
		vantages = append(vantages, v)
	}
	batch := workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}
	cells := core.LocationStudyAdaptive(batch, vantages, rule, vr, seed)
	fmt.Print(core.LocationSummaryReport(cells, vantages))
	fmt.Println()
}

func lossSweepAdaptive(profiles []client.Profile, rates []float64, rule core.StopRule, vr core.VarianceReduction, seed int64) {
	fmt.Printf("== Loss sweep: %s, adaptive to ±%.1f%% (max %d reps) ==\n",
		core.DefaultLossBatch, rule.TargetRelHW*100, rule.MaxReps)
	cells := core.LossSweepAdaptive(profiles, rates, core.DefaultLossBatch, core.Twente, rule, vr, seed)
	fmt.Printf("%-14s%10s%14s%12s%12s%8s%12s\n", "service", "loss", "completion", "startup", "overhead", "reps", "achieved")
	for _, c := range cells {
		fmt.Printf("%-14s%9.2f%%%13.1fs%11.1fs%11.2fx%8d%11.2f%%\n",
			c.Service, c.LossRate*100,
			c.Summary.MeanCompletion.Seconds(), c.Summary.MeanStartup.Seconds(),
			c.Summary.MeanOverhead, c.Summary.RepsUsed, c.Summary.AchievedRelHW*100)
	}
	fmt.Println("\nCSV: service,loss_rate,completion_s,startup_s,overhead_x,reps_used,achieved_rel_hw")
	for _, c := range cells {
		fmt.Printf("%s,%g,%.3f,%.3f,%.3f,%d,%.5f\n",
			c.Service, c.LossRate,
			c.Summary.MeanCompletion.Seconds(), c.Summary.MeanStartup.Seconds(),
			c.Summary.MeanOverhead, c.Summary.RepsUsed, c.Summary.AchievedRelHW)
	}
	fmt.Println()
}

func discover(profiles []client.Profile, seed int64) {
	fmt.Println("== Architecture discovery (Sect. 2.1 / 3.2, Fig. 2) ==")
	for _, p := range profiles {
		fmt.Print(core.DiscoveryReport(core.Discover(p, seed)))
	}
	fmt.Println()
}

func protocols(profiles []client.Profile, seed int64) {
	fmt.Println("== Protocol behaviour (Sect. 3.1) ==")
	fmt.Printf("%-14s%-12s%-8s%-14s%-14s%-12s%s\n",
		"service", "poll", "conn/", "idle (b/s)", "login", "split", "plain HTTP")
	fmt.Printf("%-14s%-12s%-8s%-14s%-14s%-12s%s\n",
		"", "interval", "poll", "", "srv / kB", "ctl/sto", "")
	for _, p := range profiles {
		r := core.AnalyzeProtocols(p, seed)
		fmt.Printf("%-14s%-12s%-8v%-14.0f%2d / %-8.0f%-12v%v\n",
			r.Service, r.PollInterval, r.PollConnPerPoll, r.IdleRateBps,
			r.LoginServers, float64(r.LoginBytes)/1000,
			r.SplitControlStorage, r.PlainHTTPNames)
	}
	fmt.Println()
}

func bundling(profiles []client.Profile, seed int64) {
	fmt.Println("== Bundling test (Sect. 4.2): 1 MB split into 1/10/100/1000 files ==")
	for _, p := range profiles {
		st := core.RunBundlingStudy(p, 1_000_000, seed)
		fmt.Printf("%-14s", st.Service)
		for i, r := range st.Results {
			fmt.Printf("  %s: %6.1fs %4d conns %5.2fx |", st.Sets[i], r.Completion.Seconds(), r.Connections, r.Overhead)
		}
		fmt.Println()
	}
	fmt.Println()
}

func recovery(seed int64) {
	fmt.Println("== Upload recovery under failures (Sect. 4.1 motivation) ==")
	fmt.Println("16 MB upload, storage path fails every 4 s:")
	fmt.Printf("%-14s%-12s%-10s%-12s%s\n", "chunking", "completed", "retries", "waste", "time")
	for _, size := range []int64{0, 8 << 20, 4 << 20, 1 << 20} {
		r := core.RunRecovery(size, 16<<20, 4*time.Second, seed)
		fmt.Printf("%-14s%-12v%-10d%-12.2f%s\n",
			r.ChunkLabel, r.Completed, r.Retries, r.WasteRatio,
			core.FormatDuration(r.Completion))
	}
	fmt.Println()
}

func propagation(profiles []client.Profile, seed int64) {
	fmt.Println("== Two-device propagation (upload -> notify -> download) ==")
	batch := workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}
	fmt.Printf("%-14s%10s%12s%12s%12s\n", "service", "upload", "notify", "download", "total")
	for _, p := range profiles {
		r := core.RunPropagation(p, batch, seed)
		fmt.Printf("%-14s%9.1fs%11.1fs%11.1fs%11.1fs\n",
			r.Service, r.Upload.Seconds(), r.Notify.Seconds(),
			r.Download.Seconds(), r.Total.Seconds())
	}
	fmt.Println()
}

func locations(seed int64) {
	fmt.Println("== Location study: 1x1MB completion time per vantage ==")
	var vantages []core.Vantage
	for _, name := range []string{"twente", "SEA", "IAD", "SIN", "SYD"} {
		v, ok := core.VantageByName(name)
		if !ok {
			continue
		}
		vantages = append(vantages, v)
	}
	batch := workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}
	cells := core.LocationStudy(batch, vantages, seed)
	fmt.Print(core.LocationReport(cells, vantages))
	fmt.Println()
}

func parseLossRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r < 0 || r >= 1 {
			return nil, fmt.Errorf("-loss: %q is not a loss rate in [0, 1)", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-loss: no rates in %q", s)
	}
	return rates, nil
}

func lossSweep(profiles []client.Profile, rates []float64, reps int, seed int64) {
	fmt.Printf("== Loss sweep: %s, %d repetitions per cell ==\n",
		core.DefaultLossBatch, reps)
	cells := core.LossSweep(profiles, rates, core.DefaultLossBatch, core.Twente, reps, seed)
	fmt.Printf("%-14s%10s%14s%12s%12s\n", "service", "loss", "completion", "startup", "overhead")
	for _, c := range cells {
		fmt.Printf("%-14s%9.2f%%%13.1fs%11.1fs%11.2fx\n",
			c.Service, c.LossRate*100,
			c.Summary.MeanCompletion.Seconds(), c.Summary.MeanStartup.Seconds(),
			c.Summary.MeanOverhead)
	}
	fmt.Println("\nCSV: service,loss_rate,completion_s,startup_s,overhead_x")
	for _, c := range cells {
		fmt.Printf("%s,%g,%.3f,%.3f,%.3f\n",
			c.Service, c.LossRate,
			c.Summary.MeanCompletion.Seconds(), c.Summary.MeanStartup.Seconds(),
			c.Summary.MeanOverhead)
	}
	fmt.Println()
}

func whatif(seed int64) {
	fmt.Println("== What-if studies (the paper's counterfactuals) ==")
	for _, r := range core.WhatIfStudies(seed) {
		fmt.Printf("%-32s %s: %.2f -> %s: %.2f (%s)\n",
			r.Name, r.BaselineLabel, r.Baseline, r.VariantLabel, r.Variant, r.Unit)
	}
	fmt.Printf("%-32s %.0f MB/day of background traffic\n",
		"clouddrive-daily-volume", core.CloudDriveDailyBackgroundMB(seed))
	fmt.Println()
}
