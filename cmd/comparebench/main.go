// Command comparebench runs persistable benchmark campaigns and
// compares them — across tool versions (regression detection) or
// across vantages (the paper's "compare results from different
// locations").
//
// Run a campaign and save it:
//
//	comparebench -run -from twente -reps 8 -out eu.json
//	comparebench -run -from SEA    -reps 8 -out us.json
//
// With -precision the campaign runs on the adaptive sampling engine:
// each cell repeats until its relative CI95 half-width is at most the
// target (bounded by -max-reps), and the campaign file records the
// rule plus per-cell achieved precision, so two campaigns can be
// compared at equal confidence. Comparison output annotates each
// delta with whether it fits inside the union of the two runs'
// achieved confidence intervals.
//
// Compare two campaigns:
//
//	comparebench -a eu.json -b us.json -threshold 1.5
//
// With -fail-on-drift the comparison exits non-zero when any metric
// ratio leaves the threshold band — the CI trend check
// (scripts/trendcheck.sh) uses this to fail builds on
// simulated-metric regressions. With -expect-drift the gate inverts:
// the comparison must show drift, which is how the trend check
// validates a deliberate baseline reset (a committed BASELINE_RESET
// marker naming the new baseline) without ever allowing a silent one.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	var (
		doRun       = flag.Bool("run", false, "run a campaign")
		from        = flag.String("from", "twente", "vantage (city or IATA code)")
		reps        = flag.Int("reps", 8, "repetitions per workload")
		seed        = flag.Int64("seed", 42, "base seed")
		out         = flag.String("out", "", "write campaign JSON here")
		fileA       = flag.String("a", "", "campaign A for comparison")
		fileB       = flag.String("b", "", "campaign B for comparison")
		threshold   = flag.Float64("threshold", 1.3, "report ratios outside [1/t, t]")
		failDrift   = flag.Bool("fail-on-drift", false, "exit non-zero when the comparison reports any difference")
		expectDrift = flag.Bool("expect-drift", false, "invert the gate: exit non-zero when the comparison reports NO difference (validates a sanctioned baseline reset — a stale reset marker must not linger)")
		precision   = flag.Float64("precision", 0, "run the campaign adaptively to this relative CI95 half-width target (0 = fixed -reps)")
		maxReps     = flag.Int("max-reps", core.DefaultMaxReps, "repetition cap per cell in -precision mode")
		antithetic  = flag.Bool("antithetic", false, "-precision mode: antithetic repetition pairs (variance reduction)")
		crn         = flag.Bool("crn", false, "-precision mode: common random numbers across services")
	)
	flag.Parse()

	switch {
	case *doRun:
		v, ok := core.VantageByName(*from)
		if !ok {
			fatalf("unknown vantage %q", *from)
		}
		var c core.Campaign
		if *precision > 0 {
			rule := core.StopRule{TargetRelHW: *precision, MaxReps: *maxReps}
			vr := core.VarianceReduction{Antithetic: *antithetic, CRN: *crn}
			c = core.RunFullCampaignAdaptive(v, rule, vr, *seed)
		} else {
			c = core.RunFullCampaign(v, *reps, *seed)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			w = f
		}
		if err := c.WriteJSON(w); err != nil {
			fatalf("%v", err)
		}
		if *out != "" {
			fmt.Printf("campaign from %s written to %s\n", v.Name, *out)
		}
	case *fileA != "" && *fileB != "":
		a := readCampaign(*fileA)
		b := readCampaign(*fileB)
		fmt.Printf("A: %s from %s (seed %d)\nB: %s from %s (seed %d)\n\n",
			a.Tool, a.Vantage, a.Seed, b.Tool, b.Vantage, b.Seed)
		cells := core.ComparableCells(a, b)
		deltas := core.Compare(a, b, *threshold)
		fmt.Print(core.DeltaReport(deltas))
		fmt.Printf("(%d comparable cells)\n", cells)
		if *failDrift && *expectDrift {
			fatalf("-fail-on-drift and -expect-drift are mutually exclusive")
		}
		if (*failDrift || *expectDrift) && cells == 0 {
			fatalf("campaigns share no (service, workload) cells; a drift gate over a disjoint comparison proves nothing")
		}
		if *failDrift && len(deltas) > 0 {
			fatalf("simulated metrics drifted: %d deltas outside threshold %.2f", len(deltas), *threshold)
		}
		if *expectDrift && len(deltas) == 0 {
			fatalf("baseline reset declared but simulated metrics did not drift (threshold %.2f); the reset marker is stale — remove it", *threshold)
		}
		if *expectDrift {
			fmt.Printf("sanctioned baseline reset confirmed: %d deltas outside threshold %.2f\n", len(deltas), *threshold)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func readCampaign(path string) core.Campaign {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	c, err := core.ReadCampaign(f)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return c
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
