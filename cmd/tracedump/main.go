// Command tracedump captures and inspects benchmark traces. It is a
// packet-level tool, so it runs its experiment on a buffered
// trace.Capture — the one consumer that exists precisely to show the
// packets the streaming campaign engine never keeps.
//
// Run a synchronization experiment and save its packet trace:
//
//	tracedump -service dropbox -files 100 -size 10000 -out run.trace
//
// Summarize a previously saved trace (capinfos-style):
//
//	tracedump -in run.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		service = flag.String("service", "dropbox", "service to trace")
		files   = flag.Int("files", 100, "number of files in the batch")
		size    = flag.Int64("size", 10_000, "bytes per file")
		seed    = flag.Int64("seed", 42, "random seed")
		out     = flag.String("out", "", "write the trace to this file")
		in      = flag.String("in", "", "summarize this trace file instead of running")
	)
	flag.Parse()

	if *in != "" {
		if err := summarize(*in); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	p, ok := client.ProfileFor(*service)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown service %q\n", *service)
		os.Exit(2)
	}
	tb := core.NewTestbed(p, *seed, 0)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	workload.Batch{Count: *files, Size: *size, Kind: workload.Binary}.
		Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)

	if *out == "" {
		printSummary(tb.Cap)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tb.Cap.WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d packets on %d flows to %s\n", tb.Cap.Len(), tb.Cap.NumFlows(), *out)
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cap, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	printSummary(cap)
	return nil
}

func printSummary(cap *trace.Capture) {
	pkts := cap.Packets()
	fmt.Printf("packets:        %d records\n", cap.Len())
	fmt.Printf("flows:          %d\n", cap.NumFlows())
	fmt.Printf("connections:    %d client-initiated\n", cap.ConnectionCount(trace.AllFlows))
	fmt.Printf("bytes total:    %d on the wire\n", cap.TotalWireBytes(trace.AllFlows))
	fmt.Printf("bytes up/down:  %d / %d payload\n",
		cap.PayloadBytesDir(trace.AllFlows, trace.Upstream),
		cap.PayloadBytesDir(trace.AllFlows, trace.Downstream))
	if len(pkts) > 0 {
		fmt.Printf("span:           %s\n", pkts[len(pkts)-1].Time.Sub(pkts[0].Time))
	}
	fmt.Println("\nper-server-name totals:")
	byName := map[string]int64{}
	flowBytes := cap.FlowBytes()
	for _, fl := range cap.Flows() {
		byName[fl.ServerName] += flowBytes[fl.ID]
	}
	for _, fl := range cap.Flows() {
		if v, ok := byName[fl.ServerName]; ok {
			fmt.Printf("  %-32s %d bytes\n", fl.ServerName, v)
			delete(byName, fl.ServerName)
		}
	}
}
