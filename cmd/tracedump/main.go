// Command tracedump captures and inspects benchmark traces. It is a
// packet-level tool, so it runs its experiment on a buffered
// trace.Capture — the one consumer that exists precisely to show the
// packets the streaming campaign engine never keeps. The capture
// stores steady-state transfers as span records (one record per run of
// uniform rate-limited slices); the summaries report both the stored
// record count and the per-round packet count the spans stand for, so
// the span-record reduction is visible from the CLI.
//
// Run a synchronization experiment and save its packet trace:
//
//	tracedump -service dropbox -files 100 -size 10000 -out run.trace
//
// Summarize a previously saved trace (capinfos-style):
//
//	tracedump -in run.trace
//
// Per-flow record accounting (records vs expanded packets vs spans):
//
//	tracedump -service skydrive -files 1 -size 8000000 -flows
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		service = flag.String("service", "dropbox", "service to trace")
		files   = flag.Int("files", 100, "number of files in the batch")
		size    = flag.Int64("size", 10_000, "bytes per file")
		seed    = flag.Int64("seed", 42, "random seed")
		out     = flag.String("out", "", "write the trace to this file")
		in      = flag.String("in", "", "summarize this trace file instead of running")
		flows   = flag.Bool("flows", false, "print the per-flow record-count summary instead of the capinfos view")
	)
	flag.Parse()

	if *in != "" {
		if err := summarize(*in, *flows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	p, ok := client.ProfileFor(*service)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown service %q\n", *service)
		os.Exit(2)
	}
	tb := core.NewTestbed(p, *seed, 0)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	workload.Batch{Count: *files, Size: *size, Kind: workload.Binary}.
		Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)

	if *out == "" {
		printAny(tb.Cap, *flows)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tb.Cap.WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d packets) on %d flows to %s\n",
		tb.Cap.Len(), tb.Cap.ExpandedLen(), tb.Cap.NumFlows(), *out)
}

func summarize(path string, flows bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cap, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	printAny(cap, flows)
	return nil
}

func printAny(cap *trace.Capture, flows bool) {
	if flows {
		printFlowSummary(cap)
		return
	}
	printSummary(cap)
}

func printSummary(cap *trace.Capture) {
	pkts := cap.Packets()
	fmt.Printf("records:        %d stored (%d span aggregates)\n", cap.Len(), cap.SpanCount())
	fmt.Printf("packets:        %d after span expansion\n", cap.ExpandedLen())
	fmt.Printf("flows:          %d\n", cap.NumFlows())
	fmt.Printf("connections:    %d client-initiated\n", cap.ConnectionCount(trace.AllFlows))
	fmt.Printf("bytes total:    %d on the wire\n", cap.TotalWireBytes(trace.AllFlows))
	fmt.Printf("bytes up/down:  %d / %d payload\n",
		cap.PayloadBytesDir(trace.AllFlows, trace.Upstream),
		cap.PayloadBytesDir(trace.AllFlows, trace.Downstream))
	if len(pkts) > 0 {
		// A trailing span's last slice, not its first, ends the trace.
		last := pkts[0].End()
		for _, p := range pkts {
			if e := p.End(); e.After(last) {
				last = e
			}
		}
		fmt.Printf("span:           %s\n", last.Sub(pkts[0].Time))
	}
	fmt.Println("\nper-server-name totals:")
	byName := map[string]int64{}
	flowBytes := cap.FlowBytes()
	for _, fl := range cap.Flows() {
		byName[fl.ServerName] += flowBytes[fl.ID]
	}
	for _, fl := range cap.Flows() {
		if v, ok := byName[fl.ServerName]; ok {
			fmt.Printf("  %-32s %d bytes\n", fl.ServerName, v)
			delete(byName, fl.ServerName)
		}
	}
}

// printFlowSummary reports, per flow, how many records the capture
// stores against how many per-round packets they stand for — the
// observable win of span aggregation, flow by flow.
func printFlowSummary(cap *trace.Capture) {
	type acc struct {
		records, packets, spans int
		wire                    int64
	}
	perFlow := make([]acc, cap.NumFlows())
	for _, p := range cap.Packets() {
		a := &perFlow[p.Flow]
		a.records++
		a.packets += p.SliceCount()
		if p.IsSpan() {
			a.spans++
		}
		a.wire += p.Wire + p.AckWire
	}
	fmt.Printf("%-6s %-32s %10s %10s %8s %12s\n", "flow", "server", "records", "packets", "spans", "wire bytes")
	var tot acc
	for _, fl := range cap.Flows() {
		a := perFlow[fl.ID]
		fmt.Printf("%-6d %-32s %10d %10d %8d %12d\n",
			fl.ID, fl.ServerName, a.records, a.packets, a.spans, a.wire)
		tot.records += a.records
		tot.packets += a.packets
		tot.spans += a.spans
		tot.wire += a.wire
	}
	fmt.Printf("%-6s %-32s %10d %10d %8d %12d\n", "total", "", tot.records, tot.packets, tot.spans, tot.wire)
	if tot.records > 0 {
		fmt.Printf("\nspan aggregation: %.1fx fewer records than per-round packets\n",
			float64(tot.packets)/float64(tot.records))
	}
}
