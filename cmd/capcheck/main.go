// Command capcheck runs the Sect. 4 capability-detection suite and
// prints the detected capability matrix (Table 1), plus the detail
// behind each verdict.
//
// Usage:
//
//	capcheck [-service NAME|all] [-seed N] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/client"
	"repro/internal/core"
)

func main() {
	var (
		service = flag.String("service", "all", "service to check, or all")
		seed    = flag.Int64("seed", 42, "random seed")
		verbose = flag.Bool("verbose", false, "print per-test details")
	)
	flag.Parse()

	var profiles []client.Profile
	if *service == "all" {
		profiles = client.Profiles()
	} else {
		p, ok := client.ProfileFor(*service)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown service %q\n", *service)
			os.Exit(2)
		}
		profiles = []client.Profile{p}
	}

	caps := map[string]core.Capabilities{}
	var order []string
	for _, p := range profiles {
		c := core.DetectCapabilities(p, *seed)
		caps[p.Service] = c
		order = append(order, p.Service)
		if *verbose {
			b := core.DetectBundling(p, *seed)
			fmt.Printf("%s:\n", p.Name)
			fmt.Printf("  chunking:          %s\n", c.Chunking)
			fmt.Printf("  connections/file:  %.2f\n", b.ConnsPerFile)
			fmt.Printf("  sequential acks:   %v\n", b.SequentialAcks)
			fmt.Printf("  bundling:          %v\n", c.Bundling)
			fmt.Printf("  compression:       %s\n", c.Compression)
			fmt.Printf("  dedup:             %v (after delete/restore: %v)\n", c.Dedup, c.DedupAfterDelete)
			fmt.Printf("  delta encoding:    %v\n", c.DeltaEncoding)
		}
	}
	fmt.Print(core.Table1(caps, order))
}
