// Command capcheck runs the Sect. 4 capability-detection suite and
// prints the detected capability matrix (Table 1), plus the detail
// behind each verdict.
//
// Usage:
//
//	capcheck [-service NAME|all] [-seed N] [-verbose] [-parallel N]
//	capcheck -precision 0.05 [-max-reps N] [-service NAME|all]
//
// -parallel fans the service x detector matrix out over a shared
// worker pool (0 = one worker per CPU, 1 = sequential); detections
// are bit-identical at any setting.
//
// -precision repeats the detection suite across a seed stream until
// the continuous bundling statistic (connections per file) is tight,
// reporting per service whether the boolean verdicts were unanimous —
// detection robustness quantified instead of assumed from one seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/client"
	"repro/internal/core"
)

func main() {
	var (
		service   = flag.String("service", "all", "service to check, or all")
		seed      = flag.Int64("seed", 42, "random seed")
		verbose   = flag.Bool("verbose", false, "print per-test details")
		parallel  = flag.Int("parallel", 0, "concurrent detectors across all services (0 = one per CPU, 1 = sequential; results are identical at any setting)")
		precision = flag.Float64("precision", 0, "repeat detection until the bundling statistic's relative CI95 half-width is at most this (0 = single probe)")
		maxReps   = flag.Int("max-reps", core.DefaultMaxReps, "repetition cap for -precision mode")
	)
	flag.Parse()
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "-parallel must be >= 0 (got %d)\n", *parallel)
		os.Exit(2)
	}
	core.CampaignWorkers = *parallel

	var profiles []client.Profile
	if *service == "all" {
		profiles = client.Profiles()
	} else {
		p, ok := client.ProfileFor(*service)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown service %q\n", *service)
			os.Exit(2)
		}
		profiles = []client.Profile{p}
	}

	if *precision > 0 {
		rule := core.StopRule{TargetRelHW: *precision, MaxReps: *maxReps}
		fmt.Printf("%-14s%12s%12s%12s\n", "service", "unanimous", "probes", "achieved")
		caps := map[string]core.Capabilities{}
		var order []string
		for _, p := range profiles {
			cc := core.DetectCapabilitiesAdaptive(p, rule, *seed)
			caps[p.Service] = cc.Capabilities
			order = append(order, p.Service)
			fmt.Printf("%-14s%12v%12d%11.2f%%\n",
				p.Service, cc.Unanimous, cc.RepsUsed, cc.AchievedRelHW*100)
		}
		fmt.Println()
		fmt.Print(core.Table1(caps, order))
		return
	}

	caps := core.DetectCapabilitiesAll(profiles, *seed)
	var order []string
	for _, p := range profiles {
		c := caps[p.Service]
		order = append(order, p.Service)
		if *verbose {
			b := core.DetectBundling(p, *seed)
			fmt.Printf("%s:\n", p.Name)
			fmt.Printf("  chunking:          %s\n", c.Chunking)
			fmt.Printf("  connections/file:  %.2f\n", b.ConnsPerFile)
			fmt.Printf("  sequential acks:   %v\n", b.SequentialAcks)
			fmt.Printf("  bundling:          %v\n", c.Bundling)
			fmt.Printf("  compression:       %s\n", c.Compression)
			fmt.Printf("  dedup:             %v (after delete/restore: %v)\n", c.Dedup, c.DedupAfterDelete)
			fmt.Printf("  delta encoding:    %v\n", c.DeltaEncoding)
		}
	}
	fmt.Print(core.Table1(caps, order))
}
