package netem

import "fmt"

// AddrPool hands out IPv4 addresses from a /16 prefix, one block per
// provider, so that whois ownership lookups (internal/whois) can map
// addresses back to organisations exactly as the paper does.
type AddrPool struct {
	prefix string // e.g. "54.231"
	next   int
}

// NewAddrPool returns a pool allocating from prefix, which must be the
// first two dotted octets, e.g. "54.231".
func NewAddrPool(prefix string) *AddrPool {
	return &AddrPool{prefix: prefix}
}

// Prefix returns the pool's /16 prefix.
func (p *AddrPool) Prefix() string { return p.prefix }

// Next allocates the next address in the block. It panics when the /16
// is exhausted (65k hosts — far beyond any experiment here).
func (p *AddrPool) Next() string {
	if p.next >= 1<<16 {
		panic("netem: address pool exhausted: " + p.prefix)
	}
	a := p.next
	p.next++
	return fmt.Sprintf("%s.%d.%d", p.prefix, a>>8, a&0xff)
}
