package netem

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

func newTestNet() *Network {
	return New(sim.NewClock(), sim.NewRNG(1))
}

func mustAirport(t *testing.T, code string) geo.Coord {
	t.Helper()
	l, ok := geo.LookupAirport(code)
	if !ok {
		t.Fatalf("airport %s missing", code)
	}
	return l.Coord
}

func TestAddAndLookupHosts(t *testing.T) {
	n := newTestNet()
	h := n.AddHost(&Host{Name: "client.sim", Addr: "10.0.0.1", Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
	if got, ok := n.HostByName("client.sim"); !ok || got != h {
		t.Fatal("HostByName failed")
	}
	if got, ok := n.HostByAddr("10.0.0.1"); !ok || got != h {
		t.Fatal("HostByAddr failed")
	}
	if _, ok := n.HostByAddr("10.9.9.9"); ok {
		t.Fatal("lookup of unknown addr succeeded")
	}
	if n.NumHosts() != 1 {
		t.Fatalf("NumHosts = %d", n.NumHosts())
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	n := newTestNet()
	n.AddHost(&Host{Name: "a", Addr: "10.0.0.1"})
	for _, h := range []*Host{{Name: "a", Addr: "10.0.0.2"}, {Name: "b", Addr: "10.0.0.1"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("duplicate %+v did not panic", h)
				}
			}()
			n.AddHost(h)
		}()
	}
}

func TestBaseRTTGeography(t *testing.T) {
	n := newTestNet()
	twente := n.AddHost(&Host{Name: "c", Addr: "10.0.0.1", Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
	zrh := n.AddHost(&Host{Name: "z", Addr: "10.0.0.2", Coord: mustAirport(t, "ZRH")})
	iad := n.AddHost(&Host{Name: "i", Addr: "10.0.0.3", Coord: mustAirport(t, "IAD")})
	sea := n.AddHost(&Host{Name: "s", Addr: "10.0.0.4", Coord: mustAirport(t, "SEA")})

	near := n.BaseRTT(twente, zrh)
	mid := n.BaseRTT(twente, iad)
	far := n.BaseRTT(twente, sea)
	if !(near < mid && mid < far) {
		t.Fatalf("RTT ordering broken: %v %v %v", near, mid, far)
	}
	// European target: paper reports ~15-30 ms for nearby DCs.
	if near > 40*time.Millisecond {
		t.Fatalf("Twente-Zurich RTT = %v, want < 40ms", near)
	}
	// US-west target: paper reports ~160 ms for SkyDrive.
	if far < 110*time.Millisecond || far > 220*time.Millisecond {
		t.Fatalf("Twente-Seattle RTT = %v, want 110-220ms", far)
	}
}

func TestSampleRTTJitterBounds(t *testing.T) {
	n := newTestNet()
	n.JitterFraction = 0.2
	a := n.AddHost(&Host{Name: "a", Addr: "10.0.0.1", Coord: geo.Coord{Lat: 52, Lon: 6}})
	b := n.AddHost(&Host{Name: "b", Addr: "10.0.0.2", Coord: geo.Coord{Lat: 38, Lon: -77}})
	base := n.BaseRTT(a, b)
	lo, hi := base-base/10-time.Millisecond, base+base/10+time.Millisecond
	for i := 0; i < 200; i++ {
		s := n.SampleRTT(a, b)
		if s < lo || s > hi {
			t.Fatalf("sample %v outside [%v, %v]", s, lo, hi)
		}
	}
}

func TestSampleRTTNoJitterIsDeterministic(t *testing.T) {
	n := newTestNet()
	a := n.AddHost(&Host{Name: "a", Addr: "10.0.0.1", Coord: geo.Coord{Lat: 52, Lon: 6}})
	b := n.AddHost(&Host{Name: "b", Addr: "10.0.0.2", Coord: geo.Coord{Lat: 38, Lon: -77}})
	if n.SampleRTT(a, b) != n.BaseRTT(a, b) {
		t.Fatal("jitter-free sample differs from base")
	}
}

func TestPathRate(t *testing.T) {
	n := newTestNet()
	cases := []struct {
		ra, rb, want int64
	}{
		{0, 0, 0},
		{1e9, 0, 1e9},
		{0, 20e6, 20e6},
		{1e9, 20e6, 20e6},
		{10e6, 20e6, 10e6},
	}
	for _, c := range cases {
		a := &Host{RateBps: c.ra}
		b := &Host{RateBps: c.rb}
		if got := n.PathRateBps(a, b); got != c.want {
			t.Errorf("PathRate(%d,%d) = %d, want %d", c.ra, c.rb, got, c.want)
		}
	}
}

func TestTracerouteFinalHintNearDestination(t *testing.T) {
	n := newTestNet()
	src := n.AddHost(&Host{Name: "c", Addr: "10.0.0.1", Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
	dst := n.AddHost(&Host{Name: "d", Addr: "10.0.0.2", Coord: mustAirport(t, "IAD")})
	hops := n.Traceroute(src, dst)
	if len(hops) < 3 {
		t.Fatalf("too few hops: %d", len(hops))
	}
	// Hop RTTs must be non-decreasing and end at the full path RTT.
	for i := 1; i < len(hops); i++ {
		if hops[i].RTT < hops[i-1].RTT {
			t.Fatal("hop RTTs decrease")
		}
	}
	if hops[len(hops)-1].RTT != n.BaseRTT(src, dst) {
		t.Fatal("last hop RTT != path RTT")
	}
	// The last *named* hop must geolocate near the destination.
	var lastNamed string
	for _, h := range hops {
		if h.Name != "" {
			lastNamed = h.Name
		}
	}
	l, ok := geo.ExtractAirportCode(lastNamed)
	if !ok {
		t.Fatalf("no airport hint in %q", lastNamed)
	}
	if d := geo.DistanceKm(l.Coord, dst.Coord); d > 300 {
		t.Fatalf("final hint %s is %.0f km from destination", l.Code, d)
	}
}

func TestTracerouteFeedsLocate(t *testing.T) {
	n := newTestNet()
	src := n.AddHost(&Host{Name: "c", Addr: "10.0.0.1", Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
	dst := n.AddHost(&Host{Name: "d", Addr: "10.0.0.2", Coord: mustAirport(t, "SEA")})
	est := geo.Locate(geo.Evidence{
		IP:         dst.Addr,
		ReverseDNS: "opaque.example",
		Traceroute: n.Traceroute(src, dst),
	})
	if est.Method != geo.MethodTraceroute {
		t.Fatalf("method = %v", est.Method)
	}
	if d := geo.DistanceKm(est.Coord, dst.Coord); d > 300 {
		t.Fatalf("estimate %.0f km off", d)
	}
}

func TestAddrPool(t *testing.T) {
	p := NewAddrPool("54.231")
	first := p.Next()
	if first != "54.231.0.0" {
		t.Fatalf("first = %q", first)
	}
	seen := map[string]bool{first: true}
	for i := 0; i < 600; i++ {
		a := p.Next()
		if seen[a] {
			t.Fatalf("duplicate address %q", a)
		}
		if !strings.HasPrefix(a, "54.231.") {
			t.Fatalf("address %q outside prefix", a)
		}
		seen[a] = true
	}
	if p.Prefix() != "54.231" {
		t.Fatal("Prefix accessor")
	}
}
