// Package netem models the synthetic Internet the benchmark runs on:
// named hosts with geographic positions and IPv4 addresses, a
// propagation-delay model between them, per-host bandwidth caps, and a
// traceroute generator that produces the router-name hints the
// geolocation methodology consumes.
//
// The paper's testbed sits on a 1 Gb/s Ethernet at the University of
// Twente "in which the network is not a bottleneck"; completion times
// are instead governed by RTT to each provider's data centers and by
// per-connection server throughput. The emulator therefore needs only
// (i) a faithful RTT matrix derived from real geography and (ii)
// server-side rate caps — both are explicit, documented parameters.
package netem

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

// Host is one endpoint of the synthetic Internet: the test computer, a
// control/storage front-end, an edge node, a DNS resolver or a vantage
// point.
type Host struct {
	Name  string    // DNS-style name, unique within a Network
	Addr  string    // IPv4 literal, unique within a Network
	Coord geo.Coord // physical position

	// RateBps caps the per-connection application throughput this
	// host sustains (bits per second). Zero means unlimited; the
	// effective path rate is the minimum of both endpoints' caps.
	RateBps int64

	// ProcDelay is added to every request handled by this host,
	// modelling server-side processing (metadata commits, storage
	// back-end writes).
	ProcDelay time.Duration
}

// Network is the synthetic topology. It is not safe for concurrent use.
type Network struct {
	Clock *sim.Clock
	rng   *sim.RNG

	hostsByAddr map[string]*Host
	hostsByName map[string]*Host

	// Inflation stretches great-circle distances into routed-path
	// distances (see internal/geo).
	Inflation float64

	// JitterFraction adds uniform noise of ±(fraction/2)·RTT to each
	// RTT sample, modelling queueing variation. Zero disables jitter.
	JitterFraction float64

	// LossRate is the per-segment loss probability on every path
	// (0 disables loss). The transport reacts with Reno-style
	// window halving and pays retransmissions; lossy-path scenarios
	// set a few percent here. The analytic engine samples the next
	// loss position from the geometric run-length distribution this
	// rate implies (one RNG draw per loss event); the per-round
	// event loop (tcpsim.Dialer.ForceEventLoop) draws per burst.
	LossRate float64
}

// New returns an empty network using the given clock and RNG.
func New(clock *sim.Clock, rng *sim.RNG) *Network {
	return &Network{
		Clock:       clock,
		rng:         rng,
		hostsByAddr: make(map[string]*Host),
		hostsByName: make(map[string]*Host),
		Inflation:   1.7,
	}
}

// AddHost registers a host. It panics on duplicate name or address —
// topology construction errors are programming errors.
func (n *Network) AddHost(h *Host) *Host {
	if _, dup := n.hostsByName[h.Name]; dup {
		panic(fmt.Sprintf("netem: duplicate host name %q", h.Name))
	}
	if _, dup := n.hostsByAddr[h.Addr]; dup {
		panic(fmt.Sprintf("netem: duplicate host addr %q", h.Addr))
	}
	n.hostsByName[h.Name] = h
	n.hostsByAddr[h.Addr] = h
	return h
}

// HostByAddr looks a host up by IPv4 address.
func (n *Network) HostByAddr(addr string) (*Host, bool) {
	h, ok := n.hostsByAddr[addr]
	return h, ok
}

// HostByName looks a host up by name.
func (n *Network) HostByName(name string) (*Host, bool) {
	h, ok := n.hostsByName[name]
	return h, ok
}

// NumHosts returns the number of registered hosts.
func (n *Network) NumHosts() int { return len(n.hostsByAddr) }

// RNG exposes the network's deterministic random source; the
// transport simulator draws loss events from it.
func (n *Network) RNG() *sim.RNG { return n.rng }

// BaseRTT returns the deterministic (jitter-free) round-trip time
// between two hosts.
func (n *Network) BaseRTT(a, b *Host) time.Duration {
	return geo.InflatedRTT(a.Coord, b.Coord, n.Inflation)
}

// SampleRTT returns one RTT sample between two hosts, with jitter.
func (n *Network) SampleRTT(a, b *Host) time.Duration {
	base := n.BaseRTT(a, b)
	if n.JitterFraction <= 0 {
		return base
	}
	spread := int64(float64(base) * n.JitterFraction)
	return time.Duration(n.rng.Jitter(int64(base), spread))
}

// PathRateBps returns the bottleneck application throughput between two
// hosts in bits per second: the minimum of both endpoints' caps, with
// zero meaning "no cap at this endpoint".
func (n *Network) PathRateBps(a, b *Host) int64 {
	ra, rb := a.RateBps, b.RateBps
	switch {
	case ra == 0:
		return rb
	case rb == 0:
		return ra
	case ra < rb:
		return ra
	default:
		return rb
	}
}

// Traceroute produces the forward router path from src to dst as seen
// by an active traceroute: a handful of hops whose reverse-DNS names
// may embed airport codes. The final transit hop always carries the
// code of the airport nearest the destination, reproducing the
// "closest well-known location of a router" signal the hybrid
// geolocator uses (Sect. 2.1).
func (n *Network) Traceroute(src, dst *Host) []geo.Hop {
	total := n.BaseRTT(src, dst)
	srcAir := geo.NearestAirport(src.Coord)
	dstAir := geo.NearestAirport(dst.Coord)
	mid := geo.Midpoint(src.Coord, dst.Coord)
	midAir := geo.NearestAirport(mid)

	hops := []geo.Hop{
		// Access router: opaque name, no location hint.
		{Name: fmt.Sprintf("gw1.isp-%s.sim", lower(srcAir.Code)), RTT: total / 10},
		{Name: fmt.Sprintf("ae-0-%s1.transit.sim", lower(srcAir.Code)), RTT: total / 5},
	}
	if midAir.Code != srcAir.Code && midAir.Code != dstAir.Code {
		hops = append(hops, geo.Hop{
			Name: fmt.Sprintf("xe-1-%s2.transit.sim", lower(midAir.Code)),
			RTT:  total / 2,
		})
	}
	hops = append(hops,
		geo.Hop{Name: fmt.Sprintf("be-3-%s4.transit.sim", lower(dstAir.Code)), RTT: total * 9 / 10},
		// The target itself often does not resolve.
		geo.Hop{Name: "", RTT: total},
	)
	return hops
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
