package geo

// Place is a populated location used to position synthetic Internet
// infrastructure (open DNS resolvers, vantage points). The open
// resolver list in the paper covers "more than 100 countries and 500
// ISPs"; this table provides the country spread.
type Place struct {
	Country string // ISO-3166 alpha-2
	City    string
	Coord   Coord
}

// capitals lists one anchor city (usually the capital) for 112
// countries. Coordinates are approximate city centres; resolver
// placement jitters around them.
var capitals = []Place{
	{"AD", "Andorra la Vella", Coord{42.51, 1.52}},
	{"AE", "Abu Dhabi", Coord{24.47, 54.37}},
	{"AL", "Tirana", Coord{41.33, 19.82}},
	{"AM", "Yerevan", Coord{40.18, 44.51}},
	{"AO", "Luanda", Coord{-8.84, 13.23}},
	{"AR", "Buenos Aires", Coord{-34.60, -58.38}},
	{"AT", "Vienna", Coord{48.21, 16.37}},
	{"AU", "Canberra", Coord{-35.28, 149.13}},
	{"AZ", "Baku", Coord{40.41, 49.87}},
	{"BA", "Sarajevo", Coord{43.86, 18.41}},
	{"BD", "Dhaka", Coord{23.81, 90.41}},
	{"BE", "Brussels", Coord{50.85, 4.35}},
	{"BG", "Sofia", Coord{42.70, 23.32}},
	{"BH", "Manama", Coord{26.23, 50.59}},
	{"BO", "La Paz", Coord{-16.50, -68.15}},
	{"BR", "Brasilia", Coord{-15.79, -47.88}},
	{"BY", "Minsk", Coord{53.90, 27.57}},
	{"CA", "Ottawa", Coord{45.42, -75.70}},
	{"CH", "Bern", Coord{46.95, 7.45}},
	{"CL", "Santiago", Coord{-33.45, -70.67}},
	{"CM", "Yaounde", Coord{3.85, 11.50}},
	{"CN", "Beijing", Coord{39.90, 116.41}},
	{"CO", "Bogota", Coord{4.71, -74.07}},
	{"CR", "San Jose", Coord{9.93, -84.08}},
	{"CY", "Nicosia", Coord{35.19, 33.38}},
	{"CZ", "Prague", Coord{50.08, 14.44}},
	{"DE", "Berlin", Coord{52.52, 13.40}},
	{"DK", "Copenhagen", Coord{55.68, 12.57}},
	{"DO", "Santo Domingo", Coord{18.49, -69.93}},
	{"DZ", "Algiers", Coord{36.75, 3.06}},
	{"EC", "Quito", Coord{-0.18, -78.47}},
	{"EE", "Tallinn", Coord{59.44, 24.75}},
	{"EG", "Cairo", Coord{30.04, 31.24}},
	{"ES", "Madrid", Coord{40.42, -3.70}},
	{"ET", "Addis Ababa", Coord{9.03, 38.74}},
	{"FI", "Helsinki", Coord{60.17, 24.94}},
	{"FR", "Paris", Coord{48.86, 2.35}},
	{"GB", "London", Coord{51.51, -0.13}},
	{"GE", "Tbilisi", Coord{41.72, 44.79}},
	{"GH", "Accra", Coord{5.60, -0.19}},
	{"GR", "Athens", Coord{37.98, 23.73}},
	{"GT", "Guatemala City", Coord{14.63, -90.51}},
	{"HK", "Hong Kong", Coord{22.32, 114.17}},
	{"HN", "Tegucigalpa", Coord{14.07, -87.19}},
	{"HR", "Zagreb", Coord{45.81, 15.98}},
	{"HU", "Budapest", Coord{47.50, 19.04}},
	{"ID", "Jakarta", Coord{-6.21, 106.85}},
	{"IE", "Dublin", Coord{53.35, -6.26}},
	{"IL", "Jerusalem", Coord{31.77, 35.21}},
	{"IN", "New Delhi", Coord{28.61, 77.21}},
	{"IQ", "Baghdad", Coord{33.31, 44.37}},
	{"IR", "Tehran", Coord{35.69, 51.39}},
	{"IS", "Reykjavik", Coord{64.15, -21.94}},
	{"IT", "Rome", Coord{41.90, 12.50}},
	{"JM", "Kingston", Coord{18.02, -76.80}},
	{"JO", "Amman", Coord{31.96, 35.95}},
	{"JP", "Tokyo", Coord{35.68, 139.69}},
	{"KE", "Nairobi", Coord{-1.29, 36.82}},
	{"KH", "Phnom Penh", Coord{11.56, 104.92}},
	{"KR", "Seoul", Coord{37.57, 126.98}},
	{"KW", "Kuwait City", Coord{29.38, 47.99}},
	{"KZ", "Astana", Coord{51.17, 71.45}},
	{"LB", "Beirut", Coord{33.89, 35.50}},
	{"LK", "Colombo", Coord{6.93, 79.85}},
	{"LT", "Vilnius", Coord{54.69, 25.28}},
	{"LU", "Luxembourg", Coord{49.61, 6.13}},
	{"LV", "Riga", Coord{56.95, 24.11}},
	{"MA", "Rabat", Coord{34.02, -6.84}},
	{"MD", "Chisinau", Coord{47.01, 28.86}},
	{"ME", "Podgorica", Coord{42.43, 19.26}},
	{"MK", "Skopje", Coord{41.99, 21.43}},
	{"MM", "Naypyidaw", Coord{19.76, 96.08}},
	{"MN", "Ulaanbaatar", Coord{47.89, 106.91}},
	{"MT", "Valletta", Coord{35.90, 14.51}},
	{"MX", "Mexico City", Coord{19.43, -99.13}},
	{"MY", "Kuala Lumpur", Coord{3.14, 101.69}},
	{"MZ", "Maputo", Coord{-25.97, 32.57}},
	{"NG", "Abuja", Coord{9.06, 7.49}},
	{"NI", "Managua", Coord{12.11, -86.24}},
	{"NL", "Amsterdam", Coord{52.37, 4.90}},
	{"NO", "Oslo", Coord{59.91, 10.75}},
	{"NP", "Kathmandu", Coord{27.72, 85.32}},
	{"NZ", "Wellington", Coord{-41.29, 174.78}},
	{"OM", "Muscat", Coord{23.59, 58.41}},
	{"PA", "Panama City", Coord{8.98, -79.52}},
	{"PE", "Lima", Coord{-12.05, -77.04}},
	{"PH", "Manila", Coord{14.60, 120.98}},
	{"PK", "Islamabad", Coord{33.69, 73.06}},
	{"PL", "Warsaw", Coord{52.23, 21.01}},
	{"PT", "Lisbon", Coord{38.72, -9.14}},
	{"PY", "Asuncion", Coord{-25.26, -57.58}},
	{"QA", "Doha", Coord{25.29, 51.53}},
	{"RO", "Bucharest", Coord{44.43, 26.10}},
	{"RS", "Belgrade", Coord{44.79, 20.45}},
	{"RU", "Moscow", Coord{55.76, 37.62}},
	{"SA", "Riyadh", Coord{24.71, 46.68}},
	{"SE", "Stockholm", Coord{59.33, 18.07}},
	{"SG", "Singapore", Coord{1.35, 103.82}},
	{"SI", "Ljubljana", Coord{46.06, 14.51}},
	{"SK", "Bratislava", Coord{48.15, 17.11}},
	{"SN", "Dakar", Coord{14.72, -17.47}},
	{"TH", "Bangkok", Coord{13.76, 100.50}},
	{"TN", "Tunis", Coord{36.81, 10.18}},
	{"TR", "Ankara", Coord{39.93, 32.86}},
	{"TW", "Taipei", Coord{25.03, 121.57}},
	{"TZ", "Dodoma", Coord{-6.16, 35.75}},
	{"UA", "Kyiv", Coord{50.45, 30.52}},
	{"US", "Washington", Coord{38.91, -77.04}},
	{"UY", "Montevideo", Coord{-34.90, -56.16}},
	{"UZ", "Tashkent", Coord{41.30, 69.24}},
	{"VE", "Caracas", Coord{10.48, -66.90}},
	{"VN", "Hanoi", Coord{21.03, 105.85}},
	{"ZA", "Pretoria", Coord{-25.75, 28.19}},
	{"ZM", "Lusaka", Coord{-15.39, 28.32}},
	{"ZW", "Harare", Coord{-17.83, 31.05}},
}

// Capitals returns a copy of the anchor-city table.
func Capitals() []Place {
	out := make([]Place, len(capitals))
	copy(out, capitals)
	return out
}

// NumCountries returns how many distinct countries the table covers.
func NumCountries() int {
	seen := make(map[string]bool, len(capitals))
	for _, p := range capitals {
		seen[p.Country] = true
	}
	return len(seen)
}
