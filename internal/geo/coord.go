// Package geo provides the geographic substrate for the reproduction:
// coordinates, great-circle distances, an airport-code landmark
// database, a propagation-delay model, and the paper's hybrid server
// geolocation methodology (Sect. 2.1).
//
// The paper locates cloud front-ends by combining (i) airport codes
// embedded in reverse-DNS names, (ii) the shortest RTT to PlanetLab
// vantage points, and (iii) traceroute towards the target to find the
// closest well-known router location. All three techniques are
// implemented here and run against the synthetic Internet built by
// internal/netem and internal/dnssim.
package geo

import (
	"fmt"
	"math"
)

// Coord is a point on the Earth's surface in decimal degrees.
type Coord struct {
	Lat float64 // positive north
	Lon float64 // positive east
}

// String formats the coordinate as "52.22N 6.89E".
func (c Coord) String() string {
	ns, ew := "N", "E"
	lat, lon := c.Lat, c.Lon
	if lat < 0 {
		ns, lat = "S", -lat
	}
	if lon < 0 {
		ew, lon = "W", -lon
	}
	return fmt.Sprintf("%.2f%s %.2f%s", lat, ns, lon, ew)
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle (haversine) distance between two
// coordinates in kilometres.
func DistanceKm(a, b Coord) float64 {
	const rad = math.Pi / 180
	dLat := (b.Lat - a.Lat) * rad
	dLon := (b.Lon - a.Lon) * rad
	la1, la2 := a.Lat*rad, b.Lat*rad
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Midpoint returns the midpoint of the great-circle segment between a
// and b. It is used when two landmark hints disagree.
func Midpoint(a, b Coord) Coord {
	const rad = math.Pi / 180
	la1, lo1 := a.Lat*rad, a.Lon*rad
	la2, lo2 := b.Lat*rad, b.Lon*rad
	bx := math.Cos(la2) * math.Cos(lo2-lo1)
	by := math.Cos(la2) * math.Sin(lo2-lo1)
	lat := math.Atan2(math.Sin(la1)+math.Sin(la2),
		math.Sqrt((math.Cos(la1)+bx)*(math.Cos(la1)+bx)+by*by))
	lon := lo1 + math.Atan2(by, math.Cos(la1)+bx)
	return Coord{Lat: lat / rad, Lon: lon / rad}
}
