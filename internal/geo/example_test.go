package geo_test

import (
	"fmt"
	"time"

	"repro/internal/geo"
)

// ExampleLocate runs the paper's hybrid geolocation on three kinds of
// evidence, showing the preference order: reverse-DNS airport code,
// then traceroute landmark, then shortest RTT to a vantage point.
func ExampleLocate() {
	// Strongest: the operator put the location in the hostname.
	byPTR := geo.Locate(geo.Evidence{
		IP:         "203.0.113.1",
		ReverseDNS: "storage-iad3-7.net.example",
	})
	fmt.Println(byPTR.Method, byPTR.City)

	// Fallback: a locatable router on the forward path.
	byRoute := geo.Locate(geo.Evidence{
		IP:         "203.0.113.2",
		ReverseDNS: "opaque.example",
		Traceroute: []geo.Hop{{Name: "be-3-zrh4.transit.example", RTT: 9 * time.Millisecond}},
	})
	fmt.Println(byRoute.Method, byRoute.City)

	// Last resort: the closest vantage point by measured RTT.
	ams, _ := geo.LookupAirport("AMS")
	byRTT := geo.Locate(geo.Evidence{
		IP:       "203.0.113.3",
		Vantages: []geo.VantageRTT{{Name: "v-ams", Coord: ams.Coord, RTT: 3 * time.Millisecond}},
	})
	fmt.Println(byRTT.Method, byRTT.City)
	// Output:
	// reverse-dns Washington Dulles
	// traceroute Zurich
	// shortest-rtt Amsterdam
}
