package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// Ground-truth distances (great circle, approximate).
func TestDistanceKnownPairs(t *testing.T) {
	ams, _ := LookupAirport("AMS")
	iad, _ := LookupAirport("IAD")
	sin, _ := LookupAirport("SIN")
	zrh, _ := LookupAirport("ZRH")
	cases := []struct {
		a, b    Coord
		wantKm  float64
		within  float64
		comment string
	}{
		{ams.Coord, iad.Coord, 6200, 300, "Amsterdam-Washington"},
		{ams.Coord, sin.Coord, 10500, 400, "Amsterdam-Singapore"},
		{ams.Coord, zrh.Coord, 600, 100, "Amsterdam-Zurich"},
		{ams.Coord, ams.Coord, 0, 0.001, "identity"},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.wantKm) > c.within {
			t.Errorf("%s: distance = %.0f km, want %.0f±%.0f", c.comment, got, c.wantKm, c.within)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 uint16) bool {
		a := Coord{Lat: float64(lat1%180) - 90, Lon: float64(lon1%360) - 180}
		b := Coord{Lat: float64(lat2%180) - 90, Lon: float64(lon2%360) - 180}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= 20040 // half circumference
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMidpoint(t *testing.T) {
	a := Coord{0, 0}
	b := Coord{0, 90}
	m := Midpoint(a, b)
	if math.Abs(m.Lat) > 0.01 || math.Abs(m.Lon-45) > 0.01 {
		t.Fatalf("midpoint = %v, want 0,45", m)
	}
}

func TestCoordString(t *testing.T) {
	c := Coord{52.22, -6.89}
	if got := c.String(); got != "52.22N 6.89W" {
		t.Fatalf("String = %q", got)
	}
	c = Coord{-33.95, 151.18}
	if got := c.String(); got != "33.95S 151.18E" {
		t.Fatalf("String = %q", got)
	}
}

func TestLookupAirportCaseInsensitive(t *testing.T) {
	for _, code := range []string{"ams", "AMS", "Ams"} {
		if _, ok := LookupAirport(code); !ok {
			t.Fatalf("LookupAirport(%q) failed", code)
		}
	}
	if _, ok := LookupAirport("ZZZ"); ok {
		t.Fatal("LookupAirport(ZZZ) unexpectedly succeeded")
	}
}

func TestAirportsReturnsCopy(t *testing.T) {
	a := Airports()
	a[0].Code = "XXX"
	if airports[0].Code == "XXX" {
		t.Fatal("Airports leaked internal slice")
	}
}

func TestNearestAirport(t *testing.T) {
	// Enschede (Twente testbed) is closest to Amsterdam in our DB.
	got := NearestAirport(Coord{52.22, 6.89})
	if got.Code != "AMS" && got.Code != "FRA" {
		t.Fatalf("NearestAirport(Twente) = %s, want AMS (or FRA)", got.Code)
	}
}

func TestExtractAirportCode(t *testing.T) {
	cases := []struct {
		host string
		want string
		ok   bool
	}{
		{"r1.iad05.net.example.com", "IAD", true},
		{"edge-ams-2.example.com", "AMS", true},
		{"sea09s01-in-f14.1e100.net", "SEA", true},
		{"ae-1-51.nue2.example.net", "NUE", true},
		{"core_zrh_7.example.org", "ZRH", true},
		{"server.example.com", "", false},
		{"", "", false},
		{"amsterdam.example.com", "", false}, // full word, not a 3-letter label
	}
	for _, c := range cases {
		l, ok := ExtractAirportCode(c.host)
		if ok != c.ok || (ok && l.Code != c.want) {
			t.Errorf("ExtractAirportCode(%q) = %v,%v, want %v,%v", c.host, l.Code, ok, c.want, c.ok)
		}
	}
}

func TestPropagationRTTMonotonicInDistance(t *testing.T) {
	ams, _ := LookupAirport("AMS")
	zrh, _ := LookupAirport("ZRH")
	iad, _ := LookupAirport("IAD")
	sin, _ := LookupAirport("SIN")
	near := PropagationRTT(ams.Coord, zrh.Coord)
	mid := PropagationRTT(ams.Coord, iad.Coord)
	far := PropagationRTT(ams.Coord, sin.Coord)
	if !(near < mid && mid < far) {
		t.Fatalf("RTT not monotonic: %v %v %v", near, mid, far)
	}
	// Sanity: transatlantic RTT should land in the 80-130 ms band the
	// paper implies for EU->US-east paths.
	if mid < 80*time.Millisecond || mid > 130*time.Millisecond {
		t.Fatalf("AMS-IAD RTT = %v, want 80-130 ms", mid)
	}
}

func TestInflatedRTTClampsBelowOne(t *testing.T) {
	a, b := Coord{0, 0}, Coord{0, 10}
	if InflatedRTT(a, b, 0.2) != InflatedRTT(a, b, 1.0) {
		t.Fatal("inflation < 1 not clamped")
	}
}

func TestMaxDistanceKm(t *testing.T) {
	// 12 ms RTT leaves 10 ms after base cost: 5 ms one way = 1000 km.
	got := MaxDistanceKm(12 * time.Millisecond)
	if math.Abs(got-1000) > 1 {
		t.Fatalf("MaxDistanceKm(12ms) = %.1f, want 1000", got)
	}
	if MaxDistanceKm(0) != 0 {
		t.Fatal("MaxDistanceKm(0) != 0")
	}
}

func TestLocatePrefersReverseDNS(t *testing.T) {
	ams, _ := LookupAirport("AMS")
	est := Locate(Evidence{
		IP:         "10.0.0.1",
		ReverseDNS: "edge-ams-1.google.example",
		Vantages: []VantageRTT{
			{Name: "v-sin", Coord: Coord{1.36, 103.99}, RTT: 5 * time.Millisecond},
		},
	})
	if est.Method != MethodReverseDNS {
		t.Fatalf("method = %v, want reverse-dns", est.Method)
	}
	if DistanceKm(est.Coord, ams.Coord) > 1 {
		t.Fatalf("estimate at %v, want AMS", est.Coord)
	}
}

func TestLocateTracerouteFallback(t *testing.T) {
	est := Locate(Evidence{
		IP:         "10.0.0.2",
		ReverseDNS: "opaque-host.example",
		Traceroute: []Hop{
			{Name: "core-lhr-1.example.net", RTT: 4 * time.Millisecond},
			{Name: "ae0.fra3.example.net", RTT: 9 * time.Millisecond},
			{Name: "unresolved", RTT: 11 * time.Millisecond},
		},
	})
	if est.Method != MethodTraceroute {
		t.Fatalf("method = %v, want traceroute", est.Method)
	}
	// Last locatable hop wins (FRA, not LHR).
	fra, _ := LookupAirport("FRA")
	if DistanceKm(est.Coord, fra.Coord) > 1 {
		t.Fatalf("estimate at %v, want FRA", est.Coord)
	}
}

func TestLocateShortestRTTFallback(t *testing.T) {
	zrh, _ := LookupAirport("ZRH")
	est := Locate(Evidence{
		IP: "10.0.0.3",
		Vantages: []VantageRTT{
			{Name: "v-zrh", Coord: zrh.Coord, RTT: 3 * time.Millisecond},
			{Name: "v-sin", Coord: Coord{1.36, 103.99}, RTT: 180 * time.Millisecond},
		},
	})
	if est.Method != MethodShortestRTT {
		t.Fatalf("method = %v, want shortest-rtt", est.Method)
	}
	if DistanceKm(est.Coord, zrh.Coord) > 1 {
		t.Fatalf("estimate at %v, want ZRH vantage", est.Coord)
	}
	if est.UncertaintyKm < 100 {
		t.Fatalf("uncertainty = %.0f km, want >= 100", est.UncertaintyKm)
	}
}

func TestLocateNoEvidence(t *testing.T) {
	est := Locate(Evidence{IP: "10.0.0.4"})
	if est.Located() {
		t.Fatal("located with no evidence")
	}
}

// End-to-end accuracy check: with a world-wide vantage mesh and the
// propagation model as ground truth, hybrid geolocation should land
// within the paper's claimed ~100 km for targets at a vantage city,
// and within the uncertainty radius everywhere.
func TestLocateAccuracyAgainstGroundTruth(t *testing.T) {
	vantages := Airports()
	for _, target := range []string{"IAD", "SEA", "NUE", "ZRH", "SIN", "DUB", "PDX"} {
		tgt, _ := LookupAirport(target)
		var vs []VantageRTT
		for _, v := range vantages {
			if v.Code == target {
				continue // never measure from the target city itself
			}
			vs = append(vs, VantageRTT{
				Name:  "v-" + v.Code,
				Coord: v.Coord,
				RTT:   PropagationRTT(v.Coord, tgt.Coord),
			})
		}
		est := Locate(Evidence{IP: "ip-" + target, Vantages: vs})
		if !est.Located() {
			t.Fatalf("%s: not located", target)
		}
		err := DistanceKm(est.Coord, tgt.Coord)
		if err > est.UncertaintyKm {
			t.Errorf("%s: error %.0f km exceeds claimed uncertainty %.0f km", target, err, est.UncertaintyKm)
		}
	}
}

func TestRankVantagesSorted(t *testing.T) {
	vs := []VantageRTT{
		{Name: "b", RTT: 9 * time.Millisecond},
		{Name: "a", RTT: 3 * time.Millisecond},
		{Name: "c", RTT: 3 * time.Millisecond},
	}
	got := RankVantages(vs)
	if got[0].Name != "a" || got[1].Name != "c" || got[2].Name != "b" {
		t.Fatalf("rank order = %v", got)
	}
	if vs[0].Name != "b" {
		t.Fatal("RankVantages mutated input")
	}
}

func TestMethodString(t *testing.T) {
	if MethodNone.String() != "none" || MethodReverseDNS.String() != "reverse-dns" ||
		MethodTraceroute.String() != "traceroute" || MethodShortestRTT.String() != "shortest-rtt" {
		t.Fatal("Method.String mismatch")
	}
}
