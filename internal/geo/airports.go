package geo

import (
	"math"
	"strings"
)

// Landmark is a well-known location usable as a geolocation hint:
// an IATA airport code with its city and coordinates. Cloud operators
// commonly embed these codes in router and front-end hostnames
// (e.g. "edge-iad-3.example.net" sits near Washington Dulles).
type Landmark struct {
	Code    string // IATA code, upper case
	City    string
	Country string // ISO-3166 alpha-2
	Coord   Coord
}

// airports is the built-in landmark database. It covers the locations
// that appear in the paper (testbed, data centers, Google edge nodes)
// plus enough world-wide spread for resolver and vantage placement.
var airports = []Landmark{
	// North America
	{"SJC", "San Jose", "US", Coord{37.36, -121.93}},
	{"SFO", "San Francisco", "US", Coord{37.62, -122.38}},
	{"LAX", "Los Angeles", "US", Coord{33.94, -118.41}},
	{"SEA", "Seattle", "US", Coord{47.45, -122.31}},
	{"PDX", "Portland", "US", Coord{45.59, -122.60}},
	{"IAD", "Washington Dulles", "US", Coord{38.94, -77.46}},
	{"RIC", "Richmond", "US", Coord{37.51, -77.32}},
	{"JFK", "New York", "US", Coord{40.64, -73.78}},
	{"ORD", "Chicago", "US", Coord{41.97, -87.91}},
	{"DFW", "Dallas", "US", Coord{32.90, -97.04}},
	{"ATL", "Atlanta", "US", Coord{33.64, -84.43}},
	{"MIA", "Miami", "US", Coord{25.79, -80.29}},
	{"DEN", "Denver", "US", Coord{39.86, -104.67}},
	{"YYZ", "Toronto", "CA", Coord{43.68, -79.63}},
	{"YVR", "Vancouver", "CA", Coord{49.19, -123.18}},
	{"MEX", "Mexico City", "MX", Coord{19.44, -99.07}},
	// Europe
	{"AMS", "Amsterdam", "NL", Coord{52.31, 4.76}},
	{"FRA", "Frankfurt", "DE", Coord{50.03, 8.57}},
	{"NUE", "Nuremberg", "DE", Coord{49.50, 11.08}},
	{"BER", "Berlin", "DE", Coord{52.36, 13.50}},
	{"LHR", "London", "GB", Coord{51.47, -0.45}},
	{"CDG", "Paris", "FR", Coord{49.01, 2.55}},
	{"LIL", "Lille", "FR", Coord{50.56, 3.09}},
	{"ZRH", "Zurich", "CH", Coord{47.46, 8.55}},
	{"MXP", "Milan", "IT", Coord{45.63, 8.72}},
	{"MAD", "Madrid", "ES", Coord{40.47, -3.56}},
	{"BCN", "Barcelona", "ES", Coord{41.30, 2.08}},
	{"ARN", "Stockholm", "SE", Coord{59.65, 17.92}},
	{"HEL", "Helsinki", "FI", Coord{60.32, 24.96}},
	{"DUB", "Dublin", "IE", Coord{53.42, -6.27}},
	{"BRU", "Brussels", "BE", Coord{50.90, 4.48}},
	{"VIE", "Vienna", "AT", Coord{48.11, 16.57}},
	{"WAW", "Warsaw", "PL", Coord{52.17, 20.97}},
	{"PRG", "Prague", "CZ", Coord{50.10, 14.26}},
	{"LIS", "Lisbon", "PT", Coord{38.77, -9.13}},
	{"ATH", "Athens", "GR", Coord{37.94, 23.94}},
	{"IST", "Istanbul", "TR", Coord{40.98, 28.81}},
	{"SVO", "Moscow", "RU", Coord{55.97, 37.41}},
	// Asia-Pacific
	{"SIN", "Singapore", "SG", Coord{1.36, 103.99}},
	{"HKG", "Hong Kong", "HK", Coord{22.31, 113.91}},
	{"NRT", "Tokyo", "JP", Coord{35.76, 140.39}},
	{"ICN", "Seoul", "KR", Coord{37.46, 126.44}},
	{"TPE", "Taipei", "TW", Coord{25.08, 121.23}},
	{"BOM", "Mumbai", "IN", Coord{19.09, 72.87}},
	{"DEL", "Delhi", "IN", Coord{28.57, 77.10}},
	{"KUL", "Kuala Lumpur", "MY", Coord{2.75, 101.71}},
	{"BKK", "Bangkok", "TH", Coord{13.69, 100.75}},
	{"SYD", "Sydney", "AU", Coord{-33.95, 151.18}},
	{"AKL", "Auckland", "NZ", Coord{-37.01, 174.79}},
	// South America
	{"GRU", "Sao Paulo", "BR", Coord{-23.44, -46.47}},
	{"EZE", "Buenos Aires", "AR", Coord{-34.82, -58.54}},
	{"SCL", "Santiago", "CL", Coord{-33.39, -70.79}},
	{"BOG", "Bogota", "CO", Coord{4.70, -74.15}},
	{"LIM", "Lima", "PE", Coord{-12.02, -77.11}},
	// Africa & Middle East
	{"JNB", "Johannesburg", "ZA", Coord{-26.14, 28.25}},
	{"CAI", "Cairo", "EG", Coord{30.12, 31.41}},
	{"LOS", "Lagos", "NG", Coord{6.58, 3.32}},
	{"NBO", "Nairobi", "KE", Coord{-1.32, 36.93}},
	{"TLV", "Tel Aviv", "IL", Coord{32.01, 34.89}},
	{"DXB", "Dubai", "AE", Coord{25.25, 55.36}},
}

// byCode indexes the landmark database by IATA code.
var byCode = func() map[string]Landmark {
	m := make(map[string]Landmark, len(airports))
	for _, a := range airports {
		m[a.Code] = a
	}
	return m
}()

// LookupAirport returns the landmark for an IATA code (any case).
func LookupAirport(code string) (Landmark, bool) {
	l, ok := byCode[strings.ToUpper(code)]
	return l, ok
}

// Airports returns a copy of the landmark database.
func Airports() []Landmark {
	out := make([]Landmark, len(airports))
	copy(out, airports)
	return out
}

// NearestAirport returns the landmark closest to c.
func NearestAirport(c Coord) Landmark {
	best, bestD := airports[0], math.MaxFloat64
	for _, a := range airports {
		if d := DistanceKm(c, a.Coord); d < bestD {
			best, bestD = a, d
		}
	}
	return best
}

// ExtractAirportCode scans a reverse-DNS hostname for an embedded IATA
// airport code and returns the corresponding landmark. Codes are
// recognised inside dash- or dot-separated labels, optionally followed
// by digits, mirroring operator naming such as "r1.iad05.net.example"
// or "edge-ams-2.example.com". Three-letter English words that happen
// to collide with rarely-used codes are avoided by only matching codes
// present in the landmark database.
func ExtractAirportCode(hostname string) (Landmark, bool) {
	host := strings.ToLower(hostname)
	for _, label := range strings.FieldsFunc(host, func(r rune) bool {
		return r == '.' || r == '-' || r == '_'
	}) {
		// Take the leading alphabetic run: "iad05" -> "iad",
		// "sea09s01" -> "sea". A run longer than 3 letters is a
		// word, not a code ("amsterdam" must not match "AMS").
		run := 0
		for run < len(label) && label[run] >= 'a' && label[run] <= 'z' {
			run++
		}
		if run != 3 {
			continue
		}
		if l, ok := byCode[strings.ToUpper(label[:3])]; ok {
			return l, true
		}
	}
	return Landmark{}, false
}
