package geo

import "time"

// The propagation model converts great-circle distance into round-trip
// time. Light in fibre travels at roughly 2/3 c (~200 km/ms one way),
// and real Internet paths are longer than the great circle: published
// measurements put the median path-inflation factor around 1.5-2.0.
// On top of propagation, every path pays a small fixed cost for
// serialization, queuing and the access network.
const (
	// fibreKmPerMs is the one-way distance light covers per
	// millisecond in fibre (2/3 of c).
	fibreKmPerMs = 200.0

	// defaultInflation stretches the great-circle distance to a
	// plausible routed-path distance.
	defaultInflation = 1.7

	// basePathCost is the distance-independent RTT floor (access
	// links, serialization, forwarding).
	basePathCost = 2 * time.Millisecond
)

// PropagationRTT estimates the round-trip time between two points using
// the default inflation model.
func PropagationRTT(a, b Coord) time.Duration {
	return InflatedRTT(a, b, defaultInflation)
}

// InflatedRTT estimates RTT with an explicit path-inflation factor.
// Inflation below 1 is treated as 1 (a routed path cannot be shorter
// than the great circle).
func InflatedRTT(a, b Coord, inflation float64) time.Duration {
	if inflation < 1 {
		inflation = 1
	}
	oneWayMs := DistanceKm(a, b) * inflation / fibreKmPerMs
	return basePathCost + time.Duration(2*oneWayMs*float64(time.Millisecond))
}

// MaxDistanceKm bounds how far a host can be, given a measured RTT:
// even on a perfectly straight fibre the signal cannot have travelled
// further than rtt/2 * 200 km/ms. This is the constraint used by the
// shortest-RTT geolocation step (a measured 10 ms RTT proves the target
// is within ~1,000 km).
func MaxDistanceKm(rtt time.Duration) float64 {
	budget := rtt - basePathCost
	if budget < 0 {
		budget = 0
	}
	return budget.Seconds() * 1000 / 2 * fibreKmPerMs
}
