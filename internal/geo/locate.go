package geo

import (
	"sort"
	"time"
)

// Method identifies which geolocation technique produced an estimate.
// The paper's hybrid methodology (Sect. 2.1) prefers reverse-DNS
// airport codes, falls back to traceroute router landmarks, and uses
// shortest-RTT multilateration as the last resort.
type Method int

const (
	// MethodNone means the target could not be located.
	MethodNone Method = iota
	// MethodReverseDNS located the target via an airport code in its
	// reverse-DNS name.
	MethodReverseDNS
	// MethodTraceroute located the target via the last resolvable
	// router on the forward path.
	MethodTraceroute
	// MethodShortestRTT located the target near the vantage point
	// with the smallest measured RTT.
	MethodShortestRTT
)

// String returns the method name used in reports.
func (m Method) String() string {
	switch m {
	case MethodReverseDNS:
		return "reverse-dns"
	case MethodTraceroute:
		return "traceroute"
	case MethodShortestRTT:
		return "shortest-rtt"
	default:
		return "none"
	}
}

// Estimate is the output of the hybrid geolocator.
type Estimate struct {
	Coord         Coord
	Method        Method
	City          string // nearest landmark city, for reports
	Country       string
	UncertaintyKm float64 // radius of the confidence disc
}

// Located reports whether the estimate carries a usable position.
func (e Estimate) Located() bool { return e.Method != MethodNone }

// VantageRTT is one RTT measurement from a known vantage point
// (PlanetLab node in the paper) towards the target.
type VantageRTT struct {
	Name  string
	Coord Coord
	RTT   time.Duration
}

// Hop is one traceroute hop: the reverse-DNS name of the router, if
// resolvable.
type Hop struct {
	Name string
	RTT  time.Duration
}

// Evidence gathers everything the measurement harness learned about one
// server IP before geolocation.
type Evidence struct {
	IP         string
	ReverseDNS string       // may be empty
	Vantages   []VantageRTT // RTT measurements, any order
	Traceroute []Hop        // forward path, nearest first
}

// Locate runs the hybrid methodology on the collected evidence.
//
// Preference order mirrors the paper: an airport code embedded in the
// target's own reverse-DNS name is the strongest signal (the operator
// tells us where the box is); next, the closest locatable router on the
// forward path; finally, the vantage point with the shortest RTT, whose
// uncertainty radius follows from the speed of light in fibre. The
// paper reports ~100 km typical precision for the hybrid method, which
// the tests verify against the synthetic ground truth.
func Locate(ev Evidence) Estimate {
	if l, ok := ExtractAirportCode(ev.ReverseDNS); ok {
		return Estimate{
			Coord: l.Coord, Method: MethodReverseDNS,
			City: l.City, Country: l.Country,
			UncertaintyKm: 50,
		}
	}
	// Traceroute: the *last* locatable hop is the closest well-known
	// router to the target.
	for i := len(ev.Traceroute) - 1; i >= 0; i-- {
		if l, ok := ExtractAirportCode(ev.Traceroute[i].Name); ok {
			return Estimate{
				Coord: l.Coord, Method: MethodTraceroute,
				City: l.City, Country: l.Country,
				UncertaintyKm: 150,
			}
		}
	}
	if len(ev.Vantages) > 0 {
		best := shortestVantage(ev.Vantages)
		near := NearestAirport(best.Coord)
		unc := MaxDistanceKm(best.RTT)
		if unc < 100 {
			unc = 100
		}
		return Estimate{
			Coord: best.Coord, Method: MethodShortestRTT,
			City: near.City, Country: near.Country,
			UncertaintyKm: unc,
		}
	}
	return Estimate{}
}

// shortestVantage returns the measurement with the minimum RTT,
// breaking ties by name for determinism.
func shortestVantage(vs []VantageRTT) VantageRTT {
	best := vs[0]
	for _, v := range vs[1:] {
		if v.RTT < best.RTT || (v.RTT == best.RTT && v.Name < best.Name) {
			best = v
		}
	}
	return best
}

// RankVantages returns the measurements sorted by ascending RTT. It is
// used by reports that show the multilateration evidence.
func RankVantages(vs []VantageRTT) []VantageRTT {
	out := make([]VantageRTT, len(vs))
	copy(out, vs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RTT != out[j].RTT {
			return out[i].RTT < out[j].RTT
		}
		return out[i].Name < out[j].Name
	})
	return out
}
