package sim

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestLegacyEngineMatchesMathRand pins NewLegacyRNG as a faithful
// reference: it must reproduce math/rand's stream for the same seed,
// exactly as every release before the PCG engine did.
func TestLegacyEngineMatchesMathRand(t *testing.T) {
	leg := NewLegacyRNG(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		if leg.Int63() != ref.Int63() {
			t.Fatalf("legacy engine diverged from math/rand at draw %d", i)
		}
	}
	leg2 := NewLegacyRNG(42)
	ref2 := rand.New(rand.NewSource(42))
	want := make([]byte, 1000)
	ref2.Read(want)
	if !bytes.Equal(leg2.Bytes(1000), want) {
		t.Fatal("legacy Bytes diverged from math/rand Read")
	}
}

// TestEnginesShareForkDerivation pins that both engines derive child
// seeds identically: descriptor identity (kind, seed, size) is engine
// portable, only the materialised stream differs.
func TestEnginesShareForkDerivation(t *testing.T) {
	p := NewRNG(7)
	l := NewLegacyRNG(7)
	for label := int64(-3); label < 10; label++ {
		if p.ForkSeed(label) != l.ForkSeed(label) {
			t.Fatalf("fork seed derivation differs at label %d", label)
		}
		if p.Fork(label).Seed() != p.ForkSeed(label) {
			t.Fatal("Fork seed disagrees with ForkSeed")
		}
	}
}

// TestReseedMatchesFreshSource pins Reseed's contract: a reseeded
// source continues with exactly the stream a fresh source for that
// seed would produce, on every engine, whatever state the source was
// in before.
func TestReseedMatchesFreshSource(t *testing.T) {
	check := func(name string, reseeded, fresh *RNG) {
		t.Helper()
		if reseeded.Seed() != fresh.Seed() {
			t.Fatalf("%s: Seed() = %d, want %d", name, reseeded.Seed(), fresh.Seed())
		}
		for i := 0; i < 100; i++ {
			if reseeded.Int63() != fresh.Int63() {
				t.Fatalf("%s: reseeded stream diverged at draw %d", name, i)
			}
		}
		if !bytes.Equal(reseeded.Bytes(100), fresh.Bytes(100)) {
			t.Fatalf("%s: reseeded Bytes diverged", name)
		}
	}

	pcg := NewRNG(3)
	pcg.Int63() // advance so Reseed must really reset state
	pcg.Reseed(99)
	check("pcg", pcg, NewRNG(99))

	anti := NewAntitheticRNG(3)
	anti.Int63()
	anti.Reseed(99)
	if !anti.Antithetic() {
		t.Fatal("Reseed dropped the antithetic mask")
	}
	check("antithetic", anti, NewAntitheticRNG(99))

	leg := NewLegacyRNG(3)
	leg.Int63()
	leg.Reseed(99)
	check("legacy", leg, NewLegacyRNG(99))
}

// TestForkInheritsEngine pins that children stay on their parent's
// engine — a campaign never silently mixes byte streams.
func TestForkInheritsEngine(t *testing.T) {
	if NewRNG(1).Fork(2).Legacy() {
		t.Fatal("PCG fork fell back to legacy engine")
	}
	if !NewLegacyRNG(1).Fork(2).Legacy() {
		t.Fatal("legacy fork upgraded to PCG engine")
	}
}

// TestEnginesProduceDistinctStreams guards against the engines
// accidentally collapsing into one another.
func TestEnginesProduceDistinctStreams(t *testing.T) {
	if bytes.Equal(NewRNG(9).Bytes(64), NewLegacyRNG(9).Bytes(64)) {
		t.Fatal("engines produced identical bytes")
	}
}

// TestPCGDeterminismAndFill pins the PCG stream: same seed, same
// bytes, via Bytes and via Fill into a reused buffer.
func TestPCGDeterminismAndFill(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 4096, 100_001} {
		want := NewRNG(3).Bytes(n)
		if len(want) != n {
			t.Fatalf("Bytes(%d) returned %d bytes", n, len(want))
		}
		got := make([]byte, n)
		NewRNG(3).Fill(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("Fill(%d) diverged from Bytes", n)
		}
	}
}

// TestPCGByteUniformity is a cheap sanity screen on the generator: all
// 256 byte values appear and the mean is near 127.5. (PCG's formal
// statistical properties are established literature; this guards
// against wiring bugs like a truncated output permutation.)
func TestPCGByteUniformity(t *testing.T) {
	b := NewRNG(1).Bytes(1 << 16)
	var counts [256]int
	var sum float64
	for _, v := range b {
		counts[v]++
		sum += float64(v)
	}
	for v, c := range counts {
		if c == 0 {
			t.Fatalf("byte value %d never appeared in 64 kB", v)
		}
	}
	mean := sum / float64(len(b))
	if mean < 124 || mean > 131 {
		t.Fatalf("byte mean = %.2f, want ~127.5", mean)
	}
}

// TestPCGJitterStaysUniform re-runs the Jitter bound check on the PCG
// engine (sim_test.go covers the generic contract) and screens the
// spread: over many draws both halves of the interval are hit.
func TestPCGJitterStaysUniform(t *testing.T) {
	r := NewRNG(8)
	lo, hi := 0, 0
	for i := 0; i < 10_000; i++ {
		v := r.Jitter(1000, 400)
		if v < 800 || v >= 1200 {
			t.Fatalf("Jitter out of bounds: %d", v)
		}
		if v < 1000 {
			lo++
		} else {
			hi++
		}
	}
	if lo < 4000 || hi < 4000 {
		t.Fatalf("Jitter skewed: %d below, %d above", lo, hi)
	}
}

// BenchmarkFork measures the seeding cost the PCG engine removes: the
// legacy engine initialises a 607-word lagged-Fibonacci state per
// child, the PCG engine runs two SplitMix64 rounds.
func BenchmarkFork(b *testing.B) {
	b.Run("pcg", func(b *testing.B) {
		r := NewRNG(1)
		for i := 0; i < b.N; i++ {
			r.Fork(int64(i))
		}
	})
	b.Run("legacy", func(b *testing.B) {
		r := NewLegacyRNG(1)
		for i := 0; i < b.N; i++ {
			r.Fork(int64(i))
		}
	})
}

// BenchmarkFill measures bulk byte generation (the RNG.Bytes file
// materialisation path) on both engines.
func BenchmarkFill(b *testing.B) {
	buf := make([]byte, 1<<20)
	b.Run("pcg", func(b *testing.B) {
		r := NewRNG(1)
		b.SetBytes(int64(len(buf)))
		for i := 0; i < b.N; i++ {
			r.Fill(buf)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		r := NewLegacyRNG(1)
		b.SetBytes(int64(len(buf)))
		for i := 0; i < b.N; i++ {
			r.Fill(buf)
		}
	})
}

// TestAntitheticComplementsStream pins the antithetic construction:
// the raw 64-bit stream is the bitwise complement of the plain stream,
// so Int63 reflects across the midpoint and Float64 across ~0.5.
func TestAntitheticComplementsStream(t *testing.T) {
	plain := NewRNG(7)
	anti := NewAntitheticRNG(7)
	if !anti.Antithetic() || plain.Antithetic() {
		t.Fatal("Antithetic flag wrong")
	}
	for i := 0; i < 1000; i++ {
		p := plain.Int63()
		a := anti.Int63()
		if a != (1<<63-1)-p {
			t.Fatalf("draw %d: %d is not the reflection of %d", i, a, p)
		}
	}
	plain, anti = NewRNG(7), NewAntitheticRNG(7)
	var sum float64
	for i := 0; i < 1000; i++ {
		sum += plain.Float64() + anti.Float64()
	}
	// Pair sums are ~1 each (exactly 1-2^-63 per pair up to the
	// Float64 rounding path), so the mean of 1000 pairs is pinned
	// far tighter than either stream's own mean.
	if sum < 999.9 || sum > 1000.1 {
		t.Fatalf("antithetic pair sum = %v, want ~1000", sum)
	}
}

// TestAntitheticForkPropagates checks that children of an antithetic
// source stay antithetic and mirror the plain source's children.
func TestAntitheticForkPropagates(t *testing.T) {
	plain := NewRNG(9).Fork(3).Fork(5)
	anti := NewAntitheticRNG(9).Fork(3).Fork(5)
	if !anti.Antithetic() {
		t.Fatal("Fork dropped the antithetic mask")
	}
	if plain.Seed() != anti.Seed() {
		t.Fatal("Fork seed chains diverged")
	}
	for i := 0; i < 100; i++ {
		if anti.Int63() != (1<<63-1)-plain.Int63() {
			t.Fatalf("forked child not antithetic at draw %d", i)
		}
	}
}

// TestAntitheticDeterminism: same seed, same stream — the antithetic
// engine obeys the same reproducibility contract as the others.
func TestAntitheticDeterminism(t *testing.T) {
	a, b := NewAntitheticRNG(42), NewAntitheticRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("antithetic stream not deterministic at draw %d", i)
		}
	}
	buf1, buf2 := make([]byte, 1029), make([]byte, 1029)
	NewAntitheticRNG(42).Fill(buf1)
	NewAntitheticRNG(42).Fill(buf2)
	if !bytes.Equal(buf1, buf2) {
		t.Fatal("antithetic Fill not deterministic")
	}
}
