package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValueReadsEpoch(t *testing.T) {
	var c Clock
	if !c.Now().Equal(Epoch) {
		t.Fatalf("zero clock = %v, want %v", c.Now(), Epoch)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(3 * time.Second)
	c.Advance(500 * time.Millisecond)
	if got, want := c.Elapsed(), 3500*time.Millisecond; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
	if got := c.Since(Epoch.Add(time.Second)); got != 2500*time.Millisecond {
		t.Fatalf("Since = %v, want 2.5s", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-time.Nanosecond)
}

func TestClockAdvanceToNeverRewinds(t *testing.T) {
	c := NewClock()
	c.Advance(10 * time.Second)
	c.AdvanceTo(Epoch.Add(2 * time.Second))
	if got := c.Elapsed(); got != 10*time.Second {
		t.Fatalf("clock rewound to %v", got)
	}
	c.AdvanceTo(Epoch.Add(15 * time.Second))
	if got := c.Elapsed(); got != 15*time.Second {
		t.Fatalf("AdvanceTo forward = %v, want 15s", got)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	c := NewClock()
	s := NewScheduler(c)
	var got []int
	s.After(3*time.Second, func(*Scheduler) { got = append(got, 3) })
	s.After(1*time.Second, func(*Scheduler) { got = append(got, 1) })
	s.After(2*time.Second, func(*Scheduler) { got = append(got, 2) })
	s.Drain()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("event order = %v, want [1 2 3]", got)
	}
	if c.Elapsed() != 3*time.Second {
		t.Fatalf("clock after drain = %v, want 3s", c.Elapsed())
	}
}

func TestSchedulerFIFOTiebreak(t *testing.T) {
	s := NewScheduler(NewClock())
	var got []int
	at := Epoch.Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		s.At(at, func(*Scheduler) { got = append(got, i) })
	}
	s.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	c := NewClock()
	s := NewScheduler(c)
	ran := 0
	s.After(1*time.Minute, func(*Scheduler) { ran++ })
	s.After(5*time.Minute, func(*Scheduler) { ran++ })
	s.RunUntil(Epoch.Add(2 * time.Minute))
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if got := c.Elapsed(); got != 2*time.Minute {
		t.Fatalf("clock = %v, want exactly 2m", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestSchedulerEvery(t *testing.T) {
	c := NewClock()
	s := NewScheduler(c)
	ticks := 0
	s.Every(15*time.Second, func(*Scheduler) bool {
		ticks++
		return true
	})
	s.RunUntil(Epoch.Add(16 * time.Minute))
	// 16 min / 15 s = 64 ticks, first at t=15s, last at t=960s inclusive.
	if ticks != 64 {
		t.Fatalf("ticks = %d, want 64", ticks)
	}
}

func TestSchedulerEveryStops(t *testing.T) {
	s := NewScheduler(NewClock())
	ticks := 0
	s.Every(time.Second, func(*Scheduler) bool {
		ticks++
		return ticks < 3
	})
	s.Drain()
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestSchedulerEventReArming(t *testing.T) {
	c := NewClock()
	s := NewScheduler(c)
	depth := 0
	var rearm func(*Scheduler)
	rearm = func(sch *Scheduler) {
		depth++
		if depth < 4 {
			sch.After(time.Second, rearm)
		}
	}
	s.After(time.Second, rearm)
	s.Drain()
	if depth != 4 {
		t.Fatalf("depth = %d, want 4", depth)
	}
	if c.Elapsed() != 4*time.Second {
		t.Fatalf("clock = %v, want 4s", c.Elapsed())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	c1, c2 := r.Fork(1), r.Fork(2)
	if c1.Seed() == c2.Seed() {
		t.Fatal("forked children share a seed")
	}
	if c1.Seed() == r.Seed() || c2.Seed() == r.Seed() {
		t.Fatal("child seed equals parent seed")
	}
	// Forking must be a pure function of (parent seed, label).
	again := NewRNG(7).Fork(1)
	if again.Seed() != c1.Seed() {
		t.Fatal("Fork is not deterministic")
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(1)
	f := func(base, spread uint16) bool {
		b, s := int64(base), int64(spread)
		v := r.Jitter(b, s)
		if v < 0 {
			return false
		}
		if s <= 0 {
			return v == b
		}
		return v >= max(0, b-s/2) && v < b+s/2+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBytesLength(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{0, 1, 17, 4096} {
		if got := len(r.Bytes(n)); got != n {
			t.Fatalf("Bytes(%d) len = %d", n, got)
		}
	}
}
