package sim

import (
	"encoding/binary"
	"math/rand"
)

// RNG is a deterministic random source for the simulation. A given
// experiment configuration reproduces identical file contents, jitter
// and DNS shuffles.
//
// Repetitions of an experiment derive child RNGs via Fork, which mixes
// the repetition index into the seed stream: each repetition sees
// different randomness, but the whole campaign is still a pure function
// of the top-level seed.
//
// Two engines exist behind the one API. The default engine (NewRNG) is
// a PCG generator seeded through SplitMix64: Fork is O(1) — two
// SplitMix64 rounds build the whole child state — and Bytes/Fill are a
// tight word-copy loop. The legacy engine (NewLegacyRNG) wraps
// math/rand's lagged-Fibonacci source exactly as every release before
// the descriptor pipeline did; it survives as the reference engine for
// structural-equivalence tests, the way tcpsim keeps its event loop
// behind Dialer.ForceEventLoop. Children inherit their parent's
// engine, so a campaign never silently mixes byte streams.
type RNG struct {
	*rand.Rand
	seed int64
	pcg  *pcg // nil for the legacy math/rand engine
}

// NewRNG returns a deterministic source for the given seed, using the
// fast PCG engine.
func NewRNG(seed int64) *RNG {
	p := newPCG(seed)
	return &RNG{Rand: rand.New(p), seed: seed, pcg: p}
}

// NewLegacyRNG returns a deterministic source for the given seed using
// the pre-descriptor math/rand engine (one 607-word lagged-Fibonacci
// initialisation per source). It exists as the reference engine for
// equivalence tests and costs ~50x more per Fork than the PCG engine.
func NewLegacyRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// NewAntitheticRNG returns the mirror of NewRNG(seed): the same PCG
// engine and state schedule, but every 64-bit output is bitwise
// complemented. Uniform draws reflect across the midpoint (Int63
// becomes 2^63-1-Int63, Float64 becomes ~1-Float64), so a simulation
// driven by the antithetic stream sees jitter negatively correlated
// with its NewRNG(seed) twin — the classical antithetic-variates
// construction the adaptive campaign driver uses to shrink the
// variance of pair means. Children keep the mask: Fork of an
// antithetic source is the antithetic of Fork of the plain source.
func NewAntitheticRNG(seed int64) *RNG {
	p := newPCG(seed)
	p.mask = ^uint64(0)
	return &RNG{Rand: rand.New(p), seed: seed, pcg: p}
}

// Seed returns the seed this source was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Antithetic reports whether this source complements its output
// stream (see NewAntitheticRNG). Legacy sources never do.
func (r *RNG) Antithetic() bool { return r.pcg != nil && r.pcg.mask != 0 }

// Legacy reports whether this source runs on the legacy math/rand
// engine rather than the default PCG engine.
func (r *RNG) Legacy() bool { return r.pcg == nil }

// Reseed resets the source in place to the exact state a fresh source
// for seed would start in, without allocating — the hot-loop form of
// NewRNG for callers that burn one short-lived stream per simulated
// event (the fleet engine reseeds one RNG per user slot instead of
// allocating per session). On the PCG engine the reseeded stream is
// bit-identical to NewRNG(seed)'s; an antithetic source stays
// antithetic, mirroring Fork. The legacy engine re-runs math/rand's
// source initialisation, matching NewLegacyRNG(seed).
func (r *RNG) Reseed(seed int64) {
	r.seed = seed
	if r.pcg == nil {
		r.Rand.Seed(seed)
		return
	}
	s0 := splitmix64(uint64(seed))
	r.pcg.state = s0
	r.pcg.inc = splitmix64(s0) | 1
}

// ForkSeed returns the seed a Fork(label) child would be created with:
// a SplitMix64-style hash of (parent seed, label), so children do not
// overlap with the parent stream. Exposed so content descriptors can
// name a child stream without instantiating it.
func (r *RNG) ForkSeed(label int64) int64 {
	z := uint64(r.seed) + 0x9e3779b97f4a7c15*uint64(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Fork derives an independent child source on the same engine as the
// parent. On the PCG engine this is O(1); the legacy engine pays the
// full math/rand source initialisation.
func (r *RNG) Fork(label int64) *RNG {
	seed := r.ForkSeed(label)
	if r.pcg == nil {
		return NewLegacyRNG(seed)
	}
	if r.pcg.mask != 0 {
		return NewAntitheticRNG(seed)
	}
	return NewRNG(seed)
}

// Jitter returns a duration uniformly distributed in [base-spread/2,
// base+spread/2], never below zero. It models measurement noise such as
// scheduling delay in the test computer.
//
// On an antithetic stream the deviate is the exact reflection of what
// the plain twin draws (spread-1-x), so paired repetitions see
// mirrored noise. The reflection must be applied to the uniform
// deviate, not inherited from the complemented words: Int63n reduces
// v % n, and the complement of v maps to (M - x) mod n with
// M = (2^63-1) mod n — a reflection around a spread-dependent pivot
// whose correlation with x averages to zero over arbitrary spreads,
// which would silently void the variance reduction.
func (r *RNG) Jitter(base, spread int64) int64 {
	if spread <= 0 {
		return base
	}
	v := base - spread/2 + r.uniformPaired(spread)
	if v < 0 {
		v = 0
	}
	return v
}

// uniformPaired draws uniformly from [0, n) such that the antithetic
// stream yields exactly n-1-x when the plain stream yields x. On a
// plain or legacy stream it is Int63n. On an antithetic stream it
// replays math/rand's Int63n — same word consumption, including the
// rejection loop — on the un-complemented words, then reflects the
// accepted deviate, so the two streams stay step-aligned.
func (r *RNG) uniformPaired(n int64) int64 {
	if r.pcg == nil || r.pcg.mask == 0 {
		return r.Int63n(n)
	}
	if n&(n-1) == 0 {
		// Power-of-two masks already reflect bit-by-bit.
		return r.Int63n(n)
	}
	p := r.pcg
	max := int64(1<<63 - 1 - (1<<63)%uint64(n))
	v := int64(^p.Uint64() >> 1) // the plain twin's draw
	for v > max {
		v = int64(^p.Uint64() >> 1)
	}
	return n - 1 - v%n
}

// Perm returns a pseudo-random permutation of [0, n). On plain and
// legacy streams it is math/rand's Perm unchanged. On an antithetic
// stream it returns the REVERSE of the plain twin's permutation,
// consuming the same stream steps: complementing the raw words would
// just produce an unrelated permutation (the complement does not
// survive Fisher-Yates' modular index draws), whereas the reversal is
// the antithetic construction for discrete choices — a consumer that
// takes a k-prefix of the permutation (e.g. DNS answer rotation)
// receives the complementary end of the pool, so rare-outcome draws
// are negatively correlated across an antithetic pair.
func (r *RNG) Perm(n int) []int {
	if r.pcg == nil || r.pcg.mask == 0 {
		return r.Rand.Perm(n)
	}
	// Replay the plain twin: an unmasked view of the same PCG state,
	// advanced in lockstep so both streams stay aligned.
	plain := &pcg{state: r.pcg.state, inc: r.pcg.inc}
	p := rand.New(plain).Perm(n)
	r.pcg.state = plain.state
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bytes fills and returns a new buffer of n random bytes.
func (r *RNG) Bytes(n int) []byte {
	b := make([]byte, n)
	r.Fill(b)
	return b
}

// Fill fills dst with random bytes. On the PCG engine this is a plain
// word-copy loop — eight bytes per generator step, no per-byte state —
// which is what makes large file materialisation cheap enough to run
// lazily at plan time.
func (r *RNG) Fill(dst []byte) {
	if r.pcg == nil {
		r.Read(dst)
		return
	}
	p := r.pcg
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], p.Uint64())
	}
	if i < len(dst) {
		v := p.Uint64()
		for ; i < len(dst); i++ {
			dst[i] = byte(v)
			v >>= 8
		}
	}
}

// pcg is a PCG-RXS-M-XS-64 generator: a 64-bit LCG state stepped once
// per output, with an output permutation (random xorshift, multiply,
// xorshift) that makes the stream statistically sound. One multiply
// and a handful of shifts per 64 output bits — against math/rand's
// 607-word source state and array-walk per call — is what turns file
// materialisation into a memory-bandwidth problem.
type pcg struct {
	state uint64
	inc   uint64 // stream selector; must be odd
	mask  uint64 // xor applied to every output: 0, or ^0 for antithetic
}

// newPCG builds a generator from a seed via two SplitMix64 rounds: one
// for the initial state, one for the stream increment. This is the
// whole cost of RNG.Fork on the PCG engine.
func newPCG(seed int64) *pcg {
	s0 := splitmix64(uint64(seed))
	s1 := splitmix64(s0)
	return &pcg{state: s0, inc: s1 | 1}
}

// splitmix64 is the SplitMix64 finalizer (Steele et al.), the standard
// seed-expansion hash for PCG/xoshiro-family generators.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 steps the LCG and permutes the previous state into an output.
func (p *pcg) Uint64() uint64 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	word := ((old >> ((old >> 59) + 5)) ^ old) * 12605985483714917081
	return ((word >> 43) ^ word) ^ p.mask
}

// Int63 makes pcg a rand.Source.
func (p *pcg) Int63() int64 { return int64(p.Uint64() >> 1) }

// Seed makes pcg a full rand.Source; math/rand never calls it outside
// rand.Rand.Seed, which this package does not use.
func (p *pcg) Seed(seed int64) { *p = *newPCG(seed) }
