package sim

import "math/rand"

// RNG is a deterministic random source for the simulation. It wraps
// math/rand with a fixed seed so that a given experiment configuration
// reproduces identical file contents, jitter and DNS shuffles.
//
// Repetitions of an experiment derive child RNGs via Fork, which mixes
// the repetition index into the seed stream: each repetition sees
// different randomness, but the whole campaign is still a pure function
// of the top-level seed.
type RNG struct {
	*rand.Rand
	seed int64
}

// NewRNG returns a deterministic source for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this source was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Fork derives an independent child source. The derivation is a simple
// SplitMix-style hash of (parent seed, label) so children do not overlap
// with the parent stream.
func (r *RNG) Fork(label int64) *RNG {
	z := uint64(r.seed) + 0x9e3779b97f4a7c15*uint64(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Jitter returns a duration uniformly distributed in [base-spread/2,
// base+spread/2], never below zero. It models measurement noise such as
// scheduling delay in the test computer.
func (r *RNG) Jitter(base, spread int64) int64 {
	if spread <= 0 {
		return base
	}
	v := base - spread/2 + r.Int63n(spread)
	if v < 0 {
		v = 0
	}
	return v
}

// Bytes fills and returns a new buffer of n random bytes.
func (r *RNG) Bytes(n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}
