// Package sim provides the discrete virtual-time kernel used by every
// other simulation package in this repository.
//
// All network activity in the reproduction happens in virtual time: a
// benchmark campaign that would occupy a full day of wall-clock time in
// the paper (24 repetitions per experiment with 5-minute gaps) executes
// in milliseconds. The kernel offers three primitives:
//
//   - Clock: a monotonically advancing virtual clock.
//   - Scheduler: a time-ordered event queue driven by the clock, used by
//     background processes such as the clients' idle pollers.
//   - RNG: a deterministic random source so that experiments are
//     reproducible bit-for-bit given a seed. Two engines share the
//     API: the default PCG engine (SplitMix64 seeding, O(1) Fork,
//     word-copy Bytes/Fill) and the legacy math/rand engine kept
//     behind NewLegacyRNG as the reference for equivalence tests.
package sim

import (
	"fmt"
	"time"
)

// Epoch is the virtual origin of time. Its concrete value is arbitrary;
// it only anchors human-readable timestamps in reports.
var Epoch = time.Date(2013, time.October, 23, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock. The zero value is ready to use and reads
// Epoch. Clock is not safe for concurrent use; the simulation is
// single-threaded by design (determinism matters more than parallelism
// for a measurement reproduction).
type Clock struct {
	now time.Duration // offset from Epoch
}

// NewClock returns a clock positioned at Epoch.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual instant.
func (c *Clock) Now() time.Time { return Epoch.Add(c.now) }

// Since returns the elapsed virtual time from t to now.
func (c *Clock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Elapsed returns the total virtual time elapsed since Epoch.
func (c *Clock) Elapsed() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative d panics: virtual time
// never flows backwards, and a negative advance always indicates a
// timeline-accounting bug in a caller.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to instant t. If t is in the past
// the clock is left unchanged (it never rewinds).
func (c *Clock) AdvanceTo(t time.Time) {
	if off := t.Sub(Epoch); off > c.now {
		c.now = off
	}
}
