package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. The callback receives the scheduler so
// it can re-arm itself (the idiom used by periodic pollers).
type Event struct {
	At time.Time
	Fn func(*Scheduler)

	index int // heap bookkeeping
	seq   int // FIFO tiebreak for events at the same instant
}

// Scheduler is a time-ordered event queue bound to a Clock. Running the
// scheduler advances the clock to each event's instant in order. It is
// the backbone of every "background process" in the simulation, e.g.
// keep-alive polling while a client is idle.
type Scheduler struct {
	Clock *Clock
	queue eventQueue
	seq   int
}

// NewScheduler returns a scheduler driving the given clock.
func NewScheduler(c *Clock) *Scheduler {
	return &Scheduler{Clock: c}
}

// At schedules fn to run at instant t. Events scheduled for an instant
// earlier than the current clock run as soon as the scheduler is next
// stepped, at the current clock time (time never rewinds).
func (s *Scheduler) At(t time.Time, fn func(*Scheduler)) {
	s.seq++
	heap.Push(&s.queue, &Event{At: t, Fn: fn, seq: s.seq})
}

// After schedules fn to run d after the current clock instant.
func (s *Scheduler) After(d time.Duration, fn func(*Scheduler)) {
	s.At(s.Clock.Now().Add(d), fn)
}

// Every schedules fn to run periodically with the given interval,
// starting one interval from now, until the scheduler stops being run
// or until fn returns false.
func (s *Scheduler) Every(interval time.Duration, fn func(*Scheduler) bool) {
	var tick func(*Scheduler)
	tick = func(sch *Scheduler) {
		if fn(sch) {
			sch.After(interval, tick)
		}
	}
	s.After(interval, tick)
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Step runs the single earliest event, advancing the clock to its
// instant. It reports whether an event was run.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*Event)
	s.Clock.AdvanceTo(ev.At)
	ev.Fn(s)
	return true
}

// RunUntil runs all events with instant <= t in order, then advances the
// clock to exactly t. Events scheduled beyond t remain queued.
func (s *Scheduler) RunUntil(t time.Time) {
	for s.queue.Len() > 0 && !s.queue[0].At.After(t) {
		s.Step()
	}
	s.Clock.AdvanceTo(t)
}

// Drain runs every queued event, including events queued by the events
// themselves, until the queue is empty. Periodic events scheduled with
// Every never terminate; use RunUntil for those.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}

// eventQueue implements heap.Interface ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].At.Equal(q[j].At) {
		return q[i].At.Before(q[j].At)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
