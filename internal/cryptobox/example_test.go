package cryptobox_test

import (
	"bytes"
	"fmt"

	"repro/internal/cryptobox"
)

// Example demonstrates the convergence property that keeps Wuala's
// encryption compatible with deduplication: equal plaintexts produce
// equal ciphertexts, without the provider ever seeing content.
func Example() {
	a, _ := cryptobox.Encrypt([]byte("same content"))
	b, _ := cryptobox.Encrypt([]byte("same content"))
	c, _ := cryptobox.Encrypt([]byte("other content"))

	fmt.Println("identical plaintexts converge:", bytes.Equal(a, b))
	fmt.Println("different plaintexts diverge: ", !bytes.Equal(a, c))

	ct, key := cryptobox.Encrypt([]byte("round trip"))
	fmt.Println("decrypts:", string(cryptobox.Decrypt(ct, key)))
	// Output:
	// identical plaintexts converge: true
	// different plaintexts diverge:  true
	// decrypts: round trip
}
