package cryptobox

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	rng := sim.NewRNG(1)
	plain := rng.Bytes(10_000)
	ct, key := Encrypt(plain)
	back := Decrypt(ct, key)
	if !bytes.Equal(back, plain) {
		t.Fatal("decrypt(encrypt(p)) != p")
	}
}

func TestConvergence(t *testing.T) {
	// The Wuala property: identical plaintexts yield identical
	// ciphertexts, so server-side dedup still works (Sect. 4.3).
	rng := sim.NewRNG(2)
	plain := rng.Bytes(4096)
	copy1 := append([]byte{}, plain...)
	ct1, k1 := Encrypt(plain)
	ct2, k2 := Encrypt(copy1)
	if !bytes.Equal(ct1, ct2) || k1 != k2 {
		t.Fatal("identical plaintexts produced different ciphertexts")
	}
}

func TestDifferentPlaintextsDiverge(t *testing.T) {
	ct1, _ := Encrypt([]byte("content A"))
	ct2, _ := Encrypt([]byte("content B"))
	if bytes.Equal(ct1, ct2) {
		t.Fatal("different plaintexts produced equal ciphertexts")
	}
}

func TestCiphertextLengthPreserved(t *testing.T) {
	rng := sim.NewRNG(3)
	for _, n := range []int{0, 1, 15, 16, 17, 4096, 100_000} {
		plain := rng.Bytes(n)
		ct, _ := Encrypt(plain)
		if len(ct) != n {
			t.Fatalf("len(ct) = %d for %d-byte plaintext", len(ct), n)
		}
	}
}

func TestCiphertextLooksRandom(t *testing.T) {
	// Encrypting highly redundant data must not leave it
	// compressible — that is the whole point of encrypting before
	// upload and why Wuala cannot also compress.
	plain := bytes.Repeat([]byte("AAAA"), 4096)
	ct, _ := Encrypt(plain)
	counts := make(map[byte]int)
	for _, b := range ct {
		counts[b]++
	}
	if len(counts) < 200 {
		t.Fatalf("ciphertext uses only %d distinct byte values", len(counts))
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := sim.NewRNG(4)
	f := func(n uint16) bool {
		plain := rng.Bytes(int(n))
		ct, key := Encrypt(plain)
		return bytes.Equal(Decrypt(ct, key), plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWrongKeyFailsToDecrypt(t *testing.T) {
	plain := []byte("secret content")
	ct, key := Encrypt(plain)
	var wrong Key
	copy(wrong[:], key[:])
	wrong[0] ^= 0xFF
	if bytes.Equal(Decrypt(ct, wrong), plain) {
		t.Fatal("wrong key decrypted successfully")
	}
}
