// Package cryptobox implements convergent client-side encryption, the
// privacy layer Wuala applies before anything leaves the machine.
//
// The paper makes two observations this package must reproduce:
// encryption does not measurably hurt Wuala's synchronization
// performance, and it remains compatible with deduplication — "two
// identical files generate two identical encrypted versions"
// (Sect. 4.3). Convergent encryption achieves the latter by deriving
// the key from the plaintext itself: key = H(plaintext), so equal
// plaintexts encrypt to equal ciphertexts while remaining opaque to
// the provider.
package cryptobox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
)

// KeySize is the AES-256 key size.
const KeySize = 32

// Key is a convergent content key.
type Key [KeySize]byte

// DeriveKey computes the convergent key of a plaintext.
func DeriveKey(plain []byte) Key {
	return Key(sha256.Sum256(plain))
}

// Encrypt seals plain with its convergent key using AES-256-CTR. The
// IV is derived from the key, so the whole construction is a pure
// function of the plaintext: Encrypt(p) == Encrypt(q) iff p == q
// (up to hash collisions). Ciphertext length equals plaintext length;
// there is no MAC because the content address (hash of ciphertext)
// already provides integrity in the storage protocol.
func Encrypt(plain []byte) ([]byte, Key) {
	return EncryptInto(nil, plain)
}

// EncryptInto is Encrypt writing the ciphertext into dst (grown as
// needed), letting a caller that encrypts chunk after chunk reuse one
// scratch buffer instead of allocating per chunk.
func EncryptInto(dst, plain []byte) ([]byte, Key) {
	key := DeriveKey(plain)
	if cap(dst) < len(plain) {
		dst = make([]byte, len(plain))
	}
	dst = dst[:len(plain)]
	cryptInto(dst, plain, key)
	return dst, key
}

// Decrypt reverses Encrypt given the convergent key.
func Decrypt(ciphertext []byte, key Key) []byte {
	return crypt(ciphertext, key)
}

// crypt applies AES-CTR with the key-derived IV (CTR is an involution).
func crypt(data []byte, key Key) []byte {
	out := make([]byte, len(data))
	cryptInto(out, data, key)
	return out
}

func cryptInto(dst, data []byte, key Key) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) // fixed, valid key size
	}
	ivSrc := sha256.Sum256(key[:])
	cipher.NewCTR(block, ivSrc[:aes.BlockSize]).XORKeyStream(dst, data)
}
