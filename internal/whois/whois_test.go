package whois

import (
	"reflect"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Register(Record{Prefix: "54.231", Owner: "Amazon.com, Inc.", Netname: "AMAZON-AES"})
	r.Register(Record{Prefix: "108.160", Owner: "Dropbox, Inc.", Netname: "DROPBOX"})
	r.Register(Record{Prefix: "134.170", Owner: "Microsoft Corp", Netname: "MICROSOFT"})
	return r
}

func TestLookup(t *testing.T) {
	r := testRegistry()
	rec, ok := r.Lookup("54.231.12.7")
	if !ok || rec.Owner != "Amazon.com, Inc." {
		t.Fatalf("Lookup = %+v, %v", rec, ok)
	}
	if _, ok := r.Lookup("9.9.9.9"); ok {
		t.Fatal("unregistered space matched")
	}
	if _, ok := r.Lookup("not-an-ip"); ok {
		t.Fatal("malformed address matched")
	}
}

func TestRegisterReplace(t *testing.T) {
	r := testRegistry()
	r.Register(Record{Prefix: "54.231", Owner: "Someone Else"})
	rec, _ := r.Lookup("54.231.0.1")
	if rec.Owner != "Someone Else" {
		t.Fatal("Register did not replace")
	}
}

func TestOwners(t *testing.T) {
	r := testRegistry()
	got := r.Owners([]string{"54.231.0.1", "54.231.0.2", "108.160.5.5", "1.2.3.4"})
	want := []string{"Amazon.com, Inc.", "Dropbox, Inc.", "UNKNOWN"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Owners = %v, want %v", got, want)
	}
}
