// Package whois maps IP addresses to their registered owners.
//
// The paper identifies who operates each front-end by querying whois
// for every discovered address (Sect. 2.1); that is how it learns,
// e.g., that Dropbox storage lives on Amazon addresses while Dropbox
// control runs on Dropbox's own network. The registry here is keyed by
// /16-style prefixes, matching the allocation scheme in
// internal/netem's AddrPool.
package whois

import (
	"sort"
	"strings"
)

// Record describes one address block registration.
type Record struct {
	Prefix  string // first two dotted octets, e.g. "54.231"
	Owner   string // registered organisation, e.g. "Amazon.com, Inc."
	Netname string // registry network name, e.g. "AMAZON-AES"
}

// Registry is the simulated whois database.
type Registry struct {
	byPrefix map[string]Record
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byPrefix: make(map[string]Record)}
}

// Register adds or replaces a block registration.
func (r *Registry) Register(rec Record) {
	r.byPrefix[rec.Prefix] = rec
}

// Lookup returns the registration covering ip, matching on the /16
// prefix. ok is false for unregistered space.
func (r *Registry) Lookup(ip string) (Record, bool) {
	parts := strings.Split(ip, ".")
	if len(parts) != 4 {
		return Record{}, false
	}
	rec, ok := r.byPrefix[parts[0]+"."+parts[1]]
	return rec, ok
}

// Owners returns the distinct owners of the given addresses, sorted.
// Unregistered addresses are reported as "UNKNOWN".
func (r *Registry) Owners(ips []string) []string {
	seen := make(map[string]bool)
	for _, ip := range ips {
		if rec, ok := r.Lookup(ip); ok {
			seen[rec.Owner] = true
		} else {
			seen["UNKNOWN"] = true
		}
	}
	out := make([]string, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}
