package workload

import (
	"math"
	"time"

	"repro/internal/sim"
)

// ServiceDay is the horizon of one simulated service day: the period
// of the diurnal load pattern and the default duration of a fleet
// campaign.
const ServiceDay = 24 * time.Hour

// Arrival generates the session instants of one simulated user. Next
// returns the first arrival strictly after now, as an offset from the
// day start; callers stop once the returned instant leaves their
// horizon. Implementations draw only from the rng they are handed, so
// a user's whole arrival sequence is a pure function of its forked
// stream — replaying the same Fork yields the same day, bit for bit,
// at any worker count.
type Arrival interface {
	Next(rng *sim.RNG, now time.Duration) time.Duration
}

// Poisson is a memoryless arrival process: exponential interarrivals
// with mean ServiceDay/PerDay, the default model for steady background
// sync traffic.
type Poisson struct {
	PerDay float64 // mean sessions per ServiceDay; must be > 0
}

// Next returns now plus one exponential interarrival draw.
func (p Poisson) Next(rng *sim.RNG, now time.Duration) time.Duration {
	mean := float64(ServiceDay) / p.PerDay
	return now + time.Duration(rng.ExpFloat64()*mean)
}

// Gamma is a renewal process with gamma-distributed interarrivals of
// mean ServiceDay/PerDay and coefficient of variation CV: CV > 1
// models bursty users (sessions cluster, then long silences), CV < 1
// regular ones, CV == 1 degenerates to Poisson. CV <= 0 means a
// deterministic drumbeat at the mean interval.
type Gamma struct {
	PerDay float64 // mean sessions per ServiceDay; must be > 0
	CV     float64 // interarrival coefficient of variation
}

// Next returns now plus one gamma interarrival draw with shape 1/CV²
// and scale mean·CV².
func (g Gamma) Next(rng *sim.RNG, now time.Duration) time.Duration {
	mean := float64(ServiceDay) / g.PerDay
	if g.CV <= 0 {
		return now + time.Duration(mean)
	}
	shape := 1 / (g.CV * g.CV)
	return now + time.Duration(gammaVariate(rng, shape, mean/shape))
}

// Diurnal is a non-homogeneous Poisson process whose rate follows a
// 24-hour schedule: Weights[h] is the relative intensity of hour h,
// normalised so the schedule integrates to exactly PerDay arrivals
// per ServiceDay regardless of the weights' scale. The zero Weights
// value means a flat day (plain Poisson). Instants beyond one day
// wrap onto the same schedule, so the process is well-defined on any
// horizon.
type Diurnal struct {
	PerDay  float64     // mean sessions per ServiceDay; must be > 0
	Weights [24]float64 // relative hourly intensity; all-zero = flat
}

// weightSum returns the schedule's normalisation mass, treating the
// all-zero schedule as flat.
func (d Diurnal) weightSum() (sum, max float64, flat bool) {
	for _, w := range d.Weights {
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return 24, 1, true
	}
	return sum, max, false
}

// Rate returns the instantaneous arrival rate at instant t, in
// sessions per hour. Summing Rate over the 24 hour slots yields
// exactly PerDay — the property the fleet's daily-volume tests pin.
func (d Diurnal) Rate(t time.Duration) float64 {
	sum, _, flat := d.weightSum()
	if flat {
		return d.PerDay / 24
	}
	hour := int(t/time.Hour) % 24
	if hour < 0 {
		hour += 24
	}
	return d.PerDay * d.Weights[hour] / sum
}

// Next samples the next arrival by thinning (Lewis–Shedler): draw
// candidates from a homogeneous process at the schedule's peak rate
// and accept each with probability rate(t)/peak. Both the candidate
// and the acceptance draw come from rng, so the sequence replays
// exactly.
func (d Diurnal) Next(rng *sim.RNG, now time.Duration) time.Duration {
	sum, max, flat := d.weightSum()
	if flat {
		return Poisson{PerDay: d.PerDay}.Next(rng, now)
	}
	peakPerNs := d.PerDay * max / sum / float64(time.Hour)
	t := now
	for {
		t += time.Duration(rng.ExpFloat64() / peakPerNs)
		hour := int(t/time.Hour) % 24
		if rng.Float64()*max < d.Weights[hour] {
			return t
		}
	}
}

// OfficeHours is a reference diurnal shape: quiet nights, a morning
// ramp, a sustained working-hours plateau with a lunch dip, and an
// evening shoulder — the classic interactive-user load curve.
func OfficeHours() [24]float64 {
	return [24]float64{
		0.2, 0.15, 0.1, 0.1, 0.1, 0.2, // 00–05
		0.5, 1.0, 2.0, 3.0, 3.5, 3.0, // 06–11
		2.5, 3.0, 3.5, 3.5, 3.0, 2.5, // 12–17
		2.0, 1.5, 1.2, 1.0, 0.6, 0.3, // 18–23
	}
}

// gammaVariate draws one gamma(shape, scale) variate via
// Marsaglia–Tsang squeeze-rejection (for shape >= 1) with the
// standard U^{1/shape} boost for shape < 1. Every draw comes from
// rng, so sequences are deterministic per stream.
func gammaVariate(rng *sim.RNG, shape, scale float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaVariate(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}
