// Package workload generates the benchmark file sets and manages the
// virtual synchronized folder.
//
// The paper's testing application creates files "at run-time, e.g.,
// text files composed of random words from a dictionary, images with
// random pixels, or random binary files" (Sect. 2) and manipulates
// them in the folder watched by the client under test. The three
// compression benchmarks (Fig. 5) additionally need fake JPEGs: JPEG
// extension and header, text body.
package workload

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind selects a generated file type.
type Kind int

const (
	// Text is highly compressible dictionary text (Fig. 5a).
	Text Kind = iota
	// Binary is incompressible random bytes (Fig. 5b and the
	// performance benchmarks of Sect. 5).
	Binary
	// FakeJPEG has a JPEG header but a text body (Fig. 5c).
	FakeJPEG
	// PixelImage is an image of random pixels: a real bitmap
	// header followed by incompressible pixel data.
	PixelImage
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case Text:
		return "text"
	case Binary:
		return "binary"
	case FakeJPEG:
		return "fake-jpeg"
	case PixelImage:
		return "pixel-image"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Ext returns the file extension used for the kind.
func (k Kind) Ext() string {
	switch k {
	case Text:
		return ".txt"
	case Binary:
		return ".bin"
	case FakeJPEG, PixelImage:
		return ".jpg"
	default:
		return ".dat"
	}
}

// dictionary is the word list for Text files: enough variety for
// realistic DEFLATE ratios (~3-4x), repeated enough to compress well.
var dictionary = strings.Fields(`
the quick brown fox jumps over lazy dog measurement internet cloud
storage service benchmark synchronization capability architecture
performance overhead traffic protocol chunk bundle compress encode
delta duplicate encrypt folder client server control transfer upload
download experiment repetition workload latency bandwidth capacity
network packet connection session handshake virginia oregon ireland
dublin seattle singapore zurich nuremberg france twente torino europe
provider amazon google microsoft dropbox wuala drive paper figure
table result design choice implication user file batch size time
second minute metric startup completion ratio percent megabyte
kilobyte system methodology active passive vantage resolver airport
`)

// Generate produces size bytes of the given kind using rng. The
// output length is exactly size for every kind.
func Generate(rng *sim.RNG, kind Kind, size int64) []byte {
	if size < 0 {
		panic(fmt.Sprintf("workload: negative size %d", size))
	}
	switch kind {
	case Text:
		return genText(rng, size)
	case Binary:
		return rng.Bytes(int(size))
	case FakeJPEG:
		return genFakeJPEG(rng, size)
	case PixelImage:
		return genPixelImage(rng, size)
	default:
		panic(fmt.Sprintf("workload: unknown kind %d", int(kind)))
	}
}

func genText(rng *sim.RNG, size int64) []byte {
	var b strings.Builder
	b.Grow(int(size) + 16)
	col := 0
	for int64(b.Len()) < size {
		w := dictionary[rng.Intn(len(dictionary))]
		b.WriteString(w)
		col += len(w) + 1
		if col > 72 {
			b.WriteByte('\n')
			col = 0
		} else {
			b.WriteByte(' ')
		}
	}
	return []byte(b.String()[:size])
}

// jpegHeader is a minimal structurally plausible JPEG prefix: SOI,
// APP0/JFIF, and the start of a quantization table marker.
var jpegHeader = []byte{
	0xFF, 0xD8, // SOI
	0xFF, 0xE0, 0x00, 0x10, 'J', 'F', 'I', 'F', 0x00, // APP0/JFIF
	0x01, 0x01, 0x00, 0x00, 0x48, 0x00, 0x48, 0x00, 0x00,
	0xFF, 0xDB, 0x00, 0x43, 0x00, // DQT marker
}

func genFakeJPEG(rng *sim.RNG, size int64) []byte {
	if size <= int64(len(jpegHeader)) {
		return jpegHeader[:size]
	}
	out := make([]byte, 0, size)
	out = append(out, jpegHeader...)
	out = append(out, genText(rng, size-int64(len(jpegHeader)))...)
	return out
}

// bmpHeaderSize is the BITMAPFILEHEADER+BITMAPINFOHEADER size.
const bmpHeaderSize = 54

func genPixelImage(rng *sim.RNG, size int64) []byte {
	if size <= bmpHeaderSize {
		h := bmpHeader(0, 0)
		return h[:size]
	}
	pixels := size - bmpHeaderSize
	// Lay pixels out as a wide single-row 24-bit image.
	width := pixels / 3
	out := make([]byte, 0, size)
	out = append(out, bmpHeader(int(width), 1)...)
	out = append(out, rng.Bytes(int(pixels))...)
	return out
}

func bmpHeader(w, h int) []byte {
	hdr := make([]byte, bmpHeaderSize)
	hdr[0], hdr[1] = 'B', 'M'
	putU32 := func(off int, v uint32) {
		hdr[off] = byte(v)
		hdr[off+1] = byte(v >> 8)
		hdr[off+2] = byte(v >> 16)
		hdr[off+3] = byte(v >> 24)
	}
	putU32(2, uint32(bmpHeaderSize+w*h*3)) // file size
	putU32(10, bmpHeaderSize)              // pixel data offset
	putU32(14, 40)                         // info header size
	putU32(18, uint32(w))
	putU32(22, uint32(h))
	hdr[26] = 1  // planes
	hdr[28] = 24 // bpp
	return hdr
}
