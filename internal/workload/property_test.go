package workload

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/sim"
)

// engines enumerates both content engines: the default PCG pipeline
// and the legacy math/rand reference.
var engines = []struct {
	name string
	rng  func(seed int64) *sim.RNG
}{
	{"pcg", sim.NewRNG},
	{"legacy", sim.NewLegacyRNG},
}

// boundarySizes returns the exact-output-size boundary cases for a
// kind: 0, 1, and the header size ±1 (deduplicated, non-negative).
func boundarySizes(k Kind) []int64 {
	h := k.HeaderSize()
	cand := []int64{0, 1, h - 1, h, h + 1, 2 * h, 100, 4096, 100_001}
	seen := map[int64]bool{}
	var out []int64
	for _, s := range cand {
		if s >= 0 && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// TestGenerateExactSizeAllKindsBoundaries pins the size contract for
// all four kinds at the boundary sizes (0, 1, header-size, header±1)
// on both engines: output length is exactly the requested size, with
// no header truncation or pixel-rounding slack.
func TestGenerateExactSizeAllKindsBoundaries(t *testing.T) {
	for _, eng := range engines {
		for _, kind := range Kinds {
			for _, size := range boundarySizes(kind) {
				data := Generate(eng.rng(int64(kind)*1000+size), kind, size)
				if int64(len(data)) != size {
					t.Errorf("%s/%v size %d produced %d bytes", eng.name, kind, size, len(data))
				}
			}
		}
	}
}

// TestDescriptorMatchesGenerate pins the descriptor as a faithful
// recipe: materialising Describe(rng, kind, size) yields exactly the
// bytes Generate would have produced from the same fresh rng, on both
// engines, whether materialised whole or via AppendTo into a reused
// buffer.
func TestDescriptorMatchesGenerate(t *testing.T) {
	for _, eng := range engines {
		for _, kind := range Kinds {
			for _, size := range []int64{0, 1, 1000, 70_000} {
				seed := int64(kind)*31 + size
				want := Generate(eng.rng(seed), kind, size)
				d := Describe(eng.rng(seed), kind, size)
				if got := d.Bytes(); !bytes.Equal(got, want) {
					t.Fatalf("%s/%v: descriptor bytes differ from Generate", eng.name, kind)
				}
				buf := GetBuffer(size)
				got := d.AppendTo(buf)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s/%v: pooled materialisation differs", eng.name, kind)
				}
				PutBuffer(got)
			}
		}
	}
}

// TestDescriptorDeterministicAcrossForksAndWorkers pins descriptor
// determinism: the same (kind, seed, size) materialises identically no
// matter which fork created it or how many goroutines materialise it
// concurrently — the property that makes campaign results independent
// of worker count.
func TestDescriptorDeterministicAcrossForksAndWorkers(t *testing.T) {
	parent := sim.NewRNG(77)
	d1 := Describe(parent.Fork(3), Binary, 50_000)
	d2 := Describe(sim.NewRNG(77).Fork(3), Binary, 50_000)
	if d1 != d2 {
		t.Fatal("forked descriptors differ across identical parents")
	}
	want := d1.Bytes()

	const workers = 8
	results := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := GetBuffer(d1.Size)
			out := d1.AppendTo(buf)
			results[w] = append([]byte(nil), out...)
			PutBuffer(out)
		}(w)
	}
	wg.Wait()
	for w, got := range results {
		if !bytes.Equal(got, want) {
			t.Fatalf("worker %d materialised different bytes", w)
		}
	}
}

// TestPooledBufferReuseIsSafe hammers the materialisation pool from
// many goroutines (run under -race in CI): planner-style usage — get,
// materialise, read, put — must never let one goroutine's content
// bleed into another's.
func TestPooledBufferReuseIsSafe(t *testing.T) {
	descs := []Descriptor{
		Describe(sim.NewRNG(1), Binary, 10_000),
		Describe(sim.NewRNG(2), Text, 20_000),
		Describe(sim.NewRNG(3), FakeJPEG, 15_000),
		Describe(sim.NewRNG(4), PixelImage, 12_345),
	}
	refs := make([][]byte, len(descs))
	for i, d := range descs {
		refs[i] = d.Bytes()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := descs[(w+i)%len(descs)]
				buf := GetBuffer(d.Size)
				out := d.AppendTo(buf)
				if !bytes.Equal(out, refs[(w+i)%len(descs)]) {
					t.Errorf("pooled buffer produced corrupted content")
					PutBuffer(out)
					return
				}
				PutBuffer(out)
			}
		}(w)
	}
	wg.Wait()
}

// TestBMPHeaderFileSizeMatchesEmittedLength is the regression test for
// the BMP header bug: the file-size field used width*height*3, which
// under-reported by pixels%3 bytes whenever the pixel area was not
// divisible by 3. The field must equal the actual emitted length for
// every residue class.
func TestBMPHeaderFileSizeMatchesEmittedLength(t *testing.T) {
	for _, size := range []int64{
		bmpHeaderSize + 1, // pixels%3 == 1
		bmpHeaderSize + 2, // pixels%3 == 2
		bmpHeaderSize + 3, // pixels%3 == 0
		10_000,            // 9946 pixels: %3 == 1
		10_001, 10_002, 1 << 20,
	} {
		data := Generate(sim.NewRNG(size), PixelImage, size)
		if int64(len(data)) != size {
			t.Fatalf("size %d emitted %d bytes", size, len(data))
		}
		declared := int64(binary.LittleEndian.Uint32(data[2:6]))
		if declared != size {
			t.Errorf("size %d: BMP header declares %d bytes (off by %d)",
				size, declared, size-declared)
		}
	}
}

// TestLegacyVsPCGStructure pins what the engine swap preserves: both
// engines emit exactly the requested size for every kind, text remains
// dictionary prose, headers remain intact — while the byte streams
// themselves differ (if they did not, the fast engine would not need a
// golden refresh).
func TestLegacyVsPCGStructure(t *testing.T) {
	for _, kind := range Kinds {
		size := int64(50_000)
		pcg := Generate(sim.NewRNG(5), kind, size)
		leg := Generate(sim.NewLegacyRNG(5), kind, size)
		if int64(len(pcg)) != size || int64(len(leg)) != size {
			t.Fatalf("%v: engine changed the size contract", kind)
		}
		if h := kind.HeaderSize(); h > 0 && !bytes.Equal(pcg[:h], leg[:h]) {
			t.Fatalf("%v: fixed header differs between engines", kind)
		}
		if bytes.Equal(pcg, leg) {
			t.Fatalf("%v: engines produced identical streams", kind)
		}
	}
}
