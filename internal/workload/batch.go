package workload

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Batch describes one upload set: Count files of Size bytes each, of
// the given Kind. The paper's headline workloads are 1x100kB, 1x1MB,
// 10x100kB and 100x10kB (Sect. 5); the bundling test uses four sets
// with identical total volume split into 1, 10, 100 and 1000 files
// (Sect. 4.2).
type Batch struct {
	Count int
	Size  int64
	Kind  Kind
}

// Total returns the batch's content volume.
func (b Batch) Total() int64 { return int64(b.Count) * b.Size }

// String formats the batch like the paper's axis labels ("100x10kB").
func (b Batch) String() string {
	return fmt.Sprintf("%dx%s", b.Count, SizeLabel(b.Size))
}

// SizeLabel renders a byte count the way the paper labels workloads
// (10kB, 100kB, 1MB).
func SizeLabel(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n/(1<<20))
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dMB", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dkB", n/1000)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Materialize creates the batch's files in the folder at time `at`,
// naming them set<i>/file<i>.<ext>. It returns the created paths.
// Despite the historical name, nothing is generated here: each file is
// a lazy content descriptor over its own forked stream, and bytes come
// into existence only if a consumer needs them.
func (b Batch) Materialize(f *Folder, rng *sim.RNG, at time.Time, prefix string) []string {
	paths := make([]string, 0, b.Count)
	for i := 0; i < b.Count; i++ {
		path := fmt.Sprintf("%s/file%04d%s", prefix, i, b.Kind.Ext())
		f.CreateLazy(at, path, Describe(rng.Fork(int64(i)), b.Kind, b.Size))
		paths = append(paths, path)
	}
	return paths
}

// StandardBenchmarks returns the four workloads of Fig. 6 for the
// given file kind.
func StandardBenchmarks(kind Kind) []Batch {
	return []Batch{
		{Count: 1, Size: 100_000, Kind: kind},
		{Count: 1, Size: 1 << 20, Kind: kind},
		{Count: 10, Size: 100_000, Kind: kind},
		{Count: 100, Size: 10_000, Kind: kind},
	}
}

// BundlingSets returns the Sect. 4.2 upload sets: the same total
// volume split into 1, 10, 100 and 1000 files.
func BundlingSets(total int64, kind Kind) []Batch {
	return []Batch{
		{Count: 1, Size: total, Kind: kind},
		{Count: 10, Size: total / 10, Kind: kind},
		{Count: 100, Size: total / 100, Kind: kind},
		{Count: 1000, Size: total / 1000, Kind: kind},
	}
}
