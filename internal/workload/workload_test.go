package workload

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sim"
)

var t0 = time.Date(2013, 10, 23, 0, 0, 0, 0, time.UTC)

func at(s int) time.Time { return t0.Add(time.Duration(s) * time.Second) }

func TestGenerateSizesExact(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, kind := range []Kind{Text, Binary, FakeJPEG, PixelImage} {
		for _, size := range []int64{0, 1, 10, 1000, 100_000} {
			data := Generate(rng.Fork(int64(kind)), kind, size)
			if int64(len(data)) != size {
				t.Fatalf("%v size %d produced %d bytes", kind, size, len(data))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(sim.NewRNG(42), Text, 10_000)
	b := Generate(sim.NewRNG(42), Text, 10_000)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different content")
	}
}

func TestTextIsDictionaryWords(t *testing.T) {
	data := Generate(sim.NewRNG(1), Text, 5000)
	for _, w := range bytes.Fields(data) {
		found := false
		for _, dw := range dictionary {
			if string(w) == dw {
				found = true
				break
			}
		}
		if !found {
			// The final word may be truncated by the exact-size cut.
			if !bytes.HasSuffix(data, w) {
				t.Fatalf("non-dictionary word %q", w)
			}
		}
	}
}

func TestFakeJPEGHeader(t *testing.T) {
	data := Generate(sim.NewRNG(1), FakeJPEG, 10_000)
	if data[0] != 0xFF || data[1] != 0xD8 || data[2] != 0xFF {
		t.Fatal("fake JPEG missing SOI marker")
	}
	// Body is text, not JPEG entropy-coded data.
	if !bytes.Contains(data, []byte("the")) && !bytes.Contains(data, []byte("cloud")) {
		t.Fatal("fake JPEG body does not look like text")
	}
}

func TestPixelImageHeader(t *testing.T) {
	data := Generate(sim.NewRNG(1), PixelImage, 10_000)
	if data[0] != 'B' || data[1] != 'M' {
		t.Fatal("pixel image missing BM magic")
	}
}

func TestKindStringsAndExt(t *testing.T) {
	if Text.String() != "text" || Binary.Ext() != ".bin" || FakeJPEG.Ext() != ".jpg" {
		t.Fatal("kind metadata")
	}
}

func TestFolderCreateWriteJournal(t *testing.T) {
	f := NewFolder()
	f.Create(at(0), "a.bin", []byte("v1"))
	f.Write(at(1), "a.bin", []byte("v2"))
	file, ok := f.Get("a.bin")
	if !ok || string(file.Bytes()) != "v2" || !file.ModTime.Equal(at(1)) {
		t.Fatalf("file state: %+v", file)
	}
	j := f.Journal()
	if len(j) != 2 || j[0].Type != Created || j[1].Type != Modified {
		t.Fatalf("journal: %+v", j)
	}
}

func TestFolderAppendAndInsert(t *testing.T) {
	f := NewFolder()
	f.Create(at(0), "a.bin", []byte("hello"))
	f.Append(at(1), "a.bin", []byte(" world"))
	file, _ := f.Get("a.bin")
	if string(file.Bytes()) != "hello world" {
		t.Fatalf("append: %q", file.Bytes())
	}
	f.InsertAt(at(2), "a.bin", 5, []byte(","))
	file, _ = f.Get("a.bin")
	if string(file.Bytes()) != "hello, world" {
		t.Fatalf("insert: %q", file.Bytes())
	}
	// Boundary offsets.
	f.InsertAt(at(3), "a.bin", 0, []byte(">"))
	f.InsertAt(at(4), "a.bin", int64(len(">hello, world")), []byte("<"))
	file, _ = f.Get("a.bin")
	if string(file.Bytes()) != ">hello, world<" {
		t.Fatalf("boundary insert: %q", file.Bytes())
	}
}

func TestFolderCopySharesImmutableContent(t *testing.T) {
	f := NewFolder()
	f.Create(at(0), "orig", []byte("payload"))
	f.Copy(at(1), "orig", "copy")
	c, _ := f.Get("copy")
	o, _ := f.Get("orig")
	if !bytes.Equal(c.Bytes(), o.Bytes()) {
		t.Fatal("copy content differs from source")
	}
	// A copied lazy file stays lazy: descriptors are immutable, so the
	// copy shares the recipe and keeps advertising content identity.
	f.CreateLazy(at(2), "lazy", Describe(sim.NewRNG(9), Binary, 1000))
	f.Copy(at(3), "lazy", "lazy-copy")
	lc, _ := f.Get("lazy-copy")
	if !lc.Content().Lazy() {
		t.Fatal("copying a lazy file materialised it")
	}
	ld, _ := lc.Content().Descriptor()
	sd, _ := mustFile(f, "lazy").Content().Descriptor()
	if ld != sd {
		t.Fatal("copied descriptor differs")
	}
	if !bytes.Equal(lc.Bytes(), mustFile(f, "lazy").Bytes()) {
		t.Fatal("lazy copy materialises differently")
	}
}

func mustFile(f *Folder, path string) *File {
	file, ok := f.Get(path)
	if !ok {
		panic("missing " + path)
	}
	return file
}

func TestFolderDeleteRestore(t *testing.T) {
	// The dedup test's step iv: content must come back identical.
	f := NewFolder()
	payload := []byte("original payload")
	f.Create(at(0), "a", payload)
	f.Delete(at(1), "a")
	if _, ok := f.Get("a"); ok {
		t.Fatal("file still present after delete")
	}
	f.Restore(at(2), "a")
	file, ok := f.Get("a")
	if !ok || !bytes.Equal(file.Bytes(), payload) {
		t.Fatal("restore did not bring identical content back")
	}
	types := []ChangeType{Created, Deleted, Created}
	for i, c := range f.Journal() {
		if c.Type != types[i] {
			t.Fatalf("journal[%d] = %v", i, c.Type)
		}
	}
}

func TestFolderPanicsOnMisuse(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Folder)
	}{
		{"create-dup", func(f *Folder) { f.Create(at(0), "x", nil); f.Create(at(1), "x", nil) }},
		{"write-missing", func(f *Folder) { f.Write(at(0), "nope", nil) }},
		{"restore-never-deleted", func(f *Folder) { f.Restore(at(0), "nope") }},
		{"insert-out-of-range", func(f *Folder) { f.Create(at(0), "x", []byte("ab")); f.InsertAt(at(1), "x", 5, nil) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn(NewFolder())
		}()
	}
}

func TestChangesSince(t *testing.T) {
	f := NewFolder()
	f.Create(at(0), "a", nil)
	f.Create(at(10), "b", nil)
	f.Create(at(20), "c", nil)
	got := f.ChangesSince(at(10))
	if len(got) != 1 || got[0].Path != "c" {
		t.Fatalf("ChangesSince = %+v", got)
	}
	if len(f.ChangesSince(at(-1))) != 3 {
		t.Fatal("ChangesSince before all events")
	}
}

func TestBatchMaterialize(t *testing.T) {
	f := NewFolder()
	b := Batch{Count: 10, Size: 10_000, Kind: Binary}
	paths := b.Materialize(f, sim.NewRNG(1), at(0), "set1")
	if len(paths) != 10 || f.Len() != 10 {
		t.Fatalf("materialized %d files", f.Len())
	}
	if f.TotalBytes() != 100_000 {
		t.Fatalf("TotalBytes = %d", f.TotalBytes())
	}
	// Files must differ from one another (independent RNG forks).
	a, _ := f.Get(paths[0])
	c, _ := f.Get(paths[1])
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("batch files are identical")
	}
}

func TestBatchLabels(t *testing.T) {
	cases := []struct {
		b    Batch
		want string
	}{
		{Batch{Count: 1, Size: 100_000, Kind: Binary}, "1x100kB"},
		{Batch{Count: 1, Size: 1 << 20, Kind: Binary}, "1x1MB"},
		{Batch{Count: 100, Size: 10_000, Kind: Binary}, "100x10kB"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("label = %q, want %q", got, c.want)
		}
	}
}

func TestStandardBenchmarksMatchPaper(t *testing.T) {
	bs := StandardBenchmarks(Binary)
	want := []string{"1x100kB", "1x1MB", "10x100kB", "100x10kB"}
	if len(bs) != len(want) {
		t.Fatalf("len = %d", len(bs))
	}
	for i, b := range bs {
		if b.String() != want[i] {
			t.Errorf("benchmark %d = %s, want %s", i, b, want[i])
		}
	}
}

func TestBundlingSetsSameTotal(t *testing.T) {
	sets := BundlingSets(1_000_000, Binary)
	for _, s := range sets {
		if s.Total() != 1_000_000 {
			t.Fatalf("set %s total = %d", s, s.Total())
		}
	}
	if sets[3].Count != 1000 {
		t.Fatalf("last set count = %d", sets[3].Count)
	}
}

func TestFolderRename(t *testing.T) {
	f := NewFolder()
	f.Create(at(0), "old/name.bin", []byte("payload"))
	f.Rename(at(1), "old/name.bin", "new/name.bin")
	if _, ok := f.Get("old/name.bin"); ok {
		t.Fatal("old path still present")
	}
	file, ok := f.Get("new/name.bin")
	if !ok || string(file.Bytes()) != "payload" {
		t.Fatal("content lost in rename")
	}
	// Journal shows delete+create, which is what the client sees.
	j := f.Journal()
	if len(j) != 3 || j[1].Type != Deleted || j[2].Type != Created {
		t.Fatalf("journal: %+v", j)
	}
	// Renaming over an existing file is a scripting bug.
	f.Create(at(2), "other.bin", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on rename collision")
		}
	}()
	f.Rename(at(3), "other.bin", "new/name.bin")
}
