package workload

import (
	"fmt"
	"sort"
	"time"
)

// ChangeType classifies a folder event as the sync client sees it.
type ChangeType int

const (
	// Created: a new file appeared.
	Created ChangeType = iota
	// Modified: an existing file's content changed.
	Modified
	// Deleted: a file was removed.
	Deleted
)

// String names the change type.
func (c ChangeType) String() string {
	switch c {
	case Created:
		return "created"
	case Modified:
		return "modified"
	case Deleted:
		return "deleted"
	default:
		return fmt.Sprintf("ChangeType(%d)", int(c))
	}
}

// Change is one observable folder event.
type Change struct {
	Time time.Time
	Path string
	Type ChangeType
}

// File is one file in the synchronized folder. Its content may be a
// lazy descriptor (generated benchmark files) or eager bytes (files
// edited by the workload script); consumers that only need the length
// use Size and never force materialisation.
type File struct {
	Path    string
	ModTime time.Time
	content Content
}

// Content returns the file's content handle.
func (f *File) Content() Content { return f.content }

// Size returns the file length without materialising lazy content.
func (f *File) Size() int64 { return f.content.Size() }

// Bytes returns the file content as a byte slice, materialising lazy
// descriptors. The returned slice must not be modified.
func (f *File) Bytes() []byte { return f.content.Bytes() }

// Folder is the virtual synchronized directory manipulated by the
// testing application and watched by the client under test. It keeps
// an append-only change journal (the equivalent of inotify events) and
// tombstones for deleted files so the paper's delete-and-restore
// deduplication test (Sect. 4.3 step iv) can bring content back.
type Folder struct {
	files   map[string]*File
	deleted map[string]Content // tombstones: last content of removed files
	journal []Change
}

// NewFolder returns an empty folder.
func NewFolder() *Folder {
	return &Folder{
		files:   make(map[string]*File),
		deleted: make(map[string]Content),
	}
}

// Create adds a new file with eager bytes. It panics if the path
// exists — the workload scripts are deterministic and a collision is a
// scripting bug.
func (f *Folder) Create(at time.Time, path string, data []byte) {
	f.CreateContent(at, path, BytesContent(data))
}

// CreateLazy adds a new file backed by a content descriptor; no bytes
// are generated until a consumer materialises them.
func (f *Folder) CreateLazy(at time.Time, path string, d Descriptor) {
	f.CreateContent(at, path, DescriptorContent(d))
}

// CreateContent adds a new file with the given content handle.
func (f *Folder) CreateContent(at time.Time, path string, c Content) {
	if _, ok := f.files[path]; ok {
		panic(fmt.Sprintf("workload: Create over existing path %q", path))
	}
	f.files[path] = &File{Path: path, content: c, ModTime: at}
	f.log(at, path, Created)
}

// Write replaces the content of an existing file ("the modified file
// replaces its old copy", Sect. 4.4).
func (f *Folder) Write(at time.Time, path string, data []byte) {
	file, ok := f.files[path]
	if !ok {
		panic(fmt.Sprintf("workload: Write to missing path %q", path))
	}
	file.content = BytesContent(data)
	file.ModTime = at
	f.log(at, path, Modified)
}

// Append adds data at the end of an existing file, materialising lazy
// content first — an edited file has concrete bytes by definition.
func (f *Folder) Append(at time.Time, path string, data []byte) {
	file := f.mustGet(path)
	buf := make([]byte, 0, file.Size()+int64(len(data)))
	buf = file.content.AppendTo(buf)
	buf = append(buf, data...)
	f.Write(at, path, buf)
}

// InsertAt inserts data at the given offset of an existing file,
// shifting the remainder — the "random position" delta-encoding case.
func (f *Folder) InsertAt(at time.Time, path string, offset int64, data []byte) {
	file := f.mustGet(path)
	if offset < 0 || offset > file.Size() {
		panic(fmt.Sprintf("workload: InsertAt offset %d outside %q (%d bytes)", offset, path, file.Size()))
	}
	old := file.Bytes()
	buf := make([]byte, 0, int64(len(old))+int64(len(data)))
	buf = append(buf, old[:offset]...)
	buf = append(buf, data...)
	buf = append(buf, old[offset:]...)
	f.Write(at, path, buf)
}

// Copy duplicates src to dst (same payload, different name — the
// deduplication test's replica step). Content handles are immutable,
// so the copy shares them: a lazy source stays lazy, and equal
// descriptors keep advertising their equality to cache layers.
func (f *Folder) Copy(at time.Time, src, dst string) {
	file := f.mustGet(src)
	f.CreateContent(at, dst, file.content)
}

// Rename moves a file to a new path, content unchanged. The sync
// client observes it as a delete plus a create; services with
// deduplication commit it as pure metadata, everyone else re-uploads
// the content.
func (f *Folder) Rename(at time.Time, from, to string) {
	file := f.mustGet(from)
	if _, exists := f.files[to]; exists {
		panic(fmt.Sprintf("workload: Rename target %q exists", to))
	}
	c := file.content
	f.deleted[from] = c
	delete(f.files, from)
	f.log(at, from, Deleted)
	f.files[to] = &File{Path: to, content: c, ModTime: at}
	f.log(at, to, Created)
}

// Delete removes a file, keeping a tombstone for Restore.
func (f *Folder) Delete(at time.Time, path string) {
	file := f.mustGet(path)
	f.deleted[path] = file.content
	delete(f.files, path)
	f.log(at, path, Deleted)
}

// Restore brings a previously deleted file back with its old content
// (the user "places the original file back").
func (f *Folder) Restore(at time.Time, path string) {
	c, ok := f.deleted[path]
	if !ok {
		panic(fmt.Sprintf("workload: Restore of never-deleted path %q", path))
	}
	delete(f.deleted, path)
	f.CreateContent(at, path, c)
}

// Get returns a file by path.
func (f *Folder) Get(path string) (*File, bool) {
	file, ok := f.files[path]
	return file, ok
}

// Paths returns the current file paths, sorted.
func (f *Folder) Paths() []string {
	out := make([]string, 0, len(f.files))
	for p := range f.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of files currently present.
func (f *Folder) Len() int { return len(f.files) }

// TotalBytes returns the summed size of all current files; lazy files
// contribute their descriptor size without materialising.
func (f *Folder) TotalBytes() int64 {
	var n int64
	for _, file := range f.files {
		n += file.Size()
	}
	return n
}

// Journal returns all changes recorded so far, in order.
func (f *Folder) Journal() []Change { return f.journal }

// ChangesSince returns the journal entries strictly after t.
func (f *Folder) ChangesSince(t time.Time) []Change {
	// The journal is time-ordered; find the first entry after t.
	i := sort.Search(len(f.journal), func(i int) bool {
		return f.journal[i].Time.After(t)
	})
	return f.journal[i:]
}

func (f *Folder) mustGet(path string) *File {
	file, ok := f.files[path]
	if !ok {
		panic(fmt.Sprintf("workload: missing path %q", path))
	}
	return file
}

func (f *Folder) log(at time.Time, path string, typ ChangeType) {
	if n := len(f.journal); n > 0 && at.Before(f.journal[n-1].Time) {
		panic("workload: change journal must be time-ordered")
	}
	f.journal = append(f.journal, Change{Time: at, Path: path, Type: typ})
}
