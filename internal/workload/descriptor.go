package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Descriptor is the complete recipe for one generated file's content:
// materialising (Kind, Seed, Size) on the given engine always yields
// the same bytes, across forks, worker counts and processes. Files
// created from descriptors stay lazy — the benchmark plans uploads,
// keys compression size caches and sizes transfers off the descriptor
// alone, and only materialises when a consumer genuinely needs bytes
// (content-defined chunking, hashing, DEFLATE on a cache miss).
type Descriptor struct {
	Kind Kind
	Seed int64
	Size int64

	// legacy materialises on the legacy math/rand engine — set when
	// the descriptor was derived from a legacy RNG, so the reference
	// engine round-trips through descriptors too.
	legacy bool
}

// Describe captures the descriptor for Generate(rng, kind, size). The
// rng must be freshly created or freshly forked: a descriptor names a
// whole child stream by its seed, so a source that has already been
// drawn from would materialise differently than Generate would.
func Describe(rng *sim.RNG, kind Kind, size int64) Descriptor {
	if size < 0 {
		panic(fmt.Sprintf("workload: negative size %d", size))
	}
	return Descriptor{Kind: kind, Seed: rng.Seed(), Size: size, legacy: rng.Legacy()}
}

// Legacy reports whether the descriptor materialises on the legacy
// math/rand engine.
func (d Descriptor) Legacy() bool { return d.legacy }

// rng returns a fresh generator positioned at the start of the
// descriptor's stream.
func (d Descriptor) rng() *sim.RNG {
	if d.legacy {
		return sim.NewLegacyRNG(d.Seed)
	}
	return sim.NewRNG(d.Seed)
}

// AppendTo appends the descriptor's exact Size bytes to dst and
// returns the extended slice. Pass a pooled buffer (GetBuffer) to
// materialise without allocating.
func (d Descriptor) AppendTo(dst []byte) []byte {
	return AppendContent(dst, d.rng(), d.Kind, d.Size)
}

// Bytes materialises the descriptor into a fresh buffer.
func (d Descriptor) Bytes() []byte {
	return d.AppendTo(make([]byte, 0, d.Size))
}

// String labels the descriptor for test failures.
func (d Descriptor) String() string {
	return fmt.Sprintf("%s(seed=%d,size=%d)", d.Kind, d.Seed, d.Size)
}

// Content is what a folder file holds: either eager bytes (files built
// or edited by the workload script) or a lazy Descriptor (generated
// benchmark files). The distinction is what lets capability-poor
// clients plan a whole upload without the content ever existing, and
// lets the compressor key its size cache on descriptor identity
// instead of hashing megabytes.
//
// Content values are immutable by convention: the byte slice behind an
// eager Content is never modified after creation, so Contents may be
// copied and shared freely (Folder.Copy, tombstones).
type Content struct {
	desc Descriptor
	data []byte
	lazy bool
}

// BytesContent wraps eager bytes. The caller must not modify b
// afterwards.
func BytesContent(b []byte) Content { return Content{data: b} }

// DescriptorContent wraps a lazy descriptor.
func DescriptorContent(d Descriptor) Content { return Content{desc: d, lazy: true} }

// Lazy reports whether the content is descriptor-backed and not yet
// materialised.
func (c Content) Lazy() bool { return c.lazy }

// Descriptor returns the backing descriptor of lazy content.
func (c Content) Descriptor() (Descriptor, bool) { return c.desc, c.lazy }

// Size returns the content length without materialising it.
func (c Content) Size() int64 {
	if c.lazy {
		return c.desc.Size
	}
	return int64(len(c.data))
}

// AppendTo appends the full content to dst and returns the extended
// slice — generating lazily or copying eagerly held bytes.
func (c Content) AppendTo(dst []byte) []byte {
	if c.lazy {
		return c.desc.AppendTo(dst)
	}
	return append(dst, c.data...)
}

// Bytes returns the content as a byte slice: the shared backing slice
// for eager content (do not modify), a freshly materialised buffer for
// lazy content. Hot paths that can reuse buffers should prefer
// AppendTo with a pooled buffer.
func (c Content) Bytes() []byte {
	if c.lazy {
		return c.desc.Bytes()
	}
	return c.data
}
