package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// interarrivals draws n successive gaps from one arrival process.
func interarrivals(a Arrival, rng *sim.RNG, n int) []float64 {
	gaps := make([]float64, n)
	var t time.Duration
	for i := range gaps {
		next := a.Next(rng, t)
		gaps[i] = float64(next - t)
		t = next
	}
	return gaps
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func TestPoissonInterarrivalMoments(t *testing.T) {
	const perDay = 8.0
	gaps := interarrivals(Poisson{PerDay: perDay}, sim.NewRNG(11), 60_000)
	mean, variance := meanVar(gaps)

	wantMean := float64(ServiceDay) / perDay
	if math.Abs(mean-wantMean)/wantMean > 0.02 {
		t.Fatalf("Poisson mean = %v, want %v ±2%%", time.Duration(mean), time.Duration(wantMean))
	}
	// Exponential: variance == mean².
	if r := variance / (wantMean * wantMean); r < 0.9 || r > 1.1 {
		t.Fatalf("Poisson variance/mean² = %.3f, want 1 ±10%%", r)
	}
}

func TestGammaInterarrivalMoments(t *testing.T) {
	for _, cv := range []float64{0.5, 1.0, 2.0} {
		const perDay = 6.0
		gaps := interarrivals(Gamma{PerDay: perDay, CV: cv}, sim.NewRNG(13), 60_000)
		mean, variance := meanVar(gaps)

		wantMean := float64(ServiceDay) / perDay
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Fatalf("CV=%v: gamma mean = %v, want %v ±3%%", cv, time.Duration(mean), time.Duration(wantMean))
		}
		gotCV := math.Sqrt(variance) / mean
		if math.Abs(gotCV-cv)/cv > 0.06 {
			t.Fatalf("CV=%v: sample CV = %.3f, want ±6%%", cv, gotCV)
		}
	}
}

func TestGammaDeterministicDrumbeat(t *testing.T) {
	g := Gamma{PerDay: 24, CV: 0}
	rng := sim.NewRNG(1)
	if got := g.Next(rng, 0); got != time.Hour {
		t.Fatalf("CV<=0 interarrival = %v, want exactly 1h", got)
	}
}

func TestDiurnalIntegratesToDailyVolume(t *testing.T) {
	// The schedule's rate, summed over the 24 hour slots, must equal
	// the configured volume exactly — however the weights are scaled.
	for _, d := range []Diurnal{
		{PerDay: 120, Weights: OfficeHours()},
		{PerDay: 3.5, Weights: [24]float64{5: 10, 6: 30, 7: 10}},
		{PerDay: 42}, // zero weights: flat day
	} {
		var got float64
		for h := 0; h < 24; h++ {
			got += d.Rate(time.Duration(h) * time.Hour)
		}
		if math.Abs(got-d.PerDay) > 1e-9*d.PerDay {
			t.Fatalf("integral of Rate = %v, want %v (weights %v)", got, d.PerDay, d.Weights)
		}
	}
}

func TestDiurnalEmpiricalVolumeAndShape(t *testing.T) {
	// Thinning must deliver the configured daily volume and follow
	// the hourly shape: count arrivals per hour over many replayed
	// days and compare against the schedule.
	d := Diurnal{PerDay: 50, Weights: OfficeHours()}
	const days = 400
	var total int
	var perHour [24]float64
	for day := 0; day < days; day++ {
		rng := sim.NewRNG(1000).Fork(int64(day))
		for t := d.Next(rng, 0); t < ServiceDay; t = d.Next(rng, t) {
			total++
			perHour[int(t/time.Hour)]++
		}
	}
	gotPerDay := float64(total) / days
	if math.Abs(gotPerDay-d.PerDay)/d.PerDay > 0.03 {
		t.Fatalf("empirical daily volume = %.2f, want %v ±3%%", gotPerDay, d.PerDay)
	}
	// Shape: each hour's share within 20% relative (peak hours carry
	// enough mass for a tight check; skip near-empty night hours).
	for h := 0; h < 24; h++ {
		want := d.Rate(time.Duration(h)*time.Hour) * days
		if want < 500 {
			continue
		}
		if math.Abs(perHour[h]-want)/want > 0.2 {
			t.Fatalf("hour %d: %.0f arrivals, want %.0f ±20%%", h, perHour[h], want)
		}
	}
	// And the peak hour must dominate the quietest by the configured
	// contrast (3.5 vs 0.1 — at least an order of magnitude here).
	if perHour[14] < 5*perHour[3] {
		t.Fatalf("diurnal contrast lost: hour 14 = %.0f, hour 3 = %.0f", perHour[14], perHour[3])
	}
}

func TestArrivalDeterministicAcrossForkReplays(t *testing.T) {
	// The same Fork label must replay the same arrival sequence for
	// every process type; a different label must diverge.
	procs := []Arrival{
		Poisson{PerDay: 10},
		Gamma{PerDay: 10, CV: 2},
		Diurnal{PerDay: 40, Weights: OfficeHours()},
	}
	base := sim.NewRNG(77)
	for _, p := range procs {
		a := interarrivals(p, base.Fork(5), 200)
		b := interarrivals(p, base.Fork(5), 200)
		c := interarrivals(p, base.Fork(6), 200)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%T: replayed Fork diverged at draw %d", p, i)
			}
		}
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%T: distinct Fork labels produced identical sequences", p)
		}
	}
}
