package cloud

import (
	"strings"
	"testing"

	"repro/internal/dnssim"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/whois"
)

func buildService(t *testing.T, name string) (*netem.Network, *dnssim.System, *whois.Registry, *Deployment) {
	t.Helper()
	n := netem.New(sim.NewClock(), sim.NewRNG(1))
	dns := dnssim.NewSystem(sim.NewRNG(2))
	reg := whois.NewRegistry()
	d := Build(n, dns, reg, SpecFor(name))
	return n, dns, reg, d
}

func TestSpecForAllServices(t *testing.T) {
	for _, s := range ServiceNames {
		spec := SpecFor(s)
		if spec.Service != s {
			t.Errorf("SpecFor(%q).Service = %q", s, spec.Service)
		}
		if len(spec.Sites) == 0 {
			t.Errorf("%s has no sites", s)
		}
	}
}

func TestSpecForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SpecFor("icloud")
}

func TestDropboxSplitControlStorage(t *testing.T) {
	_, dns, reg, d := buildService(t, "dropbox")
	ctl := d.HostsByRole(Control)
	sto := d.HostsByRole(Storage)
	if len(ctl) == 0 || len(sto) == 0 {
		t.Fatal("missing roles")
	}
	// Control is Dropbox-owned; storage is on Amazon (Sect. 3.2).
	rec, ok := reg.Lookup(ctl[0].Addr)
	if !ok || !strings.Contains(rec.Owner, "Dropbox") {
		t.Fatalf("control owner = %+v", rec)
	}
	rec, ok = reg.Lookup(sto[0].Addr)
	if !ok || !strings.Contains(rec.Owner, "Amazon") {
		t.Fatalf("storage owner = %+v", rec)
	}
	// Separate DNS names for control and storage.
	if d.DNSName(Control) == d.DNSName(Storage) {
		t.Fatal("control and storage share a DNS name")
	}
	if got := dns.Resolve(d.DNSName(Storage), geo.Coord{}); len(got) == 0 {
		t.Fatal("storage name does not resolve")
	}
	// Notification channel exists (plain-HTTP notifications).
	if len(d.HostsByRole(Notification)) == 0 {
		t.Fatal("dropbox needs notification servers")
	}
}

func TestWualaNoSplitAndEuropeanOnly(t *testing.T) {
	_, _, reg, d := buildService(t, "wuala")
	for _, h := range append(d.HostsByRole(Control), d.HostsByRole(Storage)...) {
		if h.Coord.Lon < -10 || h.Coord.Lon > 20 || h.Coord.Lat < 40 || h.Coord.Lat > 55 {
			t.Fatalf("host %s outside Europe: %v", h.Name, h.Coord)
		}
		rec, ok := reg.Lookup(h.Addr)
		if !ok || strings.Contains(rec.Owner, "Wuala") {
			t.Fatalf("Wuala host owned by %+v — paper: none owned by Wuala", rec)
		}
	}
	// Same sites serve both roles: every control addr is also a
	// storage addr (no split).
	sto := map[string]bool{}
	for _, h := range d.HostsByRole(Storage) {
		sto[h.Addr] = true
	}
	if len(d.HostsByRole(Control)) != len(d.HostsByRole(Storage)) {
		t.Fatal("control/storage fleets differ for Wuala")
	}
}

func TestGoogleDriveEdgeNetwork(t *testing.T) {
	_, dns, _, d := buildService(t, "googledrive")
	edges := d.HostsByRole(Edge)
	if len(edges) <= 100 {
		t.Fatalf("edge count = %d, paper found > 100 entry points", len(edges))
	}
	// DNS steering: a query from Europe and one from Asia see
	// different, nearby edges.
	eu := dns.Resolve(d.DNSName(Edge), geo.Coord{Lat: 52.22, Lon: 6.89})
	asia := dns.Resolve(d.DNSName(Edge), geo.Coord{Lat: 1.35, Lon: 103.82})
	if len(eu) == 0 || len(asia) == 0 || eu[0] == asia[0] {
		t.Fatalf("edge steering failed: eu=%v asia=%v", eu, asia)
	}
	// NearestEdge helper agrees with DNS.
	got := d.NearestEdge(geo.Coord{Lat: 52.22, Lon: 6.89})
	if got.Addr != eu[0] {
		t.Fatalf("NearestEdge %s != DNS answer %s", got.Addr, eu[0])
	}
}

func TestNearestEdgePanicsWithoutEdges(t *testing.T) {
	_, _, _, d := buildService(t, "dropbox")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.NearestEdge(geo.Coord{})
}

func TestCloudDriveThreeAWSRegions(t *testing.T) {
	_, _, reg, d := buildService(t, "clouddrive")
	prefixes := map[string]bool{}
	for _, h := range d.HostsByRole(Storage) {
		rec, ok := reg.Lookup(h.Addr)
		if !ok || !strings.Contains(rec.Owner, "Amazon") {
			t.Fatalf("storage not on Amazon: %+v", rec)
		}
		parts := strings.SplitN(h.Addr, ".", 3)
		prefixes[parts[0]+"."+parts[1]] = true
	}
	if len(prefixes) != 3 {
		t.Fatalf("storage prefixes = %d, want 3 AWS regions", len(prefixes))
	}
	// Control only in two of them (no Oregon control).
	ctlPrefixes := map[string]bool{}
	for _, h := range d.HostsByRole(Control) {
		parts := strings.SplitN(h.Addr, ".", 3)
		ctlPrefixes[parts[0]+"."+parts[1]] = true
	}
	if len(ctlPrefixes) != 2 {
		t.Fatalf("control prefixes = %d, want 2", len(ctlPrefixes))
	}
}

func TestSkyDriveLoginFanOut(t *testing.T) {
	_, _, _, d := buildService(t, "skydrive")
	if d.Spec.LoginServerCount != 13 {
		t.Fatalf("login servers = %d, paper observed 13", d.Spec.LoginServerCount)
	}
	if got := len(d.HostsByRole(Control)); got < 13 {
		t.Fatalf("control fleet = %d, must cover login fan-out", got)
	}
}

func TestPTRHintsFeedGeolocation(t *testing.T) {
	_, dns, _, d := buildService(t, "dropbox")
	h := d.HostsByRole(Storage)[0]
	ptr := dns.ReverseLookup(h.Addr)
	if ptr == "" {
		t.Fatal("no PTR record")
	}
	l, ok := geo.ExtractAirportCode(ptr)
	if !ok {
		t.Fatalf("PTR %q has no airport hint", ptr)
	}
	if geo.DistanceKm(l.Coord, h.Coord) > 300 {
		t.Fatalf("PTR hint %s is far from host", l.Code)
	}
}

func TestOpaquePTRForSkyDrive(t *testing.T) {
	_, dns, _, d := buildService(t, "skydrive")
	h := d.HostsByRole(Storage)[0]
	if _, ok := geo.ExtractAirportCode(dns.ReverseLookup(h.Addr)); ok {
		t.Fatal("SkyDrive PTR should be opaque (forces RTT/traceroute fallback)")
	}
}

func TestStoreSharedAcrossService(t *testing.T) {
	_, _, _, d := buildService(t, "dropbox")
	if d.Store == nil || d.Store.UniqueChunks() != 0 {
		t.Fatal("store must start empty")
	}
	d.Store.Put([]byte("chunk"))
	if d.Store.UniqueChunks() != 1 {
		t.Fatal("store broken")
	}
}

func TestRoleStrings(t *testing.T) {
	if Control.String() != "control" || Storage.String() != "storage" ||
		Notification.String() != "notify" || Edge.String() != "edge" {
		t.Fatal("role names feed DNS names; they must be stable")
	}
}
