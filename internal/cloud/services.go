package cloud

import (
	"fmt"
	"time"

	"repro/internal/geo"
)

// Data-center coordinates used by the specs. They match the locations
// the paper identifies in Sect. 3.2.
var (
	sanJose   = geo.Coord{Lat: 37.34, Lon: -121.89}
	nVirginia = geo.Coord{Lat: 39.04, Lon: -77.49} // Ashburn area
	sVirginia = geo.Coord{Lat: 36.67, Lon: -76.33} // Boydton/Chesapeake area
	seattle   = geo.Coord{Lat: 47.45, Lon: -122.31}
	oregon    = geo.Coord{Lat: 45.84, Lon: -119.70} // Boardman
	dublin    = geo.Coord{Lat: 53.34, Lon: -6.27}
	singapore = geo.Coord{Lat: 1.35, Lon: 103.82}
	nuremberg = geo.Coord{Lat: 49.45, Lon: 11.08}
	zurich    = geo.Coord{Lat: 47.38, Lon: 8.54}
	northFR   = geo.Coord{Lat: 50.69, Lon: 3.17} // Roubaix area
)

// ServiceNames lists the five studied services in the paper's order.
var ServiceNames = []string{"dropbox", "skydrive", "wuala", "googledrive", "clouddrive"}

// SpecFor returns the deployment spec of one of the five studied
// services. It panics on unknown names; use ServiceNames for the
// valid set.
func SpecFor(service string) Spec {
	switch service {
	case "dropbox":
		return DropboxSpec()
	case "skydrive":
		return SkyDriveSpec()
	case "wuala":
		return WualaSpec()
	case "googledrive":
		return GoogleDriveSpec()
	case "clouddrive":
		return CloudDriveSpec()
	default:
		panic(fmt.Sprintf("cloud: unknown service %q", service))
	}
}

// DropboxSpec: own control servers in the San Jose area, storage
// committed to Amazon in Northern Virginia, and the plain-HTTP
// notification service.
func DropboxSpec() Spec {
	return Spec{
		Service:          "dropbox",
		LoginServerCount: 2,
		Sites: []Site{
			{
				Name: "sanjose", City: "San Jose", Coord: sanJose,
				Roles: []Role{Control, Notification}, Servers: 4,
				Owner: "Dropbox, Inc.", Netname: "DROPBOX", Prefix: "108.160",
				RateBps: 50e6, ProcDelay: 35 * time.Millisecond, PTRHint: true,
			},
			{
				Name: "ashburn", City: "N. Virginia", Coord: nVirginia,
				Roles: []Role{Storage}, Servers: 8,
				Owner: "Amazon.com, Inc.", Netname: "AMAZON-AES", Prefix: "54.231",
				RateBps: 15e6, ProcDelay: 40 * time.Millisecond, PTRHint: true,
			},
		},
	}
}

// SkyDriveSpec: Microsoft data centers near Seattle (storage) and in
// Southern Virginia (storage and control), plus a control-only
// presence in Singapore. Login fans out over 13 Live servers.
func SkyDriveSpec() Spec {
	return Spec{
		Service:          "skydrive",
		LoginServerCount: 13,
		Sites: []Site{
			{
				Name: "seattle", City: "Seattle", Coord: seattle,
				Roles: []Role{Storage}, Servers: 8,
				Owner: "Microsoft Corp", Netname: "MICROSOFT", Prefix: "134.170",
				RateBps: 3e6, ProcDelay: 60 * time.Millisecond, PTRHint: false,
			},
			{
				Name: "boydton", City: "S. Virginia", Coord: sVirginia,
				Roles: []Role{Storage, Control}, Servers: 13,
				Owner: "Microsoft Corp", Netname: "MICROSOFT", Prefix: "131.253",
				RateBps: 3500e3, ProcDelay: 50 * time.Millisecond, PTRHint: false,
			},
			{
				Name: "singapore", City: "Singapore", Coord: singapore,
				Roles: []Role{Control}, Servers: 2,
				Owner: "Microsoft Corp", Netname: "MICROSOFT", Prefix: "111.221",
				RateBps: 8e6, ProcDelay: 50 * time.Millisecond, PTRHint: false,
			},
		},
	}
}

// WualaSpec: four European locations — two in the Nuremberg area, one
// in Zurich, one in Northern France — none owned by Wuala (hosting
// providers), and no control/storage split: the same hosts do both,
// which is why the paper falls back to flow sizes to classify Wuala
// traffic.
func WualaSpec() Spec {
	return Spec{
		Service:          "wuala",
		LoginServerCount: 2,
		Sites: []Site{
			{
				Name: "nuremberg1", City: "Nuremberg", Coord: nuremberg,
				Roles: []Role{Control, Storage}, Servers: 4,
				Owner: "Hetzner Online AG", Netname: "HETZNER", Prefix: "178.63",
				RateBps: 35e6, ProcDelay: 25 * time.Millisecond, PTRHint: true,
			},
			{
				Name: "nuremberg2", City: "Nuremberg", Coord: geo.Coord{Lat: 49.43, Lon: 11.15},
				Roles: []Role{Control, Storage}, Servers: 4,
				Owner: "Hetzner Online AG", Netname: "HETZNER", Prefix: "144.76",
				RateBps: 35e6, ProcDelay: 25 * time.Millisecond, PTRHint: true,
			},
			{
				Name: "zurich", City: "Zurich", Coord: zurich,
				Roles: []Role{Control, Storage}, Servers: 2,
				Owner: "Init7 AG", Netname: "INIT7", Prefix: "82.197",
				RateBps: 35e6, ProcDelay: 25 * time.Millisecond, PTRHint: true,
			},
			{
				Name: "roubaix", City: "N. France", Coord: northFR,
				Roles: []Role{Control, Storage}, Servers: 2,
				Owner: "OVH SAS", Netname: "OVH", Prefix: "94.23",
				RateBps: 35e6, ProcDelay: 25 * time.Millisecond, PTRHint: true,
			},
		},
	}
}

// GoogleDriveSpec: the client-facing fleet is a world-wide edge
// network (two nodes per airport city in the landmark DB — over 100
// entry points, matching Fig. 2); edges relay over the private
// backbone to central data centers, modelled as edge processing delay.
func GoogleDriveSpec() Spec {
	spec := Spec{
		Service:          "googledrive",
		EdgeNetwork:      true,
		LoginServerCount: 2,
	}
	for _, a := range geo.Airports() {
		spec.Sites = append(spec.Sites, Site{
			Name: "edge-" + lowerCode(a.Code), City: a.City, Coord: a.Coord,
			Roles: []Role{Edge}, Servers: 2,
			Owner: "Google Inc.", Netname: "GOOGLE", Prefix: "173.194",
			RateBps: 26e6, ProcDelay: 130 * time.Millisecond, PTRHint: true,
		})
	}
	// Central data centers behind the backbone (control+storage for
	// the discovery pipeline; client traffic terminates at edges).
	spec.Sites = append(spec.Sites,
		Site{
			Name: "dalles", City: "The Dalles, OR", Coord: geo.Coord{Lat: 45.59, Lon: -121.18},
			Roles: []Role{Control, Storage}, Servers: 4,
			Owner: "Google Inc.", Netname: "GOOGLE", Prefix: "74.125",
			RateBps: 26e6, ProcDelay: 30 * time.Millisecond, PTRHint: false,
		},
		Site{
			Name: "berkeley", City: "Berkeley County, SC", Coord: geo.Coord{Lat: 33.06, Lon: -80.04},
			Roles: []Role{Control, Storage}, Servers: 4,
			Owner: "Google Inc.", Netname: "GOOGLE", Prefix: "74.126",
			RateBps: 26e6, ProcDelay: 30 * time.Millisecond, PTRHint: false,
		},
	)
	return spec
}

// CloudDriveSpec: three AWS regions — Ireland and Northern Virginia
// for both storage and control, Oregon for storage only.
func CloudDriveSpec() Spec {
	return Spec{
		Service:          "clouddrive",
		LoginServerCount: 2,
		Sites: []Site{
			{
				Name: "dublin", City: "Ireland", Coord: dublin,
				Roles: []Role{Storage, Control}, Servers: 6,
				Owner: "Amazon.com, Inc.", Netname: "AMAZON-EU", Prefix: "54.239",
				RateBps: 15e6, ProcDelay: 55 * time.Millisecond, PTRHint: true,
			},
			{
				Name: "ashburn-cd", City: "N. Virginia", Coord: nVirginia,
				Roles: []Role{Storage, Control}, Servers: 6,
				Owner: "Amazon.com, Inc.", Netname: "AMAZON-AES", Prefix: "54.240",
				RateBps: 15e6, ProcDelay: 55 * time.Millisecond, PTRHint: true,
			},
			{
				Name: "boardman", City: "Oregon", Coord: oregon,
				Roles: []Role{Storage}, Servers: 4,
				Owner: "Amazon.com, Inc.", Netname: "AMAZON-PDX", Prefix: "54.245",
				RateBps: 15e6, ProcDelay: 55 * time.Millisecond, PTRHint: true,
			},
		},
	}
}

func lowerCode(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
