// Package cloud builds the server side of each personal cloud storage
// service: data centers, control/storage/notification front-ends, edge
// networks, DNS policies, whois registrations and the content-addressed
// chunk store.
//
// Deployments follow the paper's findings (Sect. 3.2):
//
//   - Dropbox: own control servers in the San Jose area; storage on
//     Amazon in Northern Virginia; a plain-HTTP notification service.
//   - Cloud Drive: three AWS regions — Ireland and Northern Virginia
//     (storage+control), Oregon (storage only).
//   - SkyDrive: Microsoft data centers near Seattle (storage) and in
//     Southern Virginia (storage+control), plus Singapore (control).
//   - Wuala: four European locations (two near Nuremberg, Zurich,
//     Northern France), none owned by Wuala; no control/storage split.
//   - Google Drive: client TCP terminates at the nearest of >100
//     world-wide edge nodes, which relay to central data centers over
//     the private backbone.
package cloud

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dedup"
	"repro/internal/dnssim"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/whois"
)

// Role classifies what a front-end host does. The paper identifies
// roles by DNS name and uses them to split control from storage
// traffic.
type Role int

const (
	// Control servers handle login, metadata and commit RPCs.
	Control Role = iota
	// Storage servers carry file content.
	Storage
	// Notification servers push change notifications (Dropbox's
	// plain-HTTP channel).
	Notification
	// Edge nodes terminate client TCP near the client (Google).
	Edge
)

// String names the role as used in DNS names and reports.
func (r Role) String() string {
	switch r {
	case Control:
		return "control"
	case Storage:
		return "storage"
	case Notification:
		return "notify"
	case Edge:
		return "edge"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Site is one data-center location in a service spec.
type Site struct {
	Name    string // short site label, e.g. "ashburn"
	City    string // for reports
	Coord   geo.Coord
	Roles   []Role
	Servers int // front-end hosts per role at this site (default 2)

	// Owner/Prefix feed the whois registry: the organisation that
	// registered this site's address block.
	Owner   string
	Netname string
	Prefix  string // /16 prefix for this site's pool

	// RateBps caps per-connection throughput at this site's hosts;
	// ProcDelay is the per-request processing cost (for edge sites
	// it models the backbone round trip to the real data center).
	RateBps   int64
	ProcDelay time.Duration

	// PTRHint controls reverse DNS: when true, host PTR names embed
	// the nearest airport code (locatable); when false the PTR is
	// opaque (the geolocator must fall back to RTT or traceroute).
	PTRHint bool
}

// Spec declares one service's server-side deployment.
type Spec struct {
	Service string // lower-case service key, e.g. "dropbox"
	Sites   []Site

	// EdgeNetwork, when true, resolves the service's client-facing
	// DNS name to the edge nearest the querying resolver instead of
	// a static pool (the Google Drive topology).
	EdgeNetwork bool

	// LoginServerCount is how many distinct control hosts the client
	// contacts during login (SkyDrive talks to 13 Microsoft Live
	// servers, everyone else to a couple).
	LoginServerCount int
}

// Deployment is the instantiated server side of one service.
type Deployment struct {
	Spec  Spec
	Hosts map[Role][]*netem.Host

	// Store is the service's content-addressed chunk store, shared
	// by every storage front-end (server-side dedup scope is the
	// whole service).
	Store *dedup.Store

	// names maps a role to the service DNS name front-ends of that
	// role answer for.
	names map[Role]string
}

// DNSName returns the service DNS name for a role, e.g.
// "storage.dropbox.sim".
func (d *Deployment) DNSName(r Role) string { return d.names[r] }

// HostsByRole returns the front-ends with the given role.
func (d *Deployment) HostsByRole(r Role) []*netem.Host { return d.Hosts[r] }

// NearestEdge returns the edge host closest to a coordinate; it panics
// for services without an edge network.
func (d *Deployment) NearestEdge(c geo.Coord) *netem.Host {
	edges := d.Hosts[Edge]
	if len(edges) == 0 {
		panic("cloud: service has no edge network: " + d.Spec.Service)
	}
	best := edges[0]
	bestD := geo.DistanceKm(c, best.Coord)
	for _, e := range edges[1:] {
		if dd := geo.DistanceKm(c, e.Coord); dd < bestD {
			best, bestD = e, dd
		}
	}
	return best
}

// Build instantiates the deployment onto the synthetic Internet:
// it creates hosts, allocates addresses per site prefix, registers
// whois ownership, installs forward DNS policies and PTR records.
func Build(n *netem.Network, dns *dnssim.System, reg *whois.Registry, spec Spec) *Deployment {
	d := &Deployment{
		Spec:  spec,
		Hosts: make(map[Role][]*netem.Host),
		Store: dedup.NewStore(),
		names: make(map[Role]string),
	}
	pools := make(map[string]*netem.AddrPool)
	for _, site := range spec.Sites {
		if site.Prefix == "" {
			panic("cloud: site without address prefix: " + site.Name)
		}
		pool, ok := pools[site.Prefix]
		if !ok {
			pool = netem.NewAddrPool(site.Prefix)
			pools[site.Prefix] = pool
			reg.Register(whois.Record{Prefix: site.Prefix, Owner: site.Owner, Netname: site.Netname})
		}
		servers := site.Servers
		if servers <= 0 {
			servers = 2
		}
		for _, role := range site.Roles {
			for i := 0; i < servers; i++ {
				h := n.AddHost(&netem.Host{
					Name:      fmt.Sprintf("%s%d.%s.%s.sim", role, i, site.Name, spec.Service),
					Addr:      pool.Next(),
					Coord:     site.Coord,
					RateBps:   site.RateBps,
					ProcDelay: site.ProcDelay,
				})
				d.Hosts[role] = append(d.Hosts[role], h)
				dns.SetPTR(h.Addr, ptrName(site, role, i))
			}
		}
	}

	// Forward DNS: one name per role present in the deployment.
	for role, hosts := range d.Hosts {
		name := fmt.Sprintf("%s.%s.sim", role, spec.Service)
		d.names[role] = name
		if role == Edge && spec.EdgeNetwork {
			// Real resolvers hand out a few nearby edges per
			// query, so fan-out discovery can enumerate the
			// whole fleet (Fig. 2).
			dns.SetPolicy(name, &dnssim.NearestEdge{Edges: hosts, K: 3})
			continue
		}
		ips := make([]string, len(hosts))
		for i, h := range hosts {
			ips[i] = h.Addr
		}
		k := 0
		if len(ips) > 4 {
			k = 4 // answer a rotating subset, forcing fan-out discovery
		}
		dns.SetPolicy(name, &dnssim.StaticPool{IPs: ips, K: k})
	}
	return d
}

// ptrName builds the reverse-DNS name for a host: informative (with an
// airport code, as many operators do) or opaque.
func ptrName(site Site, role Role, i int) string {
	if site.PTRHint {
		air := geo.NearestAirport(site.Coord)
		return fmt.Sprintf("%s-%s%d-%d.net.example", role, strings.ToLower(air.Code), 1+i/8, i)
	}
	return fmt.Sprintf("%s-%d.%s.example", role, i, site.Name)
}
