package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/workload"
)

// BundlingStudy is the full Sect. 4.2 experiment: "The benchmark
// consists of 4 upload sets, each containing exactly the same amount
// of data, which is split into 1, 10, 100 or 1000 files". For each
// set it reports completion, connections and bursts, exposing the
// synchronization strategy.
type BundlingStudy struct {
	Service string
	Sets    []workload.Batch
	Results []BundlingSetResult
}

// BundlingSetResult is the measurement for one upload set.
type BundlingSetResult struct {
	Completion  time.Duration
	Connections int
	Overhead    float64
}

// RunBundlingStudy uploads the four same-volume sets for one service.
func RunBundlingStudy(p client.Profile, total int64, seed int64) BundlingStudy {
	sets := workload.BundlingSets(total, workload.Binary)
	out := BundlingStudy{Service: p.Service, Sets: sets}
	for i, b := range sets {
		m := RunSync(p, b, seed+int64(i)*307, 0)
		out.Results = append(out.Results, BundlingSetResult{
			Completion:  m.Completion,
			Connections: m.Connections,
			Overhead:    m.Overhead,
		})
	}
	return out
}
