package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/compressor"
	"repro/internal/workload"
)

// The PCG content pipeline changed every simulated byte, so the PR-1
// golden values were regenerated (testdata/, scripts/regen-golden.sh).
// What must NOT change is the structure of the simulation: file sizes,
// connection counts, metric shapes, and — where content entropy is the
// only variable — the exact traffic volumes. This file is the
// randomized harness pinning that structure between the legacy
// math/rand reference engine and the PCG engine.

// runRepEngine executes one streamed campaign repetition on either
// engine.
func runRepEngine(p client.Profile, batch workload.Batch, seed int64, legacy bool) Metrics {
	var tb *Testbed
	if legacy {
		tb = NewLegacyStreamingTestbed(p, seed, DefaultJitter)
	} else {
		tb = NewStreamingTestbed(p, seed, DefaultJitter)
	}
	start := tb.Settle()
	t0 := tb.Clock.Now()
	tb.StartWindow(t0)
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	return MeasureWindow(tb, t0, batch.Total())
}

// within reports |a-b| <= frac*max(a,b) for positive quantities.
func within(a, b, frac float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= frac*m
}

// TestLegacyVsPCGStructuralEquivalence runs randomized campaign cells
// through both engines and pins the preserved structure:
//
//   - Connections are byte-independent (file counts and connection
//     strategy decide them): exactly equal.
//   - Every metric keeps its shape: populated, positive, overhead
//     consistent with traffic.
//   - Traffic volumes agree within a small band — content entropy is
//     equivalent between engines, so only chunk-boundary and
//     compression noise may move them (and for a no-capability client
//     over incompressible content, nothing may: exact equality).
//   - Each engine is deterministic: re-running a cell reproduces it
//     bit for bit.
func TestLegacyVsPCGStructuralEquivalence(t *testing.T) {
	meta := rand.New(rand.NewSource(17))
	kinds := []workload.Kind{workload.Binary, workload.Text, workload.FakeJPEG}
	for _, p := range client.Profiles() {
		for trial := 0; trial < 3; trial++ {
			batch := workload.Batch{
				Count: 1 + meta.Intn(20),
				Size:  int64(5_000 + meta.Intn(400_000)),
				Kind:  kinds[meta.Intn(len(kinds))],
			}
			seed := meta.Int63n(1 << 30)
			pcg := runRepEngine(p, batch, seed, false)
			leg := runRepEngine(p, batch, seed, true)

			if pcg.Connections != leg.Connections {
				t.Errorf("%s %s seed=%d: connections %d (pcg) vs %d (legacy)",
					p.Service, batch, seed, pcg.Connections, leg.Connections)
			}
			for _, v := range []struct {
				name string
				pair [2]float64
			}{
				{"TotalTraffic", [2]float64{float64(pcg.TotalTraffic), float64(leg.TotalTraffic)}},
				{"StorageUp", [2]float64{float64(pcg.StorageUp), float64(leg.StorageUp)}},
			} {
				name, pair := v.name, v.pair
				if pair[0] <= 0 || pair[1] <= 0 {
					t.Errorf("%s %s seed=%d: %s not populated (pcg %v, legacy %v)",
						p.Service, batch, seed, name, pair[0], pair[1])
				}
				// Content entropy is equivalent; only chunk boundaries
				// (CDC) and DEFLATE noise may move volumes.
				if !within(pair[0], pair[1], 0.03) {
					t.Errorf("%s %s seed=%d: %s drifted beyond noise: %v vs %v",
						p.Service, batch, seed, name, pair[0], pair[1])
				}
			}
			if p.Compression == compressor.None && p.ChunkMode != client.VariableChunks &&
				batch.Kind == workload.Binary {
				// No capability reads content, so payload volumes are
				// a pure function of sizes; only ACK coalescing (a
				// timing effect of the differing jitter draws) may
				// move the wire total, and only by a handful of bare
				// segments.
				if !within(float64(pcg.TotalTraffic), float64(leg.TotalTraffic), 0.001) ||
					!within(float64(pcg.StorageUp), float64(leg.StorageUp), 0.001) {
					t.Errorf("%s %s seed=%d: byte-independent traffic differs beyond ACK noise: %d/%d vs %d/%d",
						p.Service, batch, seed,
						pcg.TotalTraffic, pcg.StorageUp, leg.TotalTraffic, leg.StorageUp)
				}
			}
			for _, v := range []struct {
				name string
				pair [2]time.Duration
			}{
				{"Startup", [2]time.Duration{pcg.Startup, leg.Startup}},
				{"Completion", [2]time.Duration{pcg.Completion, leg.Completion}},
			} {
				name, pair := v.name, v.pair
				if pair[0] <= 0 || pair[1] <= 0 {
					t.Errorf("%s %s seed=%d: %s not populated", p.Service, batch, seed, name)
				}
				// Jitter draws differ between engines (±10% scheduling
				// noise plus RTT jitter); shapes must stay comparable.
				if !within(float64(pair[0]), float64(pair[1]), 0.35) {
					t.Errorf("%s %s seed=%d: %s shape broke: %v vs %v",
						p.Service, batch, seed, name, pair[0], pair[1])
				}
			}
			if !within(pcg.Overhead, float64(pcg.TotalTraffic)/float64(batch.Total()), 1e-9) {
				t.Errorf("%s %s: overhead inconsistent with traffic", p.Service, batch)
			}

			if again := runRepEngine(p, batch, seed, false); again != pcg {
				t.Errorf("%s %s seed=%d: PCG engine not deterministic", p.Service, batch, seed)
			}
			if again := runRepEngine(p, batch, seed, true); again != leg {
				t.Errorf("%s %s seed=%d: legacy engine not deterministic", p.Service, batch, seed)
			}
		}
	}
}

// TestLegacyEngineRoundTripsDescriptors pins the reference engine
// through the descriptor pipeline: a legacy testbed's folder holds
// legacy-flagged descriptors, and planning them lazily or eagerly
// yields identical traffic — the equivalence the compressor's keyed
// cache relies on (engine identity is part of the cache key).
func TestLegacyEngineRoundTripsDescriptors(t *testing.T) {
	batch := workload.Batch{Count: 4, Size: 120_000, Kind: workload.Text}
	for _, legacy := range []bool{false, true} {
		a := runRepEngine(client.Dropbox(), batch, 7, legacy)
		b := runRepEngine(client.Dropbox(), batch, 7, legacy)
		if a != b {
			t.Fatalf("legacy=%v: descriptor round trip not deterministic:\n %+v\n %+v", legacy, a, b)
		}
	}
	// The two engines must NOT produce identical metrics — if they
	// did, the legacy reference would not be exercising a different
	// byte stream and the equivalence harness above would be vacuous.
	if runRepEngine(client.Dropbox(), batch, 7, false) == runRepEngine(client.Dropbox(), batch, 7, true) {
		t.Fatal("engines produced identical metrics; reference engine is not independent")
	}
}
