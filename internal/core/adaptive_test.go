package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/client"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// goldenAdaptiveBatch is the Cloud Drive workload the adaptive
// acceptance numbers are pinned on: many small files, where the
// far-server connection count dominates completion variance.
func goldenAdaptiveBatch() workload.Batch {
	return workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
}

// TestRunUntilBatchBoundaries pins the sequential schedule: the first
// batch is MinReps, later batches AdaptiveBatch, the last clipped to
// MaxReps — and the stopping check fires once per batch, never inside
// one.
func TestRunUntilBatchBoundaries(t *testing.T) {
	rule := StopRule{TargetRelHW: 1, MinReps: 6, MaxReps: 17}
	var sizes []int
	out := RunUntil(rule, 4, func(rep int) int { return rep }, func(batch []int) bool {
		sizes = append(sizes, len(batch))
		return false // never satisfied: run to the cap
	})
	if len(out) != 17 {
		t.Fatalf("ran %d reps, want MaxReps=17", len(out))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("rep %d returned %d: results must be in index order", i, v)
		}
	}
	if want := []int{6, 4, 4, 3}; !reflect.DeepEqual(sizes, want) {
		t.Fatalf("batch sizes %v, want %v", sizes, want)
	}

	// A rule satisfied by the opening batch stops at MinReps exactly.
	out = RunUntil(rule, 4, func(rep int) int { return rep }, func([]int) bool { return true })
	if len(out) != rule.MinReps {
		t.Fatalf("satisfied rule ran %d reps, want MinReps=%d", len(out), rule.MinReps)
	}
}

// TestStopRuleDefaults pins the zero-value resolution and the
// antithetic evenization (pair means need whole pairs).
func TestStopRuleDefaults(t *testing.T) {
	r := StopRule{}.withDefaults(VarianceReduction{})
	if r.TargetRelHW != DefaultTargetRelHW || r.MinReps != DefaultMinReps || r.MaxReps != DefaultMaxReps {
		t.Fatalf("zero rule resolved to %+v", r)
	}
	r = StopRule{MinReps: 3, MaxReps: 7}.withDefaults(VarianceReduction{Antithetic: true})
	if r.MinReps != 4 || r.MaxReps != 8 {
		t.Fatalf("antithetic rule must round to whole pairs, got %+v", r)
	}
	if r := (StopRule{MinReps: 10, MaxReps: 5}).withDefaults(VarianceReduction{}); r.MaxReps != 10 {
		t.Fatalf("MaxReps < MinReps must clamp up, got %+v", r)
	}
}

// TestAdaptiveWorkerEquivalence is the determinism contract of the
// tentpole: the repetitions executed AND the resulting Summary are a
// pure function of (seed, rule) — bit-identical at any worker count,
// with and without variance reduction.
func TestAdaptiveWorkerEquivalence(t *testing.T) {
	defer func(old int) { CampaignWorkers = old }(CampaignWorkers)
	p := client.CloudDrive()
	batch := goldenAdaptiveBatch()
	rule := StopRule{TargetRelHW: 0.02, MinReps: 8, MaxReps: 24}

	for _, vr := range []VarianceReduction{{}, {Antithetic: true}} {
		CampaignWorkers = 1
		ref := RunCampaignAdaptive(p, batch, rule, vr, 42)
		for _, w := range []int{2, 8} {
			CampaignWorkers = w
			if got := RunCampaignAdaptive(p, batch, rule, vr, 42); !reflect.DeepEqual(got, ref) {
				t.Fatalf("vr=%+v workers=%d: summary diverged\n got %+v\nwant %+v", vr, w, got, ref)
			}
		}
		if ref.RepsUsed < rule.MinReps || ref.RepsUsed > rule.MaxReps {
			t.Fatalf("vr=%+v: RepsUsed=%d outside [%d,%d]", vr, ref.RepsUsed, rule.MinReps, rule.MaxReps)
		}
	}
}

// TestAdaptiveMaxRepsCap: an unreachable target burns exactly the cap,
// never more, and reports the (missed) achieved precision honestly.
func TestAdaptiveMaxRepsCap(t *testing.T) {
	s := RunCampaignAdaptive(client.Dropbox(), goldenAdaptiveBatch(),
		StopRule{TargetRelHW: 1e-9, MinReps: 4, MaxReps: 12}, VarianceReduction{}, 7)
	if s.RepsUsed != 12 {
		t.Fatalf("RepsUsed=%d, want the MaxReps cap 12", s.RepsUsed)
	}
	if s.AchievedRelHW <= 1e-9 {
		t.Fatalf("AchievedRelHW=%v: an impossible target cannot have been met", s.AchievedRelHW)
	}
}

// TestAdaptiveZeroVarianceStopsAtMinReps: a degenerate cell (no
// dispersion at all) satisfies any target with the opening batch.
func TestAdaptiveZeroVarianceStopsAtMinReps(t *testing.T) {
	constant := Metrics{Completion: 1e9, GoodputBps: 8e6}
	s := adaptiveSummary(StopRule{TargetRelHW: 0.001, MinReps: 6, MaxReps: 96}, VarianceReduction{},
		func(rep int) int64 { return int64(rep) },
		func(*sim.RNG) Metrics { return constant })
	if s.RepsUsed != 6 {
		t.Fatalf("RepsUsed=%d, want MinReps=6 for a zero-variance cell", s.RepsUsed)
	}
	if s.AchievedRelHW != 0 {
		t.Fatalf("AchievedRelHW=%v, want 0", s.AchievedRelHW)
	}
}

// TestAdaptiveMatchesFixedPrefix: with no variance reduction, rep k of
// an adaptive campaign is bit-identical to rep k of the fixed-rep
// engine — the adaptive path changes when to stop, never what runs.
func TestAdaptiveMatchesFixedPrefix(t *testing.T) {
	p := client.Wuala()
	batch := goldenAdaptiveBatch()
	fixed := RunCampaign(p, batch, 8, 42)
	adaptive := RunCampaignAdaptive(p, batch,
		StopRule{TargetRelHW: 1, MinReps: 8, MaxReps: 8}, VarianceReduction{}, 42)
	if fixed.MeanCompletion != adaptive.MeanCompletion || fixed.MeanStartup != adaptive.MeanStartup ||
		fixed.MeanOverhead != adaptive.MeanOverhead || fixed.MedianGoodputBps != adaptive.MedianGoodputBps {
		t.Fatalf("adaptive 8-rep summary diverged from fixed 8-rep:\nfixed    %+v\nadaptive %+v", fixed, adaptive)
	}
}

// TestAntitheticBeatsPlainOnGoldenWorkload is the acceptance number of
// the PR: at the precision a fixed 24-rep Cloud Drive campaign
// achieves, the antithetic adaptive run gets there with measurably
// fewer repetitions. The exact counts are deterministic, so they are
// pinned — if a model change shifts them, re-measure and re-pin
// alongside the benchsnap adaptive micro.
func TestAntitheticBeatsPlainOnGoldenWorkload(t *testing.T) {
	p := client.CloudDrive()
	batch := goldenAdaptiveBatch()
	fixed := RunCampaign(p, batch, DefaultReps, 42)
	if fixed.AchievedRelHW <= 0 {
		t.Fatalf("fixed campaign reports no achieved precision: %+v", fixed)
	}
	rule := StopRule{TargetRelHW: fixed.AchievedRelHW, MinReps: 8, MaxReps: 96}

	anti := RunCampaignAdaptive(p, batch, rule, VarianceReduction{Antithetic: true}, 42)
	if anti.AchievedRelHW > rule.TargetRelHW {
		t.Fatalf("antithetic run stopped above target: %v > %v", anti.AchievedRelHW, rule.TargetRelHW)
	}
	if anti.RepsUsed >= fixed.RepsUsed {
		t.Fatalf("antithetic used %d reps, fixed budget is %d: no savings", anti.RepsUsed, fixed.RepsUsed)
	}
	// Pinned acceptance numbers (seed 42, Cloud Drive, 100 x 10 kB).
	if anti.RepsUsed != 16 {
		t.Fatalf("antithetic RepsUsed=%d, pinned at 16", anti.RepsUsed)
	}
}

// TestAntitheticPairCorrelation verifies the mechanism, not just the
// outcome: paired repetitions of the golden cell are negatively
// correlated, which is what makes pair means tighter than two
// independent repetitions.
func TestAntitheticPairCorrelation(t *testing.T) {
	p := client.CloudDrive()
	batch := goldenAdaptiveBatch()
	const pairs = 8
	var plain, anti []float64
	for k := 0; k < pairs; k++ {
		seed := campaignSeed(42, 2*k)
		mp := runSyncRNG(p, batch, campusHost(), vrRNG(seed, false), DefaultJitter, 0)
		ma := runSyncRNG(p, batch, campusHost(), vrRNG(seed, true), DefaultJitter, 0)
		plain = append(plain, mp.Completion.Seconds())
		anti = append(anti, ma.Completion.Seconds())
	}
	mu, mv := stats.Mean(plain), stats.Mean(anti)
	var cov, vu, vv float64
	for i := range plain {
		du, dv := plain[i]-mu, anti[i]-mv
		cov += du * dv
		vu += du * du
		vv += dv * dv
	}
	rho := cov / math.Sqrt(vu*vv)
	if rho >= 0 {
		t.Fatalf("pair correlation %.3f, want negative", rho)
	}
}

// TestCRNPairsServices validates the other variance-reduction lever:
// under common random numbers the two services in a loss-sweep cell
// face identical noise, so the spread of their per-rep difference is
// smaller than with independent seed streams.
func TestCRNPairsServices(t *testing.T) {
	a, b := client.Dropbox(), client.SkyDrive()
	const reps = 16
	var crn, indep []float64
	for rep := 0; rep < reps; rep++ {
		shared := lossSweepSeed(7, 0, 0, rep)
		ma := runSyncRNG(a, DefaultLossBatch, vantageHost(Twente), vrRNG(shared, false), DefaultJitter, DefaultLossRates[0])
		mb := runSyncRNG(b, DefaultLossBatch, vantageHost(Twente), vrRNG(shared, false), DefaultJitter, DefaultLossRates[0])
		crn = append(crn, ma.Completion.Seconds()-mb.Completion.Seconds())

		sa, sb := lossSweepSeed(7, 0, 0, rep), lossSweepSeed(7, 1, 0, rep)
		ma = runSyncRNG(a, DefaultLossBatch, vantageHost(Twente), vrRNG(sa, false), DefaultJitter, DefaultLossRates[0])
		mb = runSyncRNG(b, DefaultLossBatch, vantageHost(Twente), vrRNG(sb, false), DefaultJitter, DefaultLossRates[0])
		indep = append(indep, ma.Completion.Seconds()-mb.Completion.Seconds())
	}
	if sc, si := stats.SampleStd(crn), stats.SampleStd(indep); sc >= si {
		t.Fatalf("CRN diff std %.4f >= independent %.4f: pairing bought nothing", sc, si)
	}
}

// TestLossSweepAdaptiveWorkerEquivalence extends the determinism
// contract to the multi-cell sweeps, including the CRN seed routing.
func TestLossSweepAdaptiveWorkerEquivalence(t *testing.T) {
	defer func(old int) { CampaignWorkers = old }(CampaignWorkers)
	profiles := sweepProfiles()
	rates := []float64{0.02}
	rule := StopRule{TargetRelHW: 0.05, MinReps: 4, MaxReps: 12}
	vr := VarianceReduction{CRN: true}

	CampaignWorkers = 1
	ref := LossSweepAdaptive(profiles, rates, DefaultLossBatch, Twente, rule, vr, 11)
	CampaignWorkers = 8
	if got := LossSweepAdaptive(profiles, rates, DefaultLossBatch, Twente, rule, vr, 11); !reflect.DeepEqual(got, ref) {
		t.Fatalf("loss sweep diverged across worker counts\n got %+v\nwant %+v", got, ref)
	}
	for _, cell := range ref {
		if cell.Summary.RepsUsed < rule.MinReps || cell.Summary.RepsUsed > rule.MaxReps {
			t.Fatalf("%s@%g: RepsUsed=%d outside rule bounds", cell.Service, cell.LossRate, cell.Summary.RepsUsed)
		}
	}
}

// TestLocationStudyAdaptiveShape: every (service, vantage) cell is
// present, carries its names, and respects the rule bounds.
func TestLocationStudyAdaptiveShape(t *testing.T) {
	lisbon, ok := VantageByName("lisbon")
	if !ok {
		t.Fatal("lisbon missing from the landmark database")
	}
	vantages := []Vantage{Twente, lisbon}
	rule := StopRule{TargetRelHW: 0.2, MinReps: 2, MaxReps: 4}
	out := LocationStudyAdaptive(workload.Batch{Count: 1, Size: 100_000, Kind: workload.Binary}, vantages, rule, VarianceReduction{}, 3)
	if want := len(client.Profiles()) * len(vantages); len(out) != want {
		t.Fatalf("got %d cells, want %d", len(out), want)
	}
	for _, c := range out {
		if c.Service == "" || c.Vantage == "" {
			t.Fatalf("cell missing names: %+v", c)
		}
		if c.Summary.RepsUsed < rule.MinReps || c.Summary.RepsUsed > rule.MaxReps {
			t.Fatalf("%s@%s: RepsUsed=%d outside [%d,%d]", c.Service, c.Vantage, c.Summary.RepsUsed, rule.MinReps, rule.MaxReps)
		}
	}
}

// TestDetectCapabilitiesAdaptive: the probe suite repeats until the
// bundling statistic is tight and reports unanimity across seeds.
func TestDetectCapabilitiesAdaptive(t *testing.T) {
	out := DetectCapabilitiesAdaptive(client.Dropbox(), StopRule{TargetRelHW: 0.1, MinReps: 4, MaxReps: 12}, 42)
	if out.RepsUsed < 4 || out.RepsUsed > 12 {
		t.Fatalf("RepsUsed=%d outside rule bounds", out.RepsUsed)
	}
	if !out.Unanimous {
		t.Fatalf("Dropbox capability detection must be seed-stable, got %+v", out)
	}
	if out.AchievedRelHW > 0.1 && out.RepsUsed < 12 {
		t.Fatalf("stopped early above target: %+v", out)
	}
}

// TestRunFullCampaignAdaptiveRecordsRule: the campaign file carries
// the stopping rule so snapshots are comparable at equal confidence.
func TestRunFullCampaignAdaptiveRecordsRule(t *testing.T) {
	rule := StopRule{TargetRelHW: 0.2, MinReps: 2, MaxReps: 4}
	c := RunFullCampaignAdaptive(Twente, rule, VarianceReduction{}, 5)
	if c.Precision != 0.2 || c.MaxReps != 4 {
		t.Fatalf("campaign rule not recorded: precision=%v max_reps=%d", c.Precision, c.MaxReps)
	}
	if len(c.Fig6) == 0 || len(c.Lossy) == 0 || len(c.Idle) == 0 {
		t.Fatalf("adaptive campaign missing sections: %+v", c)
	}
	for _, r := range c.Fig6 {
		for _, s := range r.Summaries {
			if s.RepsUsed < rule.MinReps || s.RepsUsed > rule.MaxReps {
				t.Fatalf("%s: RepsUsed=%d outside [%d,%d]", r.Service, s.RepsUsed, rule.MinReps, rule.MaxReps)
			}
		}
	}
}
