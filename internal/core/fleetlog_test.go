package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dedup"
)

// TestFleetLogReplayMatchesGeneration pins the log's core promise: the
// claim pass's recorded stream, replayed, drives a sink through
// exactly the StartSession/Chunk/EndSession sequence a second
// generation walk would produce — same sessions, same order, same
// (hash, size) runs, same file counts.
func TestFleetLogReplayMatchesGeneration(t *testing.T) {
	cfg := smallFleet(600).withDefaults()
	starts := classStarts(cfg.Classes, cfg.Users)
	for stripe := 0; stripe < 8; stripe++ {
		log := newFleetLog(0)
		walkFleetStripe(cfg, starts, stripe, &claimSink{store: cfg.Store, log: log})
		if log.full {
			t.Fatalf("stripe %d: default budget overflowed on a 600-user day", stripe)
		}

		want := &recordSink{}
		walkFleetStripe(cfg, starts, stripe, want)
		got := &recordSink{}
		log.replay(got)
		if !reflect.DeepEqual(want.sessions, got.sessions) {
			t.Fatalf("stripe %d: replay diverged from generation (%d vs %d sessions)",
				stripe, len(got.sessions), len(want.sessions))
		}
	}
}

// TestFleetLogForcedFallback starves the log budget so every stripe
// drops its log and the resolve pass regenerates from seeds. The
// fallback is pure mechanism: the fleet day must be bit-identical to
// the replayed run, at several worker counts.
func TestFleetLogForcedFallback(t *testing.T) {
	base := RunFleet(smallFleet(1500), 1)

	// A one-byte budget cannot hold a session header: every stripe
	// trips on its first startSession.
	starved := smallFleet(1500)
	starved.LogBudget = 1
	log := newFleetLog(1)
	log.startSession(0, 0)
	if !log.full {
		t.Fatal("one-byte budget did not trip the log")
	}

	for _, workers := range []int{1, 4} {
		cfg := starved
		if got := RunFleet(cfg, workers); !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: regeneration fallback diverged:\n  replay: %v\n  regen:  %v",
				workers, base, got)
		}
	}
}

// TestFleetLogBudgetDrop exercises the budget bookkeeping directly: a
// log sized for a few chunks drops mid-stream, releases its arenas,
// and ignores everything after.
func TestFleetLogBudgetDrop(t *testing.T) {
	budget := logBytesPerSession + 3*logBytesPerChunk
	log := newFleetLog(budget)
	log.startSession(7, 0)
	var h dedup.Hash
	for i := 0; i < 3; i++ {
		h[0] = byte(i)
		log.chunk(h, 100)
	}
	if log.full {
		t.Fatal("log tripped within budget")
	}
	log.chunk(h, 100) // one over
	if !log.full {
		t.Fatal("log did not trip past budget")
	}
	if log.hashes != nil || log.users != nil || log.refs != nil {
		t.Fatal("drop retained arena memory")
	}
	log.chunk(h, 100) // must not panic or resurrect
	log.endSession(1)
	rec := &recordSink{}
	log.replay(rec)
	if len(rec.sessions) != 0 {
		t.Fatalf("replay of a dropped log produced %d sessions", len(rec.sessions))
	}
}

// TestFleetPopulationSweepWorkerEquivalence pins the sweep contract:
// points land in population order and are bit-identical whatever the
// worker count, both across the sweep fan-out and inside each day.
func TestFleetPopulationSweepWorkerEquivalence(t *testing.T) {
	pops := []int{300, 900, 1800}
	base := FleetPopulationSweep(smallFleet(0), pops, 1)
	if len(base) != len(pops) {
		t.Fatalf("sweep returned %d points for %d populations", len(base), len(pops))
	}
	for i, p := range base {
		if p.Users != pops[i] {
			t.Fatalf("point %d: users %d, want %d (population order)", i, p.Users, pops[i])
		}
	}
	for _, workers := range []int{2, 8} {
		got := FleetPopulationSweep(smallFleet(0), pops, workers)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d sweep diverged:\n  seq: %+v\n  got: %+v", workers, base, got)
		}
	}
}

// TestFleetSessionAllocationCeiling is the allocation regression gate
// on the fleet hot path: total bytes allocated per simulated session —
// including the store, the logs and the one-time class tables — must
// stay under a fixed ceiling. The one-pass engine lands around 1.1 KB
// per session on a 3k-user day; the ceiling leaves headroom for noise
// but catches an accidental per-session or per-chunk allocation (a
// reverted RNG reuse, an unbatched claim path) immediately.
func TestFleetSessionAllocationCeiling(t *testing.T) {
	const maxBytesPerSession = 4096

	cfg := smallFleet(3000)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	r := RunFleet(cfg, 1)
	runtime.ReadMemStats(&after)

	if r.Sessions == 0 {
		t.Fatal("degenerate day: no sessions")
	}
	perSession := float64(after.TotalAlloc-before.TotalAlloc) / float64(r.Sessions)
	t.Logf("%.0f B allocated per session over %d sessions", perSession, r.Sessions)
	if perSession > maxBytesPerSession {
		t.Fatalf("fleet hot path allocates %.0f B/session, ceiling %d", perSession, maxBytesPerSession)
	}
}
