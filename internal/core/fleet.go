package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/client"
	"repro/internal/dedup"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file is the fleet engine: N simulated users (10⁵–10⁶) sharing
// one cloud backend for a whole service day, so population composition
// changes server-side bytes — the paper's per-client deduplication
// phenomenon (Sect. 4.3) studied at service scale.
//
// Shape of the computation. A user is never materialised: it is an
// index. Everything a user does during the day — its session instants
// (arrival process), its per-session file mix, the content identity of
// every chunk it would upload — is derived on the fly from
// fleetSeed(base, user, session), the same index→seed discipline
// campaignSeed uses. Files stay lazy workload descriptors; a chunk's
// content address is a pure function of the descriptor tuple, so a
// million-user day never generates a byte of file content and fleet
// memory is O(active users), not O(users × files).
//
// Users are partitioned over a fixed number of stripes (independent of
// the worker count), and stripes fan out over the shared core.RunN
// budget. Within a stripe an event heap advances users in virtual
// time: pop the user with the earliest next session, replay that
// session, push it back at its next arrival.
//
// Cross-user dedup under parallelism is the interesting part. Which
// user pays for a popular chunk depends on who uploads it first in
// *virtual* time — but stripes execute concurrently in *wall* time, in
// arbitrary order. The engine therefore resolves the day in two
// passes over the sharded store:
//
//   - Claim pass: every session claims its chunks with the session's
//     (virtual instant, user) pair, one batch per (session, shard)
//     group (dedup.Store.ClaimBatch). The store keeps the earliest
//     claim per chunk — a pure function of the offered load, whatever
//     the execution interleaving. While claiming, each stripe records
//     its session stream into a flat append-only log (fleetlog.go).
//   - Resolve pass: the day replays from the session log (or, past the
//     log's memory budget, regenerates from seeds — bit-identical
//     either way) and each session asks the store who won its chunks
//     (dedup.Store.WinnerBatch): the earliest claimant uploads, every
//     other claimant deduplicates — exactly the outcome of a
//     sequential virtual-time replay, now computed on all cores.
//
// The log is what makes the day one generation pass: RNG forks,
// arrival draws, Zipf ranks and chunk hashing run once, in the claim
// pass; the resolve pass is a linear arena walk.
//
// Per-stripe accumulators are integers and are reduced in stripe
// order, so a fleet day is bit-identical at any worker count (pinned
// by TestFleetBitIdenticalAcrossWorkers and the CI fleetbench smoke).

// FleetClass describes one population segment: its share of the
// fleet, how its sessions arrive over the day, and what a session
// uploads. A file is private (fresh content, unique to the user) or
// drawn from the class's shared catalog of popular files with
// Zipf-like popularity — the knob that makes dedup ratio a function of
// population composition.
type FleetClass struct {
	Name     string
	Fraction float64          // share of the population
	Arrival  workload.Arrival // session arrival process

	MinFiles, MaxFiles int   // files per session, uniform
	MinFileBytes       int64 // file size, log-uniform
	MaxFileBytes       int64

	SharedFraction float64 // probability a file comes from the catalog
	CatalogSize    int     // distinct popular files in the catalog

	ChunkBytes int64 // fixed chunk size for content addressing
}

// DefaultFleetClasses is the reference population mix: interactive
// desktop users on a diurnal schedule, steady background sync on
// Poisson arrivals, and a small bursty batch segment (gamma, CV 2) —
// the three-segment shape of the SNIPPETS workload specs.
func DefaultFleetClasses() []FleetClass {
	return []FleetClass{
		{
			Name:     "interactive",
			Fraction: 0.6,
			Arrival:  workload.Diurnal{PerDay: 3, Weights: workload.OfficeHours()},
			MinFiles: 1, MaxFiles: 4,
			MinFileBytes: 10_000, MaxFileBytes: 1 << 20,
			SharedFraction: 0.35, CatalogSize: 4096,
			ChunkBytes: 4 << 20,
		},
		{
			Name:     "background",
			Fraction: 0.3,
			Arrival:  workload.Poisson{PerDay: 8},
			MinFiles: 1, MaxFiles: 2,
			MinFileBytes: 10_000, MaxFileBytes: 100_000,
			SharedFraction: 0.15, CatalogSize: 16384,
			ChunkBytes: 4 << 20,
		},
		{
			Name:     "batch",
			Fraction: 0.1,
			Arrival:  workload.Gamma{PerDay: 1, CV: 2},
			MinFiles: 5, MaxFiles: 20,
			MinFileBytes: 100_000, MaxFileBytes: 4 << 20,
			SharedFraction: 0.5, CatalogSize: 1024,
			ChunkBytes: 4 << 20,
		},
	}
}

// FleetConfig parameterises one fleet day.
type FleetConfig struct {
	Users int
	Seed  int64

	Day    time.Duration // horizon; default workload.ServiceDay
	Bucket time.Duration // load-curve resolution; default one minute

	Classes []FleetClass // default DefaultFleetClasses()

	// UploadBps and ConnOverhead form the service-side transfer model
	// for the load curves: a session holds one connection for
	// ConnOverhead plus its wire bytes at UploadBps. Defaults: 8 Mb/s
	// per connection, 500 ms of handshake/commit overhead.
	UploadBps    int64
	ConnOverhead time.Duration

	// Stripes is the fixed user partition fanned over the worker
	// budget. It is part of the result's identity only in the sense
	// that it must not depend on the worker count; any value yields
	// the same result. Default 256.
	Stripes int

	// LogBudget caps the total bytes of session log the engine may
	// retain across all stripes between the claim and resolve passes
	// (default DefaultFleetLogBudget). A stripe whose share of the
	// budget overflows regenerates its sessions from seeds instead of
	// replaying — a pure perf fallback; the simulated day is identical
	// either way.
	LogBudget int64

	// Store is the shared backend; default a fresh dedup.NewStore().
	// Passing a store lets callers inspect server-side state after
	// the day (and lets the benchsnap micro swap shard counts).
	Store *dedup.Store

	// tables holds per-class generation tables precomputed in
	// withDefaults — catalog sizes and hoisted logarithm constants —
	// so the generation walk never re-derives a pure function of the
	// class configuration per file.
	tables []classTables
}

// classTables caches the parts of one class's file-mix derivation that
// are pure functions of the class configuration. Every cached value is
// computed by exactly the expression genFleetSession's definitional
// fallback would evaluate per file, so the table changes nothing but
// the work.
type classTables struct {
	catalog []int64 // rank → catalog file size; nil for oversized catalogs
	zipfLog float64 // math.Log(CatalogSize+1), the zipfRank envelope constant
	sizeLog float64 // math.Log(MaxFileBytes/MinFileBytes), the log-uniform span

	// The catalog's chunk stream, flattened: rank r's chunks are
	// chunkHashes/chunkSizes[chunkOff[r]:chunkOff[r+1]]. A popular
	// file's chunk addresses are the same for every user that syncs
	// it, so hashing the descriptor tuple per reference (SHA-256 per
	// chunk per user) is the single biggest avoidable cost of the
	// generation walk.
	chunkHashes []dedup.Hash
	chunkSizes  []int64
	chunkOff    []int32
}

// maxCatalogTable caps the per-class catalog size table; a class with
// a larger catalog derives sizes definitionally instead.
const maxCatalogTable = 1 << 20

// withDefaults resolves the zero fields.
func (cfg FleetConfig) withDefaults() FleetConfig {
	if cfg.Day <= 0 {
		cfg.Day = workload.ServiceDay
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = time.Minute
	}
	if cfg.Classes == nil {
		cfg.Classes = DefaultFleetClasses()
	}
	if cfg.UploadBps <= 0 {
		cfg.UploadBps = 8_000_000
	}
	if cfg.ConnOverhead <= 0 {
		cfg.ConnOverhead = 500 * time.Millisecond
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 256
	}
	if cfg.Stripes > cfg.Users && cfg.Users > 0 {
		cfg.Stripes = cfg.Users
	}
	if cfg.LogBudget <= 0 {
		cfg.LogBudget = DefaultFleetLogBudget
	}
	if cfg.Store == nil {
		cfg.Store = dedup.NewStoreShardedSized(dedup.DefaultShards, FleetChunkHint(cfg.Users, cfg.Day))
	}
	cfg.tables = make([]classTables, len(cfg.Classes))
	for c := range cfg.Classes {
		cls := &cfg.Classes[c]
		t := &cfg.tables[c]
		if cls.CatalogSize > 1 {
			t.zipfLog = math.Log(float64(cls.CatalogSize) + 1)
		}
		if cls.MaxFileBytes > cls.MinFileBytes {
			t.sizeLog = math.Log(float64(cls.MaxFileBytes) / float64(cls.MinFileBytes))
		}
		if cls.CatalogSize <= 0 || cls.CatalogSize > maxCatalogTable {
			continue
		}
		sizes := make([]int64, cls.CatalogSize)
		t.chunkOff = make([]int32, cls.CatalogSize+1)
		rng := sim.NewRNG(0)
		for r := range sizes {
			// Exactly the definitional derivation genFleetSession
			// would perform per reference, hoisted to once per rank.
			seed := catalogSeed(c, r)
			rng.Reseed(seed)
			size := logUniformBytes(rng, cls.MinFileBytes, cls.MaxFileBytes)
			sizes[r] = size
			for off := int64(0); off < size; off += cls.ChunkBytes {
				ln := size - off
				if ln > cls.ChunkBytes {
					ln = cls.ChunkBytes
				}
				t.chunkHashes = append(t.chunkHashes, fleetChunkHash(seed, size, off, ln))
				t.chunkSizes = append(t.chunkSizes, ln)
			}
			t.chunkOff[r+1] = int32(len(t.chunkHashes))
		}
		t.catalog = sizes
	}
	return cfg
}

// FleetChunkHint estimates the unique chunks a fleet day offers — the
// map-capacity hint RunFleet (and drivers building their own backend)
// hand to dedup.NewStoreShardedSized. The default class mix lands
// around eight unique chunks per user-day; the hint only pre-sizes
// allocation, so being off merely costs or saves a few map growths.
func FleetChunkHint(users int, day time.Duration) int {
	if day <= 0 {
		day = workload.ServiceDay
	}
	days := float64(day) / float64(workload.ServiceDay)
	return int(8 * float64(users) * days)
}

// classStarts returns the first user index of each class under
// index-range assignment (class i owns [starts[i], starts[i+1])), so
// segment sizes match the configured fractions exactly and class
// membership is a pure function of the user index.
func classStarts(classes []FleetClass, users int) []int {
	starts := make([]int, len(classes)+1)
	var cum float64
	for i, c := range classes {
		cum += c.Fraction
		starts[i+1] = int(math.Round(cum * float64(users)))
	}
	starts[len(classes)] = users
	return starts
}

// FleetBucket is one load-curve sample: the service side of the fleet
// during [Start, Start+Bucket).
type FleetBucket struct {
	Start     time.Duration `json:"start"`
	Sessions  int64         `json:"sessions"`   // sessions arriving in the bucket
	Conns     int64         `json:"conns"`      // connections overlapping the bucket
	WireBytes int64         `json:"wire_bytes"` // bytes served in the bucket
}

// FleetResult is one fleet day's service-side outcome. All totals are
// integers accumulated in fixed stripe order, so equal configurations
// produce byte-identical results at any worker count.
type FleetResult struct {
	Users    int   `json:"users"`
	Sessions int64 `json:"sessions"`
	Files    int64 `json:"files"`
	Chunks   int64 `json:"chunks"`

	// ContentBytes is the offered load: every byte of every file the
	// fleet synced. WireBytes is what actually travelled — content
	// minus cross-user dedup, plus the dedup manifests announcing
	// chunk hashes. StoredBytes is the backend's unique content.
	ContentBytes  int64 `json:"content_bytes"`
	WireBytes     int64 `json:"wire_bytes"`
	DedupBytes    int64 `json:"dedup_bytes"`
	ManifestBytes int64 `json:"manifest_bytes"`
	UniqueChunks  int   `json:"unique_chunks"`
	StoredBytes   int64 `json:"stored_bytes"`

	// DedupRatio is the fraction of offered content deduplicated
	// away server-side; the fleet headline metric.
	DedupRatio float64 `json:"dedup_ratio"`

	PeakBps   float64 `json:"peak_bps"`   // busiest bucket, bits per second
	PeakConns int64   `json:"peak_conns"` // most concurrent connections

	Buckets []FleetBucket `json:"buckets"`
}

// RunFleet simulates one service day of cfg.Users users against the
// shared backend and returns the service-side load curves. workers
// caps the fan-out (0 = the shared CampaignWorkers budget, 1 =
// sequential); the result is bit-identical at any value.
func RunFleet(cfg FleetConfig, workers int) FleetResult {
	cfg = cfg.withDefaults()
	starts := classStarts(cfg.Classes, cfg.Users)
	nb := int(cfg.Day / cfg.Bucket)
	if nb < 1 {
		nb = 1
	}

	// Claim pass: generate the day once, recording each stripe's
	// session stream into its log while the store accumulates every
	// chunk's earliest (instant, user) pair.
	perStripe := cfg.LogBudget / int64(cfg.Stripes)
	if perStripe < 1 {
		perStripe = 1
	}
	logs := RunN(cfg.Stripes, workers, func(stripe int) *fleetLog {
		log := newFleetLog(perStripe)
		sink := &claimSink{store: cfg.Store, log: log}
		walkFleetStripe(cfg, starts, stripe, sink)
		return log
	})

	// Resolve pass: replay the day from the logs (regenerating the
	// stripes whose logs tripped the budget), attribute uploads to
	// claim winners, and fold the service-side load curves per stripe.
	parts := RunN(cfg.Stripes, workers, func(stripe int) *fleetStripeTotals {
		sink := newResolveSink(cfg, nb)
		if log := logs[stripe]; !log.full {
			log.replay(sink)
			logs[stripe] = nil // release the arenas as stripes finish
		} else {
			walkFleetStripe(cfg, starts, stripe, sink)
		}
		return &sink.tot
	})

	// Deterministic reduce: integer sums in stripe order.
	res := FleetResult{Users: cfg.Users, Buckets: make([]FleetBucket, nb)}
	for i := range res.Buckets {
		res.Buckets[i].Start = time.Duration(i) * cfg.Bucket
	}
	for _, p := range parts {
		res.Sessions += p.sessions
		res.Files += p.files
		res.Chunks += p.chunks
		res.ContentBytes += p.contentBytes
		res.WireBytes += p.wireBytes
		res.DedupBytes += p.dedupBytes
		res.ManifestBytes += p.manifestBytes
		for i := range res.Buckets {
			res.Buckets[i].Sessions += p.bucketSessions[i]
			res.Buckets[i].Conns += p.bucketConns[i]
			res.Buckets[i].WireBytes += p.bucketWire[i]
		}
	}
	res.UniqueChunks = cfg.Store.UniqueChunks()
	res.StoredBytes = cfg.Store.StoredBytes()
	if res.ContentBytes > 0 {
		res.DedupRatio = float64(res.DedupBytes) / float64(res.ContentBytes)
	}
	bucketSecs := cfg.Bucket.Seconds()
	for i := range res.Buckets {
		if bps := float64(res.Buckets[i].WireBytes*8) / bucketSecs; bps > res.PeakBps {
			res.PeakBps = bps
		}
		if res.Buckets[i].Conns > res.PeakConns {
			res.PeakConns = res.Buckets[i].Conns
		}
	}
	return res
}

// fleetSink consumes one stripe's sessions in virtual-time order.
type fleetSink interface {
	StartSession(user int64, at time.Duration)
	Chunk(h dedup.Hash, size int64)
	EndSession(files int)
}

// chunkBatch buffers one session's chunks and hands them out grouped
// by store shard, so claim/resolve traffic pays one lock acquisition
// per (session, shard) group instead of one per chunk. All buffers are
// reused across sessions; a session allocates nothing once the high-
// water marks are reached.
type chunkBatch struct {
	hashes []dedup.Hash
	sizes  []int64
	idxs   []int64 // caller tag per chunk (the claim pass: log arena index)
	shards []int32 // ShardOf cache; consumed (set to -1) while grouping

	gh []dedup.Hash // current group scratch
	gs []int64
	gi []int64
}

func (b *chunkBatch) reset() {
	b.hashes, b.sizes = b.hashes[:0], b.sizes[:0]
	b.idxs, b.shards = b.idxs[:0], b.shards[:0]
}

func (b *chunkBatch) add(shard int, h dedup.Hash, size, idx int64) {
	b.hashes = append(b.hashes, h)
	b.sizes = append(b.sizes, size)
	b.idxs = append(b.idxs, idx)
	b.shards = append(b.shards, int32(shard))
}

// forEachShardGroup calls fn once per distinct shard with that shard's
// chunks, in order of first appearance. Sessions hold a handful of
// chunks, so the quadratic gather is cheaper than any map or sort.
func (b *chunkBatch) forEachShardGroup(fn func(hs []dedup.Hash, sizes, idxs []int64)) {
	n := len(b.hashes)
	for i := 0; i < n; i++ {
		sh := b.shards[i]
		if sh < 0 {
			continue
		}
		b.gh, b.gs, b.gi = b.gh[:0], b.gs[:0], b.gi[:0]
		for j := i; j < n; j++ {
			if b.shards[j] == sh {
				b.shards[j] = -1
				b.gh = append(b.gh, b.hashes[j])
				b.gs = append(b.gs, b.sizes[j])
				b.gi = append(b.gi, b.idxs[j])
			}
		}
		fn(b.gh, b.gs, b.gi)
	}
}

// claimSink is the first pass: record the session stream into the
// stripe log and claim every chunk at the session's virtual instant,
// one ClaimBatch per (session, shard) group. The store resolves
// concurrent claims to the (instant, user) minimum, so this pass is
// order-free and batching cannot change the outcome.
type claimSink struct {
	store *dedup.Store
	log   *fleetLog
	user  int64
	atNs  int64
	batch chunkBatch
	refs  []dedup.ChunkRef // ClaimBatchRef output scratch
}

func (s *claimSink) StartSession(user int64, at time.Duration) {
	s.user, s.atNs = user, int64(at)
	s.log.startSession(user, at)
	s.batch.reset()
}
func (s *claimSink) Chunk(h dedup.Hash, size int64) {
	s.log.chunk(h, size)
	// The chunk's log arena index rides along so EndSession can file
	// the claimed ref back into the log; -1 (an empty log) and stale
	// indices after a mid-session drop are both guarded by the !full
	// check at flush time.
	s.batch.add(s.store.ShardOf(h), h, size, int64(len(s.log.hashes))-1)
}
func (s *claimSink) EndSession(files int) {
	s.log.endSession(files)
	s.batch.forEachShardGroup(func(hs []dedup.Hash, sizes, idxs []int64) {
		if cap(s.refs) < len(hs) {
			s.refs = make([]dedup.ChunkRef, len(hs))
		}
		out := s.refs[:len(hs)]
		s.store.ClaimBatchRef(hs, sizes, s.atNs, s.user, out)
		if l := s.log; !l.full {
			for i, r := range out {
				l.refs[idxs[i]] = r
			}
		}
	})
}

// fleetStripeTotals is one stripe's integer accumulators.
type fleetStripeTotals struct {
	sessions, files, chunks                            int64
	contentBytes, wireBytes, dedupBytes, manifestBytes int64
	bucketSessions, bucketConns, bucketWire            []int64
}

// resolveSink is the second pass: ask the store who won each chunk,
// charge uploads to winners, and fold per-stripe load curves.
type resolveSink struct {
	cfg FleetConfig
	nb  int
	tot fleetStripeTotals

	// current session state
	user       int64
	atNs       int64
	at         time.Duration
	upload     int64 // content bytes this session uploads
	dedup      int64 // content bytes deduplicated away
	chunkCount int

	batch chunkBatch       // session-unique chunks awaiting WinnerBatch (hash path)
	gout  []bool           // per-group winner verdict scratch
	seen  []dedup.ChunkRef // session-unique refs already resolved (ref path)
}

func newResolveSink(cfg FleetConfig, nb int) *resolveSink {
	return &resolveSink{
		cfg: cfg,
		nb:  nb,
		tot: fleetStripeTotals{
			bucketSessions: make([]int64, nb),
			bucketConns:    make([]int64, nb),
			bucketWire:     make([]int64, nb),
		},
	}
}

func (s *resolveSink) StartSession(user int64, at time.Duration) {
	s.user, s.at, s.atNs = user, at, int64(at)
	s.upload, s.dedup, s.chunkCount = 0, 0, 0
	s.batch.reset()
	s.seen = s.seen[:0]
}

func (s *resolveSink) Chunk(h dedup.Hash, size int64) {
	s.chunkCount++
	// Within-session dedup: the client's manifest catches a repeated
	// chunk before the server is even asked. Sessions hold a handful
	// of chunks, so a linear scan of the buffered batch beats a map.
	for i := range s.batch.hashes {
		if s.batch.hashes[i] == h {
			s.dedup += size
			return
		}
	}
	s.batch.add(s.cfg.Store.ShardOf(h), h, size, 0)
}

// ChunkResolved is the replay surface (refSink): the chunk arrives as
// its claimed store entry, so the winner verdict is a direct entry
// read — no store probe, no lock. Equal chunks share one store entry,
// so within-session dedup is a ref compare; the verdicts and integer
// sums are exactly those of the hash path.
func (s *resolveSink) ChunkResolved(r dedup.ChunkRef, size int64) {
	s.chunkCount++
	for _, prev := range s.seen {
		if prev == r {
			s.dedup += size
			return
		}
	}
	s.seen = append(s.seen, r)
	if r.WonBy(s.atNs, s.user) {
		s.upload += size
	} else {
		s.dedup += size
	}
}

func (s *resolveSink) EndSession(files int) {
	// Hash path only (regeneration fallback): ask the store who won
	// the session's unique chunks, one WinnerBatch per shard group.
	// upload/dedup are plain integer sums, so the group order cannot
	// change the totals. On the ref path the batch is empty.
	s.batch.forEachShardGroup(func(hs []dedup.Hash, sizes, _ []int64) {
		if cap(s.gout) < len(hs) {
			s.gout = make([]bool, len(hs))
		}
		out := s.gout[:len(hs)]
		s.cfg.Store.WinnerBatch(hs, s.atNs, s.user, out)
		for i, won := range out {
			if won {
				s.upload += sizes[i]
			} else {
				s.dedup += sizes[i]
			}
		}
	})

	t := &s.tot
	t.sessions++
	t.files += int64(files)
	t.chunks += int64(s.chunkCount)
	t.contentBytes += s.upload + s.dedup
	t.dedupBytes += s.dedup
	manifest := client.ManifestBytes(s.chunkCount)
	wire := s.upload + manifest
	t.wireBytes += wire
	t.manifestBytes += manifest

	// Transfer model: one connection held for the handshake/commit
	// overhead plus the wire bytes at the per-connection rate.
	dur := s.cfg.ConnOverhead +
		time.Duration(float64(wire*8)/float64(s.cfg.UploadBps)*float64(time.Second))
	start, end := s.at, s.at+dur

	b0 := int(start / s.cfg.Bucket)
	b1 := int(end / s.cfg.Bucket)
	if b0 >= s.nb {
		b0 = s.nb - 1
	}
	if b1 >= s.nb {
		// Still in flight at day end: fold the tail into the final
		// bucket so totals stay exact.
		b1 = s.nb - 1
	}
	t.bucketSessions[b0]++
	// Spread the wire bytes over the buckets the transfer overlaps,
	// proportional to overlap, with the last bucket taking the exact
	// remainder so bucket sums equal session totals to the byte.
	var taken int64
	for b := b0; b <= b1; b++ {
		t.bucketConns[b]++
		if b == b1 {
			t.bucketWire[b] += wire - taken
			break
		}
		bucketEnd := time.Duration(b+1) * s.cfg.Bucket
		cum := int64(float64(wire) * float64(bucketEnd-start) / float64(dur))
		if cum > wire {
			cum = wire
		}
		if cum < taken {
			cum = taken
		}
		t.bucketWire[b] += cum - taken
		taken = cum
	}
}

// walkFleetStripe replays every session of the stripe's users in
// virtual-time order. A stripe owns users u ≡ stripe (mod Stripes);
// an event heap keyed (next instant, slot) pops the user with the
// earliest pending session, replays it, and reschedules the user at
// its next arrival. Per-user state is one heap slot and one RNG — the
// O(active users) memory the lazy-descriptor design buys.
func walkFleetStripe(cfg FleetConfig, starts []int, stripe int, sink fleetSink) {
	type userState struct {
		rng   *sim.RNG
		next  time.Duration
		sess  int32
		class int32
	}
	nUsers := (cfg.Users - stripe + cfg.Stripes - 1) / cfg.Stripes
	if nUsers <= 0 {
		return
	}
	slots := make([]userState, nUsers)
	h := fleetHeap{}
	h.grow(nUsers)

	class := int32(0)
	for i := 0; i < nUsers; i++ {
		u := stripe + i*cfg.Stripes
		for int(class) < len(cfg.Classes)-1 && u >= starts[class+1] {
			class++
		}
		// Session 0's RNG draws its own arrival instant first, then
		// its file mix when the session is replayed — so the whole
		// day of user u is a pure function of fleetSeed(seed, u, ·).
		rng := sim.NewRNG(fleetSeed(cfg.Seed, int64(u), 0))
		next := cfg.Classes[class].Arrival.Next(rng, 0)
		if next >= cfg.Day {
			continue // no sessions today
		}
		slots[i] = userState{rng: rng, next: next, class: class}
		h.push(next, int32(i))
	}

	for h.len() > 0 {
		_, slot := h.pop()
		st := &slots[slot]
		u := int64(stripe + int(slot)*cfg.Stripes)
		cls := &cfg.Classes[st.class]

		var tab *classTables
		if int(st.class) < len(cfg.tables) {
			tab = &cfg.tables[st.class]
		}
		sink.StartSession(u, st.next)
		files := genFleetSession(cls, int(st.class), tab, st.rng, sink)
		sink.EndSession(files)

		// Next session: a fresh per-(user, session) stream whose
		// first draws are its arrival instant. The slot's RNG is
		// reseeded in place — Reseed is bit-identical to a fresh
		// NewRNG, minus the per-session allocations.
		st.sess++
		st.rng.Reseed(fleetSeed(cfg.Seed, u, int64(st.sess)))
		next := cls.Arrival.Next(st.rng, st.next)
		if next >= cfg.Day {
			st.rng = nil
			continue
		}
		st.next = next
		h.push(next, slot)
	}
}

// genFleetSession emits one session's chunks: a uniform file count,
// each file either private (fresh seed from the session stream) or a
// catalog file picked with Zipf-like popularity. Returns the file
// count. tab is the class's precomputed generation table (nil falls
// back to the definitional derivations — same values, more work). The
// claim pass is the only generation pass — the resolve pass replays
// the recorded session log — but a log-budget fallback regenerates
// through exactly this code with identical RNG state, which is what
// keeps the fallback bit-exact.
func genFleetSession(cls *FleetClass, classIdx int, tab *classTables, rng *sim.RNG, sink fleetSink) int {
	files := cls.MinFiles
	if cls.MaxFiles > cls.MinFiles {
		files += rng.Intn(cls.MaxFiles - cls.MinFiles + 1)
	}
	for i := 0; i < files; i++ {
		var seed, size int64
		if rng.Float64() < cls.SharedFraction {
			var rank int
			if tab != nil {
				rank = zipfRankLog(rng.Float64(), cls.CatalogSize, tab.zipfLog)
			} else {
				rank = zipfRank(rng.Float64(), cls.CatalogSize)
			}
			// A catalog file is the same content for every user: its
			// size, chunk addresses and chunk sizes are pure functions
			// of its rank, so the table emits the recorded chunk
			// stream directly — no hashing per reference.
			if tab != nil && rank < len(tab.catalog) {
				for j := tab.chunkOff[rank]; j < tab.chunkOff[rank+1]; j++ {
					sink.Chunk(tab.chunkHashes[j], tab.chunkSizes[j])
				}
				continue
			}
			seed = catalogSeed(classIdx, rank)
			size = logUniformBytes(sim.NewRNG(seed), cls.MinFileBytes, cls.MaxFileBytes)
		} else {
			seed = rng.Int63()
			if tab != nil {
				size = logUniformBytesLog(rng, cls.MinFileBytes, cls.MaxFileBytes, tab.sizeLog)
			} else {
				size = logUniformBytes(rng, cls.MinFileBytes, cls.MaxFileBytes)
			}
		}
		for off := int64(0); off < size; off += cls.ChunkBytes {
			ln := size - off
			if ln > cls.ChunkBytes {
				ln = cls.ChunkBytes
			}
			sink.Chunk(fleetChunkHash(seed, size, off, ln), ln)
		}
	}
	return files
}

// fleetChunkHash is the content address of one chunk of a lazy fleet
// file. Generated content is a pure function of its descriptor
// stream, so the (seed, size, window) tuple identifies the bytes a
// real client would hash — the same identity argument the
// compressor's descriptor-keyed size cache makes — and a million-user
// day never materialises a chunk to address it.
func fleetChunkHash(seed, size, off, ln int64) dedup.Hash {
	var b [33]byte
	b[0] = 0xFC // fleet-chunk domain tag
	binary.LittleEndian.PutUint64(b[1:], uint64(seed))
	binary.LittleEndian.PutUint64(b[9:], uint64(size))
	binary.LittleEndian.PutUint64(b[17:], uint64(off))
	binary.LittleEndian.PutUint64(b[25:], uint64(ln))
	return dedup.HashBytes(b[:])
}

// fleetSeed derives the RNG seed of one (user, session) cell from the
// fleet base seed — the index→seed discipline of campaignSeed, pushed
// through a SplitMix64 finalizer per level so neighbouring cells share
// no low-bit structure.
func fleetSeed(base, user, sess int64) int64 {
	z := mix64(uint64(base) + 0x9e3779b97f4a7c15*uint64(user+1))
	return int64(mix64(z + 0x9e3779b97f4a7c15*uint64(sess+1)))
}

// catalogSeed names popular file rank within a class's shared
// catalog: a pure function, so every user's reference to rank r is
// the same content.
func catalogSeed(class, rank int) int64 {
	z := 0x9e3779b97f4a7c15*uint64(class+1) ^ 0xCA7A106C0FFEE
	return int64(mix64(z + uint64(rank+1)*0xbf58476d1ce4e5b9))
}

// mix64 is the SplitMix64 finalizer (the same mixing sim.RNG.ForkSeed
// uses), the standard avalanche for index→seed derivation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// zipfRank maps a uniform draw to a catalog rank with Zipf-like
// (s≈1) popularity via the inverse CDF of the continuous envelope:
// rank 0 is the most popular file, mass falling off as 1/(rank+1).
func zipfRank(u float64, n int) int {
	if n <= 1 {
		return 0
	}
	return zipfRankLog(u, n, math.Log(float64(n)+1))
}

// zipfRankLog is zipfRank with the envelope constant Log(n+1) hoisted
// by the caller (classTables.zipfLog); bit-identical to zipfRank.
func zipfRankLog(u float64, n int, logN float64) int {
	if n <= 1 {
		return 0
	}
	r := int(math.Exp(u*logN)) - 1
	if r < 0 {
		r = 0
	}
	if r >= n {
		r = n - 1
	}
	return r
}

// logUniformBytes draws a file size log-uniformly from [lo, hi].
func logUniformBytes(rng *sim.RNG, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return logUniformBytesLog(rng, lo, hi, math.Log(float64(hi)/float64(lo)))
}

// logUniformBytesLog is logUniformBytes with the span constant
// Log(hi/lo) hoisted by the caller (classTables.sizeLog);
// bit-identical to logUniformBytes.
func logUniformBytesLog(rng *sim.RNG, lo, hi int64, logRatio float64) int64 {
	if hi <= lo {
		return lo
	}
	v := int64(float64(lo) * math.Exp(rng.Float64()*logRatio))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// fleetHeap is a binary min-heap of (instant, slot) pairs — the
// stripe's virtual-time event queue. Ties break on slot, so pop order
// is a pure function of the events.
type fleetHeap struct {
	t    []time.Duration
	slot []int32
}

func (h *fleetHeap) len() int { return len(h.t) }

func (h *fleetHeap) grow(n int) {
	h.t = make([]time.Duration, 0, n)
	h.slot = make([]int32, 0, n)
}

func (h *fleetHeap) less(i, j int) bool {
	return h.t[i] < h.t[j] || (h.t[i] == h.t[j] && h.slot[i] < h.slot[j])
}

func (h *fleetHeap) swap(i, j int) {
	h.t[i], h.t[j] = h.t[j], h.t[i]
	h.slot[i], h.slot[j] = h.slot[j], h.slot[i]
}

func (h *fleetHeap) push(t time.Duration, slot int32) {
	h.t = append(h.t, t)
	h.slot = append(h.slot, slot)
	i := len(h.t) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *fleetHeap) pop() (time.Duration, int32) {
	t, slot := h.t[0], h.slot[0]
	last := len(h.t) - 1
	h.swap(0, last)
	h.t, h.slot = h.t[:last], h.slot[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && h.less(l, min) {
			min = l
		}
		if r < last && h.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		h.swap(i, min)
		i = min
	}
	return t, slot
}

// FleetPopulationPoint is one (population, dedup) sample of a
// population sweep.
type FleetPopulationPoint struct {
	Users        int     `json:"users"`
	DedupRatio   float64 `json:"dedup_ratio"`
	ContentBytes int64   `json:"content_bytes"`
	WireBytes    int64   `json:"wire_bytes"`
	UniqueChunks int     `json:"unique_chunks"`
	StoredBytes  int64   `json:"stored_bytes"`
}

// FleetPopulationSweep runs the same fleet day at several population
// sizes (each against a fresh backend) and reports how cross-user
// dedup scales with population — the fleet-level form of the paper's
// Sect. 4.3 observation. The points fan out over the shared RunN
// budget — each owns a fresh backend, so they are independent cells —
// and land in population order; a fleet day is itself bit-identical at
// any worker count, so the sweep is too (pinned by
// TestFleetPopulationSweepWorkerEquivalence).
func FleetPopulationSweep(cfg FleetConfig, populations []int, workers int) []FleetPopulationPoint {
	return RunN(len(populations), workers, func(i int) FleetPopulationPoint {
		c := cfg
		c.Users = populations[i]
		c.Store = nil // fresh backend per population
		r := RunFleet(c, workers)
		return FleetPopulationPoint{
			Users:        populations[i],
			DedupRatio:   r.DedupRatio,
			ContentBytes: r.ContentBytes,
			WireBytes:    r.WireBytes,
			UniqueChunks: r.UniqueChunks,
			StoredBytes:  r.StoredBytes,
		}
	})
}

// String summarises a fleet day for driver output.
func (r FleetResult) String() string {
	return fmt.Sprintf("users=%d sessions=%d files=%d chunks=%d content=%dB wire=%dB dedup=%.3f peak=%.0fbps conns=%d",
		r.Users, r.Sessions, r.Files, r.Chunks, r.ContentBytes, r.WireBytes, r.DedupRatio, r.PeakBps, r.PeakConns)
}
