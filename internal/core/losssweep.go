package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The paper's Sect. 5 long-distance results and the WhatIfLossyPath
// counterfactual live on lossy paths. With the analytic lossy engine
// (internal/tcpsim/loss.go) a lossy repetition costs O(losses), so a
// full service x loss-rate matrix is as affordable as any other
// campaign layer. This file is that matrix: reproducible loss curves
// from the CLI (cloudbench -loss) and a lossy section of the
// persisted campaign, so baselines pin the lossy engine's behaviour
// the way Fig. 6 pins the clean one.

// LossCell is one point of a loss sweep: one service's summarized
// repetitions of a fixed workload at one segment-loss rate.
type LossCell struct {
	Service  string         `json:"service"`
	LossRate float64        `json:"loss_rate"`
	Workload workload.Batch `json:"workload"`
	Summary  Summary        `json:"summary"`
}

// DefaultLossRates is the loss axis used by the campaign's lossy
// section and cloudbench's default sweep — the rates the equivalence
// suite pins (0.5%, 2%, 8%).
var DefaultLossRates = []float64{0.005, 0.02, 0.08}

// DefaultLossBatch is the loss-sweep workload: one 1 MB upload, deep
// enough to leave slow start on every profile path yet cheap enough
// to repeat across the full matrix.
var DefaultLossBatch = workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}

// lossSweepSeed derives the seed of one (service, rate, repetition)
// cell: a per-cell base spread by distinct primes, repetitions spread
// by campaignSeed — the same index→seed discipline as fig6Seed.
func lossSweepSeed(seed int64, si, ri, rep int) int64 {
	return campaignSeed(seed+int64(si)*1000003+int64(ri)*10007, rep)
}

// RunSyncLossy is one repetition of a synchronization benchmark over
// a lossy path from an arbitrary vantage: RunSyncFrom with the
// network's segment-loss rate set before any traffic (login and
// settle traffic share the lossy path, as they would in the paper's
// testbed under netem).
func RunSyncLossy(p client.Profile, batch workload.Batch, v Vantage, seed int64, jitter, loss float64) Metrics {
	tb := assembleTestbed(p, cloud.SpecFor(p.Service), vantageHost(v), sim.NewRNG(seed), jitter, true)
	tb.Net.LossRate = loss
	start := tb.Settle()
	t0 := tb.Clock.Now()
	tb.StartWindow(t0)
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	return MeasureWindow(tb, t0, batch.Total())
}

// LossSweep runs the service x loss-rate matrix for one workload from
// the given vantage: reps repetitions per cell, the whole matrix
// flattened onto the shared scheduler pool like every other campaign
// layer. Results are ordered service-major, rate-minor, and are
// bit-identical at any worker count.
func LossSweep(profiles []client.Profile, rates []float64, batch workload.Batch, v Vantage, reps int, seed int64) []LossCell {
	if reps <= 0 {
		reps = DefaultReps
	}
	perCell := reps
	perSvc := len(rates) * perCell
	runs := RunN(len(profiles)*perSvc, CampaignWorkers, func(i int) Metrics {
		si, rest := i/perSvc, i%perSvc
		ri, rep := rest/perCell, rest%perCell
		return RunSyncLossy(profiles[si], batch, v, lossSweepSeed(seed, si, ri, rep), DefaultJitter, rates[ri])
	})
	out := make([]LossCell, 0, len(profiles)*len(rates))
	for si, p := range profiles {
		for ri, rate := range rates {
			lo := si*perSvc + ri*perCell
			out = append(out, LossCell{
				Service:  p.Service,
				LossRate: rate,
				Workload: batch,
				Summary:  Summarize(runs[lo : lo+perCell]),
			})
		}
	}
	return out
}
