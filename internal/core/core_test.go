package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestTestbedSettleSeparatesLogin(t *testing.T) {
	tb := NewTestbed(client.Dropbox(), 1, 0)
	start := tb.Settle()
	if !start.After(tb.Client.LoginDone()) {
		t.Fatal("Settle must end after login")
	}
	// All login traffic predates the benchmark start.
	win := tb.Cap.Window(start, trace.FarFuture)
	if win.Len() != 0 {
		t.Fatalf("traffic after settle: %d packets", win.Len())
	}
}

func TestRunSyncProducesMetrics(t *testing.T) {
	m := RunSync(client.Dropbox(), workload.Batch{Count: 1, Size: 100_000, Kind: workload.Binary}, 2, 0)
	if m.Startup <= 0 || m.Completion <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.TotalTraffic < 100_000 {
		t.Fatalf("total traffic %d below content size", m.TotalTraffic)
	}
	if m.Overhead <= 1.0 {
		t.Fatalf("overhead %f must exceed 1 (content + protocol)", m.Overhead)
	}
	if m.GoodputBps <= 0 {
		t.Fatal("no goodput")
	}
}

func TestSummarizeAggregates(t *testing.T) {
	runs := []Metrics{
		{Startup: 2 * time.Second, Completion: 4 * time.Second, TotalTraffic: 100, Overhead: 1.5, Connections: 2, GoodputBps: 10},
		{Startup: 4 * time.Second, Completion: 8 * time.Second, TotalTraffic: 200, Overhead: 2.5, Connections: 4, GoodputBps: 30},
	}
	s := Summarize(runs)
	if s.Reps != 2 || s.MeanStartup != 3*time.Second || s.MeanCompletion != 6*time.Second {
		t.Fatalf("summary: %+v", s)
	}
	if s.MeanOverhead != 2.0 || s.MeanConnections != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if s.StdStartup != time.Second {
		t.Fatalf("std startup = %v", s.StdStartup)
	}
	if s.MedianGoodputBps != 20 { // interpolated median
		t.Fatalf("median goodput = %v, want 20", s.MedianGoodputBps)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestRunCampaignDispersion(t *testing.T) {
	const reps = 6
	s := RunCampaign(client.Wuala(), workload.Batch{Count: 1, Size: 100_000, Kind: workload.Binary}, reps, 3)
	if s.Reps != reps {
		t.Fatalf("reps = %d, want %d", s.Reps, reps)
	}
	if s.StdCompletion <= 0 {
		t.Fatal("repetitions show no dispersion; jitter is not applied")
	}
}

// ---- Fig. 1 ----

func TestRunIdleMatchesPaperRates(t *testing.T) {
	// Sect. 3.1: Dropbox ~82 b/s, SkyDrive ~32 b/s, Wuala ~60 b/s,
	// Google Drive ~42 b/s, Cloud Drive ~6 kb/s.
	want := map[string][2]float64{
		"dropbox":     {40, 160},
		"skydrive":    {15, 70},
		"wuala":       {30, 120},
		"googledrive": {20, 90},
		"clouddrive":  {3000, 12000},
	}
	for _, p := range client.Profiles() {
		r := RunIdle(p, 4)
		lo, hi := want[p.Service][0], want[p.Service][1]
		if r.IdleRateBps < lo || r.IdleRateBps > hi {
			t.Errorf("%s idle rate = %.0f b/s, want [%.0f, %.0f]", p.Service, r.IdleRateBps, lo, hi)
		}
		if len(r.Timeline) == 0 {
			t.Errorf("%s: empty timeline", p.Service)
		}
		// Timeline must be monotonic.
		for i := 1; i < len(r.Timeline); i++ {
			if r.Timeline[i].Bytes < r.Timeline[i-1].Bytes {
				t.Errorf("%s: non-monotonic cumulative bytes", p.Service)
				break
			}
		}
	}
}

func TestRunIdleLoginVolumes(t *testing.T) {
	sky := RunIdle(client.SkyDrive(), 5)
	drop := RunIdle(client.Dropbox(), 5)
	// "SkyDrive requires about 150 kB in total, 4 times more than
	// others."
	if sky.LoginBytes < 3*drop.LoginBytes {
		t.Fatalf("SkyDrive login %d should be ~4x Dropbox %d", sky.LoginBytes, drop.LoginBytes)
	}
}

// ---- Fig. 3 ----

func TestRunSYNCountFig3(t *testing.T) {
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	gd := RunSYNCount(client.GoogleDrive(), batch, 6)
	cd := RunSYNCount(client.CloudDrive(), batch, 6)
	// "100 and 400 connections are opened respectively."
	if n := len(gd.Times); n < 95 || n > 115 {
		t.Fatalf("Google Drive SYNs = %d, want ~100", n)
	}
	if n := len(cd.Times); n < 390 || n > 420 {
		t.Fatalf("Cloud Drive SYNs = %d, want ~400", n)
	}
	// "requiring 30 s and 55 s to complete the upload" — shape: both
	// tens of seconds, Cloud Drive slower.
	if gd.Duration < 15*time.Second || gd.Duration > 70*time.Second {
		t.Fatalf("Google Drive duration = %v", gd.Duration)
	}
	if cd.Duration <= gd.Duration {
		t.Fatalf("Cloud Drive (%v) should be slower than Google Drive (%v)", cd.Duration, gd.Duration)
	}
}

// ---- Table 1 ----

func TestDetectCapabilitiesTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full capability sweep is long")
	}
	want := map[string]Capabilities{
		"dropbox":     {Chunking: "4 MB", Bundling: true, Compression: "always", Dedup: true, DedupAfterDelete: true, DeltaEncoding: true},
		"skydrive":    {Chunking: "var.", Bundling: false, Compression: "no", Dedup: false, DedupAfterDelete: false, DeltaEncoding: false},
		"wuala":       {Chunking: "var.", Bundling: false, Compression: "no", Dedup: true, DedupAfterDelete: true, DeltaEncoding: false},
		"googledrive": {Chunking: "8 MB", Bundling: false, Compression: "smart", Dedup: false, DedupAfterDelete: false, DeltaEncoding: false},
		"clouddrive":  {Chunking: "no", Bundling: false, Compression: "no", Dedup: false, DedupAfterDelete: false, DeltaEncoding: false},
	}
	for _, p := range client.Profiles() {
		got := DetectCapabilities(p, 7)
		w := want[p.Service]
		if got.Chunking != w.Chunking {
			t.Errorf("%s chunking = %q, want %q", p.Service, got.Chunking, w.Chunking)
		}
		if got.Bundling != w.Bundling {
			t.Errorf("%s bundling = %v, want %v", p.Service, got.Bundling, w.Bundling)
		}
		if got.Compression != w.Compression {
			t.Errorf("%s compression = %q, want %q", p.Service, got.Compression, w.Compression)
		}
		if got.Dedup != w.Dedup || got.DedupAfterDelete != w.DedupAfterDelete {
			t.Errorf("%s dedup = %v/%v, want %v/%v", p.Service, got.Dedup, got.DedupAfterDelete, w.Dedup, w.DedupAfterDelete)
		}
		if got.DeltaEncoding != w.DeltaEncoding {
			t.Errorf("%s delta = %v, want %v", p.Service, got.DeltaEncoding, w.DeltaEncoding)
		}
	}
}

// ---- Fig. 2 / discovery ----

func TestDiscoverGoogleDriveEdges(t *testing.T) {
	d := Discover(client.GoogleDrive(), 8)
	// "Overall, more than 100 different entry points have been
	// located."
	if d.EdgeCount() <= 100 {
		t.Fatalf("edge count = %d, want > 100", d.EdgeCount())
	}
	if d.LocatedFraction() < 0.9 {
		t.Fatalf("located %.0f%%, want >= 90%%", 100*d.LocatedFraction())
	}
	if len(d.Countries) < 20 {
		t.Fatalf("countries = %d, want world-wide spread", len(d.Countries))
	}
	owners := strings.Join(d.Owners, " ")
	if !strings.Contains(owners, "Google") {
		t.Fatalf("owners = %v", d.Owners)
	}
}

func TestDiscoverDropboxOwnership(t *testing.T) {
	d := Discover(client.Dropbox(), 9)
	owners := strings.Join(d.Owners, " ")
	// Control on Dropbox's own network, storage on Amazon.
	if !strings.Contains(owners, "Dropbox") || !strings.Contains(owners, "Amazon") {
		t.Fatalf("owners = %v", d.Owners)
	}
	// Names must separate control, storage and notification.
	names := strings.Join(d.Names, " ")
	for _, want := range []string{"control", "storage", "notify"} {
		if !strings.Contains(names, want) {
			t.Fatalf("names = %v, missing %s", d.Names, want)
		}
	}
}

func TestDiscoverWualaEuropeanFootprint(t *testing.T) {
	d := Discover(client.Wuala(), 10)
	// All located servers must be in Europe (Sect. 3.2).
	for _, s := range d.Servers {
		if !s.Location.Located() {
			continue
		}
		c := s.Location.Coord
		if c.Lon < -12 || c.Lon > 25 || c.Lat < 38 || c.Lat > 58 {
			t.Fatalf("Wuala server %s located at %v — outside Europe", s.IP, c)
		}
	}
	if len(d.Owners) < 2 {
		t.Fatalf("Wuala should span multiple hosting providers: %v", d.Owners)
	}
}

// ---- reports ----

func TestTable1Rendering(t *testing.T) {
	caps := map[string]Capabilities{
		"dropbox":  {Service: "dropbox", Chunking: "4 MB", Bundling: true, Compression: "always", Dedup: true, DeltaEncoding: true},
		"skydrive": {Service: "skydrive", Chunking: "var.", Compression: "no"},
	}
	out := Table1(caps, []string{"dropbox", "skydrive"})
	for _, want := range []string{"Dropbox", "SkyDrive", "4 MB", "var.", "always", "Chunking", "Delta-encoding"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestReportsRender(t *testing.T) {
	idle := []IdleResult{{Service: "dropbox", LoginBytes: 35000, IdleRateBps: 82}}
	if out := Fig1Report(idle); !strings.Contains(out, "Dropbox") || !strings.Contains(out, "82") {
		t.Fatalf("Fig1Report:\n%s", out)
	}
	csv := VolumeSeriesCSV("dropbox-append", []VolumePoint{{FileSize: 1024, Upload: 2048}})
	if csv != "dropbox-append,1024,2048\n" {
		t.Fatalf("VolumeSeriesCSV: %q", csv)
	}
	s := SYNSeries{Service: "clouddrive", Times: []time.Duration{time.Second, 2 * time.Second}}
	if out := SYNSeriesCSV(s); !strings.Contains(out, "clouddrive,1.000,1") {
		t.Fatalf("SYNSeriesCSV: %q", out)
	}
	if FormatDuration(300*time.Millisecond) != "300 ms" || FormatDuration(4*time.Second) != "4.0 s" {
		t.Fatal("FormatDuration")
	}
}

func TestFig6ReportRendering(t *testing.T) {
	r := Fig6Result{
		Service:   "dropbox",
		Workloads: workload.StandardBenchmarks(workload.Binary),
		Summaries: []Summary{
			{MeanStartup: time.Second, MeanCompletion: 2 * time.Second, MeanOverhead: 1.4},
			{MeanStartup: time.Second, MeanCompletion: 3 * time.Second, MeanOverhead: 1.2},
			{MeanStartup: 2 * time.Second, MeanCompletion: 4 * time.Second, MeanOverhead: 1.5},
			{MeanStartup: 3 * time.Second, MeanCompletion: 10 * time.Second, MeanOverhead: 2.2},
		},
	}
	out := Fig6Report([]Fig6Result{r})
	for _, want := range []string{"Fig 6(a)", "Fig 6(b)", "Fig 6(c)", "100x10kB", "Dropbox"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig6Report missing %q:\n%s", want, out)
		}
	}
}

func TestStorageFilterWualaHeuristic(t *testing.T) {
	// Wuala has no control/storage name split: the filter must fall
	// back to connection sequences (flows opened after the workload)
	// and flow sizes, and must exclude the login-era control session.
	tb := NewTestbed(client.Wuala(), 91, 0)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	workload.Batch{Count: 2, Size: 200 << 10, Kind: workload.Binary}.
		Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)

	filter := tb.StorageFilter(t0)
	var storageFlows, controlFlows int
	for _, f := range tb.Cap.Flows() {
		if filter(f) {
			storageFlows++
			if f.OpenedAt.Before(t0) {
				t.Errorf("login-era flow %d classified as storage", f.ID)
			}
		} else {
			controlFlows++
		}
	}
	if storageFlows == 0 || controlFlows == 0 {
		t.Fatalf("classification degenerate: %d storage, %d control", storageFlows, controlFlows)
	}
	// The classified storage traffic must carry the content volume.
	win := tb.Cap.Window(t0, trace.FarFuture)
	up := win.WireBytesDir(filter, trace.Upstream)
	if up < 400<<10 {
		t.Fatalf("storage upstream = %d, want >= content", up)
	}
}

func TestEstimateRTTFromHandshake(t *testing.T) {
	tb := NewTestbed(client.SkyDrive(), 92, 0)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	tb.Folder.Create(t0, "f.bin", workload.Generate(tb.RNG, workload.Binary, 50_000))
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)

	rtt := estimateRTT(tb.Cap, tb.StorageFilter(t0))
	// SkyDrive storage sits in the US: the sniffer-estimated RTT must
	// land in the transatlantic/transcontinental band.
	if rtt < 80*time.Millisecond || rtt > 220*time.Millisecond {
		t.Fatalf("estimated RTT = %v, want 80-220 ms", rtt)
	}
	// Fallback path: no SYNs matching the filter.
	none := estimateRTT(tb.Cap, func(trace.FlowInfo) bool { return false })
	if none != fallbackRTT {
		t.Fatalf("fallback RTT = %v, want %v", none, fallbackRTT)
	}
}
