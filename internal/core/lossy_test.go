package core

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/goldenfile"
	"repro/internal/tcpsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The closed-form transport engine covers lossy paths too: the next
// loss position is sampled geometrically and the clean runs between
// losses collapse into span records (see internal/tcpsim/loss.go).
// This file is the end-to-end guard for that path: a golden campaign
// cell over a lossy network pins the retransmission accounting bit
// for bit, so the analytic lossy engine can never silently drift from
// the accounting conventions the event-loop reference defines.

// lossyRun drives one repetition over a path with the given loss rate
// and returns its metrics plus (in buffered mode) the capture.
func lossyRun(p client.Profile, batch workload.Batch, seed int64, loss float64, streaming bool) (Metrics, *trace.Capture) {
	var tb *Testbed
	if streaming {
		tb = NewStreamingTestbed(p, seed, 0)
	} else {
		tb = NewTestbed(p, seed, 0)
	}
	tb.Net.LossRate = loss
	start := tb.Settle()
	t0 := tb.Clock.Now()
	tb.StartWindow(t0)
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	return MeasureWindow(tb, t0, batch.Total()), tb.Cap
}

// countRetransmits counts fast-retransmit records: MSS-sized wire-only
// segments with no payload, exactly as tcpsim emits them.
func countRetransmits(cap *trace.Capture) int {
	n := 0
	for _, p := range cap.ExpandedPackets() {
		if p.Payload == 0 && p.Segments == 1 &&
			p.Wire == tcpsim.MSS+tcpsim.HeaderPerSeg &&
			!p.Flags.SYN && !p.Flags.FIN && !p.Flags.RST {
			n++
		}
	}
	return n
}

// TestGoldenLossyCampaign pins a lossy repetition end to end: the
// retransmit count and every Sect. 5 metric, captured at a fixed
// seed, on the SkyDrive profile (slowest per-connection rate, so the
// 2 MB workload spends many rounds in the rate-limited regime where
// loss verdicts fall). Values live in testdata/golden_lossy.json and
// were regenerated for the analytic lossy engine (geometric
// next-loss sampling replaces the per-round draws, so the realized
// loss pattern at a given seed changes); sanctioned refreshes run
// scripts/regen-golden.sh.
func TestGoldenLossyCampaign(t *testing.T) {
	batch := workload.Batch{Count: 2, Size: 1 << 20, Kind: workload.Binary}
	p := client.SkyDrive()

	m, cap := lossyRun(p, batch, 99, 0.02, false)

	got := struct {
		Metrics     Metrics
		Retransmits int
	}{m, countRetransmits(cap)}
	goldenfile.Check(t, "testdata/golden_lossy.json", got)
	if got.Retransmits == 0 {
		t.Error("lossy run produced no retransmissions; the cell no longer exercises the loss process")
	}
	if cap.SpanCount() == 0 {
		t.Error("lossy trace contains no span records; clean runs between losses should collapse")
	}

	// A clean run of the same cell must beat the lossy one on both
	// wire volume and completion — retransmissions are pure overhead.
	clean, _ := lossyRun(p, batch, 99, 0, false)
	if clean.TotalTraffic >= m.TotalTraffic {
		t.Errorf("lossy run carried no extra wire bytes: %d vs clean %d", m.TotalTraffic, clean.TotalTraffic)
	}
	if clean.Completion >= m.Completion {
		t.Errorf("lossy run was not slower: %v vs clean %v", m.Completion, clean.Completion)
	}
}

// TestLossyStreamingMatchesBuffered extends the streaming-vs-buffered
// equivalence to lossy paths: the streaming fold must agree with the
// buffered trace bit for bit even when the engine interleaves span
// records with retransmissions.
func TestLossyStreamingMatchesBuffered(t *testing.T) {
	batch := workload.Batch{Count: 2, Size: 1 << 20, Kind: workload.Binary}
	for _, svc := range []string{"skydrive", "dropbox", "googledrive"} {
		p, _ := client.ProfileFor(svc)
		sm, _ := lossyRun(p, batch, 7, 0.03, true)
		bm, _ := lossyRun(p, batch, 7, 0.03, false)
		if sm != bm {
			t.Errorf("%s: lossy streaming metrics diverge\n stream %+v\n buffer %+v", svc, sm, bm)
		}
	}
}
