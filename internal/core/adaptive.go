package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file is the adaptive sampling engine: campaigns that run until
// the answer is tight instead of until a fixed repetition budget runs
// out (the sequential stopping design of "Sampling in Cloud
// Benchmarking", PAPERS.md). A cell repeats in fixed-size batches,
// folds each batch into an incremental precision tracker
// (stats.Accumulator — O(batch) per check, not O(reps so far)), and
// stops once the relative CI95 half-width of the headline metrics
// (completion, goodput) is under target or a hard cap is hit.
//
// Determinism: the stopping decision is a pure function of (seed,
// rule). Batch boundaries are fixed constants of the rule — never
// derived from the worker count — and the tracker folds repetitions in
// index order, so the reps executed and the resulting Summary are
// bit-identical at any worker count; -parallel only changes
// wall-clock time. Fixed-rep campaigns (RunCampaign, Fig6Matrix, ...)
// remain the reference path, the way tcpsim keeps its event loop
// behind Dialer.ForceEventLoop.

// Default stopping parameters: stop when the headline means are known
// to ±5%, never before 8 repetitions (below that the t critical value
// explodes and one outlier flips the decision), never beyond 96.
const (
	DefaultTargetRelHW = 0.05
	DefaultMinReps     = 8
	DefaultMaxReps     = 96
)

// AdaptiveBatch is the growth step of the sequential design: after
// the MinReps opening batch, repetitions are added this many at a
// time between precision checks. It is a fixed constant — batch
// boundaries gate the stopping test, so they must not depend on the
// worker count or the decision would change with -parallel.
const AdaptiveBatch = 4

// StopRule is a sequential stopping design: run at least MinReps
// repetitions, then keep adding batches until the relative CI95
// half-width of every headline metric is at most TargetRelHW or
// MaxReps is reached. Zero fields take the defaults above.
type StopRule struct {
	// TargetRelHW is the precision target: the CI95 half-width of
	// the mean, relative to the magnitude of the mean.
	TargetRelHW float64
	// MinReps is the smallest sample the rule may stop at (>= 2, so
	// a half-width exists; >= 4 under antithetic pairing).
	MinReps int
	// MaxReps is the hard budget cap.
	MaxReps int
}

// withDefaults resolves zero fields and orders the bounds. vr widens
// the minimum under antithetic pairing: the stopping statistic is
// then computed over pair means, so a decision needs at least two
// complete pairs, and bounds are rounded to whole pairs.
func (r StopRule) withDefaults(vr VarianceReduction) StopRule {
	if r.TargetRelHW <= 0 {
		r.TargetRelHW = DefaultTargetRelHW
	}
	if r.MinReps <= 0 {
		r.MinReps = DefaultMinReps
	}
	if r.MinReps < 2 {
		r.MinReps = 2
	}
	if r.MaxReps <= 0 {
		r.MaxReps = DefaultMaxReps
	}
	if vr.Antithetic {
		r.MinReps += r.MinReps % 2
		if r.MinReps < 4 {
			r.MinReps = 4
		}
		r.MaxReps += r.MaxReps % 2
	}
	if r.MaxReps < r.MinReps {
		r.MaxReps = r.MinReps
	}
	return r
}

// VarianceReduction selects the variance-reduction techniques the
// index→seed discipline makes nearly free. Both shrink the achieved
// half-width at equal repetitions — i.e. hit the target with fewer —
// and both keep every stream per-cell deterministic.
type VarianceReduction struct {
	// Antithetic pairs repetitions: rep 2k+1 reuses rep 2k's seed on
	// the complemented PCG stream (sim.NewAntitheticRNG), so its
	// jitter draws mirror its twin's and pair means have less
	// variance than two independent repetitions. The stopping
	// statistic is computed over pair means.
	Antithetic bool
	// CRN gives every service the same repetition seed stream
	// (common random numbers) in the multi-service sweeps, so
	// cross-service Compare diffs are paired: services face
	// identical noise and their difference is not inflated by it.
	// The Fig. 6 matrix already has this property by construction
	// (fig6Seed carries no service index).
	CRN bool
}

// RunUntil is the generic batched sequential driver under every
// adaptive layer. It evaluates run(0..) in fixed-size batches on the
// shared worker pool (RunN) and consults stop after each batch with
// that batch's results, in index order; stop reports whether the
// accumulated sample satisfies the rule. The first batch has MinReps
// cells, later ones AdaptiveBatch, the last is clipped to MaxReps —
// all constants of the rule, so which repetitions execute is a pure
// function of (rule, stop), independent of workers.
func RunUntil[T any](rule StopRule, workers int, run func(rep int) T, stop func(batch []T) bool) []T {
	rule = rule.withDefaults(VarianceReduction{})
	results := make([]T, 0, rule.MinReps+AdaptiveBatch)
	for len(results) < rule.MaxReps {
		size := AdaptiveBatch
		if len(results) == 0 {
			size = rule.MinReps
		}
		if rest := rule.MaxReps - len(results); size > rest {
			size = rest
		}
		base := len(results)
		batch := RunN(size, workers, func(i int) T { return run(base + i) })
		results = append(results, batch...)
		if stop(batch) {
			break
		}
	}
	return results
}

// precisionTracker folds repetitions into the incremental stopping
// statistic: one stats.Accumulator per headline metric, over raw
// repetitions or — under antithetic pairing — over the means of
// consecutive (plain, complemented) pairs.
type precisionTracker struct {
	pair                bool
	pending             bool
	pendC, pendG        float64
	completion, goodput stats.Accumulator
}

func (t *precisionTracker) observe(m Metrics) {
	c, g := float64(m.Completion), m.GoodputBps
	if !t.pair {
		t.completion.Add(c)
		t.goodput.Add(g)
		return
	}
	if !t.pending {
		t.pendC, t.pendG, t.pending = c, g, true
		return
	}
	t.completion.Add((t.pendC + c) / 2)
	t.goodput.Add((t.pendG + g) / 2)
	t.pending = false
}

// relHW is the current stopping statistic: the worst relative CI95
// half-width over the headline metrics.
func (t *precisionTracker) relHW() float64 {
	r := t.completion.RelHalfWidth()
	if g := t.goodput.RelHalfWidth(); g > r {
		r = g
	}
	return r
}

// vrRNG builds the repetition's randomness root: the plain PCG stream,
// or its complemented twin for the odd half of an antithetic pair.
func vrRNG(seed int64, anti bool) *sim.RNG {
	if anti {
		return sim.NewAntitheticRNG(seed)
	}
	return sim.NewRNG(seed)
}

// adaptiveSummary runs one experiment cell under a stopping rule:
// repSeed maps a repetition index to its seed (the cell's slice of
// the index→seed discipline), cell executes one repetition on the
// given randomness root. Under antithetic pairing rep 2k+1 reuses
// rep 2k's seed on the complemented stream.
func adaptiveSummary(rule StopRule, vr VarianceReduction, repSeed func(rep int) int64, cell func(rng *sim.RNG) Metrics) Summary {
	rule = rule.withDefaults(vr)
	tr := &precisionTracker{pair: vr.Antithetic}
	runs := RunUntil(rule, CampaignWorkers, func(rep int) Metrics {
		anti := false
		if vr.Antithetic {
			anti = rep%2 == 1
			rep -= rep % 2
		}
		return cell(vrRNG(repSeed(rep), anti))
	}, func(batch []Metrics) bool {
		for _, m := range batch {
			tr.observe(m)
		}
		return tr.relHW() <= rule.TargetRelHW
	})
	s := Summarize(runs)
	// The per-rep summary stands, but the achieved precision is the
	// statistic the rule actually tested (pair means under
	// antithetic), so the recorded value is the one that gated
	// stopping.
	s.AchievedRelHW = tr.relHW()
	return s
}

// runSyncRNG is the synchronization benchmark repetition generalised
// over its randomness root: RunSync / RunSyncFrom / RunSyncLossy with
// an explicit RNG, so adaptive cells can inject antithetic streams.
// loss <= 0 leaves the path clean.
func runSyncRNG(p client.Profile, batch workload.Batch, host *netem.Host, rng *sim.RNG, jitter, loss float64) Metrics {
	tb := assembleTestbed(p, cloud.SpecFor(p.Service), host, rng, jitter, true)
	if loss > 0 {
		tb.Net.LossRate = loss
	}
	start := tb.Settle()
	t0 := tb.Clock.Now()
	tb.StartWindow(t0)
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	return MeasureWindow(tb, t0, batch.Total())
}

// RunCampaignAdaptive is RunCampaign with a stopping rule: the same
// campaignSeed repetition stream as the fixed-rep engine (rep k of an
// adaptive run is bit-identical to rep k of a plain campaign when vr
// is zero), stopped as soon as the precision target is met.
func RunCampaignAdaptive(p client.Profile, batch workload.Batch, rule StopRule, vr VarianceReduction, baseSeed int64) Summary {
	return adaptiveSummary(rule, vr,
		func(rep int) int64 { return campaignSeed(baseSeed, rep) },
		func(rng *sim.RNG) Metrics { return runSyncRNG(p, batch, campusHost(), rng, DefaultJitter, 0) })
}

// Fig6MatrixAdaptive is Fig6Matrix under a stopping rule: every
// (service, workload) cell runs its own sequential design, so
// low-variance cells release their budget early while noisy cells
// keep sampling up to the cap. Cells fan out over the shared pool and
// each cell's inner batches draw from the same budget. Note the
// fig6Seed stream carries no service index, so common random numbers
// across services hold here with or without vr.CRN.
func Fig6MatrixAdaptive(profiles []client.Profile, rule StopRule, vr VarianceReduction, seed int64) []Fig6Result {
	return fig6Adaptive(profiles, campusHost, rule, vr, seed)
}

// fig6Adaptive is the host-generic body of Fig6MatrixAdaptive, shared
// with the campaign path that benchmarks from an arbitrary vantage.
func fig6Adaptive(profiles []client.Profile, host func() *netem.Host, rule StopRule, vr VarianceReduction, seed int64) []Fig6Result {
	batches := workload.StandardBenchmarks(workload.Binary)
	out := make([]Fig6Result, len(profiles))
	for si, p := range profiles {
		out[si] = Fig6Result{Service: p.Service, Workloads: batches, Summaries: make([]Summary, len(batches))}
	}
	RunEach(len(profiles)*len(batches), CampaignWorkers, func(i int) {
		si, wi := i/len(batches), i%len(batches)
		out[si].Summaries[wi] = adaptiveSummary(rule, vr,
			func(rep int) int64 { return fig6Seed(seed, wi, rep) },
			func(rng *sim.RNG) Metrics {
				return runSyncRNG(profiles[si], batches[wi], host(), rng, DefaultJitter, 0)
			})
	})
	return out
}

// LossSweepAdaptive is LossSweep under a stopping rule. With vr.CRN
// every service draws the same per-(rate, repetition) seed stream, so
// service-vs-service deltas at one loss rate are paired comparisons.
func LossSweepAdaptive(profiles []client.Profile, rates []float64, batch workload.Batch, v Vantage, rule StopRule, vr VarianceReduction, seed int64) []LossCell {
	out := make([]LossCell, len(profiles)*len(rates))
	RunEach(len(out), CampaignWorkers, func(i int) {
		si, ri := i/len(rates), i%len(rates)
		seedSvc := si
		if vr.CRN {
			seedSvc = 0
		}
		out[i] = LossCell{
			Service:  profiles[si].Service,
			LossRate: rates[ri],
			Workload: batch,
			Summary: adaptiveSummary(rule, vr,
				func(rep int) int64 { return lossSweepSeed(seed, seedSvc, ri, rep) },
				func(rng *sim.RNG) Metrics {
					return runSyncRNG(profiles[si], batch, vantageHost(v), rng, DefaultJitter, rates[ri])
				}),
		}
	})
	return out
}

// LocationSummary is one (service, vantage) cell of an adaptive
// location study: a full Summary with achieved precision, where the
// fixed-rep LocationStudy reports a single jitter-free repetition.
type LocationSummary struct {
	Service string
	Vantage string
	Summary Summary
}

// locationSeed spreads location-study cells across the seed space;
// with vr.CRN the service term is dropped so every service faces the
// same noise at each vantage.
func locationSeed(seed int64, si, vi int, crn bool) int64 {
	base := seed + int64(vi)*500009
	if !crn {
		base += int64(si) * 1000003
	}
	return base
}

// LocationStudyAdaptive benchmarks every service from every vantage
// under a stopping rule. Unlike the single-shot LocationStudy it
// repeats with the campaign jitter (DefaultJitter) — an adaptive cell
// without dispersion would trivially stop at MinReps — and reports
// per-cell summaries with achieved precision.
func LocationStudyAdaptive(batch workload.Batch, vantages []Vantage, rule StopRule, vr VarianceReduction, seed int64) []LocationSummary {
	profiles := client.Profiles()
	out := make([]LocationSummary, len(profiles)*len(vantages))
	RunEach(len(out), CampaignWorkers, func(i int) {
		si, vi := i/len(vantages), i%len(vantages)
		out[i] = LocationSummary{
			Service: profiles[si].Service,
			Vantage: vantages[vi].Name,
			Summary: adaptiveSummary(rule, vr,
				func(rep int) int64 { return campaignSeed(locationSeed(seed, si, vi, vr.CRN), rep) },
				func(rng *sim.RNG) Metrics {
					return runSyncRNG(profiles[si], batch, vantageHost(vantages[vi]), rng, DefaultJitter, 0)
				}),
		}
	})
	return out
}

// CapabilityConfidence is an adaptively repeated Table 1 row: the
// detected capabilities, whether every probe seed agreed, and the
// precision achieved on the continuous detection statistic.
type CapabilityConfidence struct {
	Capabilities Capabilities
	// Unanimous reports whether every repetition detected identical
	// capabilities; a false value means the detectors are
	// seed-sensitive for this profile.
	Unanimous bool
	// RepsUsed and AchievedRelHW describe the sequential design over
	// ConnsPerFile (the Sect. 4.2 bundling statistic, the one
	// continuous detector output).
	RepsUsed      int
	AchievedRelHW float64
}

// DetectCapabilitiesAdaptive repeats the Sect. 4 detection suite
// across a campaignSeed-derived seed stream until the continuous
// bundling statistic (connections per file) is tight, reporting
// whether the boolean verdicts were unanimous across probes. It is
// capcheck's -precision mode: detection robustness quantified instead
// of assumed from a single seed.
func DetectCapabilitiesAdaptive(p client.Profile, rule StopRule, seed int64) CapabilityConfidence {
	rule = rule.withDefaults(VarianceReduction{})
	type probe struct {
		caps  Capabilities
		conns float64
	}
	var acc stats.Accumulator
	probes := RunUntil(rule, CampaignWorkers, func(rep int) probe {
		s := campaignSeed(seed, rep)
		return probe{caps: DetectCapabilities(p, s), conns: DetectBundling(p, s).ConnsPerFile}
	}, func(batch []probe) bool {
		for _, pr := range batch {
			acc.Add(pr.conns)
		}
		return acc.RelHalfWidth() <= rule.TargetRelHW
	})
	out := CapabilityConfidence{
		Capabilities:  probes[0].caps,
		Unanimous:     true,
		RepsUsed:      len(probes),
		AchievedRelHW: acc.RelHalfWidth(),
	}
	for _, pr := range probes[1:] {
		if pr.caps != out.Capabilities {
			out.Unanimous = false
		}
	}
	return out
}

// RunFullCampaignAdaptive is RunFullCampaign under a stopping rule:
// the Fig. 6 and loss-sweep sections run their cells adaptively and
// the campaign records the rule (Precision, MaxReps) alongside the
// per-cell achieved precision, so snapshots are comparable at equal
// confidence. The idle section is a single deterministic timeline and
// runs as before.
func RunFullCampaignAdaptive(vantage Vantage, rule StopRule, vr VarianceReduction, seed int64) Campaign {
	rule = rule.withDefaults(vr)
	c := Campaign{
		Tool: ToolVersion, Vantage: vantage.Name,
		Seed:      seed,
		Precision: rule.TargetRelHW, MaxReps: rule.MaxReps,
		CreatedAt: sim.Epoch,
	}
	c.Fig6 = fig6Adaptive(client.Profiles(), func() *netem.Host { return vantageHost(vantage) }, rule, vr, seed)
	for _, p := range client.Profiles() {
		c.Idle = append(c.Idle, RunIdle(p, seed))
	}
	c.Lossy = LossSweepAdaptive(client.Profiles(), DefaultLossRates, DefaultLossBatch, vantage, rule, vr, seed)
	return c
}
