package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultReps is the paper's repetition count: "Each experiment is
// repeated 24 times per service."
const DefaultReps = 24

// DefaultJitter is the RTT jitter fraction used by benchmark
// campaigns, giving repetitions their dispersion.
const DefaultJitter = 0.10

// RunSync executes one repetition of a synchronization benchmark:
// fresh testbed, login, settle, materialize the batch, let the client
// synchronize, and measure everything from the trace. Repetitions run
// in streaming-trace mode: packets are folded into the benchmark
// window at record time and discarded, so a repetition's trace memory
// is O(flows) regardless of workload size. Metrics are bit-identical
// to the buffered path (pinned by the golden and equivalence tests).
func RunSync(p client.Profile, batch workload.Batch, seed int64, jitter float64) Metrics {
	tb := NewStreamingTestbed(p, seed, jitter)
	start := tb.Settle()

	t0 := tb.Clock.Now()
	tb.StartWindow(t0)
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)

	return MeasureWindow(tb, t0, batch.Total())
}

// MeasureWindow computes the Sect. 5 metrics for the benchmark window
// starting at t0, for a workload of contentBytes. Every scalar comes
// off two Analysis reads (one per flow selection: all flows, storage
// flows) — on a buffered testbed each is one single-pass scan of a
// zero-copy window view; on a streaming testbed each is a read of the
// accumulators folded while recording.
func MeasureWindow(tb *Testbed, t0 time.Time, contentBytes int64) Metrics {
	storage := tb.AnalyzeWindow(t0, tb.StorageFilter(t0))
	all := tb.AnalyzeWindow(t0, trace.AllFlows)

	var m Metrics
	if storage.HasPayload {
		m.Startup = storage.FirstPayload.Sub(t0)
		m.Completion = storage.LastPayload.Sub(storage.FirstPayload)
	}
	m.TotalTraffic = all.TotalWire
	m.StorageUp = storage.WireUp
	if contentBytes > 0 {
		m.Overhead = float64(m.TotalTraffic) / float64(contentBytes)
	}
	m.Connections = all.Connections
	if m.Completion > 0 && contentBytes > 0 {
		m.GoodputBps = float64(contentBytes*8) / m.Completion.Seconds()
	}
	return m
}

// campaignSeed derives the seed of one repetition from the campaign
// base seed — the same derivation the sequential engine always used,
// so campaigns are reproducible across engine versions and worker
// counts.
func campaignSeed(baseSeed int64, rep int) int64 {
	return baseSeed + int64(rep)*7919
}

// RunCampaign repeats one benchmark the paper's way — Reps repetitions
// with independent randomness — and aggregates. Repetitions fan out
// over the shared scheduler pool (CampaignWorkers); the summary is
// bit-identical to a sequential run of the same base seed.
func RunCampaign(p client.Profile, batch workload.Batch, reps int, baseSeed int64) Summary {
	return RunCampaignParallel(p, batch, reps, baseSeed, CampaignWorkers)
}

// RunCampaignParallel is RunCampaign with an explicit worker count
// (0 = one per CPU, 1 = sequential).
func RunCampaignParallel(p client.Profile, batch workload.Batch, reps int, baseSeed int64, workers int) Summary {
	if reps <= 0 {
		reps = DefaultReps
	}
	return Summarize(RunN(reps, workers, func(rep int) Metrics {
		return RunSync(p, batch, campaignSeed(baseSeed, rep), DefaultJitter)
	}))
}

// IdleResult is one service's Fig. 1 dataset: the cumulative traffic
// timeline from client start through 16 minutes, plus derived rates.
type IdleResult struct {
	Service string
	// Timeline is cumulative wire bytes over time, anchored at the
	// client start instant (x-axis of Fig. 1).
	Timeline []trace.TimelinePoint
	// LoginBytes is the traffic of the login phase.
	LoginBytes int64
	// IdleRateBps is the background traffic rate after login, in
	// bits per second (Sect. 3.1: 82 b/s Dropbox ... 6 kb/s Cloud
	// Drive).
	IdleRateBps float64
}

// IdleWindow is Fig. 1's observation period.
const IdleWindow = 16 * time.Minute

// RunIdle executes the Fig. 1 experiment for one service: start the
// client, let it log in and then sit idle, and watch the control
// traffic accumulate for 16 minutes. It runs on a buffered trace by
// necessity: the cumulative timeline is a per-packet output, and the
// login/idle windows are only known after the fact.
func RunIdle(p client.Profile, seed int64) IdleResult {
	tb := NewTestbed(p, seed, 0)
	t0 := tb.Clock.Now()
	loginDone := tb.Client.Login(t0)
	tb.Clock.AdvanceTo(loginDone)
	tb.Client.InstallPoller(tb.Sched)
	end := t0.Add(IdleWindow)
	tb.Sched.RunUntil(end)

	win := tb.Cap.Window(t0, end)
	all := win.Analyze(trace.AllFlows)
	login := tb.Cap.Window(t0, loginDone).Analyze(trace.AllFlows)
	idleBytes := all.TotalWire - login.TotalWire
	idleSecs := end.Sub(loginDone).Seconds()

	return IdleResult{
		Service:     p.Service,
		Timeline:    win.CumulativeBytes(trace.AllFlows),
		LoginBytes:  login.TotalWire,
		IdleRateBps: float64(idleBytes*8) / idleSecs,
	}
}

// SYNSeries is one service's Fig. 3 dataset: cumulative TCP SYNs over
// time while uploading a batch.
type SYNSeries struct {
	Service string
	// Times are the SYN instants relative to the first file event.
	Times []time.Duration
	// Duration is the upload completion time for the same run.
	Duration time.Duration
}

// RunSYNCount executes the Fig. 3 experiment: upload 100 files of
// 10 kB and record every connection the client opens. The SYN
// timeline survives streaming (one instant per connection, O(flows)),
// so this runs on the streaming trace like the other campaign cells.
func RunSYNCount(p client.Profile, batch workload.Batch, seed int64) SYNSeries {
	tb := NewStreamingTestbed(p, seed, 0)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	tb.StartWindow(t0)
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)

	var out SYNSeries
	out.Service = p.Service
	for _, ts := range tb.AnalyzeWindow(t0, trace.AllFlows).SYNTimes {
		out.Times = append(out.Times, ts.Sub(t0))
	}
	m := MeasureWindow(tb, t0, batch.Total())
	out.Duration = m.Completion
	return out
}
