package core

import (
	"testing"

	"repro/internal/client"
	"repro/internal/workload"
)

const added100k = 100 << 10

func TestFig4AppendDropboxFlat(t *testing.T) {
	// Fig. 4 left: Dropbox's upload volume tracks the appended
	// 100 kB, not the file size.
	sizes := Fig4Sizes(ModAppend)
	pts := Fig4DeltaSeries(client.Dropbox(), ModAppend, sizes, added100k, 11)
	for _, p := range pts {
		if p.Upload > 3*added100k {
			t.Errorf("dropbox append on %d B file uploaded %d B, want ~100 kB", p.FileSize, p.Upload)
		}
	}
	// And it must not grow with file size: compare the extremes.
	if last, first := pts[len(pts)-1].Upload, pts[0].Upload; last > 2*first+added100k {
		t.Errorf("dropbox append grows with file size: %d -> %d", first, last)
	}
}

func TestFig4AppendOthersReupload(t *testing.T) {
	// Services without delta encoding re-upload the whole file.
	for _, p := range []client.Profile{client.SkyDrive(), client.CloudDrive()} {
		pts := Fig4DeltaSeries(p, ModAppend, []int64{1 << 20}, added100k, 12)
		if pts[0].Upload < 1<<20 {
			t.Errorf("%s append uploaded %d B, want >= file size", p.Service, pts[0].Upload)
		}
	}
}

func TestFig4RandomInsertCombinedEffects(t *testing.T) {
	// Fig. 4 right at 10 MB: Dropbox pays more than the added data
	// (shifted chunks) but far less than the file; Wuala's
	// deduplication uploads only the modified chunks (2 of ~3);
	// SkyDrive re-uploads everything.
	const size = 10 << 20
	drop := Fig4DeltaSeries(client.Dropbox(), ModRandom, []int64{size}, added100k, 13)[0].Upload
	wuala := Fig4DeltaSeries(client.Wuala(), ModRandom, []int64{size}, added100k, 13)[0].Upload
	sky := Fig4DeltaSeries(client.SkyDrive(), ModRandom, []int64{size}, added100k, 13)[0].Upload

	if drop < added100k || drop > size/2 {
		t.Errorf("dropbox random insert uploaded %d, want added<up<size/2", drop)
	}
	if wuala >= size || wuala < size/8 {
		t.Errorf("wuala random insert uploaded %d, want partial re-upload (changed chunks only)", wuala)
	}
	if sky < size {
		t.Errorf("skydrive random insert uploaded %d, want full file", sky)
	}
	if !(drop < wuala && wuala < sky) {
		t.Errorf("ordering broken: dropbox %d, wuala %d, skydrive %d", drop, wuala, sky)
	}
}

func TestFig4PrependDeltaStillSmall(t *testing.T) {
	// Rolling-hash delta handles shifts: prepending must not blow
	// up Dropbox's upload for a sub-chunk file.
	pts := Fig4DeltaSeries(client.Dropbox(), ModPrepend, []int64{1 << 20}, added100k, 14)
	if pts[0].Upload > 3*added100k {
		t.Errorf("dropbox prepend uploaded %d, want ~100 kB", pts[0].Upload)
	}
}

func TestFig5CompressionShapes(t *testing.T) {
	const size = 1 << 20
	upload := func(p client.Profile, kind workload.Kind) int64 {
		return Fig5CompressionSeries(p, kind, []int64{size}, 15)[0].Upload
	}

	// (a) text: Dropbox and Google Drive compress; SkyDrive does not.
	dropText := upload(client.Dropbox(), workload.Text)
	gdText := upload(client.GoogleDrive(), workload.Text)
	skyText := upload(client.SkyDrive(), workload.Text)
	if dropText > size*3/4 || gdText > size*3/4 {
		t.Errorf("compressors sent too much text: dropbox %d, gdrive %d", dropText, gdText)
	}
	if skyText < size {
		t.Errorf("skydrive text upload %d, want >= size", skyText)
	}

	// (b) random: nobody wins.
	dropRand := upload(client.Dropbox(), workload.Binary)
	if dropRand < size {
		t.Errorf("dropbox random upload %d, want >= size (incompressible)", dropRand)
	}

	// (c) fake JPEGs: Google Drive skips (smart), Dropbox compresses
	// anyway.
	dropFake := upload(client.Dropbox(), workload.FakeJPEG)
	gdFake := upload(client.GoogleDrive(), workload.FakeJPEG)
	if dropFake > size*3/4 {
		t.Errorf("dropbox fake JPEG upload %d, want compressed", dropFake)
	}
	if gdFake < size {
		t.Errorf("gdrive fake JPEG upload %d, want uncompressed (smart policy fooled)", gdFake)
	}
}

func TestFig6ForServiceShape(t *testing.T) {
	r := Fig6ForService(client.Wuala(), 2, 16)
	if len(r.Summaries) != 4 || len(r.Workloads) != 4 {
		t.Fatalf("Fig6 shape: %d summaries", len(r.Summaries))
	}
	for i, s := range r.Summaries {
		if s.MeanCompletion <= 0 {
			t.Errorf("workload %s: no completion", r.Workloads[i])
		}
	}
}

func TestModKindString(t *testing.T) {
	if ModAppend.String() != "append" || ModPrepend.String() != "prepend" || ModRandom.String() != "random" {
		t.Fatal("mod kind names")
	}
}
