package core

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/workload"
)

func TestPropagationTwoDevices(t *testing.T) {
	batch := workload.Batch{Count: 1, Size: 500 << 10, Kind: workload.Binary}

	drop := RunPropagation(client.Dropbox(), batch, 41)
	if drop.Upload <= 0 || drop.Download <= 0 || drop.Total <= 0 {
		t.Fatalf("degenerate result: %+v", drop)
	}
	// Dropbox pushes over its long-poll notification channel: the
	// notify latency is one round trip, far below any poll interval.
	if drop.Notify > 2*time.Second {
		t.Fatalf("dropbox notify latency = %v, want push-like", drop.Notify)
	}

	cd := RunPropagation(client.CloudDrive(), batch, 41)
	// Cloud Drive polls every 15 s: notification waits for the next
	// tick.
	if cd.Notify <= drop.Notify || cd.Notify > 16*time.Second {
		t.Fatalf("clouddrive notify latency = %v, want up to one 15s poll", cd.Notify)
	}

	wuala := RunPropagation(client.Wuala(), batch, 41)
	// Wuala polls every 5 min: worst propagation of the set.
	if wuala.Notify <= cd.Notify || wuala.Notify > 5*time.Minute+time.Second {
		t.Fatalf("wuala notify latency = %v, want up to one 5min poll", wuala.Notify)
	}
	if !(wuala.Total > cd.Total && cd.Total > drop.Total) {
		t.Fatalf("total propagation ordering broken: dropbox %v, clouddrive %v, wuala %v",
			drop.Total, cd.Total, wuala.Total)
	}
}

func TestPropagationDownloadVolume(t *testing.T) {
	// The downloaded volume must track the stored (compressed)
	// content: Dropbox stores compressed text, so B downloads less
	// than the file size.
	batch := workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Text}
	r := RunPropagation(client.Dropbox(), batch, 42)
	if r.Download <= 0 {
		t.Fatalf("no download phase: %+v", r)
	}
	// And for an incompressible service the download dominates the
	// notification round trip.
	rb := RunPropagation(client.SkyDrive(), workload.Batch{Count: 1, Size: 4 << 20, Kind: workload.Binary}, 42)
	if rb.Download < 2*time.Second {
		t.Fatalf("skydrive 4MB download = %v, want seconds (3 Mb/s path)", rb.Download)
	}
}
