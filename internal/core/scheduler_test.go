package core

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/client"
	"repro/internal/workload"
)

// withWorkers runs fn with CampaignWorkers pinned to w, restoring the
// previous knob afterwards.
func withWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	old := CampaignWorkers
	CampaignWorkers = w
	defer func() { CampaignWorkers = old }()
	fn()
}

// equivalenceWorkerCounts are the worker counts every lifted layer is
// pinned at: forced-sequential, a small pool, and a pool larger than
// most cell counts.
var equivalenceWorkerCounts = []int{1, 2, 8}

func TestRunNZeroCells(t *testing.T) {
	calls := 0
	if out := RunN(0, 4, func(i int) int { calls++; return i }); len(out) != 0 {
		t.Fatalf("RunN(0) returned %d results", len(out))
	}
	if out := RunN(-3, 4, func(i int) int { calls++; return i }); len(out) != 0 {
		t.Fatalf("RunN(-3) returned %d results", len(out))
	}
	if calls != 0 {
		t.Fatalf("fn called %d times for empty index spaces", calls)
	}
}

func TestRunNWorkersExceedCells(t *testing.T) {
	out := RunN(3, 64, func(i int) int { return i * i })
	if want := []int{0, 1, 4}; !reflect.DeepEqual(out, want) {
		t.Fatalf("RunN(3, 64) = %v, want %v", out, want)
	}
}

func TestRunNResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		out := RunN(100, workers, func(i int) int { return i })
		for i, v := range out {
			if v != i {
				t.Fatalf("workers=%d: slot %d holds %d", workers, i, v)
			}
		}
	}
}

func TestRunNEachCellOnce(t *testing.T) {
	var counts [50]atomic.Int64
	RunEach(len(counts), 8, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("cell %d ran %d times", i, n)
		}
	}
}

func TestRunNNestedSharesBudget(t *testing.T) {
	// A fan-out whose cells fan out again must complete correctly
	// (inner pools fall back to inline execution when the shared
	// budget is spent — never deadlock) and must not exceed the
	// budget's goroutine count.
	var peak, active atomic.Int64
	outer := RunN(6, 3, func(i int) int {
		cur := active.Add(1)
		defer active.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inner := RunN(6, 3, func(j int) int { return i*6 + j })
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum
	})
	want := 0
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want += i*6 + j
		}
	}
	got := 0
	for _, v := range outer {
		got += v
	}
	if got != want {
		t.Fatalf("nested sum = %d, want %d", got, want)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("outer cells ran %d-wide, want <= budget 3", p)
	}
}

// ---- parallel-vs-sequential golden equivalence per lifted layer ----

func TestFig6ForServiceParallelEquivalence(t *testing.T) {
	var seq Fig6Result
	withWorkers(t, 1, func() { seq = Fig6ForService(client.CloudDrive(), 3, 42) })
	for _, w := range equivalenceWorkerCounts[1:] {
		var par Fig6Result
		withWorkers(t, w, func() { par = Fig6ForService(client.CloudDrive(), 3, 42) })
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: Fig6ForService differs from sequential\n seq %+v\n par %+v", w, seq, par)
		}
	}
}

func TestFig6MatrixMatchesPerService(t *testing.T) {
	profiles := []client.Profile{client.CloudDrive(), client.Wuala()}
	for _, w := range equivalenceWorkerCounts {
		withWorkers(t, w, func() {
			matrix := Fig6Matrix(profiles, 2, 42)
			if len(matrix) != len(profiles) {
				t.Fatalf("workers=%d: matrix has %d services", w, len(matrix))
			}
			for i, p := range profiles {
				single := Fig6ForService(p, 2, 42)
				if !reflect.DeepEqual(matrix[i], single) {
					t.Errorf("workers=%d: matrix[%s] differs from Fig6ForService", w, p.Service)
				}
			}
		})
	}
}

func TestLocationStudyParallelEquivalence(t *testing.T) {
	batch := workload.Batch{Count: 1, Size: 100 << 10, Kind: workload.Binary}
	sea, _ := VantageByName("SEA")
	vantages := []Vantage{Twente, sea}
	var seq []LocationCell
	withWorkers(t, 1, func() { seq = LocationStudy(batch, vantages, 63) })
	for _, w := range equivalenceWorkerCounts[1:] {
		var par []LocationCell
		withWorkers(t, w, func() { par = LocationStudy(batch, vantages, 63) })
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: LocationStudy differs from sequential", w)
		}
	}
}

func TestFig4DeltaSeriesParallelEquivalence(t *testing.T) {
	sizes := []int64{100 << 10, 1 << 20, 2 << 20}
	var seq []VolumePoint
	withWorkers(t, 1, func() { seq = Fig4DeltaSeries(client.Dropbox(), ModRandom, sizes, added100k, 21) })
	for _, w := range equivalenceWorkerCounts[1:] {
		var par []VolumePoint
		withWorkers(t, w, func() { par = Fig4DeltaSeries(client.Dropbox(), ModRandom, sizes, added100k, 21) })
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: Fig4DeltaSeries differs from sequential\n seq %v\n par %v", w, seq, par)
		}
	}
}

func TestFig5CompressionSeriesParallelEquivalence(t *testing.T) {
	sizes := []int64{100 << 10, 500 << 10, 1 << 20}
	var seq []VolumePoint
	withWorkers(t, 1, func() { seq = Fig5CompressionSeries(client.Dropbox(), workload.Text, sizes, 22) })
	for _, w := range equivalenceWorkerCounts[1:] {
		var par []VolumePoint
		withWorkers(t, w, func() { par = Fig5CompressionSeries(client.Dropbox(), workload.Text, sizes, 22) })
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: Fig5CompressionSeries differs from sequential\n seq %v\n par %v", w, seq, par)
		}
	}
}

func TestDetectCapabilitiesParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full capability suite per worker count is long")
	}
	p := client.Dropbox()
	var seq Capabilities
	withWorkers(t, 1, func() { seq = DetectCapabilities(p, 7) })
	for _, w := range equivalenceWorkerCounts[1:] {
		var par Capabilities
		withWorkers(t, w, func() { par = DetectCapabilities(p, 7) })
		if seq != par {
			t.Errorf("workers=%d: DetectCapabilities differs from sequential\n seq %+v\n par %+v", w, seq, par)
		}
	}
	// The flattened service x detector matrix must agree with the
	// single-service path.
	profiles := []client.Profile{client.Dropbox(), client.CloudDrive()}
	var all map[string]Capabilities
	withWorkers(t, 8, func() { all = DetectCapabilitiesAll(profiles, 7) })
	if all["dropbox"] != seq {
		t.Errorf("DetectCapabilitiesAll[dropbox] = %+v, want %+v", all["dropbox"], seq)
	}
	// Both dedup verdicts must come from one experiment: with the
	// dropbox profile at this seed both are positive.
	if !all["dropbox"].Dedup || !all["dropbox"].DedupAfterDelete {
		t.Errorf("dropbox dedup verdicts = %v/%v, want true/true",
			all["dropbox"].Dedup, all["dropbox"].DedupAfterDelete)
	}
}
