package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Vantage is a place the test computer can run from. The paper
// benchmarks "taking the perspective of users connected from Europe"
// (Twente) and explicitly wants "to compare results from different
// locations" — this type is that extension point.
type Vantage struct {
	Name  string
	Coord geo.Coord
}

// Twente is the paper's vantage.
var Twente = Vantage{Name: "twente", Coord: TwenteCoord}

// VantageByName resolves a vantage from a city name or IATA code in
// the landmark database ("Seattle", "sea"), or "twente".
func VantageByName(name string) (Vantage, bool) {
	if strings.EqualFold(name, "twente") || name == "" {
		return Twente, true
	}
	if l, ok := geo.LookupAirport(name); ok {
		return Vantage{Name: strings.ToLower(l.City), Coord: l.Coord}, true
	}
	for _, l := range geo.Airports() {
		if strings.EqualFold(l.City, name) {
			return Vantage{Name: strings.ToLower(l.City), Coord: l.Coord}, true
		}
	}
	return Vantage{}, false
}

// NewTestbedAt builds a buffered testbed with the test computer at an
// arbitrary vantage.
func NewTestbedAt(p client.Profile, spec cloud.Spec, v Vantage, seed int64, jitter float64) *Testbed {
	return assembleTestbed(p, spec, vantageHost(v), sim.NewRNG(seed), jitter, false)
}

// vantageHost is a test computer placed at an arbitrary vantage.
func vantageHost(v Vantage) *netem.Host {
	return &netem.Host{
		Name:  fmt.Sprintf("testpc.%s.sim", v.Name),
		Addr:  "198.51.100.1",
		Coord: v.Coord,
	}
}

// RunSyncFrom is RunSync from an arbitrary vantage; like RunSync it
// streams the trace, so location-study cells share the O(flows)
// memory profile of the campaign engine.
func RunSyncFrom(p client.Profile, batch workload.Batch, v Vantage, seed int64, jitter float64) Metrics {
	tb := assembleTestbed(p, cloud.SpecFor(p.Service), vantageHost(v), sim.NewRNG(seed), jitter, true)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	tb.StartWindow(t0)
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	return MeasureWindow(tb, t0, batch.Total())
}

// LocationCell is one (service, vantage) measurement of a location
// study.
type LocationCell struct {
	Service string
	Vantage string
	Metrics Metrics
}

// LocationStudy benchmarks every service from every vantage with the
// same workload — the comparison the paper's public-tool release was
// meant to enable. Single repetition per cell, jitter-free (location
// effects dwarf noise). The service x vantage matrix fans out over
// the shared scheduler pool; every cell builds its own testbed from
// the shared seed, so results are bit-identical at any worker count.
func LocationStudy(batch workload.Batch, vantages []Vantage, seed int64) []LocationCell {
	profiles := client.Profiles()
	return RunN(len(profiles)*len(vantages), CampaignWorkers, func(i int) LocationCell {
		p := profiles[i/len(vantages)]
		v := vantages[i%len(vantages)]
		return LocationCell{
			Service: p.Service,
			Vantage: v.Name,
			Metrics: RunSyncFrom(p, batch, v, seed, 0),
		}
	})
}

// LocationReport renders a location study as a service x vantage
// completion-time table.
func LocationReport(cells []LocationCell, vantages []Vantage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "service")
	for _, v := range vantages {
		fmt.Fprintf(&b, "%14s", v.Name)
	}
	b.WriteByte('\n')
	bySvc := map[string]map[string]Metrics{}
	var order []string
	for _, c := range cells {
		if bySvc[c.Service] == nil {
			bySvc[c.Service] = map[string]Metrics{}
			order = append(order, c.Service)
		}
		bySvc[c.Service][c.Vantage] = c.Metrics
	}
	for _, svc := range order {
		fmt.Fprintf(&b, "%-14s", displayName(svc))
		for _, v := range vantages {
			fmt.Fprintf(&b, "%13.2fs", bySvc[svc][v.Name].Completion.Seconds())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
