// Package core implements the paper's contribution: the methodology
// and benchmarking tool for personal cloud storage services.
//
// It assembles the testbed (Sect. 2), runs the capability checks
// (Sect. 4), the performance benchmarks (Sect. 5) and the architecture
// discovery (Sect. 2.1/3.2), deriving every metric exclusively from
// the packet trace — the same information boundary the paper's passive
// sniffer had. Each figure and table of the paper maps to a function
// here; see DESIGN.md for the experiment index.
package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/dnssim"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/whois"
	"repro/internal/workload"
)

// TwenteCoord is the testbed location: the University of Twente
// campus, Enschede (Sect. 2.4).
var TwenteCoord = geo.Coord{Lat: 52.24, Lon: 6.85}

// Testbed is one fully assembled measurement setup for one service:
// the synthetic Internet, the service deployment, the test computer,
// the client under test, and the packet capture. Each benchmark
// repetition uses a fresh testbed so that server-side state (the
// dedup store) and client state start clean, exactly as the paper
// resets its test accounts.
type Testbed struct {
	Seed    int64
	Clock   *sim.Clock
	Sched   *sim.Scheduler
	Net     *netem.Network
	DNS     *dnssim.System
	Whois   *whois.Registry
	Cap     *trace.Capture
	Deploy  *cloud.Deployment
	Client  *client.Client
	Folder  *workload.Folder
	RNG     *sim.RNG
	Profile client.Profile
}

// NewTestbed builds a testbed for one of the five studied services.
// Jitter makes RTT samples vary around their geographic base value,
// giving the 24 repetitions realistic dispersion; pass jitter=0 for
// exact analytic assertions in tests.
func NewTestbed(p client.Profile, seed int64, jitter float64) *Testbed {
	return NewTestbedFor(p, cloud.SpecFor(p.Service), seed, jitter)
}

// NewTestbedFor builds a testbed for an arbitrary profile/deployment
// pair — the extension hook for benchmarking services beyond the five
// in the paper ("to extend the number of tested services").
func NewTestbedFor(p client.Profile, spec cloud.Spec, seed int64, jitter float64) *Testbed {
	rng := sim.NewRNG(seed)
	clock := sim.NewClock()
	n := netem.New(clock, rng.Fork(1))
	n.JitterFraction = jitter
	dns := dnssim.NewSystem(rng.Fork(2))
	reg := whois.NewRegistry()
	deploy := cloud.Build(n, dns, reg, spec)
	host := n.AddHost(&netem.Host{
		Name:  "testpc.utwente.sim",
		Addr:  "130.89.0.1",
		Coord: TwenteCoord,
		// 1 Gb/s campus Ethernet: "the network is not a
		// bottleneck" — leave the client side uncapped.
	})
	cap := trace.NewCapture()
	cl := client.New(client.Config{
		Profile: p, Deploy: deploy, Net: n, Host: host,
		Cap: cap, DNS: dns, RNG: rng.Fork(3),
	})
	return &Testbed{
		Seed: seed, Clock: clock, Sched: sim.NewScheduler(clock),
		Net: n, DNS: dns, Whois: reg, Cap: cap, Deploy: deploy,
		Client: cl, Folder: workload.NewFolder(), RNG: rng.Fork(4),
		Profile: p,
	}
}

// Settle logs the client in and lets it idle briefly, so benchmark
// traffic is cleanly separated from login traffic. It returns the
// instant the benchmark may start.
func (tb *Testbed) Settle() time.Time {
	done := tb.Client.Login(tb.Clock.Now())
	tb.Clock.AdvanceTo(done)
	start := done.Add(30 * time.Second)
	tb.Clock.AdvanceTo(start)
	return start
}

// StorageFilter classifies flows for measurement. Services that split
// control from storage are classified by DNS name (trivially, as the
// paper notes). Wuala and the edge-terminated Google Drive use one
// name for everything, so the filter falls back to the paper's
// heuristic: storage flows are the connections opened after the
// workload started (connection sequences) or carrying substantial
// payload within the window (flow sizes).
func (tb *Testbed) StorageFilter(winStart time.Time) trace.FlowFilter {
	storageName := tb.Deploy.DNSName(cloud.Storage)
	controlName := tb.Deploy.DNSName(cloud.Control)
	if tb.Deploy.Spec.EdgeNetwork {
		storageName = tb.Deploy.DNSName(cloud.Edge)
		controlName = storageName
	}
	if storageName != controlName {
		return func(f trace.FlowInfo) bool { return f.ServerName == storageName }
	}
	// Same-name service: flow sizes and connection sequences.
	win := tb.Cap.Window(winStart, trace.FarFuture)
	bytes := win.FlowBytes()
	return func(f trace.FlowInfo) bool {
		if f.ServerName != storageName {
			return false
		}
		if !f.OpenedAt.Before(winStart) {
			return true
		}
		return int(f.ID) < len(bytes) && bytes[f.ID] >= 30_000
	}
}
