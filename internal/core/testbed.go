// Package core implements the paper's contribution: the methodology
// and benchmarking tool for personal cloud storage services.
//
// It assembles the testbed (Sect. 2), runs the capability checks
// (Sect. 4), the performance benchmarks (Sect. 5) and the architecture
// discovery (Sect. 2.1/3.2), deriving every metric exclusively from
// the packet trace — the same information boundary the paper's passive
// sniffer had. Each figure and table of the paper maps to a function
// here; see DESIGN.md for the experiment index.
package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/dnssim"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/whois"
	"repro/internal/workload"
)

// TwenteCoord is the testbed location: the University of Twente
// campus, Enschede (Sect. 2.4).
var TwenteCoord = geo.Coord{Lat: 52.24, Lon: 6.85}

// Testbed is one fully assembled measurement setup for one service:
// the synthetic Internet, the service deployment, the test computer,
// the client under test, and the packet trace. Each benchmark
// repetition uses a fresh testbed so that server-side state (the
// dedup store) and client state start clean, exactly as the paper
// resets its test accounts.
//
// The trace runs in one of two modes. Buffered (Cap non-nil) keeps
// every packet record, supporting arbitrary re-windowing and
// per-packet analyzers afterwards — what the protocol/capability
// studies and cmd/tracedump need. Streaming (Stream non-nil) folds
// packets into the registered benchmark window at record time and
// discards them, capping per-repetition memory at O(flows) — what the
// Sect. 5 campaign engine uses. Exactly one of Cap/Stream is set.
type Testbed struct {
	Seed    int64
	Clock   *sim.Clock
	Sched   *sim.Scheduler
	Net     *netem.Network
	DNS     *dnssim.System
	Whois   *whois.Registry
	Cap     *trace.Capture  // buffered trace; nil in streaming mode
	Stream  *trace.Streamer // streaming folds; nil in buffered mode
	Deploy  *cloud.Deployment
	Client  *client.Client
	Folder  *workload.Folder
	RNG     *sim.RNG
	Profile client.Profile

	// win is the registered benchmark window in streaming mode.
	win *trace.StreamWindow
}

// NewTestbed builds a buffered-trace testbed for one of the five
// studied services. Jitter makes RTT samples vary around their
// geographic base value, giving the 24 repetitions realistic
// dispersion; pass jitter=0 for exact analytic assertions in tests.
func NewTestbed(p client.Profile, seed int64, jitter float64) *Testbed {
	return NewTestbedFor(p, cloud.SpecFor(p.Service), seed, jitter)
}

// NewStreamingTestbed builds a streaming-trace testbed: the client
// records into a trace.Streamer, so packets are folded into the
// benchmark window (see StartWindow) and discarded instead of
// buffered. Simulated behaviour and every derived metric are
// bit-identical to a buffered testbed of the same seed; only the
// trace-memory profile changes.
func NewStreamingTestbed(p client.Profile, seed int64, jitter float64) *Testbed {
	return assembleTestbed(p, cloud.SpecFor(p.Service), campusHost(), sim.NewRNG(seed), jitter, true)
}

// NewLegacyStreamingTestbed builds a streaming testbed whose entire
// randomness tree — file contents, jitter, DNS shuffles, loss draws —
// runs on the legacy math/rand engine (sim.NewLegacyRNG). It is the
// reference configuration for the PCG structural-equivalence tests,
// the way tcpsim keeps its event loop behind Dialer.ForceEventLoop.
func NewLegacyStreamingTestbed(p client.Profile, seed int64, jitter float64) *Testbed {
	return assembleTestbed(p, cloud.SpecFor(p.Service), campusHost(), sim.NewLegacyRNG(seed), jitter, true)
}

// NewTestbedFor builds a buffered testbed for an arbitrary
// profile/deployment pair — the extension hook for benchmarking
// services beyond the five in the paper ("to extend the number of
// tested services").
func NewTestbedFor(p client.Profile, spec cloud.Spec, seed int64, jitter float64) *Testbed {
	return assembleTestbed(p, spec, campusHost(), sim.NewRNG(seed), jitter, false)
}

// campusHost is the paper's test computer: the University of Twente
// campus network.
func campusHost() *netem.Host {
	return &netem.Host{
		Name:  "testpc.utwente.sim",
		Addr:  "130.89.0.1",
		Coord: TwenteCoord,
		// 1 Gb/s campus Ethernet: "the network is not a
		// bottleneck" — leave the client side uncapped.
	}
}

// assembleTestbed is the single assembly path behind every testbed
// constructor; host describes the (not yet added) test computer, rng
// is the top of the repetition's randomness tree (PCG by default,
// legacy for the reference engine), and streaming selects the trace
// mode.
func assembleTestbed(p client.Profile, spec cloud.Spec, host *netem.Host, rng *sim.RNG, jitter float64, streaming bool) *Testbed {
	seed := rng.Seed()
	clock := sim.NewClock()
	n := netem.New(clock, rng.Fork(1))
	n.JitterFraction = jitter
	dns := dnssim.NewSystem(rng.Fork(2))
	reg := whois.NewRegistry()
	deploy := cloud.Build(n, dns, reg, spec)
	h := n.AddHost(host)
	tb := &Testbed{
		Seed: seed, Clock: clock, Sched: sim.NewScheduler(clock),
		Net: n, DNS: dns, Whois: reg, Deploy: deploy,
		Folder: workload.NewFolder(), RNG: rng.Fork(4),
		Profile: p,
	}
	var sink trace.Sink
	if streaming {
		tb.Stream = trace.NewStreamer()
		sink = tb.Stream
	} else {
		tb.Cap = trace.NewCapture()
		sink = tb.Cap
	}
	tb.Client = client.New(client.Config{
		Profile: p, Deploy: deploy, Net: n, Host: h,
		Cap: sink, DNS: dns, RNG: rng.Fork(3),
	})
	return tb
}

// Settle logs the client in and lets it idle briefly, so benchmark
// traffic is cleanly separated from login traffic. It returns the
// instant the benchmark may start.
func (tb *Testbed) Settle() time.Time {
	done := tb.Client.Login(tb.Clock.Now())
	tb.Clock.AdvanceTo(done)
	start := done.Add(30 * time.Second)
	tb.Clock.AdvanceTo(start)
	return start
}

// StartWindow registers the benchmark measurement window [t0,
// FarFuture) on a streaming testbed, so that every packet recorded
// from here on is folded into it. It must be called right when the
// window opens — after login/settle traffic, before the workload is
// materialized. On a buffered testbed it is a no-op: buffered windows
// are zero-copy views taken at read time.
func (tb *Testbed) StartWindow(t0 time.Time) {
	if tb.Stream != nil {
		tb.win = tb.Stream.AddWindow(t0, trace.FarFuture)
	}
}

// benchWindow returns the registered streaming window, insisting it
// matches the requested start: a streamed repetition has exactly one
// measurement window, registered up front, and reading any other
// window would silently analyze discarded packets.
func (tb *Testbed) benchWindow(t0 time.Time) *trace.StreamWindow {
	if tb.win == nil {
		panic("core: streaming testbed measured without StartWindow")
	}
	if !tb.win.From().Equal(t0) {
		panic("core: streaming testbed measured at a window start it never registered")
	}
	return tb.win
}

// AnalyzeWindow computes every scalar trace metric over the selected
// flows within the benchmark window [t0, FarFuture), in whichever
// trace mode the testbed runs: one single-pass scan of the buffered
// trace, or a read of the streaming accumulators. Both paths are
// bit-identical.
func (tb *Testbed) AnalyzeWindow(t0 time.Time, f trace.FlowFilter) trace.Analysis {
	if tb.Stream != nil {
		return tb.benchWindow(t0).Analyze(f)
	}
	return tb.Cap.Window(t0, trace.FarFuture).Analyze(f)
}

// windowFlowBytes returns per-flow wire bytes within the benchmark
// window, for the same-name storage classifier.
func (tb *Testbed) windowFlowBytes(t0 time.Time) []int64 {
	if tb.Stream != nil {
		return tb.benchWindow(t0).FlowBytes()
	}
	return tb.Cap.Window(t0, trace.FarFuture).FlowBytes()
}

// StorageFilter classifies flows for measurement. Services that split
// control from storage are classified by DNS name (trivially, as the
// paper notes). Wuala and the edge-terminated Google Drive use one
// name for everything, so the filter falls back to the paper's
// heuristic: storage flows are the connections opened after the
// workload started (connection sequences) or carrying substantial
// payload within the window (flow sizes).
func (tb *Testbed) StorageFilter(winStart time.Time) trace.FlowFilter {
	storageName := tb.Deploy.DNSName(cloud.Storage)
	controlName := tb.Deploy.DNSName(cloud.Control)
	if tb.Deploy.Spec.EdgeNetwork {
		storageName = tb.Deploy.DNSName(cloud.Edge)
		controlName = storageName
	}
	if storageName != controlName {
		return func(f trace.FlowInfo) bool { return f.ServerName == storageName }
	}
	// Same-name service: flow sizes and connection sequences.
	bytes := tb.windowFlowBytes(winStart)
	return func(f trace.FlowInfo) bool {
		if f.ServerName != storageName {
			return false
		}
		if !f.OpenedAt.Before(winStart) {
			return true
		}
		return int(f.ID) < len(bytes) && bytes[f.ID] >= 30_000
	}
}
