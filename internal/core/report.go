package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/workload"
)

// This file renders results in the paper's shapes: Table 1, the
// Fig. 6 bar groups, Fig. 1 rates, discovery summaries. Output is
// plain text (and CSV via the Series helpers) so that cmd/figures can
// be diffed between runs.

// yesNo renders a capability cell.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Table1 renders the capability matrix exactly in the paper's row
// order: Chunking, Bundling, Compression, Deduplication,
// Delta-encoding.
func Table1(caps map[string]Capabilities, order []string) string {
	if order == nil {
		order = sortedServices(caps)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "")
	for _, s := range order {
		fmt.Fprintf(&b, "%-14s", displayName(s))
	}
	b.WriteByte('\n')
	row := func(label string, cell func(Capabilities) string) {
		fmt.Fprintf(&b, "%-16s", label)
		for _, s := range order {
			fmt.Fprintf(&b, "%-14s", cell(caps[s]))
		}
		b.WriteByte('\n')
	}
	row("Chunking", func(c Capabilities) string { return c.Chunking })
	row("Bundling", func(c Capabilities) string { return yesNo(c.Bundling) })
	row("Compression", func(c Capabilities) string { return c.Compression })
	row("Deduplication", func(c Capabilities) string { return yesNo(c.Dedup) })
	row("Delta-encoding", func(c Capabilities) string { return yesNo(c.DeltaEncoding) })
	return b.String()
}

// displayName maps service keys to the paper's display names.
func displayName(service string) string {
	switch service {
	case "dropbox":
		return "Dropbox"
	case "skydrive":
		return "SkyDrive"
	case "wuala":
		return "Wuala"
	case "googledrive":
		return "Google Drive"
	case "clouddrive":
		return "Cloud Drive"
	default:
		return service
	}
}

// Fig6Report renders the three panels of Fig. 6 as one table per
// metric, services as rows, workloads as columns.
func Fig6Report(results []Fig6Result) string {
	if len(results) == 0 {
		return ""
	}
	var b strings.Builder
	header := func(title string) {
		fmt.Fprintf(&b, "\n%s\n%-14s", title, "service")
		for _, w := range results[0].Workloads {
			fmt.Fprintf(&b, "%12s", w.String())
		}
		b.WriteByte('\n')
	}

	header("Fig 6(a) synchronization start-up time (s)")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s", displayName(r.Service))
		for _, s := range r.Summaries {
			fmt.Fprintf(&b, "%12.1f", s.MeanStartup.Seconds())
		}
		b.WriteByte('\n')
	}

	header("Fig 6(b) completion time (s, log scale in the paper)")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s", displayName(r.Service))
		for _, s := range r.Summaries {
			fmt.Fprintf(&b, "%12.2f", s.MeanCompletion.Seconds())
		}
		b.WriteByte('\n')
	}

	header("Fig 6(c) protocol overhead (total traffic / content)")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s", displayName(r.Service))
		for _, s := range r.Summaries {
			fmt.Fprintf(&b, "%12.2f", s.MeanOverhead)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PrecisionReport renders the sampling side of an adaptive Fig. 6
// run: repetitions spent and achieved relative precision per cell, so
// a reader can see where the budget went and which cells hit the cap.
func PrecisionReport(results []Fig6Result) string {
	if len(results) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nsampling: reps used (achieved relative CI95 half-width)\n%-14s", "service")
	for _, w := range results[0].Workloads {
		fmt.Fprintf(&b, "%16s", w.String())
	}
	b.WriteByte('\n')
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s", displayName(r.Service))
		for _, s := range r.Summaries {
			fmt.Fprintf(&b, "%6d (%6.2f%%)", s.RepsUsed, s.AchievedRelHW*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LocationSummaryReport renders an adaptive location study: mean
// completion per (service, vantage) with the repetitions each cell
// needed to reach the precision target.
func LocationSummaryReport(cells []LocationSummary, vantages []Vantage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "service")
	for _, v := range vantages {
		fmt.Fprintf(&b, "%20s", v.Name)
	}
	b.WriteByte('\n')
	bySvc := map[string]map[string]Summary{}
	var order []string
	for _, c := range cells {
		if bySvc[c.Service] == nil {
			bySvc[c.Service] = map[string]Summary{}
			order = append(order, c.Service)
		}
		bySvc[c.Service][c.Vantage] = c.Summary
	}
	for _, svc := range order {
		fmt.Fprintf(&b, "%-14s", displayName(svc))
		for _, v := range vantages {
			s := bySvc[svc][v.Name]
			fmt.Fprintf(&b, "%12.2fs (%2d r)", s.MeanCompletion.Seconds(), s.RepsUsed)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig1Report renders login volume and idle rate per service
// (Sect. 3.1's numbers behind Fig. 1).
func Fig1Report(results []IdleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s%14s%16s\n", "service", "login (kB)", "idle rate (b/s)")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s%14.0f%16.0f\n",
			displayName(r.Service), float64(r.LoginBytes)/1000, r.IdleRateBps)
	}
	return b.String()
}

// VolumeSeriesCSV renders Fig. 4/5 series as CSV (size_bytes,
// upload_bytes) with a label column.
func VolumeSeriesCSV(label string, pts []VolumePoint) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%d,%d\n", label, p.FileSize, p.Upload)
	}
	return b.String()
}

// SYNSeriesCSV renders a Fig. 3 series as CSV (t_seconds,
// cumulative_syns).
func SYNSeriesCSV(s SYNSeries) string {
	var b strings.Builder
	for i, t := range s.Times {
		fmt.Fprintf(&b, "%s,%.3f,%d\n", s.Service, t.Seconds(), i+1)
	}
	return b.String()
}

// DiscoveryReport summarizes one service's architecture discovery
// (Sect. 3.2).
func DiscoveryReport(d Discovery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", displayName(d.Service))
	fmt.Fprintf(&b, "  DNS names observed:   %s\n", strings.Join(d.Names, ", "))
	fmt.Fprintf(&b, "  front-end addresses:  %d\n", len(d.Servers))
	fmt.Fprintf(&b, "  owners (whois):       %s\n", strings.Join(d.Owners, "; "))
	fmt.Fprintf(&b, "  located:              %.0f%%\n", 100*d.LocatedFraction())

	type cc struct {
		name string
		n    int
	}
	var cities []cc
	for c, n := range d.Cities {
		cities = append(cities, cc{c, n})
	}
	sort.Slice(cities, func(i, j int) bool {
		if cities[i].n != cities[j].n {
			return cities[i].n > cities[j].n
		}
		return cities[i].name < cities[j].name
	})
	top := cities
	if len(top) > 8 {
		top = top[:8]
	}
	var parts []string
	for _, c := range top {
		parts = append(parts, fmt.Sprintf("%s (%d)", c.name, c.n))
	}
	fmt.Fprintf(&b, "  top locations:        %s\n", strings.Join(parts, ", "))
	fmt.Fprintf(&b, "  countries:            %d\n", len(d.Countries))
	return b.String()
}

// FormatDuration renders a duration with the resolution the paper
// uses in prose (e.g. "4.0 s", "300 ms").
func FormatDuration(d time.Duration) string {
	if d >= time.Second {
		return fmt.Sprintf("%.1f s", d.Seconds())
	}
	return fmt.Sprintf("%d ms", d.Milliseconds())
}

// BatchLabel is re-exported for front ends building axis labels.
func BatchLabel(b workload.Batch) string { return b.String() }
