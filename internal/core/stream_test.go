package core

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runModes drives the identical repetition through a streaming and a
// buffered testbed and returns both window analyses plus both Metrics.
func runModes(p client.Profile, batch workload.Batch, seed int64, jitter float64) (sm, bm Metrics, sa, ba trace.Analysis) {
	run := func(tb *Testbed) (Metrics, trace.Analysis) {
		start := tb.Settle()
		t0 := tb.Clock.Now()
		tb.StartWindow(t0)
		batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
		res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
		tb.Clock.AdvanceTo(res.Done)
		return MeasureWindow(tb, t0, batch.Total()), tb.AnalyzeWindow(t0, trace.AllFlows)
	}
	sm, sa = run(NewStreamingTestbed(p, seed, jitter))
	bm, ba = run(NewTestbed(p, seed, jitter))
	return sm, bm, sa, ba
}

// TestStreamingMatchesBufferedMeasurement is the end-to-end
// counterpart of the trace-level randomized equivalence test: whole
// repetitions through real service profiles must measure bit-identical
// in both trace modes. The profile set covers the interesting
// classifier paths — split-name services, the edge-terminated
// same-name Google Drive (flow-size heuristic plus per-file
// connections, so hundreds of SYNs), the same-name Wuala, and Cloud
// Drive's per-file control connections.
func TestStreamingMatchesBufferedMeasurement(t *testing.T) {
	batch := workload.Batch{Count: 25, Size: 10_000, Kind: workload.Binary}
	for _, p := range client.Profiles() {
		sm, bm, sa, ba := runModes(p, batch, 77, DefaultJitter)
		if sm != bm {
			t.Errorf("%s: streaming metrics diverge\n stream %+v\n buffer %+v", p.Service, sm, bm)
		}
		if sa.Packets != ba.Packets || sa.TotalWire != ba.TotalWire ||
			sa.Connections != ba.Connections || sa.HasPayload != ba.HasPayload ||
			!sa.FirstPayload.Equal(ba.FirstPayload) || !sa.LastPayload.Equal(ba.LastPayload) {
			t.Errorf("%s: window analyses diverge\n stream %+v\n buffer %+v", p.Service, sa, ba)
		}
		if len(sa.SYNTimes) != len(ba.SYNTimes) {
			t.Fatalf("%s: SYN timeline length %d vs %d", p.Service, len(sa.SYNTimes), len(ba.SYNTimes))
		}
		for i := range sa.SYNTimes {
			if !sa.SYNTimes[i].Equal(ba.SYNTimes[i]) {
				t.Fatalf("%s: SYN[%d] = %v (stream) vs %v (buffer)", p.Service, i, sa.SYNTimes[i], ba.SYNTimes[i])
			}
		}
	}
}

// TestStreamingMeasureRequiresStartWindow pins the misuse guard: a
// streaming testbed measured without a registered window must fail
// loudly, never silently return an empty analysis of discarded
// packets.
func TestStreamingMeasureRequiresStartWindow(t *testing.T) {
	tb := NewStreamingTestbed(client.Dropbox(), 3, 0)
	start := tb.Settle()
	defer func() {
		if recover() == nil {
			t.Fatal("MeasureWindow on an unregistered streaming window did not panic")
		}
	}()
	MeasureWindow(tb, start, 0)
}
