package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/cloud"
	"repro/internal/compressor"
	"repro/internal/workload"
)

// The paper closes several observations with predictions ("we believe
// this is a bad implementation that will be fixed in next releases",
// "resources would therefore be wasted", "users with bandwidth
// constraints"). This file quantifies those counterfactuals: the same
// harness, one design change at a time.

// WhatIfResult compares a baseline against a variant.
type WhatIfResult struct {
	Name              string
	BaselineLabel     string
	VariantLabel      string
	Baseline, Variant float64
	Unit              string
}

// WhatIfCloudDrivePollingFixed re-runs the Fig. 1 idle experiment
// with Cloud Drive polling over a persistent connection like everyone
// else. The paper predicts the fix; this measures what it would save
// (the baseline is ~65 MB per day of background traffic).
func WhatIfCloudDrivePollingFixed(seed int64) WhatIfResult {
	before := RunIdle(client.CloudDrive(), seed)

	fixed := client.CloudDrive()
	fixed.PollPerConn = false
	fixed.PollUpBytes, fixed.PollDownBytes = 150, 150
	after := RunIdle(fixed, seed)

	return WhatIfResult{
		Name:          "clouddrive-polling-fixed",
		BaselineLabel: "new HTTPS conn per poll",
		VariantLabel:  "persistent poll channel",
		Baseline:      before.IdleRateBps,
		Variant:       after.IdleRateBps,
		Unit:          "b/s idle",
	}
}

// WhatIfDropboxSmartCompression gives Dropbox Google Drive's
// magic-number sniffing and uploads a real (incompressible) JPEG-like
// payload: the saving is CPU, not bytes — transmitted volume barely
// moves, which is the paper's point that compressing real JPEGs only
// wastes resources.
func WhatIfDropboxSmartCompression(seed int64) WhatIfResult {
	// PixelImage has an image header and incompressible body — the
	// "ordinary JPEG" stand-in (its body really does not compress).
	const size = 1 << 20
	upload := func(p client.Profile) float64 {
		pts := Fig5CompressionSeries(p, workload.PixelImage, []int64{size}, seed)
		return float64(pts[0].Upload) / 1e6
	}
	smart := client.Dropbox()
	smart.Compression = compressor.Smart
	return WhatIfResult{
		Name:          "dropbox-smart-compression",
		BaselineLabel: "always compress",
		VariantLabel:  "sniff magic numbers",
		Baseline:      upload(client.Dropbox()),
		Variant:       upload(smart),
		Unit:          "MB uploaded for a 1 MB image",
	}
}

// WhatIfMobileUplink reruns the 100x10 kB benchmark with the test
// computer on a 2 Mb/s uplink (the paper flags "users with bandwidth
// constraints (e.g., in 3G/4G networks)"): protocol overhead turns
// into real time, so the bundled client's advantage widens.
func WhatIfMobileUplink(seed int64) WhatIfResult {
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	completion := func(rateBps int64) float64 {
		p := client.CloudDrive()
		tb := NewTestbedAt(p, cloud.SpecFor(p.Service), Twente, seed, 0)
		tb.Client.Host.RateBps = rateBps
		start := tb.Settle()
		t0 := tb.Clock.Now()
		batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
		res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
		tb.Clock.AdvanceTo(res.Done)
		return MeasureWindow(tb, t0, batch.Total()).Completion.Seconds()
	}
	return WhatIfResult{
		Name:          "clouddrive-on-mobile-uplink",
		BaselineLabel: "campus 1 Gb/s",
		VariantLabel:  "3G/4G 2 Mb/s uplink",
		Baseline:      completion(0),
		Variant:       completion(2e6),
		Unit:          "s to sync 100x10kB",
	}
}

// WhatIfLossyPath reruns a 10 MB upload over a 2%-loss path: window
// halving turns a bandwidth-limited transfer into a loss-limited one,
// and the damage scales with the path RTT — another reason the
// US-centric services suffer from Europe.
func WhatIfLossyPath(seed int64) WhatIfResult {
	batch := workload.Batch{Count: 1, Size: 10 << 20, Kind: workload.Binary}
	completion := func(loss float64) float64 {
		p := client.SkyDrive()
		tb := NewTestbedAt(p, cloud.SpecFor(p.Service), Twente, seed, 0)
		tb.Net.LossRate = loss
		start := tb.Settle()
		t0 := tb.Clock.Now()
		batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
		res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
		tb.Clock.AdvanceTo(res.Done)
		return MeasureWindow(tb, t0, batch.Total()).Completion.Seconds()
	}
	return WhatIfResult{
		Name:          "skydrive-on-lossy-path",
		BaselineLabel: "clean path",
		VariantLabel:  "2% segment loss",
		Baseline:      completion(0),
		Variant:       completion(0.02),
		Unit:          "s to sync 1x10MB",
	}
}

// CloudDriveDailyBackgroundMB converts the Fig. 1 idle rate into the
// paper's headline "about 65 MB per day!".
func CloudDriveDailyBackgroundMB(seed int64) float64 {
	r := RunIdle(client.CloudDrive(), seed)
	return r.IdleRateBps / 8 * 86400 / 1e6
}

// whatIfStudies lists every counterfactual. Each study builds its own
// testbeds from the base seed alone, so the list is an index→work
// mapping with no shared state — exactly the RunN contract.
var whatIfStudies = []func(int64) WhatIfResult{
	WhatIfCloudDrivePollingFixed,
	WhatIfDropboxSmartCompression,
	WhatIfMobileUplink,
	WhatIfLossyPath,
}

// WhatIfStudies runs every counterfactual, fanned out over the shared
// campaign worker budget like every other campaign layer; results
// stay in declaration order regardless of worker count.
func WhatIfStudies(seed int64) []WhatIfResult {
	return RunN(len(whatIfStudies), CampaignWorkers, func(i int) WhatIfResult {
		return whatIfStudies[i](seed)
	})
}
