package core

import (
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/dnssim"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/workload"
)

// ServerRecord is everything the discovery pipeline learned about one
// front-end address (Sect. 2.1).
type ServerRecord struct {
	IP         string
	DNSName    string // the service name that resolved to this IP
	ReverseDNS string
	Owner      string
	Location   geo.Estimate
}

// Discovery is the architecture-discovery result for one service: the
// data of Sect. 3.2 and, for Google Drive, Fig. 2.
type Discovery struct {
	Service string
	// Names are the service DNS names observed in the client's
	// traffic during start, sync and idle phases.
	Names []string
	// Servers are all front-end addresses found by resolver fan-out.
	Servers []ServerRecord
	// Owners are the distinct whois owners.
	Owners []string
	// Countries/Cities count located front-ends per place.
	Countries map[string]int
	Cities    map[string]int
}

// NumResolvers is the fan-out width: "more than 2,000 open DNS
// resolvers spread around the world".
const NumResolvers = 2000

// Discover runs the full Sect. 2.1 pipeline for one service:
//
//  1. observe the DNS names the client contacts when starting, after
//     manipulating files, and while idle;
//  2. resolve each name through >2,000 open resolvers world-wide and
//     union the answers;
//  3. identify owners via whois;
//  4. geolocate every address with the hybrid methodology
//     (reverse-DNS airport codes, shortest RTT to vantage points,
//     traceroute).
func Discover(p client.Profile, seed int64) Discovery {
	tb := NewTestbed(p, seed, 0)

	// Phase 1: drive the client through start / file sync / idle and
	// collect contacted names from the trace.
	start := tb.Settle()
	t0 := tb.Clock.Now()
	workload.Batch{Count: 3, Size: 50_000, Kind: workload.Binary}.
		Materialize(tb.Folder, tb.RNG, t0, "probe")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	tb.Client.InstallPoller(tb.Sched)
	tb.Sched.RunUntil(tb.Clock.Now().Add(5 * time.Minute))

	nameSet := map[string]bool{}
	for _, f := range tb.Cap.Flows() {
		nameSet[f.ServerName] = true
	}
	d := Discovery{
		Service:   p.Service,
		Countries: map[string]int{},
		Cities:    map[string]int{},
	}
	for n := range nameSet {
		d.Names = append(d.Names, n)
	}
	sort.Strings(d.Names)

	// Phase 2: resolver fan-out.
	resolvers := dnssim.GenerateResolvers(tb.RNG.Fork(99), NumResolvers, 5)
	ipSet := map[string]string{} // ip -> name
	for _, n := range d.Names {
		for _, ip := range tb.DNS.FanOut(n, resolvers) {
			ipSet[ip] = n
		}
	}

	// Vantage points for the shortest-RTT step: PlanetLab-like nodes
	// at every landmark city, instantiated as real emulated hosts so
	// RTTs are measured, not computed from ground truth.
	vantages := makeVantages(tb.Net)

	ips := make([]string, 0, len(ipSet))
	for ip := range ipSet {
		ips = append(ips, ip)
	}
	sort.Strings(ips)

	ownerSet := map[string]bool{}
	for _, ip := range ips {
		target, ok := tb.Net.HostByAddr(ip)
		if !ok {
			continue
		}
		rec := ServerRecord{IP: ip, DNSName: ipSet[ip]}
		rec.ReverseDNS = tb.DNS.ReverseLookup(ip)
		if w, ok := tb.Whois.Lookup(ip); ok {
			rec.Owner = w.Owner
		} else {
			rec.Owner = "UNKNOWN"
		}
		ownerSet[rec.Owner] = true

		ev := geo.Evidence{
			IP:         ip,
			ReverseDNS: rec.ReverseDNS,
			Traceroute: tb.Net.Traceroute(tb.Client.Host, target),
		}
		for _, v := range vantages {
			ev.Vantages = append(ev.Vantages, geo.VantageRTT{
				Name: v.Name, Coord: v.Coord, RTT: tb.Net.SampleRTT(v, target),
			})
		}
		rec.Location = geo.Locate(ev)
		if rec.Location.Located() {
			d.Countries[rec.Location.Country]++
			d.Cities[rec.Location.City]++
		}
		d.Servers = append(d.Servers, rec)
	}
	for o := range ownerSet {
		d.Owners = append(d.Owners, o)
	}
	sort.Strings(d.Owners)
	return d
}

// makeVantages instantiates PlanetLab-style vantage hosts at every
// landmark city (idempotent per network).
func makeVantages(n *netem.Network) []*netem.Host {
	var out []*netem.Host
	for _, a := range geo.Airports() {
		name := "vantage-" + strings.ToLower(a.Code) + ".planetlab.sim"
		if h, ok := n.HostByName(name); ok {
			out = append(out, h)
			continue
		}
		out = append(out, n.AddHost(&netem.Host{
			Name:  name,
			Addr:  "198.18." + vantageOctets(len(out)),
			Coord: a.Coord,
		}))
	}
	return out
}

func vantageOctets(i int) string {
	return itoa(i>>8) + "." + itoa(i&0xff)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// EdgeCount returns how many distinct front-end entry points the
// discovery found — the Fig. 2 headline ("more than 100 different
// entry points have been located" for Google Drive).
func (d Discovery) EdgeCount() int { return len(d.Servers) }

// LocatedFraction is the share of servers the hybrid geolocation could
// place.
func (d Discovery) LocatedFraction() float64 {
	if len(d.Servers) == 0 {
		return 0
	}
	located := 0
	for _, s := range d.Servers {
		if s.Location.Located() {
			located++
		}
	}
	return float64(located) / float64(len(d.Servers))
}
