package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Capabilities is one row of Table 1, as *detected* by the Sect. 4
// tests — not copied from the client profile. The detectors only see
// the packet trace, so a mis-implemented client capability shows up
// as a detection mismatch in the tests.
type Capabilities struct {
	Service  string
	Chunking string // "no", "4 MB", "8 MB", "var."
	Bundling bool
	// Compression is "no", "always" or "smart".
	Compression string
	Dedup       bool
	// DedupAfterDelete reports whether deduplication still works
	// when a file is deleted and later restored (Sect. 4.3 step iv).
	DedupAfterDelete bool
	DeltaEncoding    bool
}

// numDetectors is how many independent Sect. 4 detectors make up one
// Table 1 row: chunking, bundling, compression, deduplication (one
// four-step experiment yielding both Dedup and DedupAfterDelete) and
// delta encoding.
//
// The detectors run on buffered testbeds deliberately: they re-window
// the trace at instants discovered mid-experiment (each dedup step,
// the modification of a delta test) and walk individual packets
// (UploadPauses, Bursts, estimateRTT's SYN/SYN-ACK pairing), none of
// which survives the streaming fold. Their traces are small — single
// files or 100 tiny ones — so O(packets) buffering is irrelevant here.
const numDetectors = 5

// DetectCapabilities runs every Sect. 4 test for one service, the
// five detectors fanned out over the shared scheduler pool.
func DetectCapabilities(p client.Profile, seed int64) Capabilities {
	return DetectCapabilitiesAll([]client.Profile{p}, seed)[p.Service]
}

// DetectCapabilitiesAll runs the Sect. 4 suite for every profile with
// the whole service x detector matrix flattened onto one shared pool.
// Each detector builds its own testbed from (profile, seed) and
// writes only its own capability fields, so the matrix is
// bit-identical to running the detectors one service at a time.
func DetectCapabilitiesAll(profiles []client.Profile, seed int64) map[string]Capabilities {
	caps := make([]Capabilities, len(profiles))
	dedups := make([]DedupResult, len(profiles))
	RunEach(len(profiles)*numDetectors, CampaignWorkers, func(i int) {
		si, det := i/numDetectors, i%numDetectors
		p := profiles[si]
		switch det {
		case 0:
			caps[si].Chunking = DetectChunking(p, seed)
		case 1:
			caps[si].Bundling = DetectBundling(p, seed).Bundling
		case 2:
			caps[si].Compression = DetectCompression(p, seed)
		case 3:
			// One four-step experiment yields both dedup verdicts;
			// running it twice with different seeds would report two
			// inconsistent experiments at twice the cost.
			dedups[si] = DetectDedup(p, seed)
		case 4:
			caps[si].DeltaEncoding = DetectDelta(p, seed)
		}
	})
	out := make(map[string]Capabilities, len(profiles))
	for i, p := range profiles {
		caps[i].Service = p.Service
		caps[i].Dedup = dedups[i].Dedup
		caps[i].DedupAfterDelete = dedups[i].AfterDelete
		out[p.Service] = caps[i]
	}
	return out
}

// fallbackRTT is the conservative estimate estimateRTT returns when
// the capture holds no matching handshake to measure.
const fallbackRTT = 100 * time.Millisecond

// estimateRTT recovers the path RTT from the TCP handshake of a flow —
// the sniffer's view (SYN to SYN-ACK), needing no model internals.
func estimateRTT(cap *trace.Capture, f trace.FlowFilter) time.Duration {
	set := make(map[trace.FlowID]time.Time)
	for _, p := range cap.Packets() {
		if p.Flags.SYN && !p.Flags.ACK && f(cap.Flow(p.Flow)) {
			set[p.Flow] = p.Time
		}
		if p.Flags.SYN && p.Flags.ACK {
			if t0, ok := set[p.Flow]; ok {
				return p.Time.Sub(t0)
			}
		}
	}
	return fallbackRTT
}

// DetectChunking uploads one large file and infers the chunking
// strategy from upload pauses (Sect. 4.1): no pauses means the file
// travelled as a single object; regular pause spacing means fixed
// chunks (the spacing is the chunk size); irregular spacing means
// variable chunks.
func DetectChunking(p client.Profile, seed int64) string {
	// Large enough for a dozen chunks at the biggest chunk size in
	// the wild (8 MB), so the size statistics are meaningful; not a
	// multiple of common chunk sizes, so the remainder chunk is
	// detectable and excluded.
	const fileSize = 61 << 20
	tb := NewTestbed(p, seed, 0)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	tb.Folder.Create(t0, "big.bin", workload.Generate(tb.RNG, workload.Binary, fileSize))
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)

	win := tb.Cap.Window(t0, trace.FarFuture)
	storage := tb.StorageFilter(t0)
	rtt := estimateRTT(win, storage)
	pauses := win.UploadPauses(storage, rtt+2*rtt/5)
	if len(pauses) == 0 {
		return "no"
	}
	// Chunk sizes are the differences of the cumulative byte marks.
	// Segments below a small floor are protocol artifacts (the TLS
	// handshake before the first data, trailing acknowledgments),
	// not chunks. The remainder after the last pause is excluded:
	// the final chunk of a fixed-size chunker is legitimately short
	// and would fake variability.
	const chunkFloor = 64 << 10
	var sizes []float64
	prev := int64(0)
	for _, pa := range pauses {
		if s := pa.BytesBefore - prev; s >= chunkFloor {
			sizes = append(sizes, float64(s))
		}
		prev = pa.BytesBefore
	}
	if len(sizes) <= 1 {
		return "no"
	}

	if stats.CV(sizes) > 0.25 {
		return "var."
	}
	return fmt.Sprintf("%.0f MB", stats.Mean(sizes)/(1<<20))
}

// BundlingResult is the outcome of the Sect. 4.2 test.
type BundlingResult struct {
	Bundling bool
	// ConnsPerFile is how many connections the client opened per
	// file in the 100-file set (Fig. 3: ~1 for Google Drive, ~4 for
	// Cloud Drive, ~0 for connection-reusing services).
	ConnsPerFile float64
	// SequentialAcks reports per-file application acknowledgments,
	// detected by counting packet bursts (SkyDrive, Wuala).
	SequentialAcks bool
}

// DetectBundling uploads the same volume split into 100 files and
// analyzes connections and bursts (Sect. 4.2).
func DetectBundling(p client.Profile, seed int64) BundlingResult {
	const files = 100
	tb := NewTestbed(p, seed, 0)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	workload.Batch{Count: files, Size: 10_000, Kind: workload.Binary}.
		Materialize(tb.Folder, tb.RNG, t0, "bundle")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)

	win := tb.Cap.Window(t0, trace.FarFuture)
	storage := tb.StorageFilter(t0)
	conns := win.ConnectionCount(trace.AllFlows)
	rtt := estimateRTT(tb.Cap, storage)
	bursts := win.Bursts(storage, rtt+2*rtt/5)

	r := BundlingResult{ConnsPerFile: float64(conns) / files}
	r.SequentialAcks = len(bursts) >= files*3/4
	r.Bundling = r.ConnsPerFile < 0.5 && !r.SequentialAcks
	return r
}

// DedupResult is the outcome of the Sect. 4.3 four-step test.
type DedupResult struct {
	Dedup       bool
	AfterDelete bool
}

// DetectDedup runs the paper's four-step deduplication test: (i) a
// random file; (ii) a replica under a different name; (iii) a copy in
// a third folder; (iv) delete everything, then place the original
// back. Upload volumes per step tell whether replicas travelled.
func DetectDedup(p client.Profile, seed int64) DedupResult {
	const size = 512 << 10
	tb := NewTestbed(p, seed, 0)
	start := tb.Settle()

	syncStep := func(t0 time.Time) int64 {
		res := tb.Client.SyncChanges(tb.Folder, t0.Add(-time.Millisecond))
		tb.Clock.AdvanceTo(res.Done.Add(10 * time.Second))
		win := tb.Cap.Window(t0, trace.FarFuture)
		return win.WireBytesDir(tb.StorageFilter(t0), trace.Upstream)
	}

	// Step i: original file.
	t1 := start
	tb.Folder.Create(t1, "one/original.bin", workload.Generate(tb.RNG, workload.Binary, size))
	u1 := syncStep(t1)

	// Step ii: same payload, different name, second folder.
	t2 := tb.Clock.Now()
	tb.Folder.Copy(t2, "one/original.bin", "two/replica.bin")
	u2 := syncStep(t2)

	// Step iii: copy of the original in a third folder.
	t3 := tb.Clock.Now()
	tb.Folder.Copy(t3, "one/original.bin", "three/copy.bin")
	u3 := syncStep(t3)

	// Step iv: delete all copies, then place the original back.
	t4 := tb.Clock.Now()
	tb.Folder.Delete(t4, "one/original.bin")
	tb.Folder.Delete(t4, "two/replica.bin")
	tb.Folder.Delete(t4, "three/copy.bin")
	syncStep(t4)
	t5 := tb.Clock.Now()
	tb.Folder.Restore(t5, "one/original.bin")
	u4 := syncStep(t5)

	threshold := u1 / 10
	return DedupResult{
		Dedup:       u2 < threshold && u3 < threshold,
		AfterDelete: u4 < threshold,
	}
}

// DetectDelta runs the Sect. 4.4 test in its append form: modify an
// existing file by adding content at the end and compare the upload
// volume with the modification size.
func DetectDelta(p client.Profile, seed int64) bool {
	const base = 1 << 20
	const added = 100 << 10
	tb := NewTestbed(p, seed, 0)
	start := tb.Settle()

	t0 := tb.Clock.Now()
	tb.Folder.Create(t0, "delta.bin", workload.Generate(tb.RNG, workload.Binary, base))
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done.Add(10 * time.Second))

	t1 := tb.Clock.Now()
	tb.Folder.Append(t1, "delta.bin", workload.Generate(tb.RNG, workload.Binary, added))
	res = tb.Client.SyncChanges(tb.Folder, t1.Add(-time.Millisecond))
	tb.Clock.AdvanceTo(res.Done)

	win := tb.Cap.Window(t1, trace.FarFuture)
	up := win.WireBytesDir(tb.StorageFilter(t1), trace.Upstream)
	// Delta encoding: the upload tracks the added bytes, not the
	// file size.
	return up < (base+added)/3
}

// DetectCompression runs the Sect. 4.5 test: upload equally sized
// text, random and fake-JPEG files and compare transmitted volumes.
func DetectCompression(p client.Profile, seed int64) string {
	const size = 500 << 10
	upload := func(kind workload.Kind, s int64) int64 {
		tb := NewTestbed(p, s, 0)
		start := tb.Settle()
		t0 := tb.Clock.Now()
		tb.Folder.Create(t0, "f"+kind.Ext(), workload.Generate(tb.RNG, kind, size))
		res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
		tb.Clock.AdvanceTo(res.Done)
		win := tb.Cap.Window(t0, trace.FarFuture)
		return win.WireBytesDir(tb.StorageFilter(t0), trace.Upstream)
	}
	text := upload(workload.Text, seed)
	random := upload(workload.Binary, seed+1)
	if text > random*3/4 {
		return "no"
	}
	// Compression detected; fake JPEGs reveal whether the client
	// sniffs content types (Google Drive) or compresses blindly
	// (Dropbox).
	fake := upload(workload.FakeJPEG, seed+2)
	if fake > random*3/4 {
		return "smart"
	}
	return "always"
}

// sortedServices is a helper for deterministic report ordering.
func sortedServices(m map[string]Capabilities) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
