package core

import (
	"math"
	"time"

	"repro/internal/stats"
)

// Metrics are the per-repetition measurements of Sect. 5, all derived
// from the packet trace.
type Metrics struct {
	// Startup is the synchronization start-up time (Fig. 6a): from
	// the first file manipulation to the first payload packet in a
	// storage flow.
	Startup time.Duration
	// Completion is the upload duration (Fig. 6b): first to last
	// payload packet in storage flows, tear-down excluded.
	Completion time.Duration
	// TotalTraffic is all benchmark-window traffic, storage and
	// control, both directions, wire bytes.
	TotalTraffic int64
	// StorageUp is the upstream wire volume on storage flows — the
	// "Upload (MB)" axis of Figs. 4 and 5.
	StorageUp int64
	// Overhead is TotalTraffic divided by the workload's content
	// size (Fig. 6c; log scale, can exceed 1 by a lot).
	Overhead float64
	// Connections counts client-initiated TCP connections in the
	// window (Fig. 3).
	Connections int
	// GoodputBps is content bits per completion second — the rates
	// quoted in Sect. 5.2 (e.g. Google Drive 26.49 Mb/s).
	GoodputBps float64
}

// Summary aggregates repetitions of one experiment the way the paper
// plots them (averages over 24 runs).
type Summary struct {
	Reps             int
	MeanStartup      time.Duration
	StdStartup       time.Duration
	MeanCompletion   time.Duration
	StdCompletion    time.Duration
	MedianCompletion time.Duration
	P95Completion    time.Duration
	CI95Completion   time.Duration // half-width of the 95% CI of the mean
	MeanTotalTraffic int64
	MeanStorageUp    int64
	MeanOverhead     float64
	MeanConnections  float64
	MedianGoodputBps float64
	// RepsUsed is how many repetitions actually ran. For fixed-rep
	// campaigns it equals Reps; an adaptive campaign (RunCampaignAdaptive)
	// stops early when the precision target is met, so snapshots record
	// the spent budget alongside the result.
	RepsUsed int
	// AchievedRelHW is the achieved relative precision: the largest
	// CI95 half-width over the headline metrics (completion, goodput),
	// relative to the magnitude of the respective mean. Adaptive runs
	// stop when it reaches the target; fixed-rep runs report it so two
	// snapshots can be compared at equal confidence.
	AchievedRelHW float64
}

// Summarize aggregates a set of repetitions. It panics on an empty
// input: a benchmark that produced no repetitions is a harness bug.
func Summarize(runs []Metrics) Summary {
	if len(runs) == 0 {
		panic("core: Summarize of zero repetitions")
	}
	var s Summary
	s.Reps = len(runs)
	s.RepsUsed = len(runs)
	var startups, completions, goodputs []float64
	for _, r := range runs {
		startups = append(startups, float64(r.Startup))
		completions = append(completions, float64(r.Completion))
		goodputs = append(goodputs, r.GoodputBps)
		s.MeanTotalTraffic += r.TotalTraffic
		s.MeanStorageUp += r.StorageUp
		s.MeanOverhead += r.Overhead
		s.MeanConnections += float64(r.Connections)
	}
	n := float64(len(runs))
	s.MeanTotalTraffic = int64(float64(s.MeanTotalTraffic) / n)
	s.MeanStorageUp = int64(float64(s.MeanStorageUp) / n)
	s.MeanOverhead /= n
	s.MeanConnections /= n

	s.MeanStartup = time.Duration(stats.Mean(startups))
	s.StdStartup = time.Duration(stats.Std(startups))
	mean, hw := stats.MeanCI95(completions)
	s.MeanCompletion = time.Duration(mean)
	s.CI95Completion = time.Duration(hw)
	s.StdCompletion = time.Duration(stats.Std(completions))
	s.MedianCompletion = time.Duration(stats.Median(completions))
	s.P95Completion = time.Duration(stats.Percentile(completions, 95))
	s.MedianGoodputBps = stats.Median(goodputs)
	s.AchievedRelHW = math.Max(relHalfWidth(completions), relHalfWidth(goodputs))
	return s
}

// relHalfWidth is the batch form of stats.Accumulator.RelHalfWidth:
// the CI95 half-width relative to the magnitude of the mean, 0 for a
// degenerate (zero-spread) sample, +Inf for a zero mean with spread.
func relHalfWidth(v []float64) float64 {
	mean, hw := stats.MeanCI95(v)
	if hw == 0 {
		return 0
	}
	if mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(hw / mean)
}
