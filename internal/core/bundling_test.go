package core

import (
	"testing"

	"repro/internal/client"
)

func TestBundlingStudyFourSets(t *testing.T) {
	// Keep the volume modest so the 1000-file set stays fast.
	const total = 1_000_000

	drop := RunBundlingStudy(client.Dropbox(), total, 51)
	if len(drop.Results) != 4 {
		t.Fatalf("sets = %d", len(drop.Results))
	}
	// Bundling: splitting the same volume into 1000 files costs
	// Dropbox far less than it costs a per-file-connection service.
	dropRatio := float64(drop.Results[3].Completion) / float64(drop.Results[0].Completion)

	gd := RunBundlingStudy(client.GoogleDrive(), total, 51)
	gdRatio := float64(gd.Results[3].Completion) / float64(gd.Results[0].Completion)
	if gdRatio < 4*dropRatio {
		t.Fatalf("1000-file penalty: gdrive %.1fx vs dropbox %.1fx — bundling should help much more", gdRatio, dropRatio)
	}

	// Connection counts scale with files only for per-file services.
	if got := gd.Results[3].Connections; got < 900 {
		t.Fatalf("gdrive 1000-file set opened %d connections", got)
	}
	if got := drop.Results[3].Connections; got > 20 {
		t.Fatalf("dropbox 1000-file set opened %d connections", got)
	}

	// Overhead explodes with file count for the per-file services
	// (Sect. 5.3).
	if gd.Results[3].Overhead < 2*gd.Results[0].Overhead {
		t.Fatalf("gdrive overhead did not grow with file count: %+v", gd.Results)
	}
}
