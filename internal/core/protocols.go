package core

import (
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/trace"
)

// ProtocolReport regenerates the Sect. 3.1 findings for one service —
// which channels run over plain HTTP, whether control and storage are
// split across servers, how many servers login touches, and the
// polling cadence — all inferred from the trace.
type ProtocolReport struct {
	Service string

	// UsesPlainHTTP reports any port-80 flow (Dropbox notifications,
	// Wuala storage operations).
	UsesPlainHTTP bool
	// PlainHTTPNames lists the server names seen on port 80.
	PlainHTTPNames []string

	// SplitControlStorage is true when control and storage traffic
	// go to different DNS names ("their identification is trivial").
	SplitControlStorage bool

	// LoginServers is the number of distinct server addresses
	// contacted during the login phase (13 for SkyDrive).
	LoginServers int
	LoginBytes   int64

	// PollInterval is the estimated keep-alive cadence while idle,
	// recovered from gaps between activity clusters in the trace.
	PollInterval time.Duration
	// PollConnPerPoll is true when every poll opens a fresh
	// connection (Cloud Drive).
	PollConnPerPoll bool
	// IdleRateBps is the background traffic rate.
	IdleRateBps float64
}

// AnalyzeProtocols drives a client through login and a 16-minute idle
// period and infers the Sect. 3.1 protocol behaviour from the capture.
// It needs a buffered trace: the login/idle windows are only known
// after the run, and activityClusterStarts walks individual packets.
func AnalyzeProtocols(p client.Profile, seed int64) ProtocolReport {
	tb := NewTestbed(p, seed, 0)
	t0 := tb.Clock.Now()
	loginDone := tb.Client.Login(t0)
	tb.Clock.AdvanceTo(loginDone)
	tb.Client.InstallPoller(tb.Sched)
	end := t0.Add(IdleWindow)
	tb.Sched.RunUntil(end)

	r := ProtocolReport{Service: p.Service}

	// Plain-HTTP channels and name split.
	names := map[string]bool{}
	plain := map[string]bool{}
	for _, f := range tb.Cap.Flows() {
		names[f.ServerName] = true
		if f.Key.ServerPort == 80 {
			plain[f.ServerName] = true
		}
	}
	for n := range plain {
		r.PlainHTTPNames = append(r.PlainHTTPNames, n)
	}
	sort.Strings(r.PlainHTTPNames)
	r.UsesPlainHTTP = len(plain) > 0
	r.SplitControlStorage = len(names) > 1

	// Login phase: distinct server addresses and volume.
	loginWin := tb.Cap.Window(t0, loginDone)
	addrs := map[string]bool{}
	active := loginWin.FlowsWithTraffic() // []bool indexed by FlowID
	for _, f := range loginWin.Flows() {
		if active[f.ID] {
			addrs[f.Key.ServerAddr] = true
		}
	}
	r.LoginServers = len(addrs)
	r.LoginBytes = loginWin.TotalWireBytes(trace.AllFlows)

	// Idle phase: cluster activity into polls and estimate cadence.
	idleWin := tb.Cap.Window(loginDone.Add(2*time.Second), end)
	starts := activityClusterStarts(idleWin, 2*time.Second)
	r.PollInterval = medianGap(starts)
	idleBytes := idleWin.TotalWireBytes(trace.AllFlows)
	r.IdleRateBps = float64(idleBytes*8) / end.Sub(loginDone).Seconds()

	// Per-poll connections: new SYNs during idle track poll count.
	syns := idleWin.ConnectionCount(trace.AllFlows)
	r.PollConnPerPoll = len(starts) > 3 && syns >= len(starts)-1
	return r
}

// activityClusterStarts groups trace packets into bursts separated by
// at least `quiet` and returns each burst's start instant. It walks
// the span-expanded trace so a long transmission counts as continuous
// activity, not a single instant followed by silence.
func activityClusterStarts(cap *trace.Capture, quiet time.Duration) []time.Time {
	var starts []time.Time
	var last time.Time
	for i, p := range cap.ExpandedPackets() {
		if i == 0 || p.Time.Sub(last) >= quiet {
			starts = append(starts, p.Time)
		}
		last = p.Time
	}
	return starts
}

// medianGap returns the median interval between consecutive instants.
func medianGap(ts []time.Time) time.Duration {
	if len(ts) < 2 {
		return 0
	}
	gaps := make([]time.Duration, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		gaps = append(gaps, ts[i].Sub(ts[i-1]))
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2]
}
