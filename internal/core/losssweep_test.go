package core

import (
	"testing"

	"repro/internal/client"
)

func sweepProfiles() []client.Profile {
	return []client.Profile{client.SkyDrive(), client.Dropbox()}
}

// TestLossSweepSlowsWithLoss pins the sweep's physics: for every
// service, mean completion grows monotonically along the loss axis.
func TestLossSweepSlowsWithLoss(t *testing.T) {
	cells := LossSweep(sweepProfiles(), DefaultLossRates, DefaultLossBatch, Twente, 4, 11)
	if len(cells) != len(sweepProfiles())*len(DefaultLossRates) {
		t.Fatalf("cells = %d", len(cells))
	}
	perSvc := len(DefaultLossRates)
	for si, p := range sweepProfiles() {
		for ri := 1; ri < perSvc; ri++ {
			prev, cur := cells[si*perSvc+ri-1], cells[si*perSvc+ri]
			if cur.Summary.MeanCompletion <= prev.Summary.MeanCompletion {
				t.Errorf("%s: completion at %g%% loss (%v) not slower than at %g%% (%v)",
					p.Service, cur.LossRate*100, cur.Summary.MeanCompletion,
					prev.LossRate*100, prev.Summary.MeanCompletion)
			}
		}
	}
}

// TestLossSweepParallelEquivalence pins the RunN lift: bit-identical
// cells at any worker count.
func TestLossSweepParallelEquivalence(t *testing.T) {
	defer func(old int) { CampaignWorkers = old }(CampaignWorkers)

	CampaignWorkers = 1
	sequential := LossSweep(sweepProfiles(), []float64{0.005, 0.02}, DefaultLossBatch, Twente, 3, 5)
	for _, workers := range []int{2, 8} {
		CampaignWorkers = workers
		got := LossSweep(sweepProfiles(), []float64{0.005, 0.02}, DefaultLossBatch, Twente, 3, 5)
		if len(got) != len(sequential) {
			t.Fatalf("workers=%d: %d cells vs %d", workers, len(got), len(sequential))
		}
		for i := range got {
			if got[i] != sequential[i] {
				t.Errorf("workers=%d: cell %d diverged\n parallel   %+v\n sequential %+v",
					workers, i, got[i], sequential[i])
			}
		}
	}
}

// TestCompareReportsLossySection pins the campaign-surface rules: the
// lossy section is part of the compared index (same-campaign
// comparison stays clean), and a campaign gaining the section against
// an older baseline reports cell_added drift instead of silently
// shrinking to the clean intersection.
func TestCompareReportsLossySection(t *testing.T) {
	old := Campaign{Tool: ToolVersion, Fig6: Fig6Matrix(sweepProfiles(), 1, 3)}
	cur := old
	cur.Lossy = LossSweep(sweepProfiles(), []float64{0.02}, DefaultLossBatch, Twente, 1, 3)

	if deltas := Compare(cur, cur, 1.3); len(deltas) != 0 {
		t.Fatalf("campaign with lossy section differs from itself: %v", deltas)
	}
	deltas := Compare(old, cur, 1.3)
	if len(deltas) != len(cur.Lossy) {
		t.Fatalf("gained lossy section: %d deltas, want %d cell_added", len(deltas), len(cur.Lossy))
	}
	for _, d := range deltas {
		if d.Metric != "cell_added" || d.B <= 0 {
			t.Fatalf("unexpected delta for gained cell: %+v", d)
		}
	}
	// And the reverse direction reports the removal.
	removed := Compare(cur, old, 1.3)
	if len(removed) != len(cur.Lossy) || removed[0].Metric != "cell_removed" {
		t.Fatalf("lost lossy section not reported: %v", removed)
	}
}
