package core

import (
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/workload"
)

func TestVantageByName(t *testing.T) {
	if v, ok := VantageByName("twente"); !ok || v.Name != "twente" {
		t.Fatal("twente lookup")
	}
	if v, ok := VantageByName("SEA"); !ok || v.Name != "seattle" {
		t.Fatalf("IATA lookup: %+v %v", v, ok)
	}
	if v, ok := VantageByName("Singapore"); !ok || !strings.Contains(v.Name, "singapore") {
		t.Fatalf("city lookup: %+v %v", v, ok)
	}
	if _, ok := VantageByName("atlantis"); ok {
		t.Fatal("unknown city matched")
	}
}

func TestLocationChangesTheWinner(t *testing.T) {
	// From Twente, Wuala (EU servers) beats SkyDrive (US) on a 1 MB
	// upload; from Seattle, the tables turn — the paper's point that
	// data-center placement drives single-file results and that the
	// tool should compare locations.
	batch := workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}
	sea, _ := VantageByName("SEA")

	wualaEU := RunSyncFrom(client.Wuala(), batch, Twente, 61, 0)
	wualaUS := RunSyncFrom(client.Wuala(), batch, sea, 61, 0)
	skyEU := RunSyncFrom(client.SkyDrive(), batch, Twente, 61, 0)
	skyUS := RunSyncFrom(client.SkyDrive(), batch, sea, 61, 0)

	if wualaEU.Completion >= skyEU.Completion {
		t.Fatalf("from Twente Wuala (%v) should beat SkyDrive (%v)",
			wualaEU.Completion, skyEU.Completion)
	}
	// Moving to Seattle must hurt Wuala and help SkyDrive.
	if wualaUS.Completion <= wualaEU.Completion {
		t.Fatalf("Wuala from Seattle (%v) should be slower than from Twente (%v)",
			wualaUS.Completion, wualaEU.Completion)
	}
	if skyUS.Completion >= skyEU.Completion {
		t.Fatalf("SkyDrive from Seattle (%v) should be faster than from Twente (%v)",
			skyUS.Completion, skyEU.Completion)
	}
}

func TestGoogleDriveEdgeFollowsTheClient(t *testing.T) {
	// Google Drive's edge termination keeps single-file completion
	// location-insensitive — its advantage over centralized designs.
	batch := workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}
	syd, _ := VantageByName("SYD")
	eu := RunSyncFrom(client.GoogleDrive(), batch, Twente, 62, 0)
	au := RunSyncFrom(client.GoogleDrive(), batch, syd, 62, 0)
	ratio := au.Completion.Seconds() / eu.Completion.Seconds()
	if ratio > 2.0 || ratio < 0.5 {
		t.Fatalf("edge network should level locations: Twente %v vs Sydney %v",
			eu.Completion, au.Completion)
	}
}

func TestLocationStudyAndReport(t *testing.T) {
	batch := workload.Batch{Count: 1, Size: 100 << 10, Kind: workload.Binary}
	sea, _ := VantageByName("SEA")
	vs := []Vantage{Twente, sea}
	cells := LocationStudy(batch, vs, 63)
	if len(cells) != len(client.Profiles())*2 {
		t.Fatalf("cells = %d", len(cells))
	}
	out := LocationReport(cells, vs)
	for _, want := range []string{"twente", "seattle", "Dropbox", "Cloud Drive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
