package core

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/trace"
	"repro/internal/workload"
)

// syncedTestbed simulates one full 100x10 kB upload and returns the
// testbed ready for measurement.
func syncedTestbed(b *testing.B, p client.Profile) (*Testbed, time.Time, int64) {
	b.Helper()
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	tb := NewTestbed(p, 42, DefaultJitter)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	batch.Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	return tb, t0, batch.Total()
}

// seedMeasureWindow replicates the pre-rewrite measurement path scan
// for scan: a copying window, then one independent full pass (with its
// own flow-set materialisation) per metric. It is the baseline the
// BENCH snapshots track MeasureWindow against.
func seedMeasureWindow(tb *Testbed, t0 time.Time, contentBytes int64) Metrics {
	// Seed Window: copy every packet in range (spans expanded — the
	// seed engine recorded every transmission round individually).
	var packets []trace.Packet
	for _, p := range tb.Cap.ExpandedPackets() {
		if !p.Time.Before(t0) && p.Time.Before(trace.FarFuture) {
			packets = append(packets, p)
		}
	}
	flows := tb.Cap.Flows()
	set := func(f trace.FlowFilter) []bool {
		s := make([]bool, len(flows))
		for i, fl := range flows {
			s[i] = f == nil || f(fl)
		}
		return s
	}
	storage := tb.StorageFilter(t0)

	var m Metrics
	// Scan 1+2: first/last payload time.
	var first, last time.Time
	var ok1 bool
	for s, i := set(storage), 0; i < len(packets); i++ {
		if p := packets[i]; s[p.Flow] && p.HasPayload() {
			first = p.Time
			ok1 = true
			break
		}
	}
	for s, i := set(storage), len(packets)-1; i >= 0; i-- {
		if p := packets[i]; s[p.Flow] && p.HasPayload() {
			last = p.Time
			break
		}
	}
	if ok1 {
		m.Startup = first.Sub(t0)
		m.Completion = last.Sub(first)
	}
	// Scan 3: total wire bytes, all flows.
	for s, i := set(trace.AllFlows), 0; i < len(packets); i++ {
		if p := packets[i]; s[p.Flow] {
			m.TotalTraffic += p.Wire + p.AckWire
		}
	}
	// Scan 4: upstream storage wire bytes.
	for s, i := set(storage), 0; i < len(packets); i++ {
		p := packets[i]
		if !s[p.Flow] {
			continue
		}
		if p.Dir == trace.Upstream {
			m.StorageUp += p.Wire
		} else {
			m.StorageUp += p.AckWire
		}
	}
	if contentBytes > 0 {
		m.Overhead = float64(m.TotalTraffic) / float64(contentBytes)
	}
	// Scan 5 (+6 in the seed: ConnectionCount delegated to SYNTimes).
	for s, i := set(trace.AllFlows), 0; i < len(packets); i++ {
		p := packets[i]
		if s[p.Flow] && p.Flags.SYN && !p.Flags.ACK && p.Dir == trace.Upstream {
			m.Connections++
		}
	}
	if m.Completion > 0 && contentBytes > 0 {
		m.GoodputBps = float64(contentBytes*8) / m.Completion.Seconds()
	}
	return m
}

// TestSeedMeasureWindowReference keeps the benchmark baseline honest:
// it must agree with the production MeasureWindow.
func TestSeedMeasureWindowReference(t *testing.T) {
	for _, p := range client.Profiles() {
		tb, t0, total := syncedTestbed(&testing.B{}, p)
		got := MeasureWindow(tb, t0, total)
		want := seedMeasureWindow(tb, t0, total)
		if got != want {
			t.Errorf("%s: MeasureWindow %+v != seed reference %+v", p.Service, got, want)
		}
	}
}

// BenchmarkMeasureWindow is the acceptance benchmark for the one-pass
// measurement path: new engine vs the seed copy-and-rescan scheme on
// an identical synced testbed.
func BenchmarkMeasureWindow(b *testing.B) {
	tb, t0, total := syncedTestbed(b, client.CloudDrive())
	b.Run("one-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MeasureWindow(tb, t0, total)
		}
	})
	b.Run("seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seedMeasureWindow(tb, t0, total)
		}
	})
}

// BenchmarkRunCampaign is the acceptance benchmark for the campaign
// engine: 24 repetitions of the 100x10 kB workload, fanned out over
// the worker pool vs forced sequential.
func BenchmarkRunCampaign(b *testing.B) {
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	for _, svc := range []string{"clouddrive", "dropbox"} {
		p, _ := client.ProfileFor(svc)
		b.Run(svc+"/parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunCampaignParallel(p, batch, 24, 42, 0)
			}
		})
		b.Run(svc+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunCampaignParallel(p, batch, 24, 42, 1)
			}
		})
	}
}
