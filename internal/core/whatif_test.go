package core

import "testing"

func TestWhatIfCloudDrivePollingFixed(t *testing.T) {
	r := WhatIfCloudDrivePollingFixed(71)
	// The fix must collapse idle traffic by at least an order of
	// magnitude (6 kb/s -> under 300 b/s).
	if r.Baseline < 3000 {
		t.Fatalf("baseline idle = %.0f b/s, expected Cloud Drive's ~6 kb/s", r.Baseline)
	}
	if r.Variant > r.Baseline/10 {
		t.Fatalf("fixed polling = %.0f b/s vs baseline %.0f — fix too weak", r.Variant, r.Baseline)
	}
}

func TestWhatIfDropboxSmartCompression(t *testing.T) {
	r := WhatIfDropboxSmartCompression(72)
	// For an incompressible image the transmitted volume is ~the
	// same either way — compressing it only wastes resources.
	if diff := r.Baseline - r.Variant; diff < -0.1 || diff > 0.1 {
		t.Fatalf("smart vs always on a real image: %.2f vs %.2f MB — should be ~equal", r.Baseline, r.Variant)
	}
	if r.Baseline < 0.9 {
		t.Fatalf("baseline upload = %.2f MB for a 1 MB image", r.Baseline)
	}
}

func TestWhatIfMobileUplink(t *testing.T) {
	r := WhatIfMobileUplink(73)
	if r.Variant <= r.Baseline {
		t.Fatalf("2 Mb/s uplink (%.1f s) should be slower than campus (%.1f s)", r.Variant, r.Baseline)
	}
}

func TestCloudDriveDailyBackgroundMB(t *testing.T) {
	// "This consumes 6 kb/s, i.e., about 65 MB per day!"
	mb := CloudDriveDailyBackgroundMB(74)
	if mb < 40 || mb > 100 {
		t.Fatalf("daily background = %.0f MB, paper says ~65", mb)
	}
}

func TestWhatIfLossyPath(t *testing.T) {
	r := WhatIfLossyPath(76)
	if r.Variant <= r.Baseline {
		t.Fatalf("2%% loss (%.1f s) should slow the clean path (%.1f s)", r.Variant, r.Baseline)
	}
}

func TestWhatIfStudiesComplete(t *testing.T) {
	if got := len(WhatIfStudies(75)); got != 4 {
		t.Fatalf("studies = %d", got)
	}
}

// TestWhatIfStudiesParallelEquivalence pins the RunN lift: the suite
// must produce bit-identical results in declaration order at any
// worker count — each study derives everything from the base seed.
func TestWhatIfStudiesParallelEquivalence(t *testing.T) {
	defer func(old int) { CampaignWorkers = old }(CampaignWorkers)

	CampaignWorkers = 1
	sequential := WhatIfStudies(77)
	for _, workers := range []int{2, 8} {
		CampaignWorkers = workers
		got := WhatIfStudies(77)
		if len(got) != len(sequential) {
			t.Fatalf("workers=%d: %d studies vs %d sequential", workers, len(got), len(sequential))
		}
		for i := range got {
			if got[i] != sequential[i] {
				t.Errorf("workers=%d: study %d diverged\n parallel   %+v\n sequential %+v",
					workers, i, got[i], sequential[i])
			}
		}
	}
}
