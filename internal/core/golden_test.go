package core

import (
	"reflect"
	"testing"

	"repro/internal/client"
	"repro/internal/workload"
)

// goldenBatches are the workloads pinned by the golden run: the
// paper's 100x10 kB stress batch and a compressible 1 MB text file
// (which exercises chunking, compression, delta signatures and —
// for Wuala — encryption).
var goldenBatches = []workload.Batch{
	{Count: 100, Size: 10_000, Kind: workload.Binary},
	{Count: 1, Size: 1 << 20, Kind: workload.Text},
}

// goldenMetrics pins RunSync output for every profile at fixed seeds,
// captured from the pre-rewrite sequential engine (per-metric trace
// scans, copying Window, per-call flate writers, unconditional chunk
// hashing). The rewritten engine must reproduce these bit for bit:
// any drift means an "optimization" changed simulated behaviour.
var goldenMetrics = []struct {
	service string
	batch   int
	want    Metrics
}{
	{"dropbox", 0, Metrics{Startup: 3618556849, Completion: 7377955463, TotalTraffic: 1157134, StorageUp: 1093251, Overhead: 1.157134, Connections: 1, GoodputBps: 1.084311235018904e+06}},
	{"dropbox", 1, Metrics{Startup: 1524505092, Completion: 835085556, TotalTraffic: 290567, StorageUp: 251976, Overhead: 0.27710628509521484, Connections: 1, GoodputBps: 1.0045207870892692e+07}},
	{"skydrive", 0, Metrics{Startup: 22544335887, Completion: 41010209563, TotalTraffic: 1490229, StorageUp: 1141554, Overhead: 1.490229, Connections: 1, GoodputBps: 195073.3752703794}},
	{"skydrive", 1, Metrics{Startup: 8717610428, Completion: 3407952466, TotalTraffic: 1160804, StorageUp: 1120481, Overhead: 1.1070289611816406, Connections: 1, GoodputBps: 2.461480341551219e+06}},
	{"wuala", 0, Metrics{Startup: 8655465074, Completion: 14109125534, TotalTraffic: 1446523, StorageUp: 1119540, Overhead: 1.446523, Connections: 1, GoodputBps: 567008.9177902413}},
	{"wuala", 1, Metrics{Startup: 4041127880, Completion: 278554968, TotalTraffic: 1132712, StorageUp: 1097694, Overhead: 1.0802383422851562, Connections: 1, GoodputBps: 3.011473125117625e+07}},
	{"googledrive", 0, Metrics{Startup: 3514790226, Completion: 44344617729, TotalTraffic: 2363566, StorageUp: 1592656, Overhead: 2.363566, Connections: 100, GoodputBps: 180405.2083364392}},
	{"googledrive", 1, Metrics{Startup: 2788464023, Completion: 215088465, TotalTraffic: 274957, StorageUp: 252472, Overhead: 0.2622194290161133, Connections: 1, GoodputBps: 3.900073395381756e+07}},
	{"clouddrive", 0, Metrics{Startup: 5599206005, Completion: 63112842335, TotalTraffic: 4169526, StorageUp: 1242600, Overhead: 4.169526, Connections: 400, GoodputBps: 126757.08626045355}},
	{"clouddrive", 1, Metrics{Startup: 3622693704, Completion: 682413499, TotalTraffic: 1179773, StorageUp: 1119953, Overhead: 1.1251192092895508, Connections: 4, GoodputBps: 1.2292558708601981e+07}},
}

// TestGoldenMetricsAllProfiles proves the rewritten measurement engine
// (single-pass Analyze, zero-copy Window, reorder-buffer Record,
// capability-gated planner, size-only compression, fast-path CDC
// split) produces byte-identical Metrics to the seed implementation
// for fixed seeds across all profiles.
func TestGoldenMetricsAllProfiles(t *testing.T) {
	for _, g := range goldenMetrics {
		p, ok := client.ProfileFor(g.service)
		if !ok {
			t.Fatalf("unknown service %q", g.service)
		}
		got := RunSync(p, goldenBatches[g.batch], 42+int64(g.batch), DefaultJitter)
		if got != g.want {
			t.Errorf("%s/batch%d: metrics drifted from seed engine\n got %+v\nwant %+v",
				g.service, g.batch, got, g.want)
		}
	}
}

// TestGoldenUploadVolumes pins the delta-encoding and compression
// paths (planner unitBytes: literal-buffer reuse, pooled size-only
// DEFLATE) against seed-captured upload volumes.
func TestGoldenUploadVolumes(t *testing.T) {
	dropbox := client.Dropbox()
	if got := Fig4DeltaSeries(dropbox, ModAppend, []int64{1 << 20}, 100<<10, 7)[0].Upload; got != 114021 {
		t.Errorf("fig4 dropbox append upload = %d, want 114021", got)
	}
	if got := Fig4DeltaSeries(dropbox, ModRandom, []int64{10 << 20}, 100<<10, 7)[0].Upload; got != 247088 {
		t.Errorf("fig4 dropbox random upload = %d, want 247088", got)
	}
	for _, tc := range []struct {
		service string
		want    int64
	}{{"dropbox", 252076}, {"googledrive", 252637}, {"wuala", 1097034}} {
		p, _ := client.ProfileFor(tc.service)
		if got := Fig5CompressionSeries(p, workload.Text, []int64{1 << 20}, 11)[0].Upload; got != tc.want {
			t.Errorf("fig5 %s text upload = %d, want %d", tc.service, got, tc.want)
		}
	}
}

// TestCampaignParallelEquivalence proves the worker-pool campaign
// engine is bit-identical to the sequential engine: same seeds, same
// slots, same Summary, regardless of worker count.
func TestCampaignParallelEquivalence(t *testing.T) {
	batch := workload.Batch{Count: 20, Size: 10_000, Kind: workload.Binary}
	p := client.CloudDrive()
	seq := RunCampaignParallel(p, batch, 6, 42, 1)
	for _, workers := range []int{2, 4, 0} {
		par := RunCampaignParallel(p, batch, 6, 42, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: summary differs from sequential engine\n seq %+v\n par %+v",
				workers, seq, par)
		}
	}
}

// TestMeasureWindowBoundary pins the half-open [t0, FarFuture) window
// semantics through the measurement path: packets recorded strictly
// before t0 (login, settle) must not leak into the benchmark window.
func TestMeasureWindowBoundary(t *testing.T) {
	p := client.Dropbox()
	tb := NewTestbed(p, 5, 0)
	start := tb.Settle()
	preTraffic := tb.Cap.Window(tb.Cap.Packets()[0].Time, start).TotalWireBytes(nil)
	if preTraffic == 0 {
		t.Fatal("login produced no traffic")
	}
	t0 := tb.Clock.Now()
	m := MeasureWindow(tb, t0, 0)
	if m.TotalTraffic != 0 {
		t.Errorf("benchmark window sees %d bytes of pre-window traffic", m.TotalTraffic)
	}
}
