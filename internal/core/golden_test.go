package core

import (
	"reflect"
	"testing"

	"repro/internal/client"
	"repro/internal/goldenfile"
	"repro/internal/workload"
)

// goldenBatches are the workloads pinned by the golden run: the
// paper's 100x10 kB stress batch and a compressible 1 MB text file
// (which exercises chunking, compression, delta signatures and —
// for Wuala — encryption).
var goldenBatches = []workload.Batch{
	{Count: 100, Size: 10_000, Kind: workload.Binary},
	{Count: 1, Size: 1 << 20, Kind: workload.Text},
}

// goldenServices orders the profiles of the golden matrix.
var goldenServices = []string{"dropbox", "skydrive", "wuala", "googledrive", "clouddrive"}

// goldenCell names one pinned RunSync cell.
type goldenCell struct {
	Service string
	Batch   string
	Metrics Metrics
}

// TestGoldenMetricsAllProfiles pins RunSync output for every profile
// at fixed seeds against testdata/golden_metrics.json. The values were
// regenerated for the descriptor pipeline (PCG RNG: every simulated
// byte legitimately changed); within an engine generation they must
// reproduce bit for bit — any unsanctioned drift means an
// "optimization" changed simulated behaviour. Sanctioned refreshes run
// scripts/regen-golden.sh.
func TestGoldenMetricsAllProfiles(t *testing.T) {
	var got []goldenCell
	for _, svc := range goldenServices {
		p, ok := client.ProfileFor(svc)
		if !ok {
			t.Fatalf("unknown service %q", svc)
		}
		for bi, batch := range goldenBatches {
			got = append(got, goldenCell{
				Service: svc,
				Batch:   batch.String() + "/" + batch.Kind.String(),
				Metrics: RunSync(p, batch, 42+int64(bi), DefaultJitter),
			})
		}
	}
	goldenfile.Check(t, "testdata/golden_metrics.json", got)
}

// goldenUploads pins the delta-encoding and compression upload paths.
type goldenUploads struct {
	Fig4DropboxAppend int64
	Fig4DropboxRandom int64
	Fig5Text          map[string]int64
}

// TestGoldenUploadVolumes pins the delta-encoding and compression
// paths (planner unitBytes: literal-buffer reuse, descriptor-keyed
// size-only DEFLATE) against testdata/golden_uploads.json.
func TestGoldenUploadVolumes(t *testing.T) {
	dropbox := client.Dropbox()
	got := goldenUploads{
		Fig4DropboxAppend: Fig4DeltaSeries(dropbox, ModAppend, []int64{1 << 20}, 100<<10, 7)[0].Upload,
		Fig4DropboxRandom: Fig4DeltaSeries(dropbox, ModRandom, []int64{10 << 20}, 100<<10, 7)[0].Upload,
		Fig5Text:          map[string]int64{},
	}
	for _, svc := range []string{"dropbox", "googledrive", "wuala"} {
		p, _ := client.ProfileFor(svc)
		got.Fig5Text[svc] = Fig5CompressionSeries(p, workload.Text, []int64{1 << 20}, 11)[0].Upload
	}
	goldenfile.Check(t, "testdata/golden_uploads.json", got)
}

// TestCampaignParallelEquivalence proves the worker-pool campaign
// engine is bit-identical to the sequential engine: same seeds, same
// slots, same Summary, regardless of worker count.
func TestCampaignParallelEquivalence(t *testing.T) {
	batch := workload.Batch{Count: 20, Size: 10_000, Kind: workload.Binary}
	p := client.CloudDrive()
	seq := RunCampaignParallel(p, batch, 6, 42, 1)
	for _, workers := range []int{2, 4, 0} {
		par := RunCampaignParallel(p, batch, 6, 42, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: summary differs from sequential engine\n seq %+v\n par %+v",
				workers, seq, par)
		}
	}
}

// TestMeasureWindowBoundary pins the half-open [t0, FarFuture) window
// semantics through the measurement path: packets recorded strictly
// before t0 (login, settle) must not leak into the benchmark window.
func TestMeasureWindowBoundary(t *testing.T) {
	p := client.Dropbox()
	tb := NewTestbed(p, 5, 0)
	start := tb.Settle()
	preTraffic := tb.Cap.Window(tb.Cap.Packets()[0].Time, start).TotalWireBytes(nil)
	if preTraffic == 0 {
		t.Fatal("login produced no traffic")
	}
	t0 := tb.Clock.Now()
	m := MeasureWindow(tb, t0, 0)
	if m.TotalTraffic != 0 {
		t.Errorf("benchmark window sees %d bytes of pre-window traffic", m.TotalTraffic)
	}
}
