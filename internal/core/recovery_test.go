package core

import (
	"testing"
	"time"
)

func TestRecoveryChunkingLimitsWaste(t *testing.T) {
	// 16 MB upload, path fails every 4 s. At ~15 Mb/s a 4 MB chunk
	// takes ~2.2 s: chunked transfers lose at most one chunk per
	// failure and finish; the whole 16 MB as a single object takes
	// ~9 s and can never complete a pass.
	const fileSize = 16 << 20
	const every = 4 * time.Second

	chunked := RunRecovery(4<<20, fileSize, every, 31)
	if !chunked.Completed {
		t.Fatalf("4MB-chunked upload did not complete: %+v", chunked)
	}
	if chunked.WasteRatio > 1.0 {
		t.Fatalf("chunked waste ratio = %.2f, want bounded", chunked.WasteRatio)
	}

	monolithic := RunRecovery(0, fileSize, every, 31)
	if monolithic.Completed {
		t.Fatalf("monolithic upload should stall under 4s failures: %+v", monolithic)
	}
	if monolithic.Retries < 5 {
		t.Fatalf("monolithic retries = %d, want many", monolithic.Retries)
	}
}

func TestRecoverySmallerChunksWasteLess(t *testing.T) {
	const fileSize = 16 << 20
	const every = 5 * time.Second
	small := RunRecovery(1<<20, fileSize, every, 32)
	large := RunRecovery(8<<20, fileSize, every, 32)
	if !small.Completed {
		t.Fatalf("1MB chunks did not complete: %+v", small)
	}
	if small.WasteRatio > large.WasteRatio && large.Completed {
		t.Fatalf("smaller chunks wasted more: 1MB %.2f vs 8MB %.2f",
			small.WasteRatio, large.WasteRatio)
	}
}

func TestRecoveryNoFailuresIsClean(t *testing.T) {
	r := RunRecovery(4<<20, 8<<20, time.Hour, 33)
	if !r.Completed || r.Retries != 0 {
		t.Fatalf("failure-free run: %+v", r)
	}
	if r.WasteRatio > 0.05 {
		t.Fatalf("failure-free waste = %.2f", r.WasteRatio)
	}
}

func TestRecoveryChunkLabel(t *testing.T) {
	if chunkLabel(0) != "no chunking" || chunkLabel(4<<20) != "4MB" {
		t.Fatal("labels")
	}
}
