package core

import (
	"time"

	"repro/internal/dedup"
)

// This file is the fleet engine's session log: the structure that
// makes the fleet day one-pass. The claim pass records each stripe's
// session stream — user, virtual instant, file count, and the
// (hash, size) run of every chunk — into flat append-only arenas; the
// resolve pass then replays the log instead of re-deriving the whole
// day from seeds, so RNG forks, arrival draws, descriptor chunking and
// chunk hashing run once per day instead of twice.
//
// The log is pure mechanism: replaying it drives a fleetSink through
// exactly the StartSession/Chunk/EndSession sequence the generation
// walk would, so the resolved day is bit-identical either way (pinned
// by TestFleetLogReplayMatchesGeneration and, indirectly, by every
// existing bit-identity test running on top of it). When a stripe's
// log would exceed its memory budget the stripe discards the log and
// the resolve pass falls back to regeneration — a pure perf fallback
// with identical output (TestFleetLogForcedFallback).

// DefaultFleetLogBudget caps the total bytes the fleet engine may
// retain in session logs across all stripes of one day. A million-user
// default-mix day logs on the order of half a GiB; anything past the
// budget regenerates instead of replaying.
const DefaultFleetLogBudget = int64(1) << 30

// fleetLog is one stripe's recorded session stream. Sessions and
// chunks live in parallel flat slices — one arena append per chunk and
// per session, no per-session allocations.
type fleetLog struct {
	budget int64 // retained-byte ceiling; exceeded => full
	bytes  int64 // retained bytes, counted as arena payload
	full   bool  // budget exceeded: log dropped, stripe regenerates

	// Per-session headers. chunkEnd[i] is the end offset of session
	// i's chunk run in the chunk arenas; the run starts at
	// chunkEnd[i-1] (0 for the first session).
	users    []int64
	atNs     []int64
	files    []int32
	chunkEnd []int64

	// Chunk arenas shared by all sessions of the stripe. refs is
	// filled in by the claim pass as each session's ClaimBatchRef
	// returns: the store entry behind refs[j] is the one a Winner
	// probe for hashes[j] would find, which is what lets the replay
	// resolve winners without touching the store's maps or locks.
	hashes []dedup.Hash
	sizes  []int64
	refs   []dedup.ChunkRef
}

// logBytesPerChunk and logBytesPerSession are the arena payload costs
// used for budget accounting: a chunk is one Hash plus one size plus
// one store ref, a session header is four fixed-width fields.
const (
	logBytesPerChunk   = int64(len(dedup.Hash{})) + 8 + 8
	logBytesPerSession = 8 + 8 + 4 + 8
)

func newFleetLog(budget int64) *fleetLog {
	if budget <= 0 {
		budget = DefaultFleetLogBudget
	}
	return &fleetLog{budget: budget}
}

// startSession opens a session header. No-op once the budget tripped.
func (l *fleetLog) startSession(user int64, at time.Duration) {
	if l.full {
		return
	}
	l.bytes += logBytesPerSession
	if l.bytes > l.budget {
		l.drop()
		return
	}
	l.users = append(l.users, user)
	l.atNs = append(l.atNs, int64(at))
	l.files = append(l.files, 0)
	l.chunkEnd = append(l.chunkEnd, int64(len(l.hashes)))
}

// chunk appends one (hash, size) pair to the open session's run.
func (l *fleetLog) chunk(h dedup.Hash, size int64) {
	if l.full {
		return
	}
	l.bytes += logBytesPerChunk
	if l.bytes > l.budget {
		l.drop()
		return
	}
	l.hashes = append(l.hashes, h)
	l.sizes = append(l.sizes, size)
	l.refs = append(l.refs, dedup.ChunkRef{})
	l.chunkEnd[len(l.chunkEnd)-1] = int64(len(l.hashes))
}

// endSession seals the open session with its file count.
func (l *fleetLog) endSession(files int) {
	if l.full {
		return
	}
	l.files[len(l.files)-1] = int32(files)
}

// drop releases the arenas and marks the log unusable: the stripe will
// regenerate in the resolve pass. Releasing eagerly matters — a fleet
// over budget must not hold half-built arenas for the rest of the day.
func (l *fleetLog) drop() {
	l.full = true
	l.users, l.atNs, l.files, l.chunkEnd = nil, nil, nil, nil
	l.hashes, l.sizes, l.refs = nil, nil, nil
}

// refSink is the fast replay surface: a sink that can consume a chunk
// as its claimed store ref resolves winners by a direct entry read
// instead of re-probing the store (resolveSink implements it).
type refSink interface {
	ChunkResolved(r dedup.ChunkRef, size int64)
}

// replay drives sink through the recorded session stream, in recording
// order — exactly the sequence walkFleetStripe would produce. A sink
// that accepts refs (refSink) gets each chunk's claimed store entry
// instead of its hash; the ref identifies the same entry a Winner
// probe for the hash would find, so both surfaces resolve identically.
func (l *fleetLog) replay(sink fleetSink) {
	rs, byRef := sink.(refSink)
	var start int64
	for i, user := range l.users {
		sink.StartSession(user, time.Duration(l.atNs[i]))
		end := l.chunkEnd[i]
		if byRef {
			for j := start; j < end; j++ {
				rs.ChunkResolved(l.refs[j], l.sizes[j])
			}
		} else {
			for j := start; j < end; j++ {
				sink.Chunk(l.hashes[j], l.sizes[j])
			}
		}
		sink.EndSession(int(l.files[i]))
		start = end
	}
}
