package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Campaign is a complete, serializable benchmark run: what was
// measured, from where, with what seed, and every per-experiment
// result. The paper's closing promise — "all results and our
// benchmarking tool will be available to the public to compare
// results from different locations" — needs results that live past
// the process.
type Campaign struct {
	Tool    string `json:"tool"`
	Vantage string `json:"vantage"`
	Seed    int64  `json:"seed"`
	Reps    int    `json:"reps"`
	// Precision and MaxReps record the stopping rule of an adaptive
	// campaign (RunFullCampaignAdaptive): the relative half-width
	// target and the repetition cap. Fixed-rep campaigns leave them
	// zero; the per-cell Summaries carry the achieved precision
	// either way (AchievedRelHW, RepsUsed).
	Precision float64      `json:"precision,omitempty"`
	MaxReps   int          `json:"max_reps,omitempty"`
	CreatedAt time.Time    `json:"created_at"`
	Fig6      []Fig6Result `json:"fig6"`
	Idle      []IdleResult `json:"idle,omitempty"`
	// Lossy is the loss-sweep section (service x loss rate, see
	// LossSweep): the lossy engine's behaviour pinned in baselines
	// the way Fig6 pins the clean engine's. Older campaign files
	// simply lack it; Compare reports the cells as added.
	Lossy []LossCell `json:"lossy,omitempty"`
}

// ToolVersion identifies the campaign format.
const ToolVersion = "cloudbench-repro/1.0"

// WriteJSON serializes the campaign.
func (c Campaign) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadCampaign parses a serialized campaign.
func ReadCampaign(r io.Reader) (Campaign, error) {
	var c Campaign
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return Campaign{}, fmt.Errorf("core: parsing campaign: %w", err)
	}
	if c.Tool == "" {
		return Campaign{}, fmt.Errorf("core: not a campaign file (no tool field)")
	}
	return c, nil
}

// Delta is one metric difference between two campaigns.
type Delta struct {
	Service  string
	Workload string
	Metric   string
	A, B     float64
	// Ratio is B/A; 1.0 means unchanged.
	Ratio float64
	// CIUnion is the sum of the two cells' achieved CI95 half-widths
	// for this metric — the widest gap two runs of the same system
	// would plausibly show. Zero when the metric has no recorded
	// interval (overhead, presence deltas, pre-precision snapshots).
	CIUnion float64
	// WithinCI reports |B-A| <= CIUnion for a delta that has one:
	// the disagreement is inside what the two runs' own precision
	// explains, so it is noise at the recorded confidence, not drift.
	WithinCI bool
}

// campaignIndex flattens a campaign's compared cells into a
// (service|workload) -> Summary lookup: the Fig. 6 matrix plus the
// loss-sweep section, whose workload key carries the loss rate so
// lossy cells never collide with clean ones.
func campaignIndex(c Campaign) map[string]Summary {
	m := map[string]Summary{}
	for _, r := range c.Fig6 {
		for i, s := range r.Summaries {
			m[r.Service+"|"+r.Workloads[i].String()] = s
		}
	}
	for _, cell := range c.Lossy {
		key := fmt.Sprintf("%s|%s@%g%%loss", cell.Service, cell.Workload, cell.LossRate*100)
		m[key] = cell.Summary
	}
	return m
}

// ComparableCells counts the (service, workload) cells two campaigns
// share — the cells Compare actually diffs. A regression gate must
// treat zero as an error: comparing disjoint campaigns (e.g. a
// baseline recorded with -skip-fig6) proves nothing.
func ComparableCells(a, b Campaign) int {
	ib := campaignIndex(b)
	n := 0
	for k := range campaignIndex(a) {
		if _, ok := ib[k]; ok {
			n++
		}
	}
	return n
}

// Compare diffs two campaigns' Fig. 6 results, returning every
// (service, workload, metric) whose ratio leaves [1/threshold,
// threshold]. It is the regression detector for profile or model
// changes, and the location-comparison engine for campaigns run from
// different vantages.
func Compare(a, b Campaign, threshold float64) []Delta {
	if threshold < 1 {
		threshold = 1 / threshold
	}
	ia, ib := campaignIndex(a), campaignIndex(b)
	var keys []string
	for k := range ia {
		if _, ok := ib[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var out []Delta
	for _, k := range keys {
		sa, sb := ia[k], ib[k]
		parts := strings.SplitN(k, "|", 2)
		check := func(metric string, va, vb, ciUnion float64) {
			if va <= 0 || vb <= 0 {
				return
			}
			ratio := vb / va
			if ratio > threshold || ratio < 1/threshold {
				out = append(out, Delta{
					Service: parts[0], Workload: parts[1],
					Metric: metric, A: va, B: vb, Ratio: ratio,
					CIUnion: ciUnion,
					WithinCI: ciUnion > 0 &&
						math.Abs(vb-va) <= ciUnion,
				})
			}
		}
		check("completion_s", sa.MeanCompletion.Seconds(), sb.MeanCompletion.Seconds(),
			sa.CI95Completion.Seconds()+sb.CI95Completion.Seconds())
		check("startup_s", sa.MeanStartup.Seconds(), sb.MeanStartup.Seconds(), 0)
		check("overhead_x", sa.MeanOverhead, sb.MeanOverhead, 0)
	}

	// A change in the compared surface itself is drift too: cells
	// present in only one campaign (a baseline gaining its lossy
	// section, a skipped experiment) must be declared, not silently
	// excluded from the intersection.
	presence := func(from map[string]Summary, other map[string]Summary, metric string, aSide bool) {
		var ks []string
		for k := range from {
			if _, ok := other[k]; !ok {
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		for _, k := range ks {
			parts := strings.SplitN(k, "|", 2)
			d := Delta{Service: parts[0], Workload: parts[1], Metric: metric}
			if aSide {
				d.A = from[k].MeanCompletion.Seconds()
			} else {
				d.B = from[k].MeanCompletion.Seconds()
			}
			out = append(out, d)
		}
	}
	presence(ia, ib, "cell_removed", true)
	presence(ib, ia, "cell_added", false)
	return out
}

// DeltaReport renders comparison results. Deltas that carry an
// achieved confidence interval are annotated with whether the
// disagreement fits inside the union of the two runs' CIs —
// precision-aware drift flagging instead of raw-number comparison.
func DeltaReport(deltas []Delta) string {
	if len(deltas) == 0 {
		return "no significant differences\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s%-12s%-14s%12s%12s%9s  %s\n",
		"service", "workload", "metric", "A", "B", "B/A", "vs-CI")
	for _, d := range deltas {
		note := ""
		if d.CIUnion > 0 {
			if d.WithinCI {
				note = "within-ci"
			} else {
				note = "exceeds-ci"
			}
		}
		fmt.Fprintf(&b, "%-14s%-12s%-14s%12.3f%12.3f%9.2f  %s\n",
			d.Service, d.Workload, d.Metric, d.A, d.B, d.Ratio, note)
	}
	return b.String()
}

// RunFullCampaign executes the Fig. 6 benchmarks, the idle
// measurement and the default loss sweep for every service from the
// given vantage, producing a persistable campaign. The timestamp is
// virtual (the simulation's epoch) so campaigns are byte-identical
// given a seed.
func RunFullCampaign(vantage Vantage, reps int, seed int64) Campaign {
	c := Campaign{
		Tool: ToolVersion, Vantage: vantage.Name,
		Seed: seed, Reps: reps,
		CreatedAt: sim.Epoch,
	}
	for _, p := range client.Profiles() {
		c.Fig6 = append(c.Fig6, fig6FromVantage(p, vantage, reps, seed))
		c.Idle = append(c.Idle, RunIdle(p, seed))
	}
	c.Lossy = LossSweep(client.Profiles(), DefaultLossRates, DefaultLossBatch, vantage, reps, seed)
	return c
}

// fig6FromVantage is Fig6ForService with the test computer at an
// arbitrary vantage, the workload x repetition matrix fanned out over
// the shared scheduler pool.
func fig6FromVantage(p client.Profile, v Vantage, reps int, seed int64) Fig6Result {
	if reps <= 0 {
		reps = DefaultReps
	}
	batches := workload.StandardBenchmarks(workload.Binary)
	return Fig6Result{
		Service:   p.Service,
		Workloads: batches,
		Summaries: fig6Summaries(batches, reps, func(wi, rep int) Metrics {
			return RunSyncFrom(p, batches[wi], v, fig6Seed(seed, wi, rep), DefaultJitter)
		}),
	}
}
