package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel experiment scheduler. The paper's
// methodology is embarrassingly parallel above the repetition level:
// Table 1 capability detection, the Fig. 4/5 size sweeps, the Fig. 6
// campaigns and the location study are all independent (service,
// workload, vantage) cells. Every campaign-of-campaigns loop in the
// package fans its full index space out through RunN, so one knob —
// CampaignWorkers, cmd/cloudbench's -parallel — governs the whole
// experiment matrix.
//
// Determinism contract: a cell must derive everything it needs (seed,
// testbed, RNG) from its own index, exactly like campaignSeed does
// for repetitions. Cells write only their own result slot, so the
// output is bit-identical to a sequential run at any worker count and
// under any scheduling; -parallel only changes wall-clock time. The
// golden-equivalence tests in scheduler_test.go pin this for every
// lifted layer.

// CampaignWorkers is the single parallelism knob of the experiment
// engine: how many experiment cells (benchmark repetitions, size-sweep
// points, capability detectors, location-study cells) run concurrently,
// each on its own testbed. Zero (the default) means one worker per
// available CPU. Set to 1 to force the sequential engine; results are
// bit-identical either way. cmd/cloudbench and cmd/capcheck expose
// this as -parallel.
var CampaignWorkers int

// workerBudget resolves the effective process-wide worker budget:
// CampaignWorkers, or one worker per CPU when unset.
func workerBudget() int {
	if CampaignWorkers > 0 {
		return CampaignWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// helpersActive counts helper goroutines currently running across all
// pools in the process. It is what keeps nested fan-outs (a driver
// over services, each service over workloads x repetitions) on one
// shared budget instead of multiplying pool sizes: a pool spawns a
// helper only while the process-wide count is below the budget, and a
// cell that fans out again simply runs its sub-cells inline when the
// budget is spent. Acquisition never blocks, so nesting cannot
// deadlock.
var helpersActive atomic.Int64

// tryAcquireHelper reserves one helper slot if fewer than limit are
// active process-wide.
func tryAcquireHelper(limit int) bool {
	for {
		cur := helpersActive.Load()
		if cur >= int64(limit) {
			return false
		}
		if helpersActive.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func releaseHelper() { helpersActive.Add(-1) }

// RunN executes fn for every index in [0, n) on a bounded worker pool
// and returns the results in index order. workers caps this call's
// fan-out explicitly; workers <= 0 defers to the shared budget
// (CampaignWorkers, default one per CPU). The calling goroutine
// always works too, so RunN(n, 1, fn) is exactly a sequential loop.
// fn must derive everything from its index (see the determinism
// contract above); RunN guarantees fn(i)'s result lands in slot i
// regardless of scheduling.
func RunN[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	budget := workers
	if budget <= 0 {
		budget = workerBudget()
	}
	if budget > n {
		budget = n
	}
	out := make([]T, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			out[i] = fn(i)
		}
	}
	if budget <= 1 {
		work()
		return out
	}
	var wg sync.WaitGroup
	for spawned := 1; spawned < budget && tryAcquireHelper(budget-1); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer releaseHelper()
			work()
		}()
	}
	work()
	wg.Wait()
	return out
}

// RunEach is RunN for cells evaluated for effect only (each cell
// writing its own disjoint output, e.g. distinct struct fields).
func RunEach(n, workers int, fn func(i int)) {
	RunN(n, workers, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
