package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/workload"
)

// This file regenerates every figure dataset of the paper. Each
// function returns plottable series; cmd/figures renders them as text
// or CSV. The bench targets in bench_test.go wrap these one-to-one.

// ModKind selects where the Fig. 4 modification lands in the file.
type ModKind int

const (
	// ModAppend adds content at the end of the file.
	ModAppend ModKind = iota
	// ModPrepend adds content at the beginning.
	ModPrepend
	// ModRandom inserts content at a random interior offset.
	ModRandom
)

// String names the modification for reports.
func (m ModKind) String() string {
	switch m {
	case ModAppend:
		return "append"
	case ModPrepend:
		return "prepend"
	default:
		return "random"
	}
}

// VolumePoint is one (file size, uploaded volume) point of Fig. 4 or
// Fig. 5.
type VolumePoint struct {
	FileSize int64
	Upload   int64
}

// Fig4DeltaSeries runs the delta-encoding test (Sect. 4.4) for one
// service: for each file size, synchronize a base file, modify it by
// inserting `added` bytes at the chosen position ("in all cases, the
// modified file replaces its old copy"), and measure the upload volume
// of the second synchronization. Cells stream: the measurement window
// opens at the modification instant — a quiet point 10 s after the
// base upload — so it is registered before any of its traffic exists
// and the base upload's packets are never retained.
func Fig4DeltaSeries(p client.Profile, mod ModKind, sizes []int64, added int64, seed int64) []VolumePoint {
	return RunN(len(sizes), CampaignWorkers, func(i int) VolumePoint {
		size := sizes[i]
		tb := NewStreamingTestbed(p, seed+int64(i)*101, 0)
		start := tb.Settle()

		t0 := tb.Clock.Now()
		tb.Folder.CreateLazy(t0, "target.bin", workload.Describe(tb.RNG.Fork(1), workload.Binary, size))
		res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
		tb.Clock.AdvanceTo(res.Done.Add(10 * time.Second))

		t1 := tb.Clock.Now()
		tb.StartWindow(t1)
		chunk := workload.Generate(tb.RNG.Fork(2), workload.Binary, added)
		switch mod {
		case ModAppend:
			tb.Folder.Append(t1, "target.bin", chunk)
		case ModPrepend:
			tb.Folder.InsertAt(t1, "target.bin", 0, chunk)
		default:
			off := tb.RNG.Int63n(size)
			tb.Folder.InsertAt(t1, "target.bin", off, chunk)
		}
		res = tb.Client.SyncChanges(tb.Folder, t1.Add(-time.Millisecond))
		tb.Clock.AdvanceTo(res.Done)

		up := tb.AnalyzeWindow(t1, tb.StorageFilter(t1)).WireUp
		return VolumePoint{FileSize: size, Upload: up}
	})
}

// Fig5CompressionSeries runs the compression test (Sect. 4.5) for one
// service and file kind: upload files of increasing size and measure
// the transmitted volume.
func Fig5CompressionSeries(p client.Profile, kind workload.Kind, sizes []int64, seed int64) []VolumePoint {
	return RunN(len(sizes), CampaignWorkers, func(i int) VolumePoint {
		size := sizes[i]
		tb := NewStreamingTestbed(p, seed+int64(i)*103, 0)
		start := tb.Settle()
		t0 := tb.Clock.Now()
		tb.StartWindow(t0)
		tb.Folder.CreateLazy(t0, "payload"+kind.Ext(),
			workload.Describe(tb.RNG.Fork(7), kind, size))
		res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
		tb.Clock.AdvanceTo(res.Done)
		up := tb.AnalyzeWindow(t0, tb.StorageFilter(t0)).WireUp
		return VolumePoint{FileSize: size, Upload: up}
	})
}

// Fig4Sizes returns the paper's x-axes: up to 2 MB for the append
// case, up to 10 MB for the random-position case ("larger files are
// instead considered ... to highlight the combined effects with
// chunking and deduplication").
func Fig4Sizes(mod ModKind) []int64 {
	if mod == ModRandom {
		return []int64{1 << 20, 2 << 20, 4 << 20, 6 << 20, 8 << 20, 10 << 20}
	}
	return []int64{100 << 10, 500 << 10, 1 << 20, 1536 << 10, 2 << 20}
}

// Fig5Sizes returns the compression-test x-axis (100 kB to 2 MB).
func Fig5Sizes() []int64 {
	return []int64{100 << 10, 500 << 10, 1 << 20, 1536 << 10, 2 << 20}
}

// Fig6Result bundles the three panels of Fig. 6 for one service: per
// workload, the start-up, duration and overhead summaries.
type Fig6Result struct {
	Service   string
	Workloads []workload.Batch
	Summaries []Summary
}

// fig6Seed derives the seed of one (workload, repetition) cell of a
// service's Fig. 6 campaign — the derivation the sequential engine
// always used (per-workload base, campaignSeed per repetition).
func fig6Seed(seed int64, wi, rep int) int64 {
	return campaignSeed(seed+int64(wi)*100003, rep)
}

// fig6Summaries fans the (workload x repetition) matrix of one Fig. 6
// campaign over the shared pool and folds it into per-workload
// summaries. run computes one cell.
func fig6Summaries(batches []workload.Batch, reps int, run func(wi, rep int) Metrics) []Summary {
	runs := RunN(len(batches)*reps, CampaignWorkers, func(i int) Metrics {
		return run(i/reps, i%reps)
	})
	out := make([]Summary, 0, len(batches))
	for wi := range batches {
		out = append(out, Summarize(runs[wi*reps:(wi+1)*reps]))
	}
	return out
}

// Fig6ForService runs the Sect. 5 benchmark campaign (four binary
// workloads, `reps` repetitions each) for one service — the
// single-profile case of Fig6Matrix.
func Fig6ForService(p client.Profile, reps int, seed int64) Fig6Result {
	return Fig6Matrix([]client.Profile{p}, reps, seed)[0]
}

// Fig6Matrix runs the Fig. 6 campaign for every profile with the full
// service x workload x repetition matrix flattened onto one shared
// pool — the campaign-of-campaigns entry point used by cmd/cloudbench.
// Results are bit-identical to calling Fig6ForService per profile.
func Fig6Matrix(profiles []client.Profile, reps int, seed int64) []Fig6Result {
	if reps <= 0 {
		reps = DefaultReps
	}
	batches := workload.StandardBenchmarks(workload.Binary)
	perSvc := len(batches) * reps
	runs := RunN(len(profiles)*perSvc, CampaignWorkers, func(i int) Metrics {
		si, rest := i/perSvc, i%perSvc
		wi, rep := rest/reps, rest%reps
		return RunSync(profiles[si], batches[wi], fig6Seed(seed, wi, rep), DefaultJitter)
	})
	out := make([]Fig6Result, 0, len(profiles))
	for si, p := range profiles {
		r := Fig6Result{Service: p.Service, Workloads: batches}
		for wi := range batches {
			lo := si*perSvc + wi*reps
			r.Summaries = append(r.Summaries, Summarize(runs[lo:lo+reps]))
		}
		out = append(out, r)
	}
	return out
}

// fig4SingleBatch is the 1x1MB convenience workload used by several
// single-file studies.
func fig4SingleBatch() workload.Batch {
	return workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}
}
