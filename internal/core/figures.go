package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file regenerates every figure dataset of the paper. Each
// function returns plottable series; cmd/figures renders them as text
// or CSV. The bench targets in bench_test.go wrap these one-to-one.

// ModKind selects where the Fig. 4 modification lands in the file.
type ModKind int

const (
	// ModAppend adds content at the end of the file.
	ModAppend ModKind = iota
	// ModPrepend adds content at the beginning.
	ModPrepend
	// ModRandom inserts content at a random interior offset.
	ModRandom
)

// String names the modification for reports.
func (m ModKind) String() string {
	switch m {
	case ModAppend:
		return "append"
	case ModPrepend:
		return "prepend"
	default:
		return "random"
	}
}

// VolumePoint is one (file size, uploaded volume) point of Fig. 4 or
// Fig. 5.
type VolumePoint struct {
	FileSize int64
	Upload   int64
}

// Fig4DeltaSeries runs the delta-encoding test (Sect. 4.4) for one
// service: for each file size, synchronize a base file, modify it by
// inserting `added` bytes at the chosen position ("in all cases, the
// modified file replaces its old copy"), and measure the upload volume
// of the second synchronization.
func Fig4DeltaSeries(p client.Profile, mod ModKind, sizes []int64, added int64, seed int64) []VolumePoint {
	out := make([]VolumePoint, 0, len(sizes))
	for i, size := range sizes {
		tb := NewTestbed(p, seed+int64(i)*101, 0)
		start := tb.Settle()

		t0 := tb.Clock.Now()
		base := workload.Generate(tb.RNG.Fork(1), workload.Binary, size)
		tb.Folder.Create(t0, "target.bin", base)
		res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
		tb.Clock.AdvanceTo(res.Done.Add(10 * time.Second))

		t1 := tb.Clock.Now()
		chunk := workload.Generate(tb.RNG.Fork(2), workload.Binary, added)
		switch mod {
		case ModAppend:
			tb.Folder.Append(t1, "target.bin", chunk)
		case ModPrepend:
			tb.Folder.InsertAt(t1, "target.bin", 0, chunk)
		default:
			off := tb.RNG.Int63n(size)
			tb.Folder.InsertAt(t1, "target.bin", off, chunk)
		}
		res = tb.Client.SyncChanges(tb.Folder, t1.Add(-time.Millisecond))
		tb.Clock.AdvanceTo(res.Done)

		win := tb.Cap.Window(t1, trace.FarFuture)
		up := win.WireBytesDir(tb.StorageFilter(t1), trace.Upstream)
		out = append(out, VolumePoint{FileSize: size, Upload: up})
	}
	return out
}

// Fig5CompressionSeries runs the compression test (Sect. 4.5) for one
// service and file kind: upload files of increasing size and measure
// the transmitted volume.
func Fig5CompressionSeries(p client.Profile, kind workload.Kind, sizes []int64, seed int64) []VolumePoint {
	out := make([]VolumePoint, 0, len(sizes))
	for i, size := range sizes {
		tb := NewTestbed(p, seed+int64(i)*103, 0)
		start := tb.Settle()
		t0 := tb.Clock.Now()
		tb.Folder.Create(t0, "payload"+kind.Ext(),
			workload.Generate(tb.RNG.Fork(7), kind, size))
		res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
		tb.Clock.AdvanceTo(res.Done)
		win := tb.Cap.Window(t0, trace.FarFuture)
		up := win.WireBytesDir(tb.StorageFilter(t0), trace.Upstream)
		out = append(out, VolumePoint{FileSize: size, Upload: up})
	}
	return out
}

// Fig4Sizes returns the paper's x-axes: up to 2 MB for the append
// case, up to 10 MB for the random-position case ("larger files are
// instead considered ... to highlight the combined effects with
// chunking and deduplication").
func Fig4Sizes(mod ModKind) []int64 {
	if mod == ModRandom {
		return []int64{1 << 20, 2 << 20, 4 << 20, 6 << 20, 8 << 20, 10 << 20}
	}
	return []int64{100 << 10, 500 << 10, 1 << 20, 1536 << 10, 2 << 20}
}

// Fig5Sizes returns the compression-test x-axis (100 kB to 2 MB).
func Fig5Sizes() []int64 {
	return []int64{100 << 10, 500 << 10, 1 << 20, 1536 << 10, 2 << 20}
}

// Fig6Result bundles the three panels of Fig. 6 for one service: per
// workload, the start-up, duration and overhead summaries.
type Fig6Result struct {
	Service   string
	Workloads []workload.Batch
	Summaries []Summary
}

// Fig6ForService runs the Sect. 5 benchmark campaign (four binary
// workloads, `reps` repetitions each) for one service.
func Fig6ForService(p client.Profile, reps int, seed int64) Fig6Result {
	batches := workload.StandardBenchmarks(workload.Binary)
	out := Fig6Result{Service: p.Service, Workloads: batches}
	for i, b := range batches {
		out.Summaries = append(out.Summaries, RunCampaign(p, b, reps, seed+int64(i)*100003))
	}
	return out
}

// fig4SingleBatch is the 1x1MB convenience workload used by several
// single-file studies.
func fig4SingleBatch() workload.Batch {
	return workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}
}
