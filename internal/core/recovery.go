package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RecoveryStudy quantifies Sect. 4.1's argument for chunking:
// "Chunking is advantageous because it simplifies upload recovery in
// case of failures ... Partial submission can benefit users connected
// to slow networks." We upload one file while the storage path fails
// periodically and compare progress across chunk sizes — including
// the degenerate "no chunking" case, where each failure restarts the
// whole file.
type RecoveryStudy struct {
	ChunkLabel string
	Completed  bool
	Completion time.Duration
	Retries    int
	// WasteRatio is retransmitted storage volume over the clean
	// upload volume (0 = nothing wasted).
	WasteRatio float64
}

// RunRecovery uploads fileSize bytes under failures every `every`,
// with the given chunk size (0 disables chunking).
func RunRecovery(chunkSize int64, fileSize int64, every time.Duration, seed int64) RecoveryStudy {
	// A neutral single-purpose profile isolates the chunking effect.
	p := client.Dropbox()
	p.Compression = 0 // compressor.None: keep volumes exact
	p.Dedup = false
	p.DeltaEncoding = false
	if chunkSize > 0 {
		p.ChunkMode = client.FixedChunks
		p.ChunkSize = chunkSize
	} else {
		p.ChunkMode = client.NoChunking
	}

	tb := NewTestbed(p, seed, 0)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	tb.Folder.Create(t0, "big.bin", workload.Generate(tb.RNG, workload.Binary, fileSize))
	res := tb.Client.RecoveryUpload(tb.Folder, start.Add(-time.Second), every)
	tb.Clock.AdvanceTo(res.Done)

	win := tb.Cap.Window(t0, trace.FarFuture)
	up := win.PayloadBytesDir(tb.StorageFilter(t0), trace.Upstream)

	out := RecoveryStudy{
		ChunkLabel: chunkLabel(chunkSize),
		Retries:    res.Retries,
		Completion: res.Done.Sub(t0),
	}
	out.Completed = res.Completed
	if res.CleanBytes > 0 {
		waste := float64(up-res.CleanBytes) / float64(res.CleanBytes)
		if waste < 0 {
			waste = 0
		}
		out.WasteRatio = waste
	}
	return out
}

func chunkLabel(size int64) string {
	if size <= 0 {
		return "no chunking"
	}
	return workload.SizeLabel(size)
}
