package core

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dedup"
	"repro/internal/workload"
)

// smallFleet is the shared test configuration: big enough that every
// class contributes sessions and the catalogs see real contention,
// small enough that a full day replays in well under a second.
func smallFleet(users int) FleetConfig {
	return FleetConfig{Users: users, Seed: 42}
}

func TestFleetBitIdenticalAcrossWorkers(t *testing.T) {
	// The acceptance criterion of the fleet engine: one service day is
	// bit-identical across CampaignWorkers ∈ {1, 2, 8}. Every field of
	// FleetResult — including the float ratios and every load-curve
	// bucket — must match the sequential run exactly, not
	// approximately.
	base := RunFleet(smallFleet(2000), 1)
	for _, workers := range []int{2, 8} {
		got := RunFleet(smallFleet(2000), workers)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverged from sequential run:\n  seq: %v\n  got: %v", workers, base, got)
		}
	}
	if base.Sessions == 0 || base.WireBytes == 0 {
		t.Fatalf("degenerate fleet day: %v", base)
	}
}

func TestFleetStripeCountIndependence(t *testing.T) {
	// Stripes is an execution detail, not part of the experiment
	// identity: any stripe count must yield the same day.
	base := RunFleet(smallFleet(1200), 4)
	for _, stripes := range []int{3, 64, 1200} {
		cfg := smallFleet(1200)
		cfg.Stripes = stripes
		if got := RunFleet(cfg, 4); !reflect.DeepEqual(base, got) {
			t.Fatalf("stripes=%d diverged:\n  base: %v\n  got:  %v", stripes, base, got)
		}
	}
}

func TestFleetStoreShardingIndependence(t *testing.T) {
	// The backend's shard count is a lock-layout choice; the simulated
	// outcome must not see it.
	run := func(shards int) FleetResult {
		cfg := smallFleet(1200)
		cfg.Store = dedup.NewStoreSharded(shards)
		return RunFleet(cfg, 4)
	}
	single, sharded := run(1), run(64)
	if !reflect.DeepEqual(single, sharded) {
		t.Fatalf("shard count changed the simulation:\n  1:  %v\n  64: %v", single, sharded)
	}
}

// recordedSession is one session as captured by recordSink: enough to
// replay the whole day sequentially against a reference backend.
type recordedSession struct {
	user   int64
	at     time.Duration
	hashes []dedup.Hash
	sizes  []int64
	files  int
}

type recordSink struct {
	sessions []recordedSession
	cur      recordedSession
}

func (s *recordSink) StartSession(user int64, at time.Duration) {
	s.cur = recordedSession{user: user, at: at}
}
func (s *recordSink) Chunk(h dedup.Hash, size int64) {
	s.cur.hashes = append(s.cur.hashes, h)
	s.cur.sizes = append(s.cur.sizes, size)
}
func (s *recordSink) EndSession(files int) {
	s.cur.files = files
	s.sessions = append(s.sessions, s.cur)
}

func TestFleetMatchesSequentialVirtualTimeReplay(t *testing.T) {
	// The claim/resolve protocol promises exactly the outcome of a
	// sequential replay in virtual-time order. Check it against an
	// independent oracle: record every session, sort by (instant,
	// user) — the claim tie-break — and run them through a plain map
	// where the first session to present a chunk uploads it.
	cfg := smallFleet(800).withDefaults()
	starts := classStarts(cfg.Classes, cfg.Users)
	rec := &recordSink{}
	for stripe := 0; stripe < cfg.Stripes; stripe++ {
		walkFleetStripe(cfg, starts, stripe, rec)
	}
	sort.Slice(rec.sessions, func(i, j int) bool {
		a, b := rec.sessions[i], rec.sessions[j]
		return a.at < b.at || (a.at == b.at && a.user < b.user)
	})

	uploaded := make(map[dedup.Hash]int64)
	var content, upload, dedupBytes, manifest, chunks, files int64
	for _, sess := range rec.sessions {
		inSession := make(map[dedup.Hash]struct{}, len(sess.hashes))
		for i, h := range sess.hashes {
			size := sess.sizes[i]
			content += size
			chunks++
			if _, dup := inSession[h]; dup {
				dedupBytes += size
				continue
			}
			inSession[h] = struct{}{}
			if _, dup := uploaded[h]; dup {
				dedupBytes += size
			} else {
				uploaded[h] = size
				upload += size
			}
		}
		manifest += client.ManifestBytes(len(sess.hashes))
		files += int64(sess.files)
	}

	got := RunFleet(smallFleet(800), 4)
	if got.Sessions != int64(len(rec.sessions)) || got.Files != files || got.Chunks != chunks {
		t.Fatalf("session census: got %d/%d/%d sessions/files/chunks, oracle %d/%d/%d",
			got.Sessions, got.Files, got.Chunks, len(rec.sessions), files, chunks)
	}
	if got.ContentBytes != content {
		t.Fatalf("ContentBytes = %d, oracle %d", got.ContentBytes, content)
	}
	if got.DedupBytes != dedupBytes {
		t.Fatalf("DedupBytes = %d, oracle %d", got.DedupBytes, dedupBytes)
	}
	if got.WireBytes != upload+manifest {
		t.Fatalf("WireBytes = %d, oracle upload+manifest = %d", got.WireBytes, upload+manifest)
	}
	if got.UniqueChunks != len(uploaded) {
		t.Fatalf("UniqueChunks = %d, oracle %d", got.UniqueChunks, len(uploaded))
	}
	var stored int64
	for _, size := range uploaded {
		stored += size
	}
	if got.StoredBytes != stored {
		t.Fatalf("StoredBytes = %d, oracle %d", got.StoredBytes, stored)
	}
}

func TestFleetConservationInvariants(t *testing.T) {
	r := RunFleet(smallFleet(1500), 0)

	// Wire = content − cross-user dedup + manifests.
	if r.WireBytes != r.ContentBytes-r.DedupBytes+r.ManifestBytes {
		t.Fatalf("wire conservation: %d != %d - %d + %d",
			r.WireBytes, r.ContentBytes, r.DedupBytes, r.ManifestBytes)
	}
	// Every unique chunk is uploaded exactly once fleet-wide, so the
	// backend holds exactly the non-deduplicated content.
	if r.StoredBytes != r.ContentBytes-r.DedupBytes {
		t.Fatalf("store conservation: stored %d != content %d - dedup %d",
			r.StoredBytes, r.ContentBytes, r.DedupBytes)
	}
	// The load curves partition the day's totals.
	var sess, wire, conns int64
	for _, b := range r.Buckets {
		sess += b.Sessions
		wire += b.WireBytes
		conns += b.Conns
		if b.Conns > r.PeakConns {
			t.Fatalf("bucket at %v has %d conns > PeakConns %d", b.Start, b.Conns, r.PeakConns)
		}
	}
	if sess != r.Sessions {
		t.Fatalf("bucket sessions sum %d != Sessions %d", sess, r.Sessions)
	}
	if wire != r.WireBytes {
		t.Fatalf("bucket wire sum %d != WireBytes %d", wire, r.WireBytes)
	}
	// A connection spans at least the bucket of its session start.
	if conns < r.Sessions {
		t.Fatalf("connection-bucket overlaps %d < sessions %d", conns, r.Sessions)
	}
	if r.DedupRatio <= 0 || r.DedupRatio >= 1 {
		t.Fatalf("DedupRatio = %v, want in (0, 1) for the default mix", r.DedupRatio)
	}
	if r.PeakBps <= 0 || r.PeakConns <= 0 {
		t.Fatalf("degenerate load curve: peak %v bps, %d conns", r.PeakBps, r.PeakConns)
	}
}

func TestFleetDedupGrowsWithPopulation(t *testing.T) {
	// The service-scale form of the paper's Sect. 4.3 observation:
	// with shared catalogs, a bigger population re-uploads more of the
	// same popular content, so the dedup ratio rises with fleet size.
	points := FleetPopulationSweep(FleetConfig{Seed: 7}, []int{250, 1000, 4000}, 0)
	for i := 1; i < len(points); i++ {
		if points[i].DedupRatio <= points[i-1].DedupRatio {
			t.Fatalf("dedup ratio not increasing with population: %+v", points)
		}
	}
	// And the backend grows sublinearly: 16× the users must need far
	// fewer than 16× the stored bytes.
	scale := float64(points[2].StoredBytes) / float64(points[0].StoredBytes)
	if scale >= 16 {
		t.Fatalf("stored bytes scaled %.1f× over a 16× population: no cross-user sharing", scale)
	}
}

func TestFleetClassStarts(t *testing.T) {
	starts := classStarts(DefaultFleetClasses(), 1000)
	want := []int{0, 600, 900, 1000}
	if !reflect.DeepEqual(starts, want) {
		t.Fatalf("classStarts = %v, want %v", starts, want)
	}
	// Degenerate populations still partition cleanly.
	if got := classStarts(DefaultFleetClasses(), 1); got[len(got)-1] != 1 {
		t.Fatalf("single-user partition broken: %v", got)
	}
}

func TestFleetDiurnalShapeInLoadCurve(t *testing.T) {
	// The interactive class follows OfficeHours, so the service's
	// afternoon load must dominate the small hours.
	cfg := smallFleet(2000)
	cfg.Bucket = time.Hour
	r := RunFleet(cfg, 0)
	if len(r.Buckets) != 24 {
		t.Fatalf("hourly buckets: got %d", len(r.Buckets))
	}
	if r.Buckets[14].Sessions <= r.Buckets[3].Sessions {
		t.Fatalf("no diurnal shape: 14h has %d sessions, 03h has %d",
			r.Buckets[14].Sessions, r.Buckets[3].Sessions)
	}
}

func TestFleetEmptyPopulation(t *testing.T) {
	r := RunFleet(FleetConfig{Users: 0, Seed: 1}, 2)
	if r.Sessions != 0 || r.WireBytes != 0 || r.UniqueChunks != 0 {
		t.Fatalf("empty fleet produced traffic: %v", r)
	}
}

func TestFleetSeedChangesDay(t *testing.T) {
	a := RunFleet(FleetConfig{Users: 300, Seed: 1}, 0)
	b := RunFleet(FleetConfig{Users: 300, Seed: 2}, 0)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds replayed the same day")
	}
}

func TestFleetChunkHashDomainSeparation(t *testing.T) {
	// Distinct descriptor tuples must address distinct content.
	h := fleetChunkHash(1, 100, 0, 100)
	for _, other := range []dedup.Hash{
		fleetChunkHash(2, 100, 0, 100),
		fleetChunkHash(1, 101, 0, 100),
		fleetChunkHash(1, 100, 50, 50),
	} {
		if h == other {
			t.Fatal("descriptor tuples collide")
		}
	}
	if h != fleetChunkHash(1, 100, 0, 100) {
		t.Fatal("chunk address not a pure function of its tuple")
	}
}

func TestFleetArrivalHorizonRespected(t *testing.T) {
	// Sessions never land outside the configured day, whatever the
	// arrival process draws.
	cfg := smallFleet(500).withDefaults()
	starts := classStarts(cfg.Classes, cfg.Users)
	rec := &recordSink{}
	for stripe := 0; stripe < cfg.Stripes; stripe++ {
		walkFleetStripe(cfg, starts, stripe, rec)
	}
	for _, s := range rec.sessions {
		if s.at < 0 || s.at >= cfg.Day {
			t.Fatalf("session at %v outside [0, %v)", s.at, cfg.Day)
		}
	}
}

func TestFleetMillionUserSmoke(t *testing.T) {
	// The scale claim: a million-user day must fit in O(active users)
	// memory and finish. A two-minute horizon keeps sessions sparse so
	// the smoke runs in seconds while still touching every user slot.
	if testing.Short() {
		t.Skip("million-user smoke skipped in -short")
	}
	cfg := FleetConfig{Users: 1_000_000, Seed: 9, Day: 2 * time.Minute, Bucket: time.Minute}
	r := RunFleet(cfg, 0)
	if r.Users != cfg.Users {
		t.Fatalf("Users = %d, want %d", r.Users, cfg.Users)
	}
	if r.Sessions == 0 {
		t.Fatal("million-user fleet produced no sessions in the window")
	}
	if r.WireBytes != r.ContentBytes-r.DedupBytes+r.ManifestBytes {
		t.Fatalf("wire conservation at scale: %v", r)
	}
}

// workloadArrivalSmoke pins that the fleet's default classes exercise
// all three arrival process types — a wiring check, not a stats test.
func TestFleetDefaultClassesCoverArrivalProcesses(t *testing.T) {
	var havePoisson, haveGamma, haveDiurnal bool
	for _, c := range DefaultFleetClasses() {
		switch c.Arrival.(type) {
		case workload.Poisson:
			havePoisson = true
		case workload.Gamma:
			haveGamma = true
		case workload.Diurnal:
			haveDiurnal = true
		}
	}
	if !havePoisson || !haveGamma || !haveDiurnal {
		t.Fatalf("default classes missing an arrival type: poisson=%v gamma=%v diurnal=%v",
			havePoisson, haveGamma, haveDiurnal)
	}
}
