package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/workload"
)

func tinyCampaign(v Vantage, seed int64) Campaign {
	// A fast 1-rep campaign for serialization tests.
	c := Campaign{Tool: ToolVersion, Vantage: v.Name, Seed: seed, Reps: 1}
	batches := workload.StandardBenchmarks(workload.Binary)[:2]
	for _, svc := range []string{"dropbox", "wuala"} {
		p := mustProfile(svc)
		r := Fig6Result{Service: svc, Workloads: batches}
		for i, b := range batches {
			r.Summaries = append(r.Summaries,
				Summarize([]Metrics{RunSyncFrom(p, b, v, seed+int64(i), 0)}))
		}
		c.Fig6 = append(c.Fig6, r)
	}
	return c
}

func TestCampaignJSONRoundTrip(t *testing.T) {
	c := tinyCampaign(Twente, 81)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != ToolVersion || back.Vantage != "twente" || len(back.Fig6) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Fig6[0].Summaries[0].MeanCompletion != c.Fig6[0].Summaries[0].MeanCompletion {
		t.Fatal("summary values drifted through JSON")
	}
}

func TestReadCampaignRejectsGarbage(t *testing.T) {
	if _, err := ReadCampaign(strings.NewReader("{}")); err == nil {
		t.Fatal("accepted empty object")
	}
	if _, err := ReadCampaign(strings.NewReader("not json")); err == nil {
		t.Fatal("accepted non-JSON")
	}
}

func TestCompareIdenticalCampaignsIsQuiet(t *testing.T) {
	c := tinyCampaign(Twente, 82)
	if deltas := Compare(c, c, 1.3); len(deltas) != 0 {
		t.Fatalf("self-comparison found %d deltas", len(deltas))
	}
}

func TestCompareDetectsLocationShift(t *testing.T) {
	sea, _ := VantageByName("SEA")
	eu := tinyCampaign(Twente, 83)
	us := tinyCampaign(sea, 83)
	deltas := Compare(eu, us, 1.3)
	if len(deltas) == 0 {
		t.Fatal("moving the vantage across the Atlantic changed nothing?")
	}
	// Wuala must appear: its EU placement is the location-sensitive
	// one.
	found := false
	for _, d := range deltas {
		if d.Service == "wuala" && d.Metric == "completion_s" && d.Ratio > 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("wuala completion regression not flagged: %+v", deltas)
	}
	out := DeltaReport(deltas)
	if !strings.Contains(out, "wuala") {
		t.Fatalf("report:\n%s", out)
	}
	if DeltaReport(nil) != "no significant differences\n" {
		t.Fatal("empty report")
	}
}

func TestCompareThresholdNormalization(t *testing.T) {
	c := tinyCampaign(Twente, 84)
	// 0.5 and 2.0 must behave identically.
	a := Compare(c, c, 0.5)
	b := Compare(c, c, 2.0)
	if len(a) != len(b) {
		t.Fatal("threshold normalization broken")
	}
}

func TestRunFullCampaignShape(t *testing.T) {
	c := RunFullCampaign(Twente, 1, 85)
	if len(c.Fig6) != 5 || len(c.Idle) != 5 {
		t.Fatalf("campaign shape: %d fig6, %d idle", len(c.Fig6), len(c.Idle))
	}
	for _, r := range c.Fig6 {
		if len(r.Summaries) != 4 {
			t.Fatalf("%s: %d summaries", r.Service, len(r.Summaries))
		}
	}
	if !c.CreatedAt.Equal(time.Date(2013, 10, 23, 0, 0, 0, 0, time.UTC)) {
		t.Fatal("campaign timestamp must be the virtual epoch (determinism)")
	}
}

func mustProfile(svc string) client.Profile {
	p, ok := client.ProfileFor(svc)
	if !ok {
		panic(svc)
	}
	return p
}
