package core

import (
	"time"

	"repro/internal/client"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PropagationResult measures end-to-end synchronization between two
// devices of the same account: device A uploads, device B is notified
// and downloads. The paper studies the upload half in depth; this is
// the natural extension that the methodology supports unchanged,
// since every phase is visible in the trace.
type PropagationResult struct {
	Service string
	// Upload is from the file event to A's commit.
	Upload time.Duration
	// Notify is from A's commit to B learning about the change
	// (push for Dropbox's long-poll channel, next poll otherwise).
	Notify time.Duration
	// Download is from B learning to B holding all bytes.
	Download time.Duration
	// Total is the file-event-to-second-device latency.
	Total time.Duration
}

// RunPropagation runs the two-device experiment for one service.
func RunPropagation(p client.Profile, batch workload.Batch, seed int64) PropagationResult {
	tb := NewTestbed(p, seed, 0)

	// Device B: a second test computer in the same campus network.
	hostB := tb.Net.AddHost(&netem.Host{
		Name:  "testpc-b.utwente.sim",
		Addr:  "130.89.0.2",
		Coord: geo.Coord{Lat: TwenteCoord.Lat, Lon: TwenteCoord.Lon},
	})
	clientB := client.New(client.Config{
		Profile: p, Deploy: tb.Deploy, Net: tb.Net, Host: hostB,
		Cap: tb.Cap, DNS: tb.DNS, RNG: sim.NewRNG(seed + 1),
	})

	start := tb.Settle()
	bLogin := clientB.Login(start)
	tb.Clock.AdvanceTo(bLogin)
	t0 := tb.Clock.Now().Add(10 * time.Second)
	tb.Clock.AdvanceTo(t0)

	// Device A uploads.
	batch.Materialize(tb.Folder, tb.RNG, t0, "shared")
	res := tb.Client.SyncChanges(tb.Folder, t0.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)

	// Device B is notified, then downloads.
	notified := clientB.NextNotification(res.Done)
	downloaded := clientB.Download(res.Plans, notified)
	tb.Clock.AdvanceTo(downloaded)

	return PropagationResult{
		Service:  p.Service,
		Upload:   res.Done.Sub(t0),
		Notify:   notified.Sub(res.Done),
		Download: downloaded.Sub(notified),
		Total:    downloaded.Sub(t0),
	}
}

// DownloadBytes verifies from the trace how much B pulled — exposed
// for tests.
func DownloadBytes(tb *Testbed, from time.Time) int64 {
	win := tb.Cap.Window(from, trace.FarFuture)
	return win.PayloadBytesDir(trace.AllFlows, trace.Downstream)
}
