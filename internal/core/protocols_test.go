package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/client"
)

func TestAnalyzeProtocolsSect31(t *testing.T) {
	reports := map[string]ProtocolReport{}
	for _, p := range client.Profiles() {
		reports[p.Service] = AnalyzeProtocols(p, 21)
	}

	// "All clients exchange traffic using HTTPS, with the exception
	// of Dropbox notification protocol ... Interestingly, some Wuala
	// storage operations also use HTTP."
	if !reports["dropbox"].UsesPlainHTTP {
		t.Error("dropbox notifications must run over plain HTTP")
	}
	if got := strings.Join(reports["dropbox"].PlainHTTPNames, " "); !strings.Contains(got, "notify") {
		t.Errorf("dropbox plain-HTTP names = %q, want the notification channel", got)
	}
	for _, svc := range []string{"skydrive", "googledrive", "clouddrive"} {
		if reports[svc].UsesPlainHTTP {
			t.Errorf("%s must be HTTPS-only, saw plain HTTP on %v", svc, reports[svc].PlainHTTPNames)
		}
	}

	// "All services but Wuala use separate servers for control and
	// storage" — in the idle phase Wuala shows a single name; the
	// split services show several.
	if !reports["dropbox"].SplitControlStorage {
		t.Error("dropbox control/storage/notify names must differ")
	}

	// "SkyDrive ... contacts many different Microsoft Live servers
	// during login (13 in this example)."
	if got := reports["skydrive"].LoginServers; got < 12 || got > 14 {
		t.Errorf("skydrive login servers = %d, want 13", got)
	}
	if got := reports["dropbox"].LoginServers; got > 4 {
		t.Errorf("dropbox login servers = %d, want a couple", got)
	}

	// Polling cadences (Sect. 3.1): Wuala ~5 min, Google Drive
	// ~40 s, Dropbox/SkyDrive ~1 min, Cloud Drive 15 s.
	within := func(got, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= want/4
	}
	wantPoll := []struct {
		svc  string
		want time.Duration
	}{
		{"dropbox", time.Minute},
		{"skydrive", time.Minute},
		{"wuala", 5 * time.Minute},
		{"googledrive", 40 * time.Second},
		{"clouddrive", 15 * time.Second},
	}
	for _, w := range wantPoll {
		if got := reports[w.svc].PollInterval; !within(got, w.want) {
			t.Errorf("%s poll interval = %v, want ~%v", w.svc, got, w.want)
		}
	}

	// "polling is done every 15 s, each time opening a new HTTPS
	// connection."
	if !reports["clouddrive"].PollConnPerPoll {
		t.Error("clouddrive must open a connection per poll")
	}
	for _, svc := range []string{"dropbox", "wuala", "googledrive", "skydrive"} {
		if reports[svc].PollConnPerPoll {
			t.Errorf("%s should poll on a persistent channel", svc)
		}
	}
}

func TestWualaStorageUsesPlainHTTP(t *testing.T) {
	// Exercise a storage transfer to see Wuala's port-80 operations.
	m := RunSync(client.Wuala(), fig4SingleBatch(), 22, 0)
	if m.StorageUp == 0 {
		t.Fatal("no storage traffic")
	}
	tb := NewTestbed(client.Wuala(), 22, 0)
	start := tb.Settle()
	t0 := tb.Clock.Now()
	fig4SingleBatch().Materialize(tb.Folder, tb.RNG, t0, "bench")
	res := tb.Client.SyncChanges(tb.Folder, start.Add(-time.Second))
	tb.Clock.AdvanceTo(res.Done)
	sawPort80Storage := false
	for _, f := range tb.Cap.Flows() {
		if f.Key.ServerPort == 80 && !f.OpenedAt.Before(t0) {
			sawPort80Storage = true
		}
	}
	if !sawPort80Storage {
		t.Fatal("Wuala storage operations should run over plain HTTP (Sect. 3.1)")
	}
}

func TestMedianGap(t *testing.T) {
	base := time.Date(2013, 10, 23, 0, 0, 0, 0, time.UTC)
	ts := []time.Time{base, base.Add(10 * time.Second), base.Add(21 * time.Second), base.Add(30 * time.Second)}
	if got := medianGap(ts); got != 10*time.Second {
		t.Fatalf("medianGap = %v", got)
	}
	if medianGap(ts[:1]) != 0 {
		t.Fatal("single instant must yield 0")
	}
}
