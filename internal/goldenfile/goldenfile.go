// Package goldenfile centralises pinned-value ("golden") test data.
//
// Golden values pin the simulation's exact behaviour — every metric is
// deterministic given a seed, so any drift means an engine change
// altered simulated behaviour. Before this package they lived as Go
// literals inside the tests, which made a sanctioned refresh (a
// deliberate change to every simulated byte, like the PCG content
// pipeline) a hand-editing exercise. Now they live in testdata/*.json
// and every golden test goes through Check:
//
//	goldenfile.Check(t, "testdata/golden_metrics.json", got)
//
// A normal run compares got against the committed file and fails on
// any difference. A sanctioned refresh regenerates every golden file
// in one command:
//
//	go test ./internal/core ./internal/client -update
//
// (scripts/regen-golden.sh runs it for every package that owns golden
// files). The -update flag is registered once here, shared by every
// test binary that links this package.
package goldenfile

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with values from the current engine")

// Updating reports whether this test run regenerates golden files.
func Updating() bool { return *update }

// Check compares got against the golden file at path (relative to the
// test's package directory). With -update it rewrites the file
// instead. Values are compared through their canonical JSON encoding:
// ints, strings and shortest-form floats round-trip exactly, so byte
// equality is value equality.
func Check(t *testing.T, path string, got any) {
	t.Helper()
	data := canonical(t, marshal(t, got))
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("goldenfile: %v", err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("goldenfile: %v", err)
		}
		t.Logf("goldenfile: rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("goldenfile: %v (run scripts/regen-golden.sh for a sanctioned refresh)", err)
	}
	if !bytes.Equal(canonical(t, want), data) {
		t.Errorf("golden drift against %s\n got: %s\nwant: %s\n(an engine change altered simulated behaviour; if sanctioned, refresh with scripts/regen-golden.sh)",
			path, data, bytes.TrimSpace(want))
	}
}

// Load unmarshals the golden file at path into out, for tests that
// need pinned values as inputs rather than expectations. It fails the
// test (rather than loading) during -update runs if the file is
// missing — the owning Check call must run first in that case.
func Load(t *testing.T, path string, out any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("goldenfile: %v", err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("goldenfile: %s: %v", path, err)
	}
}

// marshal renders v in the canonical golden encoding.
func marshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("goldenfile: marshal: %v", err)
	}
	return data
}

// canonical re-encodes JSON through an untyped value (maps sort their
// keys) so both sides of a comparison share one canonical form and
// neither struct field order nor hand-formatting can mask — or fake —
// a value change.
func canonical(t *testing.T, data []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("goldenfile: corrupt golden data: %v", err)
	}
	return marshal(t, v)
}
