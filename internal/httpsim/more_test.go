package httpsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/trace"
)

func TestDoOnceAdvancesMonotonically(t *testing.T) {
	_, _, c, server := testbed(10 * time.Millisecond)
	t1 := c.DoOnce(server, "s", sim.Epoch, 100, 100)
	t2 := c.DoOnce(server, "s", t1, 100, 100)
	if !t2.After(t1) || !t1.After(sim.Epoch) {
		t.Fatalf("times not monotone: %v %v", t1, t2)
	}
}

func TestUploadWithZeroBody(t *testing.T) {
	_, cap, c, server := testbed(0)
	s := c.Open(server, "s", sim.Epoch)
	last, acked := s.Upload(0, 0)
	if acked.Before(last) {
		t.Fatal("ack before last byte")
	}
	// Headers still travel.
	if up := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream); up < DefaultProfile.ReqHeaderBytes {
		t.Fatalf("zero-body upload carried %d bytes", up)
	}
}

func TestSessionConnExposesTransport(t *testing.T) {
	n, _, c, server := testbed(0)
	s := c.Open(server, "s", sim.Epoch)
	client, _ := n.HostByName("client.sim")
	if got := s.Conn().RTT(); got != n.BaseRTT(client, server) {
		t.Fatalf("session RTT = %v", got)
	}
	if s.Conn().ServerName() != "s" {
		t.Fatal("server name lost")
	}
}

func TestProfileHeaderSizesRespected(t *testing.T) {
	n, cap, _, server := testbed(0)
	client, _ := n.HostByName("client.sim")
	p := Profile{TLS: DefaultProfile.TLS, ReqHeaderBytes: 1234, RespHeaderBytes: 567}
	c := NewClient(tcpsim.NewDialer(n, cap, client), p)
	s := c.Open(server, "s", sim.Epoch)
	upBefore := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream)
	downBefore := cap.PayloadBytesDir(trace.AllFlows, trace.Downstream)
	s.Do(0, 0)
	up := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream) - upBefore
	down := cap.PayloadBytesDir(trace.AllFlows, trace.Downstream) - downBefore
	if up < 1234 || up > 1234+1234/20 {
		t.Fatalf("request bytes = %d, want ~1234", up)
	}
	if down < 567 || down > 567+567/20 {
		t.Fatalf("response bytes = %d, want ~567", down)
	}
}
