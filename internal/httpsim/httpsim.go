// Package httpsim layers HTTP/HTTPS message exchange on top of the
// tcpsim transport model.
//
// All five services in the paper speak HTTPS (with two deliberate
// exceptions: Dropbox's plain-HTTP notification channel and some Wuala
// storage operations, already client-side encrypted). What the paper's
// measurements see of HTTP is its cost profile: per-request header
// bytes, per-connection handshakes, and request/response round trips.
// That is exactly what this package models; there is no URL routing or
// header parsing because no measurement depends on it.
package httpsim

import (
	"time"

	"repro/internal/netem"
	"repro/internal/tcpsim"
)

// Profile sets the per-message costs of a service's HTTP dialect.
type Profile struct {
	TLS tcpsim.TLSConfig
	// ReqHeaderBytes is the size of request line + headers + cookies.
	ReqHeaderBytes int64
	// RespHeaderBytes is the size of status line + headers.
	RespHeaderBytes int64
}

// DefaultProfile approximates the header volume observed for the
// services under study (cookies and API tokens included).
var DefaultProfile = Profile{
	TLS:             tcpsim.DefaultTLS,
	ReqHeaderBytes:  600,
	RespHeaderBytes: 350,
}

// Client issues HTTP exchanges from one test computer.
type Client struct {
	Dialer  *tcpsim.Dialer
	Profile Profile
}

// NewClient returns an HTTP client over the given dialer.
func NewClient(d *tcpsim.Dialer, p Profile) *Client {
	return &Client{Dialer: d, Profile: p}
}

// Session is a persistent HTTP connection ("keep-alive"): services that
// reuse TCP connections (Dropbox, SkyDrive, Wuala) run all their
// exchanges over few sessions, while Google Drive and Cloud Drive pay a
// fresh TCP+TLS handshake per file (Sect. 4.2).
type Session struct {
	client *Client
	conn   *tcpsim.Conn
}

// Open establishes a session to server at virtual instant `at`.
func (c *Client) Open(server *netem.Host, serverName string, at time.Time) *Session {
	conn := c.Dialer.Dial(server, serverName, at, c.Profile.TLS)
	return &Session{client: c, conn: conn}
}

// Conn exposes the underlying transport connection.
func (s *Session) Conn() *tcpsim.Conn { return s.conn }

// Do performs one request/response exchange with the given body sizes
// and returns when the client holds the complete response.
func (s *Session) Do(reqBody, respBody int64) time.Time {
	p := s.client.Profile
	return s.conn.RequestResponse(p.ReqHeaderBytes+reqBody, p.RespHeaderBytes+respBody)
}

// Upload performs a request carrying body upload bytes and returns both
// the instant the last byte left the client (lastSent — the trace event
// that ends the paper's completion-time metric) and the instant the
// client received the server's acknowledgment response (acked — when
// the application may proceed to the next step).
func (s *Session) Upload(body int64, respBody int64) (lastSent, acked time.Time) {
	p := s.client.Profile
	last, serverDone := s.conn.Send(p.ReqHeaderBytes + body)
	acked = s.conn.Recv(serverDone, p.RespHeaderBytes+respBody)
	return last, acked
}

// Close tears the session down.
func (s *Session) Close() time.Time { return s.conn.Close() }

// DoOnce opens a fresh connection, performs a single exchange, and
// closes it. It models Cloud Drive's pathological polling (a new HTTPS
// connection every 15 s, Fig. 1) and the per-file connection strategy.
// It returns the response-complete instant.
func (c *Client) DoOnce(server *netem.Host, serverName string, at time.Time, reqBody, respBody int64) time.Time {
	s := c.Open(server, serverName, at)
	done := s.Do(reqBody, respBody)
	s.Close()
	return done
}
