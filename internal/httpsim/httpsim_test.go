package httpsim

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/trace"
)

func testbed(proc time.Duration) (*netem.Network, *trace.Capture, *Client, *netem.Host) {
	n := netem.New(sim.NewClock(), sim.NewRNG(1))
	client := n.AddHost(&netem.Host{Name: "client.sim", Addr: "10.0.0.1",
		Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
	zrh, _ := geo.LookupAirport("ZRH")
	server := n.AddHost(&netem.Host{Name: "server.sim", Addr: "203.0.113.1",
		Coord: zrh.Coord, RateBps: 30e6, ProcDelay: proc})
	cap := trace.NewCapture()
	return n, cap, NewClient(tcpsim.NewDialer(n, cap, client), DefaultProfile), server
}

func TestSessionDoHeaderAccounting(t *testing.T) {
	_, cap, c, server := testbed(0)
	s := c.Open(server, "api.example", sim.Epoch)
	base := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream)
	s.Do(1000, 2000)
	up := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream) - base
	// 600 header + 1000 body, +2% TLS records.
	wantMin, wantMax := int64(1600), int64(1600)+int64(1600)*3/100
	if up < wantMin || up > wantMax {
		t.Fatalf("request bytes = %d, want [%d,%d]", up, wantMin, wantMax)
	}
}

func TestUploadReturnsBothInstants(t *testing.T) {
	n, _, c, server := testbed(30 * time.Millisecond)
	client, _ := n.HostByName("client.sim")
	rtt := n.BaseRTT(client, server)
	s := c.Open(server, "storage.example", sim.Epoch)
	lastSent, acked := s.Upload(50_000, 100)
	if !acked.After(lastSent) {
		t.Fatal("acked must come after lastSent")
	}
	// Ack lag is at least one RTT (propagation both ways) + processing.
	if lag := acked.Sub(lastSent); lag < rtt/2+30*time.Millisecond {
		t.Fatalf("ack lag = %v, too small", lag)
	}
}

func TestDoOnceOpensAndClosesConnection(t *testing.T) {
	_, cap, c, server := testbed(0)
	c.DoOnce(server, "poll.example", sim.Epoch, 200, 300)
	c.DoOnce(server, "poll.example", sim.Epoch.Add(15*time.Second), 200, 300)
	if got := cap.ConnectionCount(trace.AllFlows); got != 2 {
		t.Fatalf("connections = %d, want 2 (one per poll)", got)
	}
	fins := 0
	for _, p := range cap.Packets() {
		if p.Flags.FIN && p.Dir == trace.Upstream {
			fins++
		}
	}
	if fins != 2 {
		t.Fatalf("client FINs = %d, want 2", fins)
	}
}

func TestPersistentSessionReusesConnection(t *testing.T) {
	_, cap, c, server := testbed(0)
	s := c.Open(server, "api.example", sim.Epoch)
	for i := 0; i < 10; i++ {
		s.Do(100, 100)
	}
	if got := cap.ConnectionCount(trace.AllFlows); got != 1 {
		t.Fatalf("connections = %d, want 1 (keep-alive)", got)
	}
}

func TestPollingCostAsymmetry(t *testing.T) {
	// The Fig. 1 phenomenon: per-poll fresh HTTPS connections cost an
	// order of magnitude more than keep-alive polling.
	_, capA, c1, serverA := testbed(0)
	s := c1.Open(serverA, "poll.example", sim.Epoch)
	at := sim.Epoch
	for i := 0; i < 16; i++ { // 16 polls on one session
		at = at.Add(time.Minute)
		s.Conn().Wait(at)
		s.Do(150, 150)
	}
	keepAlive := capA.TotalWireBytes(trace.AllFlows)

	_, capB, c2, serverB := testbed(0)
	at = sim.Epoch
	for i := 0; i < 16; i++ {
		at = at.Add(time.Minute)
		c2.DoOnce(serverB, "poll.example", at, 150, 150)
	}
	perConn := capB.TotalWireBytes(trace.AllFlows)

	// Fresh TLS per poll costs several times more; Cloud Drive's
	// order-of-magnitude Fig. 1 gap additionally comes from its 4x
	// higher poll frequency, exercised in the client-level tests.
	if perConn < 3*keepAlive {
		t.Fatalf("per-connection polling %d B not >> keep-alive %d B", perConn, keepAlive)
	}
}

func TestPlainHTTPProfile(t *testing.T) {
	n, cap, _, server := testbed(0)
	client, _ := n.HostByName("client.sim")
	plain := Profile{TLS: tcpsim.PlainTCP, ReqHeaderBytes: 400, RespHeaderBytes: 250}
	c := NewClient(tcpsim.NewDialer(n, cap, client), plain)
	s := c.Open(server, "notify.example", sim.Epoch)
	s.Do(0, 0)
	// No TLS: handshake contributes no payload, only the HTTP headers do.
	up := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream)
	if up != int64(plain.ReqHeaderBytes) {
		t.Fatalf("plain HTTP upstream payload = %d, want %d", up, plain.ReqHeaderBytes)
	}
	//simlint:allow goldendiscipline -- 80 is the well-known HTTP port, protocol structure not an engine metric
	if key := cap.Flow(0).Key; key.ServerPort != 80 {
		t.Fatalf("plain HTTP on port %d, want 80", key.ServerPort)
	}
}
