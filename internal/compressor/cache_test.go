package compressor

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// contents returns payloads that exercise both cache tiers (below and
// above sizeCacheMinLen) and both compressibility extremes.
func contents(t *testing.T) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	random := make([]byte, 64<<10)
	rng.Read(random)
	text := make([]byte, 64<<10)
	words := []byte("the quick brown fox jumps over the lazy dog ")
	for i := range text {
		text[i] = words[i%len(words)]
	}
	small := make([]byte, 512)
	rng.Read(small)
	return map[string][]byte{"random": random, "text": text, "small": small}
}

// TestTransmitSizeCacheExact proves the (hash -> size) cache is
// invisible: repeated calls — cold, warm, and after mutation of an
// unrelated buffer — return exactly the uncached DEFLATE count.
func TestTransmitSizeCacheExact(t *testing.T) {
	all := contents(t)
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		data := all[name]
		want := countDeflate(data)
		for i := 0; i < 3; i++ {
			if got := TransmitSize(Always, data); got != want {
				t.Fatalf("%s call %d: TransmitSize = %d, want %d", name, i, got, want)
			}
		}
		// Equal content in a different allocation must hit the same
		// entry and the same size.
		clone := append([]byte(nil), data...)
		if got := TransmitSize(Always, clone); got != want {
			t.Fatalf("%s clone: TransmitSize = %d, want %d", name, got, want)
		}
		// Different content must not collide with the cached entry.
		clone[len(clone)/2] ^= 0xFF
		if got, direct := TransmitSize(Always, clone), countDeflate(clone); got != direct {
			t.Fatalf("%s mutated: TransmitSize = %d, want %d", name, got, direct)
		}
	}
}

// TestTransmitSizeCacheConcurrent hammers the cache from many
// goroutines over a shared content set — the campaign engine's
// access pattern, where parallel repetitions re-plan equal chunks.
// Run with -race (CI does) to prove the locking.
func TestTransmitSizeCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	payloads := make([][]byte, 8)
	want := make([]int64, len(payloads))
	for i := range payloads {
		payloads[i] = make([]byte, 16<<10+i)
		rng.Read(payloads[i])
		want[i] = countDeflate(payloads[i])
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % len(payloads)
				if got := TransmitSize(Always, payloads[k]); got != want[k] {
					errc <- nil
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if len(errc) > 0 {
		t.Fatal("concurrent TransmitSize returned a wrong size")
	}
}

// TestSizeCacheReset proves the entry bound resets the cache instead
// of growing without limit, and that results stay exact across the
// reset generation.
func TestSizeCacheReset(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	probe := make([]byte, sizeCacheMinLen)
	rng.Read(probe)
	want := countDeflate(probe)
	if got := TransmitSize(Always, probe); got != want {
		t.Fatalf("probe = %d, want %d", got, want)
	}
	// Overflow the generation with unique contents.
	buf := make([]byte, sizeCacheMinLen)
	for i := 0; i < sizeCacheMaxEntries+10; i++ {
		rng.Read(buf)
		TransmitSize(Always, buf)
	}
	sizeCache.RLock()
	n := len(sizeCache.m)
	sizeCache.RUnlock()
	if n > sizeCacheMaxEntries {
		t.Fatalf("cache grew to %d entries, bound is %d", n, sizeCacheMaxEntries)
	}
	// The probe may have been evicted by the reset; the size must not
	// have changed either way.
	if got := TransmitSize(Always, probe); got != want {
		t.Fatalf("probe after reset = %d, want %d", got, want)
	}
}
