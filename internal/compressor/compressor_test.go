package compressor

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestNonePassthrough(t *testing.T) {
	data := []byte("raw bytes")
	r := Apply(None, data)
	if r.Compressed || !bytes.Equal(r.Data, data) {
		t.Fatalf("None modified data: %+v", r)
	}
}

func TestAlwaysCompressesText(t *testing.T) {
	rng := sim.NewRNG(1)
	text := workload.Generate(rng, workload.Text, 100_000)
	r := Apply(Always, text)
	if !r.Compressed {
		t.Fatal("not compressed")
	}
	ratio := float64(len(text)) / float64(len(r.Data))
	if ratio < 2.5 {
		t.Fatalf("text compression ratio %.2f, want >= 2.5", ratio)
	}
	back, err := Decompress(r.Data)
	if err != nil || !bytes.Equal(back, text) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestAlwaysOnRandomGrows(t *testing.T) {
	rng := sim.NewRNG(2)
	random := workload.Generate(rng, workload.Binary, 100_000)
	r := Apply(Always, random)
	if len(r.Data) <= len(random) {
		t.Fatalf("random data shrank: %d -> %d", len(random), len(r.Data))
	}
	// Flate's stored-block overhead is small.
	if len(r.Data) > len(random)+len(random)/50 {
		t.Fatalf("overhead too large: %d -> %d", len(random), len(r.Data))
	}
}

func TestSmartSkipsRealJPEGHeader(t *testing.T) {
	rng := sim.NewRNG(3)
	fake := workload.Generate(rng, workload.FakeJPEG, 100_000)
	// Smart trusts the header and skips — the Fig. 5c observation:
	// Google Drive does NOT compress fake JPEGs.
	r := Apply(Smart, fake)
	if r.Compressed {
		t.Fatal("Smart compressed a JPEG-headed file")
	}
	// Always compresses it anyway (Dropbox) and wins, because the
	// body is text.
	r2 := Apply(Always, fake)
	if !r2.Compressed || len(r2.Data) >= len(fake) {
		t.Fatalf("Always on fake JPEG: %d -> %d", len(fake), len(r2.Data))
	}
}

func TestSmartCompressesText(t *testing.T) {
	rng := sim.NewRNG(4)
	text := workload.Generate(rng, workload.Text, 50_000)
	r := Apply(Smart, text)
	if !r.Compressed || len(r.Data) >= len(text) {
		t.Fatalf("Smart on text: compressed=%v %d -> %d", r.Compressed, len(text), len(r.Data))
	}
}

func TestLooksCompressedFormats(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want bool
	}{
		{"jpeg", []byte{0xFF, 0xD8, 0xFF, 0xE0}, true},
		{"png", []byte{0x89, 'P', 'N', 'G'}, true},
		{"gzip", []byte{0x1F, 0x8B, 8, 0}, true},
		{"zip", []byte{'P', 'K', 3, 4}, true},
		{"bzip2", []byte{'B', 'Z', 'h', '9'}, true},
		{"ogg", []byte("OggS...."), true},
		{"mp4", []byte{0, 0, 0, 24, 'f', 't', 'y', 'p', 'i', 's', 'o', 'm'}, true},
		{"text", []byte("hello world"), false},
		{"short", []byte{1, 2}, false},
		{"empty", nil, false},
	}
	for _, c := range cases {
		if got := LooksCompressed(c.data); got != c.want {
			t.Errorf("%s: LooksCompressed = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if None.String() != "no" || Always.String() != "always" || Smart.String() != "smart" {
		t.Fatal("policy names must match Table 1 vocabulary")
	}
}

func TestApplyUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Apply(Policy(42), []byte("x"))
}
