// Package compressor implements the transmission-compression policies
// observed in the study (Sect. 4.5):
//
//   - None: transmit raw (SkyDrive, Wuala, Cloud Drive).
//   - Always: compress every payload regardless of content (Dropbox —
//     which therefore wastes CPU and bytes on JPEGs).
//   - Smart: sniff the content type first and skip formats that are
//     already compressed (Google Drive, which the paper caught by
//     feeding it fake JPEGs: JPEG header, text body — Google Drive
//     trusts the header and skips compression, Fig. 5c).
//
// Compression is real DEFLATE via compress/flate, so upload volumes
// inherit genuine content-dependent ratios: dictionary text shrinks
// ~3-4x, random bytes grow slightly, fake JPEGs shrink only under the
// Always policy.
package compressor

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"fmt"
	"sync"
)

// Policy selects a compression behaviour.
type Policy int

const (
	// None never compresses.
	None Policy = iota
	// Always compresses every payload.
	Always
	// Smart compresses unless the content sniffs as an
	// already-compressed format.
	Smart
)

// String returns the policy name used in Table 1.
func (p Policy) String() string {
	switch p {
	case None:
		return "no"
	case Always:
		return "always"
	case Smart:
		return "smart"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Level is the flate level used by Always and Smart. Level 6 is the
// usual default trade-off.
const Level = 6

// Result reports what happened to one payload.
type Result struct {
	Data       []byte
	Compressed bool
}

// Apply runs the policy over one payload and returns the bytes to
// transmit. The input is never modified; when compression is skipped
// the input slice is returned as-is.
func Apply(p Policy, data []byte) Result {
	switch p {
	case None:
		return Result{Data: data}
	case Smart:
		if LooksCompressed(data) {
			return Result{Data: data}
		}
		return deflate(data)
	case Always:
		return deflate(data)
	default:
		panic(fmt.Sprintf("compressor: unknown policy %d", int(p)))
	}
}

// writers pools flate compressor state (several hundred kB each, the
// dominant allocation of the old per-call flate.NewWriter) across the
// many per-chunk size computations of a benchmark campaign. DEFLATE
// output depends only on the input and level, so pooling never changes
// a transmitted size.
var writers = sync.Pool{New: func() any {
	w, err := flate.NewWriter(nil, Level)
	if err != nil {
		panic(err) // only on invalid level
	}
	return w
}}

func deflate(data []byte) Result {
	var buf bytes.Buffer
	w := writers.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(data); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	writers.Put(w)
	return Result{Data: buf.Bytes(), Compressed: true}
}

// countWriter discards output, keeping only its size.
type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

// TransmitSize returns the transmitted byte count Apply would produce
// without materialising the compressed output — the upload planner
// only ever needs the size. The count is exact: DEFLATE is
// deterministic, so counting bytes into a sink yields the same number
// as buffering them, and the (content hash -> size) cache below can
// never change a result, only skip recomputing it.
func TransmitSize(p Policy, data []byte) int64 {
	switch p {
	case None:
		return int64(len(data))
	case Smart:
		if LooksCompressed(data) {
			return int64(len(data))
		}
	case Always:
	default:
		panic(fmt.Sprintf("compressor: unknown policy %d", int(p)))
	}
	return deflatedSize(data)
}

// Size-only DEFLATE dominates the wall-clock of campaigns against
// always-compress services (level-6 flate over every uploaded chunk,
// ~38% of a Dropbox campaign repetition), and benchmark harnesses
// routinely re-plan identical content: repeated engine timings over
// one seed, the parallel-vs-sequential bit-identity checks, and the
// Fig. 6 matrix, whose (workload, repetition) seeds — and therefore
// file contents — are shared by every service. The cache keys the
// deflated size by content hash; SHA-256 is an order of magnitude
// cheaper than the DEFLATE it saves, and collisions are not a
// practical concern, so sizes stay exact.
const (
	// sizeCacheMinLen keeps tiny payloads (delta literal runs, sub-kB
	// files) out of the cache: hashing overhead and map churn would
	// rival the DEFLATE they save.
	sizeCacheMinLen = 4 << 10
	// sizeCacheMaxEntries bounds cache memory (~40 B/entry). When the
	// bound is hit the cache resets wholesale — campaigns reuse a
	// small working set of contents, so a generation that overflows is
	// mostly dead weight anyway.
	sizeCacheMaxEntries = 4096
)

var sizeCache struct {
	sync.RWMutex
	m map[[sha256.Size]byte]int64
}

// deflatedSize is the counting DEFLATE behind TransmitSize, memoised
// by content hash for payloads worth caching.
func deflatedSize(data []byte) int64 {
	if len(data) < sizeCacheMinLen {
		return countDeflate(data)
	}
	key := sha256.Sum256(data)
	sizeCache.RLock()
	n, ok := sizeCache.m[key]
	sizeCache.RUnlock()
	if ok {
		return n
	}
	n = countDeflate(data)
	sizeCache.Lock()
	if sizeCache.m == nil || len(sizeCache.m) >= sizeCacheMaxEntries {
		sizeCache.m = make(map[[sha256.Size]byte]int64, 256)
	}
	sizeCache.m[key] = n
	sizeCache.Unlock()
	return n
}

// ContentKey identifies a deterministic payload without hashing it:
// generated benchmark content is a pure function of its descriptor
// (generator id, seed, size) and the chunk window cut from it. Keying
// the size cache on this identity skips not only the DEFLATE but the
// SHA-256 over megabytes of content — and, for lazily planned files,
// the content generation itself.
type ContentKey struct {
	Gen  uint32 // generator id: content kind + engine
	Seed int64  // descriptor stream seed
	Size int64  // whole-content length
	Off  int64  // chunk offset within the content
	Len  int64  // chunk length
}

// keyedSizeCache memoises transmit sizes by (policy, ContentKey). It
// is bounded like the hash cache and resets wholesale when full.
var keyedSizeCache struct {
	sync.RWMutex
	m map[keyedSizeKey]int64
}

type keyedSizeKey struct {
	policy Policy
	key    ContentKey
}

// TransmitSizeKeyed returns the transmitted byte count Apply would
// produce for a payload identified by key, materialising the payload
// via data() only on a cache miss. rawLen is the payload length (known
// without materialising); policies that never compress return it
// directly. Sizes are exact: the cache can only skip recomputing, and
// the Smart policy's sniff verdict is part of the cached result.
func TransmitSizeKeyed(p Policy, key ContentKey, rawLen int64, data func() []byte) int64 {
	if p == None {
		return rawLen
	}
	k := keyedSizeKey{policy: p, key: key}
	keyedSizeCache.RLock()
	n, ok := keyedSizeCache.m[k]
	keyedSizeCache.RUnlock()
	if ok {
		return n
	}
	n = transmitSizeUncached(p, data())
	keyedSizeCache.Lock()
	if keyedSizeCache.m == nil || len(keyedSizeCache.m) >= sizeCacheMaxEntries {
		keyedSizeCache.m = make(map[keyedSizeKey]int64, 256)
	}
	keyedSizeCache.m[k] = n
	keyedSizeCache.Unlock()
	return n
}

// transmitSizeUncached is TransmitSize minus the hash cache: the keyed
// cache already provides identity, so hashing the content on a miss
// would be pure overhead.
func transmitSizeUncached(p Policy, data []byte) int64 {
	switch p {
	case None:
		return int64(len(data))
	case Smart:
		if LooksCompressed(data) {
			return int64(len(data))
		}
	case Always:
	default:
		panic(fmt.Sprintf("compressor: unknown policy %d", int(p)))
	}
	return countDeflate(data)
}

// countDeflate runs the real level-6 DEFLATE into a counting sink.
func countDeflate(data []byte) int64 {
	var n countWriter
	w := writers.Get().(*flate.Writer)
	w.Reset(&n)
	if _, err := w.Write(data); err != nil {
		panic(err) // countWriter cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	writers.Put(w)
	return int64(n)
}

// Decompress reverses Apply for a compressed result.
func Decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LooksCompressed sniffs magic numbers of common already-compressed
// formats. This is the "verify the file format before trying to
// compress it" heuristic the paper suggests and attributes to Google
// Drive. It inspects only the header — which is exactly why a fake
// JPEG (JPEG header, text payload) defeats it.
func LooksCompressed(data []byte) bool {
	if len(data) < 4 {
		return false
	}
	switch {
	case data[0] == 0xFF && data[1] == 0xD8 && data[2] == 0xFF: // JPEG
		return true
	case data[0] == 0x89 && data[1] == 'P' && data[2] == 'N' && data[3] == 'G': // PNG
		return true
	case data[0] == 0x1F && data[1] == 0x8B: // gzip
		return true
	case data[0] == 'P' && data[1] == 'K' && (data[2] == 3 || data[2] == 5): // zip
		return true
	case data[0] == 'B' && data[1] == 'Z' && data[2] == 'h': // bzip2
		return true
	case len(data) >= 12 && string(data[4:8]) == "ftyp": // MP4 family
		return true
	case data[0] == 'O' && data[1] == 'g' && data[2] == 'g' && data[3] == 'S': // Ogg
		return true
	case data[0] == 0xFF && (data[1]&0xE0) == 0xE0: // MPEG audio frame
		return true
	default:
		return false
	}
}
