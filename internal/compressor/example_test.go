package compressor_test

import (
	"bytes"
	"fmt"

	"repro/internal/compressor"
)

// ExampleApply contrasts the three policies of Sect. 4.5 on a fake
// JPEG — a file with a JPEG header but compressible text inside, the
// probe the paper used to expose Google Drive's magic-number check.
func ExampleApply() {
	fake := append([]byte{0xFF, 0xD8, 0xFF, 0xE0}, bytes.Repeat([]byte("text "), 2000)...)

	always := compressor.Apply(compressor.Always, fake)
	smart := compressor.Apply(compressor.Smart, fake)
	never := compressor.Apply(compressor.None, fake)

	fmt.Println("always compresses:", always.Compressed && len(always.Data) < len(fake))
	fmt.Println("smart is fooled:  ", !smart.Compressed)
	fmt.Println("none passes through:", !never.Compressed && len(never.Data) == len(fake))
	// Output:
	// always compresses: true
	// smart is fooled:   true
	// none passes through: true
}
