package trace

import (
	"fmt"
	"sort"
	"time"
)

// Sink is the recording half of a trace: the interface the transport
// simulator (tcpsim, and everything stacked on it) writes against.
// Two implementations exist:
//
//   - Capture buffers every packet record and supports arbitrary
//     re-windowing and per-packet analyzers afterwards — the tcpdump
//     equivalent, O(packets) memory.
//   - Streamer folds packets into pre-registered window accumulators
//     at record time and then discards them — the "compute the
//     counters in the kernel" equivalent, O(flows) memory.
//
// Both honour the same time-ordering discipline: connections simulate
// on independent timelines, so records may arrive slightly out of
// order, and every analyzer result is defined over the stably
// time-sorted trace (Capture re-establishes the order with its reorder
// buffer; Streamer's folds are order-independent except for the SYN
// timeline, which it re-establishes the same way at read time).
type Sink interface {
	// OpenFlow registers a new connection and returns its ID.
	OpenFlow(key FlowKey, serverName string, at time.Time) FlowID
	// Record adds a packet to the trace.
	Record(p Packet)
}

var (
	_ Sink = (*Capture)(nil)
	_ Sink = (*Streamer)(nil)
)

// Streamer is a packet sink that never buffers packets: each Record
// folds the packet into the accumulators of every registered window
// that contains its timestamp, then drops it. Memory is
// O(flows + windows), independent of trace length — the property that
// lets campaign size scale with repetitions instead of packets
// (production-scale runs of the Sect. 5 benchmarks never re-read the
// trace, they only need the per-window Analysis).
//
// The contract mirrors Capture exactly:
//
//   - StreamWindow.Analyze(f) is bit-identical to
//     Capture.Window(from, to).Analyze(f) over the same records,
//     including the SYNTimes order (stable time order, re-established
//     by the same reorder discipline Capture.flush applies) and the
//     HasPayload/FirstPayload/LastPayload bracket.
//   - Filters are applied at read time, against FlowInfo, so
//     classifiers that need per-flow traffic totals (the Wuala
//     flow-size heuristic) work from StreamWindow.FlowBytes.
//
// Windows must be registered before any packet whose timestamp falls
// inside them is recorded; AddWindow enforces this, which is what
// makes a fold over a discarded trace provably equal to a scan over a
// buffered one. Like Capture, a Streamer is not safe for concurrent
// use — the campaign engine gives every experiment cell its own sink.
type Streamer struct {
	flows []FlowInfo
	wins  []*StreamWindow

	// maxSeen is the latest timestamp recorded so far — for span
	// records the instant of their last slice, since the whole span is
	// discarded at record time; AddWindow uses it to reject
	// registrations that would miss already-discarded packets.
	maxSeen time.Time
	seen    bool
}

// NewStreamer returns a streamer with no flows and no windows.
func NewStreamer() *Streamer { return &Streamer{} }

// OpenFlow registers a new connection and returns its ID.
func (s *Streamer) OpenFlow(key FlowKey, serverName string, at time.Time) FlowID {
	id := FlowID(len(s.flows))
	s.flows = append(s.flows, FlowInfo{ID: id, Key: key, ServerName: serverName, OpenedAt: at})
	return id
}

// Record folds a packet into every registered window containing its
// timestamp and discards it. O(windows) per packet, no retention.
// Span records fold in O(1) per window: totals when fully contained,
// a deterministic O(1) clip at window boundaries otherwise.
func (s *Streamer) Record(p Packet) {
	if end := p.End(); !s.seen || end.After(s.maxSeen) {
		s.maxSeen = end
		s.seen = true
	}
	for _, w := range s.wins {
		w.record(p)
	}
}

// AddWindow registers a half-open accumulation window [from, to),
// matching Capture.Window semantics. It panics when a packet at or
// after `from` has already been recorded: that packet is gone, so the
// window could silently diverge from a buffered capture of the same
// run. Callers register windows at quiet instants (the benchmark
// engine does so right when the window opens, after the trace has
// settled).
func (s *Streamer) AddWindow(from, to time.Time) *StreamWindow {
	if s.seen && !s.maxSeen.Before(from) {
		panic(fmt.Sprintf(
			"trace: AddWindow(from=%v) after recording a packet at %v; streaming windows must be registered before their traffic",
			from, s.maxSeen))
	}
	w := &StreamWindow{s: s, from: from, to: to}
	s.wins = append(s.wins, w)
	return w
}

// Flows returns metadata for every connection seen by the streamer.
func (s *Streamer) Flows() []FlowInfo { return s.flows }

// Flow returns the metadata for one connection.
func (s *Streamer) Flow(id FlowID) FlowInfo { return s.flows[id] }

// NumFlows returns how many connections the streamer saw.
func (s *Streamer) NumFlows() int { return len(s.flows) }

// flowAcc is the per-(window, flow) fold of every commutative Analysis
// metric. About a hundred bytes per flow per window — together with
// the per-connection SYN events, the whole memory footprint of a
// streamed repetition.
type flowAcc struct {
	packets                int
	totalWire              int64
	wireUp, wireDown       int64
	payloadUp, payloadDown int64

	firstPayload, lastPayload time.Time
	hasPayload                bool
}

// synEvent is one client-initiated SYN, kept in arrival order. SYN
// timelines are the only order-sensitive Analysis output, and there is
// one per connection, so retaining them stays O(flows).
type synEvent struct {
	time time.Time
	flow FlowID
}

// StreamWindow accumulates one [from, to) time slice of the stream.
// It answers the same questions as a Capture.Window over the same
// records — Analyze, FlowBytes, FlowsWithTraffic — without the
// records.
type StreamWindow struct {
	s        *Streamer
	from, to time.Time
	perFlow  []flowAcc
	syns     []synEvent
}

// From returns the window's inclusive lower bound.
func (w *StreamWindow) From() time.Time { return w.from }

// To returns the window's exclusive upper bound.
func (w *StreamWindow) To() time.Time { return w.to }

// record folds one packet, mirroring Capture.Analyze's per-packet body
// exactly — split per flow so filters can be applied at read time. A
// span is first clipped to the window (O(1): index arithmetic over the
// uniform slicing), so a span straddling a boundary contributes
// exactly its in-window slices, and a fully contained one folds its
// precomputed totals without expansion.
func (w *StreamWindow) record(p Packet) {
	cl, ok := p.Clip(w.from, w.to)
	if !ok {
		return
	}
	for int(cl.Flow) >= len(w.perFlow) {
		w.perFlow = append(w.perFlow, flowAcc{})
	}
	a := &w.perFlow[cl.Flow]
	a.packets += cl.SliceCount()
	a.totalWire += cl.Wire + cl.AckWire
	if cl.Dir == Upstream {
		a.wireUp += cl.Wire
		a.wireDown += cl.AckWire
		a.payloadUp += cl.Payload
		if cl.Flags.SYN && !cl.Flags.ACK {
			w.syns = append(w.syns, synEvent{time: cl.Time, flow: cl.Flow})
		}
	} else {
		a.wireDown += cl.Wire
		a.wireUp += cl.AckWire
		a.payloadDown += cl.Payload
	}
	if cl.Payload > 0 {
		// Every slice of a data span carries payload, so the span's
		// in-window payload bracket is [cl.Time, cl.End()].
		first, last := cl.Time, cl.End()
		if !a.hasPayload {
			a.firstPayload = first
			a.lastPayload = last
			a.hasPayload = true
		} else {
			// Records arrive slightly out of order, so the payload
			// bracket is a min/max fold; over the stably sorted trace
			// these are exactly the first and last payload instants.
			if first.Before(a.firstPayload) {
				a.firstPayload = first
			}
			if last.After(a.lastPayload) {
				a.lastPayload = last
			}
		}
	}
}

// Analyze merges the per-flow accumulators of the selected flows into
// one Analysis, bit-identical to Capture.Window(from, to).Analyze(f)
// over the same records. The SYN timeline is re-established in stable
// time order — the same discipline Capture's reorder buffer applies to
// the whole trace before analyzers read it: sort by timestamp, equal
// timestamps keep arrival order.
func (w *StreamWindow) Analyze(f FlowFilter) Analysis {
	var a Analysis
	for id := range w.perFlow {
		if f != nil && !f(w.s.flows[id]) {
			continue
		}
		acc := &w.perFlow[id]
		a.Packets += acc.packets
		a.TotalWire += acc.totalWire
		a.WireUp += acc.wireUp
		a.WireDown += acc.wireDown
		a.PayloadUp += acc.payloadUp
		a.PayloadDown += acc.payloadDown
		if acc.hasPayload {
			if !a.HasPayload {
				a.FirstPayload = acc.firstPayload
				a.LastPayload = acc.lastPayload
				a.HasPayload = true
			} else {
				if acc.firstPayload.Before(a.FirstPayload) {
					a.FirstPayload = acc.firstPayload
				}
				if acc.lastPayload.After(a.LastPayload) {
					a.LastPayload = acc.lastPayload
				}
			}
		}
	}
	for _, e := range w.syns {
		if f == nil || f(w.s.flows[e.flow]) {
			a.SYNTimes = append(a.SYNTimes, e.time)
		}
	}
	sort.SliceStable(a.SYNTimes, func(i, j int) bool {
		return a.SYNTimes[i].Before(a.SYNTimes[j])
	})
	a.Connections = len(a.SYNTimes)
	return a
}

// FlowBytes returns total wire bytes per flow within the window,
// indexed by FlowID — the Wuala storage/control classifier input,
// identical to Capture.Window(from, to).FlowBytes().
func (w *StreamWindow) FlowBytes() []int64 {
	out := make([]int64, len(w.s.flows))
	for id := range w.perFlow {
		out[id] = w.perFlow[id].totalWire
	}
	return out
}

// FlowsWithTraffic reports which flows carry at least one packet in
// the window, indexed by FlowID, identical to the Capture method.
func (w *StreamWindow) FlowsWithTraffic() []bool {
	out := make([]bool, len(w.s.flows))
	for id := range w.perFlow {
		out[id] = w.perFlow[id].packets > 0
	}
	return out
}
