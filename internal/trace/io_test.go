package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	c := buildCapture()
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Flows(), back.Flows()) {
		t.Fatalf("flows differ:\n%v\n%v", c.Flows(), back.Flows())
	}
	if !reflect.DeepEqual(c.Packets(), back.Packets()) {
		t.Fatalf("packets differ")
	}
	// Analyzers agree on the reloaded capture.
	if c.TotalWireBytes(AllFlows) != back.TotalWireBytes(AllFlows) {
		t.Fatal("byte totals differ after round trip")
	}
	if len(c.SYNTimes(AllFlows)) != len(back.SYNTimes(AllFlows)) {
		t.Fatal("SYN counts differ after round trip")
	}
}

func TestCSVFlagsRoundTrip(t *testing.T) {
	cases := []Flags{
		{}, {SYN: true}, {SYN: true, ACK: true}, {FIN: true, ACK: true}, {RST: true},
		{SYN: true, ACK: true, FIN: true, RST: true},
	}
	for _, f := range cases {
		if got := parseFlags(flagString(f)); got != f {
			t.Fatalf("flags %+v -> %q -> %+v", f, flagString(f), got)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"no-version", "f,0,a,1,b,2,0,n,0\n"},
		{"bad-type", "#cloudbench-trace-v1\nz,1,2\n"},
		{"short-flow", "#cloudbench-trace-v1\nf,0,a,1\n"},
		{"bad-int", "#cloudbench-trace-v1\nf,0,a,xx,b,2,0,n,0\n"},
		{"unknown-flow", "#cloudbench-trace-v1\np,0,5,0,-,0,0,1,0\n"},
		{"short-packet", "#cloudbench-trace-v1\np,0,0\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestReadCSVTolerantOfBlanksAndComments(t *testing.T) {
	input := "#cloudbench-trace-v1\n\n# a comment\nf,0,10.0.0.1,4000,5.5.5.5,443,0,s.example,1382486400000000000\n\np,1382486400000000000,0,0,S,0,74,1,0\n"
	c, err := ReadCSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFlows() != 1 || c.Len() != 1 {
		t.Fatalf("parsed %d flows, %d packets", c.NumFlows(), c.Len())
	}
	if !c.Packets()[0].Flags.SYN {
		t.Fatal("flags lost")
	}
}
