package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Capture serialization: a textual interchange format (CSV with two
// sections) so benchmark runs can dump their traces for offline
// analysis and tooling can reload them — the reproduction's analogue
// of saving pcaps. The format is versioned and round-trips exactly.
//
// v2 extends packet rows with the span slicing parameters
// (slices, slice_bytes, slice_gap_ns), so span records survive a dump
// and reload without expansion; plain records write zeros there. v1
// files (9-field packet rows, all plain) are still read.

const (
	formatVersion   = "cloudbench-trace-v2"
	formatVersionV1 = "cloudbench-trace-v1"
)

// WriteCSV serializes the capture, span records included.
func (c *Capture) WriteCSV(w io.Writer) error {
	c.flush()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#%s\n", formatVersion)
	fmt.Fprintf(bw, "#flows id,client,cport,server,sport,proto,name,opened_unix_ns\n")
	for _, f := range c.flows {
		fmt.Fprintf(bw, "f,%d,%s,%d,%s,%d,%d,%s,%d\n",
			f.ID, f.Key.ClientAddr, f.Key.ClientPort,
			f.Key.ServerAddr, f.Key.ServerPort, int(f.Key.Proto),
			f.ServerName, f.OpenedAt.UnixNano())
	}
	fmt.Fprintf(bw, "#packets unix_ns,flow,dir,flags,payload,wire,segments,ackwire,slices,slice_bytes,slice_gap_ns\n")
	for _, p := range c.packets {
		fmt.Fprintf(bw, "p,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d\n",
			p.Time.UnixNano(), p.Flow, int(p.Dir), flagString(p.Flags),
			p.Payload, p.Wire, p.Segments, p.AckWire,
			p.Slices, p.SliceBytes, p.SliceGap.Nanoseconds())
	}
	return bw.Flush()
}

func flagString(f Flags) string {
	var b strings.Builder
	if f.SYN {
		b.WriteByte('S')
	}
	if f.ACK {
		b.WriteByte('A')
	}
	if f.FIN {
		b.WriteByte('F')
	}
	if f.RST {
		b.WriteByte('R')
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

func parseFlags(s string) Flags {
	return Flags{
		SYN: strings.ContainsRune(s, 'S'),
		ACK: strings.ContainsRune(s, 'A'),
		FIN: strings.ContainsRune(s, 'F'),
		RST: strings.ContainsRune(s, 'R'),
	}
}

// ReadCSV parses a capture previously produced by WriteCSV.
func ReadCSV(r io.Reader) (*Capture, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	c := NewCapture()
	line := 0
	sawVersion := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if strings.Contains(text, formatVersion) || strings.Contains(text, formatVersionV1) {
				sawVersion = true
			}
			continue
		}
		if !sawVersion {
			return nil, fmt.Errorf("trace: line %d: missing %s header", line, formatVersion)
		}
		fields := strings.Split(text, ",")
		switch fields[0] {
		case "f":
			if len(fields) != 9 {
				return nil, fmt.Errorf("trace: line %d: flow record needs 9 fields, has %d", line, len(fields))
			}
			cport, err1 := strconv.Atoi(fields[3])
			sport, err2 := strconv.Atoi(fields[5])
			proto, err3 := strconv.Atoi(fields[6])
			opened, err4 := strconv.ParseInt(fields[8], 10, 64)
			if err := firstErr(err1, err2, err3, err4); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
			c.OpenFlow(FlowKey{
				ClientAddr: fields[2], ClientPort: cport,
				ServerAddr: fields[4], ServerPort: sport,
				Proto: Proto(proto),
			}, fields[7], time.Unix(0, opened).UTC())
		case "p":
			if len(fields) != 9 && len(fields) != 12 {
				return nil, fmt.Errorf("trace: line %d: packet record needs 9 or 12 fields, has %d", line, len(fields))
			}
			ns, err1 := strconv.ParseInt(fields[1], 10, 64)
			flow, err2 := strconv.Atoi(fields[2])
			dir, err3 := strconv.Atoi(fields[3])
			payload, err4 := strconv.ParseInt(fields[5], 10, 64)
			wire, err5 := strconv.ParseInt(fields[6], 10, 64)
			segs, err6 := strconv.Atoi(fields[7])
			ack, err7 := strconv.ParseInt(fields[8], 10, 64)
			if err := firstErr(err1, err2, err3, err4, err5, err6, err7); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", line, err)
			}
			if flow < 0 || flow >= len(c.flows) {
				return nil, fmt.Errorf("trace: line %d: packet references unknown flow %d", line, flow)
			}
			p := Packet{
				Time: time.Unix(0, ns).UTC(), Flow: FlowID(flow),
				Dir: Direction(dir), Flags: parseFlags(fields[4]),
				Payload: payload, Wire: wire, Segments: segs, AckWire: ack,
			}
			if len(fields) == 12 {
				slices, err1 := strconv.Atoi(fields[9])
				sliceBytes, err2 := strconv.ParseInt(fields[10], 10, 64)
				gapNs, err3 := strconv.ParseInt(fields[11], 10, 64)
				if err := firstErr(err1, err2, err3); err != nil {
					return nil, fmt.Errorf("trace: line %d: %v", line, err)
				}
				if slices > 1 {
					p.Slices, p.SliceBytes, p.SliceGap = slices, sliceBytes, time.Duration(gapNs)
					if err := validateSpan(p); err != nil {
						return nil, fmt.Errorf("trace: line %d: %v", line, err)
					}
				} else if slices != 0 || sliceBytes != 0 || gapNs != 0 {
					return nil, fmt.Errorf("trace: line %d: plain record carries span fields", line)
				}
			}
			c.Record(p)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawVersion {
		return nil, fmt.Errorf("trace: empty or unversioned input")
	}
	return c, nil
}

// validateSpan checks that a parsed span's aggregate fields are
// exactly what its slicing parameters imply — the invariant every
// analyzer's O(1) folds rely on. Corrupt or hand-edited files fail
// loudly instead of silently mis-attributing bytes.
func validateSpan(p Packet) error {
	last := p.Payload - int64(p.Slices-1)*p.SliceBytes
	if p.SliceBytes <= 0 || last <= 0 || last > p.SliceBytes || p.SliceGap < 0 {
		return fmt.Errorf("invalid span parameters (slices=%d slice_bytes=%d payload=%d gap=%d)",
			p.Slices, p.SliceBytes, p.Payload, p.SliceGap)
	}
	want := Span(p.Time, p.Flow, p.Dir, p.Flags, p.Slices, p.SliceBytes, last, p.SliceGap)
	if p != want {
		return fmt.Errorf("span totals do not match slicing parameters")
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
