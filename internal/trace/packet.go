// Package trace implements packet-trace capture and analysis for the
// benchmarking methodology.
//
// The paper's testing application never inspects the client under test;
// it only observes the traffic the client exchanges (tcpdump-style) and
// derives every metric — synchronization start-up, completion time,
// protocol overhead, TCP SYN counts, upload pauses, packet bursts —
// from the trace. This package is the equivalent information boundary
// in the reproduction: internal/tcpsim writes packets into a Sink,
// and internal/core reads only the trace.
//
// The Sink has two implementations. Capture buffers every record for
// arbitrary re-windowing and per-packet analyzers (the tcpdump
// equivalent). Streamer folds records into pre-registered window
// accumulators as they arrive and discards them, so a benchmark
// repetition's trace memory is O(flows) instead of O(packets) — the
// production-scale campaign mode. Both yield bit-identical Analysis
// results; see sink.go.
//
// The design borrows gopacket's vocabulary (packets, flows, endpoints)
// but stores segments in a compact aggregated form, at two levels.
// Consecutive data segments transmitted in the same congestion-window
// round share one record with a segment count. Long rate-limited
// transfers go further: the transport emits one span record standing
// for a whole run of uniform, evenly spaced transmission slices (see
// Span), so a multi-MB steady-state transfer is a single record
// instead of O(bytes/BDP) of them. Span records carry their exact
// slicing parameters, so every analyzer either folds them in O(1)
// (byte totals, payload brackets) or expands them deterministically
// back into the per-slice records (window boundaries, per-packet
// detectors) — bit-identical to recording the slices individually.
// Control packets (SYN, FIN, RST and TLS handshake records) are always
// individual, so connection counting and handshake analysis stay
// exact.
package trace

import (
	"fmt"
	"time"
)

// Transport-level wire constants, shared with the transport simulator
// (internal/tcpsim aliases them): the trace layer needs them to expand
// span records into their constituent slices. MSS assumes Ethernet
// without jumbo frames; the 66-byte overhead is Ethernet+IPv4+TCP with
// timestamps.
const (
	MSS           = 1460
	HeaderPerSeg  = 66
	ackEveryOther = 2 // delayed ACK: one pure ACK per two segments
)

// Segments returns how many MSS-sized packets n bytes occupy. Zero
// bytes travel in zero segments — a zero-byte record must not fake a
// data segment on the wire.
func Segments(n int64) int {
	if n <= 0 {
		return 0
	}
	return int((n + MSS - 1) / MSS)
}

// DelayedAckWire returns the wire bytes of the delayed ACKs elicited
// by a burst of segs segments.
func DelayedAckWire(segs int) int64 {
	acks := (segs + ackEveryOther - 1) / ackEveryOther
	return int64(acks) * HeaderPerSeg
}

// Direction tells which way a packet travels relative to the client
// under test.
type Direction int

const (
	// Upstream packets travel client -> server.
	Upstream Direction = iota
	// Downstream packets travel server -> client.
	Downstream
)

// String returns "up" or "down".
func (d Direction) String() string {
	if d == Upstream {
		return "up"
	}
	return "down"
}

// Proto is the transport protocol of a flow.
type Proto int

const (
	// TCP transport.
	TCP Proto = iota
	// UDP transport (DNS lookups).
	UDP
)

// String returns the protocol name.
func (p Proto) String() string {
	if p == TCP {
		return "tcp"
	}
	return "udp"
}

// Flags models the TCP flag bits the analyzers care about.
type Flags struct {
	SYN bool
	ACK bool
	FIN bool
	RST bool
}

// FlowKey identifies one transport connection from the client under
// test to a server.
type FlowKey struct {
	ClientAddr string
	ClientPort int
	ServerAddr string
	ServerPort int
	Proto      Proto
}

// String formats the key in the usual 5-tuple notation.
func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d->%s:%d", k.Proto, k.ClientAddr, k.ClientPort, k.ServerAddr, k.ServerPort)
}

// FlowID indexes a flow inside one Capture.
type FlowID int

// Packet is one trace record. Payload is application-visible bytes
// carried (TLS ciphertext counts as payload at this layer); Wire is
// bytes on the wire including transport/network/link headers. Segments
// is how many real packets the record aggregates; for control packets
// it is 1.
type Packet struct {
	Time     time.Time
	Flow     FlowID
	Dir      Direction
	Flags    Flags
	Payload  int64
	Wire     int64
	Segments int

	// AckWire accounts the on-the-wire bytes of the pure-ACK packets
	// that this data record elicits in the opposite direction
	// (roughly one 66-byte ACK per two segments). Keeping them on the
	// data record avoids doubling the trace size while preserving
	// exact byte totals for the overhead metric.
	AckWire int64

	// Slices >= 2 marks a span record: the record stands for Slices
	// per-round data records ("slices") at Time, Time+SliceGap,
	// Time+2*SliceGap, ..., each carrying SliceBytes of payload except
	// the last, which carries Payload-(Slices-1)*SliceBytes. The
	// aggregate fields above (Payload, Wire, Segments, AckWire) hold
	// the totals over all slices; each slice's own wire/segment/ACK
	// accounting is fully determined by its payload (SliceAt), which
	// is what makes expansion deterministic and byte-exact. Slices
	// <= 1 is a plain record and SliceBytes/SliceGap are zero.
	Slices     int
	SliceBytes int64
	SliceGap   time.Duration
}

// HasPayload reports whether the record carries application bytes.
func (p Packet) HasPayload() bool { return p.Payload > 0 }

// IsSpan reports whether the record is a span standing for multiple
// per-round data records.
func (p Packet) IsSpan() bool { return p.Slices > 1 }

// SliceCount returns how many per-round trace records this record
// stands for: Slices for a span, 1 for a plain record.
func (p Packet) SliceCount() int {
	if p.Slices > 1 {
		return p.Slices
	}
	return 1
}

// End returns the instant of the record's last slice (Time itself for
// a plain record). A span occupies [Time, End] on the trace timeline.
func (p Packet) End() time.Time {
	if p.Slices <= 1 {
		return p.Time
	}
	return p.Time.Add(time.Duration(p.Slices-1) * p.SliceGap)
}

// lastSliceBytes returns the payload of a span's final slice.
func (p Packet) lastSliceBytes() int64 {
	return p.Payload - int64(p.Slices-1)*p.SliceBytes
}

// Span builds a span record over the given flow: `slices` uniform
// transmission slices starting at t and spaced gap apart, each
// carrying sliceBytes of payload except the last, which carries
// lastBytes (0 < lastBytes <= sliceBytes). The aggregate byte totals
// are derived slice by slice with the same per-record accounting the
// transport uses for individual data records, so expanding the span
// reproduces those records bit for bit.
func Span(t time.Time, flow FlowID, dir Direction, fl Flags, slices int, sliceBytes, lastBytes int64, gap time.Duration) Packet {
	if slices < 2 || sliceBytes <= 0 || lastBytes <= 0 || lastBytes > sliceBytes || gap < 0 {
		panic(fmt.Sprintf("trace: invalid span (slices=%d sliceBytes=%d lastBytes=%d gap=%v)",
			slices, sliceBytes, lastBytes, gap))
	}
	fullSegs := Segments(sliceBytes)
	lastSegs := Segments(lastBytes)
	full := int64(slices - 1)
	return Packet{
		Time: t, Flow: flow, Dir: dir, Flags: fl,
		Payload:  full*sliceBytes + lastBytes,
		Wire:     full*(sliceBytes+int64(fullSegs)*HeaderPerSeg) + lastBytes + int64(lastSegs)*HeaderPerSeg,
		Segments: (slices-1)*fullSegs + lastSegs,
		AckWire:  full*DelayedAckWire(fullSegs) + DelayedAckWire(lastSegs),
		Slices:   slices, SliceBytes: sliceBytes, SliceGap: gap,
	}
}

// SliceAt expands the i-th constituent slice of a span into the plain
// data record the transport would have emitted for that round. For a
// plain record it returns the record itself (only i == 0 exists).
func (p Packet) SliceAt(i int) Packet {
	if p.Slices <= 1 {
		if i != 0 {
			panic(fmt.Sprintf("trace: SliceAt(%d) on a plain record", i))
		}
		return p
	}
	if i < 0 || i >= p.Slices {
		panic(fmt.Sprintf("trace: SliceAt(%d) outside span of %d slices", i, p.Slices))
	}
	pay := p.SliceBytes
	if i == p.Slices-1 {
		pay = p.lastSliceBytes()
	}
	segs := Segments(pay)
	q := p
	q.Time = p.Time.Add(time.Duration(i) * p.SliceGap)
	q.Payload = pay
	q.Wire = pay + int64(segs)*HeaderPerSeg
	q.Segments = segs
	q.AckWire = DelayedAckWire(segs)
	q.Slices, q.SliceBytes, q.SliceGap = 0, 0, 0
	return q
}

// Clip returns the portion of the record whose slices fall inside the
// half-open window [from, to), and whether any do. Plain records are
// in or out as a whole. For spans the result keeps exact per-slice
// attribution: a fully contained span is returned unchanged (the O(1)
// fast path window accumulators rely on), a partially contained one
// becomes a shorter span (or a single plain record) over exactly the
// in-window slices, with totals recomputed from the slicing
// parameters.
func (p Packet) Clip(from, to time.Time) (Packet, bool) {
	if p.Slices <= 1 || p.SliceGap <= 0 {
		// Plain record — or a degenerate zero-gap span, whose slices
		// all share one instant and are in or out together.
		if p.Time.Before(from) || !p.Time.Before(to) {
			return Packet{}, false
		}
		return p, true
	}
	i0, i1 := 0, p.Slices
	if d := from.Sub(p.Time); d > 0 {
		// First slice index at or after `from`.
		i0 = int((d + p.SliceGap - 1) / p.SliceGap)
	}
	if e := to.Sub(p.Time); e <= 0 {
		i1 = 0
	} else if q := int((e + p.SliceGap - 1) / p.SliceGap); q < p.Slices {
		// First slice index at or after `to` (exclusive bound).
		i1 = q
	}
	if i0 >= i1 {
		return Packet{}, false
	}
	if i0 == 0 && i1 == p.Slices {
		return p, true
	}
	if i1-i0 == 1 {
		return p.SliceAt(i0), true
	}
	last := p.SliceBytes
	if i1 == p.Slices {
		last = p.lastSliceBytes()
	}
	return Span(p.Time.Add(time.Duration(i0)*p.SliceGap), p.Flow, p.Dir, p.Flags,
		i1-i0, p.SliceBytes, last, p.SliceGap), true
}

// appendSlices appends the record's constituent plain records to dst:
// the record itself when plain, every expanded slice when a span.
func (p Packet) appendSlices(dst []Packet) []Packet {
	if p.Slices <= 1 {
		return append(dst, p)
	}
	for i := 0; i < p.Slices; i++ {
		dst = append(dst, p.SliceAt(i))
	}
	return dst
}
