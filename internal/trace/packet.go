// Package trace implements packet-trace capture and analysis for the
// benchmarking methodology.
//
// The paper's testing application never inspects the client under test;
// it only observes the traffic the client exchanges (tcpdump-style) and
// derives every metric — synchronization start-up, completion time,
// protocol overhead, TCP SYN counts, upload pauses, packet bursts —
// from the trace. This package is the equivalent information boundary
// in the reproduction: internal/tcpsim writes packets into a Sink,
// and internal/core reads only the trace.
//
// The Sink has two implementations. Capture buffers every record for
// arbitrary re-windowing and per-packet analyzers (the tcpdump
// equivalent). Streamer folds records into pre-registered window
// accumulators as they arrive and discards them, so a benchmark
// repetition's trace memory is O(flows) instead of O(packets) — the
// production-scale campaign mode. Both yield bit-identical Analysis
// results; see sink.go.
//
// The design borrows gopacket's vocabulary (packets, flows, endpoints)
// but stores segments in a compact aggregated form: consecutive data
// segments transmitted in the same congestion-window round share one
// record with a segment count. Control packets (SYN, FIN, RST and TLS
// handshake records) are always individual, so connection counting and
// handshake analysis stay exact.
package trace

import (
	"fmt"
	"time"
)

// Direction tells which way a packet travels relative to the client
// under test.
type Direction int

const (
	// Upstream packets travel client -> server.
	Upstream Direction = iota
	// Downstream packets travel server -> client.
	Downstream
)

// String returns "up" or "down".
func (d Direction) String() string {
	if d == Upstream {
		return "up"
	}
	return "down"
}

// Proto is the transport protocol of a flow.
type Proto int

const (
	// TCP transport.
	TCP Proto = iota
	// UDP transport (DNS lookups).
	UDP
)

// String returns the protocol name.
func (p Proto) String() string {
	if p == TCP {
		return "tcp"
	}
	return "udp"
}

// Flags models the TCP flag bits the analyzers care about.
type Flags struct {
	SYN bool
	ACK bool
	FIN bool
	RST bool
}

// FlowKey identifies one transport connection from the client under
// test to a server.
type FlowKey struct {
	ClientAddr string
	ClientPort int
	ServerAddr string
	ServerPort int
	Proto      Proto
}

// String formats the key in the usual 5-tuple notation.
func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d->%s:%d", k.Proto, k.ClientAddr, k.ClientPort, k.ServerAddr, k.ServerPort)
}

// FlowID indexes a flow inside one Capture.
type FlowID int

// Packet is one trace record. Payload is application-visible bytes
// carried (TLS ciphertext counts as payload at this layer); Wire is
// bytes on the wire including transport/network/link headers. Segments
// is how many real packets the record aggregates; for control packets
// it is 1.
type Packet struct {
	Time     time.Time
	Flow     FlowID
	Dir      Direction
	Flags    Flags
	Payload  int64
	Wire     int64
	Segments int

	// AckWire accounts the on-the-wire bytes of the pure-ACK packets
	// that this data record elicits in the opposite direction
	// (roughly one 66-byte ACK per two segments). Keeping them on the
	// data record avoids doubling the trace size while preserving
	// exact byte totals for the overhead metric.
	AckWire int64
}

// HasPayload reports whether the record carries application bytes.
func (p Packet) HasPayload() bool { return p.Payload > 0 }
