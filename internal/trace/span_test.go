package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// This file pins the span-record contract: a span must be
// indistinguishable, through every analyzer and both sinks, from
// recording its constituent slices one by one.

func testSpan(tms int, flow FlowID, dir Direction, slices int, sliceBytes, lastBytes int64, gapMs int) Packet {
	return Span(at(tms), flow, dir, Flags{ACK: true}, slices, sliceBytes, lastBytes,
		time.Duration(gapMs)*time.Millisecond)
}

func TestSpanTotalsEqualSliceSums(t *testing.T) {
	sp := testSpan(0, 0, Upstream, 5, 30_000, 12_345, 40)
	var pay, wire, ack int64
	var segs, count int
	for i := 0; i < sp.SliceCount(); i++ {
		s := sp.SliceAt(i)
		if s.IsSpan() {
			t.Fatalf("slice %d is itself a span", i)
		}
		pay += s.Payload
		wire += s.Wire
		ack += s.AckWire
		segs += s.Segments
		count++
		if want := sp.Time.Add(time.Duration(i) * sp.SliceGap); !s.Time.Equal(want) {
			t.Fatalf("slice %d at %v, want %v", i, s.Time, want)
		}
	}
	if count != 5 || pay != sp.Payload || wire != sp.Wire || ack != sp.AckWire || segs != sp.Segments {
		t.Fatalf("slice sums (n=%d pay=%d wire=%d ack=%d segs=%d) != span totals %+v",
			count, pay, wire, ack, segs, sp)
	}
	if !sp.End().Equal(sp.SliceAt(4).Time) {
		t.Fatalf("End %v != last slice time %v", sp.End(), sp.SliceAt(4).Time)
	}
	if sp.SliceAt(4).Payload != 12_345 {
		t.Fatalf("last slice payload = %d", sp.SliceAt(4).Payload)
	}
	if sp.SliceAt(0).Payload != 30_000 {
		t.Fatalf("full slice payload = %d", sp.SliceAt(0).Payload)
	}
}

func TestSpanClipHalfOpenSemantics(t *testing.T) {
	// Slices at 100, 140, 180, 220 ms.
	sp := testSpan(100, 0, Upstream, 4, 10_000, 10_000, 40)
	cases := []struct {
		from, to   int
		wantSlices int // expanded record count of the clip; 0 = excluded
		wantFirst  int // ms of the clip's first slice
	}{
		{0, 1000, 4, 100},  // containing window: span unchanged
		{100, 221, 4, 100}, // exact bounds: from inclusive, to exclusive
		{100, 220, 3, 100}, // to at the last slice excludes it
		{101, 1000, 3, 140},
		{140, 180, 1, 140}, // single slice -> plain record
		{141, 180, 0, 0},   // between slices
		{0, 100, 0, 0},     // ends exactly at the first slice
		{221, 1000, 0, 0},  // starts after the last slice
	}
	for _, c := range cases {
		cl, ok := sp.Clip(at(c.from), at(c.to))
		if c.wantSlices == 0 {
			if ok {
				t.Errorf("clip [%d,%d): got %+v, want excluded", c.from, c.to, cl)
			}
			continue
		}
		if !ok || cl.SliceCount() != c.wantSlices || !cl.Time.Equal(at(c.wantFirst)) {
			t.Errorf("clip [%d,%d): got ok=%v slices=%d start=%v, want %d slices at %v",
				c.from, c.to, ok, cl.SliceCount(), cl.Time, c.wantSlices, at(c.wantFirst))
			continue
		}
		// The clip's totals must equal the sum of the in-window slices.
		var pay int64
		n := 0
		for i := 0; i < sp.SliceCount(); i++ {
			s := sp.SliceAt(i)
			if !s.Time.Before(at(c.from)) && s.Time.Before(at(c.to)) {
				pay += s.Payload
				n++
			}
		}
		if cl.Payload != pay || cl.SliceCount() != n {
			t.Errorf("clip [%d,%d): payload %d over %d slices, want %d over %d",
				c.from, c.to, cl.Payload, cl.SliceCount(), pay, n)
		}
	}
}

// canonicalTies sorts records sharing an exact timestamp into a
// deterministic field order, so two traces can be compared
// record-for-record without depending on the (unspecified) relative
// order of equal-time records from independent connections.
func canonicalTies(ps []Packet) []Packet {
	out := append([]Packet(nil), ps...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		if a.Payload != b.Payload {
			return a.Payload < b.Payload
		}
		return a.Wire < b.Wire
	})
	return out
}

// recordSpanOrPlain records p into the capture/streamer under test and
// its expanded slices into the reference capture, mimicking the old
// engine that recorded every slice individually.
func recordSpanOrPlain(c *Capture, s *Streamer, ref *Capture, p Packet) {
	c.Record(p)
	if s != nil {
		s.Record(p)
	}
	for i := 0; i < p.SliceCount(); i++ {
		ref.Record(p.SliceAt(i))
	}
}

// buildSpanTrace records a random mix of plain records and spans into
// a capture, a streamer (windows pre-registered at the given bounds)
// and a slice-by-slice reference capture.
func buildSpanTrace(rng *rand.Rand, bounds [][2]int) (*Capture, *Streamer, []*StreamWindow, *Capture) {
	c, s, ref := NewCapture(), NewStreamer(), NewCapture()
	nFlows := 1 + rng.Intn(4)
	names := []string{"storage.example", "control.example"}
	for i := 0; i < nFlows; i++ {
		key := FlowKey{ClientAddr: "10.0.0.1", ClientPort: 40000 + i, ServerAddr: "203.0.113.9", ServerPort: 443}
		name := names[rng.Intn(len(names))]
		c.OpenFlow(key, name, t0)
		s.OpenFlow(key, name, t0)
		ref.OpenFlow(key, name, t0)
	}
	var wins []*StreamWindow
	for _, b := range bounds {
		wins = append(wins, s.AddWindow(at(b[0]), at(b[1])))
	}
	now := 0
	n := 5 + rng.Intn(40)
	for i := 0; i < n; i++ {
		now += rng.Intn(300)
		flow := FlowID(rng.Intn(nFlows))
		dir := Direction(rng.Intn(2))
		switch rng.Intn(4) {
		case 0: // control packet
			p := Packet{Time: at(now), Flow: flow, Dir: Upstream, Wire: 74, Segments: 1}
			if rng.Intn(2) == 0 {
				p.Flags = Flags{SYN: true}
			} else {
				p.Flags = Flags{ACK: true}
			}
			recordSpanOrPlain(c, s, ref, p)
		case 1: // plain data record
			pay := int64(1 + rng.Intn(20_000))
			segs := Segments(pay)
			recordSpanOrPlain(c, s, ref, Packet{
				Time: at(now), Flow: flow, Dir: dir, Flags: Flags{ACK: true},
				Payload: pay, Wire: pay + int64(segs)*HeaderPerSeg,
				Segments: segs, AckWire: DelayedAckWire(segs),
			})
		default: // span
			slices := 2 + rng.Intn(30)
			sliceBytes := int64(1460 * (1 + rng.Intn(40)))
			lastBytes := int64(1 + rng.Intn(int(sliceBytes)))
			gap := time.Duration(1+rng.Intn(80)) * time.Millisecond
			recordSpanOrPlain(c, s, ref, Span(at(now), flow, dir, Flags{ACK: true},
				slices, sliceBytes, lastBytes, gap))
		}
	}
	return c, s, wins, ref
}

// TestSpanTraceMatchesSliceBySliceReference is the span pipeline's
// equivalence oracle: random span-bearing traces analyzed through the
// capture (whole, windowed, per-packet detectors) and through
// pre-registered streaming windows must match a reference capture that
// recorded every slice individually.
func TestSpanTraceMatchesSliceBySliceReference(t *testing.T) {
	const horizon = 40_000
	filters := []FlowFilter{nil, AllFlows,
		func(f FlowInfo) bool { return f.ServerName == "storage.example" },
		func(f FlowInfo) bool { return f.ID%2 == 0 },
	}
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bounds := [][2]int{{0, horizon}, {0, 0}}
		for i := 0; i < 3; i++ {
			lo := rng.Intn(horizon)
			hi := lo + rng.Intn(horizon-lo+1)
			bounds = append(bounds, [2]int{lo, hi})
		}
		// Streaming windows must be registered before traffic, so the
		// random bounds come first; the trace then records freely.
		c, _, wins, ref := buildSpanTrace(rng, bounds)

		// Whole-capture expansion reproduces the reference exactly.
		if got, want := c.ExpandedPackets(), ref.Packets(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: expanded packets diverge from slice-by-slice reference", seed)
		}
		// Per-packet detectors run on the expanded view.
		for _, f := range filters[1:] {
			if got, want := c.Bursts(f, 150*time.Millisecond), ref.Bursts(f, 150*time.Millisecond); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: Bursts diverge", seed)
			}
			if got, want := c.UploadPauses(f, 200*time.Millisecond), ref.UploadPauses(f, 200*time.Millisecond); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: UploadPauses diverge", seed)
			}
			if got, want := c.CumulativeBytes(f), ref.CumulativeBytes(f); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: CumulativeBytes diverge", seed)
			}
			if got, want := c.ThroughputTimeline(f, 250*time.Millisecond), ref.ThroughputTimeline(f, 250*time.Millisecond); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: ThroughputTimeline diverges", seed)
			}
		}
		if got, want := c.FlowBytes(), ref.FlowBytes(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: FlowBytes diverge: %v vs %v", seed, got, want)
		}

		// Windows cut through spans: capture views and streaming folds
		// both match the reference window.
		for wi, b := range bounds {
			from, to := at(b[0]), at(b[1])
			refWin := ref.Window(from, to)
			capWin := c.Window(from, to)
			// Clipping can reorder slices of *different* records that
			// share an exact instant (the relative order of equal-time
			// records from independent connections is not part of any
			// analyzer's contract), so the record comparison is
			// canonicalized within tie groups.
			got := canonicalTies(capWin.ExpandedPackets())
			want := canonicalTies(refWin.Packets())
			if len(got) != len(want) {
				t.Fatalf("seed %d window %d: %d expanded records, want %d", seed, wi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d window %d: record %d differs\n got  %+v\n want %+v", seed, wi, i, got[i], want[i])
				}
			}
			for fi, f := range filters {
				want := refWin.Analyze(f)
				if got := capWin.Analyze(f); !analysesEqual(want, got) {
					t.Fatalf("seed %d window %d filter %d: capture analysis diverges\n got  %+v\n want %+v",
						seed, wi, fi, got, want)
				}
				if got := wins[wi].Analyze(f); !analysesEqual(want, got) {
					t.Fatalf("seed %d window %d filter %d: streaming analysis diverges\n got  %+v\n want %+v",
						seed, wi, fi, got, want)
				}
			}
			if got, want := wins[wi].FlowBytes(), refWin.FlowBytes(); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d window %d: streaming FlowBytes diverge", seed, wi)
			}
			if got, want := wins[wi].FlowsWithTraffic(), refWin.FlowsWithTraffic(); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d window %d: streaming FlowsWithTraffic diverge", seed, wi)
			}
		}
	}
}

// TestSpanCSVRoundTrip pins the v2 trace format: span records survive
// WriteCSV/ReadCSV with their slicing parameters intact.
func TestSpanCSVRoundTrip(t *testing.T) {
	c := NewCapture()
	id := c.OpenFlow(FlowKey{ClientAddr: "10.0.0.1", ClientPort: 40000,
		ServerAddr: "203.0.113.9", ServerPort: 443}, "storage.example", t0)
	c.Record(Packet{Time: at(0), Flow: id, Dir: Upstream, Flags: Flags{SYN: true}, Wire: 74, Segments: 1})
	c.Record(testSpan(50, id, Upstream, 7, 29_200, 11_111, 33))
	c.Record(Packet{Time: at(400), Flow: id, Dir: Downstream, Flags: Flags{ACK: true},
		Payload: 120, Wire: 186, Segments: 1})

	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Packets(), back.Packets()) {
		t.Fatalf("span round trip lost data:\n%+v\n%+v", c.Packets(), back.Packets())
	}
	if back.SpanCount() != 1 || back.ExpandedLen() != 9 {
		t.Fatalf("reloaded capture: %d spans, %d expanded records", back.SpanCount(), back.ExpandedLen())
	}
}

// TestReadCSVRejectsCorruptSpan pins the span invariant check: totals
// that disagree with the slicing parameters must fail the load.
func TestReadCSVRejectsCorruptSpan(t *testing.T) {
	good := "#cloudbench-trace-v2\nf,0,10.0.0.1,4000,5.5.5.5,443,0,s.example,1382486400000000000\n"
	cases := []string{
		// Wire total off by one.
		good + "p,1382486400000000000,0,0,A,2920,3053,2,66,2,1460,1000000\n",
		// Last slice larger than the full slices.
		good + "p,1382486400000000000,0,0,A,4000,4132,2,66,2,1460,1000000\n",
		// Plain record carrying span leftovers.
		good + "p,1382486400000000000,0,0,A,100,166,1,0,0,1460,0\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("case %d: corrupt span accepted", i)
		}
	}
}

// TestStreamerRejectsWindowInsideRecordedSpan pins the streaming
// registration guard against spans: the discarded record's slices
// extend to End(), so a window starting before that instant could
// silently miss traffic.
func TestStreamerRejectsWindowInsideRecordedSpan(t *testing.T) {
	s := NewStreamer()
	id := s.OpenFlow(FlowKey{}, "x", at(0))
	sp := testSpan(100, id, Upstream, 10, 1460, 1460, 50) // occupies [100ms, 550ms]
	s.Record(sp)
	defer func() {
		if recover() == nil {
			t.Fatal("AddWindow inside a recorded span's extent did not panic")
		}
	}()
	s.AddWindow(at(300), FarFuture)
}
