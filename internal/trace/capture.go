package trace

import (
	"sort"
	"time"
)

// FlowInfo is the per-connection metadata the sniffer can legitimately
// know: the 5-tuple, when the connection was opened, and the DNS name
// the client resolved to reach the server. The real methodology builds
// the same name<->IP association by watching DNS traffic (Sect. 2.1);
// carrying it on the flow record is equivalent and keeps the analyzers
// simple.
type FlowInfo struct {
	ID         FlowID
	Key        FlowKey
	ServerName string
	OpenedAt   time.Time
}

// Capture is an in-memory packet trace: every connection the client
// under test opened, and every packet exchanged. The zero value is an
// empty, usable capture.
//
// Recording is append-only and cheap: in-order packets (the common
// case — a capture device timestamps in true time order) go straight
// to the sorted backing store, and out-of-order stragglers from
// connections simulating on independent timelines land in a small
// reorder buffer that is merged back in, stably, the first time the
// trace is read. Analyzers therefore always observe a time-sorted
// trace, exactly as with the previous insert-in-place scheme, without
// the O(n)-per-packet worst case.
type Capture struct {
	packets []Packet
	flows   []FlowInfo

	// pending is the reorder buffer: packets recorded out of order,
	// in arrival order, merged into packets by flush on first read.
	pending []Packet
	// pendingMax caches the latest timestamp inside pending so that
	// later in-order packets can keep taking the fast path without a
	// tie-breaking ambiguity against buffered stragglers.
	pendingMax time.Time

	// spans counts span records (for Window views, an upper bound
	// inherited from the parent): when zero, Window and the expansion
	// helpers skip their span scans entirely, keeping the span-free
	// trace — every lossy campaign, all control traffic — on the
	// original zero-copy binary-search fast path. minSpanStart and
	// maxSpanEnd bound where spans live on the timeline (conservative
	// for views), so Window also skips its boundary scans when no span
	// can possibly straddle the requested bound — the benchmark
	// window's [t0, FarFuture) case, where all spans start inside.
	spans                    int
	minSpanStart, maxSpanEnd time.Time
}

// NewCapture returns an empty capture.
func NewCapture() *Capture { return &Capture{} }

// OpenFlow registers a new connection and returns its ID.
func (c *Capture) OpenFlow(key FlowKey, serverName string, at time.Time) FlowID {
	id := FlowID(len(c.flows))
	c.flows = append(c.flows, FlowInfo{ID: id, Key: key, ServerName: serverName, OpenedAt: at})
	return id
}

// Record adds a packet to the trace. Connections simulate on
// independent timelines, so records can arrive slightly out of order;
// the trace is re-established in time order (stably: equal timestamps
// keep arrival order) before any analyzer reads it. Recording is O(1).
func (c *Capture) Record(p Packet) {
	if p.IsSpan() {
		if c.spans == 0 || p.Time.Before(c.minSpanStart) {
			c.minSpanStart = p.Time
		}
		if end := p.End(); c.spans == 0 || end.After(c.maxSpanEnd) {
			c.maxSpanEnd = end
		}
		c.spans++
	}
	if len(c.pending) == 0 || p.Time.After(c.pendingMax) {
		// In order with respect to everything recorded so far: no
		// straggler in the buffer can tie or sort after it, so it can
		// go straight to the sorted store.
		if n := len(c.packets); n == 0 || !p.Time.Before(c.packets[n-1].Time) {
			c.packets = append(c.packets, p)
			return
		}
	}
	c.pending = append(c.pending, p)
	if p.Time.After(c.pendingMax) {
		c.pendingMax = p.Time
	}
}

// flush merges the reorder buffer into the sorted store. The merge is
// stable — packets already in the store sort before buffered packets
// with equal timestamps (which is arrival order, because an equal-time
// packet never takes the fast path past a buffered straggler), and
// buffered packets keep their arrival order among themselves.
func (c *Capture) flush() {
	if len(c.pending) == 0 {
		return
	}
	sort.SliceStable(c.pending, func(i, j int) bool {
		return c.pending[i].Time.Before(c.pending[j].Time)
	})
	// Merge into a fresh slice so previously returned Window views and
	// Packets slices keep observing their (valid) snapshot.
	merged := make([]Packet, 0, len(c.packets)+len(c.pending))
	i, j := 0, 0
	for i < len(c.packets) && j < len(c.pending) {
		if c.pending[j].Time.Before(c.packets[i].Time) {
			merged = append(merged, c.pending[j])
			j++
		} else {
			merged = append(merged, c.packets[i])
			i++
		}
	}
	merged = append(merged, c.packets[i:]...)
	merged = append(merged, c.pending[j:]...)
	c.packets = merged
	c.pending = c.pending[:0]
	c.pendingMax = time.Time{}
}

// Packets returns the raw records in time order. The returned slice
// is the capture's backing store; callers must not modify it.
func (c *Capture) Packets() []Packet {
	c.flush()
	return c.packets
}

// Flows returns metadata for every connection in the capture.
func (c *Capture) Flows() []FlowInfo { return c.flows }

// Flow returns the metadata for one connection.
func (c *Capture) Flow(id FlowID) FlowInfo { return c.flows[id] }

// NumFlows returns how many connections the capture saw.
func (c *Capture) NumFlows() int { return len(c.flows) }

// Len returns the number of trace records. Span records count once;
// ExpandedLen counts the per-round packets they stand for.
func (c *Capture) Len() int { return len(c.packets) + len(c.pending) }

// ExpandedLen returns the number of per-round packet records the trace
// stands for: plain records count 1, span records their slice count.
// This is the record count an equivalent pre-span capture would hold.
func (c *Capture) ExpandedLen() int {
	c.flush()
	if c.spans == 0 {
		return len(c.packets)
	}
	n := 0
	for i := range c.packets {
		n += c.packets[i].SliceCount()
	}
	return n
}

// SpanCount returns how many records are spans (aggregates of multiple
// transmission slices).
func (c *Capture) SpanCount() int {
	c.flush()
	if c.spans == 0 {
		return 0
	}
	n := 0
	for i := range c.packets {
		if c.packets[i].IsSpan() {
			n++
		}
	}
	return n
}

// ExpandedPackets returns the trace with every span record expanded
// into its constituent per-round records, in stable time order — the
// exact packet sequence the transport would have recorded one slice at
// a time. Span-free traces return the backing store itself (zero
// copy); callers must not modify the result either way. Per-packet
// analyzers that walk individual transmission rounds (burst and pause
// detection, throughput timelines) read the trace through this view.
func (c *Capture) ExpandedPackets() []Packet {
	c.flush()
	if c.spans == 0 {
		return c.packets
	}
	extra := 0
	for i := range c.packets {
		extra += c.packets[i].SliceCount() - 1
	}
	if extra == 0 {
		return c.packets
	}
	out := make([]Packet, 0, len(c.packets)+extra)
	for i := range c.packets {
		out = c.packets[i].appendSlices(out)
	}
	// Slices inherit their span's position in the record stream, so a
	// stable sort by time reproduces exactly the order a capture of
	// the individual slice records would have established.
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Time.Before(out[j].Time)
	})
	return out
}

// FlowsWithTraffic reports which flows carry at least one packet in
// this capture, indexed by FlowID. On a Window sub-capture the flow
// metadata still spans the whole session, so this is how analyzers
// find the connections active within the window.
func (c *Capture) FlowsWithTraffic() []bool {
	c.flush()
	out := make([]bool, len(c.flows))
	for i := range c.packets {
		out[c.packets[i].Flow] = true
	}
	return out
}

// FlowFilter selects a subset of connections, usually by server name
// (the paper separates control from storage traffic by DNS name).
type FlowFilter func(FlowInfo) bool

// AllFlows matches every connection.
func AllFlows(FlowInfo) bool { return true }

// flowSet materialises a filter into a lookup table for fast scans.
func (c *Capture) flowSet(f FlowFilter) []bool {
	set := make([]bool, len(c.flows))
	for i, fl := range c.flows {
		set[i] = f == nil || f(fl)
	}
	return set
}
