package trace

import "time"

// FlowInfo is the per-connection metadata the sniffer can legitimately
// know: the 5-tuple, when the connection was opened, and the DNS name
// the client resolved to reach the server. The real methodology builds
// the same name<->IP association by watching DNS traffic (Sect. 2.1);
// carrying it on the flow record is equivalent and keeps the analyzers
// simple.
type FlowInfo struct {
	ID         FlowID
	Key        FlowKey
	ServerName string
	OpenedAt   time.Time
}

// Capture is an in-memory packet trace: every connection the client
// under test opened, and every packet exchanged. The zero value is an
// empty, usable capture.
type Capture struct {
	packets []Packet
	flows   []FlowInfo
}

// NewCapture returns an empty capture.
func NewCapture() *Capture { return &Capture{} }

// OpenFlow registers a new connection and returns its ID.
func (c *Capture) OpenFlow(key FlowKey, serverName string, at time.Time) FlowID {
	id := FlowID(len(c.flows))
	c.flows = append(c.flows, FlowInfo{ID: id, Key: key, ServerName: serverName, OpenedAt: at})
	return id
}

// Record adds a packet to the trace, keeping the trace sorted by time.
// Connections simulate on independent timelines, so records can arrive
// slightly out of order; a capture device would have timestamped them
// in true time order, and the analyzers rely on that order. Insertion
// is O(1) for the common in-order case.
func (c *Capture) Record(p Packet) {
	c.packets = append(c.packets, p)
	for i := len(c.packets) - 1; i > 0 && c.packets[i].Time.Before(c.packets[i-1].Time); i-- {
		c.packets[i], c.packets[i-1] = c.packets[i-1], c.packets[i]
	}
}

// Packets returns the raw records in capture order. The returned slice
// is the capture's backing store; callers must not modify it.
func (c *Capture) Packets() []Packet { return c.packets }

// Flows returns metadata for every connection in the capture.
func (c *Capture) Flows() []FlowInfo { return c.flows }

// Flow returns the metadata for one connection.
func (c *Capture) Flow(id FlowID) FlowInfo { return c.flows[id] }

// NumFlows returns how many connections the capture saw.
func (c *Capture) NumFlows() int { return len(c.flows) }

// Len returns the number of trace records.
func (c *Capture) Len() int { return len(c.packets) }

// FlowsWithTraffic reports which flows carry at least one packet in
// this capture. On a Window sub-capture the flow metadata still spans
// the whole session, so this is how analyzers find the connections
// active within the window.
func (c *Capture) FlowsWithTraffic() map[FlowID]bool {
	out := make(map[FlowID]bool)
	for _, p := range c.packets {
		out[p.Flow] = true
	}
	return out
}

// FlowFilter selects a subset of connections, usually by server name
// (the paper separates control from storage traffic by DNS name).
type FlowFilter func(FlowInfo) bool

// AllFlows matches every connection.
func AllFlows(FlowInfo) bool { return true }

// flowSet materialises a filter into a lookup table for fast scans.
func (c *Capture) flowSet(f FlowFilter) []bool {
	set := make([]bool, len(c.flows))
	for i, fl := range c.flows {
		set[i] = f == nil || f(fl)
	}
	return set
}
