package trace

import (
	"sort"
	"testing"
	"time"
)

// benchCapture builds a large mostly-in-order trace shaped like a real
// benchmark run: many flows, occasional stragglers, ~10% SYN/control
// records.
func benchCapture(n int) *Capture {
	c := NewCapture()
	nFlows := 64
	for i := 0; i < nFlows; i++ {
		name := "storage.example"
		if i%4 == 0 {
			name = "control.example"
		}
		c.OpenFlow(FlowKey{ClientPort: 40000 + i, ServerPort: 443}, name, t0)
	}
	now := t0
	for i := 0; i < n; i++ {
		ts := now
		if i%16 == 5 {
			ts = now.Add(-3 * time.Millisecond) // straggler
		} else {
			now = now.Add(time.Millisecond)
		}
		p := Packet{
			Time: ts, Flow: FlowID(i % nFlows), Dir: Direction(i % 2),
			Payload: int64(i%3) * 1460, Wire: 1500, AckWire: 66, Segments: 2,
		}
		if i%10 == 0 {
			p = Packet{Time: ts, Flow: FlowID(i % nFlows), Dir: Upstream,
				Flags: Flags{SYN: true}, Wire: 74, Segments: 1}
		}
		c.Record(p)
	}
	c.flush()
	return c
}

func storageFilter(f FlowInfo) bool { return f.ServerName == "storage.example" }

func BenchmarkRecord(b *testing.B) {
	base := benchCapture(1)
	patterns := map[string][]Packet{
		// The common case: a capture device would see these almost in
		// order; stragglers are displaced by a few positions.
		"nearly-sorted": benchCapture(50_000).packets,
		// The worst case for insert-in-place: connections simulated
		// on independent timelines, each recording a long burst that
		// starts before the previous connection's burst ended.
		"interleaved-timelines": func() []Packet {
			var out []Packet
			for conn := 0; conn < 50; conn++ {
				start := t0.Add(time.Duration(conn) * 100 * time.Millisecond)
				for i := 0; i < 1000; i++ {
					out = append(out, Packet{
						Time: start.Add(time.Duration(i) * time.Millisecond),
						Flow: FlowID(conn % 64), Dir: Upstream,
						Payload: 1460, Wire: 1526, Segments: 1,
					})
				}
			}
			return out
		}(),
	}
	names := make([]string, 0, len(patterns))
	for name := range patterns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		packets := patterns[name]
		b.Run(name+"/new", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := &Capture{flows: base.flows}
				for _, p := range packets {
					c.Record(p)
				}
				c.flush()
			}
		})
		b.Run(name+"/seed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := &refCapture{}
				for _, p := range packets {
					c.record(p)
				}
			}
		})
	}
}

func BenchmarkWindow(b *testing.B) {
	c := benchCapture(100_000)
	from := t0.Add(10 * time.Second)
	to := t0.Add(60 * time.Second)
	b.Run("new", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Window(from, to)
		}
	})
	b.Run("seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refWindow(c.packets, from, to)
		}
	})
}

// BenchmarkSinkRepetition contrasts the two Sink implementations over
// one full record-then-measure repetition cycle: the Streamer folds
// while recording and retains O(flows), the Capture retains every
// record and scans it afterwards. Run with -benchmem: the B/op gap is
// the packet backing store the streaming pipeline never allocates.
func BenchmarkSinkRepetition(b *testing.B) {
	src := benchCapture(100_000)
	packets := src.Packets()
	openFlows := func(s Sink) {
		for _, f := range src.Flows() {
			s.OpenFlow(f.Key, f.ServerName, f.OpenedAt)
		}
	}
	b.Run("streamer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewStreamer()
			openFlows(s)
			w := s.AddWindow(t0, FarFuture)
			for _, p := range packets {
				s.Record(p)
			}
			w.Analyze(storageFilter)
		}
	})
	b.Run("capture", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewCapture()
			openFlows(c)
			for _, p := range packets {
				c.Record(p)
			}
			c.Window(t0, FarFuture).Analyze(storageFilter)
		}
	})
}

// BenchmarkAnalyze contrasts the one-pass analyzer with the seed
// scheme it replaced: six independent full scans, each materialising
// its own flow set.
func BenchmarkAnalyze(b *testing.B) {
	c := benchCapture(100_000)
	b.Run("one-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Analyze(storageFilter)
		}
	})
	b.Run("seed-six-scans", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refTotalWireBytes(c.packets, refSet(c.flows, storageFilter))
			refWireBytesDir(c.packets, refSet(c.flows, storageFilter), Upstream)
			refPayloadBytesDir(c.packets, refSet(c.flows, storageFilter), Upstream)
			refFirstPayloadTime(c.packets, refSet(c.flows, storageFilter))
			refLastPayloadTime(c.packets, refSet(c.flows, storageFilter))
			refSYNTimes(c.packets, refSet(c.flows, storageFilter))
		}
	})
}
