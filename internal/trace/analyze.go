package trace

import (
	"sort"
	"time"
)

// This file holds the trace analyzers behind every measurement in the
// paper:
//
//   - byte accounting            -> protocol overhead (Fig. 6c, Fig. 4, Fig. 5)
//   - first/last payload packet  -> completion time (Fig. 6b)
//   - SYN timeline               -> connection-per-file detection (Fig. 3)
//   - burst detection            -> sequential-upload detection (Sect. 4.2)
//   - pause detection            -> chunk-size inference (Sect. 4.1)
//   - cumulative byte timeline   -> idle/background traffic (Fig. 1)
//
// The scalar metrics all derive from one single-pass scan, Analyze:
// the measurement engine calls it once per (window, filter) pair and
// reads every Sect. 5 number off the result, where it previously
// re-scanned the trace once per metric. The historical per-metric
// methods survive as thin wrappers.

// Analysis is every scalar trace metric over one flow selection,
// computed in a single scan by Analyze.
type Analysis struct {
	// Packets counts the selected trace records.
	Packets int

	// TotalWire is on-the-wire bytes in both directions, including
	// pure-ACK accounting (TotalWireBytes).
	TotalWire int64
	// WireUp/WireDown are directional wire bytes; ACK bytes carried
	// on a data record count towards the opposite direction, exactly
	// as WireBytesDir reports them. TotalWire == WireUp + WireDown.
	WireUp, WireDown int64
	// PayloadUp/PayloadDown are directional application payload bytes
	// (PayloadBytesDir).
	PayloadUp, PayloadDown int64

	// FirstPayload/LastPayload bracket the payload-carrying packets;
	// valid only when HasPayload is true. The paper measures
	// completion time between these two instants, tear-down excluded.
	FirstPayload, LastPayload time.Time
	HasPayload                bool

	// SYNTimes are the client-initiated SYN instants in trace order;
	// Connections == len(SYNTimes) (Fig. 3).
	SYNTimes    []time.Time
	Connections int
}

// Analyze computes every scalar metric over the selected flows in one
// scan of the trace. It is the workhorse behind MeasureWindow and the
// per-metric convenience methods.
func (c *Capture) Analyze(f FlowFilter) Analysis {
	c.flush()
	set := c.flowSet(f)
	var a Analysis
	for i := range c.packets {
		p := &c.packets[i]
		if !set[p.Flow] {
			continue
		}
		// Span records fold in O(1): the aggregate fields are totals
		// over the slices, and the payload bracket covers [Time, End].
		a.Packets += p.SliceCount()
		a.TotalWire += p.Wire + p.AckWire
		if p.Dir == Upstream {
			a.WireUp += p.Wire
			a.WireDown += p.AckWire
			a.PayloadUp += p.Payload
			if p.Flags.SYN && !p.Flags.ACK {
				a.SYNTimes = append(a.SYNTimes, p.Time)
			}
		} else {
			a.WireDown += p.Wire
			a.WireUp += p.AckWire
			a.PayloadDown += p.Payload
		}
		if p.Payload > 0 {
			if !a.HasPayload {
				a.FirstPayload = p.Time
				a.HasPayload = true
			}
			// A span's last payload instant (End) can lie beyond the
			// start times of records sorted after it, so the bracket
			// is a max fold rather than last-in-scan-order.
			if end := p.End(); end.After(a.LastPayload) {
				a.LastPayload = end
			}
		}
	}
	a.Connections = len(a.SYNTimes)
	return a
}

// TotalWireBytes sums on-the-wire bytes in both directions over the
// selected flows, including pure-ACK accounting.
func (c *Capture) TotalWireBytes(f FlowFilter) int64 {
	return c.Analyze(f).TotalWire
}

// WireBytesDir sums on-the-wire bytes in one direction. ACK bytes
// carried on a data record count towards the opposite direction (the
// receiver emits them).
func (c *Capture) WireBytesDir(f FlowFilter, dir Direction) int64 {
	a := c.Analyze(f)
	if dir == Upstream {
		return a.WireUp
	}
	return a.WireDown
}

// PayloadBytesDir sums application payload bytes in one direction.
func (c *Capture) PayloadBytesDir(f FlowFilter, dir Direction) int64 {
	a := c.Analyze(f)
	if dir == Upstream {
		return a.PayloadUp
	}
	return a.PayloadDown
}

// FirstPayloadTime returns the time of the first payload-carrying
// packet over the selected flows. ok is false if none exists. This is
// the paper's synchronization-start event ("the first storage flow").
func (c *Capture) FirstPayloadTime(f FlowFilter) (t time.Time, ok bool) {
	a := c.Analyze(f)
	return a.FirstPayload, a.HasPayload
}

// LastPayloadTime returns the time of the last payload-carrying packet
// over the selected flows. The paper measures completion time between
// the first and last packet with payload, ignoring TCP tear-down.
func (c *Capture) LastPayloadTime(f FlowFilter) (t time.Time, ok bool) {
	a := c.Analyze(f)
	return a.LastPayload, a.HasPayload
}

// SYNTimes returns the timestamps of client-initiated SYN packets over
// the selected flows, in capture order. Plotting len(prefix) against
// time reproduces Fig. 3.
func (c *Capture) SYNTimes(f FlowFilter) []time.Time {
	return c.Analyze(f).SYNTimes
}

// ConnectionCount returns the number of client-initiated connections
// over the selected flows (SYN count, excluding SYN-ACKs).
func (c *Capture) ConnectionCount(f FlowFilter) int {
	return c.Analyze(f).Connections
}

// TimelinePoint is one step of a cumulative byte timeline.
type TimelinePoint struct {
	Time  time.Time
	Bytes int64 // cumulative wire bytes up to and including Time
}

// CumulativeBytes returns the cumulative wire-byte timeline across the
// selected flows (both directions), one point per packet (spans
// expanded, so every transmission round is a step). Fig. 1 plots this
// for control traffic while the client is idle.
func (c *Capture) CumulativeBytes(f FlowFilter) []TimelinePoint {
	set := c.flowSet(f)
	var out []TimelinePoint
	var total int64
	for _, p := range c.ExpandedPackets() {
		if !set[p.Flow] {
			continue
		}
		total += p.Wire + p.AckWire
		out = append(out, TimelinePoint{Time: p.Time, Bytes: total})
	}
	return out
}

// Burst is a run of upstream payload packets not separated by a gap
// larger than the detection threshold. The paper counts bursts to
// detect clients that upload files sequentially, waiting for an
// application-layer acknowledgment between files (SkyDrive, Wuala).
type Burst struct {
	Start, End time.Time
	Bytes      int64 // payload bytes in the burst
	Packets    int
}

// Bursts splits the upstream payload traffic of the selected flows
// into bursts separated by quiet gaps of at least gap. It walks the
// span-expanded trace: intra-span slice gaps are real transmission
// spacing and legitimately merge or split bursts exactly as the
// per-round records did.
func (c *Capture) Bursts(f FlowFilter, gap time.Duration) []Burst {
	set := c.flowSet(f)
	var out []Burst
	var cur *Burst
	var lastEnd time.Time
	for _, p := range c.ExpandedPackets() {
		if !set[p.Flow] || p.Dir != Upstream || !p.HasPayload() {
			continue
		}
		if cur != nil && p.Time.Sub(lastEnd) >= gap {
			out = append(out, *cur)
			cur = nil
		}
		if cur == nil {
			cur = &Burst{Start: p.Time}
		}
		cur.End = p.Time
		cur.Bytes += p.Payload
		cur.Packets += p.Segments
		lastEnd = p.Time
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out
}

// Pause is a quiet period inside an upload, used to infer chunk
// boundaries (Sect. 4.1): a client that splits a large file into
// chunks pauses between chunk submissions while it waits for the
// per-chunk acknowledgment.
type Pause struct {
	At          time.Time // when the quiet period began
	Gap         time.Duration
	BytesBefore int64 // cumulative upstream payload before the pause
}

// UploadPauses returns pauses of at least gap between consecutive
// upstream payload packets over the selected flows, together with the
// cumulative payload uploaded before each pause. Differencing the
// BytesBefore values recovers the chunk size.
func (c *Capture) UploadPauses(f FlowFilter, gap time.Duration) []Pause {
	set := c.flowSet(f)
	var out []Pause
	var last time.Time
	var seen bool
	var cum int64
	for _, p := range c.ExpandedPackets() {
		if !set[p.Flow] || p.Dir != Upstream || !p.HasPayload() {
			continue
		}
		if seen {
			if g := p.Time.Sub(last); g >= gap {
				out = append(out, Pause{At: last, Gap: g, BytesBefore: cum})
			}
		}
		cum += p.Payload
		last = p.Time
		seen = true
	}
	return out
}

// RatePoint is one bucket of a throughput timeline.
type RatePoint struct {
	Time time.Time // bucket start
	Bps  float64   // payload throughput within the bucket
}

// ThroughputTimeline buckets upstream payload into fixed intervals and
// returns the per-bucket rate — the "monitoring throughput during the
// upload" view the paper uses to spot chunking pauses (Sect. 4.1).
// Empty buckets between activity are included (rate 0), so pauses are
// visible; leading/trailing silence is not.
func (c *Capture) ThroughputTimeline(f FlowFilter, bucket time.Duration) []RatePoint {
	if bucket <= 0 {
		panic("trace: non-positive throughput bucket")
	}
	set := c.flowSet(f)
	pkts := c.ExpandedPackets()
	var first, last time.Time
	seen := false
	for _, p := range pkts {
		if set[p.Flow] && p.Dir == Upstream && p.HasPayload() {
			if !seen {
				first = p.Time
				seen = true
			}
			last = p.Time
		}
	}
	if !seen {
		return nil
	}
	n := int(last.Sub(first)/bucket) + 1
	bytes := make([]int64, n)
	for _, p := range pkts {
		if set[p.Flow] && p.Dir == Upstream && p.HasPayload() {
			idx := int(p.Time.Sub(first) / bucket)
			bytes[idx] += p.Payload
		}
	}
	out := make([]RatePoint, n)
	for i, b := range bytes {
		out[i] = RatePoint{
			Time: first.Add(time.Duration(i) * bucket),
			Bps:  float64(b*8) / bucket.Seconds(),
		}
	}
	return out
}

// FlowBytes returns total wire bytes per flow, indexed by FlowID. The
// paper uses per-flow sizes to tell Wuala's storage flows from its
// control flows, since Wuala does not split them by server name.
func (c *Capture) FlowBytes() []int64 {
	c.flush()
	out := make([]int64, len(c.flows))
	for i := range c.packets {
		p := &c.packets[i]
		out[p.Flow] += p.Wire + p.AckWire
	}
	return out
}

// FarFuture is an instant beyond any simulated timeline, usable as an
// open upper bound for Window.
var FarFuture = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)

// Window returns a filter-independent sub-capture containing only the
// packet slices in [from, to), preserving flow metadata. It is used to
// analyze phases (login vs idle) separately.
//
// When no span record straddles a window boundary the view is
// zero-copy: it is located by binary search over the time-sorted trace
// and aliases the parent's backing store. Packets recorded after the
// view is taken do not appear in it; the view remains a valid snapshot
// either way. Spans that cross a boundary are expanded deterministically
// at exactly that boundary (Clip), so the sub-capture attributes every
// slice to the window it fell in, byte- and time-identical to a
// capture of the individual slice records. (The relative order of
// equal-instant records from independent connections is not defined —
// no analyzer depends on it.)
func (c *Capture) Window(from, to time.Time) *Capture {
	c.flush()
	lo := sort.Search(len(c.packets), func(i int) bool {
		return !c.packets[i].Time.Before(from)
	})
	hi := lo + sort.Search(len(c.packets)-lo, func(i int) bool {
		return !c.packets[lo+i].Time.Before(to)
	})
	if c.spans == 0 {
		// Span-free trace: pure binary-searched zero-copy view.
		return &Capture{packets: c.packets[lo:hi:hi], flows: c.flows}
	}
	// Spans starting before the window can still reach into it; spans
	// inside can reach past the upper bound. Both need clipping — but
	// the capture's span-timeline bounds prune each scan when no span
	// can straddle that side (the usual [t0, FarFuture) benchmark
	// window skips both).
	var pre []Packet
	if c.minSpanStart.Before(from) {
		for i := 0; i < lo; i++ {
			if p := &c.packets[i]; p.IsSpan() && !p.End().Before(from) {
				if cl, ok := p.Clip(from, to); ok {
					pre = append(pre, cl)
				}
			}
		}
	}
	clipHi := false
	if !c.maxSpanEnd.Before(to) {
		for i := lo; i < hi; i++ {
			if p := &c.packets[i]; p.IsSpan() && !p.End().Before(to) {
				clipHi = true
				break
			}
		}
	}
	if len(pre) == 0 && !clipHi {
		// Views inherit the parent's span accounting as conservative
		// bounds: only "no span could straddle" conclusions are drawn
		// from them, and those stay valid for any subset.
		return &Capture{packets: c.packets[lo:hi:hi], flows: c.flows,
			spans: c.spans, minSpanStart: c.minSpanStart, maxSpanEnd: c.maxSpanEnd}
	}
	out := make([]Packet, 0, len(pre)+(hi-lo))
	out = append(out, pre...)
	for i := lo; i < hi; i++ {
		p := c.packets[i]
		if p.IsSpan() && !p.End().Before(to) {
			if cl, ok := p.Clip(from, to); ok {
				out = append(out, cl)
			}
			continue
		}
		out = append(out, p)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Time.Before(out[j].Time)
	})
	sub := &Capture{packets: out, flows: c.flows}
	for i := range out {
		if p := &out[i]; p.IsSpan() {
			if sub.spans == 0 || p.Time.Before(sub.minSpanStart) {
				sub.minSpanStart = p.Time
			}
			if end := p.End(); sub.spans == 0 || end.After(sub.maxSpanEnd) {
				sub.maxSpanEnd = end
			}
			sub.spans++
		}
	}
	return sub
}
