package trace

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/goldenfile"
)

// TestGoldenCSVFormat pins the v2 trace interchange format byte for
// byte: a small deterministic capture — flows, plain records, a span
// record, every flag — serialised through WriteCSV and checked against
// testdata/golden_trace.csv.json. Offline tooling parses these dumps,
// so the format may only change together with a sanctioned golden
// refresh (scripts/regen-golden.sh) and a version bump.
func TestGoldenCSVFormat(t *testing.T) {
	c := NewCapture()
	a := c.OpenFlow(FlowKey{ClientAddr: "10.0.0.1", ClientPort: 40000,
		ServerAddr: "203.0.113.1", ServerPort: 443}, "storage.example", t0)
	b := c.OpenFlow(FlowKey{ClientAddr: "10.0.0.1", ClientPort: 40001,
		ServerAddr: "203.0.113.2", ServerPort: 80}, "control.example", t0.Add(time.Second))
	c.Record(Packet{Time: t0, Flow: a, Dir: Upstream, Flags: Flags{SYN: true}, Wire: 66})
	c.Record(Packet{Time: t0.Add(10 * time.Millisecond), Flow: a, Dir: Downstream,
		Flags: Flags{SYN: true, ACK: true}, Wire: 66})
	c.Record(Packet{Time: t0.Add(20 * time.Millisecond), Flow: a, Dir: Upstream,
		Payload: 2920, Wire: 3052, Segments: 2, AckWire: 66})
	c.Record(Span(t0.Add(30*time.Millisecond), a, Upstream, Flags{},
		4, 14600, 7300, 25*time.Millisecond))
	c.Record(Packet{Time: t0.Add(2 * time.Second), Flow: b, Dir: Upstream,
		Flags: Flags{FIN: true, ACK: true}, Wire: 66})
	c.Record(Packet{Time: t0.Add(3 * time.Second), Flow: b, Dir: Downstream,
		Flags: Flags{RST: true}, Wire: 66})

	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenfile.Check(t, "testdata/golden_trace_csv.json", buf.String())

	// And it must round-trip: reading the dump reproduces the capture.
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() || back.SpanCount() != c.SpanCount() {
		t.Fatalf("round trip: %d records/%d spans, want %d/%d",
			back.Len(), back.SpanCount(), c.Len(), c.SpanCount())
	}
}
