package trace

import (
	"math/rand"
	"testing"
	"time"
)

// This file proves the single-pass analyzer, the zero-copy Window and
// the reorder-buffer Record equivalent to the seed implementations:
// the reference functions below replicate, scan for scan, the original
// per-metric code (independent full scans over a copying window, with
// packets kept sorted by per-record insertion sort).

// refCapture is the seed recording scheme: insertion sort per record.
type refCapture struct {
	packets []Packet
}

func (c *refCapture) record(p Packet) {
	c.packets = append(c.packets, p)
	for i := len(c.packets) - 1; i > 0 && c.packets[i].Time.Before(c.packets[i-1].Time); i-- {
		c.packets[i], c.packets[i-1] = c.packets[i-1], c.packets[i]
	}
}

// refWindow is the seed Window: a copying filter scan.
func refWindow(packets []Packet, from, to time.Time) []Packet {
	var sub []Packet
	for _, p := range packets {
		if !p.Time.Before(from) && p.Time.Before(to) {
			sub = append(sub, p)
		}
	}
	return sub
}

func refSet(flows []FlowInfo, f FlowFilter) []bool {
	set := make([]bool, len(flows))
	for i, fl := range flows {
		set[i] = f == nil || f(fl)
	}
	return set
}

func refTotalWireBytes(packets []Packet, set []bool) int64 {
	var total int64
	for _, p := range packets {
		if set[p.Flow] {
			total += p.Wire + p.AckWire
		}
	}
	return total
}

func refWireBytesDir(packets []Packet, set []bool, dir Direction) int64 {
	var total int64
	for _, p := range packets {
		if !set[p.Flow] {
			continue
		}
		if p.Dir == dir {
			total += p.Wire
		} else {
			total += p.AckWire
		}
	}
	return total
}

func refPayloadBytesDir(packets []Packet, set []bool, dir Direction) int64 {
	var total int64
	for _, p := range packets {
		if set[p.Flow] && p.Dir == dir {
			total += p.Payload
		}
	}
	return total
}

func refFirstPayloadTime(packets []Packet, set []bool) (time.Time, bool) {
	for _, p := range packets {
		if set[p.Flow] && p.HasPayload() {
			return p.Time, true
		}
	}
	return time.Time{}, false
}

func refLastPayloadTime(packets []Packet, set []bool) (time.Time, bool) {
	for i := len(packets) - 1; i >= 0; i-- {
		p := packets[i]
		if set[p.Flow] && p.HasPayload() {
			return p.Time, true
		}
	}
	return time.Time{}, false
}

func refSYNTimes(packets []Packet, set []bool) []time.Time {
	var out []time.Time
	for _, p := range packets {
		if set[p.Flow] && p.Flags.SYN && !p.Flags.ACK && p.Dir == Upstream {
			out = append(out, p.Time)
		}
	}
	return out
}

// randomCapture builds a capture with out-of-order records, duplicate
// timestamps and several flows, returning both the new engine's
// capture and a reference seed-recorded packet slice.
func randomCapture(seed int64, n int) (*Capture, *refCapture) {
	rng := rand.New(rand.NewSource(seed))
	c := NewCapture()
	ref := &refCapture{}
	nFlows := 2 + rng.Intn(6)
	for i := 0; i < nFlows; i++ {
		c.OpenFlow(FlowKey{ClientPort: 40000 + i, ServerPort: 443}, []string{"storage.example", "control.example"}[i%2], t0)
	}
	now := t0
	for i := 0; i < n; i++ {
		// Mostly forward motion with occasional stragglers and ties.
		switch rng.Intn(10) {
		case 0:
			now = now.Add(-time.Duration(rng.Intn(2000)) * time.Millisecond)
		case 1: // tie: reuse now
		default:
			now = now.Add(time.Duration(rng.Intn(50)) * time.Millisecond)
		}
		p := Packet{
			Time:     now,
			Flow:     FlowID(rng.Intn(nFlows)),
			Dir:      Direction(rng.Intn(2)),
			Payload:  int64(rng.Intn(3)) * 1460,
			Wire:     int64(66 + rng.Intn(1500)),
			AckWire:  int64(rng.Intn(2)) * 66,
			Segments: 1 + rng.Intn(3),
		}
		if rng.Intn(12) == 0 {
			p.Flags = Flags{SYN: true, ACK: rng.Intn(2) == 0}
			p.Dir = Upstream
			p.Payload = 0
		}
		c.Record(p)
		ref.record(p)
	}
	return c, ref
}

func TestRecordMatchesSeedInsertionSort(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c, ref := randomCapture(seed, 500)
		got := c.Packets()
		if len(got) != len(ref.packets) {
			t.Fatalf("seed %d: %d packets, want %d", seed, len(got), len(ref.packets))
		}
		for i := range got {
			if got[i] != ref.packets[i] {
				t.Fatalf("seed %d: packet %d differs:\n got %+v\nwant %+v", seed, i, got[i], ref.packets[i])
			}
		}
	}
}

func TestAnalyzeMatchesSeedScans(t *testing.T) {
	filters := []struct {
		name string
		f    FlowFilter
	}{
		{"all", AllFlows},
		{"storage", func(f FlowInfo) bool { return f.ServerName == "storage.example" }},
		{"none", func(FlowInfo) bool { return false }},
	}
	for seed := int64(1); seed <= 5; seed++ {
		c, ref := randomCapture(seed, 400)
		for _, flt := range filters {
			name, f := flt.name, flt.f
			set := refSet(c.Flows(), f)
			a := c.Analyze(f)
			if want := refTotalWireBytes(ref.packets, set); a.TotalWire != want {
				t.Errorf("seed %d %s: TotalWire = %d, want %d", seed, name, a.TotalWire, want)
			}
			if want := refWireBytesDir(ref.packets, set, Upstream); a.WireUp != want {
				t.Errorf("seed %d %s: WireUp = %d, want %d", seed, name, a.WireUp, want)
			}
			if want := refWireBytesDir(ref.packets, set, Downstream); a.WireDown != want {
				t.Errorf("seed %d %s: WireDown = %d, want %d", seed, name, a.WireDown, want)
			}
			if want := refPayloadBytesDir(ref.packets, set, Upstream); a.PayloadUp != want {
				t.Errorf("seed %d %s: PayloadUp = %d, want %d", seed, name, a.PayloadUp, want)
			}
			if want := refPayloadBytesDir(ref.packets, set, Downstream); a.PayloadDown != want {
				t.Errorf("seed %d %s: PayloadDown = %d, want %d", seed, name, a.PayloadDown, want)
			}
			first, ok1 := refFirstPayloadTime(ref.packets, set)
			last, ok2 := refLastPayloadTime(ref.packets, set)
			if a.HasPayload != ok1 || ok1 != ok2 {
				t.Errorf("seed %d %s: HasPayload = %v, want %v/%v", seed, name, a.HasPayload, ok1, ok2)
			}
			if ok1 && (!a.FirstPayload.Equal(first) || !a.LastPayload.Equal(last)) {
				t.Errorf("seed %d %s: payload bracket = [%v, %v], want [%v, %v]",
					seed, name, a.FirstPayload, a.LastPayload, first, last)
			}
			syns := refSYNTimes(ref.packets, set)
			if a.Connections != len(syns) || len(a.SYNTimes) != len(syns) {
				t.Errorf("seed %d %s: Connections = %d, want %d", seed, name, a.Connections, len(syns))
			}
			for i := range syns {
				if !a.SYNTimes[i].Equal(syns[i]) {
					t.Errorf("seed %d %s: SYNTimes[%d] = %v, want %v", seed, name, i, a.SYNTimes[i], syns[i])
				}
			}
		}
	}
}

func TestWindowMatchesSeedCopyingWindow(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c, ref := randomCapture(seed, 400)
		sorted := c.Packets()
		lastT := sorted[len(sorted)-1].Time
		cuts := []struct{ from, to time.Time }{
			{t0, FarFuture},
			{t0.Add(time.Second), lastT},
			{t0.Add(5 * time.Second), t0.Add(10 * time.Second)},
			{lastT, lastT},                             // empty
			{t0.Add(time.Hour), FarFuture},             // past the end
			{t0.Add(-time.Hour), t0.Add(-time.Minute)}, // before the start
		}
		for _, cut := range cuts {
			got := c.Window(cut.from, cut.to).Packets()
			want := refWindow(ref.packets, cut.from, cut.to)
			if len(got) != len(want) {
				t.Fatalf("seed %d window [%v,%v): %d packets, want %d",
					seed, cut.from, cut.to, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d window [%v,%v): packet %d differs", seed, cut.from, cut.to, i)
				}
			}
		}
	}
}

// TestWindowHalfOpenSemantics pins the [from, to) contract exactly:
// a packet at from is included, a packet at to is excluded.
func TestWindowHalfOpenSemantics(t *testing.T) {
	c := NewCapture()
	id := c.OpenFlow(FlowKey{}, "x", at(0))
	for ms := 0; ms <= 40; ms += 10 {
		c.Record(Packet{Time: at(ms), Flow: id, Wire: int64(ms + 1)})
	}
	w := c.Window(at(10), at(30))
	if w.Len() != 2 {
		t.Fatalf("window [10,30) has %d packets, want 2", w.Len())
	}
	ps := w.Packets()
	if !ps[0].Time.Equal(at(10)) || !ps[1].Time.Equal(at(20)) {
		t.Fatalf("window [10,30) = %v, %v", ps[0].Time, ps[1].Time)
	}
	if got := c.Window(at(10), at(10)).Len(); got != 0 {
		t.Fatalf("empty window has %d packets", got)
	}
	// Equal timestamps at the boundary: all of them are included.
	c2 := NewCapture()
	id2 := c2.OpenFlow(FlowKey{}, "x", at(0))
	c2.Record(Packet{Time: at(5), Flow: id2, Wire: 1})
	c2.Record(Packet{Time: at(5), Flow: id2, Wire: 2})
	c2.Record(Packet{Time: at(5), Flow: id2, Wire: 3})
	if got := c2.Window(at(5), at(6)).Len(); got != 3 {
		t.Fatalf("tied boundary window has %d packets, want 3", got)
	}
}

// TestWindowViewIsSnapshot pins the zero-copy contract: records added
// after a view is taken never appear in it, even when stragglers force
// a reorder-buffer merge.
func TestWindowViewIsSnapshot(t *testing.T) {
	c := NewCapture()
	id := c.OpenFlow(FlowKey{}, "x", at(0))
	c.Record(Packet{Time: at(10), Flow: id, Wire: 1})
	c.Record(Packet{Time: at(20), Flow: id, Wire: 2})
	w := c.Window(at(0), FarFuture)
	c.Record(Packet{Time: at(5), Flow: id, Wire: 3}) // straggler -> merge
	c.Record(Packet{Time: at(30), Flow: id, Wire: 4})
	if w.Len() != 2 {
		t.Fatalf("view grew to %d packets after later records", w.Len())
	}
	if got := w.TotalWireBytes(AllFlows); got != 3 {
		t.Fatalf("view bytes = %d, want 3", got)
	}
	if c.Len() != 4 {
		t.Fatalf("parent has %d packets, want 4", c.Len())
	}
	if got := c.TotalWireBytes(AllFlows); got != 10 {
		t.Fatalf("parent bytes = %d, want 10", got)
	}
}

func TestFlowsWithTrafficIndexedByFlowID(t *testing.T) {
	c := NewCapture()
	a := c.OpenFlow(FlowKey{ClientPort: 1}, "a", at(0))
	c.OpenFlow(FlowKey{ClientPort: 2}, "b", at(0))
	third := c.OpenFlow(FlowKey{ClientPort: 3}, "c", at(0))
	c.Record(Packet{Time: at(1), Flow: a, Wire: 10})
	c.Record(Packet{Time: at(2), Flow: third, Wire: 10})
	active := c.FlowsWithTraffic()
	if len(active) != 3 {
		t.Fatalf("FlowsWithTraffic len = %d, want NumFlows = 3", len(active))
	}
	if !active[0] || active[1] || !active[2] {
		t.Fatalf("FlowsWithTraffic = %v, want [true false true]", active)
	}
}
