package trace

import (
	"testing"
	"time"
)

var t0 = time.Date(2013, 10, 23, 0, 0, 0, 0, time.UTC)

func at(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }

// buildCapture makes a small two-flow trace:
// flow 0 (control.example): handshake + 2 small payload exchanges
// flow 1 (storage.example): handshake + upload bursts with a pause
func buildCapture() *Capture {
	c := NewCapture()
	ctl := c.OpenFlow(FlowKey{"10.0.0.1", 40000, "198.51.100.1", 443, TCP}, "control.example", at(0))
	sto := c.OpenFlow(FlowKey{"10.0.0.1", 40001, "203.0.113.1", 443, TCP}, "storage.example", at(5))

	c.Record(Packet{Time: at(0), Flow: ctl, Dir: Upstream, Flags: Flags{SYN: true}, Wire: 74, Segments: 1})
	c.Record(Packet{Time: at(10), Flow: ctl, Dir: Downstream, Flags: Flags{SYN: true, ACK: true}, Wire: 74, Segments: 1})
	c.Record(Packet{Time: at(20), Flow: ctl, Dir: Upstream, Payload: 300, Wire: 366, Segments: 1})
	c.Record(Packet{Time: at(30), Flow: ctl, Dir: Downstream, Payload: 500, Wire: 566, Segments: 1})

	c.Record(Packet{Time: at(40), Flow: sto, Dir: Upstream, Flags: Flags{SYN: true}, Wire: 74, Segments: 1})
	c.Record(Packet{Time: at(50), Flow: sto, Dir: Downstream, Flags: Flags{SYN: true, ACK: true}, Wire: 74, Segments: 1})
	// burst 1: two records close together
	c.Record(Packet{Time: at(60), Flow: sto, Dir: Upstream, Payload: 1460, Wire: 1526, Segments: 1})
	c.Record(Packet{Time: at(70), Flow: sto, Dir: Upstream, Payload: 2920, Wire: 3052, Segments: 2})
	// pause of 400 ms (chunk boundary), then burst 2
	c.Record(Packet{Time: at(470), Flow: sto, Dir: Upstream, Payload: 1460, Wire: 1526, Segments: 1})
	c.Record(Packet{Time: at(480), Flow: sto, Dir: Downstream, Payload: 200, Wire: 266, Segments: 1})
	c.Record(Packet{Time: at(490), Flow: sto, Dir: Upstream, Flags: Flags{FIN: true, ACK: true}, Wire: 66, Segments: 1})
	return c
}

func storageOnly(f FlowInfo) bool { return f.ServerName == "storage.example" }
func controlOnly(f FlowInfo) bool { return f.ServerName == "control.example" }

func TestCaptureBasics(t *testing.T) {
	c := buildCapture()
	if c.NumFlows() != 2 {
		t.Fatalf("NumFlows = %d", c.NumFlows())
	}
	if c.Len() != 11 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Flow(0).ServerName; got != "control.example" {
		t.Fatalf("Flow(0).ServerName = %q", got)
	}
	if got := c.Flows()[1].Key.ServerAddr; got != "203.0.113.1" {
		t.Fatalf("flow 1 server = %q", got)
	}
}

func TestRecordOutOfOrderIsSorted(t *testing.T) {
	c := NewCapture()
	id := c.OpenFlow(FlowKey{}, "x", at(0))
	c.Record(Packet{Time: at(10), Flow: id, Wire: 1})
	c.Record(Packet{Time: at(5), Flow: id, Wire: 2})
	c.Record(Packet{Time: at(7), Flow: id, Wire: 3})
	got := c.Packets()
	if got[0].Wire != 2 || got[1].Wire != 3 || got[2].Wire != 1 {
		t.Fatalf("records not time-sorted: %+v", got)
	}
}

func TestAckWireAccounting(t *testing.T) {
	c := NewCapture()
	id := c.OpenFlow(FlowKey{}, "s", at(0))
	c.Record(Packet{Time: at(0), Flow: id, Dir: Upstream, Payload: 2920, Wire: 3052, Segments: 2, AckWire: 66})
	if got := c.TotalWireBytes(AllFlows); got != 3052+66 {
		t.Fatalf("TotalWireBytes = %d", got)
	}
	if got := c.WireBytesDir(AllFlows, Upstream); got != 3052 {
		t.Fatalf("up = %d", got)
	}
	if got := c.WireBytesDir(AllFlows, Downstream); got != 66 {
		t.Fatalf("down (acks) = %d", got)
	}
	if got := c.FlowBytes()[0]; got != 3118 {
		t.Fatalf("FlowBytes = %d", got)
	}
}

func TestByteAccounting(t *testing.T) {
	c := buildCapture()
	if got := c.TotalWireBytes(AllFlows); got != 74+74+366+566+74+74+1526+3052+1526+266+66 {
		t.Fatalf("TotalWireBytes = %d", got)
	}
	if got := c.WireBytesDir(storageOnly, Upstream); got != 74+1526+3052+1526+66 {
		t.Fatalf("storage upstream wire = %d", got)
	}
	if got := c.PayloadBytesDir(storageOnly, Upstream); got != 1460+2920+1460 {
		t.Fatalf("storage upstream payload = %d", got)
	}
	if got := c.PayloadBytesDir(controlOnly, Downstream); got != 500 {
		t.Fatalf("control downstream payload = %d", got)
	}
}

func TestFirstLastPayload(t *testing.T) {
	c := buildCapture()
	first, ok := c.FirstPayloadTime(storageOnly)
	if !ok || !first.Equal(at(60)) {
		t.Fatalf("FirstPayloadTime = %v,%v", first, ok)
	}
	last, ok := c.LastPayloadTime(storageOnly)
	if !ok || !last.Equal(at(480)) {
		t.Fatalf("LastPayloadTime = %v,%v", last, ok)
	}
	if _, ok := c.FirstPayloadTime(func(FlowInfo) bool { return false }); ok {
		t.Fatal("FirstPayloadTime matched empty filter")
	}
}

func TestSYNCounting(t *testing.T) {
	c := buildCapture()
	ts := c.SYNTimes(AllFlows)
	if len(ts) != 2 {
		t.Fatalf("SYN count = %d, want 2 (SYN-ACKs excluded)", len(ts))
	}
	if !ts[0].Equal(at(0)) || !ts[1].Equal(at(40)) {
		t.Fatalf("SYN times = %v", ts)
	}
	if got := c.ConnectionCount(storageOnly); got != 1 {
		t.Fatalf("storage connections = %d", got)
	}
}

func TestCumulativeBytesTimeline(t *testing.T) {
	c := buildCapture()
	tl := c.CumulativeBytes(controlOnly)
	if len(tl) != 4 {
		t.Fatalf("timeline points = %d", len(tl))
	}
	if tl[len(tl)-1].Bytes != 74+74+366+566 {
		t.Fatalf("final cumulative = %d", tl[len(tl)-1].Bytes)
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Bytes < tl[i-1].Bytes || tl[i].Time.Before(tl[i-1].Time) {
			t.Fatal("timeline not monotonic")
		}
	}
}

func TestBurstDetection(t *testing.T) {
	c := buildCapture()
	bursts := c.Bursts(storageOnly, 200*time.Millisecond)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %d, want 2", len(bursts))
	}
	if bursts[0].Bytes != 1460+2920 || bursts[0].Packets != 3 {
		t.Fatalf("burst[0] = %+v", bursts[0])
	}
	if bursts[1].Bytes != 1460 {
		t.Fatalf("burst[1] = %+v", bursts[1])
	}
	// With a huge threshold everything is one burst.
	if got := len(c.Bursts(storageOnly, time.Hour)); got != 1 {
		t.Fatalf("one-burst case = %d", got)
	}
	// No payload -> no bursts.
	if got := len(c.Bursts(func(FlowInfo) bool { return false }, time.Millisecond)); got != 0 {
		t.Fatalf("empty filter bursts = %d", got)
	}
}

func TestUploadPauses(t *testing.T) {
	c := buildCapture()
	pauses := c.UploadPauses(storageOnly, 200*time.Millisecond)
	if len(pauses) != 1 {
		t.Fatalf("pauses = %d, want 1", len(pauses))
	}
	p := pauses[0]
	if p.BytesBefore != 1460+2920 {
		t.Fatalf("BytesBefore = %d, want 4380 (chunk size)", p.BytesBefore)
	}
	if p.Gap != 400*time.Millisecond {
		t.Fatalf("Gap = %v", p.Gap)
	}
}

func TestFlowBytes(t *testing.T) {
	c := buildCapture()
	fb := c.FlowBytes()
	if len(fb) != 2 {
		t.Fatalf("FlowBytes len = %d", len(fb))
	}
	if fb[0] != 74+74+366+566 {
		t.Fatalf("flow 0 bytes = %d", fb[0])
	}
	if fb[1] <= fb[0] {
		t.Fatal("storage flow should carry more bytes than control (Wuala heuristic)")
	}
}

func TestWindow(t *testing.T) {
	c := buildCapture()
	w := c.Window(at(40), at(100))
	if w.Len() != 4 {
		t.Fatalf("window len = %d, want 4", w.Len())
	}
	if w.NumFlows() != 2 {
		t.Fatal("window must keep flow metadata")
	}
	// Window boundaries: inclusive start, exclusive end.
	w2 := c.Window(at(60), at(60))
	if w2.Len() != 0 {
		t.Fatalf("empty window len = %d", w2.Len())
	}
}

func TestDirectionProtoStrings(t *testing.T) {
	if Upstream.String() != "up" || Downstream.String() != "down" {
		t.Fatal("Direction strings")
	}
	if TCP.String() != "tcp" || UDP.String() != "udp" {
		t.Fatal("Proto strings")
	}
	k := FlowKey{"1.2.3.4", 1000, "5.6.7.8", 443, TCP}
	if k.String() != "tcp 1.2.3.4:1000->5.6.7.8:443" {
		t.Fatalf("FlowKey.String = %q", k.String())
	}
}

func TestThroughputTimeline(t *testing.T) {
	c := buildCapture()
	tl := c.ThroughputTimeline(storageOnly, 100*time.Millisecond)
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	// First bucket covers the 60-70ms records (4380 B); the pause
	// around 100-400ms shows as zero-rate buckets.
	if tl[0].Bps <= 0 {
		t.Fatalf("first bucket rate = %v", tl[0].Bps)
	}
	sawPause := false
	for _, p := range tl {
		if p.Bps == 0 {
			sawPause = true
		}
	}
	if !sawPause {
		t.Fatal("chunk pause not visible in throughput timeline")
	}
	// Total bytes conserved across buckets.
	var total float64
	for _, p := range tl {
		total += p.Bps / 8 * 0.1
	}
	if want := float64(1460 + 2920 + 1460); total < want-1 || total > want+1 {
		t.Fatalf("timeline bytes = %.0f, want %.0f", total, want)
	}
}

func TestThroughputTimelineEmptyAndBadBucket(t *testing.T) {
	c := NewCapture()
	if got := c.ThroughputTimeline(AllFlows, time.Second); got != nil {
		t.Fatal("empty capture timeline")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero bucket")
		}
	}()
	buildCapture().ThroughputTimeline(AllFlows, 0)
}
