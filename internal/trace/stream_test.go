package trace

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestStreamerMatchesCaptureRandomized is the streaming pipeline's
// equivalence oracle: random flow populations, random packet
// workloads, random out-of-order record interleavings and random
// window bounds, asserting that the fold-at-record-time StreamWindow
// produces field-for-field the same Analysis as buffering everything
// in a Capture and running Window(...).Analyze(...) afterwards —
// including the SYNTimes order and the HasPayload payload bracket.
func TestStreamerMatchesCaptureRandomized(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wins, cwins, filters := buildRandomPair(rng)

		for wi := range wins {
			for fi, f := range filters {
				want := cwins[wi].Analyze(f)
				got := wins[wi].Analyze(f)
				if !analysesEqual(want, got) {
					t.Fatalf("seed %d window %d filter %d:\n capture  %+v\n streamer %+v",
						seed, wi, fi, want, got)
				}
			}
			if want, got := cwins[wi].FlowBytes(), wins[wi].FlowBytes(); !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d window %d FlowBytes: capture %v streamer %v", seed, wi, want, got)
			}
			if want, got := cwins[wi].FlowsWithTraffic(), wins[wi].FlowsWithTraffic(); !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d window %d FlowsWithTraffic: capture %v streamer %v", seed, wi, want, got)
			}
		}
	}
}

// buildRandomPair records one random trace into both a Capture and a
// Streamer and returns matching window views over both.
func buildRandomPair(rng *rand.Rand) ([]*StreamWindow, []*Capture, []FlowFilter) {
	cap := NewCapture()
	str := NewStreamer()

	// Random flow population across two server names, so name filters
	// select non-trivial subsets.
	names := []string{"control.example", "storage.example"}
	nFlows := 1 + rng.Intn(6)
	for i := 0; i < nFlows; i++ {
		key := FlowKey{
			ClientAddr: "10.0.0.1", ClientPort: 40000 + i,
			ServerAddr: "203.0.113.9", ServerPort: 443, Proto: TCP,
		}
		name := names[rng.Intn(len(names))]
		at := time.Duration(rng.Intn(1000)) * time.Millisecond
		a := cap.OpenFlow(key, name, t0.Add(at))
		b := str.OpenFlow(key, name, t0.Add(at))
		if a != b {
			panic("flow IDs diverged")
		}
	}

	// Windows registered up front (the streaming contract), spanning
	// the whole packet time range and random interior slices; [x, x)
	// exercises the empty-window edge.
	const horizonMs = 10_000
	bounds := [][2]int{{0, horizonMs}, {0, 0}}
	for i := 0; i < 3; i++ {
		lo := rng.Intn(horizonMs)
		hi := lo + rng.Intn(horizonMs-lo+1)
		bounds = append(bounds, [2]int{lo, hi})
	}
	var swins []*StreamWindow
	for _, b := range bounds {
		swins = append(swins, str.AddWindow(at(b[0]), at(b[1])))
	}

	// Random workload: mostly in-order timestamps with out-of-order
	// stragglers (negative jitter), duplicate timestamps to exercise
	// the stable-order tie-break, SYNs in both directions, zero-payload
	// control packets and pure-ACK accounting.
	n := rng.Intn(400)
	base := 0
	for i := 0; i < n; i++ {
		base += rng.Intn(40)
		ts := base
		if rng.Intn(5) == 0 {
			ts -= rng.Intn(200) // straggler from a slower timeline
			if ts < 0 {
				ts = 0
			}
		}
		if ts >= horizonMs {
			ts = horizonMs - 1
		}
		p := Packet{
			Time: at(ts),
			Flow: FlowID(rng.Intn(nFlows)),
			Dir:  Direction(rng.Intn(2)),
		}
		switch rng.Intn(6) {
		case 0: // client SYN
			p.Flags = Flags{SYN: true}
			p.Wire = 74
			p.Segments = 1
		case 1: // SYN-ACK (must not count as a connection)
			p.Flags = Flags{SYN: true, ACK: true}
			p.Wire = 74
			p.Segments = 1
		case 2: // pure control, no payload
			p.Flags = Flags{ACK: true}
			p.Wire = 66
			p.Segments = 1
		default: // data record with delayed-ACK accounting
			p.Flags = Flags{ACK: true}
			p.Payload = int64(1 + rng.Intn(3000))
			p.Wire = p.Payload + 66
			p.Segments = 1 + int(p.Payload/1460)
			p.AckWire = int64(rng.Intn(2)) * 66
		}
		cap.Record(p)
		str.Record(p)
	}

	var cwins []*Capture
	for _, b := range bounds {
		cwins = append(cwins, cap.Window(at(b[0]), at(b[1])))
	}

	filters := []FlowFilter{
		nil,
		AllFlows,
		func(f FlowInfo) bool { return f.ServerName == "storage.example" },
		func(f FlowInfo) bool { return f.ID%2 == 0 },
		func(FlowInfo) bool { return false },
	}
	return swins, cwins, filters
}

// analysesEqual compares two Analysis values field-for-field, treating
// the SYN timelines as equal only when they match element by element
// in order.
func analysesEqual(a, b Analysis) bool {
	if a.Packets != b.Packets ||
		a.TotalWire != b.TotalWire ||
		a.WireUp != b.WireUp || a.WireDown != b.WireDown ||
		a.PayloadUp != b.PayloadUp || a.PayloadDown != b.PayloadDown ||
		a.HasPayload != b.HasPayload ||
		a.Connections != b.Connections ||
		len(a.SYNTimes) != len(b.SYNTimes) {
		return false
	}
	if a.HasPayload && (!a.FirstPayload.Equal(b.FirstPayload) || !a.LastPayload.Equal(b.LastPayload)) {
		return false
	}
	for i := range a.SYNTimes {
		if !a.SYNTimes[i].Equal(b.SYNTimes[i]) {
			return false
		}
	}
	return true
}

// TestAddWindowRejectsLateRegistration pins the streaming contract: a
// window whose lower bound is not strictly after every recorded
// timestamp would have to see packets that were already discarded.
func TestAddWindowRejectsLateRegistration(t *testing.T) {
	s := NewStreamer()
	id := s.OpenFlow(FlowKey{}, "x", at(0))
	s.Record(Packet{Time: at(100), Flow: id, Wire: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("AddWindow accepted a lower bound at an already-recorded timestamp")
		}
	}()
	s.AddWindow(at(100), FarFuture)
}

// TestAddWindowAfterQuietPointOK registers a window strictly after the
// last recorded packet — the benchmark engine's pattern (login settles,
// then the measurement window opens).
func TestAddWindowAfterQuietPointOK(t *testing.T) {
	s := NewStreamer()
	id := s.OpenFlow(FlowKey{}, "x", at(0))
	s.Record(Packet{Time: at(100), Flow: id, Wire: 1, Payload: 5})
	w := s.AddWindow(at(101), FarFuture)
	s.Record(Packet{Time: at(150), Flow: id, Wire: 10, Payload: 7})
	a := w.Analyze(AllFlows)
	if a.Packets != 1 || a.TotalWire != 10 || a.PayloadUp != 7 {
		t.Fatalf("window saw %+v, want only the post-registration packet", a)
	}
	if !a.HasPayload || !a.FirstPayload.Equal(at(150)) || !a.LastPayload.Equal(at(150)) {
		t.Fatalf("payload bracket = %+v", a)
	}
}
