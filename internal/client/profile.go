// Package client implements the sync-client engine and the behaviour
// profiles of the five services under study.
//
// The engine is one code path with capability switches — chunking,
// bundling, client-side deduplication, delta encoding, compression,
// client-side encryption, connection strategy, polling behaviour —
// because the paper's whole point is that these few design choices
// explain the order-of-magnitude performance differences between
// services (Tab. 1 and Sect. 5). Every profile constant that encodes a
// quantitative observation from the paper cites it.
package client

import (
	"time"

	"repro/internal/compressor"
	"repro/internal/httpsim"
	"repro/internal/tcpsim"
)

// ChunkMode selects how a client splits files for transfer.
type ChunkMode int

const (
	// NoChunking transfers each file as a single object (Cloud
	// Drive: "only Cloud Drive does not perform chunking").
	NoChunking ChunkMode = iota
	// FixedChunks uses fixed-size chunks (Dropbox 4 MB, Google
	// Drive 8 MB).
	FixedChunks
	// VariableChunks uses content-defined chunking (SkyDrive and
	// Wuala "apparently change chunk sizes").
	VariableChunks
)

// String names the mode as reported in Table 1.
func (m ChunkMode) String() string {
	switch m {
	case NoChunking:
		return "no"
	case FixedChunks:
		return "fixed"
	case VariableChunks:
		return "var."
	default:
		return "?"
	}
}

// ConnStrategy selects how upload connections are managed (Sect. 4.2).
type ConnStrategy int

const (
	// PersistentBundled reuses storage connections and pipelines
	// multiple files without per-file waits (Dropbox).
	PersistentBundled ConnStrategy = iota
	// PersistentSequential reuses connections but submits files
	// sequentially, waiting for an application-layer acknowledgment
	// between files (SkyDrive, Wuala).
	PersistentSequential
	// PerFileConn opens a new TCP+SSL connection for every file
	// (Google Drive).
	PerFileConn
	// PerFileConnExtra opens a new TCP+SSL storage connection per
	// file plus several fresh control connections per file
	// operation (Cloud Drive: 3 control + 1 storage, Fig. 3).
	PerFileConnExtra
)

// String names the strategy.
func (s ConnStrategy) String() string {
	switch s {
	case PersistentBundled:
		return "persistent+bundled"
	case PersistentSequential:
		return "persistent+sequential"
	case PerFileConn:
		return "per-file-conn"
	case PerFileConnExtra:
		return "per-file-conn+control"
	default:
		return "?"
	}
}

// Profile is the complete behavioural description of a sync client.
type Profile struct {
	Name    string // display name, e.g. "Dropbox"
	Service string // cloud.Spec key, e.g. "dropbox"

	// Capabilities (Table 1).
	ChunkMode     ChunkMode
	ChunkSize     int64 // fixed size, or CDC average
	Bundling      bool
	Compression   compressor.Policy
	Dedup         bool
	DeltaEncoding bool
	Encryption    bool

	// Transfer behaviour.
	Strategy ConnStrategy
	// ChunkCommit makes the client wait one application round trip
	// after each chunk (visible as upload pauses, Sect. 4.1).
	ChunkCommit bool
	// ControlRPCsPerSync is the number of metadata exchanges around
	// one sync batch (list, commit, acknowledge).
	ControlRPCsPerSync int
	// ControlRPCsPerFile is the number of metadata exchanges per
	// file; for PerFileConnExtra each runs on a fresh connection.
	ControlRPCsPerFile int
	// ControlReqBytes/ControlRespBytes size each metadata exchange.
	ControlReqBytes, ControlRespBytes int64

	// Synchronization start-up (Fig. 6a): the client starts its
	// first storage flow DetectBase + DetectPerFile*n after the
	// first file event, plus the bundling aggregation wait when it
	// groups multiple files.
	DetectBase      time.Duration
	DetectPerFile   time.Duration
	AggregationWait time.Duration

	// PerFileClientOverhead is local processing per file during
	// upload (hashing, compression, encryption). It caps Dropbox's
	// effective many-small-file rate at the ~0.8 Mb/s the paper
	// measures despite bundling.
	PerFileClientOverhead time.Duration

	// Background behaviour (Fig. 1).
	PollInterval time.Duration
	// PollPerConn opens a brand-new HTTPS connection per poll
	// (Cloud Drive; ~6 kb/s of background traffic).
	PollPerConn bool
	// PollUpBytes/PollDownBytes are exchanged per poll on the
	// persistent channel.
	PollUpBytes, PollDownBytes int64
	// PollReqBytes/PollRespBytes are the HTTP bodies when
	// PollPerConn is set.
	PollReqBytes, PollRespBytes int64
	// NotifyPlainHTTP runs the notification channel over plain
	// HTTP (Dropbox).
	NotifyPlainHTTP bool
	// StoragePlainHTTP runs storage transfers over plain HTTP —
	// Wuala can afford it because content is already encrypted
	// client-side ("some Wuala storage operations also use HTTP,
	// since users' privacy has already been secured by local
	// encryption", Sect. 3.1).
	StoragePlainHTTP bool

	// Login behaviour: LoginRespBytes received from each of the
	// service's login servers (SkyDrive contacts 13 and downloads
	// ~150 kB in total).
	LoginReqBytes, LoginRespBytes int64

	// HTTP dialect.
	HTTP httpsim.Profile
}

// Dropbox: the most sophisticated client in the study — 4 MB fixed
// chunks, bundling, always-on compression, deduplication and delta
// encoding (Tab. 1); fastest start-up on single files; highest
// protocol overhead among the well-behaved services (47% at 100 kB).
func Dropbox() Profile {
	return Profile{
		Name: "Dropbox", Service: "dropbox",
		ChunkMode: FixedChunks, ChunkSize: 4 << 20,
		Bundling:    true,
		Compression: compressor.Always,
		Dedup:       true, DeltaEncoding: true,
		Strategy:           PersistentBundled,
		ChunkCommit:        true,
		ControlRPCsPerSync: 6, ControlRPCsPerFile: 0,
		ControlReqBytes: 1800, ControlRespBytes: 1500,
		DetectBase: 900 * time.Millisecond, DetectPerFile: 8 * time.Millisecond,
		AggregationWait:       1200 * time.Millisecond,
		PerFileClientOverhead: 65 * time.Millisecond,
		PollInterval:          time.Minute,
		PollUpBytes:           175, PollDownBytes: 175, // ~82 b/s
		NotifyPlainHTTP: true,
		LoginReqBytes:   800, LoginRespBytes: 11_000,
		HTTP: httpsim.DefaultProfile,
	}
}

// SkyDrive: variable chunking, no other capability; sequential
// uploads with per-file acknowledgments; by far the slowest
// synchronization start-up (>= 9 s, > 20 s at 100 files); login
// contacts 13 Microsoft Live servers (~150 kB).
func SkyDrive() Profile {
	return Profile{
		Name: "SkyDrive", Service: "skydrive",
		ChunkMode: VariableChunks, ChunkSize: 1 << 20,
		Compression:        compressor.None,
		Strategy:           PersistentSequential,
		ChunkCommit:        true,
		ControlRPCsPerSync: 3, ControlRPCsPerFile: 1,
		ControlReqBytes: 700, ControlRespBytes: 600,
		DetectBase: 9 * time.Second, DetectPerFile: 120 * time.Millisecond,
		PerFileClientOverhead: 10 * time.Millisecond,
		PollInterval:          time.Minute,
		PollUpBytes:           20, PollDownBytes: 20, // ~32 b/s
		LoginReqBytes: 700, LoginRespBytes: 5_300, // x13 servers ~ 150 kB incl. TLS
		HTTP: httpsim.DefaultProfile,
	}
}

// Wuala: client-side convergent encryption with chunk-level
// deduplication (compatible, Sect. 4.3); variable chunks; sequential
// uploads; the quietest poller (every ~5 min); all servers in Europe.
func Wuala() Profile {
	return Profile{
		Name: "Wuala", Service: "wuala",
		ChunkMode: VariableChunks, ChunkSize: 4 << 20,
		Compression:        compressor.None,
		Dedup:              true,
		Encryption:         true,
		StoragePlainHTTP:   true,
		Strategy:           PersistentSequential,
		ChunkCommit:        true,
		ControlRPCsPerSync: 3, ControlRPCsPerFile: 1,
		ControlReqBytes: 600, ControlRespBytes: 500,
		DetectBase: 3800 * time.Millisecond, DetectPerFile: 40 * time.Millisecond,
		PerFileClientOverhead: 70 * time.Millisecond, // encryption cost
		PollInterval:          5 * time.Minute,
		PollUpBytes:           950, PollDownBytes: 950, // ~60 b/s
		LoginReqBytes: 700, LoginRespBytes: 12_000,
		HTTP: httpsim.DefaultProfile,
	}
}

// GoogleDrive: 8 MB fixed chunks and smart compression, but a new
// TCP+SSL connection per file, which cancels the edge network's head
// start on multi-file workloads (Sect. 5.2: 42 s for 100x10 kB).
func GoogleDrive() Profile {
	return Profile{
		Name: "Google Drive", Service: "googledrive",
		ChunkMode: FixedChunks, ChunkSize: 8 << 20,
		Compression:        compressor.Smart,
		Strategy:           PerFileConn,
		ChunkCommit:        true,
		ControlRPCsPerSync: 2, ControlRPCsPerFile: 2,
		ControlReqBytes: 900, ControlRespBytes: 800,
		DetectBase: 2500 * time.Millisecond, DetectPerFile: 10 * time.Millisecond,
		PerFileClientOverhead: 15 * time.Millisecond,
		PollInterval:          40 * time.Second,
		PollUpBytes:           10, PollDownBytes: 10, // ~42 b/s
		LoginReqBytes: 800, LoginRespBytes: 13_000,
		HTTP: httpsim.DefaultProfile,
	}
}

// CloudDrive: the most simplistic client — no capability from Table 1;
// a new TCP+SSL storage connection per file plus three fresh control
// connections per file operation (400 SYNs for 100 files, Fig. 3);
// polling opens a new HTTPS connection every 15 s (~6 kb/s idle —
// about 65 MB per day).
func CloudDrive() Profile {
	return Profile{
		Name: "Cloud Drive", Service: "clouddrive",
		ChunkMode:          NoChunking,
		Compression:        compressor.None,
		Strategy:           PerFileConnExtra,
		ControlRPCsPerSync: 2, ControlRPCsPerFile: 3,
		ControlReqBytes: 800, ControlRespBytes: 700,
		DetectBase: 3200 * time.Millisecond, DetectPerFile: 20 * time.Millisecond,
		PerFileClientOverhead: 10 * time.Millisecond,
		PollInterval:          15 * time.Second,
		PollPerConn:           true,
		PollReqBytes:          2000, PollRespBytes: 3000, // ~6 kb/s
		LoginReqBytes: 800, LoginRespBytes: 12_500,
		HTTP: httpsim.DefaultProfile,
	}
}

// Profiles returns the five paper profiles in the paper's order.
func Profiles() []Profile {
	return []Profile{Dropbox(), SkyDrive(), Wuala(), GoogleDrive(), CloudDrive()}
}

// ProfileFor returns the profile for a service key; ok is false for
// unknown services.
func ProfileFor(service string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Service == service {
			return p, true
		}
	}
	return Profile{}, false
}

// NotifyTLS returns the TLS configuration of the notification/polling
// channel: plain HTTP for Dropbox's notification protocol, HTTPS for
// everyone else.
func (p Profile) NotifyTLS() tcpsim.TLSConfig {
	if p.NotifyPlainHTTP {
		return tcpsim.PlainTCP
	}
	return p.HTTP.TLS
}
