package client

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestDownloadPanicsBeforeLogin(t *testing.T) {
	r := newRig(t, Dropbox(), 101)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.client.Download(nil, sim.Epoch)
}

func TestDownloadPerFileStrategyOpensConnections(t *testing.T) {
	// Cloud Drive downloads like it uploads: fresh connections per
	// file, plus fresh control connections.
	r := newRig(t, CloudDrive(), 102)
	done := r.client.Login(sim.Epoch)
	plans := []FilePlan{
		{Path: "a.bin", FileBytes: 10_000, Units: []TransferUnit{{Path: "a.bin", Bytes: 10_000, RawBytes: 10_000}}},
		{Path: "b.bin", FileBytes: 10_000, Units: []TransferUnit{{Path: "b.bin", Bytes: 10_000, RawBytes: 10_000}}},
	}
	before := r.cap.ConnectionCount(trace.AllFlows)
	end := r.client.Download(plans, done.Add(time.Minute))
	if !end.After(done) {
		t.Fatal("download did not advance time")
	}
	opened := r.cap.ConnectionCount(trace.AllFlows) - before
	// 2 files x (3 control + 1 storage) = 8 connections.
	if opened != 8 {
		t.Fatalf("download opened %d connections, want 8", opened)
	}
	down := r.cap.PayloadBytesDir(trace.AllFlows, trace.Downstream)
	if down < 20_000 {
		t.Fatalf("downloaded payload = %d", down)
	}
}

func TestDownloadPersistentStrategyReuses(t *testing.T) {
	r := newRig(t, Wuala(), 103)
	done := r.client.Login(sim.Epoch)
	plans := []FilePlan{
		{Path: "a.bin", FileBytes: 50_000, Units: []TransferUnit{{Path: "a.bin", Bytes: 50_000, RawBytes: 50_000}}},
	}
	before := r.cap.ConnectionCount(trace.AllFlows)
	r.client.Download(plans, done.Add(time.Minute))
	if opened := r.cap.ConnectionCount(trace.AllFlows) - before; opened > 1 {
		t.Fatalf("persistent download opened %d connections", opened)
	}
}

func TestDownloadDedupedPlanStillFetches(t *testing.T) {
	// A fully deduplicated upload plan (Units empty) must still be
	// fetched by device B: B does not have the bytes locally.
	r := newRig(t, Dropbox(), 104)
	done := r.client.Login(sim.Epoch)
	plans := []FilePlan{{Path: "known.bin", FileBytes: 80_000}}
	r.client.Download(plans, done.Add(time.Minute))
	down := r.cap.PayloadBytesDir(trace.AllFlows, trace.Downstream)
	if down < 80_000 {
		t.Fatalf("deduplicated file not downloaded: %d", down)
	}
}

func TestRecoveryUploadPanics(t *testing.T) {
	r := newRig(t, Dropbox(), 105)
	cases := []func(){
		func() { r.client.RecoveryUpload(r.folder, sim.Epoch, time.Second) }, // before login
	}
	r2 := newRig(t, Dropbox(), 106)
	r2.client.Login(sim.Epoch)
	cases = append(cases, func() { r2.client.RecoveryUpload(r2.folder, sim.Epoch, 0) }) // bad interval
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRecoveryUploadNoChangesCompletes(t *testing.T) {
	r := newRig(t, Dropbox(), 107)
	r.client.Login(sim.Epoch)
	res := r.client.RecoveryUpload(r.folder, sim.Epoch, time.Second)
	if !res.Completed || res.Retries != 0 {
		t.Fatalf("empty recovery: %+v", res)
	}
}

func TestNextNotificationPollAlignment(t *testing.T) {
	// Poll-based notification lands on the first poll tick after the
	// commit, in the service's own cadence.
	r := newRig(t, GoogleDrive(), 108) // 40 s polls
	login := r.client.Login(sim.Epoch)
	commit := login.Add(90 * time.Second)
	notify := r.client.NextNotification(commit)
	delta := notify.Sub(login)
	// First tick after 90 s on a 40 s cadence is 120 s.
	if delta < 120*time.Second || delta > 121*time.Second {
		t.Fatalf("notification at +%v, want ~120 s after login", delta)
	}
	// Commits before login map to the first tick.
	early := r.client.NextNotification(login.Add(-time.Hour))
	if early.Sub(login) < 40*time.Second || early.Sub(login) > 41*time.Second {
		t.Fatalf("pre-login commit notified at +%v", early.Sub(login))
	}
}

func TestRecoveryCleanBytesMatchPlan(t *testing.T) {
	r := newRig(t, CloudDrive(), 109)
	done := r.client.Login(sim.Epoch)
	t0 := done.Add(time.Minute)
	data := workload.Generate(r.rng, workload.Binary, 2<<20)
	r.folder.Create(t0, "f.bin", data)
	res := r.client.RecoveryUpload(r.folder, sim.Epoch, time.Hour)
	if !res.Completed || res.CleanBytes < 2<<20 {
		t.Fatalf("recovery result: %+v", res)
	}
}
