package client

import (
	"repro/internal/chunker"
	"repro/internal/compressor"
	"repro/internal/cryptobox"
	"repro/internal/dedup"
	"repro/internal/deltaenc"
	"repro/internal/workload"
)

// TransferUnit is one storage upload the transfer layer must perform:
// Bytes on the wire (after delta/compression/encryption), for a chunk
// that originally covered RawBytes of file content. Deduplicated
// chunks never become units.
type TransferUnit struct {
	Path     string
	Bytes    int64
	RawBytes int64
	// Commit indicates the client waits for the per-chunk
	// acknowledgment before sending the next unit of this file.
	Commit bool
}

// FilePlan is the upload plan for one changed file.
type FilePlan struct {
	Path      string
	FileBytes int64 // current file size
	Units     []TransferUnit
	// DedupSkipped counts content bytes NOT uploaded thanks to
	// client-side deduplication.
	DedupSkipped int64
}

// UploadBytes sums the unit sizes.
func (p FilePlan) UploadBytes() int64 {
	var n int64
	for _, u := range p.Units {
		n += u.Bytes
	}
	return n
}

// planner turns changed files into upload plans, maintaining the
// client-side state the capabilities need: the manifest of known chunk
// hashes per path (deduplication) and per-chunk delta signatures
// (delta encoding). State that no capability of the profile will ever
// read — chunk hashes without dedup, signatures without delta
// encoding — is not computed at all.
//
// Files arrive as workload.Content, which may be a lazy descriptor.
// The planner materialises at the chunk boundary, and only when a
// capability genuinely needs bytes: content-defined chunking, hashing
// for dedup, delta signatures, encryption, or a compression-size cache
// miss. A capability-poor profile (Cloud Drive: no chunking, no
// compression) plans a whole upload from the descriptor alone — zero
// content bytes ever exist — which removes what used to be ~50% of its
// campaign repetitions. Materialisation goes into pooled buffers
// (workload.GetBuffer) released at the end of each plan; nothing the
// planner retains (hashes, signatures, sizes) aliases them.
type planner struct {
	profile  Profile
	chunker  chunker.Chunker // nil for NoChunking
	store    *dedup.Store    // the service's server-side chunk store
	manifest *dedup.Manifest
	sigs     map[string][]*deltaenc.Signature // per path, per chunk index

	// Scratch buffers reused across chunks and files.
	encBuf []byte // ciphertext (Encryption)
	litBuf []byte // delta literal runs (DeltaEncoding)
}

func newPlanner(p Profile, store *dedup.Store) *planner {
	pl := &planner{
		profile:  p,
		store:    store,
		manifest: dedup.NewManifest(),
		sigs:     make(map[string][]*deltaenc.Signature),
	}
	switch p.ChunkMode {
	case FixedChunks:
		pl.chunker = chunker.NewFixed(p.ChunkSize)
	case VariableChunks:
		pl.chunker = chunker.NewContentDefined(p.ChunkSize)
	}
	return pl
}

// split applies the profile's chunking mode.
func (pl *planner) split(data []byte) []chunker.Chunk {
	if pl.chunker != nil {
		return pl.chunker.Split(data)
	}
	if len(data) == 0 {
		return nil
	}
	return []chunker.Chunk{{Offset: 0, Data: data}}
}

// descChunkKey names one chunk of a descriptor's content for the
// compressor's size cache: the chunk bytes are a pure function of
// (generator, seed, size, offset, length), so the cache never needs to
// hash — or even generate — the content to recognise it.
func descChunkKey(d workload.Descriptor, off, ln int64) compressor.ContentKey {
	gen := uint32(d.Kind) + 1
	if d.Legacy() {
		gen |= 1 << 16
	}
	return compressor.ContentKey{Gen: gen, Seed: d.Seed, Size: d.Size, Off: off, Len: ln}
}

// PlanFile computes the upload plan for one created or modified file,
// updating client and server state (the server store learns the new
// chunks; this models the upload's effect and keeps timing concerns in
// the transfer layer).
func (pl *planner) PlanFile(path string, content workload.Content) FilePlan {
	if plan, ok := pl.planLazy(path, content); ok {
		return plan
	}
	if !content.Lazy() {
		return pl.planBytes(path, content.Bytes(), workload.Descriptor{}, false)
	}
	// A capability needs bytes: materialise once into a pooled buffer
	// for the duration of this plan.
	desc, _ := content.Descriptor()
	buf := content.AppendTo(workload.GetBuffer(content.Size()))
	plan := pl.planBytes(path, buf, desc, true)
	workload.PutBuffer(buf)
	return plan
}

// planLazy plans a descriptor-backed file without materialising it.
// It applies when chunk boundaries are computable from the size alone
// (no content-defined chunking) and no capability hashes, signs or
// encrypts content. Transmit sizes come from the chunk length (no
// compression) or the descriptor-keyed size cache; only a cache miss
// generates bytes, once, into a pooled buffer.
func (pl *planner) planLazy(path string, content workload.Content) (FilePlan, bool) {
	prof := pl.profile
	desc, lazy := content.Descriptor()
	if !lazy || prof.ChunkMode == VariableChunks ||
		prof.Dedup || prof.DeltaEncoding || prof.Encryption {
		return FilePlan{}, false
	}

	size := content.Size()
	plan := FilePlan{Path: path, FileBytes: size}
	var data []byte // materialised at most once, on a cache miss
	for off := int64(0); off < size; {
		ln := size - off
		if prof.ChunkMode == FixedChunks && ln > prof.ChunkSize {
			ln = prof.ChunkSize
		}
		o := off
		wire := compressor.TransmitSizeKeyed(prof.Compression, descChunkKey(desc, o, ln), ln,
			func() []byte {
				if data == nil {
					data = content.AppendTo(workload.GetBuffer(size))
				}
				return data[o : o+ln]
			})
		plan.Units = append(plan.Units, TransferUnit{
			Path:     path,
			Bytes:    wire,
			RawBytes: ln,
			Commit:   prof.ChunkCommit,
		})
		off += ln
	}
	if data != nil {
		workload.PutBuffer(data)
	}
	return plan, true
}

// planBytes is the materialised planning path. haveDesc marks data as
// the content of desc, enabling descriptor-keyed compression sizes.
func (pl *planner) planBytes(path string, data []byte, desc workload.Descriptor, haveDesc bool) FilePlan {
	prof := pl.profile
	plan := FilePlan{Path: path, FileBytes: int64(len(data))}

	chunks := pl.split(data)
	oldSigs := pl.sigs[path]
	var newHashes []dedup.Hash
	if prof.Dedup {
		newHashes = make([]dedup.Hash, 0, len(chunks))
	}
	var newSigs []*deltaenc.Signature
	if prof.DeltaEncoding {
		newSigs = make([]*deltaenc.Signature, 0, len(chunks))
	}

	for i, ch := range chunks {
		payload := ch.Data
		if prof.Encryption {
			// Convergent encryption: equal chunks keep equal
			// ciphertexts, so dedup below still works. The scratch
			// buffer is safe to reuse because nothing below retains
			// the ciphertext — the store is content-addressed by
			// hash and size only.
			payload, _ = cryptobox.EncryptInto(pl.encBuf[:0], ch.Data)
			pl.encBuf = payload
		}
		var h dedup.Hash
		if prof.Dedup {
			// Content addresses exist to be announced to the server;
			// a client without the capability never computes them.
			h = dedup.HashBytes(payload)
			newHashes = append(newHashes, h)
		}
		if prof.DeltaEncoding {
			newSigs = append(newSigs, deltaenc.Sign(ch.Data, deltaenc.DefaultBlockSize))
		}

		if prof.Dedup && !pl.store.PutHashed(h, int64(len(payload))) {
			// One lookup decides both the dedup verdict and the
			// insert: an already-present chunk is the hit, a new one
			// is stored and uploaded below.
			plan.DedupSkipped += ch.Len()
			continue
		}

		wire := pl.unitBytes(i, ch, payload, oldSigs, desc, haveDesc)
		plan.Units = append(plan.Units, TransferUnit{
			Path:     path,
			Bytes:    wire,
			RawBytes: ch.Len(),
			Commit:   prof.ChunkCommit,
		})
	}

	if prof.Dedup {
		pl.manifest.Set(path, newHashes)
	}
	if prof.DeltaEncoding {
		pl.sigs[path] = newSigs
	}
	return plan
}

// unitBytes computes the wire size of one chunk upload, applying
// delta encoding against the previous revision's same-index chunk
// (Dropbox applies its rsync per chunk, Sect. 4.4) and then the
// compression policy. Only transmitted sizes matter to the plan, so
// compression runs in size-only mode and never materialises output;
// descriptor-backed plaintext chunks resolve through the keyed size
// cache, skipping even the content hash on repeats.
func (pl *planner) unitBytes(idx int, ch chunker.Chunk, payload []byte, oldSigs []*deltaenc.Signature, desc workload.Descriptor, haveDesc bool) int64 {
	prof := pl.profile
	if prof.DeltaEncoding && idx < len(oldSigs) && oldSigs[idx] != nil {
		d := deltaenc.Compute(oldSigs[idx], ch.Data)
		// The literal bytes still benefit from compression; the
		// copy-op framing does not.
		lits := pl.litBuf[:0]
		for _, op := range d.Ops {
			if !op.Copy {
				lits = append(lits, op.Literal...)
			}
		}
		pl.litBuf = lits
		return compressor.TransmitSize(prof.Compression, lits) + (d.WireSize() - d.LiteralBytes())
	}
	if haveDesc && !prof.Encryption {
		return compressor.TransmitSizeKeyed(prof.Compression, descChunkKey(desc, ch.Offset, ch.Len()), ch.Len(),
			func() []byte { return ch.Data })
	}
	return compressor.TransmitSize(prof.Compression, payload)
}

// ForgetFile drops client-side state for a deleted path. The server
// store is intentionally left alone: that is what lets deduplication
// succeed when the file is later restored (Sect. 4.3 step iv).
func (pl *planner) ForgetFile(path string) {
	pl.manifest.Delete(path)
	delete(pl.sigs, path)
}

// ManifestBytes is the metadata volume for announcing n chunk hashes
// to the server during a dedup check.
func ManifestBytes(nChunks int) int64 {
	return int64(nChunks) * (dedup.HashSize + 8)
}
