package client

import (
	"time"

	"repro/internal/cloud"
)

// Download fetches the given upload plans onto this device — the
// other half of synchronization: a second device learns about new
// content (via its notification channel) and pulls it from storage.
// The transferred volume per file matches what the uploader stored
// (post-compression/delta/encryption unit bytes); the connection
// strategy mirrors the client's upload behaviour.
//
// It returns when the device holds all content.
func (c *Client) Download(plans []FilePlan, at time.Time) time.Time {
	if c.control == nil {
		panic("client: Download before Login")
	}
	// Metadata first: what changed and where to fetch it.
	now := c.controlRPC(at, 0)

	p := c.Profile
	switch p.Strategy {
	case PersistentBundled, PersistentSequential:
		s := c.ensureStorage(now)
		conn := s.Conn()
		for _, plan := range plans {
			conn.Wait(now)
			for _, u := range plan.Units {
				now = s.Do(200, u.Bytes)
			}
			if len(plan.Units) == 0 && p.Dedup {
				// Content known server-side; device B still
				// has to fetch the bytes it lacks locally.
				now = s.Do(200, plan.FileBytes)
			}
		}
	default: // per-file connection strategies
		for _, plan := range plans {
			if p.Strategy == PerFileConnExtra {
				for i := 0; i < p.ControlRPCsPerFile; i++ {
					now = c.freshControlRPC(now)
				}
			}
			s := c.openStorage(now)
			for _, u := range plan.Units {
				now = s.Do(200, u.Bytes)
			}
			now = s.Close()
		}
	}
	return now
}

// NextNotification returns when this device learns about an update
// committed at `committed`: immediately (one notification-channel
// round trip) for push-style clients like Dropbox's long-poll, or at
// the next scheduled poll for everyone else.
func (c *Client) NextNotification(committed time.Time) time.Time {
	p := c.Profile
	if p.NotifyPlainHTTP {
		// Long-poll push: the pending response returns at once.
		return committed.Add(c.notify.Conn().RTT())
	}
	// Poll-based: the first poll tick at or after the commit.
	elapsed := committed.Sub(c.loginDone)
	if elapsed < 0 {
		elapsed = 0
	}
	ticks := elapsed/p.PollInterval + 1
	at := c.loginDone.Add(ticks * p.PollInterval)
	// The poll exchange itself takes a round trip to the control
	// server before the client knows.
	ctl := c.Deploy.HostsByRole(c.clientFacingRole(cloud.Control))[0]
	return at.Add(c.Net.BaseRTT(c.Host, ctl))
}
