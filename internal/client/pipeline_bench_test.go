package client

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dedup"
	"repro/internal/workload"
)

// benchFiles builds the 100x10 kB planning workload.
func benchFiles(seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	files := make([][]byte, 100)
	for i := range files {
		files[i] = make([]byte, 10_000)
		rng.Read(files[i])
	}
	return files
}

// BenchmarkPlanFile plans the paper's 100x10 kB batch with every
// profile: capability-poor clients (Cloud Drive) should spend nothing
// on hashing or signatures, capability-rich ones (Dropbox) reuse
// pooled compressor state and scratch buffers.
func BenchmarkPlanFile(b *testing.B) {
	files := benchFiles(3)
	for _, p := range Profiles() {
		b.Run(p.Service, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pl := newPlanner(p, dedup.NewStore())
				for j, data := range files {
					pl.PlanFile(fmt.Sprintf("f%03d", j), workload.BytesContent(data))
				}
			}
		})
	}
}

// BenchmarkPlanFileRevision exercises the delta-encoding path: plan a
// file, mutate a slice of it, and re-plan against the old signatures.
func BenchmarkPlanFileRevision(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 1<<20)
	rng.Read(data)
	rev := append([]byte(nil), data...)
	rng.Read(rev[500_000:520_000])
	p := Dropbox()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl := newPlanner(p, dedup.NewStore())
		pl.PlanFile("doc", workload.BytesContent(data))
		pl.PlanFile("doc", workload.BytesContent(rev))
	}
}
