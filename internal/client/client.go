package client

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/dnssim"
	"repro/internal/httpsim"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/trace"
)

// Client is one running sync client on the test computer. It behaves
// according to its Profile and emits all traffic into the trace sink
// via the transport simulator; it exposes no measurement results
// itself — the benchmark core derives every metric from the trace,
// exactly as the paper's sniffer does. The client only ever records
// (it never reads the trace back), so it works identically against a
// buffering Capture and a streaming Streamer.
type Client struct {
	Profile Profile
	Deploy  *cloud.Deployment
	Net     *netem.Network
	Host    *netem.Host
	Cap     trace.Sink
	DNS     *dnssim.System

	rng  *sim.RNG
	http *httpsim.Client
	plan *planner
	seq  int64 // per-client operation counter for RNG forking

	control *httpsim.Session // persistent control channel
	notify  *httpsim.Session // notification channel (may equal control)
	storage *httpsim.Session // persistent storage channel

	loginDone time.Time
}

// Config wires a client into a testbed.
type Config struct {
	Profile Profile
	Deploy  *cloud.Deployment
	Net     *netem.Network
	Host    *netem.Host // the test computer
	Cap     trace.Sink  // where the client's traffic is recorded
	DNS     *dnssim.System
	RNG     *sim.RNG
}

// New creates a client. It performs no traffic until Login.
func New(cfg Config) *Client {
	if cfg.Profile.Service != cfg.Deploy.Spec.Service {
		panic(fmt.Sprintf("client: profile %q wired to deployment %q",
			cfg.Profile.Service, cfg.Deploy.Spec.Service))
	}
	dialer := tcpsim.NewDialer(cfg.Net, cfg.Cap, cfg.Host)
	return &Client{
		Profile: cfg.Profile,
		Deploy:  cfg.Deploy,
		Net:     cfg.Net,
		Host:    cfg.Host,
		Cap:     cfg.Cap,
		DNS:     cfg.DNS,
		rng:     cfg.RNG,
		http:    httpsim.NewClient(dialer, cfg.Profile.HTTP),
		plan:    newPlanner(cfg.Profile, cfg.Deploy.Store),
	}
}

// clientFacingRole maps a logical role to the role the client actually
// dials: services with an edge network terminate everything at edges.
func (c *Client) clientFacingRole(r cloud.Role) cloud.Role {
	if c.Deploy.Spec.EdgeNetwork {
		return cloud.Edge
	}
	return r
}

// resolve performs the client's DNS lookup for a role and returns the
// chosen front-end host plus the DNS name used (kept on the flow
// records for the trace classifier).
func (c *Client) resolve(role cloud.Role) (*netem.Host, string) {
	role = c.clientFacingRole(role)
	name := c.Deploy.DNSName(role)
	ips := c.DNS.Resolve(name, c.Host.Coord)
	if len(ips) == 0 {
		panic("client: name does not resolve: " + name)
	}
	h, ok := c.Net.HostByAddr(ips[0])
	if !ok {
		panic("client: resolved address has no host: " + ips[0])
	}
	return h, name
}

// Login authenticates the client starting at `at`: it contacts the
// service's login servers (13 for SkyDrive, Sect. 3.1), keeps one
// control session open, and establishes the notification channel.
// It returns when login completes.
func (c *Client) Login(at time.Time) time.Time {
	p := c.Profile
	ctlRole := c.clientFacingRole(cloud.Control)
	hosts := c.Deploy.HostsByRole(ctlRole)
	name := c.Deploy.DNSName(ctlRole)
	count := c.Deploy.Spec.LoginServerCount
	if count <= 0 {
		count = 1
	}

	now := at
	for i := 0; i < count; i++ {
		h := hosts[i%len(hosts)]
		if c.Deploy.Spec.EdgeNetwork {
			// All traffic terminates at the nearest edge.
			h = c.Deploy.NearestEdge(c.Host.Coord)
		}
		s := c.http.Open(h, name, now)
		now = s.Do(p.LoginReqBytes, p.LoginRespBytes)
		if i == 0 {
			c.control = s // keep-alive control channel
			continue
		}
		s.Close()
	}

	// Notification channel: Dropbox runs it over plain HTTP against
	// dedicated servers; other services notify on the control
	// channel.
	if p.NotifyPlainHTTP {
		nHosts := c.Deploy.HostsByRole(cloud.Notification)
		nName := c.Deploy.DNSName(cloud.Notification)
		notifyHTTP := httpsim.NewClient(c.http.Dialer, httpsim.Profile{
			TLS:            tcpsim.PlainTCP,
			ReqHeaderBytes: 400, RespHeaderBytes: 250,
		})
		c.notify = notifyHTTP.Open(nHosts[0], nName, now)
		now = c.notify.Do(100, 120) // subscribe
	} else {
		c.notify = c.control
	}
	c.loginDone = now
	return now
}

// LoginDone returns when login completed (zero before Login).
func (c *Client) LoginDone() time.Time { return c.loginDone }

// InstallPoller schedules the client's background keep-alive behaviour
// on the given scheduler (Fig. 1): every PollInterval it exchanges a
// small amount of data — on the persistent notification channel, or,
// for Cloud Drive, over a brand-new HTTPS connection each time.
func (c *Client) InstallPoller(sched *sim.Scheduler) {
	p := c.Profile
	sched.Every(p.PollInterval, func(s *sim.Scheduler) bool {
		now := s.Clock.Now()
		if p.PollPerConn {
			h, name := c.resolve(cloud.Control)
			c.http.DoOnce(h, name, now, p.PollReqBytes, p.PollRespBytes)
			return true
		}
		conn := c.notify.Conn()
		conn.Wait(now)
		_, serverDone := conn.Send(p.PollUpBytes)
		conn.Recv(serverDone, p.PollDownBytes)
		return true
	})
}

// storageHTTP returns the HTTP client used for storage transfers:
// plain HTTP when the profile says so (Wuala), the regular HTTPS
// client otherwise.
func (c *Client) storageHTTP() *httpsim.Client {
	if !c.Profile.StoragePlainHTTP {
		return c.http
	}
	p := c.Profile.HTTP
	p.TLS = tcpsim.PlainTCP
	return httpsim.NewClient(c.http.Dialer, p)
}

// ensureStorage returns the persistent storage session, opening it on
// first use at time `at`.
func (c *Client) ensureStorage(at time.Time) *httpsim.Session {
	if c.storage == nil {
		h, name := c.resolve(cloud.Storage)
		c.storage = c.storageHTTP().Open(h, name, at)
	}
	return c.storage
}

// openStorage opens a fresh storage session (per-file strategies).
func (c *Client) openStorage(at time.Time) *httpsim.Session {
	h, name := c.resolve(cloud.Storage)
	return c.storageHTTP().Open(h, name, at)
}

// controlRPC performs one metadata exchange on the persistent control
// channel, starting no earlier than `at`, with extra bytes appended to
// the request (dedup manifests). It returns the completion instant.
func (c *Client) controlRPC(at time.Time, extraReq int64) time.Time {
	conn := c.control.Conn()
	conn.Wait(at)
	return c.control.Do(c.Profile.ControlReqBytes+extraReq, c.Profile.ControlRespBytes)
}

// freshControlRPC performs one metadata exchange on a brand-new
// TCP+TLS connection (Cloud Drive opens 3 of these per file
// operation, Sect. 4.2) and returns the completion instant.
func (c *Client) freshControlRPC(at time.Time) time.Time {
	h, name := c.resolve(cloud.Control)
	return c.http.DoOnce(h, name, at, c.Profile.ControlReqBytes, c.Profile.ControlRespBytes)
}

// jitterDur applies ±10% deterministic jitter to a duration, modelling
// the scheduling noise that gives the 24 repetitions their dispersion.
func (c *Client) jitterDur(d time.Duration) time.Duration {
	c.seq++
	spread := int64(d) / 5
	return time.Duration(c.rng.Fork(c.seq).Jitter(int64(d), spread))
}
