package client

import (
	"time"

	"repro/internal/workload"
)

// perUnitFraming is the application-protocol framing around one chunk
// upload inside a bundled stream (multipart boundaries, chunk ids).
const perUnitFraming = 180

// SyncResult is the client-side view of one synchronization run. The
// benchmark core computes the published metrics from the trace; this
// struct exists for tests and debugging.
type SyncResult struct {
	// Start is when the client began network activity for the batch
	// (after change detection and aggregation).
	Start time.Time
	// Done is when the last exchange of the batch completed.
	Done time.Time
	// Plans are the per-file upload plans.
	Plans []FilePlan
	// Deletes counts metadata-only delete operations.
	Deletes int
}

// UploadBytes sums the planned storage upload volume.
func (r SyncResult) UploadBytes() int64 {
	var n int64
	for _, p := range r.Plans {
		n += p.UploadBytes()
	}
	return n
}

// DedupSkipped sums content bytes saved by deduplication.
func (r SyncResult) DedupSkipped() int64 {
	var n int64
	for _, p := range r.Plans {
		n += p.DedupSkipped
	}
	return n
}

// SyncChanges processes all folder changes strictly after `since`,
// assuming the earliest of them happened at eventTime. It models the
// client's change-detection latency (Fig. 6a), plans every file with
// the profile's capabilities, and executes the transfer with the
// profile's connection strategy. The client must be logged in.
func (c *Client) SyncChanges(folder *workload.Folder, since time.Time) SyncResult {
	if c.control == nil {
		panic("client: SyncChanges before Login")
	}
	changes := folder.ChangesSince(since)
	if len(changes) == 0 {
		return SyncResult{}
	}
	eventTime := changes[0].Time

	// Collapse the journal: the last change per path wins.
	lastByPath := make(map[string]workload.ChangeType)
	order := make([]string, 0, len(changes))
	for _, ch := range changes {
		if _, seen := lastByPath[ch.Path]; !seen {
			order = append(order, ch.Path)
		}
		lastByPath[ch.Path] = ch.Type
	}

	// Change detection and aggregation delay (Fig. 6a): base +
	// per-file scan cost, plus the bundling aggregation wait when a
	// batch is grouped.
	p := c.Profile
	delay := p.DetectBase + time.Duration(len(order))*p.DetectPerFile
	if p.Bundling && len(order) > 1 {
		delay += p.AggregationWait
	}
	start := eventTime.Add(c.jitterDur(delay))
	if start.Before(c.loginDone) {
		start = c.loginDone
	}

	res := SyncResult{Start: start}
	for _, path := range order {
		switch lastByPath[path] {
		case workload.Deleted:
			c.plan.ForgetFile(path)
			res.Deletes++
		default:
			f, ok := folder.Get(path)
			if !ok {
				continue // deleted after the journal snapshot
			}
			res.Plans = append(res.Plans, c.plan.PlanFile(path, f.Content()))
		}
	}

	res.Done = c.execute(start, res)
	return res
}

// execute runs the transfer with the profile's connection strategy and
// returns the completion instant.
func (c *Client) execute(start time.Time, res SyncResult) time.Time {
	// Announce phase: the first half of the per-sync control RPCs,
	// carrying the dedup manifest when the capability is on.
	p := c.Profile
	var manifest int64
	if p.Dedup {
		units := 0
		for _, pl := range res.Plans {
			units += len(pl.Units)
		}
		manifest = ManifestBytes(units + int(res.DedupSkipped()/max64(p.ChunkSize, 1)))
	}
	now := start
	pre := (p.ControlRPCsPerSync + 1) / 2
	post := p.ControlRPCsPerSync - pre
	for i := 0; i < pre; i++ {
		extra := int64(0)
		if i == 0 {
			extra = manifest
		}
		now = c.controlRPC(now, extra)
	}

	switch p.Strategy {
	case PersistentBundled:
		now = c.execBundled(now, res.Plans)
	case PersistentSequential:
		now = c.execSequential(now, res.Plans)
	case PerFileConn:
		now = c.execPerFile(now, res.Plans, false)
	case PerFileConnExtra:
		now = c.execPerFile(now, res.Plans, true)
	}

	for i := 0; i < post; i++ {
		now = c.controlRPC(now, 0)
	}
	return now
}

// execBundled pipelines every unit of every file over one persistent
// storage session without per-file waits (Dropbox). Only full-size
// chunks of multi-chunk files pay a commit round trip, which is what
// makes the chunk boundaries visible as upload pauses on large files
// (Sect. 4.1) without penalizing batches of small files.
func (c *Client) execBundled(now time.Time, plans []FilePlan) time.Time {
	s := c.ensureStorage(now)
	conn := s.Conn()
	conn.Wait(now)
	sent := false
	for _, plan := range plans {
		if len(plan.Units) == 0 {
			continue
		}
		conn.Idle(c.Profile.PerFileClientOverhead)
		multi := len(plan.Units) > 1
		for _, u := range plan.Units {
			_, serverDone := conn.Send(u.Bytes + perUnitFraming)
			sent = true
			if u.Commit && multi {
				// Per-chunk commit: wait the storage ack.
				conn.Wait(serverDone.Add(conn.RTT() / 2))
			}
		}
	}
	if !sent {
		return now // fully deduplicated batch: no storage traffic
	}
	// One acknowledgment closes the bundled stream.
	_, serverDone := conn.Send(64)
	done := conn.Recv(serverDone, c.Profile.HTTP.RespHeaderBytes)
	return done
}

// execSequential submits files one by one over a persistent session,
// waiting for the application-layer acknowledgment of each chunk and
// each file before proceeding (SkyDrive, Wuala) — the behaviour the
// paper detects by counting packet bursts (Sect. 4.2).
func (c *Client) execSequential(now time.Time, plans []FilePlan) time.Time {
	s := c.ensureStorage(now)
	conn := s.Conn()
	for _, plan := range plans {
		conn.Wait(now)
		conn.Idle(c.Profile.PerFileClientOverhead)
		for _, u := range plan.Units {
			_, acked := s.Upload(u.Bytes, 120)
			_ = acked
			now = conn.FreeAt()
		}
		if len(plan.Units) == 0 {
			// Fully deduplicated file: metadata-only update.
			now = c.controlRPC(now, ManifestBytes(1))
			continue
		}
		// Per-file metadata update on the control channel.
		for i := 0; i < c.Profile.ControlRPCsPerFile; i++ {
			now = c.controlRPC(now, 0)
		}
	}
	return now
}

// execPerFile opens a fresh TCP+TLS storage connection per file
// (Google Drive), optionally with fresh per-file control connections
// too (Cloud Drive: extra=true, 3 control connections per file
// operation — 400 SYNs for 100 files, Fig. 3).
func (c *Client) execPerFile(now time.Time, plans []FilePlan, extra bool) time.Time {
	p := c.Profile
	for _, plan := range plans {
		if extra {
			for i := 0; i < p.ControlRPCsPerFile; i++ {
				now = c.freshControlRPC(now)
			}
		} else {
			for i := 0; i < p.ControlRPCsPerFile; i++ {
				now = c.controlRPC(now, 0)
			}
		}
		if len(plan.Units) == 0 {
			continue
		}
		s := c.openStorage(now.Add(p.PerFileClientOverhead))
		conn := s.Conn()
		for _, u := range plan.Units {
			_, acked := s.Upload(u.Bytes, 120)
			if u.Commit {
				now = acked
			} else {
				now = conn.FreeAt()
			}
		}
		now = s.Close()
	}
	return now
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
