package client

import (
	"testing"

	"repro/internal/dedup"
	"repro/internal/goldenfile"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestGoldenUploadPlans pins the planner end to end for every profile
// over descriptor-backed content: unit counts, wire bytes and dedup
// savings for a mixed batch (binary stress files, compressible text, a
// fake JPEG that defeats smart compression, and an exact replica that
// must dedup where the capability exists). Values live in
// testdata/golden_plans.json, regenerated for the descriptor pipeline
// by scripts/regen-golden.sh; within an engine generation they must
// reproduce bit for bit across lazy and materialised planning paths.
func TestGoldenUploadPlans(t *testing.T) {
	type plannedFile struct {
		Path         string
		FileBytes    int64
		Units        []int64 // wire bytes per transfer unit
		DedupSkipped int64
	}
	type profilePlans struct {
		Service string
		Files   []plannedFile
	}

	rng := sim.NewRNG(1234)
	contents := []struct {
		path string
		c    workload.Content
	}{
		{"bin-100k.bin", workload.DescriptorContent(workload.Describe(rng.Fork(1), workload.Binary, 100_000))},
		{"text-1m.txt", workload.DescriptorContent(workload.Describe(rng.Fork(2), workload.Text, 1<<20))},
		{"fake-5m.jpg", workload.DescriptorContent(workload.Describe(rng.Fork(3), workload.FakeJPEG, 5<<20))},
		// Exact replica of the first file: dedup-capable profiles skip it.
		{"replica.bin", workload.DescriptorContent(workload.Describe(rng.Fork(1), workload.Binary, 100_000))},
	}

	var got []profilePlans
	for _, p := range Profiles() {
		pl := newPlanner(p, dedup.NewStore())
		pp := profilePlans{Service: p.Service}
		for _, f := range contents {
			plan := pl.PlanFile(f.path, f.c)
			pf := plannedFile{Path: f.path, FileBytes: plan.FileBytes, DedupSkipped: plan.DedupSkipped}
			for _, u := range plan.Units {
				pf.Units = append(pf.Units, u.Bytes)
			}
			pp.Files = append(pp.Files, pf)
		}
		got = append(got, pp)
	}
	goldenfile.Check(t, "testdata/golden_plans.json", got)
}
