package client

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/dnssim"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/whois"
	"repro/internal/workload"
)

// rig is a complete single-service testbed.
type rig struct {
	clock  *sim.Clock
	sched  *sim.Scheduler
	net    *netem.Network
	dns    *dnssim.System
	reg    *whois.Registry
	cap    *trace.Capture
	deploy *cloud.Deployment
	client *Client
	folder *workload.Folder
	rng    *sim.RNG
}

func newRig(t *testing.T, p Profile, seed int64) *rig {
	t.Helper()
	rng := sim.NewRNG(seed)
	clock := sim.NewClock()
	n := netem.New(clock, rng.Fork(1))
	dns := dnssim.NewSystem(rng.Fork(2))
	reg := whois.NewRegistry()
	deploy := cloud.Build(n, dns, reg, cloud.SpecFor(p.Service))
	host := n.AddHost(&netem.Host{
		Name: "testpc.utwente.sim", Addr: "130.89.0.1",
		Coord: geo.Coord{Lat: 52.24, Lon: 6.85}, // Enschede
	})
	cap := trace.NewCapture()
	c := New(Config{
		Profile: p, Deploy: deploy, Net: n, Host: host,
		Cap: cap, DNS: dns, RNG: rng.Fork(3),
	})
	return &rig{
		clock: clock, sched: sim.NewScheduler(clock), net: n, dns: dns,
		reg: reg, cap: cap, deploy: deploy, client: c,
		folder: workload.NewFolder(), rng: rng.Fork(4),
	}
}

// storageFilter selects flows towards the service's client-facing
// storage name.
func (r *rig) storageFilter() trace.FlowFilter {
	role := cloud.Storage
	if r.deploy.Spec.EdgeNetwork {
		role = cloud.Edge
	}
	name := r.deploy.DNSName(role)
	return func(f trace.FlowInfo) bool { return f.ServerName == name }
}

func TestNewRejectsMismatchedDeployment(t *testing.T) {
	r := newRig(t, Dropbox(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{Profile: SkyDrive(), Deploy: r.deploy, Net: r.net,
		Host: r.client.Host, Cap: r.cap, DNS: r.dns, RNG: r.rng})
}

func TestLoginVolumes(t *testing.T) {
	// Fig. 1 login phase: SkyDrive needs ~150 kB (13 Live servers),
	// about 4x more than the others (~35-40 kB).
	loginBytes := func(p Profile) int64 {
		r := newRig(t, p, 2)
		r.client.Login(sim.Epoch)
		return r.cap.TotalWireBytes(trace.AllFlows)
	}
	sky := loginBytes(SkyDrive())
	drop := loginBytes(Dropbox())
	if sky < 120_000 || sky > 220_000 {
		t.Fatalf("SkyDrive login = %d B, want ~150 kB", sky)
	}
	if drop < 20_000 || drop > 70_000 {
		t.Fatalf("Dropbox login = %d B, want ~35 kB", drop)
	}
	if sky < 3*drop {
		t.Fatalf("SkyDrive login (%d) should be ~4x Dropbox (%d)", sky, drop)
	}
}

func TestIdlePollingRates(t *testing.T) {
	// Fig. 1 idle phase: Cloud Drive ~6 kb/s (new HTTPS conn per
	// 15 s poll); everyone else well under 100 b/s.
	idleRate := func(p Profile) float64 {
		r := newRig(t, p, 3)
		done := r.client.Login(sim.Epoch)
		r.client.InstallPoller(r.sched)
		preIdle := r.cap.TotalWireBytes(trace.AllFlows)
		horizon := done.Add(16 * time.Minute)
		r.sched.RunUntil(horizon)
		idleBytes := r.cap.TotalWireBytes(trace.AllFlows) - preIdle
		return float64(idleBytes*8) / (16 * 60) // bits per second
	}
	rates := map[string]float64{}
	for _, p := range Profiles() {
		rates[p.Service] = idleRate(p)
	}
	if r := rates["clouddrive"]; r < 3000 || r > 12000 {
		t.Fatalf("CloudDrive idle = %.0f b/s, want ~6000", r)
	}
	for _, svc := range []string{"dropbox", "skydrive", "wuala", "googledrive"} {
		if r := rates[svc]; r > 400 {
			t.Fatalf("%s idle = %.0f b/s, want well under CloudDrive", svc, r)
		}
	}
	if rates["wuala"] > rates["clouddrive"]/10 {
		t.Fatal("Wuala should be at least an order of magnitude quieter than Cloud Drive")
	}
}

// syncBatch logs in, materializes a batch and syncs it, returning the
// rig and the result.
func syncBatch(t *testing.T, p Profile, b workload.Batch, seed int64) (*rig, SyncResult) {
	t.Helper()
	r := newRig(t, p, seed)
	done := r.client.Login(sim.Epoch)
	t0 := done.Add(time.Minute)
	b.Materialize(r.folder, r.rng, t0, "set")
	res := r.client.SyncChanges(r.folder, sim.Epoch)
	r.clock.AdvanceTo(res.Done)
	return r, res
}

func TestCloudDriveOpensFourConnectionsPerFile(t *testing.T) {
	// Fig. 3: storing 100 files opens ~400 connections for Cloud
	// Drive (3 control + 1 storage per file) vs ~100 for Google
	// Drive (1 per file).
	r, _ := syncBatch(t, CloudDrive(), workload.Batch{Count: 20, Size: 10_000, Kind: workload.Binary}, 4)
	syns := r.cap.ConnectionCount(trace.AllFlows)
	// 20 files -> 80 conns, plus login (2) + storage-less overheads.
	if syns < 80 || syns > 90 {
		t.Fatalf("CloudDrive connections = %d, want ~82 for 20 files", syns)
	}

	r2, _ := syncBatch(t, GoogleDrive(), workload.Batch{Count: 20, Size: 10_000, Kind: workload.Binary}, 4)
	syns2 := r2.cap.ConnectionCount(trace.AllFlows)
	if syns2 < 20 || syns2 > 30 {
		t.Fatalf("GoogleDrive connections = %d, want ~22 for 20 files", syns2)
	}
}

func TestDropboxReusesConnections(t *testing.T) {
	r, _ := syncBatch(t, Dropbox(), workload.Batch{Count: 20, Size: 10_000, Kind: workload.Binary}, 5)
	// Login (2 control + 1 notify) + 1 storage conn: far fewer than
	// one per file.
	if syns := r.cap.ConnectionCount(trace.AllFlows); syns > 8 {
		t.Fatalf("Dropbox connections = %d, want a handful", syns)
	}
}

func TestSequentialClientsShowBursts(t *testing.T) {
	// Sect. 4.2: SkyDrive/Wuala wait for app-layer acks between
	// files; burst count tracks file count.
	r, _ := syncBatch(t, Wuala(), workload.Batch{Count: 10, Size: 50_000, Kind: workload.Binary}, 6)
	filter := r.storageFilter()
	host := r.deploy.HostsByRole(cloud.Storage)[0]
	rtt := r.net.BaseRTT(r.client.Host, host)
	bursts := r.cap.Bursts(filter, rtt+rtt/3)
	if len(bursts) < 8 {
		t.Fatalf("Wuala bursts = %d for 10 files, want ~10 (sequential acks)", len(bursts))
	}
}

func TestDedupAvoidsSecondUpload(t *testing.T) {
	// Sect. 4.3: a replica with a different name must not be
	// re-uploaded by Dropbox/Wuala.
	for _, p := range []Profile{Dropbox(), Wuala()} {
		r := newRig(t, p, 7)
		done := r.client.Login(sim.Epoch)
		t0 := done.Add(time.Minute)
		data := workload.Generate(r.rng, workload.Binary, 200_000)
		r.folder.Create(t0, "orig.bin", data)
		res1 := r.client.SyncChanges(r.folder, sim.Epoch)
		if res1.UploadBytes() < 190_000 {
			t.Fatalf("%s: first upload = %d", p.Name, res1.UploadBytes())
		}
		r.folder.Copy(res1.Done.Add(time.Minute), "orig.bin", "replica.bin")
		res2 := r.client.SyncChanges(r.folder, t0)
		if res2.UploadBytes() > 1000 {
			t.Fatalf("%s: replica re-uploaded %d bytes", p.Name, res2.UploadBytes())
		}
		if res2.DedupSkipped() < 190_000 {
			t.Fatalf("%s: DedupSkipped = %d", p.Name, res2.DedupSkipped())
		}
	}
}

func TestDedupSurvivesDeleteRestore(t *testing.T) {
	// Sect. 4.3 step iv.
	p := Dropbox()
	r := newRig(t, p, 8)
	done := r.client.Login(sim.Epoch)
	t0 := done.Add(time.Minute)
	data := workload.Generate(r.rng, workload.Binary, 150_000)
	r.folder.Create(t0, "a.bin", data)
	res1 := r.client.SyncChanges(r.folder, sim.Epoch)
	t1 := res1.Done.Add(time.Minute)
	r.folder.Delete(t1, "a.bin")
	res2 := r.client.SyncChanges(r.folder, t0)
	t2 := res2.Done.Add(time.Minute)
	r.folder.Restore(t2, "a.bin")
	res3 := r.client.SyncChanges(r.folder, t1)
	if res3.UploadBytes() > 1000 {
		t.Fatalf("restore re-uploaded %d bytes", res3.UploadBytes())
	}
}

func TestNoDedupServicesReupload(t *testing.T) {
	// "All other services have to upload the same data even if it is
	// readily available at the storage server."
	p := GoogleDrive()
	r := newRig(t, p, 9)
	done := r.client.Login(sim.Epoch)
	t0 := done.Add(time.Minute)
	data := workload.Generate(r.rng, workload.Binary, 200_000)
	r.folder.Create(t0, "orig.bin", data)
	res1 := r.client.SyncChanges(r.folder, sim.Epoch)
	r.folder.Copy(res1.Done.Add(time.Minute), "orig.bin", "replica.bin")
	res2 := r.client.SyncChanges(r.folder, t0)
	if res2.UploadBytes() < 190_000 {
		t.Fatalf("Google Drive should re-upload replicas, sent %d", res2.UploadBytes())
	}
}

func TestDeltaEncodingAppend(t *testing.T) {
	// Sect. 4.4 / Fig. 4: only Dropbox transmits just the modified
	// portion after an append.
	for _, tc := range []struct {
		p        Profile
		maxBytes int64 // acceptable upload for a 100 kB append to 1 MB
	}{
		{Dropbox(), 150_000},
		{SkyDrive(), 1 << 21}, // re-uploads everything
	} {
		r := newRig(t, tc.p, 10)
		done := r.client.Login(sim.Epoch)
		t0 := done.Add(time.Minute)
		base := workload.Generate(r.rng, workload.Binary, 1<<20)
		r.folder.Create(t0, "doc.bin", base)
		res1 := r.client.SyncChanges(r.folder, sim.Epoch)
		t1 := res1.Done.Add(time.Minute)
		r.folder.Append(t1, "doc.bin", workload.Generate(r.rng, workload.Binary, 100_000))
		res2 := r.client.SyncChanges(r.folder, t0)
		up := res2.UploadBytes()
		if tc.p.DeltaEncoding {
			if up > tc.maxBytes || up < 90_000 {
				t.Fatalf("%s append upload = %d, want ~100 kB", tc.p.Name, up)
			}
		} else if up < 1<<20 {
			t.Fatalf("%s append upload = %d, want full re-upload", tc.p.Name, up)
		}
	}
}

func TestStartupDelayOrdering(t *testing.T) {
	// Fig. 6a: Dropbox fastest on single files; SkyDrive >= 9 s and
	// > 20 s at 100 files.
	startup := func(p Profile, count int) time.Duration {
		r := newRig(t, p, 11)
		done := r.client.Login(sim.Epoch)
		t0 := done.Add(time.Minute)
		workload.Batch{Count: count, Size: 10_000, Kind: workload.Binary}.
			Materialize(r.folder, r.rng, t0, "set")
		res := r.client.SyncChanges(r.folder, sim.Epoch)
		return res.Start.Sub(t0)
	}
	dropbox1 := startup(Dropbox(), 1)
	sky1 := startup(SkyDrive(), 1)
	sky100 := startup(SkyDrive(), 100)
	wuala1 := startup(Wuala(), 1)
	wuala100 := startup(Wuala(), 100)

	if dropbox1 > 2*time.Second {
		t.Fatalf("Dropbox single-file startup = %v", dropbox1)
	}
	if sky1 < 8*time.Second {
		t.Fatalf("SkyDrive startup = %v, want >= ~9 s", sky1)
	}
	if sky100 < 18*time.Second {
		t.Fatalf("SkyDrive 100-file startup = %v, want > 20 s", sky100)
	}
	if wuala100 < wuala1+wuala1/2 {
		t.Fatalf("Wuala 100-file startup %v should be ~2x single %v", wuala100, wuala1)
	}
}

func TestCompletionTimeOrderingFor100Files(t *testing.T) {
	// Fig. 6b rightmost bars: Dropbox wins by a factor of ~4 over
	// Google Drive; Cloud Drive is the slowest.
	completion := func(p Profile) time.Duration {
		r := newRig(t, p, 12)
		done := r.client.Login(sim.Epoch)
		t0 := done.Add(time.Minute)
		workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}.
			Materialize(r.folder, r.rng, t0, "set")
		res := r.client.SyncChanges(r.folder, sim.Epoch)
		// Window to the experiment: for the edge network, login and
		// control traffic share the storage server name.
		win := r.cap.Window(t0, res.Done.Add(time.Hour))
		filter := r.storageFilter()
		first, ok1 := win.FirstPayloadTime(filter)
		last, ok2 := win.LastPayloadTime(filter)
		if !ok1 || !ok2 {
			t.Fatalf("%s: no storage traffic", p.Name)
		}
		return last.Sub(first)
	}
	drop := completion(Dropbox())
	gdrive := completion(GoogleDrive())
	clouddrive := completion(CloudDrive())

	if gdrive < 2*drop {
		t.Fatalf("Google Drive (%v) should be several times slower than Dropbox (%v)", gdrive, drop)
	}
	if clouddrive < gdrive {
		t.Fatalf("Cloud Drive (%v) should be slowest (GDrive %v)", clouddrive, gdrive)
	}
}

func TestSingleFileCompletionFavoursNearbyDCs(t *testing.T) {
	// Fig. 6b leftmost: for single files RTT dominates; Wuala and
	// Google Drive (EU presence) beat SkyDrive (US).
	completion := func(p Profile) time.Duration {
		r := newRig(t, p, 13)
		done := r.client.Login(sim.Epoch)
		t0 := done.Add(time.Minute)
		workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}.
			Materialize(r.folder, r.rng, t0, "set")
		r.client.SyncChanges(r.folder, sim.Epoch)
		filter := r.storageFilter()
		first, _ := r.cap.FirstPayloadTime(filter)
		last, _ := r.cap.LastPayloadTime(filter)
		return last.Sub(first)
	}
	wuala := completion(Wuala())
	sky := completion(SkyDrive())
	if sky < 2*wuala {
		t.Fatalf("SkyDrive 1MB (%v) should be far slower than Wuala (%v)", sky, wuala)
	}
	if sky < 2500*time.Millisecond {
		t.Fatalf("SkyDrive 1MB completion = %v, paper reports ~4 s", sky)
	}
	if wuala > time.Second {
		t.Fatalf("Wuala 1MB completion = %v, paper reports ~0.3 s", wuala)
	}
}

func TestProfileLookups(t *testing.T) {
	if len(Profiles()) != 5 {
		t.Fatal("five services")
	}
	if _, ok := ProfileFor("dropbox"); !ok {
		t.Fatal("ProfileFor dropbox")
	}
	if _, ok := ProfileFor("nope"); ok {
		t.Fatal("ProfileFor unknown")
	}
	if Dropbox().NotifyTLS().Enabled {
		t.Fatal("Dropbox notifications are plain HTTP")
	}
	if !Wuala().NotifyTLS().Enabled {
		t.Fatal("Wuala polls over HTTPS")
	}
}

func TestChunkModeStrings(t *testing.T) {
	if NoChunking.String() != "no" || FixedChunks.String() != "fixed" || VariableChunks.String() != "var." {
		t.Fatal("Table 1 vocabulary")
	}
	if PersistentBundled.String() == "?" || PerFileConnExtra.String() == "?" {
		t.Fatal("strategy names")
	}
}

func TestRenameIsMetadataOnlyForDedupServices(t *testing.T) {
	// A rename shows up as delete+create; Dropbox's deduplication
	// recognizes the content and commits pure metadata, while a
	// service without dedup re-uploads the file.
	renameCost := func(p Profile) int64 {
		r := newRig(t, p, 120)
		done := r.client.Login(sim.Epoch)
		t0 := done.Add(time.Minute)
		data := workload.Generate(r.rng, workload.Binary, 300_000)
		r.folder.Create(t0, "a/file.bin", data)
		res := r.client.SyncChanges(r.folder, sim.Epoch)
		t1 := res.Done.Add(time.Minute)
		r.folder.Rename(t1, "a/file.bin", "b/file.bin")
		res2 := r.client.SyncChanges(r.folder, t0)
		return res2.UploadBytes()
	}
	if got := renameCost(Dropbox()); got > 1000 {
		t.Fatalf("dropbox rename uploaded %d bytes, want metadata only", got)
	}
	if got := renameCost(GoogleDrive()); got < 300_000 {
		t.Fatalf("googledrive rename uploaded %d bytes, want full re-upload", got)
	}
}
