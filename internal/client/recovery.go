package client

import (
	"time"

	"repro/internal/workload"
)

// RecoveryResult reports an upload driven through failures.
type RecoveryResult struct {
	// Completed reports whether every unit eventually landed; false
	// means the retry cap was hit with no forward progress.
	Completed bool
	// Done is when the upload finally completed (or gave up).
	Done time.Time
	// Retries counts interrupted transfer units that had to be
	// retransmitted from the start of the unit.
	Retries int
	// CleanBytes is the storage payload one failure-free pass would
	// have uploaded; everything beyond it in the trace is waste.
	CleanBytes int64
}

// maxUnitRetries caps retransmissions of one unit so a failure
// interval shorter than a unit's transfer time terminates instead of
// looping forever; hitting the cap means the transfer cannot make
// progress (the no-chunking pathology the Sect. 4.1 study exposes).
const maxUnitRetries = 8

// RecoveryUpload synchronizes the folder's pending changes while the
// storage path fails every `every` of wall-clock time (the connection
// is reset mid-transfer; the client re-dials and retransmits the
// interrupted unit from its beginning).
//
// The transfer unit is the chunk, so this is the paper's Sect. 4.1
// argument made quantitative: a chunking client loses at most one
// chunk of progress per failure, while a client that uploads files as
// single objects (Cloud Drive) restarts whole files and may never
// finish.
func (c *Client) RecoveryUpload(folder *workload.Folder, since time.Time, every time.Duration) RecoveryResult {
	if c.control == nil {
		panic("client: RecoveryUpload before Login")
	}
	if every <= 0 {
		panic("client: non-positive failure interval")
	}
	changes := folder.ChangesSince(since)
	if len(changes) == 0 {
		return RecoveryResult{Completed: true}
	}
	start := changes[0].Time.Add(c.Profile.DetectBase)

	var res RecoveryResult
	for _, ch := range changes {
		f, ok := folder.Get(ch.Path)
		if !ok {
			continue
		}
		plan := c.plan.PlanFile(ch.Path, f.Content())
		for _, u := range plan.Units {
			res.CleanBytes += u.Bytes
		}

		s := c.openStorage(start)
		conn := s.Conn()
		nextFail := start.Add(every)
		for _, u := range plan.Units {
			retries := 0
			for {
				conn.Wait(start)
				sent, cut, last := conn.SendUntil(u.Bytes+perUnitFraming, nextFail)
				_ = sent
				if !cut {
					// Unit landed; wait the commit ack.
					start = last.Add(conn.RTT() / 2).Add(conn.Server().ProcDelay).Add(conn.RTT() / 2)
					break
				}
				// Mid-unit failure: reset, re-dial, retransmit
				// the unit from scratch.
				conn.Abort()
				res.Retries++
				retries++
				nextFail = last.Add(every)
				if retries >= maxUnitRetries {
					// No forward progress is possible.
					res.Done = last
					return res
				}
				s = c.openStorage(last)
				conn = s.Conn()
				start = conn.EstablishedAt()
			}
		}
		s.Close()
	}
	res.Completed = true
	res.Done = start
	return res
}
