package client

import (
	"bytes"
	"testing"

	"repro/internal/compressor"
	"repro/internal/dedup"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newTestPlanner(p Profile) *planner {
	return newPlanner(p, dedup.NewStore())
}

func TestPlanFileNoCapabilities(t *testing.T) {
	p := CloudDrive() // no chunking, no compression, no dedup
	pl := newTestPlanner(p)
	data := workload.Generate(sim.NewRNG(1), workload.Binary, 100_000)
	plan := planRaw(pl, "a.bin", data)
	if len(plan.Units) != 1 {
		t.Fatalf("units = %d, want 1 (no chunking)", len(plan.Units))
	}
	if plan.Units[0].Bytes != 100_000 {
		t.Fatalf("bytes = %d, want raw size", plan.Units[0].Bytes)
	}
	if plan.Units[0].Commit {
		t.Fatal("no chunk commit for Cloud Drive")
	}
	if plan.DedupSkipped != 0 {
		t.Fatal("no dedup for Cloud Drive")
	}
}

func TestPlanFileChunksLargeFiles(t *testing.T) {
	p := Dropbox()
	pl := newTestPlanner(p)
	data := workload.Generate(sim.NewRNG(2), workload.Binary, 9<<20) // 9 MB -> 3 chunks of 4/4/1
	plan := planRaw(pl, "big.bin", data)
	if len(plan.Units) != 3 {
		t.Fatalf("units = %d, want 3 chunks", len(plan.Units))
	}
	if plan.Units[0].RawBytes != 4<<20 || plan.Units[2].RawBytes != 1<<20 {
		t.Fatalf("raw sizes: %d, %d", plan.Units[0].RawBytes, plan.Units[2].RawBytes)
	}
	for _, u := range plan.Units {
		if !u.Commit {
			t.Fatal("Dropbox chunks carry commits")
		}
		// Compressed random data is slightly larger than raw.
		if u.Bytes < u.RawBytes {
			t.Fatalf("random chunk shrank: %d -> %d", u.RawBytes, u.Bytes)
		}
	}
}

func TestPlanFileCompressionShrinksText(t *testing.T) {
	p := Dropbox()
	pl := newTestPlanner(p)
	data := workload.Generate(sim.NewRNG(3), workload.Text, 500_000)
	plan := planRaw(pl, "t.txt", data)
	if got := plan.UploadBytes(); got > 250_000 {
		t.Fatalf("compressed text upload = %d, want < half", got)
	}
}

func TestPlanFileDedupSecondCopy(t *testing.T) {
	p := Dropbox()
	pl := newTestPlanner(p)
	data := workload.Generate(sim.NewRNG(4), workload.Binary, 300_000)
	first := planRaw(pl, "one.bin", data)
	second := planRaw(pl, "two.bin", append([]byte{}, data...))
	if first.UploadBytes() == 0 {
		t.Fatal("first upload empty")
	}
	if len(second.Units) != 0 || second.DedupSkipped != 300_000 {
		t.Fatalf("replica not deduplicated: %+v", second)
	}
}

func TestPlanFileDedupAfterForget(t *testing.T) {
	// ForgetFile drops client state but the store keeps chunks: a
	// restored file dedups (Sect. 4.3 step iv).
	p := Wuala()
	pl := newTestPlanner(p)
	data := workload.Generate(sim.NewRNG(5), workload.Binary, 200_000)
	planRaw(pl, "w.bin", data)
	pl.ForgetFile("w.bin")
	again := planRaw(pl, "w.bin", data)
	if len(again.Units) != 0 {
		t.Fatalf("restore re-uploads %d units", len(again.Units))
	}
}

func TestPlanFileEncryptionStillDedups(t *testing.T) {
	// Convergent encryption: the ciphertext hash of equal chunks is
	// equal, so the replica dedups even though the store only ever
	// sees ciphertext.
	p := Wuala()
	pl := newTestPlanner(p)
	data := workload.Generate(sim.NewRNG(6), workload.Binary, 150_000)
	planRaw(pl, "a.bin", data)
	rep := planRaw(pl, "b.bin", append([]byte{}, data...))
	if len(rep.Units) != 0 {
		t.Fatal("encrypted replica not deduplicated")
	}
	// And the store must NOT contain the plaintext hash.
	if pl.store.Has(dedup.HashBytes(data)) {
		t.Fatal("store holds plaintext content address — encryption bypassed")
	}
}

func TestPlanFileDeltaOnModification(t *testing.T) {
	p := Dropbox()
	pl := newTestPlanner(p)
	rng := sim.NewRNG(7)
	base := workload.Generate(rng, workload.Binary, 1<<20)
	planRaw(pl, "d.bin", base)
	modified := append(append([]byte{}, base...), workload.Generate(rng, workload.Binary, 50_000)...)
	plan := planRaw(pl, "d.bin", modified)
	up := plan.UploadBytes()
	if up < 45_000 || up > 120_000 {
		t.Fatalf("delta upload = %d, want ~50 kB", up)
	}
}

func TestPlanFileNoDeltaWithoutPriorRevision(t *testing.T) {
	p := Dropbox()
	pl := newTestPlanner(p)
	data := workload.Generate(sim.NewRNG(8), workload.Binary, 500_000)
	plan := planRaw(pl, "new.bin", data)
	if plan.UploadBytes() < 500_000 {
		t.Fatalf("first revision must travel whole: %d", plan.UploadBytes())
	}
}

func TestPlanFileEmpty(t *testing.T) {
	for _, p := range []Profile{Dropbox(), CloudDrive(), Wuala()} {
		pl := newTestPlanner(p)
		plan := planRaw(pl, "empty.bin", nil)
		if len(plan.Units) != 0 || plan.FileBytes != 0 {
			t.Fatalf("%s: empty file plan: %+v", p.Name, plan)
		}
	}
}

func TestPlanFileDeltaSurvivesCompression(t *testing.T) {
	// Delta literals get compressed: appending compressible text to
	// a text file uploads even less than the appended size.
	p := Dropbox()
	pl := newTestPlanner(p)
	rng := sim.NewRNG(9)
	base := workload.Generate(rng, workload.Text, 1<<20)
	planRaw(pl, "t.txt", base)
	add := workload.Generate(rng, workload.Text, 100_000)
	plan := planRaw(pl, "t.txt", append(append([]byte{}, base...), add...))
	if got := plan.UploadBytes(); got > 60_000 {
		t.Fatalf("compressed delta = %d, want well under 100 kB", got)
	}
}

func TestManifestBytesScalesWithChunks(t *testing.T) {
	if ManifestBytes(0) != 0 {
		t.Fatal("zero chunks")
	}
	if ManifestBytes(10) <= ManifestBytes(1) {
		t.Fatal("manifest must scale")
	}
}

func TestUnitBytesDeltaVsFull(t *testing.T) {
	// Directly exercise unitBytes' two paths.
	p := Dropbox()
	p.Compression = compressor.None
	pl := newTestPlanner(p)
	rng := sim.NewRNG(10)
	base := workload.Generate(rng, workload.Binary, 256<<10)
	planRaw(pl, "x.bin", base)
	// Identical re-write: delta should be nearly free.
	plan := planRaw(pl, "x.bin", append([]byte{}, base...))
	if len(plan.Units) != 0 && plan.UploadBytes() > 10_000 {
		t.Fatalf("identical rewrite uploaded %d", plan.UploadBytes())
	}
	if !bytes.Equal(base, base) {
		t.Fatal("unreachable")
	}
}

// planRaw plans eager bytes — the pre-descriptor test entry point.
func planRaw(pl *planner, path string, data []byte) FilePlan {
	return pl.PlanFile(path, workload.BytesContent(data))
}
