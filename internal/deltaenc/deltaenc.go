// Package deltaenc implements rsync-style delta encoding (Sect. 4.4):
// given the signature of an old revision, compute a delta that encodes
// a new revision as copy-from-old and literal operations, so only the
// modified portions of a file travel to the server.
//
// The implementation follows the classic rsync design: the old data is
// summarized as per-block (weak rolling checksum, strong hash) pairs;
// the encoder slides a window over the new data, using the rolling
// checksum to find candidate block matches in O(1) per byte and the
// strong hash to confirm them. Dropbox is the only service in the
// study that implements this; it applies it per 4 MB chunk, which is
// why edits that shift content across chunk boundaries inflate its
// upload volume (Fig. 4, right).
package deltaenc

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
)

// DefaultBlockSize is the signature block size. Real rsync adapts it
// to file size; a fixed 2 KiB keeps deltas fine-grained at the file
// sizes the paper exercises (100 kB – 10 MB).
const DefaultBlockSize = 2048

// strongLen truncates the strong hash in signatures; 16 bytes is far
// beyond collision risk at these scales and halves signature volume.
const strongLen = 16

// BlockSig is the signature of one block of the old revision.
type BlockSig struct {
	Index  int
	Weak   uint32
	Strong [strongLen]byte
}

// Signature summarizes one revision of a file.
type Signature struct {
	BlockSize int
	Total     int64 // length of the summarized data
	Blocks    []BlockSig
}

// WireSize returns the bytes needed to transmit the signature
// (per-block weak+strong plus small framing). Clients keep signatures
// locally, so this usually does not travel; it is exposed for
// protocol-cost studies.
func (s *Signature) WireSize() int64 {
	return int64(len(s.Blocks))*(4+strongLen) + 16
}

// Sign computes the signature of data.
func Sign(data []byte, blockSize int) *Signature {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	sig := &Signature{BlockSize: blockSize, Total: int64(len(data))}
	for off, idx := 0, 0; off < len(data); off, idx = off+blockSize, idx+1 {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		block := data[off:end]
		var strong [strongLen]byte
		sum := sha256.Sum256(block)
		copy(strong[:], sum[:strongLen])
		sig.Blocks = append(sig.Blocks, BlockSig{
			Index:  idx,
			Weak:   weakSum(block),
			Strong: strong,
		})
	}
	return sig
}

// Op is one delta operation: either a copy of a whole old block or a
// run of literal bytes.
type Op struct {
	// Copy: when true, the op copies old block BlockIndex.
	Copy       bool
	BlockIndex int
	// Literal holds the raw bytes for non-copy ops.
	Literal []byte
}

// Delta encodes a new revision against an old signature.
type Delta struct {
	BlockSize int
	OldTotal  int64
	Ops       []Op
}

// LiteralBytes returns how many raw bytes the delta carries — the
// dominant term of the upload volume for a modified file.
func (d *Delta) LiteralBytes() int64 {
	var n int64
	for _, op := range d.Ops {
		if !op.Copy {
			n += int64(len(op.Literal))
		}
	}
	return n
}

// CopyOps returns the number of copy operations.
func (d *Delta) CopyOps() int {
	n := 0
	for _, op := range d.Ops {
		if op.Copy {
			n++
		}
	}
	return n
}

// WireSize returns the transmitted size of the delta: literal bytes
// plus per-op framing (a copy op costs ~8 bytes, a literal op its
// length plus ~8 bytes of framing).
func (d *Delta) WireSize() int64 {
	var n int64 = 16
	for _, op := range d.Ops {
		if op.Copy {
			n += 8
		} else {
			n += 8 + int64(len(op.Literal))
		}
	}
	return n
}

// Compute builds the delta that transforms the data summarized by sig
// into target.
func Compute(sig *Signature, target []byte) *Delta {
	d := &Delta{BlockSize: sig.BlockSize, OldTotal: sig.Total}
	if len(target) == 0 {
		return d
	}
	// Index old blocks by weak sum for O(1) candidate lookup.
	byWeak := make(map[uint32][]BlockSig, len(sig.Blocks))
	for _, b := range sig.Blocks {
		byWeak[b.Weak] = append(byWeak[b.Weak], b)
	}

	bs := sig.BlockSize
	var litStart int
	flushLiteral := func(end int) {
		if end > litStart {
			lit := make([]byte, end-litStart)
			copy(lit, target[litStart:end])
			d.Ops = append(d.Ops, Op{Literal: lit})
		}
	}

	i := 0
	var w rolling
	windowValid := false
	for i+bs <= len(target) {
		if !windowValid {
			w.init(target[i : i+bs])
			windowValid = true
		}
		if cands, ok := byWeak[w.sum()]; ok {
			window := target[i : i+bs]
			sum := sha256.Sum256(window)
			matched := false
			for _, c := range cands {
				if bytes.Equal(sum[:strongLen], c.Strong[:]) {
					flushLiteral(i)
					d.Ops = append(d.Ops, Op{Copy: true, BlockIndex: c.Index})
					i += bs
					litStart = i
					windowValid = false
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		// No match: slide one byte, unless the window already
		// touches the end of the target (no byte to roll in).
		if i+bs == len(target) {
			break
		}
		w.roll(target[i], target[i+bs])
		i++
	}
	flushLiteral(len(target))
	return d
}

// Patch reconstructs the new revision from the old data and a delta.
func Patch(old []byte, d *Delta) ([]byte, error) {
	if int64(len(old)) != d.OldTotal {
		return nil, fmt.Errorf("deltaenc: old data is %d bytes, delta expects %d", len(old), d.OldTotal)
	}
	var out []byte
	for _, op := range d.Ops {
		if !op.Copy {
			out = append(out, op.Literal...)
			continue
		}
		start := op.BlockIndex * d.BlockSize
		if start < 0 || start >= len(old) {
			return nil, errors.New("deltaenc: copy op out of range")
		}
		end := start + d.BlockSize
		if end > len(old) {
			end = len(old)
		}
		out = append(out, old[start:end]...)
	}
	return out, nil
}

// rolling is the rsync weak checksum (a variant of Adler-32) with O(1)
// slide.
type rolling struct {
	a, b uint32
	n    uint32
}

func (r *rolling) init(block []byte) {
	// b = sum over i of (n-i)*block[i], accumulated multiply-free:
	// adding the running a after each byte gives every byte one more
	// contribution per remaining position.
	var a, b uint32
	for _, c := range block {
		a += uint32(c)
		b += a
	}
	r.a, r.b = a, b
	r.n = uint32(len(block))
}

func (r *rolling) roll(out, in byte) {
	r.a += uint32(in) - uint32(out)
	r.b += r.a - r.n*uint32(out)
}

func (r *rolling) sum() uint32 { return r.a&0xffff | r.b<<16 }

// weakSum computes the checksum of a whole block (no rolling).
func weakSum(block []byte) uint32 {
	var r rolling
	r.init(block)
	return r.sum()
}
