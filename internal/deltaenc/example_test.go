package deltaenc_test

import (
	"bytes"
	"fmt"

	"repro/internal/deltaenc"
)

// Example shows the full delta-encoding cycle: sign the old revision,
// compute a delta against the new one, and patch the old data back
// into the new. Only the modified bytes travel.
func Example() {
	old := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KiB
	new := append(append([]byte{}, old...), []byte("appended tail")...)

	sig := deltaenc.Sign(old, 2048)
	delta := deltaenc.Compute(sig, new)
	restored, err := deltaenc.Patch(old, delta)
	if err != nil {
		panic(err)
	}

	fmt.Println("round trip ok:", bytes.Equal(restored, new))
	fmt.Println("copy ops:", delta.CopyOps())
	fmt.Println("literal bytes:", delta.LiteralBytes())
	// Output:
	// round trip ok: true
	// copy ops: 8
	// literal bytes: 13
}
