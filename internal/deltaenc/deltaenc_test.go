package deltaenc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func roundTrip(t *testing.T, old, new []byte, blockSize int) *Delta {
	t.Helper()
	sig := Sign(old, blockSize)
	d := Compute(sig, new)
	got, err := Patch(old, d)
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if !bytes.Equal(got, new) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(new))
	}
	return d
}

func TestIdenticalFilesProduceNoLiterals(t *testing.T) {
	rng := sim.NewRNG(1)
	data := rng.Bytes(100_000)
	d := roundTrip(t, data, data, DefaultBlockSize)
	if lit := d.LiteralBytes(); lit > DefaultBlockSize {
		t.Fatalf("identical files sent %d literal bytes", lit)
	}
	if d.CopyOps() < len(data)/DefaultBlockSize-1 {
		t.Fatalf("too few copies: %d", d.CopyOps())
	}
}

func TestAppendSendsRoughlyAppendedBytes(t *testing.T) {
	// The Fig. 4 "Append" case: adding k bytes at the end should
	// upload ~k bytes regardless of file size.
	rng := sim.NewRNG(2)
	old := rng.Bytes(1 << 20)
	added := rng.Bytes(100_000)
	new := append(append([]byte{}, old...), added...)
	d := roundTrip(t, old, new, DefaultBlockSize)
	lit := d.LiteralBytes()
	if lit < int64(len(added)) || lit > int64(len(added))+2*DefaultBlockSize {
		t.Fatalf("append literal bytes = %d, want ~%d", lit, len(added))
	}
}

func TestPrependSendsRoughlyAddedBytes(t *testing.T) {
	// Insertion at the beginning shifts all content; only a rolling
	// match (not block-aligned matching) keeps the delta small.
	rng := sim.NewRNG(3)
	old := rng.Bytes(512 << 10)
	added := rng.Bytes(50_000)
	new := append(append([]byte{}, added...), old...)
	d := roundTrip(t, old, new, DefaultBlockSize)
	lit := d.LiteralBytes()
	if lit < int64(len(added)) || lit > int64(len(added))+2*DefaultBlockSize {
		t.Fatalf("prepend literal bytes = %d, want ~%d (rolling hash must realign)", lit, len(added))
	}
}

func TestRandomInsertion(t *testing.T) {
	rng := sim.NewRNG(4)
	old := rng.Bytes(1 << 20)
	added := rng.Bytes(100_000)
	mid := len(old) / 3
	new := append(append(append([]byte{}, old[:mid]...), added...), old[mid:]...)
	d := roundTrip(t, old, new, DefaultBlockSize)
	lit := d.LiteralBytes()
	if lit < int64(len(added)) || lit > int64(len(added))+3*DefaultBlockSize {
		t.Fatalf("insert literal bytes = %d, want ~%d", lit, len(added))
	}
}

func TestCompletelyDifferentContent(t *testing.T) {
	rng := sim.NewRNG(5)
	old := rng.Bytes(100_000)
	new := rng.Bytes(100_000)
	d := roundTrip(t, old, new, DefaultBlockSize)
	if d.LiteralBytes() != int64(len(new)) {
		t.Fatalf("different content: literal = %d, want full %d", d.LiteralBytes(), len(new))
	}
}

func TestEmptyCases(t *testing.T) {
	rng := sim.NewRNG(6)
	data := rng.Bytes(10_000)
	roundTrip(t, nil, data, DefaultBlockSize) // create
	roundTrip(t, data, nil, DefaultBlockSize) // truncate to empty
	roundTrip(t, nil, nil, DefaultBlockSize)  // nothing
	roundTrip(t, data, data, 0)               // default block size
}

func TestPatchRejectsWrongOld(t *testing.T) {
	rng := sim.NewRNG(7)
	old := rng.Bytes(10_000)
	sig := Sign(old, DefaultBlockSize)
	d := Compute(sig, rng.Bytes(5000))
	if _, err := Patch(old[:100], d); err == nil {
		t.Fatal("Patch accepted wrong old data length")
	}
}

func TestPatchRejectsCorruptCopyOp(t *testing.T) {
	d := &Delta{BlockSize: 16, OldTotal: 16, Ops: []Op{{Copy: true, BlockIndex: 99}}}
	if _, err := Patch(make([]byte, 16), d); err == nil {
		t.Fatal("Patch accepted out-of-range copy")
	}
}

func TestWireSizeAccounting(t *testing.T) {
	rng := sim.NewRNG(8)
	old := rng.Bytes(100_000)
	d := roundTrip(t, old, old, DefaultBlockSize)
	// All copies: wire size ~ 8 bytes per block + 16 framing.
	want := int64(d.CopyOps())*8 + 16
	if got := d.WireSize(); got != want+d.LiteralBytes()+8*int64(len(d.Ops)-d.CopyOps()) {
		t.Fatalf("WireSize = %d", got)
	}
	sig := Sign(old, DefaultBlockSize)
	if sig.WireSize() <= 0 || sig.WireSize() > int64(len(old)) {
		t.Fatalf("signature wire size = %d", sig.WireSize())
	}
}

// Property: patch(old, compute(sign(old), new)) == new for arbitrary
// old/new and block sizes — the core invariant of the codec.
func TestRoundTripProperty(t *testing.T) {
	rng := sim.NewRNG(9)
	f := func(oldLen, newLen uint16, bsSeed uint8) bool {
		bs := 64 + int(bsSeed)*8
		old := rng.Bytes(int(oldLen))
		var new []byte
		// Bias towards related content: half the time, derive new
		// from old with an edit.
		if oldLen > 100 && bsSeed%2 == 0 {
			cut := int(oldLen) / 2
			new = append(append([]byte{}, old[:cut]...), rng.Bytes(int(newLen)%1000)...)
			new = append(new, old[cut:]...)
		} else {
			new = rng.Bytes(int(newLen))
		}
		sig := Sign(old, bs)
		d := Compute(sig, new)
		got, err := Patch(old, d)
		return err == nil && bytes.Equal(got, new)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRollingChecksumMatchesDirect(t *testing.T) {
	rng := sim.NewRNG(10)
	data := rng.Bytes(4096)
	const bs = 512
	var w rolling
	w.init(data[:bs])
	for i := 0; i+bs < len(data); i++ {
		direct := weakSum(data[i : i+bs])
		if w.sum() != direct {
			t.Fatalf("rolling sum diverged at offset %d", i)
		}
		w.roll(data[i], data[i+bs])
	}
}
