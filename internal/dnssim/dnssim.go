// Package dnssim models the DNS machinery the paper's architecture
// discovery depends on (Sect. 2.1).
//
// Cloud services balance load through DNS: the set of A records a
// client receives depends on which resolver asked. Enumerating a
// service's front-end fleet therefore requires querying from many
// vantage points — the paper uses more than 2,000 open resolvers in
// over 100 countries and 500 ISPs. This package provides:
//
//   - per-name resolution policies (static pools, random subsets, and
//     nearest-edge steering for the Google-like topology),
//   - a synthetic open-resolver population with the paper's country
//     and ISP spread,
//   - PTR (reverse DNS) records, which may embed airport codes that
//     the geolocator consumes.
package dnssim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Resolver is one open DNS resolver: a location the service's
// authoritative DNS sees queries from.
type Resolver struct {
	Name    string
	Coord   geo.Coord
	Country string
	ISP     string
}

// Policy answers A-record queries for one DNS name.
type Policy interface {
	// Answer returns the IP addresses handed to a client whose
	// query originates at `from`. rng drives any randomized
	// rotation.
	Answer(from geo.Coord, rng *sim.RNG) []string
}

// StaticPool returns up to K addresses from a fixed pool, rotated
// randomly — classic round-robin DNS as used by the centralized
// services (Dropbox, SkyDrive, Wuala, Cloud Drive).
type StaticPool struct {
	IPs []string
	K   int // answers per query; 0 means all
}

// Answer implements Policy.
func (p *StaticPool) Answer(_ geo.Coord, rng *sim.RNG) []string {
	k := p.K
	if k <= 0 || k >= len(p.IPs) {
		out := make([]string, len(p.IPs))
		copy(out, p.IPs)
		return out
	}
	idx := rng.Perm(len(p.IPs))[:k]
	sort.Ints(idx)
	out := make([]string, 0, k)
	for _, i := range idx {
		out = append(out, p.IPs[i])
	}
	return out
}

// NearestEdge steers each query to the edge nodes closest to the
// querying resolver — the Google Drive topology, where client TCP
// terminates at the nearest edge of a private backbone (Sect. 3.2).
type NearestEdge struct {
	Edges []*netem.Host
	K     int // how many nearby edges to return (default 1)
}

// Answer implements Policy.
func (p *NearestEdge) Answer(from geo.Coord, _ *sim.RNG) []string {
	k := p.K
	if k <= 0 {
		k = 1
	}
	if k > len(p.Edges) {
		k = len(p.Edges)
	}
	type cand struct {
		ip string
		d  float64
	}
	cands := make([]cand, len(p.Edges))
	for i, e := range p.Edges {
		cands[i] = cand{e.Addr, geo.DistanceKm(from, e.Coord)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].ip < cands[j].ip
	})
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].ip
	}
	return out
}

// System is the simulated global DNS: authoritative policies per name
// plus the PTR (reverse) zone.
type System struct {
	rng      *sim.RNG
	policies map[string]Policy
	ptr      map[string]string // ip -> reverse name
}

// NewSystem returns an empty DNS system.
func NewSystem(rng *sim.RNG) *System {
	return &System{
		rng:      rng,
		policies: make(map[string]Policy),
		ptr:      make(map[string]string),
	}
}

// SetPolicy installs the resolution policy for a DNS name.
func (s *System) SetPolicy(name string, p Policy) {
	s.policies[strings.ToLower(name)] = p
}

// SetPTR installs the reverse-DNS name for an address. Empty name
// models hosts without PTR records.
func (s *System) SetPTR(ip, name string) { s.ptr[ip] = name }

// Names returns every name with a policy, sorted.
func (s *System) Names() []string {
	out := make([]string, 0, len(s.policies))
	for n := range s.policies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve answers an A query for name as seen from a resolver at the
// given location. Unknown names resolve to nothing (NXDOMAIN).
func (s *System) Resolve(name string, from geo.Coord) []string {
	p, ok := s.policies[strings.ToLower(name)]
	if !ok {
		return nil
	}
	return p.Answer(from, s.rng)
}

// ReverseLookup returns the PTR name for an address, or "" if none.
func (s *System) ReverseLookup(ip string) string { return s.ptr[ip] }

// FanOut resolves name from every resolver in the set and returns the
// union of addresses observed, sorted — the paper's front-end
// enumeration step.
func (s *System) FanOut(name string, resolvers []Resolver) []string {
	seen := make(map[string]bool)
	for _, r := range resolvers {
		for _, ip := range s.Resolve(name, r.Coord) {
			seen[ip] = true
		}
	}
	out := make([]string, 0, len(seen))
	for ip := range seen {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

// GenerateResolvers builds a synthetic open-resolver population with at
// least the paper's spread: the requested count distributed over every
// country in the geo capital table (112 countries), across `ispsPer`
// distinct ISPs per country. Resolver positions jitter up to ~2 degrees
// around the anchor city.
func GenerateResolvers(rng *sim.RNG, count, ispsPer int) []Resolver {
	places := geo.Capitals()
	if ispsPer < 1 {
		ispsPer = 1
	}
	out := make([]Resolver, 0, count)
	for i := 0; i < count; i++ {
		p := places[i%len(places)]
		isp := (i / len(places)) % ispsPer
		jlat := (rng.Float64() - 0.5) * 4
		jlon := (rng.Float64() - 0.5) * 4
		out = append(out, Resolver{
			Name:    fmt.Sprintf("resolver%d.isp%d.%s.sim", i, isp, strings.ToLower(p.Country)),
			Coord:   geo.Coord{Lat: clampLat(p.Coord.Lat + jlat), Lon: wrapLon(p.Coord.Lon + jlon)},
			Country: p.Country,
			ISP:     fmt.Sprintf("isp%d-%s", isp, strings.ToLower(p.Country)),
		})
	}
	return out
}

func clampLat(l float64) float64 {
	if l > 89 {
		return 89
	}
	if l < -89 {
		return -89
	}
	return l
}

func wrapLon(l float64) float64 {
	for l > 180 {
		l -= 360
	}
	for l < -180 {
		l += 360
	}
	return l
}
