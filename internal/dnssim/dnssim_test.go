package dnssim

import (
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
)

func TestStaticPoolAllAndSubset(t *testing.T) {
	rng := sim.NewRNG(1)
	p := &StaticPool{IPs: []string{"1.1.1.1", "2.2.2.2", "3.3.3.3"}}
	if got := p.Answer(geo.Coord{}, rng); len(got) != 3 {
		t.Fatalf("all: %v", got)
	}
	p.K = 2
	got := p.Answer(geo.Coord{}, rng)
	if len(got) != 2 {
		t.Fatalf("subset: %v", got)
	}
	for _, ip := range got {
		if ip != "1.1.1.1" && ip != "2.2.2.2" && ip != "3.3.3.3" {
			t.Fatalf("unknown ip %q", ip)
		}
	}
}

func TestStaticPoolRotationCoversPool(t *testing.T) {
	rng := sim.NewRNG(7)
	p := &StaticPool{IPs: []string{"1.1.1.1", "2.2.2.2", "3.3.3.3", "4.4.4.4"}, K: 1}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		for _, ip := range p.Answer(geo.Coord{}, rng) {
			seen[ip] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("rotation covered %d of 4", len(seen))
	}
}

func TestNearestEdgeSteering(t *testing.T) {
	ams, _ := geo.LookupAirport("AMS")
	sin, _ := geo.LookupAirport("SIN")
	iad, _ := geo.LookupAirport("IAD")
	edges := []*netem.Host{
		{Name: "edge-ams", Addr: "10.1.0.1", Coord: ams.Coord},
		{Name: "edge-sin", Addr: "10.1.0.2", Coord: sin.Coord},
		{Name: "edge-iad", Addr: "10.1.0.3", Coord: iad.Coord},
	}
	p := &NearestEdge{Edges: edges}
	if got := p.Answer(geo.Coord{Lat: 52, Lon: 6}, nil); got[0] != "10.1.0.1" {
		t.Fatalf("EU query -> %v, want AMS edge", got)
	}
	if got := p.Answer(geo.Coord{Lat: 1.3, Lon: 103}, nil); got[0] != "10.1.0.2" {
		t.Fatalf("SG query -> %v, want SIN edge", got)
	}
	p.K = 2
	if got := p.Answer(geo.Coord{Lat: 40, Lon: -75}, nil); len(got) != 2 || got[0] != "10.1.0.3" {
		t.Fatalf("US query K=2 -> %v", got)
	}
	p.K = 99
	if got := p.Answer(geo.Coord{}, nil); len(got) != 3 {
		t.Fatalf("K clamp: %v", got)
	}
}

func TestSystemResolveAndPTR(t *testing.T) {
	s := NewSystem(sim.NewRNG(1))
	s.SetPolicy("Storage.Example", &StaticPool{IPs: []string{"5.5.5.5"}})
	s.SetPTR("5.5.5.5", "s1.iad1.example.net")
	if got := s.Resolve("storage.example", geo.Coord{}); len(got) != 1 || got[0] != "5.5.5.5" {
		t.Fatalf("Resolve = %v (case-insensitive names expected)", got)
	}
	if got := s.Resolve("nx.example", geo.Coord{}); got != nil {
		t.Fatalf("NXDOMAIN returned %v", got)
	}
	if got := s.ReverseLookup("5.5.5.5"); got != "s1.iad1.example.net" {
		t.Fatalf("PTR = %q", got)
	}
	if got := s.ReverseLookup("9.9.9.9"); got != "" {
		t.Fatalf("missing PTR = %q", got)
	}
	if names := s.Names(); len(names) != 1 || names[0] != "storage.example" {
		t.Fatalf("Names = %v", names)
	}
}

func TestFanOutEnumeratesGeoPools(t *testing.T) {
	// A nearest-edge policy hides most edges from any single
	// resolver; only fan-out across the world reveals the fleet.
	rng := sim.NewRNG(3)
	var edges []*netem.Host
	for i, a := range geo.Airports() {
		edges = append(edges, &netem.Host{
			Name:  "edge-" + strings.ToLower(a.Code),
			Addr:  "10.2.0." + itoa(i),
			Coord: a.Coord,
		})
	}
	s := NewSystem(rng)
	s.SetPolicy("clients.gdrive.sim", &NearestEdge{Edges: edges})

	single := s.Resolve("clients.gdrive.sim", geo.Coord{Lat: 52, Lon: 6})
	if len(single) != 1 {
		t.Fatalf("single query returned %d edges", len(single))
	}
	resolvers := GenerateResolvers(rng, 2000, 5)
	union := s.FanOut("clients.gdrive.sim", resolvers)
	if len(union) < len(edges)/2 {
		t.Fatalf("fan-out found %d of %d edges", len(union), len(edges))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestGenerateResolversSpread(t *testing.T) {
	rs := GenerateResolvers(sim.NewRNG(1), 2000, 5)
	if len(rs) != 2000 {
		t.Fatalf("count = %d", len(rs))
	}
	countries := map[string]bool{}
	isps := map[string]bool{}
	for _, r := range rs {
		countries[r.Country] = true
		isps[r.ISP] = true
		if r.Coord.Lat < -90 || r.Coord.Lat > 90 || r.Coord.Lon < -180 || r.Coord.Lon > 180 {
			t.Fatalf("resolver %s has invalid coord %v", r.Name, r.Coord)
		}
	}
	// Paper: >100 countries, >500 ISPs.
	if len(countries) <= 100 {
		t.Fatalf("countries = %d, want > 100", len(countries))
	}
	if len(isps) <= 500 {
		t.Fatalf("ISPs = %d, want > 500", len(isps))
	}
}

func TestGenerateResolversDeterministic(t *testing.T) {
	a := GenerateResolvers(sim.NewRNG(5), 50, 2)
	b := GenerateResolvers(sim.NewRNG(5), 50, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("resolver generation not deterministic")
		}
	}
}
