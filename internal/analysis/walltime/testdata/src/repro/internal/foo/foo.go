// Package foo is a walltime fixture: a simulation package that must
// not read the wall clock.
package foo

import "time"

func bad(t0 time.Time) time.Duration {
	now := time.Now()         // want `wall-clock time\.Now in simulation package: use sim\.Clock\.Now`
	time.Sleep(time.Second)   // want `wall-clock time\.Sleep`
	<-time.After(time.Second) // want `wall-clock time\.After`
	_ = time.Since(t0)        // want `wall-clock time\.Since`
	return now.Sub(t0)
}

// Methods on time.Time are pure arithmetic, not wall-clock reads.
func methodsFine(t0, t1 time.Time) bool {
	return t1.After(t0) && t0.Before(t1) && !t0.Add(time.Second).Equal(t1)
}

// Constructors and constants are fine too.
func valuesFine() time.Time {
	return time.Date(2013, time.October, 23, 0, 0, 0, 0, time.UTC)
}

func audited() time.Time {
	//simlint:allow walltime -- fixture: audited wall-clock read
	return time.Now()
}

func auditedTrailing() time.Time {
	return time.Now() //simlint:allow walltime -- fixture: trailing directive
}
