// Package tool is a walltime fixture for the cmd/ allowlist: drivers
// may time themselves with the real clock.
package tool

import "time"

func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
