// Package walltime forbids wall-clock time in simulation packages.
//
// Every simulated instant must come from sim.Clock: the engine's core
// guarantee — a campaign is bit-identical given a seed, at any worker
// count, at any machine speed — holds only while no simulated
// quantity ever reads the host clock. A single time.Now() in a
// metric path silently re-introduces the one-day wall-clock cost the
// virtual-time kernel exists to remove, and worse, makes results
// machine-dependent.
//
// Allowlisted: cmd/ (drivers may time themselves — benchsnap's micro
// harness measures real engine speed on purpose), the repository root
// package (scripts-driven benches), internal/sim (the kernel wraps
// time.Time arithmetic itself) and internal/analysis. Individual
// audited sites elsewhere use `//simlint:allow walltime`.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time (time.Now, time.Sleep, ...) in simulation packages; " +
		"all simulated time must ride sim.Clock",
	Run: run,
}

// banned maps forbidden package-level time functions to the sim
// primitive that replaces them.
var banned = map[string]string{
	"Now":       "sim.Clock.Now",
	"Since":     "sim.Clock.Since",
	"Sleep":     "sim.Scheduler scheduling",
	"After":     "sim.Scheduler scheduling",
	"Tick":      "sim.Scheduler scheduling",
	"NewTimer":  "sim.Scheduler scheduling",
	"NewTicker": "sim.Scheduler scheduling",
	"AfterFunc": "sim.Scheduler scheduling",
	"Until":     "sim.Clock arithmetic",
}

func run(pass *analysis.Pass) error {
	if allowedPkg(analysis.PkgPath(pass.Pkg)) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if analysis.ObjPkgPath(obj) != "time" {
				return true
			}
			// Only package-level functions read the wall clock;
			// methods like (time.Time).After are pure arithmetic.
			if fn, ok := obj.(*types.Func); !ok || fn.Signature().Recv() != nil {
				return true
			}
			if repl, bad := banned[obj.Name()]; bad {
				pass.Reportf(sel.Pos(),
					"wall-clock time.%s in simulation package: use %s (virtual time only)",
					obj.Name(), repl)
			}
			return true
		})
	}
	return nil
}

// allowedPkg reports whether the whole package may touch the wall
// clock.
func allowedPkg(path string) bool {
	return path == analysis.ModulePath ||
		strings.HasPrefix(path, analysis.ModulePath+"/cmd/") ||
		path == analysis.ModulePath+"/internal/sim" ||
		strings.HasPrefix(path, analysis.ModulePath+"/internal/analysis")
}
