package walltime_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "repro/internal/foo", walltime.Analyzer)
}

// TestAllowlistedPackage proves cmd/ packages may use the wall clock:
// the fixture calls time.Now and time.Since and carries no wants.
func TestAllowlistedPackage(t *testing.T) {
	analysistest.Run(t, "repro/cmd/tool", walltime.Analyzer)
}
