// Package analysistest runs simlint analyzers against fixture
// packages and checks their diagnostics against `// want` comments —
// the golang.org/x/tools/go/analysis/analysistest idiom, rebuilt on
// the standard library.
//
// Fixtures live under the calling test's testdata/src directory, laid
// out by import path: analysistest.Run(t, "repro/internal/foo", A)
// loads every .go file in testdata/src/repro/internal/foo as one
// package, type-checks it (imports of other fixture paths resolve
// inside testdata/src; everything else resolves from the standard
// library's source), runs A, and then matches each surviving
// diagnostic against the `// want "regexp"` comment on its line:
//
//	now := time.Now() // want `wall-clock time\.Now`
//
// A line may carry several quoted patterns for several diagnostics.
// Diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test. Files named *_test.go inside a fixture
// are loaded as in-package test files, so test-only checks can be
// exercised too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package at testdata/src/<path>, applies the
// analyzers, and reports any mismatch between diagnostics and the
// fixture's want comments as test errors.
func Run(t *testing.T, path string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	ld := newLoader("testdata/src")
	pkg, files, info, err := ld.loadFixture(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := analysis.RunPackage(ld.fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", path, err)
	}
	wants := parseWants(t, ld.fset, files)

	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		if !wants.match(pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", rel(pos), d.Message, d.Check)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matching %q", rel(token.Position{Filename: w.file}), w.line, w.re)
	}
}

func rel(pos token.Position) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, pos.Filename); err == nil {
			pos.Filename = r
		}
	}
	if pos.Line > 0 {
		return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	}
	return pos.Filename
}

// loader type-checks fixture packages, resolving fixture-local import
// paths from the testdata tree and everything else from the standard
// library sources.
type loader struct {
	base   string
	fset   *token.FileSet
	pkgs   map[string]*types.Package
	stdlib types.Importer
}

func newLoader(base string) *loader {
	fset := token.NewFileSet()
	return &loader{
		base:   base,
		fset:   fset,
		pkgs:   make(map[string]*types.Package),
		stdlib: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the fixture tree.
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(ld.base, filepath.FromSlash(path)); dirExists(dir) {
		pkg, _, _, err := ld.loadFixture(path)
		return pkg, err
	}
	return ld.stdlib.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// loadFixture parses and type-checks the fixture package stored at
// base/<path>, returning its syntax and type information.
func (ld *loader) loadFixture(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(ld.base, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewInfo()
	cfg := types.Config{Importer: ld}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	ld.pkgs[path] = pkg
	return pkg, files, info, nil
}

// want is one expectation: a regexp that some diagnostic on file:line
// must match.
type want struct {
	file    string
	line    int
	re      string
	rx      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

// parseWants extracts `// want "re" ["re" ...]` expectations from the
// fixture's comments. Both interpreted and raw quoted strings are
// accepted.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %q", pos.Filename, pos.Line, rest)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %q: %v", pos.Filename, pos.Line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					ws.wants = append(ws.wants, &want{
						file: pos.Filename, line: pos.Line, re: pat, rx: rx,
					})
					rest = rest[len(q):]
				}
			}
		}
	}
	return ws
}

// match consumes the first unmatched expectation on file:line whose
// regexp matches the message.
func (ws *wantSet) match(file string, line int, message string) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == file && w.line == line && w.rx.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}
