// This file implements the `go vet -vettool` unit-checker protocol —
// the same wire contract as golang.org/x/tools/go/analysis/unitchecker,
// reimplemented on the stdlib. cmd/go drives a vet tool as follows:
//
//  1. `tool -V=full` — print an identity line ("name version ...")
//     that cmd/go folds into its build cache key, so editing the tool
//     invalidates cached vet results.
//  2. `tool -flags` — print a JSON description of the analyzer flags
//     the tool accepts (simlint accepts none: every check always runs).
//  3. `tool <unit>.cfg` — analyse one compilation unit. The cfg file
//     is JSON describing the package: its Go files, the import map,
//     and the export-data file of every dependency. The tool
//     type-checks the unit against that export data, runs the
//     analyzers, prints findings as "file:line:col: message" on
//     stderr, writes the (for simlint, empty) facts file cmd/go asked
//     for, and exits non-zero iff there were findings.
//
// Because the protocol feeds us compiler export data for every
// import, a unit check never re-type-checks dependencies — running
// the whole suite over ./... costs well under a second warm.
package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON schema cmd/go writes for vet tools (the
// fields simlint consumes; unknown fields are ignored by the decoder).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vet tool built from this framework:
// cmd/simlint calls it with the four determinism analyzers. Invoked
// by cmd/go it speaks the unit-checker protocol above; invoked by a
// human with package patterns (or nothing, meaning ./...) it re-execs
// itself under `go vet -vettool` so both entry points share one code
// path.
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags: every check always runs, and
			// suppression happens in-source via //simlint:allow.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		code, err := checkUnit(args[0], analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(1)
		}
		os.Exit(code)
	}
	os.Exit(standalone(args))
}

// printVersion emits the identity line cmd/go hashes into its cache
// key. The buildID term is a digest of the executable itself, so a
// rebuilt tool re-vets everything.
func printVersion() {
	name := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(name); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel simlint buildID=%02x\n", name, h.Sum(nil)[:16])
}

// standalone runs the suite over package patterns by re-invoking the
// go command with this executable as the vet tool.
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if exit, ok := err.(*exec.ExitError); ok {
			return exit.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	return 0
}

// checkUnit analyses one compilation unit described by a cfg file and
// returns the process exit code: 0 clean, 2 findings.
func checkUnit(cfgFile string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("%s: %v", cfgFile, err)
	}
	// cmd/go expects the facts file regardless of outcome. simlint's
	// analyzers exchange no facts, so a fixed marker suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("simlint facts v1 (none)\n"), 0o666); err != nil {
			return 0, err
		}
	}
	// Units vetted only for their facts, and the synthesised test-main
	// package, carry nothing the determinism checks apply to.
	if cfg.VetxOnly || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}
	pkg, info, err := typecheckUnit(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}
	diags, err := RunPackage(fset, files, pkg, info, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", relPosition(fset, d.Pos), d.Message, d.Check)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// typecheckUnit type-checks the unit against the export data cmd/go
// supplied for its imports.
func typecheckUnit(cfg *vetConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiled := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("unresolvable import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiled.Import(path)
	})
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// relPosition renders a diagnostic position relative to the working
// directory when possible, matching go vet's own output style.
func relPosition(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p.String()
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
