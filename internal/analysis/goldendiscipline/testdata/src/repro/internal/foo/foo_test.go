package foo

import (
	"testing"

	"repro/internal/core"
)

const wantReps = 6

func TestPinnedMetric(t *testing.T) {
	s := core.RunCampaign(6)
	if s.Connections != 84 { // want `hardcoded numeric pin against engine metric core\.Summary\.Connections`
		t.Fatalf("connections = %d", s.Connections)
	}
	if 6000 != s.TotalTraffic { // want `core\.Summary\.TotalTraffic`
		t.Errorf("traffic = %d", s.TotalTraffic)
	}
}

func TestSymbolicAndStructural(t *testing.T) {
	s := core.RunCampaign(wantReps)
	if s.Reps != wantReps { // named constant: symbolic, tracks the code
		t.Fatal("reps")
	}
	if s.Connections != 1 { // 0 and 1 are structural, not pins
		t.Fatal("connections")
	}
	if s.Overhead < 1.0 || s.Overhead > 1.3 { // range assertion, not a pin
		t.Fatal("overhead")
	}
}

// TestHandBuiltInputExempt never runs the engine: the expected value
// is closed-form arithmetic over a literal input, which a golden
// refresh cannot move.
func TestHandBuiltInputExempt(t *testing.T) {
	s := core.Summary{Connections: 84}
	if s.Connections != 84 {
		t.Fatal("connections")
	}
}

// TestRunShapeExempt pins the sampling design, not engine physics:
// repetition counts and stopping-rule echoes are arithmetic over the
// rule, which no golden refresh can move. The measurements those
// repetitions produced are still pins (last assertion).
func TestRunShapeExempt(t *testing.T) {
	s := core.RunCampaign(12)
	if s.RepsUsed != 12 { // run-shape: how many reps the rule spent
		t.Fatal("reps used")
	}
	c := core.RunCampaignAdaptive(96)
	if c.Precision != 0.05 || c.MaxReps != 96 { // run-shape: the rule itself
		t.Fatal("rule")
	}
	if s.TotalTraffic != 12000 { // want `core\.Summary\.TotalTraffic`
		t.Fatal("traffic")
	}
}

func TestAudited(t *testing.T) {
	s := core.RunCampaign(3)
	//simlint:allow goldendiscipline -- fixture: structural count audited
	if s.Connections != 3 {
		t.Fatal("connections")
	}
}
