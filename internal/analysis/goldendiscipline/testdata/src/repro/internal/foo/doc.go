// Package foo is a goldendiscipline fixture: its test file pins
// engine metrics in the ways the check must and must not flag.
package foo
