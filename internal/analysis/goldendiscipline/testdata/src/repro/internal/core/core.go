// Package core is a fixture stub of the campaign engine: a runner
// whose summary fields count as engine metrics.
package core

type Summary struct {
	Reps         int
	Connections  int
	TotalTraffic int64
	Overhead     float64
}

func RunCampaign(reps int) Summary {
	return Summary{Reps: reps, Connections: reps, TotalTraffic: int64(reps) * 1000, Overhead: 1.1}
}
