// Package core is a fixture stub of the campaign engine: a runner
// whose summary fields count as engine metrics, plus the run-shape
// fields (repetition counts, stopping rule echoes) that do not.
package core

type Summary struct {
	Reps         int
	RepsUsed     int
	Connections  int
	TotalTraffic int64
	Overhead     float64
}

type Campaign struct {
	Precision float64
	MaxReps   int
}

func RunCampaign(reps int) Summary {
	return Summary{Reps: reps, RepsUsed: reps, Connections: reps, TotalTraffic: int64(reps) * 1000, Overhead: 1.1}
}

func RunCampaignAdaptive(maxReps int) Campaign {
	return Campaign{Precision: 0.05, MaxReps: maxReps}
}
