// Package goldendiscipline keeps golden pins out of test source.
//
// A "golden pin" is an exact equality test between an engine-produced
// metric and a hardcoded number: `if m.Connections != 84 {...}`. Pins
// are how this repository proves bit-identical behaviour — but only
// while every pin lives in internal/goldenfile's testdata/*.json,
// where a sanctioned engine change refreshes them all in one audited
// command (scripts/regen-golden.sh) and the BASELINE_RESET flow makes
// the refresh reviewable. A numeric literal inline in a test is a pin
// the refresh can't reach: after the next legitimate engine change it
// either breaks the build (best case) or silently pins stale
// behaviour behind an edited number nobody can audit (worst case).
//
// The check flags == / != comparisons in _test.go files between an
// expression rooted in an engine package (core, trace, client, cloud,
// tcpsim) and a hardcoded numeric constant of magnitude >= 2 (0 and 1
// are structural: "no retransmits", "exactly one connection") — but
// only inside test functions that actually drive the engine (build a
// testbed or dialer, run a campaign, sync a client, discover a
// service). Unit tests that hand-build their inputs (a Summarize of
// two literal Metrics, a window over hand-recorded packets) pin
// closed-form arithmetic whose expected values live in the test
// itself; an engine refresh cannot move them, so they are not golden
// pins. Range assertions (<, >, band checks) are not pins either —
// they assert paper-shaped behaviour, not exact bits. Deliberate
// structural equalities inside engine-driving tests carry
// `//simlint:allow goldendiscipline`.
package goldendiscipline

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goldendiscipline",
	Doc: "flag hardcoded numeric golden pins (==/!= against literals) on engine metrics in tests; " +
		"pins belong in internal/goldenfile testdata refreshed via scripts/regen-golden.sh",
	Run: run,
}

// metricPkgs are the packages whose values count as engine metrics.
// stats is deliberately absent: its tests pin closed-form math on
// hand-built inputs, which is arithmetic, not engine behaviour.
var metricPkgs = map[string]bool{
	analysis.ModulePath + "/internal/core":   true,
	analysis.ModulePath + "/internal/trace":  true,
	analysis.ModulePath + "/internal/client": true,
	analysis.ModulePath + "/internal/cloud":  true,
	analysis.ModulePath + "/internal/tcpsim": true,
}

func run(pass *analysis.Pass) error {
	pkgPath := analysis.PkgPath(pass.Pkg)
	if pkgPath == analysis.ModulePath+"/internal/goldenfile" ||
		strings.HasPrefix(pkgPath, analysis.ModulePath+"/internal/analysis") {
		return nil
	}
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		decls := declIndex(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !runsEngine(pass, fd.Body) {
				continue
			}
			checkFunc(pass, decls, fd.Body)
		}
	}
	return nil
}

// runnerPrefixes / runnerExact identify the engine entry points: a
// function from an engine package with one of these names makes the
// calling test an engine run, whose metric outputs only a sanctioned
// golden refresh may redefine.
var runnerPrefixes = []string{
	"Run", "Measure", "Sync", "Dial", "Detect", "Discover",
	"Fig", "Settle", "LocationStudy", "WhatIf", "LossSweep",
}

var runnerExact = map[string]bool{
	"NewTestbed":                true,
	"NewStreamingTestbed":       true,
	"NewLegacyStreamingTestbed": true,
	"NewDialer":                 true,
}

// enginePkgs are the packages whose runner calls gate the check: the
// metric packages plus the protocol simulators.
var enginePkgs = map[string]bool{
	analysis.ModulePath + "/internal/httpsim": true,
	analysis.ModulePath + "/internal/dnssim":  true,
}

// runsEngine reports whether the function body invokes an engine
// entry point (directly, or through a same-file helper one level
// deep via declIndex-style resolution being unnecessary: helpers that
// run the engine are themselves flagged when they pin).
func runsEngine(pass *analysis.Pass, body *ast.BlockStmt) bool {
	runs := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !runs
		}
		obj := analysis.CalleeObj(pass.TypesInfo, call.Fun)
		if obj == nil {
			return true
		}
		pkg := analysis.ObjPkgPath(obj)
		if !metricPkgs[pkg] && !enginePkgs[pkg] {
			return true
		}
		name := obj.Name()
		if runnerExact[name] {
			runs = true
			return false
		}
		for _, p := range runnerPrefixes {
			if strings.HasPrefix(name, p) {
				runs = true
				return false
			}
		}
		return true
	})
	return runs
}

// runShapeFields are metric-package fields that describe the sampling
// design rather than engine physics: how many repetitions ran and the
// stopping rule they ran under. An adaptive test pinning "the rule
// stopped at exactly MaxReps=12" or "the antithetic design needs 16
// reps where fixed sampling needs 24" asserts the sequential stopping
// logic — arithmetic over the rule, deliberately pinned in the test —
// not a metric a golden refresh could ever move. The simulated
// measurements those repetitions produced stay pinned in
// internal/goldenfile like everything else.
var runShapeFields = map[string]bool{
	"core.Summary.Reps":                  true,
	"core.Summary.RepsUsed":              true,
	"core.Campaign.Reps":                 true,
	"core.Campaign.Precision":            true,
	"core.Campaign.MaxReps":              true,
	"core.CapabilityConfidence.RepsUsed": true,
}

// checkFunc scans one engine-driving test function for pin-shaped
// assertions.
func checkFunc(pass *analysis.Pass, decls map[types.Object]ast.Expr, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// A pin has assertion shape: an if whose condition compares
		// against the literal and whose body fails the test. Equality
		// used as a flow filter or classifier predicate is not a pin.
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !containsTestFail(pass, ifs.Body) {
			return true
		}
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			be, ok := c.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			lit, other := pinnedSide(pass, be)
			if lit == nil {
				return true
			}
			if root := metricRoot(pass, decls, other, 4); root != "" && !runShapeFields[root] {
				pass.Reportf(be.Pos(),
					"hardcoded numeric pin against engine metric %s: move the pin into "+
						"internal/goldenfile testdata (refresh with scripts/regen-golden.sh)", root)
			}
			return true
		})
		return true
	})
}

// containsTestFail reports whether the statement block calls a
// testing error or fatal method.
func containsTestFail(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		obj := analysis.CalleeObj(pass.TypesInfo, call.Fun)
		if obj != nil && analysis.ObjPkgPath(obj) == "testing" {
			switch obj.Name() {
			case "Error", "Errorf", "Fatal", "Fatalf":
				found = true
			}
		}
		return !found
	})
	return found
}

// pinnedSide returns (literal side, other side) when exactly one
// operand is a pin-worthy hardcoded numeric constant.
func pinnedSide(pass *analysis.Pass, be *ast.BinaryExpr) (lit, other ast.Expr) {
	xPin, yPin := pinWorthy(pass, be.X), pinWorthy(pass, be.Y)
	switch {
	case xPin && !yPin:
		return be.X, be.Y
	case yPin && !xPin:
		return be.Y, be.X
	}
	return nil, nil
}

// pinWorthy reports whether e is a hardcoded numeric constant that
// smells like a pin: constant-valued, spelled with a literal (a named
// constant is symbolic and tracks the code), and of magnitude >= 2
// for integers or non-zero for fractional values.
func pinWorthy(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
	default:
		return false
	}
	// A bare identifier or qualified name is a symbolic constant.
	switch stripParens(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return false
	}
	if !containsNumericLit(e) {
		return false
	}
	f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	if f < 0 {
		f = -f
	}
	if tv.Value.Kind() == constant.Int {
		return f >= 2
	}
	return f != 0
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// containsNumericLit reports whether the expression spells out a
// numeric literal anywhere (so 1<<20 and 13*time.Second count, a lone
// named constant does not).
func containsNumericLit(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if bl, ok := n.(*ast.BasicLit); ok && (bl.Kind == token.INT || bl.Kind == token.FLOAT) {
			found = true
		}
		return !found
	})
	return found
}

// declIndex maps local variables to the expression that initialised
// them (single-assignment := and var forms), giving metricRoot one
// level of provenance through `got := engine.Metric(); got != 42`.
func declIndex(pass *analysis.Pass, f *ast.File) map[types.Object]ast.Expr {
	idx := make(map[types.Object]ast.Expr)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						idx[obj] = n.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, id := range n.Names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					idx[obj] = n.Values[i]
				}
			}
		}
		return true
	})
	return idx
}

// metricRoot describes the engine value e is rooted in, or "" when e
// is not metric-rooted. depth bounds provenance chains.
func metricRoot(pass *analysis.Pass, decls map[types.Object]ast.Expr, e ast.Expr, depth int) string {
	if depth == 0 || e == nil {
		return ""
	}
	switch x := stripParens(e).(type) {
	case *ast.SelectorExpr:
		// Qualified package names (trace.AllFlows) are symbolic.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				return ""
			}
		}
		if path, name := analysis.NamedPkgPath(pass.TypesInfo.TypeOf(x.X)); metricPkgs[path] {
			return shortPkg(path) + "." + name + "." + x.Sel.Name
		}
		return metricRoot(pass, decls, x.X, depth-1)
	case *ast.CallExpr:
		obj := analysis.CalleeObj(pass.TypesInfo, x.Fun)
		if obj != nil && metricPkgs[analysis.ObjPkgPath(obj)] {
			return shortPkg(analysis.ObjPkgPath(obj)) + "." + obj.Name() + "()"
		}
		return ""
	case *ast.BinaryExpr:
		if root := metricRoot(pass, decls, x.X, depth-1); root != "" {
			return root
		}
		return metricRoot(pass, decls, x.Y, depth-1)
	case *ast.UnaryExpr:
		return metricRoot(pass, decls, x.X, depth-1)
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			return ""
		}
		return metricRoot(pass, decls, decls[obj], depth-1)
	}
	return ""
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
