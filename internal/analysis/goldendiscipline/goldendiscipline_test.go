package goldendiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goldendiscipline"
)

func TestGoldenDiscipline(t *testing.T) {
	analysistest.Run(t, "repro/internal/foo", goldendiscipline.Analyzer)
}
