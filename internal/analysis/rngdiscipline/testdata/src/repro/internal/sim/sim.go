// Package sim is a fixture stub of the repository's virtual-time
// kernel: just enough surface for the rngdiscipline fixtures to
// type-check. As the real internal/sim, it may import math/rand.
package sim

import "math/rand"

// RNG is the deterministic random stream fixture.
type RNG struct{ r *rand.Rand }

func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

func (g *RNG) Fork(i uint64) *RNG { return NewRNG(int64(i)) }

func (g *RNG) Float64() float64 { return g.r.Float64() }
