// Package foo is an rngdiscipline fixture: a simulation package whose
// randomness must flow from sim.RNG.
package foo

import (
	crand "crypto/rand" // want `crypto/rand import: simulated randomness must be deterministic`
	"math/rand"         // want `math/rand import outside internal/sim`

	"repro/internal/core"
	"repro/internal/sim"
)

func entropy() []byte {
	b := make([]byte, 8)
	crand.Read(b)
	rand.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] }) // want `auto-seeded global rand\.Shuffle`
	return b
}

// sharedStream captures one *sim.RNG across scheduler cells — the
// draws land in scheduling order, breaking worker-count invariance.
func sharedStream(rng *sim.RNG) []float64 {
	return core.RunN(4, 2, func(i int) float64 {
		return rng.Float64() // want `closure passed to core\.RunN captures shared \*sim\.RNG "rng"`
	})
}

func sharedStreamEach(rng *sim.RNG) {
	sink := make([]float64, 4)
	core.RunEach(4, 2, func(i int) {
		sink[i] = rng.Float64() // want `closure passed to core\.RunEach captures shared \*sim\.RNG "rng"`
	})
}

// forkInsideCell still reads the shared stream pointer from inside
// the cell: the rule is conservative and flags any captured *sim.RNG,
// fork the streams before the fan-out instead.
func forkInsideCell(rng *sim.RNG) []float64 {
	return core.RunN(4, 2, func(i int) float64 {
		cell := rng.Fork(uint64(i)) // want `captures shared \*sim\.RNG "rng"`
		return cell.Float64()
	})
}

// cellLocal declares its RNG inside the cell: fine.
func cellLocal() []float64 {
	return core.RunN(4, 2, func(i int) float64 {
		cell := sim.NewRNG(int64(i))
		return cell.Float64()
	})
}
