package foo

// Test files may import math/rand for seeded scratch randomness, but
// must not draw from the auto-seeded global source.

import (
	"math/rand"
	"testing"
)

func TestSeededScratchIsFine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if rng.Intn(10) < 0 {
		t.Fatal("impossible")
	}
}

func TestGlobalDrawsFlagged(t *testing.T) {
	if rand.Intn(10) < 0 { // want `auto-seeded global rand\.Intn`
		t.Fatal("impossible")
	}
	_ = rand.Perm(4) // want `auto-seeded global rand\.Perm`
}

func TestAuditedGlobalDraw(t *testing.T) {
	//simlint:allow rngdiscipline -- fixture: audited draw
	_ = rand.Int()
}
