// Package core is a fixture stub of the experiment scheduler: the
// entry points rngdiscipline inspects closures passed into.
package core

func RunN[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	for i := range out {
		out[i] = fn(i)
	}
	return out
}

func RunEach(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
