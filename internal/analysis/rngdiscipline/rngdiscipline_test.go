package rngdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rngdiscipline"
)

func TestRNGDiscipline(t *testing.T) {
	analysistest.Run(t, "repro/internal/foo", rngdiscipline.Analyzer)
}

// TestSimPackageExempt proves internal/sim itself may import and wrap
// math/rand: the stub does both and carries no wants.
func TestSimPackageExempt(t *testing.T) {
	analysistest.Run(t, "repro/internal/sim", rngdiscipline.Analyzer)
}
