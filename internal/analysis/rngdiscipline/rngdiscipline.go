// Package rngdiscipline enforces the engine's randomness contract.
//
// All simulated randomness flows from sim.RNG, forked index→seed so
// that every experiment cell owns an independent, reproducible
// stream. Three rules make that machine-checkable:
//
//  1. Non-test code outside internal/sim must not import math/rand
//     (any version); nothing may import crypto/rand. sim.RNG is the
//     only randomness the simulation knows, and internal/sim is its
//     only implementation site (the legacy math/rand reference engine
//     lives there on purpose).
//
//  2. Test files may build seeded scratch randomness —
//     rand.New(rand.NewSource(k)) is deterministic by the Go 1
//     compatibility promise — but must not call the package-level
//     math/rand functions (rand.Intn, rand.Perm, ...): those draw
//     from the auto-seeded global source, which changes every run.
//
//  3. Closures handed to the experiment scheduler (core.RunN /
//     core.RunEach) must not capture a *sim.RNG from the enclosing
//     scope. A shared stream read from pool-scheduled cells is drawn
//     in scheduling order, destroying the bit-identical-at-any-worker-
//     count guarantee; each cell must derive its stream from its own
//     index (RNG.Fork(i), or an index→seed testbed constructor).
package rngdiscipline

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc: "enforce sim.RNG discipline: no math/rand (crypto/rand) outside internal/sim, no " +
		"auto-seeded global rand in tests, no shared *sim.RNG captured by scheduler closures",
	Run: run,
}

var (
	simPkg  = analysis.ModulePath + "/internal/sim"
	corePkg = analysis.ModulePath + "/internal/core"
)

// seededCtors are the math/rand package-level functions that build or
// feed explicitly-seeded generators — the allowed test idiom.
var seededCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
	"NewZipf":    true,
}

func run(pass *analysis.Pass) error {
	pkgPath := analysis.PkgPath(pass.Pkg)
	inSim := pkgPath == simPkg
	if strings.HasPrefix(pkgPath, analysis.ModulePath+"/internal/analysis") {
		return nil
	}
	for _, f := range pass.Files {
		testFile := analysis.IsTestFile(pass.Fset, f)
		checkImports(pass, f, inSim, testFile)
		if !inSim {
			checkGlobalRand(pass, f)
		}
		checkSchedulerClosures(pass, f)
	}
	return nil
}

// checkImports applies rule 1: import hygiene.
func checkImports(pass *analysis.Pass, f *ast.File, inSim, testFile bool) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "crypto/rand":
			if !inSim {
				pass.Reportf(imp.Pos(),
					"crypto/rand import: simulated randomness must be deterministic; use sim.RNG")
			}
		case "math/rand", "math/rand/v2":
			if !inSim && !testFile {
				pass.Reportf(imp.Pos(),
					"%s import outside internal/sim: all simulation randomness flows from sim.RNG "+
						"(fork per cell via RNG.Fork)", path)
			}
		}
	}
}

// checkGlobalRand applies rule 2: in any file (the import rule already
// restricts non-test files), calls to math/rand package-level
// functions other than the seeded constructors use the auto-seeded
// process-global source and are flagged.
func checkGlobalRand(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		pkg := analysis.ObjPkgPath(obj)
		if pkg != "math/rand" && pkg != "math/rand/v2" {
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Signature().Recv() != nil {
			return true // methods on an explicit *rand.Rand are fine
		}
		if seededCtors[fn.Name()] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"auto-seeded global rand.%s: draws change every run; use rand.New(rand.NewSource(seed)) "+
				"or a sim.RNG fork", fn.Name())
		return true
	})
}

// checkSchedulerClosures applies rule 3: function literals passed to
// core.RunN / core.RunEach must not capture a *sim.RNG declared
// outside the literal.
func checkSchedulerClosures(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeObj(pass.TypesInfo, call.Fun)
		if callee == nil || analysis.ObjPkgPath(callee) != corePkg {
			return true
		}
		if name := callee.Name(); name != "RunN" && name != "RunEach" {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			reportRNGCaptures(pass, lit, callee.Name())
		}
		return true
	})
}

// reportRNGCaptures walks a scheduler cell body and reports each
// distinct *sim.RNG variable captured from outside the literal.
func reportRNGCaptures(pass *analysis.Pass, lit *ast.FuncLit, scheduler string) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if path, name := analysis.NamedPkgPath(v.Type()); path != simPkg || name != "RNG" {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the cell: per-cell state, fine
		}
		seen[v] = true
		pass.Reportf(id.Pos(),
			"closure passed to core.%s captures shared *sim.RNG %q: pool cells drain a shared stream "+
				"in scheduling order; derive per-cell randomness from the index (e.g. rng.Fork(uint64(i)))",
			scheduler, v.Name())
		return true
	})
}
