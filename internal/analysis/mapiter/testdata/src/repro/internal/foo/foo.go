// Package foo is a mapiter fixture: map-range loops whose bodies do
// and do not reach observable sinks.
package foo

import (
	"encoding/csv"
	"fmt"
	"sort"

	"repro/internal/trace"
)

func printAll(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches observable sink \(fmt\.Println\)`
		fmt.Println(k, v)
	}
}

func recordAll(c *trace.Capture, m map[string]trace.Packet) {
	for _, p := range m { // want `observable sink \(trace\.Record\)`
		c.Record(p)
	}
}

func writeRows(w *csv.Writer, m map[string][]string) {
	for _, row := range m { // want `observable sink \(csv\.Writer\.Write\)`
		w.Write(row)
	}
}

func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `floating-point accumulation`
		sum += v
	}
	return sum
}

// intTotal accumulates integers: associative, order cannot leak.
func intTotal(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// loopLocal accumulates into a variable scoped to the body: the
// order-dependent bits never escape an iteration.
func loopLocal(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		if s > 1 {
			n++
		}
	}
	return n
}

// sortedKeys is the sanctioned pattern: collect, sort, then emit.
func sortedKeys(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

func audited(m map[string]int) {
	//simlint:allow mapiter -- fixture: order-independence audited by hand
	for k, v := range m {
		fmt.Println(k, v)
	}
}
