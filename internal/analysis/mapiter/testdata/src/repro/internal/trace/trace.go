// Package trace is a fixture stub of the trace sink: the two
// recording methods mapiter treats as observable sinks.
package trace

type FlowID int

type FlowKey struct{ ClientPort, ServerPort int }

type Packet struct {
	Flow FlowID
	Wire int64
}

type Capture struct{ packets []Packet }

func (c *Capture) Record(p Packet) { c.packets = append(c.packets, p) }

func (c *Capture) OpenFlow(k FlowKey, serverName string) FlowID { return FlowID(len(c.packets)) }
