// Package mapiter flags map iteration whose order leaks into
// observable output — the classic silent determinism killer.
//
// Go randomises map iteration order per run. That is harmless while
// the loop body is order-independent (building another map, summing
// integers, collecting keys for a later sort), but the moment the
// body reaches an observable sink the program's output depends on the
// iteration order of this particular run:
//
//   - trace.Sink.Record / OpenFlow — packets recorded from a map loop
//     land in the trace in random order, so analyses differ run to run;
//   - fmt print/fprint family and csv.Writer — drivers whose stdout
//     and CSV artifacts are diffed byte-for-byte (cloudbench at
//     -parallel 1 vs 8) emit shuffled rows;
//   - testing.T/B log and error methods — test failure output becomes
//     unreproducible, and -count=2 runs disagree about first failure;
//   - floating-point accumulation into a variable (or float-valued
//     map/slice cell) declared outside the loop — float addition is
//     not associative, so the sum's low bits depend on visit order,
//     which golden pins then surface as flaky drift.
//
// The fix is always the same: extract the keys, sort them, and range
// over the sorted slice. Loops whose order-dependence is deliberate
// and audited carry `//simlint:allow mapiter`.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flag range-over-map loops whose body reaches an observable sink (trace records, fmt/csv " +
		"output, test logs, float accumulation) without sorted iteration",
	Run: run,
}

var tracePkg = analysis.ModulePath + "/internal/trace"

// sinkMethods lists, per declaring package, the callee names that make
// iteration order observable.
var sinkMethods = map[string]map[string]bool{
	tracePkg:       {"Record": true, "OpenFlow": true},
	"encoding/csv": {"Write": true, "WriteAll": true},
	"testing": {
		"Error": true, "Errorf": true,
		"Fatal": true, "Fatalf": true,
		"Log": true, "Logf": true,
		"Skip": true, "Skipf": true,
	},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findSink(pass, rs); sink != "" {
				pass.Reportf(rs.For,
					"map iteration order reaches observable sink (%s): extract and sort the keys, "+
						"then range over the sorted slice", sink)
			}
			return true
		})
	}
	return nil
}

// findSink returns a description of the first observable sink the
// range body reaches, or "".
func findSink(pass *analysis.Pass, rs *ast.RangeStmt) string {
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if s := callSink(pass, n); s != "" {
				sink = s
				return false
			}
		case *ast.AssignStmt:
			if s := floatAccumulation(pass, n, rs); s != "" {
				sink = s
				return false
			}
		}
		return true
	})
	return sink
}

// callSink classifies a call as an observable sink.
func callSink(pass *analysis.Pass, call *ast.CallExpr) string {
	obj := analysis.CalleeObj(pass.TypesInfo, call.Fun)
	if obj == nil {
		return ""
	}
	pkg, name := analysis.ObjPkgPath(obj), obj.Name()
	if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return "fmt." + name
	}
	if sinkMethods[pkg][name] {
		switch pkg {
		case tracePkg:
			return "trace." + name
		case "encoding/csv":
			return "csv.Writer." + name
		default:
			return "testing." + name
		}
	}
	return ""
}

// floatAccumulation reports compound assignments (+=, -=, *=, /=)
// that fold floating-point values into storage living outside the
// loop: non-associative accumulation makes the low bits order-
// dependent.
func floatAccumulation(pass *analysis.Pass, as *ast.AssignStmt, rs *ast.RangeStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	if len(as.Lhs) != 1 {
		return ""
	}
	lhs := as.Lhs[0]
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return ""
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return ""
	}
	if root := rootObj(pass, lhs); root != nil && root.Pos() >= rs.Pos() && root.Pos() <= rs.End() {
		return "" // accumulator scoped to the loop body: order can't escape
	}
	return "floating-point accumulation (non-associative: sum depends on visit order)"
}

// rootObj resolves the leftmost identifier an lvalue hangs off.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
