package mapiter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "repro/internal/foo", mapiter.Analyzer)
}
