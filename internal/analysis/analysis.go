// Package analysis is simlint's static-analysis framework: a
// stdlib-only reimplementation of the subset of
// golang.org/x/tools/go/analysis that the repository's determinism
// lints need, plus the `go vet -vettool` unit-checker protocol that
// lets cmd/simlint slot into the standard toolchain.
//
// Why not depend on x/tools? The build environment for this
// repository is hermetic (stdlib only), and the four simlint checks
// need no cross-package facts — every invariant they enforce is
// visible in a single type-checked package. The framework therefore
// keeps the x/tools shape (Analyzer, Pass, Reportf, analysistest-style
// fixtures) so the analyzers could be ported to the real framework
// mechanically, while implementing only the slice that is load-bearing
// here: per-package syntax+types analysis, `// want` fixture tests,
// and the vet tool protocol (see unitchecker.go).
//
// The four analyzers (subpackages walltime, rngdiscipline, mapiter
// and goldendiscipline) machine-enforce the engine's determinism
// contract; README.md in this directory documents each invariant and
// the `//simlint:allow <check>` escape hatch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import-path root of this repository. The
// analyzers' package allowlists are expressed against it.
const ModulePath = "repro"

// An Analyzer describes one simlint check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer (minus facts and
// dependencies, which simlint does not need).
type Analyzer struct {
	// Name identifies the check. It is the token accepted by the
	// `//simlint:allow <name>` suppression directive.
	Name string
	// Doc is the one-paragraph description shown by documentation.
	Doc string
	// Run executes the check against one type-checked package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Check   string // Analyzer.Name
	Message string
}

// Reportf records a diagnostic at pos. Diagnostics on a line carrying
// (or immediately following) a matching `//simlint:allow` directive
// are dropped by the driver.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Check: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// RunPackage runs the analyzers over one type-checked package and
// returns the surviving diagnostics in position order. It applies the
// `//simlint:allow` suppression directives found in the package's
// comments; see parseAllows for the directive syntax.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := parseAllows(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report: func(d Diagnostic) {
				if !allows.suppresses(fset, d) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Check < diags[j].Check
	})
	return diags, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// populated, ready to pass to types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// PkgPath returns pkg's import path with go test's variant decoration
// stripped: "p [p.test]" and "p_test [p.test]" both normalise to "p",
// so allowlists written against source import paths also cover the
// package's test builds.
func PkgPath(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, "_test")
	return path
}

// ObjPkgPath returns the normalised import path of the package that
// declares obj, or "" for builtins and universe-scope objects.
func ObjPkgPath(obj types.Object) string {
	if obj == nil {
		return ""
	}
	return PkgPath(obj.Pkg())
}

// IsTestFile reports whether the file was parsed from a _test.go
// source file.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// NamedPkgPath returns the normalised import path of the package
// declaring t's (pointer-dereferenced) named type, or "" when t is
// not a named type.
func NamedPkgPath(t types.Type) (path, name string) {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	return ObjPkgPath(obj), obj.Name()
}

// CalleeObj resolves the object a call expression's function operand
// names: package functions, methods and generic instantiations all
// resolve; indirect calls through function values do not.
func CalleeObj(info *types.Info, fun ast.Expr) types.Object {
	for {
		switch e := fun.(type) {
		case *ast.ParenExpr:
			fun = e.X
		case *ast.IndexExpr: // explicit generic instantiation f[T](...)
			fun = e.X
		case *ast.IndexListExpr:
			fun = e.X
		case *ast.Ident:
			return info.Uses[e]
		case *ast.SelectorExpr:
			return info.Uses[e.Sel]
		default:
			return nil
		}
	}
}

// allowIndex records, per file and line, the set of check names a
// `//simlint:allow` directive suppresses.
type allowIndex map[string]map[int]map[string]bool

// parseAllows scans file comments for suppression directives of the
// form
//
//	//simlint:allow <check> [<check>...] [-- reason]
//
// A directive suppresses matching diagnostics reported on its own
// line (trailing comment) or on the line directly below it
// (standalone comment above the audited statement).
func parseAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//simlint:allow")
				if !ok {
					continue
				}
				text, _, _ = strings.Cut(text, "--")
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, check := range strings.Fields(text) {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = make(map[string]bool)
						}
						lines[line][check] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx allowIndex) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return idx[pos.Filename][pos.Line][d.Check]
}
