package chunker

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func reassemble(chunks []Chunk) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, c.Data...)
	}
	return out
}

func TestFixedSplitExact(t *testing.T) {
	f := NewFixed(4)
	data := []byte("abcdefghij") // 10 bytes -> 4,4,2
	chunks := f.Split(data)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	wantSizes := []int64{4, 4, 2}
	for i, s := range Sizes(chunks) {
		if s != wantSizes[i] {
			t.Fatalf("sizes = %v", Sizes(chunks))
		}
	}
	if chunks[2].Offset != 8 {
		t.Fatalf("offset = %d", chunks[2].Offset)
	}
	if !bytes.Equal(reassemble(chunks), data) {
		t.Fatal("reassembly mismatch")
	}
}

func TestFixedEmptyAndSingle(t *testing.T) {
	f := NewFixed(1 << 20)
	if got := f.Split(nil); got != nil {
		t.Fatal("empty input should produce no chunks")
	}
	chunks := f.Split([]byte("x"))
	if len(chunks) != 1 || chunks[0].Len() != 1 {
		t.Fatalf("single byte: %v", chunks)
	}
}

func TestNewFixedPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for size 0")
		}
	}()
	NewFixed(0)
}

func TestFixedPartitionProperty(t *testing.T) {
	rng := sim.NewRNG(1)
	f := func(sizeSeed uint16, n uint16) bool {
		size := int64(sizeSeed%4096) + 1
		data := rng.Bytes(int(n))
		chunks := NewFixed(size).Split(data)
		// Exact coverage, in order, all within size.
		var off int64
		for _, c := range chunks {
			if c.Offset != off || c.Len() > size || c.Len() == 0 {
				return false
			}
			off += c.Len()
		}
		return off == int64(len(data)) && bytes.Equal(reassemble(chunks), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContentDefinedPartitionProperty(t *testing.T) {
	rng := sim.NewRNG(2)
	cd := NewContentDefined(1024)
	f := func(n uint16) bool {
		data := rng.Bytes(int(n))
		chunks := cd.Split(data)
		var off int64
		for _, c := range chunks {
			if c.Offset != off || c.Len() == 0 || c.Len() > cd.Max {
				return false
			}
			// All but the final chunk respect the minimum.
			off += c.Len()
		}
		return off == int64(len(data)) && bytes.Equal(reassemble(chunks), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContentDefinedAverageSize(t *testing.T) {
	rng := sim.NewRNG(3)
	cd := NewContentDefined(4096)
	data := rng.Bytes(1 << 20)
	chunks := cd.Split(data)
	avg := float64(len(data)) / float64(len(chunks))
	if avg < 1024 || avg > 16384 {
		t.Fatalf("average chunk = %.0f bytes, want around 4096", avg)
	}
	for i, c := range chunks {
		if i < len(chunks)-1 && c.Len() < cd.Min {
			t.Fatalf("chunk %d below min: %d", i, c.Len())
		}
	}
}

func TestContentDefinedDeterminism(t *testing.T) {
	rng := sim.NewRNG(4)
	data := rng.Bytes(100_000)
	cd := NewContentDefined(2048)
	a, b := cd.Split(data), cd.Split(data)
	if len(a) != len(b) {
		t.Fatal("nondeterministic chunk count")
	}
	for i := range a {
		if a[i].Offset != b[i].Offset {
			t.Fatal("nondeterministic boundaries")
		}
	}
}

// The key property that distinguishes content-defined from fixed
// chunking: a local edit disturbs only a bounded neighbourhood of
// chunks, while with fixed chunking an insertion changes every chunk
// after the edit point.
func TestContentDefinedLocality(t *testing.T) {
	rng := sim.NewRNG(5)
	data := rng.Bytes(512 << 10)
	cd := NewContentDefined(4096)
	before := cd.Split(data)

	// Insert 100 bytes near the middle.
	edit := make([]byte, 0, len(data)+100)
	mid := len(data) / 2
	edit = append(edit, data[:mid]...)
	edit = append(edit, rng.Bytes(100)...)
	edit = append(edit, data[mid:]...)
	after := cd.Split(edit)

	hashes := func(chunks []Chunk) map[string]int {
		m := make(map[string]int)
		for _, c := range chunks {
			m[string(c.Data)]++
		}
		return m
	}
	hb, ha := hashes(before), hashes(after)
	shared := 0
	for k := range ha {
		if hb[k] > 0 {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(after)); frac < 0.8 {
		t.Fatalf("only %.0f%% of chunks survive a local edit, want >= 80%%", frac*100)
	}

	// Contrast: fixed chunking shares only the prefix.
	fx := NewFixed(4096)
	fb, fa := hashes(fx.Split(data)), hashes(fx.Split(edit))
	sharedFixed := 0
	for k := range fa {
		if fb[k] > 0 {
			sharedFixed++
		}
	}
	if sharedFixed >= shared {
		t.Fatalf("fixed chunking (%d shared) should lose more chunks than CDC (%d)", sharedFixed, shared)
	}
}

func TestSizesHelper(t *testing.T) {
	if got := Sizes(nil); len(got) != 0 {
		t.Fatal("Sizes(nil)")
	}
}
