// Package chunker splits file content into chunks, the transfer unit
// of every sync client in the study (Sect. 4.1).
//
// Two strategies are implemented:
//
//   - Fixed-size chunking, as used by Dropbox (4 MB) and Google Drive
//     (8 MB): chunk boundaries sit at fixed offsets, so inserting bytes
//     shifts all subsequent chunk contents.
//   - Content-defined chunking with a rolling hash (the paper observes
//     SkyDrive and Wuala using variable chunk sizes): boundaries follow
//     content features, so local edits disturb only nearby chunks.
package chunker

import "fmt"

// Chunk is one piece of a file.
type Chunk struct {
	Offset int64
	Data   []byte
}

// Len returns the chunk length in bytes.
func (c Chunk) Len() int64 { return int64(len(c.Data)) }

// Chunker splits byte sequences into chunks.
type Chunker interface {
	// Split partitions data into consecutive chunks covering it
	// exactly. Implementations do not copy: chunk Data aliases the
	// input.
	Split(data []byte) []Chunk
}

// Fixed is a fixed-size chunker.
type Fixed struct {
	Size int64
}

// NewFixed returns a fixed-size chunker; size must be positive.
func NewFixed(size int64) *Fixed {
	if size <= 0 {
		panic(fmt.Sprintf("chunker: invalid fixed size %d", size))
	}
	return &Fixed{Size: size}
}

// Split implements Chunker.
func (f *Fixed) Split(data []byte) []Chunk {
	if len(data) == 0 {
		return nil
	}
	n := (int64(len(data)) + f.Size - 1) / f.Size
	out := make([]Chunk, 0, n)
	for off := int64(0); off < int64(len(data)); off += f.Size {
		end := off + f.Size
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		out = append(out, Chunk{Offset: off, Data: data[off:end]})
	}
	return out
}

// ContentDefined is a rolling-hash (buzhash) chunker. A boundary is
// declared whenever the rolling hash over a 48-byte window hits a
// configurable pattern, subject to minimum and maximum chunk sizes.
type ContentDefined struct {
	Min, Avg, Max int64
	mask          uint32
}

// NewContentDefined returns a content-defined chunker with the given
// average chunk size (rounded down to a power of two for the boundary
// mask). Min defaults to avg/4 and max to avg*4.
func NewContentDefined(avg int64) *ContentDefined {
	if avg < 64 {
		panic(fmt.Sprintf("chunker: average %d too small", avg))
	}
	// Mask with log2(avg) low bits set: boundary probability 1/avg.
	bits := 0
	for v := avg; v > 1; v >>= 1 {
		bits++
	}
	return &ContentDefined{
		Min:  avg / 4,
		Avg:  avg,
		Max:  avg * 4,
		mask: (1 << bits) - 1,
	}
}

const windowSize = 48

// buzTable is a fixed pseudo-random byte-to-uint32 substitution for
// the buzhash. Generated from a simple LCG so the package has no
// runtime dependencies; any fixed random-looking table works.
var buzTable = func() [256]uint32 {
	var t [256]uint32
	state := uint32(2463534242)
	for i := range t {
		// xorshift32
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		t[i] = state
	}
	return t
}()

func rotl(v uint32, n uint) uint32 { return v<<n | v>>(32-n) }

// Split implements Chunker. A boundary can only be declared once a
// chunk has reached Min bytes, and the rolling hash depends only on
// the trailing windowSize bytes, so the scan skips straight past the
// Min region of every chunk: it warms the hash over the (at most
// windowSize-byte) tail of that region and evaluates boundaries from
// the first eligible position on. The produced chunks are identical
// to the byte-at-a-time formulation.
func (c *ContentDefined) Split(data []byte) []Chunk {
	n := int64(len(data))
	if n == 0 {
		return nil
	}
	var out []Chunk
	for start := int64(0); start < n; {
		if start+c.Min >= n {
			// The remainder cannot reach Min before EOF (or reaches
			// it exactly at the last byte); either way it is the
			// final chunk.
			out = append(out, Chunk{Offset: start, Data: data[start:]})
			break
		}
		cut := c.boundary(data, start, n)
		out = append(out, Chunk{Offset: start, Data: data[start:cut]})
		start = cut
	}
	return out
}

// boundary returns the exclusive end of the chunk starting at start.
// The caller guarantees start+Min < n, so at least one in-bounds
// candidate position exists.
func (c *ContentDefined) boundary(data []byte, start, n int64) int64 {
	limit := start + c.Max // cut here regardless of hash (size == Max)
	if limit > n {
		limit = n
	}
	// First position where a boundary may be declared (chunk size
	// reaches Min), and the hash state just before processing it:
	// the rolling hash over data[max(start, i0-windowSize) : i0].
	i0 := start + c.Min - 1
	w0 := i0 - windowSize
	if w0 < start {
		w0 = start
	}
	var h uint32
	for _, b := range data[w0:i0] {
		h = rotl(h, 1) ^ buzTable[b]
	}
	// Below start+windowSize the window is still growing: bytes are
	// added but none drop out yet. The window-subtraction branch is
	// hoisted out of the loops by splitting the scan at the
	// saturation point.
	sat := start + windowSize
	if sat > limit {
		sat = limit
	}
	i := i0
	for ; i < sat; i++ {
		h = rotl(h, 1) ^ buzTable[data[i]]
		if h&c.mask == c.mask {
			return i + 1
		}
	}
	for ; i < limit; i++ {
		h = rotl(h, 1) ^ buzTable[data[i]]
		h ^= rotl(buzTable[data[i-windowSize]], windowSize%32)
		if h&c.mask == c.mask {
			return i + 1
		}
	}
	return limit
}

// Sizes returns just the chunk lengths, convenient for tests and for
// the capability detector's chunk-size inference.
func Sizes(chunks []Chunk) []int64 {
	out := make([]int64, len(chunks))
	for i, c := range chunks {
		out[i] = c.Len()
	}
	return out
}
