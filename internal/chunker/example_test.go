package chunker_test

import (
	"fmt"

	"repro/internal/chunker"
)

// ExampleFixed splits content the way Dropbox does (fixed-size
// chunks), showing offsets and lengths.
func ExampleFixed() {
	data := make([]byte, 10_000)
	for _, c := range chunker.NewFixed(4096).Split(data) {
		fmt.Printf("offset %5d len %4d\n", c.Offset, c.Len())
	}
	// Output:
	// offset     0 len 4096
	// offset  4096 len 4096
	// offset  8192 len 1808
}
