package chunker

import (
	"bytes"
	"math/rand"
	"testing"
)

// seedSplit is the pre-fast-path content-defined split: one rolling
// hash maintained byte by byte over the whole input, boundary check at
// every position, window-subtraction branch inside the loop. The
// fast-path Split must produce identical chunks.
func seedSplit(c *ContentDefined, data []byte) []Chunk {
	if len(data) == 0 {
		return nil
	}
	var out []Chunk
	start := int64(0)
	n := int64(len(data))
	var h uint32
	for i := int64(0); i < n; i++ {
		h = rotl(h, 1) ^ buzTable[data[i]]
		if w := i - windowSize; w >= start {
			h ^= rotl(buzTable[data[w]], windowSize%32)
		}
		size := i - start + 1
		atBoundary := size >= c.Min && (h&c.mask) == c.mask
		if atBoundary || size >= c.Max {
			out = append(out, Chunk{Offset: start, Data: data[start : i+1]})
			start = i + 1
			h = 0
		}
	}
	if start < n {
		out = append(out, Chunk{Offset: start, Data: data[start:]})
	}
	return out
}

func TestSplitMatchesSeedByteAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{0, 1, 63, 64, 100, 4096, 100_000, 1 << 20}
	for _, avg := range []int64{64, 256, 4096, 64 << 10, 1 << 20} {
		c := NewContentDefined(avg)
		for _, size := range sizes {
			data := make([]byte, size)
			rng.Read(data)
			// Plant low-entropy runs so boundaries cluster and the
			// Min/Max caps both trigger.
			for i := 0; i+1000 < len(data); i += 10_000 {
				copy(data[i:i+1000], bytes.Repeat([]byte{0xAB}, 1000))
			}
			got := c.Split(data)
			want := seedSplit(c, data)
			if len(got) != len(want) {
				t.Fatalf("avg=%d size=%d: %d chunks, want %d", avg, size, len(got), len(want))
			}
			var covered int64
			for i := range got {
				if got[i].Offset != want[i].Offset || !bytes.Equal(got[i].Data, want[i].Data) {
					t.Fatalf("avg=%d size=%d: chunk %d differs (offset %d vs %d, len %d vs %d)",
						avg, size, i, got[i].Offset, want[i].Offset, got[i].Len(), want[i].Len())
				}
				if got[i].Offset != covered {
					t.Fatalf("avg=%d size=%d: chunk %d not contiguous", avg, size, i)
				}
				covered += got[i].Len()
			}
			if covered != int64(size) {
				t.Fatalf("avg=%d size=%d: chunks cover %d bytes", avg, size, covered)
			}
		}
	}
}

func BenchmarkContentDefinedSplit(b *testing.B) {
	data := make([]byte, 8<<20)
	rand.New(rand.NewSource(1)).Read(data)
	for _, tc := range []struct {
		name string
		avg  int64
	}{{"avg1MB", 1 << 20}, {"avg4MB", 4 << 20}} {
		c := NewContentDefined(tc.avg)
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				c.Split(data)
			}
		})
		b.Run(tc.name+"/seed", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				seedSplit(c, data)
			}
		})
	}
}

func BenchmarkFixedSplit(b *testing.B) {
	data := make([]byte, 8<<20)
	c := NewFixed(4 << 20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c.Split(data)
	}
}
