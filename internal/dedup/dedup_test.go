package dedup

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPutAndHas(t *testing.T) {
	s := NewStore()
	data := []byte("hello chunk")
	h := HashBytes(data)
	if s.Has(h) {
		t.Fatal("empty store has chunk")
	}
	got, isNew := s.Put(data)
	if got != h || !isNew {
		t.Fatalf("Put = %v,%v", got, isNew)
	}
	if !s.Has(h) || s.Size(h) != int64(len(data)) {
		t.Fatal("chunk not stored")
	}
}

func TestPutIdempotent(t *testing.T) {
	s := NewStore()
	data := []byte("dup me")
	s.Put(data)
	_, isNew := s.Put(data)
	if isNew {
		t.Fatal("second Put claimed new")
	}
	if s.UniqueChunks() != 1 || s.StoredBytes() != int64(len(data)) {
		t.Fatalf("store state: %d chunks, %d bytes", s.UniqueChunks(), s.StoredBytes())
	}
	if s.Hits() != 1 {
		t.Fatalf("hits = %d", s.Hits())
	}
}

func TestStoreSurvivesManifestDelete(t *testing.T) {
	// The paper's Sect. 4.3 step iv: delete a file locally, restore
	// it, and the chunks must still dedup against the server store.
	s := NewStore()
	m := NewManifest()
	data := []byte("file content that will be deleted and restored")
	h, _ := s.Put(data)
	m.Set("docs/a.bin", []Hash{h})

	m.Delete("docs/a.bin")
	if m.Get("docs/a.bin") != nil || m.Len() != 0 {
		t.Fatal("manifest delete failed")
	}
	// Restore: the client re-hashes and finds the chunk server-side.
	if !s.Has(HashBytes(data)) {
		t.Fatal("server store lost the chunk after local delete")
	}
	_, isNew := s.Put(data)
	if isNew {
		t.Fatal("restore re-uploaded existing content")
	}
}

func TestManifestSetCopiesInput(t *testing.T) {
	m := NewManifest()
	hs := []Hash{HashBytes([]byte("a"))}
	m.Set("p", hs)
	hs[0] = HashBytes([]byte("b"))
	if m.Get("p")[0] == hs[0] {
		t.Fatal("manifest aliases caller slice")
	}
}

func TestHashCollisionFreeOnDistinctContent(t *testing.T) {
	rng := sim.NewRNG(1)
	f := func(n uint8) bool {
		a := rng.Bytes(int(n) + 1)
		b := rng.Bytes(int(n) + 1)
		if string(a) == string(b) {
			return true
		}
		return HashBytes(a) != HashBytes(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStorePutReturnsStableHash(t *testing.T) {
	s := NewStore()
	data := []byte("stable")
	h1, _ := s.Put(data)
	h2, _ := s.Put(data)
	if h1 != h2 || h1 != HashBytes(data) {
		t.Fatal("hash not stable")
	}
	if h1.String() == "" || len(h1.String()) != 64 {
		t.Fatal("hex form wrong")
	}
}
