package dedup

import (
	"encoding/binary"
	"sync"
)

// DefaultShards is the shard count of NewStore: enough stripes that a
// worker-per-core fleet rarely collides on a shard lock, small enough
// that a per-repetition single-client store stays a handful of maps.
const DefaultShards = 64

// Store is a server-side content-addressed chunk store, sharded by
// hash prefix with one lock stripe per shard so concurrent clients
// Put/PutHashed without serialising on a single mutex. The zero value
// is not usable; call NewStore (or NewStoreSharded for an explicit
// shard count — NewStoreSharded(1) is the single-lock configuration
// the benchsnap fleet micro uses as its baseline).
//
// All methods are safe for concurrent use. Counters (StoredBytes,
// UniqueChunks, Hits, Puts) are kept per shard and aggregated on
// read; a read that overlaps writers returns some valid interleaving,
// and is exact once writers are quiescent.
type Store struct {
	shards []shard
	mask   uint32
}

// shard is one lock stripe. The struct is padded to its own cache
// lines so per-shard counters on adjacent shards do not false-share
// under concurrent Put storms.
type shard struct {
	mu     sync.RWMutex
	sizes  map[Hash]int64
	claims map[Hash]claim // lazily allocated; see Claim
	bytes  int64
	puts   int64
	hits   int64
	_      [40]byte
}

// claim is the earliest would-be uploader of a chunk in fleet virtual
// time: the (instant, user) pair orders uploads the way a sequential
// replay of the service day would.
type claim struct {
	at   int64 // virtual-time instant, ns from day start
	user int64
}

// before orders claims by (instant, user); the user index breaks ties
// deterministically.
func (c claim) before(o claim) bool {
	return c.at < o.at || (c.at == o.at && c.user < o.user)
}

// NewStore returns an empty store with DefaultShards lock stripes.
func NewStore() *Store { return NewStoreSharded(DefaultShards) }

// NewStoreSharded returns an empty store with n lock stripes, rounded
// up to a power of two (minimum 1; n=1 is a single-lock store).
func NewStoreSharded(n int) *Store {
	if n < 1 {
		n = 1
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &Store{shards: make([]shard, pow), mask: uint32(pow - 1)}
	for i := range s.shards {
		s.shards[i].sizes = make(map[Hash]int64)
	}
	return s
}

// Shards returns the number of lock stripes.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor routes a content address to its stripe by hash prefix;
// SHA-256 output is uniform, so the stripes load-balance themselves.
func (s *Store) shardFor(h Hash) *shard {
	return &s.shards[binary.LittleEndian.Uint32(h[:4])&s.mask]
}

// Has reports whether the store already holds content with this hash.
func (s *Store) Has(h Hash) bool {
	sh := s.shardFor(h)
	sh.mu.RLock()
	_, ok := sh.sizes[h]
	sh.mu.RUnlock()
	return ok
}

// Put stores a chunk and reports whether it was new. Storing an
// already-present chunk is a no-op (and counts as a dedup hit).
func (s *Store) Put(data []byte) (h Hash, isNew bool) {
	h = HashBytes(data)
	return h, s.PutHashed(h, int64(len(data)))
}

// PutHashed is Put for a caller that already computed the content
// address (the deduplicating client hashes every chunk before asking
// the server about it, so hashing twice per chunk is pure waste). It
// reports whether the chunk was new — one map lookup decides both the
// insert and the dedup verdict, so callers no longer pair it with a
// separate Has.
func (s *Store) PutHashed(h Hash, size int64) (isNew bool) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	isNew = sh.putLocked(h, size)
	sh.mu.Unlock()
	return isNew
}

// putLocked inserts a chunk into a locked shard, maintaining the
// per-shard counters. One lookup: the insert and the hit verdict come
// off the same map access.
func (sh *shard) putLocked(h Hash, size int64) (isNew bool) {
	if _, ok := sh.sizes[h]; ok {
		sh.hits++
		return false
	}
	sh.sizes[h] = size
	sh.bytes += size
	sh.puts++
	return true
}

// Claim records (at, user) as a would-be uploader of chunk h during a
// fleet day. The store keeps the earliest claim in (at, user) order —
// a pure function of the offered load, independent of the execution
// order of concurrent claimants — so a parallel fleet pass resolves
// exactly the upload set a sequential virtual-time replay would: the
// earliest claimant uploads, everyone else deduplicates (see Winner).
// The chunk itself is stored as by PutHashed, and the claim counts
// identically toward the put/hit counters.
func (s *Store) Claim(h Hash, size int64, at, user int64) {
	sh := s.shardFor(h)
	c := claim{at: at, user: user}
	sh.mu.Lock()
	sh.putLocked(h, size)
	if sh.claims == nil {
		sh.claims = make(map[Hash]claim)
	}
	if cur, ok := sh.claims[h]; !ok || c.before(cur) {
		sh.claims[h] = c
	}
	sh.mu.Unlock()
}

// Winner reports whether (at, user) is the earliest recorded claim
// for h — i.e. whether that claimant pays the upload while every
// other claimant of the same chunk deduplicates against it. Reading
// an unclaimed hash returns false.
func (s *Store) Winner(h Hash, at, user int64) bool {
	sh := s.shardFor(h)
	sh.mu.RLock()
	c, ok := sh.claims[h]
	sh.mu.RUnlock()
	return ok && c == claim{at: at, user: user}
}

// Size returns the stored size of a chunk, or 0 if absent.
func (s *Store) Size(h Hash) int64 {
	sh := s.shardFor(h)
	sh.mu.RLock()
	size := sh.sizes[h]
	sh.mu.RUnlock()
	return size
}

// UniqueChunks returns how many distinct chunks the store holds,
// aggregated across shards.
func (s *Store) UniqueChunks() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.sizes)
		sh.mu.RUnlock()
	}
	return n
}

// StoredBytes returns the total bytes of unique content stored — the
// "storage capacity" the paper's dedup capability saves — aggregated
// across shards.
func (s *Store) StoredBytes() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.bytes
		sh.mu.RUnlock()
	}
	return n
}

// Hits returns how many Put/PutHashed/Claim calls were deduplicated
// away, aggregated across shards.
func (s *Store) Hits() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.hits
		sh.mu.RUnlock()
	}
	return n
}

// Puts returns how many Put/PutHashed/Claim calls stored new content,
// aggregated across shards. Puts+Hits is the total offered chunk
// count; Puts == UniqueChunks when the store started empty.
func (s *Store) Puts() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.puts
		sh.mu.RUnlock()
	}
	return n
}
