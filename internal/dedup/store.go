package dedup

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count of NewStore: enough stripes that a
// worker-per-core fleet rarely collides on a shard lock, small enough
// that a per-repetition single-client store stays a handful of maps.
const DefaultShards = 64

// Store is a server-side content-addressed chunk store, sharded by
// hash prefix with one lock stripe per shard so concurrent clients
// Put/PutHashed without serialising on a single mutex. The zero value
// is not usable; call NewStore (or NewStoreSharded for an explicit
// shard count — NewStoreSharded(1) is the single-lock configuration
// the benchsnap fleet micro uses as its baseline).
//
// All methods are safe for concurrent use. Counters (StoredBytes,
// UniqueChunks, Hits, Puts) are per-shard atomics maintained under the
// shard lock but read lock-free: a read that overlaps writers returns
// some valid interleaving, and is exact once writers are quiescent.
//
// The lock is a plain sync.Mutex, not a RWMutex: every hot-path store
// operation (PutHashed, Claim) writes, so the RWMutex reader/writer
// bookkeeping was pure overhead — the one read-mostly consumer,
// counter aggregation, is served by the atomics instead. Size and
// claim share one map entry per chunk, so a fleet-day Claim costs a
// single map access instead of one per map.
type Store struct {
	shards []shard
	mask   uint32
}

// shard is one lock stripe. The struct is padded to its own cache
// lines so per-shard state on adjacent shards does not false-share
// under concurrent Put storms.
type shard struct {
	mu     sync.Mutex
	chunks map[Hash]int32 // content address → slab index of its entry
	slab   entrySlab
	bytes  atomic.Int64
	puts   atomic.Int64
	hits   atomic.Int64
	unique atomic.Int64
	_      [32]byte // pad the state to full cache lines
}

// entrySlab hand-allocates entries in fixed blocks so every *entry
// stays address-stable for the life of the store — the property
// ChunkRef relies on — while paying one heap allocation per block
// instead of one per chunk. Entries are addressed by a dense int32
// index; keeping the index (not the pointer) as the map value leaves
// both the map and the blocks pointer-free, so the garbage collector
// never scans the store's bulk state.
type entrySlab struct {
	blocks [][]entry
}

const (
	entrySlabBits  = 10
	entrySlabBlock = 1 << entrySlabBits
	entrySlabMask  = entrySlabBlock - 1
)

func (s *entrySlab) alloc() (int32, *entry) {
	last := len(s.blocks) - 1
	if last < 0 || len(s.blocks[last]) == entrySlabBlock {
		s.blocks = append(s.blocks, make([]entry, 0, entrySlabBlock))
		last++
	}
	b := s.blocks[last]
	b = b[:len(b)+1]
	s.blocks[last] = b
	return int32(last<<entrySlabBits | (len(b) - 1)), &b[len(b)-1]
}

func (s *entrySlab) at(idx int32) *entry {
	return &s.blocks[idx>>entrySlabBits][idx&entrySlabMask]
}

// entry is everything the store knows about one chunk: its size and,
// during a fleet day, the earliest would-be uploader in fleet virtual
// time — the (instant, user) pair orders uploads the way a sequential
// replay of the service day would. Keeping the claim inside the chunk
// entry means Claim and Winner touch one map, not two.
type entry struct {
	size    int64
	at      int64 // earliest claim instant, ns from day start
	user    int64
	claimed bool
}

// beats reports whether claim (at, user) precedes the entry's current
// claim in (instant, user) order; the user index breaks ties
// deterministically. An unclaimed entry is beaten by any claim.
func (e *entry) beats(at, user int64) bool {
	return !e.claimed || at < e.at || (at == e.at && user < e.user)
}

// ChunkRef is an opaque handle to one chunk's store entry, returned by
// ClaimBatchRef. Entries are slab-allocated and never move, so a ref
// taken during the claim pass stays valid for the life of the store.
// The zero ChunkRef refers to nothing and never wins.
type ChunkRef struct{ e *entry }

// WonBy reports whether (at, user) is the earliest recorded claim for
// the referenced chunk — Winner without the map probe or the lock.
// Callers must not race it against in-flight Claim traffic: it is
// meant for the resolve phase of a claim/resolve protocol, after every
// claimant has synchronised with the claim pass (e.g. the fleet
// engine's barrier between its two RunN fan-outs).
func (r ChunkRef) WonBy(at, user int64) bool {
	e := r.e
	return e != nil && e.claimed && e.at == at && e.user == user
}

// NewStore returns an empty store with DefaultShards lock stripes.
func NewStore() *Store { return NewStoreSharded(DefaultShards) }

// NewStoreSharded returns an empty store with n lock stripes, rounded
// up to a power of two (minimum 1; n=1 is a single-lock store).
func NewStoreSharded(n int) *Store { return NewStoreShardedSized(n, 0) }

// NewStoreShardedSized is NewStoreSharded with a capacity hint: the
// per-shard chunk maps are pre-sized for expectedChunks total unique
// chunks, so a caller that knows its offered load (a fleet day, a
// benchmark hammer) skips the incremental map growth on the hot path.
// The hint only affects allocation, never behaviour.
func NewStoreShardedSized(n, expectedChunks int) *Store {
	if n < 1 {
		n = 1
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	perShard := 0
	if expectedChunks > 0 {
		perShard = expectedChunks / pow
	}
	s := &Store{shards: make([]shard, pow), mask: uint32(pow - 1)}
	for i := range s.shards {
		s.shards[i].chunks = make(map[Hash]int32, perShard)
	}
	return s
}

// Shards returns the number of lock stripes.
func (s *Store) Shards() int { return len(s.shards) }

// ShardOf returns the index of the lock stripe h routes to. Callers
// batching operations group hashes by this index and hand each group
// to ClaimBatch/WinnerBatch, paying one lock acquisition per group
// instead of one per chunk.
func (s *Store) ShardOf(h Hash) int {
	return int(binary.LittleEndian.Uint32(h[:4]) & s.mask)
}

// shardFor routes a content address to its stripe by hash prefix;
// SHA-256 output is uniform, so the stripes load-balance themselves.
func (s *Store) shardFor(h Hash) *shard {
	return &s.shards[binary.LittleEndian.Uint32(h[:4])&s.mask]
}

// Has reports whether the store already holds content with this hash.
func (s *Store) Has(h Hash) bool {
	sh := s.shardFor(h)
	sh.mu.Lock()
	_, ok := sh.chunks[h]
	sh.mu.Unlock()
	return ok
}

// Put stores a chunk and reports whether it was new. Storing an
// already-present chunk is a no-op (and counts as a dedup hit).
func (s *Store) Put(data []byte) (h Hash, isNew bool) {
	h = HashBytes(data)
	return h, s.PutHashed(h, int64(len(data)))
}

// PutHashed is Put for a caller that already computed the content
// address (the deduplicating client hashes every chunk before asking
// the server about it, so hashing twice per chunk is pure waste). It
// reports whether the chunk was new — one map lookup decides both the
// insert and the dedup verdict, so callers no longer pair it with a
// separate Has.
func (s *Store) PutHashed(h Hash, size int64) (isNew bool) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	isNew = sh.putLocked(h, size)
	sh.mu.Unlock()
	return isNew
}

// putLocked inserts a chunk into a locked shard, maintaining the
// per-shard counters. One lookup: the insert and the hit verdict come
// off the same map access.
func (sh *shard) putLocked(h Hash, size int64) (isNew bool) {
	if _, ok := sh.chunks[h]; ok {
		sh.hits.Add(1)
		return false
	}
	idx, e := sh.slab.alloc()
	e.size = size
	sh.chunks[h] = idx
	sh.bytes.Add(size)
	sh.puts.Add(1)
	sh.unique.Add(1)
	return true
}

// claimLocked records (at, user) as a would-be uploader of h in a
// locked shard; the earliest (at, user) pair wins. One map access
// covers the insert, the put/hit counters and the claim minimum; the
// returned entry is the chunk's stable slab slot.
func (sh *shard) claimLocked(h Hash, size, at, user int64) *entry {
	idx, ok := sh.chunks[h]
	if !ok {
		idx, e := sh.slab.alloc()
		*e = entry{size: size, at: at, user: user, claimed: true}
		sh.chunks[h] = idx
		sh.bytes.Add(size)
		sh.puts.Add(1)
		sh.unique.Add(1)
		return e
	}
	e := sh.slab.at(idx)
	sh.hits.Add(1)
	if e.beats(at, user) {
		e.at, e.user, e.claimed = at, user, true
	}
	return e
}

// Claim records (at, user) as a would-be uploader of chunk h during a
// fleet day. The store keeps the earliest claim in (at, user) order —
// a pure function of the offered load, independent of the execution
// order of concurrent claimants — so a parallel fleet pass resolves
// exactly the upload set a sequential virtual-time replay would: the
// earliest claimant uploads, everyone else deduplicates (see Winner).
// The chunk itself is stored as by PutHashed, and the claim counts
// identically toward the put/hit counters.
func (s *Store) Claim(h Hash, size int64, at, user int64) {
	sh := s.shardFor(h)
	sh.mu.Lock()
	sh.claimLocked(h, size, at, user)
	sh.mu.Unlock()
}

// ClaimBatch is Claim for a group of chunks that all route to the same
// shard (group with ShardOf): one lock acquisition covers the whole
// batch. The batch is processed in order and is exactly equivalent to
// calling Claim(hs[i], sizes[i], at, user) for each i — the claim
// minimum is order-free, so batching cannot change the resolved upload
// set. hs and sizes must have equal length; an empty batch is a no-op.
func (s *Store) ClaimBatch(hs []Hash, sizes []int64, at, user int64) {
	if len(hs) == 0 {
		return
	}
	sh := s.shardFor(hs[0])
	sh.mu.Lock()
	for i, h := range hs {
		sh.claimLocked(h, sizes[i], at, user)
	}
	sh.mu.Unlock()
}

// ClaimBatchRef is ClaimBatch returning each chunk's ChunkRef in
// out[i]: the claim probe already finds the entry, so a claimant that
// will later ask Winner can keep the handle and resolve through
// ChunkRef.WonBy without a second map probe. len(out) must equal
// len(hs).
func (s *Store) ClaimBatchRef(hs []Hash, sizes []int64, at, user int64, out []ChunkRef) {
	if len(hs) == 0 {
		return
	}
	sh := s.shardFor(hs[0])
	sh.mu.Lock()
	for i, h := range hs {
		out[i] = ChunkRef{sh.claimLocked(h, sizes[i], at, user)}
	}
	sh.mu.Unlock()
}

// Winner reports whether (at, user) is the earliest recorded claim
// for h — i.e. whether that claimant pays the upload while every
// other claimant of the same chunk deduplicates against it. Reading
// an unclaimed hash returns false.
func (s *Store) Winner(h Hash, at, user int64) bool {
	sh := s.shardFor(h)
	sh.mu.Lock()
	won := false
	if idx, ok := sh.chunks[h]; ok {
		e := sh.slab.at(idx)
		won = e.claimed && e.at == at && e.user == user
	}
	sh.mu.Unlock()
	return won
}

// WinnerBatch is Winner for a group of chunks that all route to the
// same shard (group with ShardOf): out[i] reports whether (at, user)
// is the earliest recorded claim for hs[i]. One lock acquisition
// covers the whole batch. len(out) must equal len(hs).
func (s *Store) WinnerBatch(hs []Hash, at, user int64, out []bool) {
	if len(hs) == 0 {
		return
	}
	sh := s.shardFor(hs[0])
	sh.mu.Lock()
	for i, h := range hs {
		won := false
		if idx, ok := sh.chunks[h]; ok {
			e := sh.slab.at(idx)
			won = e.claimed && e.at == at && e.user == user
		}
		out[i] = won
	}
	sh.mu.Unlock()
}

// Size returns the stored size of a chunk, or 0 if absent.
func (s *Store) Size(h Hash) int64 {
	sh := s.shardFor(h)
	sh.mu.Lock()
	var size int64
	if idx, ok := sh.chunks[h]; ok {
		size = sh.slab.at(idx).size
	}
	sh.mu.Unlock()
	return size
}

// UniqueChunks returns how many distinct chunks the store holds,
// aggregated across shards without taking any lock.
func (s *Store) UniqueChunks() int {
	var n int64
	for i := range s.shards {
		n += s.shards[i].unique.Load()
	}
	return int(n)
}

// StoredBytes returns the total bytes of unique content stored — the
// "storage capacity" the paper's dedup capability saves — aggregated
// across shards without taking any lock.
func (s *Store) StoredBytes() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].bytes.Load()
	}
	return n
}

// Hits returns how many Put/PutHashed/Claim calls were deduplicated
// away, aggregated across shards without taking any lock.
func (s *Store) Hits() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].hits.Load()
	}
	return n
}

// Puts returns how many Put/PutHashed/Claim calls stored new content,
// aggregated across shards without taking any lock. Puts+Hits is the
// total offered chunk count; Puts == UniqueChunks when the store
// started empty.
func (s *Store) Puts() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].puts.Load()
	}
	return n
}
