package dedup

import (
	"sync"
	"testing"
)

// TestStoreConcurrentStress hammers one store from many goroutines
// mixing every operation the fleet performs concurrently — PutHashed,
// Put, Has, Claim, Winner and the aggregated counter reads. CI's
// -race job (go test -race ./internal/...) runs this with the race
// detector on; the final-state assertions below catch lost updates
// that a data race could cause even when the detector is off.
func TestStoreConcurrentStress(t *testing.T) {
	const (
		workers       = 16
		opsPerWorker  = 2000
		sharedHashes  = 128 // contended: every worker touches these
		privatePerGor = 64  // uncontended: worker-unique chunks
	)
	shared := randomHashes(101, sharedHashes)

	for _, shards := range []int{1, 64} {
		s := NewStoreSharded(shards)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				private := randomHashes(int64(1000+w), privatePerGor)
				for i := 0; i < opsPerWorker; i++ {
					h := shared[(i*7+w)%sharedHashes]
					switch i % 5 {
					case 0:
						s.PutHashed(h, 100)
					case 1:
						s.Has(h)
						s.PutHashed(private[i%privatePerGor], 10)
					case 2:
						// Claims from distinct (at, user) pairs; the
						// winner must be the minimum regardless of
						// interleaving.
						s.Claim(h, 100, int64(w*opsPerWorker+i), int64(w))
					case 3:
						// Batched claim/winner traffic: a single-chunk
						// batch is the degenerate shard group, so it
						// contends with the unbatched ops above on the
						// same hashes. The claim instants sit above
						// every case-2 instant, so they never displace
						// the minimum the final assertions predict.
						hb := [1]Hash{h}
						sb := [1]int64{100}
						at := int64((workers+w)*opsPerWorker + i)
						s.ClaimBatch(hb[:], sb[:], at, int64(w))
						var refs [1]ChunkRef
						s.ClaimBatchRef(hb[:], sb[:], at+1, int64(w), refs[:])
						var out [1]bool
						s.WinnerBatch(hb[:], 0, 0, out[:])
						// refs[0].WonBy is deliberately NOT read here:
						// it is a lock-free resolve-phase read, legal
						// only after claim traffic has quiesced.
						s.Size(h)
					case 4:
						// Aggregated counter reads overlapping writers.
						s.StoredBytes()
						s.UniqueChunks()
						s.Hits()
					}
				}
			}(w)
		}
		wg.Wait()

		wantUnique := sharedHashes + workers*privatePerGor
		if got := s.UniqueChunks(); got != wantUnique {
			t.Fatalf("shards=%d: UniqueChunks = %d, want %d (lost updates?)", shards, got, wantUnique)
		}
		wantBytes := int64(sharedHashes*100 + workers*privatePerGor*10)
		if got := s.StoredBytes(); got != wantBytes {
			t.Fatalf("shards=%d: StoredBytes = %d, want %d", shards, got, wantBytes)
		}
		if s.Puts() != int64(wantUnique) {
			t.Fatalf("shards=%d: Puts = %d, want %d", shards, s.Puts(), wantUnique)
		}
		// Every (PutHashed|Claim|ClaimBatch) call either stored or
		// hit; the stress loop issues exactly 5 store-ops per 5
		// iterations (cases 0, 1, 2 one each; case 3 two).
		wantOps := int64(workers * opsPerWorker)
		if got := s.Puts() + s.Hits(); got != wantOps {
			t.Fatalf("shards=%d: Puts+Hits = %d, want %d", shards, got, wantOps)
		}
		// The winning claim of each shared chunk is the global
		// (at, user) minimum over all claimants of that hash: worker
		// w claims hash (i*7+w)%sharedHashes at instant w*ops+i, so
		// the minimal instant for every hash belongs to worker 0.
		for idx, h := range shared {
			// Worker 0 claims hash j at instants i where (i*7)%128 == j
			// and i%5 == 2; find the smallest such i.
			won := false
			for i := 0; i < opsPerWorker; i++ {
				if i%5 == 2 && (i*7)%sharedHashes == idx {
					won = s.Winner(h, int64(i), 0)
					break
				}
			}
			if !won {
				t.Fatalf("shards=%d: shared hash %d not won by its minimal claimant", shards, idx)
			}
		}
	}
}
