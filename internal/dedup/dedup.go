// Package dedup implements content-addressed chunk storage and the
// client-side deduplication protocol (Sect. 4.3).
//
// Clients that deduplicate (Dropbox, Wuala) hash every chunk before
// upload and ask the server which hashes it already stores; only
// missing chunks travel. Because the server store is content-addressed
// and never garbage-collected during an experiment, deduplication keeps
// working even after the user deletes and later restores a file — the
// behaviour the paper's fourth test step verifies.
package dedup

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash is the content address of a chunk.
type Hash [sha256.Size]byte

// String returns the hex form (handy in test failures).
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// HashBytes computes the content address of a chunk.
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// HashSize is the wire size of one content address as carried in
// deduplication manifests.
const HashSize = sha256.Size

// Store is a server-side content-addressed chunk store. The zero
// value is not usable; call NewStore.
type Store struct {
	sizes map[Hash]int64
	bytes int64
	puts  int64
	hits  int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{sizes: make(map[Hash]int64)}
}

// Has reports whether the store already holds content with this hash.
func (s *Store) Has(h Hash) bool {
	_, ok := s.sizes[h]
	return ok
}

// Put stores a chunk and reports whether it was new. Storing an
// already-present chunk is a no-op (and counts as a dedup hit).
func (s *Store) Put(data []byte) (h Hash, isNew bool) {
	h = HashBytes(data)
	_, present := s.sizes[h]
	s.PutHashed(h, int64(len(data)))
	return h, !present
}

// PutHashed is Put for a caller that already computed the content
// address (the deduplicating client hashes every chunk before asking
// the server about it, so hashing twice per chunk is pure waste). It
// returns the hash for symmetry with Put.
func (s *Store) PutHashed(h Hash, size int64) Hash {
	if _, ok := s.sizes[h]; ok {
		s.hits++
		return h
	}
	s.sizes[h] = size
	s.bytes += size
	s.puts++
	return h
}

// Size returns the stored size of a chunk, or 0 if absent.
func (s *Store) Size(h Hash) int64 { return s.sizes[h] }

// UniqueChunks returns how many distinct chunks the store holds.
func (s *Store) UniqueChunks() int { return len(s.sizes) }

// StoredBytes returns the total bytes of unique content stored — the
// "storage capacity" the paper's dedup capability saves.
func (s *Store) StoredBytes() int64 { return s.bytes }

// Hits returns how many Put calls were deduplicated away.
func (s *Store) Hits() int64 { return s.hits }

// Manifest is the client-side map from file path to the ordered chunk
// hashes of its last synchronized revision. Delta encoding and rename
// detection both start from here.
type Manifest struct {
	files map[string][]Hash
}

// NewManifest returns an empty manifest.
func NewManifest() *Manifest {
	return &Manifest{files: make(map[string][]Hash)}
}

// Set records the chunk list for a path.
func (m *Manifest) Set(path string, hashes []Hash) {
	cp := make([]Hash, len(hashes))
	copy(cp, hashes)
	m.files[path] = cp
}

// Get returns the chunk list for a path, or nil.
func (m *Manifest) Get(path string) []Hash { return m.files[path] }

// Delete forgets a path (the file was removed locally). Note that the
// server Store keeps the chunks — exactly why deduplication still works
// when the file comes back.
func (m *Manifest) Delete(path string) { delete(m.files, path) }

// Len returns the number of tracked paths.
func (m *Manifest) Len() int { return len(m.files) }
