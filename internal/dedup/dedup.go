// Package dedup implements content-addressed chunk storage and the
// client-side deduplication protocol (Sect. 4.3).
//
// Clients that deduplicate (Dropbox, Wuala) hash every chunk before
// upload and ask the server which hashes it already stores; only
// missing chunks travel. Because the server store is content-addressed
// and never garbage-collected during an experiment, deduplication keeps
// working even after the user deletes and later restores a file — the
// behaviour the paper's fourth test step verifies.
package dedup

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash is the content address of a chunk.
type Hash [sha256.Size]byte

// String returns the hex form (handy in test failures).
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// HashBytes computes the content address of a chunk.
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// HashSize is the wire size of one content address as carried in
// deduplication manifests.
const HashSize = sha256.Size

// Manifest is the client-side map from file path to the ordered chunk
// hashes of its last synchronized revision. Delta encoding and rename
// detection both start from here.
type Manifest struct {
	files map[string][]Hash
}

// NewManifest returns an empty manifest.
func NewManifest() *Manifest {
	return &Manifest{files: make(map[string][]Hash)}
}

// Set records the chunk list for a path.
func (m *Manifest) Set(path string, hashes []Hash) {
	cp := make([]Hash, len(hashes))
	copy(cp, hashes)
	m.files[path] = cp
}

// Get returns the chunk list for a path, or nil.
func (m *Manifest) Get(path string) []Hash { return m.files[path] }

// Delete forgets a path (the file was removed locally). Note that the
// server Store keeps the chunks — exactly why deduplication still works
// when the file comes back.
func (m *Manifest) Delete(path string) { delete(m.files, path) }

// Len returns the number of tracked paths.
func (m *Manifest) Len() int { return len(m.files) }
