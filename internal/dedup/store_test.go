package dedup

import (
	"testing"

	"repro/internal/sim"
)

// randomHashes returns n deterministic pseudo-content addresses. The
// raw RNG words stand in for SHA-256 output: shard routing and map
// behaviour only need uniform bytes, not real preimages.
func randomHashes(seed int64, n int) []Hash {
	rng := sim.NewRNG(seed)
	hs := make([]Hash, n)
	for i := range hs {
		rng.Fill(hs[i][:])
	}
	return hs
}

func TestPutHashedReportsNew(t *testing.T) {
	s := NewStore()
	h := HashBytes([]byte("one lookup"))
	if !s.PutHashed(h, 11) {
		t.Fatal("first PutHashed not new")
	}
	if s.PutHashed(h, 11) {
		t.Fatal("second PutHashed claimed new")
	}
	if s.Hits() != 1 || s.Puts() != 1 {
		t.Fatalf("hits=%d puts=%d", s.Hits(), s.Puts())
	}
}

func TestShardedCountersAggregate(t *testing.T) {
	// Spray hashes across every shard and check the aggregated
	// counters against a flat reference map.
	s := NewStore()
	ref := make(map[Hash]int64)
	var refBytes, refHits int64
	rng := sim.NewRNG(7)
	hs := randomHashes(8, 512)
	for i := 0; i < 4096; i++ {
		h := hs[rng.Intn(len(hs))]
		size := int64(rng.Intn(1000)) + 1
		if old, ok := ref[h]; ok {
			refHits++
			size = old // store keeps the first size
		} else {
			ref[h] = size
			refBytes += size
		}
		s.PutHashed(h, size)
	}
	if s.UniqueChunks() != len(ref) {
		t.Fatalf("UniqueChunks = %d, want %d", s.UniqueChunks(), len(ref))
	}
	if s.StoredBytes() != refBytes {
		t.Fatalf("StoredBytes = %d, want %d", s.StoredBytes(), refBytes)
	}
	if s.Hits() != refHits {
		t.Fatalf("Hits = %d, want %d", s.Hits(), refHits)
	}
	if s.Puts() != int64(len(ref)) {
		t.Fatalf("Puts = %d, want %d", s.Puts(), len(ref))
	}
	for _, h := range hs {
		size, ok := ref[h]
		if !ok {
			continue // never drawn by the spray
		}
		if !s.Has(h) || s.Size(h) != size {
			t.Fatalf("chunk %v: Has=%v Size=%d want %d", h, s.Has(h), s.Size(h), size)
		}
	}
}

func TestShardCountIndependence(t *testing.T) {
	// The same workload lands identically on a single-lock store and
	// on any sharded configuration.
	hs := randomHashes(9, 300)
	stores := []*Store{NewStoreSharded(1), NewStoreSharded(4), NewStoreSharded(64)}
	for _, s := range stores {
		for i, h := range hs {
			s.PutHashed(h, int64(i%97)+1)
			s.PutHashed(h, int64(i%97)+1) // duplicate: a hit
		}
	}
	for _, s := range stores[1:] {
		if s.UniqueChunks() != stores[0].UniqueChunks() ||
			s.StoredBytes() != stores[0].StoredBytes() ||
			s.Hits() != stores[0].Hits() {
			t.Fatalf("shards=%d disagrees with single-lock: chunks %d/%d bytes %d/%d hits %d/%d",
				s.Shards(), s.UniqueChunks(), stores[0].UniqueChunks(),
				s.StoredBytes(), stores[0].StoredBytes(), s.Hits(), stores[0].Hits())
		}
	}
}

func TestNewStoreShardedRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128},
	} {
		if got := NewStoreSharded(tc.in).Shards(); got != tc.want {
			t.Errorf("NewStoreSharded(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// claim is the (instant, user) pair of one would-be uploader, as the
// tests spell it; the store keeps the pair inline in its chunk entry.
type claim struct {
	at   int64
	user int64
}

func TestClaimEarliestWins(t *testing.T) {
	h := HashBytes([]byte("popular chunk"))
	// Claims arrive in scrambled execution order; the (at, user)
	// minimum must win regardless.
	orders := [][]claim{
		{{at: 30, user: 2}, {at: 10, user: 5}, {at: 20, user: 1}},
		{{at: 10, user: 5}, {at: 20, user: 1}, {at: 30, user: 2}},
		{{at: 20, user: 1}, {at: 30, user: 2}, {at: 10, user: 5}},
	}
	for _, order := range orders {
		s := NewStore()
		for _, c := range order {
			s.Claim(h, 100, c.at, c.user)
		}
		if !s.Winner(h, 10, 5) {
			t.Fatalf("order %v: earliest claim lost", order)
		}
		for _, c := range order {
			if (c != claim{at: 10, user: 5}) && s.Winner(h, c.at, c.user) {
				t.Fatalf("order %v: losing claim %v reported as winner", order, c)
			}
		}
		if s.UniqueChunks() != 1 || s.Hits() != 2 || s.Puts() != 1 {
			t.Fatalf("claim counters: chunks=%d hits=%d puts=%d",
				s.UniqueChunks(), s.Hits(), s.Puts())
		}
	}
}

func TestClaimTieBreaksOnUser(t *testing.T) {
	s := NewStore()
	h := HashBytes([]byte("tie"))
	s.Claim(h, 1, 50, 9)
	s.Claim(h, 1, 50, 3)
	if !s.Winner(h, 50, 3) || s.Winner(h, 50, 9) {
		t.Fatal("equal-instant tie must resolve to the lower user index")
	}
}

func TestWinnerOnUnclaimedHash(t *testing.T) {
	s := NewStore()
	h := HashBytes([]byte("never claimed"))
	if s.Winner(h, 0, 0) {
		t.Fatal("Winner on empty store")
	}
	s.PutHashed(h, 5) // plain put, no claim
	if s.Winner(h, 0, 0) {
		t.Fatal("Winner on a put-only chunk")
	}
}

// shardGroups splits hashes (with parallel sizes) into per-shard
// groups the way the fleet's batching sinks do, preserving
// first-appearance order within each group.
func shardGroups(s *Store, hs []Hash, sizes []int64) (groups [][]Hash, groupSizes [][]int64) {
	byShard := make(map[int]int)
	for i, h := range hs {
		sh := s.ShardOf(h)
		gi, ok := byShard[sh]
		if !ok {
			gi = len(groups)
			byShard[sh] = gi
			groups = append(groups, nil)
			groupSizes = append(groupSizes, nil)
		}
		groups[gi] = append(groups[gi], h)
		groupSizes[gi] = append(groupSizes[gi], sizes[i])
	}
	return groups, groupSizes
}

func TestClaimBatchMatchesPerChunkClaims(t *testing.T) {
	// ClaimBatch/WinnerBatch promise exact equivalence with the
	// per-chunk calls: same winners, same counters. Drive the same
	// claim schedule — several users, overlapping chunk sets — through
	// both surfaces and compare everything observable.
	hs := randomHashes(11, 200)
	rng := sim.NewRNG(13)
	type session struct {
		at, user int64
		hs       []Hash
		sizes    []int64
	}
	var sessions []session
	for u := int64(0); u < 40; u++ {
		sess := session{at: int64(rng.Intn(1000)), user: u}
		for k := 0; k < 10; k++ {
			sess.hs = append(sess.hs, hs[rng.Intn(len(hs))])
			sess.sizes = append(sess.sizes, int64(rng.Intn(500))+1)
		}
		sessions = append(sessions, sess)
	}

	ref, batched := NewStoreSharded(8), NewStoreSharded(8)
	for _, sess := range sessions {
		for i, h := range sess.hs {
			ref.Claim(h, sess.sizes[i], sess.at, sess.user)
		}
		groups, groupSizes := shardGroups(batched, sess.hs, sess.sizes)
		for g := range groups {
			batched.ClaimBatch(groups[g], groupSizes[g], sess.at, sess.user)
		}
	}

	if ref.UniqueChunks() != batched.UniqueChunks() || ref.StoredBytes() != batched.StoredBytes() ||
		ref.Hits() != batched.Hits() || ref.Puts() != batched.Puts() {
		t.Fatalf("counters diverged: chunks %d/%d bytes %d/%d hits %d/%d puts %d/%d",
			ref.UniqueChunks(), batched.UniqueChunks(), ref.StoredBytes(), batched.StoredBytes(),
			ref.Hits(), batched.Hits(), ref.Puts(), batched.Puts())
	}
	for _, sess := range sessions {
		groups, _ := shardGroups(batched, sess.hs, nil2(len(sess.hs)))
		for _, g := range groups {
			out := make([]bool, len(g))
			batched.WinnerBatch(g, sess.at, sess.user, out)
			for i, h := range g {
				if want := ref.Winner(h, sess.at, sess.user); out[i] != want {
					t.Fatalf("user %d chunk %v: WinnerBatch=%v, Winner=%v", sess.user, h, out[i], want)
				}
			}
		}
	}
}

// nil2 returns n zero sizes — shardGroups needs a parallel slice even
// when the caller only cares about the hash grouping.
func nil2(n int) []int64 { return make([]int64, n) }

func TestClaimBatchRefResolvesLikeWinner(t *testing.T) {
	// A ref handed out by ClaimBatchRef must resolve (via WonBy)
	// exactly as a Winner probe for the same hash, including after
	// later claims displace the provisional winner.
	s := NewStoreSharded(4)
	hs := randomHashes(21, 64)
	sizes := nil2(len(hs))
	for i := range sizes {
		sizes[i] = int64(i) + 1
	}

	type claimed struct {
		at, user int64
		hs       []Hash
		refs     []ChunkRef
	}
	var all []claimed
	for u := int64(0); u < 8; u++ {
		// Later users claim earlier instants, so winners keep moving.
		at := int64(100 - u*10)
		c := claimed{at: at, user: u}
		groups, groupSizes := shardGroups(s, hs[:32+u*4], sizes[:32+u*4])
		for g := range groups {
			refs := make([]ChunkRef, len(groups[g]))
			s.ClaimBatchRef(groups[g], groupSizes[g], at, u, refs)
			c.hs = append(c.hs, groups[g]...)
			c.refs = append(c.refs, refs...)
		}
		all = append(all, c)
	}
	for _, c := range all {
		for i, h := range c.hs {
			if got, want := c.refs[i].WonBy(c.at, c.user), s.Winner(h, c.at, c.user); got != want {
				t.Fatalf("user %d chunk %v: WonBy=%v, Winner=%v", c.user, h, got, want)
			}
		}
	}
	if (ChunkRef{}).WonBy(0, 0) {
		t.Fatal("zero ChunkRef reported a win")
	}
}

func TestNewStoreShardedSizedBehavesLikeUnsized(t *testing.T) {
	// The capacity hint is allocation-only: any hint (absurd ones
	// included) must leave behaviour untouched.
	hs := randomHashes(31, 400)
	ref := NewStoreSharded(16)
	for i, h := range hs {
		ref.PutHashed(h, int64(i)+1)
	}
	for _, hint := range []int{-5, 0, 10, 100_000} {
		s := NewStoreShardedSized(16, hint)
		if s.Shards() != ref.Shards() {
			t.Fatalf("hint %d changed shard count: %d", hint, s.Shards())
		}
		for i, h := range hs {
			s.PutHashed(h, int64(i)+1)
		}
		for _, h := range hs {
			if s.Has(h) != ref.Has(h) || s.Size(h) != ref.Size(h) {
				t.Fatalf("hint %d diverged on Has/Size", hint)
			}
		}
		if s.UniqueChunks() != ref.UniqueChunks() || s.StoredBytes() != ref.StoredBytes() {
			t.Fatalf("hint %d: chunks %d/%d bytes %d/%d", hint,
				s.UniqueChunks(), ref.UniqueChunks(), s.StoredBytes(), ref.StoredBytes())
		}
	}
}

func TestClaimAndPutShareChunkSpace(t *testing.T) {
	// A chunk uploaded via the plain client path dedups against a
	// fleet claim and vice versa: one content-addressed space.
	s := NewStore()
	h := HashBytes([]byte("shared space"))
	s.Claim(h, 42, 7, 1)
	if s.PutHashed(h, 42) {
		t.Fatal("PutHashed after Claim claimed new")
	}
	if s.UniqueChunks() != 1 || s.StoredBytes() != 42 {
		t.Fatalf("chunks=%d bytes=%d", s.UniqueChunks(), s.StoredBytes())
	}
}
