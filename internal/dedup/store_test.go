package dedup

import (
	"testing"

	"repro/internal/sim"
)

// randomHashes returns n deterministic pseudo-content addresses. The
// raw RNG words stand in for SHA-256 output: shard routing and map
// behaviour only need uniform bytes, not real preimages.
func randomHashes(seed int64, n int) []Hash {
	rng := sim.NewRNG(seed)
	hs := make([]Hash, n)
	for i := range hs {
		rng.Fill(hs[i][:])
	}
	return hs
}

func TestPutHashedReportsNew(t *testing.T) {
	s := NewStore()
	h := HashBytes([]byte("one lookup"))
	if !s.PutHashed(h, 11) {
		t.Fatal("first PutHashed not new")
	}
	if s.PutHashed(h, 11) {
		t.Fatal("second PutHashed claimed new")
	}
	if s.Hits() != 1 || s.Puts() != 1 {
		t.Fatalf("hits=%d puts=%d", s.Hits(), s.Puts())
	}
}

func TestShardedCountersAggregate(t *testing.T) {
	// Spray hashes across every shard and check the aggregated
	// counters against a flat reference map.
	s := NewStore()
	ref := make(map[Hash]int64)
	var refBytes, refHits int64
	rng := sim.NewRNG(7)
	hs := randomHashes(8, 512)
	for i := 0; i < 4096; i++ {
		h := hs[rng.Intn(len(hs))]
		size := int64(rng.Intn(1000)) + 1
		if old, ok := ref[h]; ok {
			refHits++
			size = old // store keeps the first size
		} else {
			ref[h] = size
			refBytes += size
		}
		s.PutHashed(h, size)
	}
	if s.UniqueChunks() != len(ref) {
		t.Fatalf("UniqueChunks = %d, want %d", s.UniqueChunks(), len(ref))
	}
	if s.StoredBytes() != refBytes {
		t.Fatalf("StoredBytes = %d, want %d", s.StoredBytes(), refBytes)
	}
	if s.Hits() != refHits {
		t.Fatalf("Hits = %d, want %d", s.Hits(), refHits)
	}
	if s.Puts() != int64(len(ref)) {
		t.Fatalf("Puts = %d, want %d", s.Puts(), len(ref))
	}
	for _, h := range hs {
		size, ok := ref[h]
		if !ok {
			continue // never drawn by the spray
		}
		if !s.Has(h) || s.Size(h) != size {
			t.Fatalf("chunk %v: Has=%v Size=%d want %d", h, s.Has(h), s.Size(h), size)
		}
	}
}

func TestShardCountIndependence(t *testing.T) {
	// The same workload lands identically on a single-lock store and
	// on any sharded configuration.
	hs := randomHashes(9, 300)
	stores := []*Store{NewStoreSharded(1), NewStoreSharded(4), NewStoreSharded(64)}
	for _, s := range stores {
		for i, h := range hs {
			s.PutHashed(h, int64(i%97)+1)
			s.PutHashed(h, int64(i%97)+1) // duplicate: a hit
		}
	}
	for _, s := range stores[1:] {
		if s.UniqueChunks() != stores[0].UniqueChunks() ||
			s.StoredBytes() != stores[0].StoredBytes() ||
			s.Hits() != stores[0].Hits() {
			t.Fatalf("shards=%d disagrees with single-lock: chunks %d/%d bytes %d/%d hits %d/%d",
				s.Shards(), s.UniqueChunks(), stores[0].UniqueChunks(),
				s.StoredBytes(), stores[0].StoredBytes(), s.Hits(), stores[0].Hits())
		}
	}
}

func TestNewStoreShardedRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128},
	} {
		if got := NewStoreSharded(tc.in).Shards(); got != tc.want {
			t.Errorf("NewStoreSharded(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestClaimEarliestWins(t *testing.T) {
	h := HashBytes([]byte("popular chunk"))
	// Claims arrive in scrambled execution order; the (at, user)
	// minimum must win regardless.
	orders := [][]claim{
		{{at: 30, user: 2}, {at: 10, user: 5}, {at: 20, user: 1}},
		{{at: 10, user: 5}, {at: 20, user: 1}, {at: 30, user: 2}},
		{{at: 20, user: 1}, {at: 30, user: 2}, {at: 10, user: 5}},
	}
	for _, order := range orders {
		s := NewStore()
		for _, c := range order {
			s.Claim(h, 100, c.at, c.user)
		}
		if !s.Winner(h, 10, 5) {
			t.Fatalf("order %v: earliest claim lost", order)
		}
		for _, c := range order {
			if (c != claim{at: 10, user: 5}) && s.Winner(h, c.at, c.user) {
				t.Fatalf("order %v: losing claim %v reported as winner", order, c)
			}
		}
		if s.UniqueChunks() != 1 || s.Hits() != 2 || s.Puts() != 1 {
			t.Fatalf("claim counters: chunks=%d hits=%d puts=%d",
				s.UniqueChunks(), s.Hits(), s.Puts())
		}
	}
}

func TestClaimTieBreaksOnUser(t *testing.T) {
	s := NewStore()
	h := HashBytes([]byte("tie"))
	s.Claim(h, 1, 50, 9)
	s.Claim(h, 1, 50, 3)
	if !s.Winner(h, 50, 3) || s.Winner(h, 50, 9) {
		t.Fatal("equal-instant tie must resolve to the lower user index")
	}
}

func TestWinnerOnUnclaimedHash(t *testing.T) {
	s := NewStore()
	h := HashBytes([]byte("never claimed"))
	if s.Winner(h, 0, 0) {
		t.Fatal("Winner on empty store")
	}
	s.PutHashed(h, 5) // plain put, no claim
	if s.Winner(h, 0, 0) {
		t.Fatal("Winner on a put-only chunk")
	}
}

func TestClaimAndPutShareChunkSpace(t *testing.T) {
	// A chunk uploaded via the plain client path dedups against a
	// fleet claim and vice versa: one content-addressed space.
	s := NewStore()
	h := HashBytes([]byte("shared space"))
	s.Claim(h, 42, 7, 1)
	if s.PutHashed(h, 42) {
		t.Fatal("PutHashed after Claim claimed new")
	}
	if s.UniqueChunks() != 1 || s.StoredBytes() != 42 {
		t.Fatalf("chunks=%d bytes=%d", s.UniqueChunks(), s.StoredBytes())
	}
}
