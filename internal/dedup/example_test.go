package dedup_test

import (
	"fmt"

	"repro/internal/dedup"
)

// ExampleStore walks the paper's Sect. 4.3 deduplication scenario:
// the second copy of a chunk never travels, and the chunk survives in
// the store after the client deletes the file locally.
func ExampleStore() {
	store := dedup.NewStore()
	chunk := []byte("the same four-megabyte chunk, abridged")

	_, new1 := store.Put(chunk)
	_, new2 := store.Put(chunk) // the replica
	fmt.Println("first upload needed:", new1)
	fmt.Println("replica needed:     ", new2)

	manifest := dedup.NewManifest()
	manifest.Set("folder/file.bin", []dedup.Hash{dedup.HashBytes(chunk)})
	manifest.Delete("folder/file.bin") // user deletes the file
	// ... and restores it later: the store still has the chunk.
	fmt.Println("restore dedups:     ", store.Has(dedup.HashBytes(chunk)))
	// Output:
	// first upload needed: true
	// replica needed:      false
	// restore dedups:      true
}
