package tcpsim

import (
	"math"
	"sort"
)

// This file implements the loss process shared by the two transfer
// engines.
//
// The model is per-round Bernoulli: a congestion round of s segments
// is lossy with probability 1 − (1−p)^s. The event loop realises it
// literally — one uniform draw per round against keepProb. The
// analytic engine realises the same process by inverse-transform
// sampling the *position* of the next lossy segment: the number of
// clean segments before the next loss is geometric, P(gap ≥ k) =
// (1−p)^k, so one draw places the next loss and every round wholly
// before that position is clean with the correct joint probability.
// After a lossy round the process is memoryless, so the sampler simply
// redraws from the round's end. One RNG draw per loss event replaces
// one draw per round — the O(losses) engine cost this PR is about.
//
// Both engines express rounds in the same coordinate system: lossSeg
// counts the data segments offered to the loss process so far (per
// dialer, across connections and transfers, exactly the order the
// event loop would have drawn verdicts in). That shared seam is also
// injectable: InjectLossPositions pins the process to an explicit
// list of absolute segment positions, under which both engines are
// deterministic and must produce bit-identical traces — the exact
// half of the equivalence suite.

// lossGap returns the sampled number of clean segments before the
// next lost one, given a uniform draw u in [0,1): the inverse
// transform floor(ln(u)/ln(1−p)) of the geometric distribution.
// Edges: p ≥ 1 loses the very next segment; u = 0 (a measure-zero
// draw) and underflowed ratios push the loss beyond any finite
// transfer instead of producing NaN.
func lossGap(u, p float64) float64 {
	if p >= 1 {
		return 0
	}
	if u <= 0 {
		return math.Inf(1)
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if math.IsNaN(g) {
		return math.Inf(1)
	}
	return g
}

// InjectLossPositions pins the dialer's loss process to an explicit
// script: the absolute positions (0-based indices into the cumulative
// data-segment sequence this dialer offers to the loss process) of
// every lost segment. A congestion round is lossy iff it covers a
// scripted position; the network RNG is never consulted. Positions
// already behind the process are dropped. Both engines honour the
// script identically — it is the seam the exact equivalence tests
// drive.
func (d *Dialer) InjectLossPositions(positions []int64) {
	d.lossScript = append([]int64(nil), positions...)
	sort.Slice(d.lossScript, func(i, j int) bool { return d.lossScript[i] < d.lossScript[j] })
	d.lossCur = 0
	for d.lossCur < len(d.lossScript) && d.lossScript[d.lossCur] < d.lossSeg {
		d.lossCur++
	}
	d.lossScripted = true
	d.lossNextOK = false
}

// LossDraws reports how many RNG draws the dialer's loss process has
// consumed: one per round under the event loop, one per loss event
// under the analytic engine. The benchsnap transport-lossy micro and
// the draw-reduction tests read it.
func (d *Dialer) LossDraws() int64 { return d.lossDraws }

// lossActive reports whether transfer rounds must be offered to the
// loss process at all. When false the analytic engine skips loss
// accounting entirely and is the PR 4 loss-free fast path, untouched.
func (d *Dialer) lossActive() bool { return d.lossScripted || d.Net.LossRate > 0 }

// nextLossPos returns the absolute segment position of the next loss,
// +Inf when none is scheduled. In RNG mode the position is sampled
// lazily — one geometric draw — and stays pinned until a lossy round
// consumes it (or the loss rate changes), which is what makes clean
// rounds free of RNG traffic.
func (d *Dialer) nextLossPos() float64 {
	if d.lossScripted {
		if d.lossCur < len(d.lossScript) {
			return float64(d.lossScript[d.lossCur])
		}
		return math.Inf(1)
	}
	p := d.Net.LossRate
	if p <= 0 {
		return math.Inf(1)
	}
	if !d.lossNextOK || d.lossNextP != p {
		d.lossDraws++
		d.lossNext = float64(d.lossSeg) + lossGap(d.Net.RNG().Float64(), p)
		d.lossNextOK = true
		d.lossNextP = p
	}
	return d.lossNext
}

// lossAdvance moves the loss coordinate past segs clean segments.
func (d *Dialer) lossAdvance(segs int64) { d.lossSeg += segs }

// lossRecovered consumes the loss event(s) inside the round that just
// ended at the current coordinate: scripted positions behind the
// round's end are spent, and the RNG sampler restarts (memorylessly)
// from the next round.
func (d *Dialer) lossRecovered() {
	if d.lossScripted {
		for d.lossCur < len(d.lossScript) && d.lossScript[d.lossCur] < d.lossSeg {
			d.lossCur++
		}
		return
	}
	d.lossNextOK = false
}

// roundLossy offers one congestion round of segs data segments to the
// loss process and reports the verdict — the analytic engine's
// equivalent of the event loop's per-round lossEvent, driven by the
// sampled position instead of a fresh draw.
func (d *Dialer) roundLossy(segs int64) bool {
	next := d.nextLossPos()
	d.lossSeg += segs
	if next >= float64(d.lossSeg) {
		return false
	}
	d.lossRecovered()
	return true
}
