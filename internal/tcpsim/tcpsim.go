// Package tcpsim provides a closed-form per-connection TCP/TLS model
// that emits packet records into a trace.Sink (a buffering Capture or
// a streaming Streamer).
//
// The model reproduces the transport mechanisms that dominate the
// paper's results:
//
//   - the 3-way handshake (1 RTT before the first byte),
//   - the TLS negotiation (2 further RTTs plus certificate bytes for a
//     full handshake — the cost that cripples services opening a fresh
//     TCP+SSL connection per file, Sect. 4.2/5.2),
//   - slow start (congestion window doubling each RTT from a 10-segment
//     initial window until the path rate is reached), which governs
//     short-transfer completion times (Fig. 6b),
//   - per-segment header and delayed-ACK overhead (Fig. 6c),
//   - application-layer waits (per-chunk commits, per-file
//     acknowledgments) that show up as upload pauses and bursts.
//
// # Transfer engine
//
// On a loss-free path a transfer is fully deterministic, so it is
// computed in closed form rather than simulated round by round. Slow
// start is a geometric cwnd schedule — the rounds, the per-round burst
// sizes and the phase duration follow directly from the doubling law,
// so the engine emits one aggregated record per round, O(log n) of
// them. Once the window reaches the path's bandwidth-delay product the
// sender transmits continuously at the path rate: the whole
// steady-state phase collapses into a single trace.Span record (the
// run of uniform BDP-sized slices, with its exact slicing parameters)
// and one formula for its duration — one Sink.Record call where the
// previous engine paid O(bytes/BDP) of them. Every derived metric is
// bit-identical because the span expands deterministically back into
// the per-round records (see trace.Span).
//
// Lossy paths (LossRate > 0) run the same closed-form engine: instead
// of drawing a Bernoulli verdict per congestion round, the engine
// inverse-transform samples the *position* of the next lost segment
// (one geometric draw per loss event, see loss.go), emits the clean
// run up to it with the closed-form schedule above, and replays the
// recovery epoch — fast-retransmit record, extra RTT, Reno window
// halving — exactly as the event loop does at that position. A lossy
// transfer therefore costs O(losses) instead of O(rounds).
//
// Dialer.ForceEventLoop routes transfers through the per-round event
// loop instead — the reference engine. On clean paths (and under
// Dialer.InjectLossPositions, which pins the loss process to explicit
// segment positions) the two engines are record-for-record identical;
// on lossy paths their RNG draw sequences necessarily differ, so they
// agree distributionally — both equivalences are pinned by the tests
// in this package.
//
// Connections keep their own virtual timeline; all emitted packets are
// timestamped on that timeline and merged in time order by the capture.
package tcpsim

import (
	"fmt"
	"time"

	"repro/internal/netem"
	"repro/internal/trace"
)

// Transport-level constants. MSS and the 66-byte per-segment overhead
// (Ethernet+IPv4+TCP with timestamps) are the trace layer's wire
// vocabulary — spans expand with them — so they live in trace and are
// aliased here for the transport's own arithmetic and for existing
// callers.
const (
	MSS          = trace.MSS
	HeaderPerSeg = trace.HeaderPerSeg
	initCwndSegs = 10
)

// TLSConfig describes the TLS behaviour of a connection.
type TLSConfig struct {
	// Enabled selects HTTPS-style connections. Disabled models the
	// plain-HTTP flows the paper observed (Dropbox notifications,
	// some Wuala storage operations).
	Enabled bool
	// CertBytes is the server certificate chain size transferred
	// during a full handshake.
	CertBytes int64
	// RecordOverheadPct inflates application payload by this
	// percentage to account for TLS record framing and MAC.
	RecordOverheadPct float64
}

// DefaultTLS is the HTTPS profile used by all services in the paper.
var DefaultTLS = TLSConfig{Enabled: true, CertBytes: 3800, RecordOverheadPct: 2.0}

// PlainTCP disables TLS.
var PlainTCP = TLSConfig{}

// Client-side ephemeral ports: Dial hands out sequential ports from
// clientPortBase and wraps back after clientPortMax. The range is the
// flow-identity contract the trace analyzers rely on (a port below
// clientPortBase is never a simulated client).
const (
	clientPortBase = 40000
	clientPortMax  = 65535
)

// Dialer opens simulated connections from a fixed client host and
// records their packets into a trace sink — a buffering Capture or a
// fold-at-record-time Streamer; the transport model never reads the
// trace back, so it only needs the recording half.
type Dialer struct {
	Net    *netem.Network
	Sink   trace.Sink
	Client *netem.Host

	// ForceEventLoop routes loss-free transfers through the per-round
	// event loop instead of the closed-form engine. The two are
	// record-for-record identical (pinned by the equivalence tests);
	// the knob exists so tests and the benchsnap transport micro can
	// run the reference engine on demand.
	ForceEventLoop bool

	nextPort int

	// lossKeepP / lossKeep memoise lossEvent's no-loss probability
	// prefix products for the current loss rate; see keepProb.
	lossKeepP float64
	lossKeep  []float64

	// Loss-process state shared by both engines (see loss.go).
	// lossSeg is the coordinate: cumulative data segments offered to
	// the loss process. lossNext is the sampled absolute position of
	// the next loss (valid while lossNextOK and the rate still equals
	// lossNextP). lossScript/lossCur hold injected loss positions;
	// lossDraws counts RNG draws consumed by loss verdicts.
	lossSeg      int64
	lossNext     float64
	lossNextOK   bool
	lossNextP    float64
	lossDraws    int64
	lossScript   []int64
	lossCur      int
	lossScripted bool
}

// NewDialer returns a dialer for the given client host.
func NewDialer(n *netem.Network, sink trace.Sink, client *netem.Host) *Dialer {
	return &Dialer{Net: n, Sink: sink, Client: client, nextPort: clientPortBase}
}

// Conn is one simulated TCP (optionally TLS) connection.
type Conn struct {
	d          *Dialer
	flow       trace.FlowID
	server     *netem.Host
	serverName string
	tls        TLSConfig

	rtt     time.Duration // sampled at dial time, fixed for the connection
	rateBps int64         // path bottleneck rate

	established time.Time
	now         time.Time // connection-local timeline: when the conn is next free
	upCwnd      int64     // bytes, client->server congestion window
	downCwnd    int64     // bytes, server->client congestion window
	closed      bool

	bytesUp, bytesDown int64 // application payload totals
}

// Dial opens a connection to server at virtual instant `at`, performing
// the TCP handshake and, if configured, the TLS negotiation. The
// returned connection's timeline starts when the handshake completes.
// serverName is the DNS name the client resolved; it is stored on the
// flow record exactly as the paper's sniffer associates DNS names with
// flows.
func (d *Dialer) Dial(server *netem.Host, serverName string, at time.Time, tls TLSConfig) *Conn {
	port := d.nextPort
	d.nextPort++
	if d.nextPort > clientPortMax {
		// Ephemeral ports are 16-bit: wrap instead of growing into
		// invalid port numbers during long campaigns. Flow identity is
		// the FlowID, so key reuse never confuses the analyzers.
		d.nextPort = clientPortBase
	}
	key := trace.FlowKey{
		ClientAddr: d.Client.Addr, ClientPort: port,
		ServerAddr: server.Addr, ServerPort: 443, Proto: trace.TCP,
	}
	if !tls.Enabled {
		key.ServerPort = 80
	}
	flow := d.Sink.OpenFlow(key, serverName, at)
	c := &Conn{
		d: d, flow: flow, server: server, serverName: serverName, tls: tls,
		rtt:      d.Net.SampleRTT(d.Client, server),
		rateBps:  d.Net.PathRateBps(d.Client, server),
		upCwnd:   initCwndSegs * MSS,
		downCwnd: initCwndSegs * MSS,
	}

	// TCP 3-way handshake: SYN up, SYN-ACK down, ACK up (no payload).
	c.record(at, trace.Upstream, trace.Flags{SYN: true}, 0, 74, 1, 0)
	c.record(at.Add(c.rtt), trace.Downstream, trace.Flags{SYN: true, ACK: true}, 0, 74, 1, 0)
	c.record(at.Add(c.rtt), trace.Upstream, trace.Flags{ACK: true}, 0, 66, 1, 0)
	t := at.Add(c.rtt)

	if tls.Enabled {
		// Full TLS handshake, 2 RTTs: ClientHello / ServerHello+
		// Certificate / ClientKeyExchange+Finished / Finished.
		c.record(t, trace.Upstream, trace.Flags{ACK: true}, 220, 220+HeaderPerSeg, 1, 0)
		if tls.CertBytes > 0 {
			// A zero-byte chain (session resumption) transfers no
			// certificate record: no segments, no delayed ACKs.
			segs := segments(tls.CertBytes)
			c.record(t.Add(c.rtt), trace.Downstream, trace.Flags{ACK: true},
				tls.CertBytes, tls.CertBytes+int64(segs)*HeaderPerSeg, segs, ackWire(segs))
		}
		c.record(t.Add(c.rtt), trace.Upstream, trace.Flags{ACK: true}, 330, 330+HeaderPerSeg, 1, 0)
		c.record(t.Add(2*c.rtt), trace.Downstream, trace.Flags{ACK: true}, 60, 60+HeaderPerSeg, 1, 0)
		t = t.Add(2 * c.rtt)
	}

	c.established = t
	c.now = t
	return c
}

// RTT returns the connection's sampled round-trip time.
func (c *Conn) RTT() time.Duration { return c.rtt }

// EstablishedAt returns when the handshake (incl. TLS) completed.
func (c *Conn) EstablishedAt() time.Time { return c.established }

// FreeAt returns the connection-local current time: the earliest
// instant a new operation can start.
func (c *Conn) FreeAt() time.Time { return c.now }

// Flow returns the trace flow ID of this connection.
func (c *Conn) Flow() trace.FlowID { return c.flow }

// Server returns the host this connection talks to.
func (c *Conn) Server() *netem.Host { return c.server }

// ServerName returns the DNS name the client dialed.
func (c *Conn) ServerName() string { return c.serverName }

// BytesUp and BytesDown report application payload carried so far.
func (c *Conn) BytesUp() int64   { return c.bytesUp }
func (c *Conn) BytesDown() int64 { return c.bytesDown }

// ensureOpen panics when traffic is attempted on a connection that
// already completed its FIN exchange (Close) or was reset (Abort). A
// FIN'd flow silently carrying payload would corrupt every per-flow
// metric the analyzers derive, so a campaign bug here must fail loudly
// instead of polluting the trace.
func (c *Conn) ensureOpen(op string) {
	if c.closed {
		panic(fmt.Sprintf("tcpsim: %s on closed connection %s (flow %d)", op, c.serverName, c.flow))
	}
}

// Wait advances the connection timeline to at least t. It models
// application-level thinking time (e.g. a client waiting for a commit
// acknowledgment on another connection).
func (c *Conn) Wait(t time.Time) {
	if t.After(c.now) {
		c.now = t
	}
}

// Idle advances the connection timeline by d from its current instant.
func (c *Conn) Idle(d time.Duration) { c.now = c.now.Add(d) }

// Send transmits n application bytes upstream starting no earlier than
// the connection's current instant. It returns the instant the last
// byte leaves the client (lastSent) and the instant the server has
// received and processed all of it (serverDone, which includes rtt/2
// propagation and the server's processing delay). The connection
// timeline advances to lastSent; callers that need the server response
// use serverDone (see RequestResponse).
func (c *Conn) Send(n int64) (lastSent, serverDone time.Time) {
	c.ensureOpen("Send")
	last := c.transfer(trace.Upstream, n)
	c.bytesUp += n
	c.now = last
	return last, last.Add(c.rtt / 2).Add(c.server.ProcDelay)
}

// Recv makes the server transmit n application bytes downstream,
// starting after serverStart (in server-local terms the request arrival
// plus processing). It returns when the client has received everything,
// and advances the connection timeline to that instant.
func (c *Conn) Recv(serverStart time.Time, n int64) (clientDone time.Time) {
	c.ensureOpen("Recv")
	c.Wait(serverStart)
	last := c.transfer(trace.Downstream, n)
	c.bytesDown += n
	done := last.Add(c.rtt / 2)
	c.now = done
	return done
}

// RequestResponse models one application request/response exchange:
// send reqBytes up, server processes, server sends respBytes down.
// It returns when the client holds the full response.
func (c *Conn) RequestResponse(reqBytes, respBytes int64) time.Time {
	_, serverDone := c.Send(reqBytes)
	return c.Recv(serverDone, respBytes)
}

// Close performs the FIN exchange and returns when it completes. The
// trace records it, but the paper's metrics explicitly ignore
// tear-down time.
func (c *Conn) Close() time.Time {
	if c.closed {
		return c.now
	}
	c.closed = true
	c.record(c.now, trace.Upstream, trace.Flags{FIN: true, ACK: true}, 0, 66, 1, 0)
	c.record(c.now.Add(c.rtt), trace.Downstream, trace.Flags{FIN: true, ACK: true}, 0, 66, 1, 0)
	c.now = c.now.Add(c.rtt)
	return c.now
}

// wireBytes applies the TLS record framing inflation to n application
// bytes: what TCP actually carries.
func (c *Conn) wireBytes(n int64) int64 {
	if c.tls.Enabled && c.tls.RecordOverheadPct > 0 {
		return n + int64(float64(n)*c.tls.RecordOverheadPct/100)
	}
	return n
}

// bdpBytes returns the path's bandwidth-delay product: once cwnd
// reaches it, the sender is rate-limited and transmits continuously.
// Zero means the path is uncapped.
func (c *Conn) bdpBytes() int64 {
	if c.rateBps <= 0 {
		return 0
	}
	bdp := int64(float64(c.rateBps) / 8 * c.rtt.Seconds())
	if bdp < MSS {
		bdp = MSS
	}
	return bdp
}

// serTime is the serialization delay of n bytes at the path rate.
func (c *Conn) serTime(n int64) time.Duration {
	return time.Duration(float64(n*8) / float64(c.rateBps) * float64(time.Second))
}

// transfer moves n application bytes in one direction with slow start
// and a path-rate cap, emitting aggregated packet records. It returns
// the instant the last byte is put on the wire by the sender; for
// upstream that is client time, for downstream server time (callers
// add rtt/2 for delivery).
//
// The closed-form engine is the default on clean and lossy paths
// alike; ForceEventLoop routes the transfer through the per-round
// reference engine instead.
func (c *Conn) transfer(dir trace.Direction, n int64) time.Time {
	if n < 0 {
		panic(fmt.Sprintf("tcpsim: negative transfer %d", n))
	}
	if n == 0 {
		return c.now
	}
	if c.d.ForceEventLoop {
		return c.transferEventLoop(dir, c.wireBytes(n))
	}
	return c.transferAnalytic(dir, c.wireBytes(n))
}

// transferAnalytic is the closed-form engine, clean and lossy paths
// alike.
//
// Slow start is a geometric schedule: bursts of cwnd, 2·cwnd, 4·cwnd,
// ... bytes, one ACK-clocked round apart, until the window reaches the
// path BDP (after at most ⌈log2(bdp/cwnd)⌉ doublings) or the transfer
// ends. The round count and byte coverage follow from the geometric
// sum cwnd·(2^r − 1); the engine emits the r per-round records this
// schedule prescribes — identical to the event loop's, without
// simulating the ACK clock.
//
// The steady state transmits continuously at rateBps in BDP-sized
// slices: k = ⌈remaining/bdp⌉ slices, k−1 full plus a final partial
// one, each taking its serialization time. The clean run up to the
// next sampled loss position is one trace.Span record and one
// duration formula,
//
//	(j−1)·ser(bdp) + ser(last),
//
// which equals the event loop's slice-by-slice accumulation exactly
// (iterated addition of a constant Duration is exact integer math).
//
// Loss costs O(losses), not O(rounds): the next loss position comes
// from one geometric draw (see loss.go), the clean run up to it is
// emitted in closed form, and the recovery epoch at the sampled
// position — serialization of the lossy slice, one extra RTT, the
// fast-retransmit record, Reno window halving — replays exactly what
// the event loop does on a lossy round. Slow-start rounds are already
// O(log n), so they take their verdicts round by round.
func (c *Conn) transferAnalytic(dir trace.Direction, wireApp int64) time.Time {
	cwnd := c.upCwnd
	if dir == trace.Downstream {
		cwnd = c.downCwnd
	}
	bdp := c.bdpBytes()
	lossy := c.d.lossActive()

	t := c.now
	remaining := wireApp

	for remaining > 0 {
		if bdp == 0 || cwnd < bdp {
			// Slow-start round: one doubling burst per ACK clock.
			burst := cwnd
			if burst > remaining {
				burst = remaining
			}
			c.emitData(t, dir, burst)
			remaining -= burst
			if remaining > 0 {
				// Wait for the ACK clock before the next round.
				round := c.rtt
				if c.rateBps > 0 {
					if ser := c.serTime(burst); ser > round {
						round = ser
					}
				}
				t = t.Add(round)
			} else if c.rateBps > 0 {
				// Last burst: the final byte leaves after its own
				// serialization time.
				t = t.Add(c.serTime(burst))
			}
			if lossy && c.d.roundLossy(int64(segments(burst))) {
				t = t.Add(c.rtt)
				c.emitRetransmit(t, dir)
				cwnd /= 2
				if cwnd < 2*MSS {
					cwnd = 2 * MSS
				}
			} else {
				cwnd *= 2
			}
			if bdp > 0 && cwnd > bdp {
				cwnd = bdp
			}
			continue
		}

		// Steady state: continuous transmission at the path rate in
		// BDP-sized slices, k−1 full plus a final partial one.
		k := (remaining + bdp - 1) / bdp
		last := remaining - (k-1)*bdp
		segsFull := int64(segments(bdp))
		phaseSegs := (k-1)*segsFull + int64(segments(last))
		serFull := c.serTime(bdp)

		// Index of the first lossy slice; k means the whole phase is
		// clean. All slices before the sampled position carry segsFull
		// segments, so the index is a division away.
		j := k
		if lossy {
			if next := c.d.nextLossPos(); next < float64(c.d.lossSeg)+float64(phaseSegs) {
				j = (int64(next) - c.d.lossSeg) / segsFull
				if j > k-1 {
					j = k - 1 // the loss sits in the final partial slice
				}
			}
		}

		if j == k {
			// Clean to the end of the transfer: one span for the whole
			// run of slices.
			if k == 1 {
				c.emitData(t, dir, last)
			} else {
				c.d.Sink.Record(trace.Span(t, c.flow, dir, trace.Flags{ACK: true},
					int(k), bdp, last, serFull))
			}
			t = t.Add(time.Duration(k-1) * serFull).Add(c.serTime(last))
			if lossy {
				c.d.lossAdvance(phaseSegs)
			}
			remaining = 0
			break
		}

		// j clean full slices, then the lossy slice and its recovery.
		if j > 0 {
			if j == 1 {
				c.emitData(t, dir, bdp)
			} else {
				c.d.Sink.Record(trace.Span(t, c.flow, dir, trace.Flags{ACK: true},
					int(j), bdp, bdp, serFull))
			}
			t = t.Add(time.Duration(j) * serFull)
			remaining -= j * bdp
			c.d.lossAdvance(j * segsFull)
		}
		slice := bdp
		if slice > remaining {
			slice = remaining
		}
		c.emitData(t, dir, slice)
		t = t.Add(c.serTime(slice))
		remaining -= slice
		c.d.lossAdvance(int64(segments(slice)))
		c.d.lossRecovered()
		// Fast retransmit: one extra RTT, window halves, the lost
		// segment travels again.
		t = t.Add(c.rtt)
		c.emitRetransmit(t, dir)
		cwnd /= 2
		if cwnd < 2*MSS {
			cwnd = 2 * MSS
		}
	}

	if dir == trace.Upstream {
		c.upCwnd = cwnd
	} else {
		c.downCwnd = cwnd
	}
	return t
}

// transferEventLoop simulates the transfer one congestion-window round
// at a time — the reference engine behind Dialer.ForceEventLoop. On
// lossy paths it draws one RNG verdict per round (the literal
// Bernoulli process the analytic engine samples in closed form), so
// the two engines agree distributionally but not draw for draw; under
// injected loss positions both are deterministic and bit-identical.
func (c *Conn) transferEventLoop(dir trace.Direction, wireApp int64) time.Time {
	cwnd := c.upCwnd
	if dir == trace.Downstream {
		cwnd = c.downCwnd
	}
	bdp := c.bdpBytes()

	t := c.now
	remaining := wireApp
	for remaining > 0 {
		if bdp > 0 && cwnd >= bdp {
			// Rate-limited phase: emit records in bdp-sized
			// slices so the trace has realistic granularity.
			slice := bdp
			if slice > remaining {
				slice = remaining
			}
			ser := c.serTime(slice)
			c.emitData(t, dir, slice)
			t = t.Add(ser)
			remaining -= slice
			if c.lossEvent(slice) {
				// Fast retransmit: one extra RTT, window
				// halves, the lost segment travels again.
				t = t.Add(c.rtt)
				c.emitRetransmit(t, dir)
				cwnd /= 2
				if cwnd < 2*MSS {
					cwnd = 2 * MSS
				}
			}
			continue
		}
		// Slow-start phase: one cwnd-sized burst per RTT.
		burst := cwnd
		if burst > remaining {
			burst = remaining
		}
		c.emitData(t, dir, burst)
		remaining -= burst
		if remaining > 0 {
			// Wait for the ACK clock before the next round.
			round := c.rtt
			if c.rateBps > 0 {
				if ser := c.serTime(burst); ser > round {
					round = ser
				}
			}
			t = t.Add(round)
		} else {
			// Last burst: the final byte leaves after its own
			// serialization time.
			if c.rateBps > 0 {
				t = t.Add(c.serTime(burst))
			}
		}
		if c.lossEvent(burst) {
			t = t.Add(c.rtt)
			c.emitRetransmit(t, dir)
			cwnd /= 2
			if cwnd < 2*MSS {
				cwnd = 2 * MSS
			}
		} else {
			cwnd *= 2
		}
		if bdp > 0 && cwnd > bdp {
			cwnd = bdp
		}
	}

	if dir == trace.Upstream {
		c.upCwnd = cwnd
	} else {
		c.downCwnd = cwnd
	}
	return t
}

// lossEvent reports whether a burst of n bytes suffered at least one
// segment loss — the event loop's per-round verdict. Under an
// injected script the round is lossy iff it covers a scripted
// position; otherwise the verdict compares one RNG draw against
// P(no loss) = (1−p)^segs, memoised by keepProb. Either way the round
// advances the loss coordinate both engines share (see loss.go).
func (c *Conn) lossEvent(n int64) bool {
	d := c.d
	if d.lossScripted {
		d.lossSeg += int64(segments(n))
		hit := false
		for d.lossCur < len(d.lossScript) && d.lossScript[d.lossCur] < d.lossSeg {
			hit = true
			d.lossCur++
		}
		return hit
	}
	p := d.Net.LossRate
	if p <= 0 {
		return false
	}
	d.lossSeg += int64(segments(n))
	d.lossDraws++
	return d.Net.RNG().Float64() >= d.keepProb(p, segments(n))
}

// keepProb returns the no-loss probability (1−p)^segs exactly as the
// seed engine computed it: a sequential float64 prefix product with
// the documented early exit — once the running value drops to 1e-9 a
// loss is a near-certainty and the product is frozen there. The
// prefix products are memoised per loss rate, turning the seed's
// O(segs) multiply loop per burst into an O(1) table lookup that is
// bit-identical for every (p, segs) because the cached values come
// from the same sequential multiplication.
func (d *Dialer) keepProb(p float64, segs int) float64 {
	if p != d.lossKeepP {
		d.lossKeepP = p
		d.lossKeep = append(d.lossKeep[:0], 1.0)
	}
	// Extend the prefix table: lossKeep[i] is the product after i
	// factors, frozen at the first value <= 1e-9 (the seed loop's
	// early exit checked before each multiply).
	for len(d.lossKeep) <= segs && d.lossKeep[len(d.lossKeep)-1] > 1e-9 {
		d.lossKeep = append(d.lossKeep, d.lossKeep[len(d.lossKeep)-1]*(1-p))
	}
	if segs < len(d.lossKeep) {
		return d.lossKeep[segs]
	}
	return d.lossKeep[len(d.lossKeep)-1]
}

// emitRetransmit records one retransmitted segment: wire bytes with
// no new application payload, so loss inflates overhead but never
// byte conservation.
func (c *Conn) emitRetransmit(t time.Time, dir trace.Direction) {
	c.record(t, dir, trace.Flags{ACK: true}, 0, MSS+HeaderPerSeg, 1, HeaderPerSeg)
}

// emitData records one aggregated data record of n application bytes.
func (c *Conn) emitData(t time.Time, dir trace.Direction, n int64) {
	segs := segments(n)
	c.record(t, dir, trace.Flags{ACK: true}, n, n+int64(segs)*HeaderPerSeg, segs, ackWire(segs))
}

func (c *Conn) record(t time.Time, dir trace.Direction, fl trace.Flags, payload, wire int64, segs int, ack int64) {
	c.d.Sink.Record(trace.Packet{
		Time: t, Flow: c.flow, Dir: dir, Flags: fl,
		Payload: payload, Wire: wire, Segments: segs, AckWire: ack,
	})
}

// segments returns how many MSS-sized packets n bytes occupy. The
// arithmetic lives in trace (span expansion uses it); this is the
// transport's local name for it.
func segments(n int64) int { return trace.Segments(n) }

// ackWire returns the wire bytes of the delayed ACKs elicited by a
// burst of segs segments.
func ackWire(segs int) int64 { return trace.DelayedAckWire(segs) }
