package tcpsim

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testbed builds a client in Twente and a server at a configurable
// location/rate, jitter-free for exact assertions.
func testbed(serverCoord geo.Coord, rateBps int64, proc time.Duration) (*netem.Network, *trace.Capture, *Dialer, *netem.Host) {
	n := netem.New(sim.NewClock(), sim.NewRNG(1))
	// The testbed access link (1 Gb/s in the paper) is never the
	// bottleneck; model it as uncapped so the server cap governs.
	client := n.AddHost(&netem.Host{Name: "client.sim", Addr: "10.0.0.1",
		Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
	server := n.AddHost(&netem.Host{Name: "server.sim", Addr: "203.0.113.1",
		Coord: serverCoord, RateBps: rateBps, ProcDelay: proc})
	cap := trace.NewCapture()
	return n, cap, NewDialer(n, cap, client), server
}

func zrhCoord() geo.Coord { l, _ := geo.LookupAirport("ZRH"); return l.Coord }
func iadCoord() geo.Coord { l, _ := geo.LookupAirport("IAD"); return l.Coord }

func TestDialHandshakeTiming(t *testing.T) {
	n, cap, d, server := testbed(iadCoord(), 20e6, 0)
	client, _ := n.HostByName("client.sim")
	rtt := n.BaseRTT(client, server)

	at := sim.Epoch
	c := d.Dial(server, "storage.example", at, PlainTCP)
	if got := c.EstablishedAt().Sub(at); got != rtt {
		t.Fatalf("plain TCP established after %v, want %v (1 RTT)", got, rtt)
	}

	c2 := d.Dial(server, "storage.example", at, DefaultTLS)
	if got := c2.EstablishedAt().Sub(at); got != 3*rtt {
		t.Fatalf("TLS established after %v, want %v (3 RTT)", got, 3*rtt)
	}

	// Exactly two client SYNs in the capture.
	//simlint:allow goldendiscipline -- the test issues exactly 2 Dials; a structural count, not a refreshable metric
	if got := cap.ConnectionCount(trace.AllFlows); got != 2 {
		t.Fatalf("connection count = %d", got)
	}
}

func TestTLSHandshakeBytes(t *testing.T) {
	_, cap, d, server := testbed(iadCoord(), 20e6, 0)
	d.Dial(server, "s", sim.Epoch, DefaultTLS)
	down := cap.PayloadBytesDir(trace.AllFlows, trace.Downstream)
	if down < DefaultTLS.CertBytes || down > DefaultTLS.CertBytes+200 {
		t.Fatalf("handshake downstream payload = %d, want ~certBytes", down)
	}
}

func TestSendSmallSingleBurst(t *testing.T) {
	n, _, d, server := testbed(iadCoord(), 20e6, 40*time.Millisecond)
	client, _ := n.HostByName("client.sim")
	rtt := n.BaseRTT(client, server)

	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	start := c.FreeAt()
	lastSent, serverDone := c.Send(5000) // fits in initial cwnd (14600B)
	ser := time.Duration(float64(5000*8) / 20e6 * float64(time.Second))
	if got := lastSent.Sub(start); got != ser {
		t.Fatalf("lastSent after %v, want serialization %v", got, ser)
	}
	if got := serverDone.Sub(lastSent); got != rtt/2+40*time.Millisecond {
		t.Fatalf("serverDone - lastSent = %v, want rtt/2+proc", got)
	}
}

func TestSendSlowStartRounds(t *testing.T) {
	// Huge rate => never rate-limited; pure slow start.
	n, cap, d, server := testbed(iadCoord(), 0, 0)
	client, _ := n.HostByName("client.sim")
	rtt := n.BaseRTT(client, server)

	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	start := c.FreeAt()
	// 100 kB needs cwnd rounds: 14.6k, 29.2k, 58.4k (sum 102.2k) -> 3 bursts,
	// 2 inter-burst RTT waits.
	lastSent, _ := c.Send(100_000)
	if got := lastSent.Sub(start); got != 2*rtt {
		t.Fatalf("slow start 100kB took %v, want 2 RTT", got)
	}
	// Three upstream data records.
	var dataRecs int
	for _, p := range cap.Packets() {
		if p.Dir == trace.Upstream && p.HasPayload() {
			dataRecs++
		}
	}
	if dataRecs != 3 {
		t.Fatalf("data records = %d, want 3", dataRecs)
	}
}

func TestSendRateLimitedThroughput(t *testing.T) {
	// Big transfer on a nearby server: completion ~ n/rate once the
	// window opens.
	_, _, d, server := testbed(zrhCoord(), 30e6, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	start := c.FreeAt()
	var n int64 = 10 << 20 // 10 MB
	lastSent, _ := c.Send(n)
	ideal := time.Duration(float64(n*8) / 30e6 * float64(time.Second))
	got := lastSent.Sub(start)
	if got < ideal || got > ideal+ideal/2 {
		t.Fatalf("10MB took %v, want within 50%% above ideal %v", got, ideal)
	}
}

func TestCwndPersistsAcrossSends(t *testing.T) {
	// Second send on a warm connection must be faster than the first
	// (no slow-start restart in the model).
	_, _, d, server := testbed(iadCoord(), 0, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	s1 := c.FreeAt()
	e1, _ := c.Send(100_000)
	d1 := e1.Sub(s1)
	s2 := c.FreeAt()
	e2, _ := c.Send(100_000)
	d2 := e2.Sub(s2)
	if d2 >= d1 {
		t.Fatalf("warm send %v not faster than cold %v", d2, d1)
	}
}

func TestRecvDeliversAfterHalfRTT(t *testing.T) {
	n, _, d, server := testbed(iadCoord(), 0, 0)
	client, _ := n.HostByName("client.sim")
	rtt := n.BaseRTT(client, server)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	serverStart := c.FreeAt().Add(time.Second)
	done := c.Recv(serverStart, 1000)
	if got := done.Sub(serverStart); got != rtt/2 {
		t.Fatalf("small Recv delivered after %v, want rtt/2", got)
	}
}

func TestRequestResponse(t *testing.T) {
	n, _, d, server := testbed(iadCoord(), 0, 25*time.Millisecond)
	client, _ := n.HostByName("client.sim")
	rtt := n.BaseRTT(client, server)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	start := c.FreeAt()
	done := c.RequestResponse(500, 800)
	// 500B up (one burst, no serialization at infinite rate), rtt/2,
	// proc, 800B down, rtt/2.
	want := rtt/2 + rtt/2 + 25*time.Millisecond
	if got := done.Sub(start); got != want {
		t.Fatalf("RequestResponse took %v, want %v", got, want)
	}
}

func TestCloseEmitsFINOnce(t *testing.T) {
	_, cap, d, server := testbed(iadCoord(), 0, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	c.Close()
	c.Close() // idempotent
	fins := 0
	for _, p := range cap.Packets() {
		if p.Flags.FIN {
			fins++
		}
	}
	if fins != 2 { // one up, one down
		t.Fatalf("FIN packets = %d, want 2", fins)
	}
}

func TestByteConservation(t *testing.T) {
	_, cap, d, server := testbed(iadCoord(), 20e6, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	const n = 1 << 20
	c.Send(n)
	up := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream)
	if up != n {
		t.Fatalf("upstream payload = %d, want %d", up, n)
	}
	if c.BytesUp() != n || c.BytesDown() != 0 {
		t.Fatalf("conn accounting up=%d down=%d", c.BytesUp(), c.BytesDown())
	}
	// Wire overhead exists and is bounded (headers + delayed ACKs ~ 7%).
	wire := cap.TotalWireBytes(trace.AllFlows)
	if wire <= up || wire > up+up/10 {
		t.Fatalf("wire bytes = %d vs payload %d", wire, up)
	}
}

func TestTLSRecordOverheadCounted(t *testing.T) {
	_, capT, d, server := testbed(iadCoord(), 20e6, 0)
	c := d.Dial(server, "s", sim.Epoch, DefaultTLS)
	handshakeUp := capT.PayloadBytesDir(trace.AllFlows, trace.Upstream)
	c.Send(1 << 20)
	up := capT.PayloadBytesDir(trace.AllFlows, trace.Upstream) - handshakeUp
	mb := int64(1 << 20)
	want := mb + int64(float64(mb)*0.02)
	if up < want-MSS || up > want+MSS {
		t.Fatalf("TLS payload = %d, want ~%d (2%% record overhead)", up, want)
	}
}

func TestWaitAndIdleAdvanceTimeline(t *testing.T) {
	_, _, d, server := testbed(iadCoord(), 0, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	t0 := c.FreeAt()
	c.Idle(3 * time.Second)
	if got := c.FreeAt().Sub(t0); got != 3*time.Second {
		t.Fatalf("Idle advanced %v", got)
	}
	past := c.FreeAt().Add(-time.Hour)
	c.Wait(past) // must not rewind
	if c.FreeAt().Sub(t0) != 3*time.Second {
		t.Fatal("Wait rewound the timeline")
	}
}

func TestSendZeroAndNegative(t *testing.T) {
	_, _, d, server := testbed(iadCoord(), 0, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	before := c.FreeAt()
	last, _ := c.Send(0)
	if !last.Equal(before) {
		t.Fatal("Send(0) advanced time")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Send(-1) did not panic")
		}
	}()
	c.Send(-1)
}

func TestSegmentsZeroBytes(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want int
	}{{-5, 0}, {0, 0}, {1, 1}, {MSS, 1}, {MSS + 1, 2}, {10 * MSS, 10}} {
		if got := segments(tc.n); got != tc.want {
			t.Errorf("segments(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	if ackWire(0) != 0 {
		t.Errorf("ackWire(0) = %d, want 0", ackWire(0))
	}
}

func TestZeroCertBytesNoPhantomSegments(t *testing.T) {
	// A TLS handshake with an empty certificate chain (session
	// resumption) must not record a phantom data segment or its
	// delayed-ACK wire bytes.
	_, cap, d, server := testbed(iadCoord(), 20e6, 0)
	d.Dial(server, "s", sim.Epoch, TLSConfig{Enabled: true, CertBytes: 0, RecordOverheadPct: 2.0})
	var down, downAck int64
	for _, p := range cap.Packets() {
		if p.Wire == 0 && p.Segments > 0 {
			t.Errorf("phantom segment: %+v", p)
		}
		if p.Dir == trace.Downstream && !p.Flags.SYN {
			down += p.Payload
			downAck += p.AckWire
		}
	}
	// Only the server Finished (60 B) travels downstream, with no
	// delayed ACKs (single segments are acknowledged by the next
	// upstream record in the model).
	if down != 60 {
		t.Errorf("downstream handshake payload = %d, want 60", down)
	}
	if downAck != 0 {
		t.Errorf("downstream delayed-ACK wire = %d, want 0", downAck)
	}
}

func TestDialerPortsWrap(t *testing.T) {
	_, cap, d, server := testbed(iadCoord(), 20e6, 0)
	d.nextPort = clientPortMax
	c1 := d.Dial(server, "s", sim.Epoch, PlainTCP)
	c2 := d.Dial(server, "s", sim.Epoch, PlainTCP)
	if got := cap.Flow(c1.Flow()).Key.ClientPort; got != clientPortMax {
		t.Fatalf("first port = %d, want %d", got, clientPortMax)
	}
	if got := cap.Flow(c2.Flow()).Key.ClientPort; got != clientPortBase {
		t.Fatalf("wrapped port = %d, want %d", got, clientPortBase)
	}
	if c1.Flow() == c2.Flow() {
		t.Fatal("flow IDs must stay unique across port reuse")
	}
}

func TestChunkPausesVisibleInTrace(t *testing.T) {
	// Upload 3 chunks with an application wait between them and check
	// the pause detector recovers the chunk size — the Sect. 4.1 test.
	n, cap, d, server := testbed(iadCoord(), 50e6, 40*time.Millisecond)
	client, _ := n.HostByName("client.sim")
	rtt := n.BaseRTT(client, server)

	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	const chunk = 512 << 10
	for i := 0; i < 3; i++ {
		_, serverDone := c.Send(chunk)
		// Per-chunk commit: wait for the server ack round trip.
		c.Wait(serverDone.Add(rtt / 2))
	}
	// Intra-transfer gaps are at most one RTT (ACK clocking); the
	// commit wait adds at least another half RTT plus processing, so
	// a 1.3xRTT threshold separates chunk boundaries cleanly.
	pauses := cap.UploadPauses(trace.AllFlows, rtt+rtt/3)
	if len(pauses) != 2 {
		t.Fatalf("pauses = %d, want 2 (3 chunks)", len(pauses))
	}
	got := pauses[0].BytesBefore
	if got < chunk || got > chunk+chunk/10 {
		t.Fatalf("first chunk size from trace = %d, want ~%d", got, chunk)
	}
}
