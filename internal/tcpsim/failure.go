package tcpsim

import (
	"time"

	"repro/internal/trace"
)

// This file adds transfer interruption to the connection model,
// needed by the Sect. 4.1 recovery study: "Chunking is advantageous
// because it simplifies upload recovery in case of failures: partial
// submission becomes easier to be implemented."

// SendUntil transmits up to n application bytes upstream but stops
// putting data on the wire at the deadline (a mid-transfer failure:
// the path went away, the connection was reset). It returns the bytes
// actually transmitted, whether the transfer was cut, and the instant
// transmission stopped. A cut connection is left positioned at the
// cut instant; callers then Abort it and retry on a fresh connection.
func (c *Conn) SendUntil(n int64, deadline time.Time) (sent int64, cut bool, last time.Time) {
	c.ensureOpen("SendUntil")
	if n <= 0 {
		return 0, false, c.now
	}
	wireApp := c.wireBytes(n)
	bdp := c.bdpBytes()

	t := c.now
	remaining := wireApp
	cwnd := c.upCwnd
	for remaining > 0 {
		if !t.Before(deadline) {
			cut = true
			break
		}
		burst := cwnd
		if bdp > 0 && burst > bdp {
			burst = bdp
		}
		if burst > remaining {
			burst = remaining
		}
		c.emitData(t, trace.Upstream, burst)
		sent += burst
		remaining -= burst

		var step time.Duration
		if c.rateBps > 0 {
			step = c.serTime(burst)
		}
		if remaining > 0 && (bdp == 0 || cwnd < bdp) && c.rtt > step {
			step = c.rtt // ack-clocked slow-start round
		}
		t = t.Add(step)
		cwnd *= 2
		if bdp > 0 && cwnd > bdp {
			cwnd = bdp
		}
	}
	c.upCwnd = cwnd
	c.bytesUp += sent
	c.now = t
	return sent, cut, t
}

// Abort tears the connection down with a reset instead of the orderly
// FIN exchange — what a client sees when its transfer dies.
func (c *Conn) Abort() time.Time {
	if c.closed {
		return c.now
	}
	c.closed = true
	c.record(c.now, trace.Upstream, trace.Flags{RST: true}, 0, 66, 1, 0)
	return c.now
}
