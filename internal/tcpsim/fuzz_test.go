package tcpsim

// Fuzz targets for the geometric loss-position sampler (loss.go) —
// the analytic engine's replacement for per-round Bernoulli draws.
// The invariants under fuzz are the ones the equivalence suite pins
// pointwise: sampled positions advance strictly and never fall behind
// the loss coordinate, p >= 1 loses every round, scripted mode never
// consults the RNG, and the whole process replays bit-identically
// from the same seed.

import (
	"math"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

func FuzzLossGap(f *testing.F) {
	f.Add(0.5, 0.02)
	f.Add(0.0, 0.5)
	f.Add(1e-300, 1e-12)
	f.Add(0.999999, 0.999999)
	f.Add(0.25, 1.0)
	f.Fuzz(func(t *testing.T, u, p float64) {
		if math.IsNaN(u) || math.IsNaN(p) || u < 0 || u >= 1 || p < 0 || p > 1.5 {
			t.Skip("outside the sampler's input domain")
		}
		g := lossGap(u, p)
		if math.IsNaN(g) {
			t.Fatalf("lossGap(%v, %v) = NaN", u, p)
		}
		if g < 0 {
			t.Fatalf("lossGap(%v, %v) = %v, want >= 0", u, p, g)
		}
		if p >= 1 && g != 0 {
			t.Fatalf("lossGap(%v, %v) = %v, want 0: certain loss takes the next segment", u, p, g)
		}
		if !math.IsInf(g, 1) && g != math.Floor(g) {
			t.Fatalf("lossGap(%v, %v) = %v, want an integer gap", u, p, g)
		}
		// The inverse transform is nonincreasing in u: a smaller
		// uniform draw pushes the loss further out.
		if u2 := u / 2; u2 < u {
			if g2 := lossGap(u2, p); g2 < g {
				t.Fatalf("lossGap not monotone: u=%v gives %v but u=%v gives %v", u, g, u2, g2)
			}
		}
	})
}

// lossDialer builds the minimal dialer the loss process needs: a
// network for the RNG and the rate; no traffic is simulated.
func lossDialer(seed int64, p float64) *Dialer {
	n := netem.New(sim.NewClock(), sim.NewRNG(seed))
	n.LossRate = p
	return &Dialer{Net: n}
}

func FuzzLossProcess(f *testing.F) {
	f.Add(int64(1), 0.02, []byte{1, 4, 9, 63, 2})
	f.Add(int64(7), 0.0, []byte{8, 8, 8})
	f.Add(int64(42), 1.0, []byte{1, 2, 3, 4})
	f.Add(int64(-3), 0.999, []byte{255, 0, 17})
	f.Fuzz(func(t *testing.T, seed int64, p float64, rounds []byte) {
		if math.IsNaN(p) || p < 0 || p > 1.5 || len(rounds) > 1024 {
			t.Skip("outside the loss process's input domain")
		}
		d := lossDialer(seed, p)
		prevLoss := math.Inf(-1)
		var lossyRounds int64
		var verdicts []bool
		for _, b := range rounds {
			segs := int64(b%64) + 1
			start := d.lossSeg
			pos := d.nextLossPos()
			if math.IsNaN(pos) {
				t.Fatal("sampled loss position is NaN")
			}
			if pos < float64(start) {
				t.Fatalf("sampled loss position %v behind the loss coordinate %d", pos, start)
			}
			lossy := d.roundLossy(segs)
			verdicts = append(verdicts, lossy)
			if d.lossSeg != start+segs {
				t.Fatalf("loss coordinate advanced %d -> %d, want +%d", start, d.lossSeg, segs)
			}
			if lossy {
				lossyRounds++
				if pos >= float64(d.lossSeg) {
					t.Fatalf("round [%d,%d) lossy but sampled position %v outside it", start, d.lossSeg, pos)
				}
				if pos <= prevLoss {
					t.Fatalf("consumed loss positions not strictly increasing: %v after %v", pos, prevLoss)
				}
				prevLoss = pos
			}
			if p >= 1 && !lossy {
				t.Fatalf("p=%v: round of %d segments not lossy; certain loss must hit every round", p, segs)
			}
			if p == 0 && lossy {
				t.Fatal("p=0: no round may be lossy")
			}
		}
		// One draw per loss event plus at most one outstanding sample:
		// the whole point of the analytic sampler.
		if draws := d.LossDraws(); draws > lossyRounds+1 {
			t.Fatalf("%d RNG draws for %d lossy rounds, want <= lossy+1", draws, lossyRounds)
		}
		// Same seed, same schedule: bit-identical verdicts.
		replay := lossDialer(seed, p)
		for i, b := range rounds {
			if got := replay.roundLossy(int64(b%64) + 1); got != verdicts[i] {
				t.Fatalf("round %d verdict %v on replay, %v first run: process not deterministic", i, got, verdicts[i])
			}
		}
	})
}

func FuzzLossScript(f *testing.F) {
	f.Add([]byte{0, 3, 3, 10}, []byte{4, 4, 4, 4})
	f.Add([]byte{1}, []byte{255, 1})
	f.Add([]byte{}, []byte{8, 8})
	f.Fuzz(func(t *testing.T, gaps, rounds []byte) {
		if len(gaps) > 512 || len(rounds) > 1024 {
			t.Skip("bounding fuzz work")
		}
		// Build a strictly increasing script from cumulative gaps.
		var positions []int64
		pos := int64(0)
		for _, g := range gaps {
			pos += int64(g)
			positions = append(positions, pos)
			pos++
		}
		d := lossDialer(99, 0.5) // nonzero rate: the script must still win
		d.InjectLossPositions(positions)
		cur := 0
		for _, b := range rounds {
			segs := int64(b%64) + 1
			end := d.lossSeg + segs
			want := cur < len(positions) && positions[cur] < end
			if got := d.roundLossy(segs); got != want {
				t.Fatalf("scripted round ending at %d: lossy = %v, want %v (script %v)", end, got, want, positions)
			}
			for cur < len(positions) && positions[cur] < end {
				cur++
			}
		}
		if d.LossDraws() != 0 {
			t.Fatalf("scripted loss consumed %d RNG draws, want 0", d.LossDraws())
		}
	})
}
