package tcpsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file pins the closed-form transfer engine to the per-round
// event loop it replaced: same records (after span expansion), same
// timelines, same derived metrics, for every path shape the five
// service profiles exercise. Clean paths are bit-identical per seed;
// lossy paths are bit-identical under injected loss positions
// (loss_equiv_test.go) and distributionally identical under the RNG
// (the draw sequences necessarily differ between engines).

// engineConfig mirrors one service data-center path from
// cloud/services.go: geography (RTT), per-connection rate cap,
// processing delay and TLS mode.
type engineConfig struct {
	name    string
	coord   geo.Coord
	rateBps int64
	proc    time.Duration
	tls     TLSConfig
}

// engineConfigs covers the five profiles' transport diversity:
// Dropbox San Jose (50 Mb/s, far), SkyDrive Seattle (3 Mb/s, far),
// Wuala Nuremberg (35 Mb/s, near), Google edge (26 Mb/s, very near),
// Cloud Drive Dublin (15 Mb/s, mid), plus an uncapped path (pure slow
// start) and a plain-HTTP Wuala storage path.
var engineConfigs = []engineConfig{
	{"dropbox-sanjose", geo.Coord{Lat: 37.34, Lon: -121.89}, 50e6, 35 * time.Millisecond, DefaultTLS},
	{"skydrive-seattle", geo.Coord{Lat: 47.45, Lon: -122.31}, 3e6, 60 * time.Millisecond, DefaultTLS},
	{"wuala-nuremberg", geo.Coord{Lat: 49.45, Lon: 11.08}, 35e6, 25 * time.Millisecond, DefaultTLS},
	{"google-edge", geo.Coord{Lat: 52.31, Lon: 4.76}, 26e6, 130 * time.Millisecond, DefaultTLS},
	{"clouddrive-dublin", geo.Coord{Lat: 53.34, Lon: -6.27}, 15e6, 55 * time.Millisecond, DefaultTLS},
	{"uncapped", geo.Coord{Lat: 39.04, Lon: -77.49}, 0, 40 * time.Millisecond, DefaultTLS},
	{"wuala-plain-http", geo.Coord{Lat: 47.38, Lon: 8.54}, 35e6, 25 * time.Millisecond, PlainTCP},
}

// enginePair builds two identical testbeds for one config — one
// recording through the closed-form engine, one forced through the
// per-round event loop — so the same operation script can be replayed
// against both.
func enginePair(cfg engineConfig, seed int64, loss float64) (a, b *Conn, capA, capB *trace.Capture) {
	build := func(force bool) (*Conn, *trace.Capture) {
		n := netem.New(sim.NewClock(), sim.NewRNG(seed))
		n.LossRate = loss
		client := n.AddHost(&netem.Host{Name: "client.sim", Addr: "10.0.0.1",
			Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
		server := n.AddHost(&netem.Host{Name: "server.sim", Addr: "203.0.113.1",
			Coord: cfg.coord, RateBps: cfg.rateBps, ProcDelay: cfg.proc})
		cap := trace.NewCapture()
		d := NewDialer(n, cap, client)
		d.ForceEventLoop = force
		return d.Dial(server, cfg.name, sim.Epoch, cfg.tls), cap
	}
	a, capA = build(false)
	b, capB = build(true)
	return a, b, capA, capB
}

// replayScript drives one random operation sequence against a
// connection and returns the instants every op completed at, so the
// two engines' timelines can be compared instant for instant.
func replayScript(c *Conn, rng *rand.Rand) []time.Time {
	var marks []time.Time
	ops := 3 + rng.Intn(8)
	for i := 0; i < ops; i++ {
		// Sizes from sub-cwnd to multi-MB: slow-start-only, mixed, and
		// deep steady-state transfers.
		size := int64(1 + rng.Intn(1<<22))
		if rng.Intn(4) == 0 {
			size = int64(1 + rng.Intn(8000))
		}
		switch rng.Intn(4) {
		case 0:
			last, serverDone := c.Send(size)
			marks = append(marks, last, serverDone)
		case 1:
			done := c.Recv(c.FreeAt().Add(time.Duration(rng.Intn(50))*time.Millisecond), size)
			marks = append(marks, done)
		case 2:
			done := c.RequestResponse(200+size/100, size)
			marks = append(marks, done)
		case 3:
			c.Idle(time.Duration(rng.Intn(200)) * time.Millisecond)
			marks = append(marks, c.FreeAt())
		}
	}
	marks = append(marks, c.Close())
	return marks
}

// TestAnalyticMatchesEventLoop is the clean-path engine equivalence
// oracle: random operation scripts over every profile-representative
// path must leave both engines with identical flow metadata, identical
// expanded packet records, identical timelines and identical analyses
// — bit for bit. (Lossy equivalence is pinned separately: exactly
// under injected loss positions, distributionally under the RNG.)
func TestAnalyticMatchesEventLoop(t *testing.T) {
	for _, cfg := range engineConfigs {
		for _, loss := range []float64{0} {
			for seed := int64(0); seed < 12; seed++ {
				a, b, capA, capB := enginePair(cfg, seed+1, loss)
				marksA := replayScript(a, rand.New(rand.NewSource(seed)))
				marksB := replayScript(b, rand.New(rand.NewSource(seed)))

				if len(marksA) != len(marksB) {
					t.Fatalf("%s loss=%v seed %d: op count diverged", cfg.name, loss, seed)
				}
				for i := range marksA {
					if !marksA[i].Equal(marksB[i]) {
						t.Fatalf("%s loss=%v seed %d: op %d completed at %v (analytic) vs %v (event loop)",
							cfg.name, loss, seed, i, marksA[i], marksB[i])
					}
				}
				pa, pb := capA.ExpandedPackets(), capB.ExpandedPackets()
				if len(pa) != len(pb) {
					t.Fatalf("%s loss=%v seed %d: %d expanded records (analytic) vs %d (event loop)",
						cfg.name, loss, seed, len(pa), len(pb))
				}
				for i := range pa {
					if pa[i] != pb[i] {
						t.Fatalf("%s loss=%v seed %d: record %d differs\n analytic  %+v\n event loop %+v",
							cfg.name, loss, seed, i, pa[i], pb[i])
					}
				}
				if capA.ExpandedLen() != capB.Len() {
					t.Fatalf("%s loss=%v seed %d: ExpandedLen %d != event-loop record count %d",
						cfg.name, loss, seed, capA.ExpandedLen(), capB.Len())
				}
				if ba, bb := a.BytesUp(), b.BytesUp(); ba != bb {
					t.Fatalf("%s loss=%v seed %d: BytesUp %d vs %d", cfg.name, loss, seed, ba, bb)
				}
				if ba, bb := a.BytesDown(), b.BytesDown(); ba != bb {
					t.Fatalf("%s loss=%v seed %d: BytesDown %d vs %d", cfg.name, loss, seed, ba, bb)
				}
			}
		}
	}
}

// TestAnalyticWindowEquivalence cuts windows straight through the
// middle of span records and checks every analysis against the
// event-loop capture of the same run: boundary expansion must
// attribute each slice to the same window the per-round records fell
// in.
func TestAnalyticWindowEquivalence(t *testing.T) {
	cfg := engineConfigs[0] // 50 Mb/s far path: long steady-state spans
	for seed := int64(0); seed < 8; seed++ {
		a, b, capA, capB := enginePair(cfg, seed+1, 0)
		rng := rand.New(rand.NewSource(seed))
		replayScript(a, rng)
		replayScript(b, rand.New(rand.NewSource(seed)))

		pkts := capB.Packets()
		lastT := pkts[len(pkts)-1].Time
		span := lastT.Sub(sim.Epoch)
		cuts := [][2]time.Time{
			{sim.Epoch, trace.FarFuture},
			{sim.Epoch.Add(span / 3), sim.Epoch.Add(2 * span / 3)},
			{sim.Epoch.Add(span / 2), trace.FarFuture},
			{sim.Epoch.Add(span * 9 / 10), sim.Epoch.Add(span)},
		}
		for i := 0; i < 6; i++ {
			lo := time.Duration(rng.Int63n(int64(span) + 1))
			hi := lo + time.Duration(rng.Int63n(int64(span-lo)+1))
			cuts = append(cuts, [2]time.Time{sim.Epoch.Add(lo), sim.Epoch.Add(hi)})
		}
		for _, cut := range cuts {
			wa := capA.Window(cut[0], cut[1])
			wb := capB.Window(cut[0], cut[1])
			ga, gb := wa.Analyze(trace.AllFlows), wb.Analyze(trace.AllFlows)
			if ga.Packets != gb.Packets || ga.TotalWire != gb.TotalWire ||
				ga.WireUp != gb.WireUp || ga.WireDown != gb.WireDown ||
				ga.PayloadUp != gb.PayloadUp || ga.PayloadDown != gb.PayloadDown ||
				ga.HasPayload != gb.HasPayload || ga.Connections != gb.Connections {
				t.Fatalf("seed %d window [%v,%v): analyses diverge\n analytic   %+v\n event loop %+v",
					seed, cut[0], cut[1], ga, gb)
			}
			if ga.HasPayload && (!ga.FirstPayload.Equal(gb.FirstPayload) || !ga.LastPayload.Equal(gb.LastPayload)) {
				t.Fatalf("seed %d window [%v,%v): payload bracket [%v,%v] vs [%v,%v]",
					seed, cut[0], cut[1], ga.FirstPayload, ga.LastPayload, gb.FirstPayload, gb.LastPayload)
			}
			ea, eb := wa.ExpandedPackets(), wb.Packets()
			if len(ea) != len(eb) {
				t.Fatalf("seed %d window [%v,%v): %d vs %d expanded records", seed, cut[0], cut[1], len(ea), len(eb))
			}
			for i := range ea {
				if ea[i] != eb[i] {
					t.Fatalf("seed %d window [%v,%v): record %d differs\n analytic   %+v\n event loop %+v",
						seed, cut[0], cut[1], i, ea[i], eb[i])
				}
			}
		}
	}
}

// TestSteadyStateCollapsesToSpan pins the point of the refactor: a
// deep rate-limited transfer is one span record — and at least 10x
// fewer Sink.Record calls — where the event loop emitted one record
// per BDP slice.
func TestSteadyStateCollapsesToSpan(t *testing.T) {
	cfg := engineConfig{"zurich", geo.Coord{Lat: 47.38, Lon: 8.54}, 30e6, 0, DefaultTLS}
	a, b, capA, capB := enginePair(cfg, 1, 0)
	const n = 16 << 20
	a.Send(n)
	b.Send(n)
	if capA.SpanCount() == 0 {
		t.Fatal("16 MB steady-state transfer emitted no span record")
	}
	if capA.Len()*10 > capB.Len() {
		t.Fatalf("analytic engine recorded %d records vs event loop's %d — want >=10x reduction",
			capA.Len(), capB.Len())
	}
	if capA.ExpandedLen() != capB.Len() {
		t.Fatalf("expansion mismatch: %d vs %d", capA.ExpandedLen(), capB.Len())
	}
}

// TestLossyPathUsesAnalyticEngine pins that a lossy transfer now runs
// the closed-form engine: the clean runs between sampled losses
// collapse into span records, and the record count is far below the
// event loop's per-round output for the same transfer.
func TestLossyPathUsesAnalyticEngine(t *testing.T) {
	_, cap, d, server := testbed(zrhCoord(), 30e6, 0)
	d.Net.LossRate = 0.02
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	c.Send(8 << 20)
	if got := cap.SpanCount(); got == 0 {
		t.Fatal("lossy transfer recorded no span records — clean runs between losses should collapse")
	}

	_, capB, dB, serverB := testbed(zrhCoord(), 30e6, 0)
	dB.Net.LossRate = 0.02
	dB.ForceEventLoop = true
	cB := dB.Dial(serverB, "s", sim.Epoch, PlainTCP)
	cB.Send(8 << 20)
	if capB.SpanCount() != 0 {
		t.Fatalf("event loop emitted %d span records, want 0", capB.SpanCount())
	}
	// Record-count comparisons between the two RNG-driven runs would
	// compare different loss realizations; the deterministic record
	// and draw reductions are pinned by TestAnalyticLossDrawReduction.
}

// TestKeepProbMatchesSeedLoop pins the memoised no-loss probability to
// the seed multiply loop, float64 bit for bit, across representative
// loss rates and burst sizes — including the 1e-9 early-exit regime.
func TestKeepProbMatchesSeedLoop(t *testing.T) {
	seedKeep := func(p float64, segs int) float64 {
		keep := 1.0
		for i := 0; i < segs && keep > 1e-9; i++ {
			keep *= 1 - p
		}
		return keep
	}
	d := &Dialer{}
	for _, p := range []float64{1e-6, 0.001, 0.02, 0.05, 0.08, 0.3, 0.9999} {
		// Ascending and then repeated/descending queries, exercising
		// both table extension and lookup.
		segs := []int{0, 1, 2, 3, 7, 10, 64, 100, 1000, 5000, 50000, 17, 1, 0, 4096}
		for _, s := range segs {
			if got, want := d.keepProb(p, s), seedKeep(p, s); got != want {
				t.Fatalf("keepProb(p=%v, segs=%d) = %v, want seed loop's %v", p, s, got, want)
			}
		}
	}
	// Switching rates must not reuse a stale table.
	if got, want := d.keepProb(0.02, 10), seedKeep(0.02, 10); got != want {
		t.Fatalf("after rate switch: keepProb = %v, want %v", got, want)
	}
}

// TestClosedConnectionRefusesTraffic pins the Close/Abort guard: a
// FIN'd or reset flow must never silently emit traffic again.
func TestClosedConnectionRefusesTraffic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a closed connection did not panic", name)
			}
		}()
		f()
	}
	_, _, d, server := testbed(iadCoord(), 20e6, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	c.Send(1000)
	c.Close()
	c.Close() // Close stays idempotent
	mustPanic("Send", func() { c.Send(1) })
	mustPanic("Recv", func() { c.Recv(c.FreeAt(), 1) })
	mustPanic("RequestResponse", func() { c.RequestResponse(1, 1) })
	mustPanic("SendUntil", func() { c.SendUntil(1, c.FreeAt().Add(time.Second)) })

	c2 := d.Dial(server, "s", sim.Epoch, PlainTCP)
	c2.Abort()
	mustPanic("Send after Abort", func() { c2.Send(1) })
}
