package tcpsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestLossSlowsTransfers(t *testing.T) {
	completion := func(loss float64) time.Duration {
		n, _, d, server := testbed(zrhCoord(), 30e6, 0)
		n.LossRate = loss
		c := d.Dial(server, "s", sim.Epoch, PlainTCP)
		start := c.FreeAt()
		last, _ := c.Send(10 << 20)
		return last.Sub(start)
	}
	clean := completion(0)
	lossy := completion(0.02)
	heavy := completion(0.08)
	if !(clean < lossy && lossy < heavy) {
		t.Fatalf("loss ordering broken: %v %v %v", clean, lossy, heavy)
	}
	if lossy < clean+clean/10 {
		t.Fatalf("2%% loss too cheap: %v vs %v", lossy, clean)
	}
}

func TestLossPreservesPayloadConservation(t *testing.T) {
	n, cap, d, server := testbed(zrhCoord(), 30e6, 0)
	n.LossRate = 0.05
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	const payload = 5 << 20
	c.Send(payload)
	up := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream)
	if up != payload {
		t.Fatalf("payload = %d, want exactly %d (retransmissions are wire-only)", up, payload)
	}
	// Wire bytes exceed the loss-free equivalent: retransmissions.
	wire := cap.WireBytesDir(trace.AllFlows, trace.Upstream)
	overheadFree := int64(payload) + int64(segments(payload))*HeaderPerSeg
	if wire <= overheadFree {
		t.Fatalf("no retransmission traffic visible: %d <= %d", wire, overheadFree)
	}
}

func TestLossZeroIsDeterministicallyClean(t *testing.T) {
	_, cap, d, server := testbed(zrhCoord(), 30e6, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	c.Send(1 << 20)
	for _, p := range cap.Packets() {
		if p.Wire == MSS+HeaderPerSeg && p.Payload == 0 && !p.Flags.SYN && !p.Flags.FIN {
			t.Fatal("retransmission record without loss")
		}
	}
}
