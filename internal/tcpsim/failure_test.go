package tcpsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestSendUntilCompletesBeforeDeadline(t *testing.T) {
	_, _, d, server := testbed(zrhCoord(), 30e6, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	deadline := c.FreeAt().Add(time.Hour)
	sent, cut, last := c.SendUntil(100_000, deadline)
	if cut {
		t.Fatal("transfer cut despite generous deadline")
	}
	if sent < 100_000 {
		t.Fatalf("sent = %d, want full payload", sent)
	}
	if last.After(deadline) {
		t.Fatal("finished after deadline without cut")
	}
}

func TestSendUntilCutsAtDeadline(t *testing.T) {
	// 10 MB at 30 Mb/s needs ~2.8 s; cut after 1 s.
	_, cap, d, server := testbed(zrhCoord(), 30e6, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	deadline := c.FreeAt().Add(time.Second)
	sent, cut, last := c.SendUntil(10<<20, deadline)
	if !cut {
		t.Fatal("transfer not cut")
	}
	if sent <= 0 || sent >= 10<<20 {
		t.Fatalf("partial bytes = %d, want strictly partial", sent)
	}
	// Partial progress matches the path rate within slow-start slack.
	ideal := int64(30e6 / 8) // one second at 30 Mb/s
	if sent > ideal+ideal/2 {
		t.Fatalf("sent %d exceeds what 1 s sustains (%d)", sent, ideal)
	}
	if last.Before(deadline) {
		t.Fatalf("cut at %v, before deadline", last)
	}
	// Trace contains exactly the partial payload.
	up := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream)
	if up != sent {
		t.Fatalf("trace shows %d, SendUntil reported %d", up, sent)
	}
}

func TestSendUntilZero(t *testing.T) {
	_, _, d, server := testbed(zrhCoord(), 30e6, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	sent, cut, _ := c.SendUntil(0, c.FreeAt())
	if sent != 0 || cut {
		t.Fatalf("SendUntil(0) = %d,%v", sent, cut)
	}
}

func TestAbortEmitsRST(t *testing.T) {
	_, cap, d, server := testbed(zrhCoord(), 30e6, 0)
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	c.SendUntil(1<<20, c.FreeAt().Add(time.Millisecond))
	c.Abort()
	c.Abort() // idempotent
	rsts := 0
	for _, p := range cap.Packets() {
		if p.Flags.RST {
			rsts++
		}
	}
	if rsts != 1 {
		t.Fatalf("RST count = %d, want 1", rsts)
	}
	// An aborted connection also refuses an orderly close.
	before := cap.Len()
	c.Close()
	if cap.Len() != before {
		t.Fatal("Close after Abort emitted packets")
	}
}

func TestSendUntilRetryMakesProgress(t *testing.T) {
	// The recovery pattern: cut, redial, retry. Cumulative payload
	// in the trace grows monotonically across retries.
	n, cap, d, server := testbed(zrhCoord(), 30e6, 0)
	_ = n
	var total int64
	at := sim.Epoch
	for i := 0; i < 3; i++ {
		c := d.Dial(server, "s", at, PlainTCP)
		sent, cut, last := c.SendUntil(4<<20, c.FreeAt().Add(500*time.Millisecond))
		total += sent
		if cut {
			c.Abort()
		}
		at = last
	}
	up := cap.PayloadBytesDir(trace.AllFlows, trace.Upstream)
	if up != total {
		t.Fatalf("trace %d != cumulative sent %d", up, total)
	}
	//simlint:allow goldendiscipline -- the scenario above scripts exactly 3 Dials; a structural count, not a refreshable metric
	if cap.ConnectionCount(trace.AllFlows) != 3 {
		t.Fatal("expected 3 connections")
	}
}
