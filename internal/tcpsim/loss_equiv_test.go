package tcpsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file pins the lossy halves of the engine equivalence:
//
//  1. Exact: under injected loss positions (the seam both engines
//     share) analytic and event loop are deterministic and must agree
//     bit for bit — records, timelines, byte counters.
//  2. Distributional: under the RNG the draw sequences necessarily
//     differ (one geometric draw per loss vs one uniform draw per
//     round), so the engines are compared as samplers of the same
//     per-round Bernoulli process: retransmit-count and
//     completion-time means within confidence bounds and a two-sample
//     chi-square over the loss-count histogram.
//
// Plus the geometric sampler's edges: p→0, p=1, losses scripted past
// the end of the transfer, and float underflow in the log inversion.

// lossScriptFor generates one injected-loss script: a mix of sparse
// positions, bursts of consecutive positions (several losses inside
// one round — a single recovery), duplicates, position zero and
// positions far beyond the transfer.
func lossScriptFor(rng *rand.Rand) []int64 {
	var script []int64
	if rng.Intn(6) == 0 {
		return script // no losses at all
	}
	if rng.Intn(3) == 0 {
		script = append(script, 0) // lose the very first segment
	}
	for i, n := 0, rng.Intn(40); i < n; i++ {
		pos := int64(rng.Intn(20000))
		script = append(script, pos)
		switch rng.Intn(4) {
		case 0: // cluster: consecutive segments of one round
			script = append(script, pos+1, pos+2)
		case 1: // duplicate
			script = append(script, pos)
		}
	}
	if rng.Intn(2) == 0 {
		script = append(script, int64(1<<40)) // far beyond any transfer
	}
	return script
}

// TestInjectedLossExactEquivalence replays random operation scripts
// against both engines with identical injected loss positions: flow
// metadata, expanded records, op timelines and byte counters must be
// bit-identical, and neither engine may touch the RNG for verdicts.
func TestInjectedLossExactEquivalence(t *testing.T) {
	for _, cfg := range engineConfigs {
		for seed := int64(0); seed < 8; seed++ {
			a, b, capA, capB := enginePair(cfg, seed+1, 0)
			script := lossScriptFor(rand.New(rand.NewSource(seed * 7)))
			a.d.InjectLossPositions(script)
			b.d.InjectLossPositions(script)
			// A non-zero LossRate must be ignored while scripted.
			a.d.Net.LossRate = 0.5
			b.d.Net.LossRate = 0.5

			marksA := replayScript(a, rand.New(rand.NewSource(seed)))
			marksB := replayScript(b, rand.New(rand.NewSource(seed)))

			if len(marksA) != len(marksB) {
				t.Fatalf("%s seed %d: op count diverged", cfg.name, seed)
			}
			for i := range marksA {
				if !marksA[i].Equal(marksB[i]) {
					t.Fatalf("%s seed %d: op %d completed at %v (analytic) vs %v (event loop)",
						cfg.name, seed, i, marksA[i], marksB[i])
				}
			}
			pa, pb := capA.ExpandedPackets(), capB.ExpandedPackets()
			if len(pa) != len(pb) {
				t.Fatalf("%s seed %d: %d expanded records (analytic) vs %d (event loop)",
					cfg.name, seed, len(pa), len(pb))
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("%s seed %d: record %d differs\n analytic   %+v\n event loop %+v",
						cfg.name, seed, i, pa[i], pb[i])
				}
			}
			if a.BytesUp() != b.BytesUp() || a.BytesDown() != b.BytesDown() {
				t.Fatalf("%s seed %d: byte counters diverged", cfg.name, seed)
			}
			if a.d.LossDraws() != 0 || b.d.LossDraws() != 0 {
				t.Fatalf("%s seed %d: scripted mode consumed RNG draws (%d, %d)",
					cfg.name, seed, a.d.LossDraws(), b.d.LossDraws())
			}
		}
	}
}

// lossyRunStats sends one fixed transfer through the chosen engine at
// the given loss rate and returns (retransmit count, completion
// seconds).
func lossyRunStats(cfg engineConfig, seed int64, loss float64, force bool) (int64, float64) {
	n := netem.New(sim.NewClock(), sim.NewRNG(seed))
	n.LossRate = loss
	client := n.AddHost(&netem.Host{Name: "client.sim", Addr: "10.0.0.1",
		Coord: geo.Coord{Lat: 52.22, Lon: 6.89}})
	server := n.AddHost(&netem.Host{Name: "server.sim", Addr: "203.0.113.1",
		Coord: cfg.coord, RateBps: cfg.rateBps, ProcDelay: cfg.proc})
	cap := trace.NewCapture()
	d := NewDialer(n, cap, client)
	d.ForceEventLoop = force
	c := d.Dial(server, cfg.name, sim.Epoch, cfg.tls)
	start := c.FreeAt()
	last, _ := c.Send(1 << 20)
	return countRetransmitRecords(cap), last.Sub(start).Seconds()
}

// countRetransmitRecords counts fast-retransmit records in a capture:
// single payload-free data-sized segments that are neither handshake
// nor teardown.
func countRetransmitRecords(cap *trace.Capture) int64 {
	var n int64
	for _, p := range cap.ExpandedPackets() {
		if p.Payload == 0 && p.Segments == 1 && p.Wire == MSS+HeaderPerSeg &&
			!p.Flags.SYN && !p.Flags.FIN && !p.Flags.RST {
			n++
		}
	}
	return n
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return mean, std
}

// meansCompatible checks |meanA − meanB| against a 5-sigma confidence
// bound on the difference of the two sample means (plus a small
// absolute floor for near-degenerate samples).
func meansCompatible(as, bs []float64) (diff, bound float64, ok bool) {
	ma, sa := meanStd(as)
	mb, sb := meanStd(bs)
	diff = math.Abs(ma - mb)
	bound = 5*math.Sqrt(sa*sa/float64(len(as))+sb*sb/float64(len(bs))) + 1e-9 + 0.02*math.Abs(ma)
	return diff, bound, diff <= bound
}

// chiSquare computes the two-sample chi-square statistic between two
// equally sized samples of counts, over quantile bins of the combined
// sample.
func chiSquare(as, bs []float64) float64 {
	combined := append(append([]float64(nil), as...), bs...)
	sort.Float64s(combined)
	const bins = 5
	edges := make([]float64, 0, bins-1)
	for i := 1; i < bins; i++ {
		e := combined[i*len(combined)/bins]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	binOf := func(x float64) int {
		for i, e := range edges {
			if x < e {
				return i
			}
		}
		return len(edges)
	}
	na := make([]float64, len(edges)+1)
	nb := make([]float64, len(edges)+1)
	for _, x := range as {
		na[binOf(x)]++
	}
	for _, x := range bs {
		nb[binOf(x)]++
	}
	var chi2 float64
	for i := range na {
		if s := na[i] + nb[i]; s > 0 {
			d := na[i] - nb[i]
			chi2 += d * d / s
		}
	}
	return chi2
}

// TestLossyDistributionalEquivalence compares the two engines as
// samplers of the per-round Bernoulli loss process: across seeds, the
// retransmit-count and completion-time distributions of a fixed 1 MB
// transfer must agree in mean (5-sigma bound) and shape (two-sample
// chi-square over the loss-count histogram) for representative
// profile paths × loss {0.5%, 2%, 8%}. This test is in the
// race-enabled CI set.
func TestLossyDistributionalEquivalence(t *testing.T) {
	configs := []engineConfig{engineConfigs[1], engineConfigs[4], engineConfigs[6]}
	const seeds = 80
	for _, cfg := range configs {
		for _, loss := range []float64{0.005, 0.02, 0.08} {
			retA := make([]float64, 0, seeds)
			retB := make([]float64, 0, seeds)
			cplA := make([]float64, 0, seeds)
			cplB := make([]float64, 0, seeds)
			for seed := int64(1); seed <= seeds; seed++ {
				ra, ca := lossyRunStats(cfg, seed, loss, false)
				rb, cb := lossyRunStats(cfg, 1000+seed, loss, true)
				retA = append(retA, float64(ra))
				retB = append(retB, float64(rb))
				cplA = append(cplA, ca)
				cplB = append(cplB, cb)
			}
			if d, b, ok := meansCompatible(retA, retB); !ok {
				t.Errorf("%s loss=%v: retransmit means diverge: |Δ|=%.3f > %.3f", cfg.name, loss, d, b)
			}
			if d, b, ok := meansCompatible(cplA, cplB); !ok {
				t.Errorf("%s loss=%v: completion means diverge: |Δ|=%.4fs > %.4fs", cfg.name, loss, d, b)
			}
			if chi2 := chiSquare(retA, retB); chi2 > 30 {
				t.Errorf("%s loss=%v: loss-count chi-square %.1f > 30", cfg.name, loss, chi2)
			}
		}
	}
}

// TestLossGapSamplerEdges pins the pure geometric inversion at its
// numerical edges.
func TestLossGapSamplerEdges(t *testing.T) {
	if g := lossGap(0.5, 1); g != 0 {
		t.Fatalf("lossGap(0.5, p=1) = %v, want 0 (certain loss)", g)
	}
	if g := lossGap(0.5, 2); g != 0 {
		t.Fatalf("lossGap(0.5, p=2) = %v, want 0", g)
	}
	if g := lossGap(0, 0.02); !math.IsInf(g, 1) {
		t.Fatalf("lossGap(u=0) = %v, want +Inf (measure-zero draw must not NaN)", g)
	}
	// Denormal u: log of the smallest positive float is finite, the
	// gap must be finite, non-negative and integral.
	if g := lossGap(5e-324, 0.02); math.IsNaN(g) || g < 0 || g != math.Floor(g) || math.IsInf(g, 0) {
		t.Fatalf("lossGap(denormal u) = %v, want a finite non-negative integer", g)
	}
	// Vanishing p: log1p(-p) underflows toward 0, the ratio blows up —
	// must come out as a huge value or +Inf, never NaN or negative.
	for _, p := range []float64{1e-300, 5e-324} {
		if g := lossGap(0.5, p); math.IsNaN(g) || g < 1e100 {
			t.Fatalf("lossGap(0.5, p=%g) = %v, want huge/+Inf", p, g)
		}
	}
	// Exact geometric boundaries: u = (1−p)^k maps to gap k.
	for k := float64(0); k < 8; k++ {
		if g := lossGap(math.Pow(0.5, k), 0.5); g != k {
			t.Fatalf("lossGap(0.5^%v, 0.5) = %v, want %v", k, g, k)
		}
	}
	// Monotone: a smaller draw means a more negative ln(u) and so a
	// larger gap.
	if lossGap(0.01, 0.02) < lossGap(0.9, 0.02) {
		t.Fatal("lossGap not monotone decreasing in u")
	}
}

// TestCertainLossMatchesEventLoop pins p=1: every round is lossy in
// both engines with no distributional slack, so the full traces must
// be identical — window pinned at the 2-MSS floor, one retransmit per
// round.
func TestCertainLossMatchesEventLoop(t *testing.T) {
	for _, cfg := range []engineConfig{engineConfigs[1], engineConfigs[5]} {
		a, b, capA, capB := enginePair(cfg, 1, 1.0)
		a.Send(300 << 10)
		b.Send(300 << 10)
		pa, pb := capA.ExpandedPackets(), capB.ExpandedPackets()
		if len(pa) != len(pb) {
			t.Fatalf("%s: %d records (analytic) vs %d (event loop)", cfg.name, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: record %d differs\n analytic   %+v\n event loop %+v", cfg.name, i, pa[i], pb[i])
			}
		}
		if countRetransmitRecords(capA) == 0 {
			t.Fatalf("%s: no retransmissions at p=1", cfg.name)
		}
	}
}

// TestVanishingLossFallsThroughToFastPath pins p→0: the sampled loss
// position lands beyond any finite transfer, so the engine emits
// exactly the loss-free closed form (spans included) at the cost of a
// single RNG draw.
func TestVanishingLossFallsThroughToFastPath(t *testing.T) {
	_, capClean, dClean, serverClean := testbed(zrhCoord(), 30e6, 0)
	cClean := dClean.Dial(serverClean, "s", sim.Epoch, PlainTCP)
	cClean.Send(16 << 20)

	_, cap, d, server := testbed(zrhCoord(), 30e6, 0)
	d.Net.LossRate = 1e-18
	c := d.Dial(server, "s", sim.Epoch, PlainTCP)
	c.Send(16 << 20)

	if cap.SpanCount() == 0 {
		t.Fatal("vanishing loss rate did not take the span fast path")
	}
	if got := countRetransmitRecords(cap); got != 0 {
		t.Fatalf("%d retransmissions at p=1e-18", got)
	}
	if got := d.LossDraws(); got != 1 {
		t.Fatalf("LossDraws = %d, want exactly 1 (one sampled position, never reached)", got)
	}
	pa, pb := cap.ExpandedPackets(), capClean.ExpandedPackets()
	if len(pa) != len(pb) {
		t.Fatalf("record counts differ from clean run: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("record %d differs from clean run:\n lossy %+v\n clean %+v", i, pa[i], pb[i])
		}
	}
}

// TestFinalBurstLossEquivalence pins verdicts on bursts that cover the
// remainder of the transfer — including a scripted loss inside the
// very last burst, and one scripted beyond the transfer that must
// carry over to the next transfer on the same connection, exactly as
// the event loop's cursor does.
func TestFinalBurstLossEquivalence(t *testing.T) {
	run := func(script []int64) (*Conn, *Conn, *trace.Capture, *trace.Capture) {
		cfg := engineConfig{"uncapped-final", geo.Coord{Lat: 39.04, Lon: -77.49}, 0, 0, PlainTCP}
		a, b, capA, capB := enginePair(cfg, 1, 0)
		a.d.InjectLossPositions(script)
		b.d.InjectLossPositions(script)
		return a, b, capA, capB
	}

	// Loss inside the only (and final) burst: 5000 bytes fit in the
	// initial window, segment 2 is scripted.
	a, b, capA, capB := run([]int64{2})
	lastA, _ := a.Send(5000)
	lastB, _ := b.Send(5000)
	if !lastA.Equal(lastB) {
		t.Fatalf("final-burst loss: completion %v (analytic) vs %v (event loop)", lastA, lastB)
	}
	if got := countRetransmitRecords(capA); got != 1 {
		t.Fatalf("final-burst loss: %d retransmissions, want 1", got)
	}
	// The recovery costs one extra RTT relative to a clean send.
	ac, bc, _, _ := run(nil)
	cleanA, _ := ac.Send(5000)
	bc.Send(5000)
	if want := cleanA.Add(a.RTT()); !lastA.Equal(want) {
		t.Fatalf("final-burst loss completion %v, want clean+RTT %v", lastA, want)
	}

	// Scripted position beyond the first transfer: silent now, must
	// fire at the right segment of the NEXT transfer on the same
	// connection in both engines.
	a, b, capA, capB = run([]int64{100})
	a.Send(5000)
	b.Send(5000)
	if got := countRetransmitRecords(capA); got != 0 {
		t.Fatalf("loss beyond transfer fired early: %d retransmissions", got)
	}
	a.Send(1 << 20)
	b.Send(1 << 20)
	pa, pb := capA.ExpandedPackets(), capB.ExpandedPackets()
	if len(pa) != len(pb) {
		t.Fatalf("carry-over script: %d vs %d records", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("carry-over script: record %d differs\n analytic   %+v\n event loop %+v", i, pa[i], pb[i])
		}
	}
	if got := countRetransmitRecords(capA); got != 1 {
		t.Fatalf("carry-over script: %d retransmissions, want 1", got)
	}
}

// TestAnalyticLossDrawReduction pins the perf contract the benchsnap
// transport-lossy micro reports: on a paper-grade mobile-uplink path
// (2 Mb/s, WhatIfMobileUplink's rate) a 16 MB transfer at 2% loss
// consumes >=10x fewer RNG draws and emits far fewer records under
// the analytic engine than under the event loop.
func TestAnalyticLossDrawReduction(t *testing.T) {
	cfg := engineConfig{"uplink-2mbps", zrhCoord(), 2e6, 0, PlainTCP}
	a, b, capA, capB := enginePair(cfg, 1, 0.02)
	a.Send(16 << 20)
	b.Send(16 << 20)
	da, db := a.d.LossDraws(), b.d.LossDraws()
	if da == 0 || db == 0 {
		t.Fatalf("draw counters silent: analytic %d, event loop %d", da, db)
	}
	if da*10 > db {
		t.Fatalf("RNG draws: analytic %d vs event loop %d — want >=10x reduction", da, db)
	}
	if capA.Len()*4 > capB.Len() {
		t.Fatalf("records: analytic %d vs event loop %d — want >=4x reduction", capA.Len(), capB.Len())
	}
}
