// Package stats provides the small statistical toolkit behind the
// benchmark summaries: means, dispersion, order statistics and a
// normal-approximation confidence interval for the mean. The paper
// reports averages over 24 repetitions; a reproduction should also
// expose how tight those averages are.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation (0 for n < 2).
func Std(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	return math.Sqrt(sumSqDev(v) / float64(len(v)))
}

// SampleStd returns the sample standard deviation (n-1 divisor,
// Bessel's correction; 0 for n < 2). Inference about the mean of the
// underlying distribution — like the confidence interval MeanCI95
// reports — must use this estimator, not the population formula.
func SampleStd(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	return math.Sqrt(sumSqDev(v) / float64(len(v)-1))
}

// sumSqDev returns the sum of squared deviations from the mean.
func sumSqDev(v []float64) float64 {
	m := Mean(v)
	var s float64
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return s
}

// Median returns the 50th percentile.
func Median(v []float64) float64 { return Percentile(v, 50) }

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics. Empty input yields 0; p is
// clamped to [0, 100].
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanCI95 returns the mean and the half-width of its 95% confidence
// interval: t(n-1) s/sqrt(n), with s the sample standard deviation
// (the population divisor would bias the interval narrow) and t the
// Student-t critical value for n-1 degrees of freedom. The normal
// approximation's 1.96 is only the n→∞ limit; at the paper's n=24 the
// correct multiplier is ~2.07, so a z-based interval under-covers at
// exactly the sample sizes benchmarks use. For n < 2 the half-width
// is 0.
func MeanCI95(v []float64) (mean, halfWidth float64) {
	mean = Mean(v)
	if len(v) < 2 {
		return mean, 0
	}
	return mean, TQuantile95(len(v)-1) * SampleStd(v) / math.Sqrt(float64(len(v)))
}

// tTable95 holds the two-sided 95% Student-t critical values (the
// 0.975 quantile) for 1..30 degrees of freedom.
var tTable95 = [...]float64{
	12.7062, 4.3027, 3.1824, 2.7764, 2.5706,
	2.4469, 2.3646, 2.3060, 2.2622, 2.2281,
	2.2010, 2.1788, 2.1604, 2.1448, 2.1314,
	2.1199, 2.1098, 2.1009, 2.0930, 2.0860,
	2.0796, 2.0739, 2.0687, 2.0639, 2.0595,
	2.0555, 2.0518, 2.0484, 2.0452, 2.0423,
}

// z975 is the standard normal 0.975 quantile, the df→∞ limit of the t
// critical value.
const z975 = 1.959963984540054

// TQuantile95 returns the two-sided 95% Student-t critical value for
// df degrees of freedom: exact table values for df <= 30, a
// Cornish-Fisher expansion around the normal quantile beyond (error
// < 1e-4 for df > 30), and the normal limit for df <= 0 (callers
// guard n < 2 themselves; returning the limit keeps the function
// total).
func TQuantile95(df int) float64 {
	if df <= 0 {
		return z975
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	z := z975
	d := float64(df)
	z2 := z * z
	return z +
		z*(z2+1)/(4*d) +
		z*(5*z2*z2+16*z2+3)/(96*d*d) +
		z*(3*z2*z2*z2+19*z2*z2+17*z2-15)/(384*d*d*d)
}

// MinMax returns the extremes (0, 0 for empty input).
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// CV returns the coefficient of variation (std/mean); 0 when the mean
// is 0. The chunking detector uses it to separate fixed-size from
// content-defined chunking.
func CV(v []float64) float64 {
	m := Mean(v)
	if m == 0 {
		return 0
	}
	return Std(v) / m
}
