package stats

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestAccumulatorMeanBitIdentical pins the accumulator's mean to the
// batch Mean over the same values in the same order — the property
// that makes the adaptive stopping statistic agree exactly with what
// Summarize later reports.
func TestAccumulatorMeanBitIdentical(t *testing.T) {
	rng := sim.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		n := 2 + int(rng.Int63n(100))
		v := make([]float64, n)
		var acc Accumulator
		for i := range v {
			v[i] = rng.Float64()*1e3 - 500
			acc.Add(v[i])
		}
		if acc.Mean() != Mean(v) {
			t.Fatalf("trial %d: accumulator mean %v != batch mean %v", trial, acc.Mean(), Mean(v))
		}
		if acc.N() != n {
			t.Fatalf("trial %d: N = %d, want %d", trial, acc.N(), n)
		}
	}
}

// TestAccumulatorMatchesBatchFormulas pins std and CI against the
// two-pass formulas within floating-point rearrangement tolerance.
func TestAccumulatorMatchesBatchFormulas(t *testing.T) {
	rng := sim.NewRNG(12)
	for trial := 0; trial < 20; trial++ {
		n := 2 + int(rng.Int63n(100))
		v := make([]float64, n)
		var acc Accumulator
		for i := range v {
			v[i] = rng.Float64() * 1e4
			acc.Add(v[i])
		}
		wantStd := SampleStd(v)
		if rel := math.Abs(acc.SampleStd()-wantStd) / wantStd; rel > 1e-9 {
			t.Fatalf("trial %d: std %v vs %v (rel %v)", trial, acc.SampleStd(), wantStd, rel)
		}
		wantMean, wantHW := MeanCI95(v)
		gotMean, gotHW := acc.MeanCI95()
		if gotMean != wantMean {
			t.Fatalf("trial %d: CI mean %v != %v", trial, gotMean, wantMean)
		}
		if rel := math.Abs(gotHW-wantHW) / wantHW; rel > 1e-9 {
			t.Fatalf("trial %d: CI hw %v vs %v (rel %v)", trial, gotHW, wantHW, rel)
		}
	}
}

func TestAccumulatorDegenerate(t *testing.T) {
	var acc Accumulator
	if acc.Mean() != 0 || acc.SampleStd() != 0 || acc.RelHalfWidth() != 0 {
		t.Fatal("empty accumulator must be all-zero")
	}
	acc.Add(42)
	if m, hw := acc.MeanCI95(); m != 42 || hw != 0 {
		t.Fatalf("singleton CI = %v +/- %v", m, hw)
	}
	// Zero variance: half-width stays 0 no matter how many reps.
	for i := 0; i < 10; i++ {
		acc.Add(42)
	}
	if acc.RelHalfWidth() != 0 {
		t.Fatalf("constant sample RelHalfWidth = %v, want 0", acc.RelHalfWidth())
	}
	// Zero mean with spread: relative half-width is undefined; +Inf
	// makes any finite precision target unreachable rather than
	// trivially satisfied.
	var zero Accumulator
	zero.Add(-1)
	zero.Add(1)
	if !math.IsInf(zero.RelHalfWidth(), 1) {
		t.Fatalf("zero-mean RelHalfWidth = %v, want +Inf", zero.RelHalfWidth())
	}
}

// TestAccumulatorCatastrophicShift exercises the numerical-stability
// reason for Welford: a large offset with small spread, where the
// naive sum-of-squares formula loses all precision.
func TestAccumulatorCatastrophicShift(t *testing.T) {
	var acc Accumulator
	base := 1e9
	v := []float64{base + 1, base + 2, base + 3, base + 4}
	for _, x := range v {
		acc.Add(x)
	}
	want := SampleStd(v) // two-pass is also stable
	if rel := math.Abs(acc.SampleStd()-want) / want; rel > 1e-9 {
		t.Fatalf("shifted std %v vs %v", acc.SampleStd(), want)
	}
}
