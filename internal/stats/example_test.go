package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExamplePercentile summarizes a set of completion times the way the
// benchmark reports do.
func ExamplePercentile() {
	seconds := []float64{1.1, 1.2, 1.2, 1.3, 1.4, 1.5, 1.9, 4.0}
	fmt.Printf("median %.2f\n", stats.Median(seconds))
	fmt.Printf("p95    %.2f\n", stats.Percentile(seconds, 95))
	mean, hw := stats.MeanCI95(seconds)
	fmt.Printf("mean   %.2f +/- %.2f\n", mean, hw)
	// Output:
	// median 1.35
	// p95    3.26
	// mean   1.70 +/- 0.80
}
