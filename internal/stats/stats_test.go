package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdKnown(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !approx(Mean(v), 5, 1e-12) {
		t.Fatalf("mean = %v", Mean(v))
	}
	if !approx(Std(v), 2, 1e-12) {
		t.Fatalf("std = %v", Std(v))
	}
	// Sample std uses the n-1 divisor: sqrt(32/7).
	if !approx(SampleStd(v), math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("sample std = %v", SampleStd(v))
	}
	if SampleStd(v) <= Std(v) {
		t.Fatal("sample std must exceed population std")
	}
	if SampleStd(nil) != 0 || SampleStd([]float64{1}) != 0 {
		t.Fatal("SampleStd of n < 2 must be 0")
	}
}

func TestMeanCI95UsesSampleStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	_, hw := MeanCI95(v)
	// n=8, so the multiplier is the Student-t critical value at 7
	// degrees of freedom, not the normal-approximation 1.96.
	want := 2.3646 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if !approx(hw, want, 1e-12) {
		t.Fatalf("CI half-width = %v, want %v (t-based, sample-std based)", hw, want)
	}
}

func TestTQuantile95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
		eps  float64
	}{
		{1, 12.7062, 1e-12}, // table entries are exact
		{7, 2.3646, 1e-12},
		{23, 2.0687, 1e-12}, // the paper's n=24 campaigns
		{30, 2.0423, 1e-12},
		{40, 2.0211, 5e-4}, // expansion region, vs published tables
		{60, 2.0003, 5e-4},
		{120, 1.9799, 5e-4},
		{100000, 1.9600, 5e-4},
	}
	for _, c := range cases {
		if got := TQuantile95(c.df); !approx(got, c.want, c.eps) {
			t.Errorf("TQuantile95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if got := TQuantile95(0); got != z975 {
		t.Errorf("TQuantile95(0) = %v, want normal limit", got)
	}
	// Monotone decreasing toward the normal limit.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		got := TQuantile95(df)
		if got > prev {
			t.Fatalf("TQuantile95 not decreasing at df=%d: %v > %v", df, got, prev)
		}
		if got < z975 {
			t.Fatalf("TQuantile95(%d) = %v below normal limit", df, got)
		}
		prev = got
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Median(nil) != 0 || CV(nil) != 0 {
		t.Fatal("empty inputs must be zero")
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Fatal("empty MinMax")
	}
	one := []float64{42}
	if Mean(one) != 42 || Std(one) != 0 || Median(one) != 42 || Percentile(one, 99) != 42 {
		t.Fatal("singleton")
	}
	if m, hw := MeanCI95(one); m != 42 || hw != 0 {
		t.Fatal("singleton CI")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	v := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(v, c.p); !approx(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Percentile(v, 50)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestMeanCI95ShrinksWithN(t *testing.T) {
	rng := sim.NewRNG(1)
	sample := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	_, hwSmall := MeanCI95(sample(10))
	_, hwLarge := MeanCI95(sample(1000))
	if hwLarge >= hwSmall {
		t.Fatalf("CI did not shrink: %v -> %v", hwSmall, hwLarge)
	}
}

func TestOrderInvariance(t *testing.T) {
	rng := sim.NewRNG(2)
	f := func(n uint8) bool {
		v := make([]float64, int(n)+2)
		for i := range v {
			v[i] = rng.Float64() * 100
		}
		shuffled := make([]float64, len(v))
		copy(shuffled, v)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return approx(Mean(v), Mean(shuffled), 1e-9) &&
			approx(Std(v), Std(shuffled), 1e-9) &&
			approx(Median(v), Median(shuffled), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileBounds(t *testing.T) {
	rng := sim.NewRNG(3)
	f := func(n uint8, p uint8) bool {
		v := make([]float64, int(n)+1)
		for i := range v {
			v[i] = rng.Float64()
		}
		lo, hi := MinMax(v)
		got := Percentile(v, float64(p%100))
		return got >= lo-1e-12 && got <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("constant CV = %v", got)
	}
	if CV([]float64{1, 100}) <= CV([]float64{50, 51}) {
		t.Fatal("CV ordering")
	}
}
