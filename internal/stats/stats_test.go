package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdKnown(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !approx(Mean(v), 5, 1e-12) {
		t.Fatalf("mean = %v", Mean(v))
	}
	if !approx(Std(v), 2, 1e-12) {
		t.Fatalf("std = %v", Std(v))
	}
	// Sample std uses the n-1 divisor: sqrt(32/7).
	if !approx(SampleStd(v), math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("sample std = %v", SampleStd(v))
	}
	if SampleStd(v) <= Std(v) {
		t.Fatal("sample std must exceed population std")
	}
	if SampleStd(nil) != 0 || SampleStd([]float64{1}) != 0 {
		t.Fatal("SampleStd of n < 2 must be 0")
	}
}

func TestMeanCI95UsesSampleStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	_, hw := MeanCI95(v)
	want := 1.96 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if !approx(hw, want, 1e-12) {
		t.Fatalf("CI half-width = %v, want %v (sample-std based)", hw, want)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Median(nil) != 0 || CV(nil) != 0 {
		t.Fatal("empty inputs must be zero")
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Fatal("empty MinMax")
	}
	one := []float64{42}
	if Mean(one) != 42 || Std(one) != 0 || Median(one) != 42 || Percentile(one, 99) != 42 {
		t.Fatal("singleton")
	}
	if m, hw := MeanCI95(one); m != 42 || hw != 0 {
		t.Fatal("singleton CI")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	v := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(v, c.p); !approx(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Percentile(v, 50)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestMeanCI95ShrinksWithN(t *testing.T) {
	rng := sim.NewRNG(1)
	sample := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	_, hwSmall := MeanCI95(sample(10))
	_, hwLarge := MeanCI95(sample(1000))
	if hwLarge >= hwSmall {
		t.Fatalf("CI did not shrink: %v -> %v", hwSmall, hwLarge)
	}
}

func TestOrderInvariance(t *testing.T) {
	rng := sim.NewRNG(2)
	f := func(n uint8) bool {
		v := make([]float64, int(n)+2)
		for i := range v {
			v[i] = rng.Float64() * 100
		}
		shuffled := make([]float64, len(v))
		copy(shuffled, v)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return approx(Mean(v), Mean(shuffled), 1e-9) &&
			approx(Std(v), Std(shuffled), 1e-9) &&
			approx(Median(v), Median(shuffled), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileBounds(t *testing.T) {
	rng := sim.NewRNG(3)
	f := func(n uint8, p uint8) bool {
		v := make([]float64, int(n)+1)
		for i := range v {
			v[i] = rng.Float64()
		}
		lo, hi := MinMax(v)
		got := Percentile(v, float64(p%100))
		return got >= lo-1e-12 && got <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("constant CV = %v", got)
	}
	if CV([]float64{1, 100}) <= CV([]float64{50, 51}) {
		t.Fatal("CV ordering")
	}
}
