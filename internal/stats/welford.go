package stats

import "math"

// Accumulator folds observations one at a time so a sequential
// stopping check costs O(batch), not O(reps so far): the adaptive
// campaign driver pushes each new repetition into it and reads the
// current CI95 half-width without re-scanning the full sample.
//
// The mean is kept as a running ordered sum divided by n — bit-
// identical to Mean over the same values in the same order, so the
// stopping statistic matches what Summarize later reports from the
// full slice. The spread is Welford's M2 recurrence (numerically
// stable sum of squared deviations); it agrees with the two-pass
// sumSqDev only up to floating-point rearrangement, which the
// accumulator tests pin to a tight relative tolerance.
type Accumulator struct {
	n    int
	sum  float64
	mean float64 // Welford running mean, drives the M2 recurrence
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	a.sum += x
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations folded so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 for empty), bit-identical to
// Mean of the same values in insertion order.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// SampleStd returns the sample standard deviation (n-1 divisor; 0 for
// n < 2), from the Welford recurrence.
func (a *Accumulator) SampleStd() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// MeanCI95 returns the running mean and the Student-t 95% confidence
// half-width, matching MeanCI95 over the same sample.
func (a *Accumulator) MeanCI95() (mean, halfWidth float64) {
	if a.n < 2 {
		return a.Mean(), 0
	}
	return a.Mean(), TQuantile95(a.n-1) * a.SampleStd() / math.Sqrt(float64(a.n))
}

// RelHalfWidth returns the CI95 half-width relative to the magnitude
// of the mean — the adaptive stopping statistic. A degenerate sample
// (zero spread, including n < 2) reports 0; a zero mean with spread
// reports +Inf, which never satisfies a finite precision target.
func (a *Accumulator) RelHalfWidth() float64 {
	mean, hw := a.MeanCI95()
	if hw == 0 {
		return 0
	}
	if mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(hw / mean)
}
