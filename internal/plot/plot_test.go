package plot

import (
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	out := Lines([]Series{
		{Label: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Label: "flat", X: []float64{0, 3}, Y: []float64{1, 1}},
	}, Options{Width: 20, Height: 8, Title: "test", XLabel: "t", YLabel: "v"})

	if !strings.Contains(out, "test") || !strings.Contains(out, "x: t") {
		t.Fatalf("labels missing:\n%s", out)
	}
	for _, mark := range []string{"*", "+"} {
		if !strings.Contains(out, mark) {
			t.Fatalf("mark %q missing:\n%s", mark, out)
		}
	}
	// Monotone series: '*' in the top row (max) and bottom row (min).
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("max point not in top row:\n%s", out)
	}
}

func TestLinesEmptyAndDegenerate(t *testing.T) {
	if out := Lines(nil, Options{}); !strings.Contains(out, "no data") {
		t.Fatalf("empty: %q", out)
	}
	// Single point must not divide by zero.
	out := Lines([]Series{{Label: "p", X: []float64{5}, Y: []float64{7}}}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point:\n%s", out)
	}
}

func TestLinesLogYSkipsNonPositive(t *testing.T) {
	out := Lines([]Series{
		{Label: "l", X: []float64{0, 1, 2}, Y: []float64{0, 1, 100}},
	}, Options{Width: 20, Height: 8, LogY: true})
	if !strings.Contains(out, "log scale") && !strings.Contains(out, "*") {
		t.Fatalf("log plot:\n%s", out)
	}
}

func TestBarsGrouped(t *testing.T) {
	groups := []BarGroup{
		{Label: "1x100kB", Values: []float64{1, 4}},
		{Label: "100x10kB", Values: []float64{8, 64}},
	}
	out := Bars(groups, []string{"dropbox", "clouddrive"}, Options{Width: 32, Title: "Fig 6b"})
	if !strings.Contains(out, "Fig 6b") || !strings.Contains(out, "dropbox") {
		t.Fatalf("bars output:\n%s", out)
	}
	// The 64 bar must be the longest.
	var longest, longestLen int
	for i, line := range strings.Split(out, "\n") {
		if n := strings.Count(line, "="); n > longestLen {
			longest, longestLen = i, n
		}
	}
	if !strings.Contains(strings.Split(out, "\n")[longest], "64") {
		t.Fatalf("longest bar is not the max value:\n%s", out)
	}
}

func TestBarsLogScaleOrdering(t *testing.T) {
	groups := []BarGroup{{Label: "w", Values: []float64{0.1, 1, 10, 100}}}
	out := Bars(groups, []string{"a", "b", "c", "d"}, Options{Width: 30, LogY: true})
	lens := []int{}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			lens = append(lens, strings.Count(line, "="))
		}
	}
	if len(lens) != 4 {
		t.Fatalf("bars = %d:\n%s", len(lens), out)
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] <= lens[i-1] {
			t.Fatalf("log bars not increasing: %v\n%s", lens, out)
		}
	}
	// Log scale compresses: the 1000x value span stays drawable.
	if lens[3] > 30 {
		t.Fatalf("bar overflow: %v", lens)
	}
}

func TestBarsEmpty(t *testing.T) {
	if out := Bars(nil, nil, Options{}); !strings.Contains(out, "no data") {
		t.Fatalf("empty bars: %q", out)
	}
	if out := Bars([]BarGroup{{Label: "z", Values: []float64{0}}}, []string{"s"}, Options{}); !strings.Contains(out, "no data") {
		t.Fatalf("all-zero bars: %q", out)
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 0, 3) != 3 || clamp(-1, 0, 3) != 0 || clamp(2, 0, 3) != 2 {
		t.Fatal("clamp")
	}
}
