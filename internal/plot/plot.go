// Package plot renders simple ASCII charts for the benchmark CLI:
// line/step charts for the time-series figures (Figs. 1 and 3) and
// grouped bar charts for the benchmark panels (Fig. 6). The paper's
// figures are gnuplot artifacts; a terminal tool wants to show the
// same shapes inline.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Options controls chart geometry.
type Options struct {
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 16)
	Title  string
	XLabel string
	YLabel string
	LogY   bool // log10 y-axis (Fig. 6b/6c style)
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// seriesMarks assigns one mark per curve.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Lines renders curves on a character grid. X ranges are shared; each
// point is plotted at its nearest cell, and consecutive points of a
// series are connected by horizontal interpolation, giving a readable
// step/line look.
func Lines(series []Series, opt Options) string {
	opt = opt.withDefaults()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if opt.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if !any {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(opt.Width-1))
		return clamp(c, 0, opt.Width-1)
	}
	row := func(y float64) int {
		if opt.LogY {
			y = math.Log10(y)
		}
		r := int((y - minY) / (maxY - minY) * float64(opt.Height-1))
		return clamp(opt.Height-1-r, 0, opt.Height-1)
	}

	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		prevC, prevR := -1, -1
		for i := range s.X {
			if opt.LogY && s.Y[i] <= 0 {
				continue
			}
			c, r := col(s.X[i]), row(s.Y[i])
			grid[r][c] = mark
			// Connect horizontally from the previous point at its
			// row, which reads as a step function.
			if prevC >= 0 && c > prevC+1 {
				for cc := prevC + 1; cc < c; cc++ {
					if grid[prevR][cc] == ' ' {
						grid[prevR][cc] = '.'
					}
				}
			}
			prevC, prevR = c, r
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	yLo, yHi := minY, maxY
	if opt.LogY {
		yLo, yHi = math.Pow(10, minY), math.Pow(10, maxY)
	}
	for r := 0; r < opt.Height; r++ {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", yHi)
		case opt.Height - 1:
			label = fmt.Sprintf("%8.3g", yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "%s  %-10.3g%*s\n", strings.Repeat(" ", 8), minX, opt.Width-10, fmt.Sprintf("%.3g", maxX))
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s%s\n", strings.Repeat(" ", 8), opt.XLabel, opt.YLabel, logSuffix(opt))
	}
	for i, s := range series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", 8), seriesMarks[i%len(seriesMarks)], s.Label)
	}
	return b.String()
}

func logSuffix(opt Options) string {
	if opt.LogY {
		return " (log scale)"
	}
	return ""
}

// BarGroup is one x-axis cluster of a grouped bar chart (one Fig. 6
// workload with one bar per service).
type BarGroup struct {
	Label  string
	Values []float64
}

// Bars renders a grouped horizontal bar chart: one block per group,
// one bar per series, scaled to the global maximum (or its log).
func Bars(groups []BarGroup, seriesLabels []string, opt Options) string {
	opt = opt.withDefaults()
	maxV := math.Inf(-1)
	minPos := math.Inf(1)
	for _, g := range groups {
		for _, v := range g.Values {
			maxV = math.Max(maxV, v)
			if v > 0 {
				minPos = math.Min(minPos, v)
			}
		}
	}
	if math.IsInf(maxV, -1) || maxV <= 0 {
		return "(no data)\n"
	}

	scale := func(v float64) int {
		if v <= 0 {
			return 0
		}
		if opt.LogY {
			lo, hi := math.Log10(minPos), math.Log10(maxV)
			if hi == lo {
				return opt.Width
			}
			return clamp(int((math.Log10(v)-lo)/(hi-lo)*float64(opt.Width-1))+1, 1, opt.Width)
		}
		return clamp(int(v/maxV*float64(opt.Width)), 1, opt.Width)
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s%s\n", opt.Title, logSuffix(opt))
	}
	for _, g := range groups {
		fmt.Fprintf(&b, "%s\n", g.Label)
		for i, v := range g.Values {
			name := ""
			if i < len(seriesLabels) {
				name = seriesLabels[i]
			}
			fmt.Fprintf(&b, "  %-13s|%s %.3g\n", name, strings.Repeat("=", scale(v)), v)
		}
	}
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
