package repro

// One benchmark per table and figure of the paper, plus ablations for
// the design choices DESIGN.md calls out. Each benchmark runs the
// same harness the cmd/figures tool uses and reports the simulated
// measurement as custom benchmark metrics, so `go test -bench=.`
// regenerates the paper's dataset shapes in one pass:
//
//	Table 1  -> BenchmarkTable1Capabilities
//	Fig. 1   -> BenchmarkFig1IdleTraffic
//	Fig. 2   -> BenchmarkFig2EdgeDiscovery
//	Fig. 3   -> BenchmarkFig3SYNCount
//	Fig. 4   -> BenchmarkFig4DeltaEncoding
//	Fig. 5   -> BenchmarkFig5Compression
//	Fig. 6a  -> BenchmarkFig6Startup
//	Fig. 6b  -> BenchmarkFig6Completion
//	Fig. 6c  -> BenchmarkFig6Overhead

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/workload"
)

// BenchmarkFig1IdleTraffic measures the background traffic of each
// client over the paper's 16-minute idle window. Custom metrics:
// idle_bps (Sect. 3.1: 82 Dropbox, 32 SkyDrive, 60 Wuala, 42 Google
// Drive, ~6000 Cloud Drive) and login_kB.
func BenchmarkFig1IdleTraffic(b *testing.B) {
	for _, p := range client.Profiles() {
		b.Run(p.Service, func(b *testing.B) {
			var r core.IdleResult
			for i := 0; i < b.N; i++ {
				r = core.RunIdle(p, int64(i)+1)
			}
			b.ReportMetric(r.IdleRateBps, "idle_bps")
			b.ReportMetric(float64(r.LoginBytes)/1000, "login_kB")
		})
	}
}

// BenchmarkFig2EdgeDiscovery runs the architecture-discovery pipeline
// for Google Drive (Fig. 2: >100 entry points world-wide) and reports
// edges found and countries covered.
func BenchmarkFig2EdgeDiscovery(b *testing.B) {
	var d core.Discovery
	for i := 0; i < b.N; i++ {
		d = core.Discover(client.GoogleDrive(), int64(i)+1)
	}
	b.ReportMetric(float64(d.EdgeCount()), "edges")
	b.ReportMetric(float64(len(d.Countries)), "countries")
	b.ReportMetric(100*d.LocatedFraction(), "located_pct")
}

// BenchmarkFig3SYNCount uploads 100x10 kB and counts TCP SYNs
// (Fig. 3: ~100 Google Drive, ~400 Cloud Drive) and the completion
// time (~30 s and ~55 s).
func BenchmarkFig3SYNCount(b *testing.B) {
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	for _, svc := range []string{"googledrive", "clouddrive"} {
		p, _ := client.ProfileFor(svc)
		b.Run(svc, func(b *testing.B) {
			var s core.SYNSeries
			for i := 0; i < b.N; i++ {
				s = core.RunSYNCount(p, batch, int64(i)+1)
			}
			b.ReportMetric(float64(len(s.Times)), "syns")
			b.ReportMetric(s.Duration.Seconds(), "upload_s")
		})
	}
}

// BenchmarkFig4DeltaEncoding appends 100 kB to a 1 MB file and
// reports the uploaded volume (Fig. 4 left: ~0.1 MB for Dropbox,
// ~1.1 MB for everyone else).
func BenchmarkFig4DeltaEncoding(b *testing.B) {
	for _, p := range client.Profiles() {
		b.Run(p.Service, func(b *testing.B) {
			var up int64
			for i := 0; i < b.N; i++ {
				pts := core.Fig4DeltaSeries(p, core.ModAppend, []int64{1 << 20}, 100<<10, int64(i)+1)
				up = pts[0].Upload
			}
			b.ReportMetric(float64(up)/1e6, "upload_MB")
		})
	}
}

// BenchmarkFig4RandomInsert is the right panel of Fig. 4: insert
// 100 kB at a random offset of a 10 MB file (combined effects with
// chunking and deduplication).
func BenchmarkFig4RandomInsert(b *testing.B) {
	for _, svc := range []string{"dropbox", "wuala", "skydrive"} {
		p, _ := client.ProfileFor(svc)
		b.Run(svc, func(b *testing.B) {
			var up int64
			for i := 0; i < b.N; i++ {
				pts := core.Fig4DeltaSeries(p, core.ModRandom, []int64{10 << 20}, 100<<10, int64(i)+1)
				up = pts[0].Upload
			}
			b.ReportMetric(float64(up)/1e6, "upload_MB")
		})
	}
}

// BenchmarkFig5Compression uploads a 1 MB file of each Fig. 5 kind
// and reports transmitted volume per service.
func BenchmarkFig5Compression(b *testing.B) {
	kinds := []workload.Kind{workload.Text, workload.Binary, workload.FakeJPEG}
	for _, p := range client.Profiles() {
		for _, kind := range kinds {
			b.Run(p.Service+"/"+kind.String(), func(b *testing.B) {
				var up int64
				for i := 0; i < b.N; i++ {
					pts := core.Fig5CompressionSeries(p, kind, []int64{1 << 20}, int64(i)+1)
					up = pts[0].Upload
				}
				b.ReportMetric(float64(up)/1e6, "upload_MB")
			})
		}
	}
}

// fig6Workloads are the paper's four benchmark workloads.
var fig6Workloads = workload.StandardBenchmarks(workload.Binary)

// BenchmarkFig6Startup reports the synchronization start-up time per
// service and workload (Fig. 6a).
func BenchmarkFig6Startup(b *testing.B) {
	for _, p := range client.Profiles() {
		for _, w := range fig6Workloads {
			b.Run(p.Service+"/"+w.String(), func(b *testing.B) {
				var m core.Metrics
				for i := 0; i < b.N; i++ {
					m = core.RunSync(p, w, int64(i)+1, core.DefaultJitter)
				}
				b.ReportMetric(m.Startup.Seconds(), "startup_s")
			})
		}
	}
}

// BenchmarkFig6Completion reports the upload completion time per
// service and workload (Fig. 6b).
func BenchmarkFig6Completion(b *testing.B) {
	for _, p := range client.Profiles() {
		for _, w := range fig6Workloads {
			b.Run(p.Service+"/"+w.String(), func(b *testing.B) {
				var m core.Metrics
				for i := 0; i < b.N; i++ {
					m = core.RunSync(p, w, int64(i)+1, core.DefaultJitter)
				}
				b.ReportMetric(m.Completion.Seconds(), "completion_s")
				b.ReportMetric(m.GoodputBps/1e6, "goodput_Mbps")
			})
		}
	}
}

// BenchmarkFig6Overhead reports protocol overhead per service and
// workload (Fig. 6c; paper: Dropbox 47% at 100 kB, Google Drive 2x at
// 100x10 kB, Cloud Drive >5x).
func BenchmarkFig6Overhead(b *testing.B) {
	for _, p := range client.Profiles() {
		for _, w := range fig6Workloads {
			b.Run(p.Service+"/"+w.String(), func(b *testing.B) {
				var m core.Metrics
				for i := 0; i < b.N; i++ {
					m = core.RunSync(p, w, int64(i)+1, core.DefaultJitter)
				}
				b.ReportMetric(m.Overhead, "overhead_x")
			})
		}
	}
}

// BenchmarkTable1Capabilities runs the full Sect. 4 detection suite
// per service (Table 1).
func BenchmarkTable1Capabilities(b *testing.B) {
	for _, p := range client.Profiles() {
		b.Run(p.Service, func(b *testing.B) {
			var c core.Capabilities
			for i := 0; i < b.N; i++ {
				c = core.DetectCapabilities(p, int64(i)+1)
			}
			score := 0.0
			if c.Bundling {
				score++
			}
			if c.Dedup {
				score++
			}
			if c.DeltaEncoding {
				score++
			}
			if c.Compression != "no" {
				score++
			}
			if c.Chunking != "no" {
				score++
			}
			b.ReportMetric(score, "capabilities")
		})
	}
}

// ---- Ablations: isolate each design choice DESIGN.md calls out ----

// ablate runs one workload on a Dropbox variant with a profile tweak.
func ablate(b *testing.B, w workload.Batch, tweak func(*client.Profile)) core.Metrics {
	b.Helper()
	p := client.Dropbox()
	tweak(&p)
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		m = core.RunSync(p, w, int64(i)+1, 0)
	}
	return m
}

// BenchmarkAblationBundling contrasts Dropbox with bundling on vs off
// (sequential per-file acknowledgments) on the 100x10 kB workload —
// the design choice behind the paper's factor-of-4 win.
func BenchmarkAblationBundling(b *testing.B) {
	w := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	b.Run("bundled", func(b *testing.B) {
		m := ablate(b, w, func(*client.Profile) {})
		b.ReportMetric(m.Completion.Seconds(), "completion_s")
	})
	b.Run("sequential", func(b *testing.B) {
		m := ablate(b, w, func(p *client.Profile) {
			p.Bundling = false
			p.Strategy = client.PersistentSequential
			p.ControlRPCsPerFile = 1
		})
		b.ReportMetric(m.Completion.Seconds(), "completion_s")
	})
	b.Run("per-file-conn", func(b *testing.B) {
		m := ablate(b, w, func(p *client.Profile) {
			p.Bundling = false
			p.Strategy = client.PerFileConn
			p.ControlRPCsPerFile = 1
		})
		b.ReportMetric(m.Completion.Seconds(), "completion_s")
	})
}

// BenchmarkAblationCompression contrasts compression policies on a
// compressible 1 MB text upload.
func BenchmarkAblationCompression(b *testing.B) {
	w := workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Text}
	for _, mode := range []string{"always", "none"} {
		b.Run(mode, func(b *testing.B) {
			m := ablate(b, w, func(p *client.Profile) {
				if mode == "none" {
					p.Compression = 0 // compressor.None
				}
			})
			b.ReportMetric(float64(m.StorageUp)/1e6, "upload_MB")
			b.ReportMetric(m.Completion.Seconds(), "completion_s")
		})
	}
}

// BenchmarkAblationChunkSize sweeps Dropbox's chunk size on a 20 MB
// upload: chunking costs commit round trips but bounds loss-recovery
// units (Sect. 4.1 discusses why chunking is still advantageous).
func BenchmarkAblationChunkSize(b *testing.B) {
	w := workload.Batch{Count: 1, Size: 20 << 20, Kind: workload.Binary}
	for _, tc := range []struct {
		name string
		size int64
	}{{"1MB", 1 << 20}, {"4MB", 4 << 20}, {"16MB", 16 << 20}} {
		b.Run(tc.name, func(b *testing.B) {
			m := ablate(b, w, func(p *client.Profile) { p.ChunkSize = tc.size })
			b.ReportMetric(m.Completion.Seconds(), "completion_s")
		})
	}
}

// BenchmarkBundlingSets runs the Sect. 4.2 four-set study (same
// volume, 1/10/100/1000 files) for the two extreme strategies.
func BenchmarkBundlingSets(b *testing.B) {
	for _, svc := range []string{"dropbox", "clouddrive"} {
		p, _ := client.ProfileFor(svc)
		b.Run(svc, func(b *testing.B) {
			var st core.BundlingStudy
			for i := 0; i < b.N; i++ {
				st = core.RunBundlingStudy(p, 1_000_000, int64(i)+1)
			}
			b.ReportMetric(st.Results[3].Completion.Seconds(), "s_1000files")
			b.ReportMetric(float64(st.Results[3].Connections), "conns_1000files")
		})
	}
}

// BenchmarkRecoveryUnderFailures quantifies Sect. 4.1's chunking
// argument: a 16 MB upload with the storage path failing every 4 s.
func BenchmarkRecoveryUnderFailures(b *testing.B) {
	for _, tc := range []struct {
		name string
		size int64
	}{{"no-chunking", 0}, {"4MB-chunks", 4 << 20}, {"1MB-chunks", 1 << 20}} {
		b.Run(tc.name, func(b *testing.B) {
			var r core.RecoveryStudy
			for i := 0; i < b.N; i++ {
				r = core.RunRecovery(tc.size, 16<<20, 4*time.Second, int64(i)+1)
			}
			completed := 0.0
			if r.Completed {
				completed = 1
			}
			b.ReportMetric(completed, "completed")
			b.ReportMetric(r.WasteRatio, "waste_ratio")
		})
	}
}

// BenchmarkCampaignEngine measures the full campaign engine on the
// paper's stress workload — 24 repetitions of 100x10 kB — through the
// parallel worker pool and the forced-sequential path. Both produce
// bit-identical summaries; the ratio of the two is the parallel
// speedup on the current hardware.
func BenchmarkCampaignEngine(b *testing.B) {
	batch := workload.Batch{Count: 100, Size: 10_000, Kind: workload.Binary}
	for _, svc := range []string{"clouddrive", "dropbox"} {
		p, _ := client.ProfileFor(svc)
		b.Run(svc+"/parallel", func(b *testing.B) {
			var s core.Summary
			for i := 0; i < b.N; i++ {
				s = core.RunCampaignParallel(p, batch, 24, 42, 0)
			}
			b.ReportMetric(s.MeanCompletion.Seconds(), "completion_s")
		})
		b.Run(svc+"/sequential", func(b *testing.B) {
			var s core.Summary
			for i := 0; i < b.N; i++ {
				s = core.RunCampaignParallel(p, batch, 24, 42, 1)
			}
			b.ReportMetric(s.MeanCompletion.Seconds(), "completion_s")
		})
	}
}

// BenchmarkPropagation measures two-device end-to-end latency (upload
// -> notify -> download) for a 1 MB file.
func BenchmarkPropagation(b *testing.B) {
	batch := workload.Batch{Count: 1, Size: 1 << 20, Kind: workload.Binary}
	for _, p := range client.Profiles() {
		b.Run(p.Service, func(b *testing.B) {
			var r core.PropagationResult
			for i := 0; i < b.N; i++ {
				r = core.RunPropagation(p, batch, int64(i)+1)
			}
			b.ReportMetric(r.Total.Seconds(), "total_s")
			b.ReportMetric(r.Notify.Seconds(), "notify_s")
		})
	}
}
