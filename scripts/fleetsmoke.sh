#!/usr/bin/env bash
# fleetsmoke.sh — prove one fleet service day is bit-identical across
# worker counts, end to end through cmd/fleetbench.
#
# The fleet engine promises that its JSON report contains simulated
# quantities only and that those are a pure function of the flags —
# never of -parallel, and never of the backend's -shards lock layout.
# The smoke runs a small population (with a short sweep) at -parallel 1
# and -parallel 8 and byte-compares the two reports, then runs the same
# day at -shards 1 and -shards 64 and compares again (dropping only the
# "shards" line, which echoes the flag itself); any diff is a
# determinism regression in the fleet layer or the sharded store's
# claim/resolve protocol.
#
# Usage: scripts/fleetsmoke.sh [users]
set -euo pipefail
cd "$(dirname "$0")/.."

users="${1:-2000}"
a="$(mktemp -t fleet_p1.XXXXXX.json)"
b="$(mktemp -t fleet_p8.XXXXXX.json)"
c="$(mktemp -t fleet_s1.XXXXXX.json)"
d="$(mktemp -t fleet_s64.XXXXXX.json)"
trap 'rm -f "${a}" "${b}" "${c}" "${d}"' EXIT

go run ./cmd/fleetbench -users "${users}" -populations 500,"${users}" \
  -parallel 1 -out "${a}"
go run ./cmd/fleetbench -users "${users}" -populations 500,"${users}" \
  -parallel 8 -out "${b}"

if ! cmp -s "${a}" "${b}"; then
  echo "fleetsmoke: fleet day differs between -parallel 1 and -parallel 8" >&2
  diff "${a}" "${b}" | head -40 >&2 || true
  exit 1
fi
echo "fleetsmoke: ${users}-user day bit-identical across worker counts"

go run ./cmd/fleetbench -users "${users}" -shards 1 -out "${c}"
go run ./cmd/fleetbench -users "${users}" -shards 64 -out "${d}"

if ! cmp -s <(grep -v '"shards"' "${c}") <(grep -v '"shards"' "${d}"); then
  echo "fleetsmoke: fleet day differs between -shards 1 and -shards 64" >&2
  diff "${c}" "${d}" | head -40 >&2 || true
  exit 1
fi
echo "fleetsmoke: ${users}-user day bit-identical across store shard counts"
