#!/usr/bin/env bash
# fleetsmoke.sh — prove one fleet service day is bit-identical across
# worker counts, end to end through cmd/fleetbench.
#
# The fleet engine promises that its JSON report contains simulated
# quantities only and that those are a pure function of the flags —
# never of -parallel. The smoke runs a small population (with a short
# sweep) at -parallel 1 and -parallel 8 and byte-compares the two
# reports; any diff is a determinism regression in the fleet layer or
# the sharded store's claim/resolve protocol.
#
# Usage: scripts/fleetsmoke.sh [users]
set -euo pipefail
cd "$(dirname "$0")/.."

users="${1:-2000}"
a="$(mktemp -t fleet_p1.XXXXXX.json)"
b="$(mktemp -t fleet_p8.XXXXXX.json)"
trap 'rm -f "${a}" "${b}"' EXIT

go run ./cmd/fleetbench -users "${users}" -populations 500,"${users}" \
  -parallel 1 -out "${a}"
go run ./cmd/fleetbench -users "${users}" -populations 500,"${users}" \
  -parallel 8 -out "${b}"

if ! cmp -s "${a}" "${b}"; then
  echo "fleetsmoke: fleet day differs between -parallel 1 and -parallel 8" >&2
  diff "${a}" "${b}" | head -40 >&2 || true
  exit 1
fi
echo "fleetsmoke: ${users}-user day bit-identical across worker counts"
