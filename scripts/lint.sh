#!/usr/bin/env bash
# lint.sh — run simlint, the repository's determinism-contract linter,
# over the module (or the packages given as arguments).
#
# simlint bundles four analyzers behind the standard `go vet -vettool`
# protocol (see internal/analysis/README.md):
#
#   walltime          no wall-clock reads in simulation packages
#   rngdiscipline     all randomness flows from seeded sim.RNG streams
#   mapiter           no map-iteration order in observable output
#   goldendiscipline  no hardcoded golden pins outside internal/goldenfile
#
# Audited exceptions carry an in-source `//simlint:allow <check>`
# directive. CI runs this same check; a clean scripts/lint.sh locally
# means a clean simlint job.
#
# Usage: scripts/lint.sh [packages...]     (default: ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p bin
go build -o bin/simlint ./cmd/simlint
exec go vet -vettool=bin/simlint "${@:-./...}"
