#!/usr/bin/env bash
# bench.sh — emit a BENCH_<sha>.json performance snapshot.
#
# The snapshot is a valid cmd/comparebench campaign file (Fig. 6
# results for every service) extended with a "micro" section timing
# the measurement engine itself: the 24-rep 100x10 kB campaign through
# the parallel and sequential engines, and the MeasureWindow path
# against the seed copy-and-rescan baseline.
#
# Track the perf trajectory across commits with:
#
#   scripts/bench.sh                       # writes BENCH_<sha>.json
#   comparebench -a BENCH_old.json -b BENCH_new.json
#
# Usage: scripts/bench.sh [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

sha="$(git rev-parse --short HEAD 2>/dev/null || echo dev)"
out="${1:-BENCH_${sha}.json}"

go run ./cmd/benchsnap -commit "${sha}" -out "${out}"
echo "wrote ${out}"
