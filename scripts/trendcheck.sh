#!/usr/bin/env bash
# trendcheck.sh — fail when the engine's simulated metrics drift from
# the newest committed BENCH_<sha>.json snapshot.
#
# Diffs a snapshot of HEAD (a pre-built one, or freshly generated via
# scripts/bench.sh) against the committed baseline with
# `comparebench -fail-on-drift`: simulated metrics are deterministic
# given a seed, so ANY delta means an engine change altered simulated
# behaviour (wall-clock micro numbers are informational and not
# compared). The gate also fails when the campaigns share no
# comparable cells, so a fig6-less baseline cannot pass vacuously.
# CI runs this on every push, reusing the snapshot it just recorded.
#
# Usage: scripts/trendcheck.sh [threshold] [snapshot.json]
set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${1:-1.05}"
new="${2:-}"

# Baseline: the most recently committed BENCH_*.json, by commit time
# with the filename as a deterministic tie-break (shallow clones give
# every file the same graft timestamp; CI fetches full history).
base="$(git ls-files 'BENCH_*.json' | while read -r f; do
  printf '%s %s\n' "$(git log -1 --format=%ct -- "$f")" "$f"
done | sort -k1,1n -k2,2 | tail -1 | cut -d' ' -f2-)"
if [ -z "${base}" ]; then
  echo "trendcheck: no committed BENCH_*.json baseline found" >&2
  exit 1
fi

if [ -z "${new}" ]; then
  new="$(mktemp -t bench_head.XXXXXX.json)"
  trap 'rm -f "${new}"' EXIT
  scripts/bench.sh "${new}"
fi

echo "comparing ${new} against baseline ${base} (threshold ${threshold})"
go run ./cmd/comparebench -a "${base}" -b "${new}" -threshold "${threshold}" -fail-on-drift
