#!/usr/bin/env bash
# trendcheck.sh — fail when the engine's simulated metrics drift from
# the newest committed BENCH_<sha>.json snapshot.
#
# Two gates run, both on simulated metrics only (wall-clock micro
# numbers are informational and never compared; simulated metrics are
# deterministic given a seed, so ANY delta means an engine change
# altered simulated behaviour):
#
#  1. Baseline continuity: the newest committed snapshot is compared
#     against the previously committed one. Drift here means a new
#     baseline was committed that silently rewrote history — that
#     fails, UNLESS a committed BASELINE_RESET marker names the new
#     baseline file. A sanctioned reset is then verified the other way
#     around (`comparebench -expect-drift`): the marker must
#     correspond to a real engine change — moved metrics, or a change
#     in the compared surface itself (cells added/removed, e.g. a
#     campaign gaining its lossy section) — so a stale marker cannot
#     linger and sanction some future silent reset.
#
#  2. HEAD drift: a snapshot of HEAD (pre-built, or freshly generated
#     via scripts/bench.sh) is diffed against the newest committed
#     baseline with `comparebench -fail-on-drift`. The gate also fails
#     when the campaigns share no comparable cells, so a fig6-less
#     baseline cannot pass vacuously.
#
# CI runs this on every push, reusing the snapshot it just recorded.
#
# Run-shape metadata is not drift: snapshots also record how the
# sample was produced — per-cell RepsUsed and AchievedRelHW, and for
# adaptive campaigns the stopping rule (precision, max_reps). Those
# fields describe the sampling design, not simulated behaviour, and
# comparebench deliberately diffs only the metric means, so a snapshot
# recorded at fixed reps and one recorded adaptively can share a
# baseline history. Deltas that carry achieved confidence intervals
# are additionally annotated within-ci / exceeds-ci in the report —
# context for reading a failure, not a gate condition.
#
# Usage: scripts/trendcheck.sh [threshold] [snapshot.json]
set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${1:-1.05}"
new="${2:-}"

# Committed BENCH_*.json baselines, oldest first, by commit time with
# the filename as a deterministic tie-break (shallow clones give every
# file the same graft timestamp; CI fetches full history).
baselines="$(git ls-files 'BENCH_*.json' | while read -r f; do
  printf '%s %s\n' "$(git log -1 --format=%ct -- "$f")" "$f"
done | sort -k1,1n -k2,2 | cut -d' ' -f2-)"
base="$(printf '%s\n' "${baselines}" | tail -1)"
prev="$(printf '%s\n' "${baselines}" | tail -2 | head -1)"
if [ -z "${base}" ]; then
  echo "trendcheck: no committed BENCH_*.json baseline found" >&2
  exit 1
fi

# Gate 1: baseline continuity (only when a predecessor exists).
if [ -n "${prev}" ] && [ "${prev}" != "${base}" ]; then
  marker=""
  if git ls-files --error-unmatch BASELINE_RESET >/dev/null 2>&1; then
    marker="$(grep -v '^#' BASELINE_RESET | grep -m1 . | tr -d '[:space:]')"
  fi
  if [ "${marker}" = "${base}" ]; then
    echo "baseline reset sanctioned by BASELINE_RESET (${base}); verifying the reset is real"
    go run ./cmd/comparebench -a "${prev}" -b "${base}" -threshold "${threshold}" -expect-drift
  else
    echo "checking baseline continuity: ${prev} -> ${base}"
    go run ./cmd/comparebench -a "${prev}" -b "${base}" -threshold "${threshold}" -fail-on-drift || {
      echo "trendcheck: committed baseline ${base} silently drifted from ${prev}." >&2
      echo "A deliberate engine change must commit a BASELINE_RESET marker naming ${base}." >&2
      exit 1
    }
  fi
fi

# Gate 2: HEAD against the newest committed baseline.
if [ -z "${new}" ]; then
  new="$(mktemp -t bench_head.XXXXXX.json)"
  trap 'rm -f "${new}"' EXIT
  scripts/bench.sh "${new}"
fi

echo "comparing ${new} against baseline ${base} (threshold ${threshold})"
go run ./cmd/comparebench -a "${base}" -b "${new}" -threshold "${threshold}" -fail-on-drift
