#!/usr/bin/env bash
# regen-golden.sh — sanctioned golden-value refresh.
#
# Golden tests pin the simulation bit for bit; their values live in
# testdata/*.json and are compared through internal/goldenfile. When an
# engine change legitimately alters simulated behaviour (e.g. the PCG
# content pipeline changed every simulated byte), regenerate every
# golden file in one command:
#
#   scripts/regen-golden.sh
#
# then review the diff and commit it together with the engine change
# and a BASELINE_RESET marker for the perf-snapshot baseline (see
# scripts/trendcheck.sh). Hand-editing pinned values is never needed.
set -euo pipefail
cd "$(dirname "$0")/.."

# Every package that owns goldenfile-backed testdata. (The -update
# flag is registered by internal/goldenfile, so it only exists in test
# binaries that link it — hence the explicit list instead of ./... .)
pkgs=(
  ./internal/core
  ./internal/client
  ./internal/trace
)

go test "${pkgs[@]}" -run 'Golden' -update -count=1
echo "golden files regenerated; review with: git diff --stat '**/testdata'"
